(* perseas — command-line front end to the PERSEAS reproduction.

   Subcommands:
     experiments [NAME...]   regenerate paper tables/figures (all by default)
     workload                run one workload on one engine and report tps
     availability            run the failure/repair Monte Carlo
     crash-demo              crash a primary mid-commit and recover, verbosely

   Examples:
     perseas_cli experiments fig6 table1
     perseas_cli workload -e rvm -w debit-credit -n 2000
     perseas_cli workload -e perseas -w synthetic --tx-size 4096
     perseas_cli availability --trials 500 *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose =
  let doc = "Enable verbose logging (mirror losses, recovery notes)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)

let experiments_cmd =
  let names =
    let doc = "Experiments to run (see --list). All when omitted." in
    Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc)
  in
  let list_flag =
    let doc = "List available experiments and exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let run verbose list names =
    setup_logs verbose;
    if list then begin
      List.iter
        (fun (name, descr, _) -> Printf.printf "  %-18s %s\n" name descr)
        Harness.Experiments.names;
      `Ok ()
    end
    else if names = [] then begin
      Harness.Experiments.all ();
      `Ok ()
    end
    else
      let missing =
        List.filter
          (fun n -> not (List.exists (fun (m, _, _) -> m = n) Harness.Experiments.names))
          names
      in
      if missing <> [] then `Error (false, "unknown experiment(s): " ^ String.concat ", " missing)
      else begin
        List.iter
          (fun n ->
            let _, _, f = List.find (fun (m, _, _) -> m = n) Harness.Experiments.names in
            f ())
          names;
        `Ok ()
      end
  in
  let doc = "Regenerate the paper's tables and figures (CSV copies under results/)." in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(ret (const run $ verbose $ list_flag $ names))

(* ------------------------------------------------------------------ *)
(* workload                                                            *)

let engine_arg =
  let all = [ "perseas"; "rvm"; "rvm-rio"; "vista"; "remote-wal" ] in
  let doc = "Engine: " ^ String.concat ", " all ^ "." in
  Arg.(value & opt (enum (List.map (fun e -> (e, e)) all)) "perseas" & info [ "e"; "engine" ] ~doc)

let workload_arg =
  let all = [ "debit-credit"; "order-entry"; "synthetic" ] in
  let doc = "Workload: " ^ String.concat ", " all ^ "." in
  Arg.(
    value
    & opt (enum (List.map (fun w -> (w, w)) all)) "debit-credit"
    & info [ "w"; "workload" ] ~doc)

let iters_arg =
  Arg.(value & opt int 10_000 & info [ "n"; "iters" ] ~doc:"Measured transactions.")

let warmup_arg = Arg.(value & opt int 500 & info [ "warmup" ] ~doc:"Unmeasured warmup transactions.")

let tx_size_arg =
  Arg.(value & opt int 256 & info [ "tx-size" ] ~doc:"Bytes touched per synthetic transaction.")

let mirrors_arg =
  Arg.(value & opt int 1 & info [ "m"; "mirrors" ] ~doc:"Mirror count (PERSEAS only).")

let histogram_arg =
  Arg.(value & flag & info [ "histogram" ] ~doc:"Print a log-scale latency histogram.")

let instance_of = function
  | "perseas" -> Harness.Testbed.perseas_instance ()
  | "rvm" -> Harness.Testbed.rvm_instance ()
  | "rvm-rio" -> Harness.Testbed.rvm_instance ~rio:true ()
  | "vista" -> Harness.Testbed.vista_instance ()
  | "remote-wal" -> Harness.Testbed.remote_wal_instance ()
  | other -> invalid_arg other

let workload_cmd =
  let run verbose engine workload iters warmup tx_size mirrors histogram =
    setup_logs verbose;
    if iters <= 0 || warmup < 0 then `Error (false, "iters must be positive")
    else begin
      let ((module I : Harness.Testbed.INSTANCE) as inst) =
        if engine = "perseas" && mirrors > 1 then Harness.Testbed.replicated_instance ~mirrors ()
        else instance_of engine
      in
      let hist = Sim.Stats.Histogram.create ~sub_buckets:1 () in
      let observed tx i =
        let t0 = Sim.Clock.now I.clock in
        tx i;
        Sim.Stats.Histogram.add hist (Sim.Time.to_us (Sim.Clock.now I.clock - t0))
      in
      let result =
        match workload with
        | "debit-credit" ->
            let module W = Workloads.Debit_credit.Make (I.E) in
            let rng = Sim.Rng.create 7 in
            let db = W.setup I.engine ~params:Workloads.Debit_credit.default_params in
            let r =
              Harness.Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters
                (observed (fun _ -> W.transaction db rng))
            in
            assert (W.consistent db);
            r
        | "order-entry" ->
            let module W = Workloads.Order_entry.Make (I.E) in
            let rng = Sim.Rng.create 11 in
            let db = W.setup I.engine ~params:Workloads.Order_entry.default_params in
            let r =
              Harness.Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters
                (observed (fun _ -> W.transaction db rng))
            in
            assert (W.consistent db);
            r
        | "synthetic" ->
            let module S = Workloads.Synthetic.Make (I.E) in
            let rng = Sim.Rng.create 42 in
            let db = S.setup I.engine ~db_size:(8 * 1024 * 1024) in
            Harness.Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters
              (observed (fun _ -> S.transaction db rng ~tx_size))
        | other -> invalid_arg other
      in
      Format.printf "%s / %s: %a@." (Harness.Testbed.label inst) workload Harness.Measure.pp_result
        result;
      if histogram && Sim.Stats.Histogram.count hist > 0 then begin
        print_endline "latency histogram (us):";
        List.iter
          (fun (lo, hi, n) -> Printf.printf "  [%8.2f, %8.2f)  %s\n" lo hi (String.make (max 1 (60 * n / iters)) '#'))
          (Sim.Stats.Histogram.buckets hist)
      end;
      `Ok ()
    end
  in
  let doc = "Run one workload on one engine in virtual time and report throughput." in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      ret
        (const run $ verbose $ engine_arg $ workload_arg $ iters_arg $ warmup_arg $ tx_size_arg
       $ mirrors_arg $ histogram_arg))

(* ------------------------------------------------------------------ *)
(* availability                                                        *)

let availability_cmd =
  let trials = Arg.(value & opt int 200 & info [ "trials" ] ~doc:"Monte-Carlo trials.") in
  let years =
    Arg.(value & opt float 10. & info [ "years" ] ~doc:"Simulated horizon per trial, in years.")
  in
  let run verbose trials years =
    setup_logs verbose;
    if trials <= 0 || years <= 0. then `Error (false, "trials and years must be positive")
    else begin
      let params =
        { Harness.Availability.default_params with horizon = Sim.Time.s (years *. 365. *. 86_400.) }
      in
      List.iter
        (fun d ->
          Format.printf "%a@." Harness.Availability.pp_result
            (Harness.Availability.simulate ~params ~trials d))
        Harness.Availability.standard_deployments;
      `Ok ()
    end
  in
  let doc = "Failure/repair Monte Carlo over the paper's deployments." in
  Cmd.v (Cmd.info "availability" ~doc) Term.(ret (const run $ verbose $ trials $ years))

(* ------------------------------------------------------------------ *)
(* crash-demo                                                          *)

let crash_demo_cmd =
  let cut = Arg.(value & opt int 2 & info [ "cut" ] ~doc:"Crash after this many commit packets.") in
  let run verbose cut =
    setup_logs verbose;
    let bed = Harness.Testbed.perseas_bed () in
    let t = bed.perseas in
    let seg = Perseas.malloc t ~name:"demo" ~size:4096 in
    Perseas.write t seg ~off:0 (Bytes.make 4096 '.');
    Perseas.init_remote_db t;
    Printf.printf "database live, epoch %Ld\n" (Perseas.epoch t);
    let txn = Perseas.begin_transaction t in
    Perseas.set_range txn seg ~off:0 ~len:512;
    Perseas.write t seg ~off:0 (Bytes.make 512 'X');
    let total = Perseas.commit_packets txn in
    Printf.printf "commit will send %d packets; crashing after %d\n" total cut;
    let exception Crash in
    let sent = ref 0 in
    Perseas.set_packet_hook t (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    (match Perseas.commit txn with
    | () -> print_endline "commit completed (cut beyond packet count)"
    | exception Crash -> print_endline "primary crashed mid-commit");
    Perseas.set_packet_hook t None;
    ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
    let t2 = Perseas.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
    let seg2 = Option.get (Perseas.segment t2 "demo") in
    let first = Bytes.get (Perseas.read t2 seg2 ~off:0 ~len:1) 0 in
    Printf.printf "recovered on the spare node: epoch %Ld, first byte %C -> the transaction %s\n"
      (Perseas.epoch t2) first
      (if first = 'X' then "survived (commit point reached)" else "was rolled back atomically");
    `Ok ()
  in
  let doc = "Crash the primary mid-commit at a chosen packet and recover on a spare node." in
  Cmd.v (Cmd.info "crash-demo" ~doc) Term.(ret (const run $ verbose $ cut))

(* ------------------------------------------------------------------ *)
(* crash-sweep                                                         *)

let crash_sweep_cmd =
  let scenario_arg =
    let doc =
      "Scenario: commit (multi-range debit-credit), attach (mirror resync), overlap \
       (redundancy-elision stress mix), overlap-naive (same mix, elision off), concurrent \
       (a group-commit flush of three clients with a fourth transaction open across it), \
       checkpoint (commits interleaved with every phase of a fuzzy checkpoint), shard-commit \
       (a single-shard commit with a bystander shard committing alongside) or shard-fence (a \
       phase-switch fence draining a cross-shard transaction; the victim shard's primary or \
       mirror dies at each packet)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("commit", `Commit);
               ("attach", `Attach);
               ("overlap", `Overlap);
               ("overlap-naive", `Overlap_naive);
               ("concurrent", `Concurrent);
               ("checkpoint", `Checkpoint);
               ("shard-commit", `Shard_commit);
               ("shard-fence", `Shard_fence);
             ])
          `Commit
      & info [ "scenario" ] ~doc)
  in
  let victim_arg =
    let doc =
      "Who dies at each packet: primary (recover on the spare), mirror, or ckpt-target (the \
       checkpoint scenario's target node; every commit must still land)."
    in
    Arg.(
      value
      & opt
          (enum [ ("primary", `Primary); ("mirror", `Mirror); ("ckpt-target", `Ckpt_target) ])
          `Primary
      & info [ "victim" ] ~doc)
  in
  let mirror_index_arg =
    Arg.(value & opt int 0 & info [ "mirror-index" ] ~doc:"Which mirror dies (with --victim mirror).")
  in
  let sweep_mirrors_arg =
    Arg.(value & opt int 2 & info [ "m"; "mirrors" ] ~doc:"Mirror count.")
  in
  let ranges_arg =
    Arg.(value & opt int 3 & info [ "ranges" ] ~doc:"Ranges per transaction (commit scenario).")
  in
  let range_len_arg =
    Arg.(value & opt int 256 & info [ "range-len" ] ~doc:"Bytes per range (commit scenario).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write per-point rows to this CSV file.")
  in
  let run verbose scenario victim mirror_index mirrors ranges range_len csv =
    setup_logs verbose;
    if mirrors < 1 || ranges < 1 || range_len < 1 then
      `Error (false, "mirrors, ranges and range-len must be positive")
    else if victim = `Mirror && (mirror_index < 0 || mirror_index >= mirrors) then
      `Error (false, Printf.sprintf "mirror-index must be in [0, %d)" mirrors)
    else begin
      let module C = Harness.Crashpoint in
      let scenario_name = scenario in
      let scenario =
        match scenario with
        | `Commit -> C.commit_scenario ~mirrors ~ranges ~range_len ()
        | `Attach -> C.attach_scenario ~mirrors ()
        | `Overlap -> C.overlap_scenario ~mirrors ()
        | `Overlap_naive -> C.overlap_scenario ~mirrors ~elision:false ()
        | `Concurrent -> C.concurrent_scenario ~mirrors ()
        | `Checkpoint -> C.checkpoint_scenario ~mirrors ()
        | `Shard_commit -> C.shard_commit_scenario ~mirrors ()
        | `Shard_fence -> C.shard_fence_scenario ~mirrors ()
      in
      if victim = `Ckpt_target && scenario_name <> `Checkpoint then
        `Error (false, "--victim ckpt-target requires --scenario checkpoint")
      else
      let victim =
        match victim with
        | `Primary -> C.Primary
        | `Mirror -> C.Mirror mirror_index
        | `Ckpt_target -> C.Ckpt_target
      in
      match C.sweep ~victim scenario with
      | report ->
          Harness.Table.print
            ~title:
              (Printf.sprintf "Crash-point sweep: %s, %s dies at each of %d packet boundaries"
                 report.C.label (C.victim_label victim) report.C.total_packets)
            ~header:C.csv_header (C.report_rows report);
          Printf.printf
            "all %d points recovered to a legal image: %d old, %d new, %d needed undo replay\n"
            (List.length report.C.points) report.C.old_images report.C.new_images
            report.C.repaired;
          Option.iter
            (fun path -> Harness.Table.save_csv ~path ~header:C.csv_header (C.report_rows report))
            csv;
          `Ok ()
      | exception C.Oracle_violation msg -> `Error (false, "oracle violation: " ^ msg)
    end
  in
  let doc =
    "Crash at every packet boundary of a workload and check recovery against the atomicity oracle."
  in
  Cmd.v (Cmd.info "crash-sweep" ~doc)
    Term.(
      ret
        (const run $ verbose $ scenario_arg $ victim_arg $ mirror_index_arg $ sweep_mirrors_arg
       $ ranges_arg $ range_len_arg $ csv_arg))

(* ------------------------------------------------------------------ *)
(* checkpoint                                                          *)

let checkpoint_cmd =
  let txns =
    Arg.(value & opt int 2_000 & info [ "n"; "txns" ] ~doc:"Transactions before the checkpoint.")
  in
  let tail =
    Arg.(
      value
      & opt int 200
      & info [ "tail" ] ~doc:"Transactions after the checkpoint (recovered from the mirror tail).")
  in
  let run verbose txns tail =
    setup_logs verbose;
    if txns < 0 || tail < 0 then `Error (false, "txns and tail must be non-negative")
    else begin
      let clock = Sim.Clock.create () in
      let specs =
        List.mapi
          (fun i n -> Cluster.spec ~dram_size:(64 * 1024 * 1024) ~power_supply:i n)
          [ "primary"; "mirror"; "ckpt"; "spare" ]
      in
      let cluster = Cluster.create ~clock specs in
      let server = Netram.Server.create (Cluster.node cluster 1) in
      let client = Netram.Client.create ~cluster ~local:0 ~server in
      let t = Perseas.init_replicated [ client ] in
      let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
      let rng = Sim.Rng.create 7 in
      let db = W.setup t ~params:Workloads.Debit_credit.default_params in
      let ckpt_server = Netram.Server.create (Cluster.node cluster 2) in
      Perseas.Checkpoint.set_ram_target t ~server:ckpt_server;
      for _ = 1 to txns do
        W.transaction db rng
      done;
      let hwm = (Perseas.stats t).Perseas.undo_hwm_bytes in
      let cut, truncated = Perseas.Checkpoint.take t in
      let st = Perseas.stats t in
      Printf.printf
        "checkpoint generation %Ld published at epoch %Ld: shipped %d B, truncated %d B of undo \
         (high-water mark %d -> %d B)\n"
        (Perseas.Checkpoint.generation t)
        cut st.Perseas.checkpoint_bytes truncated hwm st.Perseas.undo_hwm_bytes;
      for _ = 1 to tail do
        W.transaction db rng
      done;
      ignore (Cluster.crash_node cluster 0 Cluster.Failure.Software_error);
      let t0 = Sim.Clock.now clock in
      let t2 =
        Perseas.recover_replicated ~config:(Perseas.config t)
          ~checkpoint:(Perseas.Ram_source ckpt_server) ~cluster ~local:2 ~servers:[ server ] ()
      in
      let us = Sim.Time.to_us (Sim.Clock.now clock - t0) in
      if Perseas.verify_mirrors t2 <> [] then
        `Error (false, "recovered database has divergent mirrors")
      else begin
        Printf.printf
          "primary killed after %d more txns; recovered on the checkpoint target's node in %.1f \
           us (epoch %Ld, mirrors clean)\n"
          tail us (Perseas.epoch t2);
        `Ok ()
      end
    end
  in
  let doc =
    "Run a workload, publish a fuzzy checkpoint (truncating the undo log), then crash the \
     primary and recover from the checkpoint plus the mirror tail."
  in
  Cmd.v (Cmd.info "checkpoint" ~doc) Term.(ret (const run $ verbose $ txns $ tail))

(* ------------------------------------------------------------------ *)
(* churn                                                               *)

let churn_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Failure-schedule seed.") in
  let churn_mirrors =
    Arg.(value & opt int 2 & info [ "m"; "mirrors" ] ~doc:"Replication target (initial mirrors).")
  in
  let spares = Arg.(value & opt int 2 & info [ "spares" ] ~doc:"Spare-pool size.") in
  let duration_ms =
    Arg.(value & opt float 40. & info [ "duration-ms" ] ~doc:"Failure-injection horizon (virtual ms).")
  in
  let mtbf_us =
    Arg.(value & opt float 1500. & info [ "mtbf-us" ] ~doc:"Mean time between failures (virtual us).")
  in
  let outage_us =
    Arg.(value & opt float 400. & info [ "outage-us" ] ~doc:"Mean outage before repair (virtual us).")
  in
  let pause_fraction =
    Arg.(
      value
      & opt float 0.5
      & info [ "pause-fraction" ] ~doc:"Probability a failure is a transient pause vs a node crash.")
  in
  let run verbose seed mirrors spares duration_ms mtbf_us outage_us pause_fraction =
    setup_logs verbose;
    if mirrors < 1 || spares < 1 then `Error (false, "mirrors and spares must be positive")
    else if duration_ms <= 0. || mtbf_us <= 0. || outage_us <= 0. then
      `Error (false, "duration, mtbf and outage must be positive")
    else if pause_fraction < 0. || pause_fraction > 1. then
      `Error (false, "pause-fraction must be in [0, 1]")
    else begin
      let module C = Harness.Churn in
      let params =
        {
          C.default_params with
          seed;
          mirrors;
          spares;
          duration = Sim.Time.ms duration_ms;
          mtbf = Sim.Time.us mtbf_us;
          outage = Sim.Time.us outage_us;
          pause_fraction;
        }
      in
      let r = C.run ~params () in
      Harness.Table.print
        ~title:
          (Printf.sprintf
             "Churn: %d mirrors + %d spares, mtbf %.0f us, %.0f ms horizon (seed %d)" mirrors
             spares mtbf_us duration_ms seed)
        ~header:C.csv_header (C.report_rows r);
      Printf.printf
        "committed %d txns (%.0f tps under churn); %d injections over %d nodes; %d incremental / \
         %d full resyncs\n"
        r.C.committed r.C.tps
        (List.length r.C.injections)
        (List.length r.C.nodes_hit) r.C.incremental_resyncs r.C.full_resyncs;
      Harness.Table.save_csv ~path:(Filename.concat "results" "churn.csv") ~header:C.csv_header
        (C.report_rows r);
      match C.check r with
      | () ->
          print_endline
            "oracle: factor restored, mirrors scrubbed clean, no committed transaction lost";
          `Ok ()
      | exception C.Oracle_violation msg -> `Error (false, "oracle violation: " ^ msg)
    end
  in
  let doc =
    "Run a live workload under mirror churn and verify the supervisor heals with zero \
     committed-data loss."
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      ret
        (const run $ verbose $ seed $ churn_mirrors $ spares $ duration_ms $ mtbf_us $ outage_us
       $ pause_fraction))

(* ------------------------------------------------------------------ *)
(* trace                                                                *)

let mix_arg =
  let all = List.map (fun m -> (Harness.Experiments.mix_label m, m)) Harness.Experiments.latency_mixes in
  let doc = "Workload: " ^ String.concat ", " (List.map fst all) ^ "." in
  Arg.(value & pos 0 (enum all) Harness.Experiments.Debit_credit_mix & info [] ~docv:"WORKLOAD" ~doc)

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ]
          ~doc:"Perfetto JSON output path (default results/trace_$(i,WORKLOAD).json).")
  in
  let csv_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~doc:"Per-phase CSV output path (default results/trace_$(i,WORKLOAD)_phases.csv).")
  in
  let trace_iters = Arg.(value & opt int 500 & info [ "n"; "iters" ] ~doc:"Measured transactions.") in
  let trace_warmup = Arg.(value & opt int 50 & info [ "warmup" ] ~doc:"Unmeasured warmup transactions.") in
  let run verbose mix mirrors iters warmup out csv_out =
    setup_logs verbose;
    if iters <= 0 || warmup < 0 then `Error (false, "iters must be positive")
    else if mirrors < 1 then `Error (false, "mirrors must be positive")
    else begin
      let label = Harness.Experiments.mix_label mix in
      let tail = Trace.Tail.create () in
      let r, sink = Harness.Experiments.traced_run ~tail ~mix ~mirrors ~warmup ~iters () in
      let json_path =
        Option.value out ~default:(Filename.concat "results" ("trace_" ^ label ^ ".json"))
      in
      (* Worst-K exemplars ride along as named flow events, so the
         outliers read as arrow chains across the Perfetto tracks. *)
      let flows =
        List.concat_map
          (fun (e : Trace.Tail.exemplar) ->
            let name =
              Printf.sprintf "worst txn %s (%.1fus)"
                (Option.value ~default:"?" (Trace.Tail.exemplar_txn e))
                e.Trace.Tail.e_latency_us
            in
            List.map (fun tl -> (name, tl)) (Trace.Tail.timelines e))
          (Trace.Tail.exemplars tail)
      in
      Trace.Export.chrome_json_to_file ~flows ~path:json_path ~spans:(Trace.Sink.spans sink)
        ~events:(Trace.Sink.events sink) ();
      let header = Trace.Export.phase_csv_header in
      let rows = Trace.Export.phase_csv_rows r.Harness.Measure.phases in
      let csv_path =
        Option.value csv_out ~default:(Filename.concat "results" ("trace_" ^ label ^ "_phases.csv"))
      in
      Harness.Table.print
        ~title:(Printf.sprintf "%s, %d mirror(s): per-phase breakdown of %d transactions" label mirrors iters)
        ~header rows;
      Harness.Table.save_csv ~path:csv_path ~header rows;
      (* The taxonomy's soundness check: the txn-phase spans partition
         the measured window, so their sum must equal its extent. *)
      let phase_sum_us =
        List.fold_left (fun acc p -> acc +. p.Trace.total_us) 0. r.Harness.Measure.phases
      in
      let elapsed_us = Sim.Time.to_us r.Harness.Measure.elapsed in
      let drift = abs_float (phase_sum_us -. elapsed_us) /. elapsed_us in
      Printf.printf
        "%s: %.0f tps; phase sum %.1f us vs end-to-end %.1f us (drift %.3f%%)\n%d spans and %d \
         events -> %s (open in ui.perfetto.dev)\n"
        label r.Harness.Measure.tps phase_sum_us elapsed_us (100. *. drift)
        (Trace.Sink.span_count sink) (Trace.Sink.event_count sink) json_path;
      if drift > 0.01 then
        `Error (false, "phase spans do not account for the measured window (drift > 1%)")
      else `Ok ()
    end
  in
  let doc =
    "Trace one workload phase by phase and export Perfetto JSON plus a per-phase CSV breakdown."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret (const run $ verbose $ mix_arg $ mirrors_arg $ trace_iters $ trace_warmup $ out_arg
         $ csv_out_arg))

(* ------------------------------------------------------------------ *)
(* explain: tail attribution + cost-model accounting for one mix       *)

let explain_cmd =
  let ex_iters = Arg.(value & opt int 2000 & info [ "n"; "iters" ] ~doc:"Measured transactions.") in
  let ex_warmup =
    Arg.(value & opt int 200 & info [ "warmup" ] ~doc:"Unmeasured warmup transactions.")
  in
  let ex_exemplars =
    Arg.(value & opt int 3 & info [ "exemplars" ] ~doc:"Worst exemplar timelines to render.")
  in
  let run verbose mix mirrors iters warmup n_exemplars =
    setup_logs verbose;
    if iters <= 0 || warmup < 0 then `Error (false, "iters must be positive")
    else if mirrors < 1 then `Error (false, "mirrors must be positive")
    else begin
      let module E = Harness.Experiments in
      let module Cm = Harness.Costmodel in
      let x = E.explain_run ~mix ~mirrors ~warmup ~iters () in
      let r = x.E.ex_result in
      let tail = x.E.ex_tail in
      let model = x.E.ex_model in
      let p99 = r.Harness.Measure.p99_us in
      Printf.printf "%s, %d mirror(s): %.0f tps, mean %.2f us, p99 %.2f us over %d txns\n\n"
        x.E.ex_label mirrors r.Harness.Measure.tps r.Harness.Measure.mean_us p99
        r.Harness.Measure.iters;
      (* Per-phase (and per-mirror) tail: who owns the p99. *)
      let phase_rows =
        List.filter_map
          (fun (name, h) ->
            if Sim.Stats.Histogram.count h = 0 then None
            else
              let pp99 = Sim.Stats.Histogram.percentile h 99. in
              Some
                [
                  name;
                  string_of_int (Sim.Stats.Histogram.count h);
                  Printf.sprintf "%.2f" (Sim.Stats.Histogram.percentile h 50.);
                  Printf.sprintf "%.2f" pp99;
                  Printf.sprintf "%.1f%%" (100. *. pp99 /. p99);
                ])
          (Trace.Tail.phases tail)
        @ List.filter_map
            (fun ((name, mirror), h) ->
              if Sim.Stats.Histogram.count h = 0 then None
              else
                let pp99 = Sim.Stats.Histogram.percentile h 99. in
                Some
                  [
                    Printf.sprintf "  %s[m%d]" name mirror;
                    string_of_int (Sim.Stats.Histogram.count h);
                    Printf.sprintf "%.2f" (Sim.Stats.Histogram.percentile h 50.);
                    Printf.sprintf "%.2f" pp99;
                    Printf.sprintf "%.1f%%" (100. *. pp99 /. p99);
                  ])
            (Trace.Tail.mirror_phases tail)
      in
      Harness.Table.print
        ~title:"Tail attribution: per-phase latency percentiles (share = phase p99 / e2e p99)"
        ~header:[ "phase"; "count"; "p50_us"; "p99_us"; "share" ]
        phase_rows;
      let attribution =
        List.fold_left (fun acc (_, p) -> acc +. p) 0. (Trace.Tail.phase_p99s tail) /. p99
      in
      Printf.printf "named phases attribute %.1f%% of the measured p99\n\n" (100. *. attribution);
      (* Cost model: predicted vs measured per packet class. *)
      Harness.Table.print ~title:"Analytic cost model vs NIC packet stream (settled commit units)"
        ~header:[ "class"; "pred 64B"; "meas 64B"; "pred 16B"; "meas 16B"; "pred B"; "meas B" ]
        (List.map
           (fun (cls, (p : Cm.cost), (m : Cm.cost)) ->
             [
               cls;
               string_of_int p.Cm.pkts64;
               string_of_int m.Cm.pkts64;
               string_of_int p.Cm.pkts16;
               string_of_int m.Cm.pkts16;
               string_of_int p.Cm.bytes;
               string_of_int m.Cm.bytes;
             ])
           (Cm.classes model));
      let pred = Cm.predicted_total model in
      Printf.printf
        "settled %d commit units: predicted %d pkts / %d B, NIC counted %d pkts / %d B, %d drift \
         alert(s), %d unattributed pkt(s)\n"
        (Cm.units_checked model) (Cm.cost_packets pred) pred.Cm.bytes
        (x.E.ex_pkts64 + x.E.ex_pkts16) x.E.ex_bytes (Cm.drift_count model)
        (Cm.cost_packets (Cm.unattributed model));
      List.iter (fun a -> Printf.printf "  DRIFT %s\n" (Cm.describe a)) (Cm.alerts model);
      (* Worst-K exemplars, stitched cross-node. *)
      let exemplars = Trace.Tail.exemplars tail in
      Printf.printf "\nworst-%d exemplar transactions (of %d retained):\n"
        (min n_exemplars (List.length exemplars))
        (List.length exemplars);
      List.iteri
        (fun i (e : Trace.Tail.exemplar) ->
          if i < n_exemplars then begin
            Printf.printf "-- exemplar %d: txn %s, iteration %d, %.2f us (%.1f%% phase-covered)\n"
              (i + 1)
              (Option.value ~default:"?" (Trace.Tail.exemplar_txn e))
              e.Trace.Tail.e_seq e.Trace.Tail.e_latency_us
              (100. *. E.exemplar_coverage e);
            List.iter
              (fun tl ->
                print_string (Trace.Causal.render tl);
                print_newline ())
              (Trace.Tail.timelines e)
          end)
        exemplars;
      if attribution < 0.95 then
        `Error (false, "named phases attribute < 95% of the measured p99")
      else if exemplars = [] then `Error (false, "no exemplar transaction retained")
      else if Cm.drift_count model > 0 then
        `Error (false, "cost model drifted from the NIC packet stream")
      else `Ok ()
    end
  in
  let doc =
    "Explain where the tail goes: per-phase/per-mirror p99 attribution, worst-K exemplar \
     timelines, and the paper's analytic packet cost model checked live against the NIC counters."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      ret (const run $ verbose $ mix_arg $ mirrors_arg $ ex_iters $ ex_warmup $ ex_exemplars))

(* ------------------------------------------------------------------ *)
(* stats                                                                *)

let stats_cmd =
  let stats_iters = Arg.(value & opt int 1000 & info [ "n"; "iters" ] ~doc:"Transactions to run.") in
  let pretty_arg =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Human-readable table instead of JSON.")
  in
  let run verbose mix mirrors iters pretty =
    setup_logs verbose;
    if iters <= 0 then `Error (false, "iters must be positive")
    else if mirrors < 1 then `Error (false, "mirrors must be positive")
    else begin
      let bed = Harness.Testbed.replicated_bed ~mirrors () in
      let t = bed.perseas in
      (match mix with
      | Harness.Experiments.Debit_credit_mix ->
          let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
          let rng = Sim.Rng.create 7 in
          let db = W.setup t ~params:Workloads.Debit_credit.small_params in
          for _ = 1 to iters do
            W.transaction db rng
          done
      | Harness.Experiments.Large_update_mix ->
          let module S = Workloads.Synthetic.Make (Perseas.Engine) in
          let rng = Sim.Rng.create 42 in
          let db = S.setup t ~db_size:(8 * 1024 * 1024) in
          for _ = 1 to iters do
            S.transaction db rng ~tx_size:(16 * 1024)
          done);
      let stats = Perseas.stats t in
      if pretty then Format.printf "%a@." Perseas.pp_stats stats
      else print_endline (Perseas.stats_to_json stats);
      `Ok ()
    end
  in
  let doc = "Run a workload and emit the engine's statistics counters as JSON." in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(ret (const run $ verbose $ mix_arg $ mirrors_arg $ stats_iters $ pretty_arg))

(* ------------------------------------------------------------------ *)
(* top: cluster-health dashboard from an instrumented churn run        *)

let top_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Failure-schedule seed.") in
  let mirrors =
    Arg.(value & opt int 2 & info [ "m"; "mirrors" ] ~doc:"Replication target (initial mirrors).")
  in
  let spares = Arg.(value & opt int 2 & info [ "spares" ] ~doc:"Spare-pool size.") in
  let duration_ms =
    Arg.(value & opt float 40. & info [ "duration-ms" ] ~doc:"Failure-injection horizon (virtual ms).")
  in
  let interval_us =
    Arg.(value & opt float 100. & info [ "interval-us" ] ~doc:"Sampling interval (virtual us).")
  in
  let run verbose seed mirrors spares duration_ms interval_us =
    setup_logs verbose;
    if mirrors < 1 || spares < 1 then `Error (false, "mirrors and spares must be positive")
    else if duration_ms <= 0. || interval_us <= 0. then
      `Error (false, "duration and interval must be positive")
    else begin
      let module C = Harness.Churn in
      let params =
        { C.default_params with seed; mirrors; spares; duration = Sim.Time.ms duration_ms }
      in
      let tail = Trace.Tail.create () in
      let r, tel =
        Harness.Telemetry.instrumented_churn ~params ~interval:(Sim.Time.us interval_us) ~tail ()
      in
      print_string (Harness.Telemetry.top ~tail r tel);
      `Ok ()
    end
  in
  let doc =
    "Textual cluster-health dashboard: run the churn schedule with the gauge sampler attached \
     and render replication state, rates and per-server liveness."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(ret (const run $ verbose $ seed $ mirrors $ spares $ duration_ms $ interval_us))

(* ------------------------------------------------------------------ *)
(* timeline: per-sample CSV + Perfetto counter tracks                  *)

let timeline_cmd =
  let run verbose mix =
    setup_logs verbose;
    Harness.Experiments.timeline mix;
    `Ok ()
  in
  let doc =
    "Run one instrumented workload and export the gauge time-series: per-sample CSV plus a \
     Chrome trace with counter tracks (open in Perfetto) under results/."
  in
  Cmd.v (Cmd.info "timeline" ~doc) Term.(ret (const run $ verbose $ mix_arg))

(* ------------------------------------------------------------------ *)
(* postmortem: flight recorder + protocol monitor, dumped on demand    *)

let postmortem_cmd =
  let out_arg =
    Arg.(
      value
      & opt string (Filename.concat "results" (Filename.concat "postmortem" "cli"))
      & info [ "o"; "out" ] ~doc:"Bundle output directory.")
  in
  let pm_txns =
    Arg.(value & opt int 200 & info [ "n"; "txns" ] ~doc:"Transactions to record before the dump.")
  in
  let inject_arg =
    Arg.(
      value
      & flag
      & info [ "inject" ]
          ~doc:
            "Replay an undo packet for an already-committed transaction into the monitor — a \
             protocol violation the engine never commits, demonstrating the typed alert and the \
             offending transaction's causal timeline in the bundle.")
  in
  let run verbose mirrors txns inject out =
    setup_logs verbose;
    if txns <= 0 then `Error (false, "txns must be positive")
    else if mirrors < 1 then `Error (false, "mirrors must be positive")
    else begin
      let f = Harness.Forensics.create () in
      let bed = Harness.Testbed.replicated_bed ~mirrors () in
      let t = bed.perseas in
      Harness.Forensics.attach f t;
      let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
      let rng = Sim.Rng.create 7 in
      let db = W.setup t ~params:Workloads.Debit_credit.small_params in
      for _ = 1 to txns do
        W.transaction db rng
      done;
      let offending = "2" in
      let cause =
        if inject then begin
          Trace.Monitor.event (Harness.Forensics.monitor f)
            {
              Trace.Event.name = "pkt.full64";
              cat = "sci";
              at = Sim.Clock.now bed.clock;
              args = [ ("op", "remote_undo"); ("node", "1"); ("txn", offending) ];
            };
          "seeded violation: undo replayed for committed txn " ^ offending
        end
        else "manual post-mortem dump"
      in
      let dir = Harness.Forensics.dump f ~dir:out ~cause ~stats:(Perseas.stats t) () in
      Printf.printf "recorded %d txns on %d mirror(s); %d monitor alert(s)\n" txns mirrors
        (Harness.Forensics.alert_count f);
      List.iter
        (fun a -> Format.printf "  %a@." Trace.Monitor.pp_alert a)
        (Harness.Forensics.alerts f);
      let timelines = Harness.Forensics.timelines f in
      (match Trace.Causal.find timelines ~txn:offending with
      | Some tl when inject ->
          print_endline "causal timeline of the offending transaction:";
          print_string (Trace.Causal.render tl)
      | _ ->
          Printf.printf "%d transaction timeline(s) in the ring; full set in %s\n"
            (List.length timelines)
            (Filename.concat dir "causal.txt"));
      Printf.printf "bundle: %s (header.json, trace.json, causal.txt, stats.json)\n" dir;
      if inject && Harness.Forensics.alert_count f = 0 then
        `Error (false, "injected violation produced no monitor alert")
      else `Ok ()
    end
  in
  let doc =
    "Run a replicated workload with the flight recorder and protocol monitor attached, then \
     dump the post-mortem bundle (Perfetto trace, causal cross-node timelines, engine stats)."
  in
  Cmd.v (Cmd.info "postmortem" ~doc)
    Term.(ret (const run $ verbose $ mirrors_arg $ pm_txns $ inject_arg $ out_arg))

(* ------------------------------------------------------------------ *)
(* sharding                                                            *)

let sharding_cmd =
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Number of shards (independent primaries).")
  in
  let mirrors_arg =
    Arg.(value & opt int 1 & info [ "m"; "mirrors" ] ~doc:"Mirrors per shard.")
  in
  let cross_arg =
    Arg.(value & opt int 5 & info [ "cross" ] ~doc:"Cross-shard transfers per 100 singles.")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Clients per shard.")
  in
  let total_arg =
    Arg.(value & opt int 4_000 & info [ "n"; "txns" ] ~doc:"Measured single-shard commits.")
  in
  let scale_arg =
    Arg.(
      value
      & opt int 10
      & info [ "scale" ] ~doc:"TPC-style scale of the whole bank, split across shards.")
  in
  let failover_arg =
    Arg.(
      value
      & flag
      & info [ "failover" ]
          ~doc:
            "Instead of the scaling cell, crash one shard's primary under mixed traffic, \
             rebuild it on the spare and check the zero-committed-data-loss oracle.")
  in
  let run verbose shards mirrors cross clients total scale failover =
    setup_logs verbose;
    if shards < 1 || mirrors < 1 || clients < 1 || total < 1 || scale < 1 then
      `Error (false, "shards, mirrors, clients, txns and scale must be positive")
    else if cross < 0 then `Error (false, "cross must be non-negative")
    else begin
      let module S = Harness.Sharding in
      let module DC = Workloads.Debit_credit in
      let base = DC.scaled_params ~tps:10_000 () in
      let params = { base with DC.scale = max 1 (scale / shards) } in
      if failover then begin
        let f = S.failover ~shards:(max 2 shards) ~mirrors ~clients ~params () in
        Printf.printf
          "before crash: %d committed (%d cross); after heal: %d committed (%d cross)\n"
          f.S.f_before.Harness.Multi_client.ss_committed
          f.S.f_before.Harness.Multi_client.ss_cross_committed
          f.S.f_after.Harness.Multi_client.ss_committed
          f.S.f_after.Harness.Multi_client.ss_cross_committed;
        Printf.printf "data preserved: %b  consistent: %b  monitor alerts: %d\n"
          f.S.f_data_preserved f.S.f_consistent f.S.f_alerts;
        if f.S.f_data_preserved && f.S.f_consistent && f.S.f_alerts = 0 then begin
          print_endline "failover oracle green: committed data survived the primary crash";
          `Ok ()
        end
        else `Error (false, "failover oracle violated")
      end
      else begin
        let c =
          S.run_cell ~mirrors ~clients
            ~dram_mb:(64 + (params.DC.scale * 16))
            ~params ~total ~shards ~cross_per_100:cross ()
        in
        Harness.Table.print ~title:"Sharded debit-credit"
          ~header:
            [ "shards"; "cross/100"; "singles"; "cross"; "switches"; "elapsed (us)"; "tps";
              "pkts/txn" ]
          [
            [
              string_of_int c.S.c_shards;
              string_of_int c.S.c_cross_per_100;
              string_of_int c.S.c_committed;
              string_of_int c.S.c_cross;
              string_of_int c.S.c_switches;
              Printf.sprintf "%.0f" c.S.c_elapsed_us;
              Printf.sprintf "%.0f" c.S.c_tps;
              Printf.sprintf "%.1f" c.S.c_pkts_per_txn;
            ];
          ];
        Printf.printf "%d shard(s), %d mirror(s) each: %.0f aggregate tps on the frontier clock\n"
          c.S.c_shards mirrors c.S.c_tps;
        `Ok ()
      end
    end
  in
  let doc =
    "Partition the bank across multiple primaries and measure aggregate throughput, or crash a \
     shard's primary under traffic and check failover (--failover)."
  in
  Cmd.v (Cmd.info "sharding" ~doc)
    Term.(
      ret
        (const run $ verbose $ shards_arg $ mirrors_arg $ cross_arg $ clients_arg $ total_arg
       $ scale_arg $ failover_arg))

(* ------------------------------------------------------------------ *)

let main =
  let doc = "PERSEAS: lightweight transactions on networks of workstations (ICDCS 1998)" in
  let info = Cmd.info "perseas_cli" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      experiments_cmd;
      workload_cmd;
      trace_cmd;
      explain_cmd;
      stats_cmd;
      availability_cmd;
      crash_demo_cmd;
      crash_sweep_cmd;
      checkpoint_cmd;
      churn_cmd;
      sharding_cmd;
      top_cmd;
      timeline_cmd;
      postmortem_cmd;
    ]

let () = exit (Cmd.eval main)
