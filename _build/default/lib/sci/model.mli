open Sim

(** End-to-end latency of SCI bursts (the Figure 5 model).

    A burst is one logical store or read of a contiguous range,
    packetised by {!Packet.of_range}.  Within a burst, the first
    64-byte packet pays the full pipeline cost and subsequent 64-byte
    packets stream behind it; 16-byte packet trains do not stream.
    A burst ending on a buffer's last word flushes early and saves
    [t_lastword_bonus]. *)

val write_burst : Params.t -> ?hops:int -> Packet.t list -> ends_on_last_word:bool -> Time.t
(** One-way latency until the last byte of the burst has landed in the
    remote memory.  [hops] is the ring distance (default 1); each hop
    beyond the first adds [t_hop].  The empty burst costs zero. *)

val write_range : Params.t -> ?hops:int -> off:int -> len:int -> unit -> Time.t
(** [write_burst] of [Packet.of_range ~off ~len], with the last-word
    bonus computed from the range. *)

val read_range : Params.t -> ?hops:int -> off:int -> len:int -> unit -> Time.t
(** Latency of a remote read of the range (request/response; used by
    recovery's remote-to-local copies). *)

val local_copy : Params.t -> int -> Time.t
(** CPU cost of a local memcpy of [n] bytes. *)
