open Sim

type t = {
  buffer_bytes : int;
  write_buffers : int;
  subblock_bytes : int;
  t_base : Time.t;
  t_pkt16 : Time.t;
  t_pkt64_first : Time.t;
  t_pkt64_stream : Time.t;
  t_lastword_bonus : Time.t;
  t_read_base : Time.t;
  t_read_pkt64_first : Time.t;
  t_read_pkt64_stream : Time.t;
  t_hop : Time.t;
  local_copy_overhead : Time.t;
  local_copy_bytes_per_s : float;
}

(* Calibration (see the module interface):
   - 4-byte store = t_base + t_pkt16 = 0.9 + 1.8 = 2.7 us (paper, section 4);
   - raw 33..48-byte store = 3 sub-block packets = 6.3 us, while the
     enclosing 64-byte aligned region = 5.9 us, so the optimised memcpy
     wins exactly for sizes > 32 bytes (paper, section 4);
   - streamed 64-byte packets at 2.4 us each = 26.7 MB/s sustained, so a
     1 MB transaction (2 MB local + 2 MB remote) ends < 0.1 s (Fig. 6). *)
let default =
  {
    buffer_bytes = 64;
    write_buffers = 8;
    subblock_bytes = 16;
    t_base = Time.us 0.9;
    t_pkt16 = Time.us 1.8;
    t_pkt64_first = Time.us 5.0;
    t_pkt64_stream = Time.us 2.4;
    t_lastword_bonus = Time.us 0.3;
    t_read_base = Time.us 2.0;
    t_read_pkt64_first = Time.us 6.0;
    t_read_pkt64_stream = Time.us 3.2;
    t_hop = Time.us 0.3;
    local_copy_overhead = Time.us 0.15;
    local_copy_bytes_per_s = 100e6;
  }

let projected ?(base = default) ~years () =
  if years < 0 then invalid_arg "Params.projected: negative years";
  let y = float_of_int years in
  let latency = 0.8 ** y (* -20 %/year *) in
  let bandwidth = 1.45 ** y (* +45 %/year *) in
  let memory = 1.3 ** y in
  let scale t f = max 1 (int_of_float (Float.round (float_of_int t *. f))) in
  {
    base with
    t_base = scale base.t_base latency;
    t_pkt16 = scale base.t_pkt16 latency;
    t_pkt64_first = scale base.t_pkt64_first latency;
    t_pkt64_stream = scale base.t_pkt64_stream (1. /. bandwidth);
    t_lastword_bonus = scale base.t_lastword_bonus latency;
    t_read_base = scale base.t_read_base latency;
    t_read_pkt64_first = scale base.t_read_pkt64_first latency;
    t_read_pkt64_stream = scale base.t_read_pkt64_stream (1. /. bandwidth);
    t_hop = scale base.t_hop latency;
    local_copy_overhead = scale base.local_copy_overhead (1. /. memory);
    local_copy_bytes_per_s = base.local_copy_bytes_per_s *. memory;
  }

let memcpy_threshold t = 2 * t.subblock_bytes

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (is_power_of_two t.buffer_bytes) then err "buffer_bytes not a power of two"
  else if not (is_power_of_two t.subblock_bytes) then err "subblock_bytes not a power of two"
  else if t.subblock_bytes > t.buffer_bytes then err "subblock larger than buffer"
  else if t.write_buffers <= 0 then err "write_buffers <= 0"
  else if t.t_base < 0 || t.t_pkt16 <= 0 || t.t_pkt64_first <= 0 then err "non-positive packet cost"
  else if t.t_pkt64_stream > t.t_pkt64_first then err "streaming cost above first-packet cost"
  else if t.t_lastword_bonus < 0 then err "negative last-word bonus"
  else if t.local_copy_bytes_per_s <= 0. then err "non-positive local copy bandwidth"
  else Ok ()
