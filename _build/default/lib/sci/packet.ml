type kind = Full64 | Part16

type t = { addr : int; len : int; kind : kind }

let of_range (p : Params.t) ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Packet.of_range: negative range";
  let buf = p.buffer_bytes and sub = p.subblock_bytes in
  let finish = off + len in
  (* Walk buffer by buffer; emit one Full64 per fully-covered buffer and
     one Part16 per touched sub-block otherwise. *)
  let rec buffers acc pos =
    if pos >= finish then List.rev acc
    else
      let buf_base = pos / buf * buf in
      let buf_end = buf_base + buf in
      let cover_end = min finish buf_end in
      if pos = buf_base && cover_end = buf_end then
        buffers ({ addr = buf_base; len = buf; kind = Full64 } :: acc) buf_end
      else
        let rec subblocks acc pos =
          if pos >= cover_end then acc
          else
            let sb_base = pos / sub * sub in
            let sb_end = min cover_end (sb_base + sub) in
            subblocks ({ addr = pos; len = sb_end - pos; kind = Part16 } :: acc) sb_end
        in
        buffers (subblocks acc pos) cover_end
  in
  buffers [] off

let total_bytes pkts = List.fold_left (fun acc pkt -> acc + pkt.len) 0 pkts
let count kind pkts = List.length (List.filter (fun pkt -> pkt.kind = kind) pkts)

let ends_on_last_word (p : Params.t) ~off ~len =
  len > 0 && (off + len - 1) mod p.buffer_bytes >= p.buffer_bytes - 4

let buffer_index (p : Params.t) addr = addr / p.buffer_bytes mod p.write_buffers

let pp ppf t =
  Format.fprintf ppf "%s[%#x..%#x)"
    (match t.kind with Full64 -> "full64" | Part16 -> "part16")
    t.addr (t.addr + t.len)
