open Sim

let hop_cost (p : Params.t) hops =
  if hops < 1 then invalid_arg "Model: hops must be >= 1";
  (hops - 1) * p.t_hop

let write_burst (p : Params.t) ?(hops = 1) pkts ~ends_on_last_word =
  match pkts with
  | [] -> Time.zero
  | _ ->
      let full64 = Packet.count Full64 pkts and part16 = Packet.count Part16 pkts in
      let cost64 =
        if full64 = 0 then 0
        else p.t_pkt64_first + ((full64 - 1) * p.t_pkt64_stream)
      in
      let cost16 = part16 * p.t_pkt16 in
      let bonus = if ends_on_last_word then p.t_lastword_bonus else Time.zero in
      p.t_base + cost64 + cost16 + hop_cost p hops - bonus

let write_range p ?hops ~off ~len () =
  if len = 0 then Time.zero
  else
    write_burst p ?hops
      (Packet.of_range p ~off ~len)
      ~ends_on_last_word:(Packet.ends_on_last_word p ~off ~len)

let read_range (p : Params.t) ?(hops = 1) ~off ~len () =
  if len < 0 then invalid_arg "Model.read_range: negative length";
  if len = 0 then Time.zero
  else
    let pkts = Packet.of_range p ~off ~len in
    let full64 = Packet.count Full64 pkts and part16 = Packet.count Part16 pkts in
    let cost64 =
      if full64 = 0 then 0 else p.t_read_pkt64_first + ((full64 - 1) * p.t_read_pkt64_stream)
    in
    (* A partial sub-block read costs a full request/response, modelled
       at the first-packet read rate scaled to the sub-block. *)
    let cost16 = part16 * p.t_pkt16 * 2 in
    p.t_read_base + cost64 + cost16 + hop_cost p hops

let local_copy (p : Params.t) n =
  if n < 0 then invalid_arg "Model.local_copy: negative length";
  if n = 0 then Time.zero
  else p.local_copy_overhead + Time.of_bandwidth ~bytes_per_s:p.local_copy_bytes_per_s n
