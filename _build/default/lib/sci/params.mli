open Sim

(** Calibration constants of the PCI-SCI cluster adapter model.

    The model reproduces the mechanism described in §4 of the paper: the
    card has sixteen internal 64-byte buffers (eight used for writes);
    physical address bits 0–5 give the offset of a word inside a buffer
    and bits 6–8 select the buffer; stores to contiguous addresses are
    gathered (store gathering) and buffers transmit independently
    (buffer streaming).  Full buffers flush as whole 64-byte SCI
    packets; partially-filled buffers flush as trains of 16-byte
    packets.  Writes that end on the last word of a buffer flush
    slightly faster.

    The default constants are calibrated against the paper's published
    points: a 4-byte remote store costs 2.7 µs one way; raw stores of
    more than 32 bytes are slower than copying the enclosing 64-byte
    aligned region; sustained large copies reach ~25 MB/s so a 1 MB
    transaction (two remote copies) finishes under 0.1 s (Figure 6). *)

type t = {
  buffer_bytes : int;  (** SCI buffer size: 64. *)
  write_buffers : int;  (** Write-side buffers: 8 (of 16 total). *)
  subblock_bytes : int;  (** Partial-buffer packet granule: 16. *)
  t_base : Time.t;  (** Fixed end-to-end overhead per write burst. *)
  t_pkt16 : Time.t;  (** Cost of each 16-byte packet. *)
  t_pkt64_first : Time.t;  (** Cost of the first 64-byte packet of a burst. *)
  t_pkt64_stream : Time.t;
      (** Cost of each subsequent 64-byte packet, overlapped by buffer
          streaming. *)
  t_lastword_bonus : Time.t;
      (** Saved when a burst ends exactly on a buffer's last word. *)
  t_read_base : Time.t;  (** Fixed overhead of a remote read burst. *)
  t_read_pkt64_first : Time.t;
  t_read_pkt64_stream : Time.t;
  t_hop : Time.t;  (** Extra latency per additional ring hop. *)
  local_copy_overhead : Time.t;  (** Fixed CPU cost of a local memcpy call. *)
  local_copy_bytes_per_s : float;  (** Local memcpy bandwidth. *)
}

val default : t
(** The 1998 Dolphin PCI-SCI / 133 MHz Pentium calibration. *)

val memcpy_threshold : t -> int
(** Copies strictly larger than this many bytes are performed as
    64-byte-aligned region copies by the optimised [sci_memcpy]
    (32 in the paper). *)

val projected : ?base:t -> years:int -> unit -> t
(** §6 technology trend: interconnect latency improves ~20 %/year and
    throughput ~45 %/year.  [projected ~years] scales the calibration
    accordingly (latencies x0.8^years, streaming/bandwidth terms by the
    throughput rate; local memory improves ~30 %/year).  [years = 0] is
    {!default}. *)

val validate : t -> (unit, string) result
(** Sanity checks (positive costs, power-of-two sizes, streaming cost
    not above first-packet cost). *)
