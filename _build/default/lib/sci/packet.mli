(** SCI packetisation of a store burst.

    A store to the range [\[off, off+len)] of remote physical memory is
    chopped along 64-byte buffer boundaries.  A buffer whose 64 bytes
    are all covered flushes as one [Full64] packet; a partially covered
    buffer flushes as one [Part16] packet per touched 16-byte sub-block
    (so a 4-byte store crossing a 16-byte boundary needs two packets,
    matching §4). *)

type kind = Full64 | Part16

type t = { addr : int; len : int; kind : kind }
(** One SCI packet: it carries the remote-memory bytes
    [\[addr, addr+len)].  For [Full64], [len] is the buffer size; for
    [Part16], [len <= 16] (a sub-block clipped to the stored range). *)

val of_range : Params.t -> off:int -> len:int -> t list
(** Raw store-gathering packetisation of [\[off, off+len)], in address
    order.  [len = 0] yields [\[\]].  Raises [Invalid_argument] on
    negative [off] or [len]. *)

val total_bytes : t list -> int
(** Sum of payload lengths; [of_range] conserves the range length. *)

val count : kind -> t list -> int

val ends_on_last_word : Params.t -> off:int -> len:int -> bool
(** Whether the store's final byte is in the last word (last 4 bytes)
    of an SCI buffer — such stores flush faster (§4). *)

val buffer_index : Params.t -> int -> int
(** [buffer_index p addr] is the card buffer the address maps to:
    bits 6..8 of the physical address (for the default geometry). *)

val pp : Format.formatter -> t -> unit
