lib/sci/model.mli: Packet Params Sim Time
