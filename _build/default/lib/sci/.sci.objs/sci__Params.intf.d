lib/sci/params.mli: Sim Time
