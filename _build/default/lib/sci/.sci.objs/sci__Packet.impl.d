lib/sci/packet.ml: Format List Params
