lib/sci/packet.mli: Format Params
