lib/sci/nic.ml: Clock List Mem Packet Params Sim Time
