lib/sci/params.ml: Float Printf Sim Time
