lib/sci/nic.mli: Clock Mem Params Sim Time
