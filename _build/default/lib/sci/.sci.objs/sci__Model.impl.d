lib/sci/model.ml: Packet Params Sim Time
