(** A transactional B+-tree over any PERSEAS-style engine.

    The ordered companion to {!Kvstore}: 64-bit keys mapped to 64-bit
    values (typically offsets into other segments), supporting exact
    lookups and in-order range scans through linked leaves.  Every
    mutation is one engine transaction, so a crash mid-split leaves the
    tree either before or after the insert — the structural invariants
    (sorted nodes, separator consistency, linked-leaf order) are
    machine-checked by {!Make.check_invariants} and exercised by the
    crash tests.

    Deletion is {e lazy}: keys are removed from their leaf without
    rebalancing (underfull nodes persist, as in several production
    B-trees); the affected space is reclaimed when a leaf empties. *)

type config = {
  max_nodes : int;  (** Capacity of the node slab. *)
  degree : int;  (** Max keys per node; at least 4, even. *)
}

val default_config : config
(** 4096 nodes of degree 16 — about a million keys. *)

exception Tree_full

module Make (E : Perseas.Txn_intf.S) : sig
  type t

  val create : ?config:config -> E.t -> name:string -> t
  (** Allocate and format the tree's segments; call before the engine's
      [init_done]. *)

  val attach : ?config:config -> E.t -> name:string -> t
  (** Re-open after recovery; [config] must match [create]'s. *)

  val insert : t -> key:int64 -> value:int64 -> unit
  (** Insert or overwrite, atomically.  Raises {!Tree_full} when the
      node slab is exhausted. *)

  val find : t -> int64 -> int64 option
  val mem : t -> int64 -> bool

  val delete : t -> int64 -> bool
  (** [true] if the key was present.  Atomic. *)

  val range : t -> lo:int64 -> hi:int64 -> (int64 * int64) list
  (** Bindings with [lo <= key <= hi], in ascending key order. *)

  val min_binding : t -> (int64 * int64) option
  val max_binding : t -> (int64 * int64) option
  val length : t -> int
  val iter : t -> (int64 -> int64 -> unit) -> unit
  (** Ascending key order. *)

  val height : t -> int

  val check_invariants : t -> (unit, string) result
  (** Sorted keys, separator bounds, uniform leaf depth, leaf-chain
      order, node accounting. *)
end
