type config = { max_nodes : int; degree : int }

let default_config = { max_nodes = 4096; degree = 16 }

exception Tree_full

module Make (E : Perseas.Txn_intf.S) = struct
  type t = {
    config : config;
    engine : E.t;
    meta : E.segment;  (** root (4), allocated nodes (4), length (4). *)
    slab : E.segment;
  }

  (* Node layout: is_leaf (4), nkeys (4), next_leaf (4), pad (4),
     keys (degree x 8), slots (degree+1 x 8) — values for leaves
     (slot i pairs with key i), child node ids for internal nodes
     (slot i = child left of key i; slot nkeys = rightmost child). *)
  let node_size config = 16 + (config.degree * 8) + ((config.degree + 1) * 8)

  (* A node image materialised for manipulation. *)
  type node = {
    idx : int; (* 1-based; 0 is nil *)
    mutable leaf : bool;
    mutable nkeys : int;
    mutable next_leaf : int;
    keys : int64 array; (* length degree + 1: one overflow slot *)
    slots : int64 array; (* length degree + 2 *)
  }

  let validate config =
    if config.degree < 4 || config.degree mod 2 <> 0 then
      invalid_arg "Btree: degree must be even and at least 4";
    if config.max_nodes < 4 then invalid_arg "Btree: max_nodes too small"

  let segment_names name = (name ^ ".btmeta", name ^ ".btslab")

  let create ?(config = default_config) engine ~name =
    validate config;
    let meta_name, slab_name = segment_names name in
    let meta = E.malloc engine ~name:meta_name ~size:64 in
    let slab = E.malloc engine ~name:slab_name ~size:(config.max_nodes * node_size config) in
    let t = { config; engine; meta; slab } in
    (* Root = node 1, an empty leaf; one node allocated. *)
    let b = Bytes.create 12 in
    Bytes.set_int32_le b 0 1l;
    Bytes.set_int32_le b 4 1l;
    Bytes.set_int32_le b 8 0l;
    E.write engine meta ~off:0 b;
    let leaf = Bytes.make (node_size config) '\000' in
    Bytes.set_int32_le leaf 0 1l (* is_leaf *);
    E.write engine slab ~off:0 leaf;
    t

  let attach ?(config = default_config) engine ~name =
    validate config;
    let meta_name, slab_name = segment_names name in
    let find n =
      match E.find_segment engine n with
      | Some seg -> seg
      | None -> failwith (Printf.sprintf "Btree.attach: segment %S not found" n)
    in
    { config; engine; meta = find meta_name; slab = find slab_name }

  let read_u32 t seg off = Int32.to_int (Bytes.get_int32_le (E.read t.engine seg ~off ~len:4) 0)
  let root t = read_u32 t t.meta 0
  let allocated t = read_u32 t t.meta 4
  let length t = read_u32 t t.meta 8

  let node_off t idx = (idx - 1) * node_size t.config

  let load t idx =
    let b = E.read t.engine t.slab ~off:(node_off t idx) ~len:(node_size t.config) in
    let d = t.config.degree in
    let keys = Array.make (d + 1) 0L in
    let slots = Array.make (d + 2) 0L in
    let nkeys = Int32.to_int (Bytes.get_int32_le b 4) in
    for i = 0 to min (d - 1) (nkeys - 1) do
      keys.(i) <- Bytes.get_int64_le b (16 + (i * 8))
    done;
    for i = 0 to min d nkeys do
      slots.(i) <- Bytes.get_int64_le b (16 + (d * 8) + (i * 8))
    done;
    {
      idx;
      leaf = Bytes.get_int32_le b 0 = 1l;
      nkeys;
      next_leaf = Int32.to_int (Bytes.get_int32_le b 8);
      keys;
      slots;
    }

  (* Persist a node under the open transaction: the whole node image is
     covered by one set_range, so abort/recovery restores it. *)
  let store txn t (n : node) =
    let d = t.config.degree in
    let b = Bytes.make (node_size t.config) '\000' in
    Bytes.set_int32_le b 0 (if n.leaf then 1l else 0l);
    Bytes.set_int32_le b 4 (Int32.of_int n.nkeys);
    Bytes.set_int32_le b 8 (Int32.of_int n.next_leaf);
    for i = 0 to n.nkeys - 1 do
      Bytes.set_int64_le b (16 + (i * 8)) n.keys.(i)
    done;
    for i = 0 to n.nkeys do
      Bytes.set_int64_le b (16 + (d * 8) + (i * 8)) n.slots.(i)
    done;
    E.set_range txn t.slab ~off:(node_off t n.idx) ~len:(node_size t.config);
    E.write t.engine t.slab ~off:(node_off t n.idx) b

  let store_meta txn t ~root ~allocated ~length =
    let b = Bytes.create 12 in
    Bytes.set_int32_le b 0 (Int32.of_int root);
    Bytes.set_int32_le b 4 (Int32.of_int allocated);
    Bytes.set_int32_le b 8 (Int32.of_int length);
    E.set_range txn t.meta ~off:0 ~len:12;
    E.write t.engine t.meta ~off:0 b

  (* Fresh in-memory node; persisted by the caller. *)
  let fresh t idx ~leaf =
    let d = t.config.degree in
    { idx; leaf; nkeys = 0; next_leaf = 0; keys = Array.make (d + 1) 0L; slots = Array.make (d + 2) 0L }

  (* Position of the child to descend into / key insert point. *)
  let search_position (n : node) key =
    let rec go i = if i < n.nkeys && Int64.compare n.keys.(i) key <= 0 then go (i + 1) else i in
    go 0

  let rec descend t idx key path =
    let n = load t idx in
    if n.leaf then (n, path)
    else
      let pos = search_position n key in
      descend t (Int64.to_int n.slots.(pos)) key ((n, pos) :: path)

  let find t key =
    let leaf, _ = descend t (root t) key [] in
    let rec scan i =
      if i >= leaf.nkeys then None
      else if Int64.equal leaf.keys.(i) key then Some leaf.slots.(i)
      else scan (i + 1)
    in
    scan 0

  let mem t key = find t key <> None

  let insert_into_arrays (n : node) pos key slot =
    for i = n.nkeys downto pos + 1 do
      n.keys.(i) <- n.keys.(i - 1)
    done;
    (if n.leaf then
       for i = n.nkeys downto pos + 1 do
         n.slots.(i) <- n.slots.(i - 1)
       done
     else
       for i = n.nkeys + 1 downto pos + 2 do
         n.slots.(i) <- n.slots.(i - 1)
       done);
    n.keys.(pos) <- key;
    if n.leaf then n.slots.(pos) <- slot else n.slots.(pos + 1) <- slot;
    n.nkeys <- n.nkeys + 1

  let insert t ~key ~value =
    let txn = E.begin_transaction t.engine in
    let leaf, path = descend t (root t) key [] in
    (* Overwrite in place if present. *)
    let rec existing i =
      if i >= leaf.nkeys then None else if Int64.equal leaf.keys.(i) key then Some i else existing (i + 1)
    in
    match existing 0 with
    | Some i ->
        leaf.slots.(i) <- value;
        store txn t leaf;
        E.commit txn
    | None ->
        let allocated0 = allocated t and length0 = length t and root0 = root t in
        let next_node = ref allocated0 in
        let alloc_node ~leaf =
          if !next_node >= t.config.max_nodes then begin
            E.abort txn;
            raise Tree_full
          end;
          incr next_node;
          fresh t !next_node ~leaf
        in
        insert_into_arrays leaf (search_position leaf key) key value;
        (* Split overflowing nodes up the path. *)
        let rec fixup (n : node) path =
          if n.nkeys <= t.config.degree then begin
            store txn t n;
            None
          end
          else begin
            let right = alloc_node ~leaf:n.leaf in
            let mid = n.nkeys / 2 in
            let separator =
              if n.leaf then begin
                (* Leaf split: right keeps keys[mid..]; separator is a
                   copy of its first key. *)
                right.nkeys <- n.nkeys - mid;
                for i = 0 to right.nkeys - 1 do
                  right.keys.(i) <- n.keys.(mid + i);
                  right.slots.(i) <- n.slots.(mid + i)
                done;
                right.next_leaf <- n.next_leaf;
                n.next_leaf <- right.idx;
                n.nkeys <- mid;
                right.keys.(0)
              end
              else begin
                (* Internal split: the middle key moves up. *)
                let sep = n.keys.(mid) in
                right.nkeys <- n.nkeys - mid - 1;
                for i = 0 to right.nkeys - 1 do
                  right.keys.(i) <- n.keys.(mid + 1 + i)
                done;
                for i = 0 to right.nkeys do
                  right.slots.(i) <- n.slots.(mid + 1 + i)
                done;
                n.nkeys <- mid;
                sep
              end
            in
            store txn t n;
            store txn t right;
            match path with
            | (parent, pos) :: rest ->
                (* Insert separator and the right child into the parent. *)
                for i = parent.nkeys downto pos + 1 do
                  parent.keys.(i) <- parent.keys.(i - 1)
                done;
                for i = parent.nkeys + 1 downto pos + 2 do
                  parent.slots.(i) <- parent.slots.(i - 1)
                done;
                parent.keys.(pos) <- separator;
                parent.slots.(pos + 1) <- Int64.of_int right.idx;
                parent.nkeys <- parent.nkeys + 1;
                fixup parent rest
            | [] ->
                (* Split the root: grow the tree. *)
                let new_root = alloc_node ~leaf:false in
                new_root.nkeys <- 1;
                new_root.keys.(0) <- separator;
                new_root.slots.(0) <- Int64.of_int n.idx;
                new_root.slots.(1) <- Int64.of_int right.idx;
                store txn t new_root;
                Some new_root.idx
          end
        in
        let new_root = fixup leaf path in
        store_meta txn t
          ~root:(Option.value ~default:root0 new_root)
          ~allocated:!next_node ~length:(length0 + 1);
        E.commit txn

  let delete t key =
    let txn = E.begin_transaction t.engine in
    let leaf, _ = descend t (root t) key [] in
    let rec position i =
      if i >= leaf.nkeys then None else if Int64.equal leaf.keys.(i) key then Some i else position (i + 1)
    in
    match position 0 with
    | None ->
        E.abort txn;
        false
    | Some pos ->
        (* Lazy deletion: shift the leaf's arrays; internal separators
           may keep referring to the deleted key, which is harmless for
           search (separators only guide descent). *)
        for i = pos to leaf.nkeys - 2 do
          leaf.keys.(i) <- leaf.keys.(i + 1);
          leaf.slots.(i) <- leaf.slots.(i + 1)
        done;
        leaf.nkeys <- leaf.nkeys - 1;
        store txn t leaf;
        store_meta txn t ~root:(root t) ~allocated:(allocated t) ~length:(length t - 1);
        E.commit txn;
        true

  let leftmost_leaf t =
    let rec go idx =
      let n = load t idx in
      if n.leaf then n else go (Int64.to_int n.slots.(0))
    in
    go (root t)

  let iter t f =
    let rec walk (n : node) =
      for i = 0 to n.nkeys - 1 do
        f n.keys.(i) n.slots.(i)
      done;
      if n.next_leaf <> 0 then walk (load t n.next_leaf)
    in
    walk (leftmost_leaf t)

  let range t ~lo ~hi =
    if Int64.compare lo hi > 0 then []
    else begin
      let leaf, _ = descend t (root t) lo [] in
      let out = ref [] in
      let rec walk (n : node) =
        let continue = ref true in
        for i = 0 to n.nkeys - 1 do
          if Int64.compare n.keys.(i) lo >= 0 then
            if Int64.compare n.keys.(i) hi <= 0 then out := (n.keys.(i), n.slots.(i)) :: !out
            else continue := false
        done;
        if !continue && n.next_leaf <> 0 then walk (load t n.next_leaf)
      in
      walk leaf;
      List.rev !out
    end

  let min_binding t =
    let rec first (n : node) =
      if n.nkeys > 0 then Some (n.keys.(0), n.slots.(0))
      else if n.next_leaf <> 0 then first (load t n.next_leaf)
      else None
    in
    first (leftmost_leaf t)

  let max_binding t =
    let rec last best (n : node) =
      let best = if n.nkeys > 0 then Some (n.keys.(n.nkeys - 1), n.slots.(n.nkeys - 1)) else best in
      if n.next_leaf = 0 then best else last best (load t n.next_leaf)
    in
    last None (leftmost_leaf t)

  let height t =
    let rec go idx acc =
      let n = load t idx in
      if n.leaf then acc else go (Int64.to_int n.slots.(0)) (acc + 1)
    in
    go (root t) 1

  let check_invariants t =
    let exception Bad of string in
    let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
    try
      let leaves_in_tree_order = ref [] in
      let visited = ref 0 in
      (* Bounds are exclusive lo, inclusive-of-range hi semantics:
         keys k in a subtree under separator pair (lo, hi) satisfy
         lo <= k < hi (B+ convention with copied-up separators). *)
      let rec walk idx ~lo ~hi ~depth =
        if idx <= 0 || idx > allocated t then bad "node id %d out of range" idx;
        incr visited;
        if !visited > allocated t + 1 then bad "cycle suspected";
        let n = load t idx in
        if n.nkeys > t.config.degree then bad "node %d overfull" idx;
        for i = 0 to n.nkeys - 2 do
          if Int64.compare n.keys.(i) n.keys.(i + 1) >= 0 then bad "node %d keys unsorted" idx
        done;
        Array.iteri
          (fun i k ->
            if i < n.nkeys then begin
              (match lo with Some l when Int64.compare k l < 0 -> bad "node %d key below bound" idx | _ -> ());
              match hi with Some h when Int64.compare k h >= 0 -> bad "node %d key above bound" idx | _ -> ()
            end)
          n.keys;
        if n.leaf then begin
          leaves_in_tree_order := (n.idx, depth) :: !leaves_in_tree_order
        end
        else begin
          if n.nkeys = 0 then bad "internal node %d empty" idx;
          for i = 0 to n.nkeys do
            let lo' = if i = 0 then lo else Some n.keys.(i - 1) in
            let hi' = if i = n.nkeys then hi else Some n.keys.(i) in
            walk (Int64.to_int n.slots.(i)) ~lo:lo' ~hi:hi' ~depth:(depth + 1)
          done
        end
      in
      walk (root t) ~lo:None ~hi:None ~depth:0;
      (* All leaves at one depth. *)
      let leaves = List.rev !leaves_in_tree_order in
      (match leaves with
      | (_, d0) :: rest -> List.iter (fun (_, d) -> if d <> d0 then bad "leaf depths differ") rest
      | [] -> bad "no leaves");
      (* The leaf chain visits exactly the tree's leaves, in order. *)
      let chain = ref [] in
      let rec follow (n : node) steps =
        if steps > allocated t then bad "leaf chain cycle";
        chain := n.idx :: !chain;
        if n.next_leaf <> 0 then follow (load t n.next_leaf) (steps + 1)
      in
      follow (leftmost_leaf t) 0;
      if List.rev !chain <> List.map fst leaves then bad "leaf chain disagrees with tree order";
      (* Global key order along the chain, and the length counter. *)
      let count = ref 0 in
      let prev = ref None in
      iter t (fun k _ ->
          incr count;
          (match !prev with
          | Some p when Int64.compare p k >= 0 -> bad "chain keys not strictly increasing"
          | _ -> ());
          prev := Some k);
      if !count <> length t then bad "length %d but %d keys" (length t) !count;
      Ok ()
    with Bad msg -> Error msg
end
