lib/harness/measure.mli: Clock Format Sim Time
