lib/harness/experiments.ml: Availability Baselines Btree Bytes Clock Cluster Disk Filename Int64 Kvstore List Measure Netram Option Perseas Printf Rng Sci Sim Table Testbed Time Workloads
