lib/harness/testbed.ml: Baselines Clock Cluster Disk Netram Perseas Sim
