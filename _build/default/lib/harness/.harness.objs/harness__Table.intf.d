lib/harness/table.mli:
