lib/harness/experiments.mli:
