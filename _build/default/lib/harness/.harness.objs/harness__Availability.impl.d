lib/harness/availability.ml: Array Clock Events Float Format Fun List Rng Sim Time
