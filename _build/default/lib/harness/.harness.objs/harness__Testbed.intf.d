lib/harness/testbed.mli: Baselines Clock Cluster Netram Perseas Sci Sim
