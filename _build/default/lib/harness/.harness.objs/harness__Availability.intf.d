lib/harness/availability.mli: Format Sim Time
