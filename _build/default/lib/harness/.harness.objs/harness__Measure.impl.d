lib/harness/measure.ml: Clock Format Sim Stats Time
