open Sim

type medium = Disk | Rio_ups | Memory

type replica = { on_node : int; medium : medium }

type deployment = {
  label : string;
  node_supplies : int list;
  replicas : replica list;
  spare_pool : bool;
}

let rvm_single_node =
  {
    label = "RVM (1 node, disk)";
    node_supplies = [ 0 ];
    replicas = [ { on_node = 0; medium = Disk } ];
    spare_pool = false;
  }

let rio_ups_single_node =
  {
    label = "Rio+UPS (1 node)";
    node_supplies = [ 0 ];
    replicas = [ { on_node = 0; medium = Rio_ups } ];
    spare_pool = false;
  }

let perseas_same_supply =
  {
    label = "PERSEAS (2 nodes, same supply)";
    node_supplies = [ 0; 0 ];
    replicas = [ { on_node = 0; medium = Memory }; { on_node = 1; medium = Memory } ];
    spare_pool = true;
  }

let perseas_two_supplies =
  {
    label = "PERSEAS (2 nodes, two supplies)";
    node_supplies = [ 0; 1 ];
    replicas = [ { on_node = 0; medium = Memory }; { on_node = 1; medium = Memory } ];
    spare_pool = true;
  }

let perseas_three_way =
  {
    label = "PERSEAS (3 nodes, three supplies)";
    node_supplies = [ 0; 1; 2 ];
    replicas =
      [
        { on_node = 0; medium = Memory };
        { on_node = 1; medium = Memory };
        { on_node = 2; medium = Memory };
      ];
    spare_pool = true;
  }

let standard_deployments =
  [
    rvm_single_node;
    rio_ups_single_node;
    perseas_same_supply;
    perseas_two_supplies;
    perseas_three_way;
  ]

type params = {
  software_mtbf : Time.t;
  hardware_mtbf : Time.t;
  outage_mtbf : Time.t;
  software_repair : Time.t;
  hardware_repair : Time.t;
  outage_repair : Time.t;
  ups_malfunction : float;
  remirror_delay : Time.t;
  horizon : Time.t;
}

let days x = Time.s (x *. 86_400.)
let hours x = Time.s (x *. 3_600.)

let default_params =
  {
    software_mtbf = days 5.;
    hardware_mtbf = days 120.;
    outage_mtbf = days 60.;
    software_repair = Time.s 300.;
    hardware_repair = days 2.;
    outage_repair = hours 1.;
    ups_malfunction = 0.02;
    remirror_delay = Time.s 600.;
    horizon = days 3650.;
  }

type result = {
  label : string;
  trials : int;
  availability : float;
  loss_events_per_decade : float;
  trials_with_loss : float;
}

type failure_kind = Sw | Hw | Outage

(* One trial: walk the failure/repair event sequence and integrate the
   time during which the data was reachable; count the instants at
   which every copy was invalid at once (loss, followed by an operator
   restore from archives so the trial can continue). *)
let trial params rng deployment =
  let n = List.length deployment.node_supplies in
  let supplies = Array.of_list deployment.node_supplies in
  let replicas = Array.of_list deployment.replicas in
  Array.iter
    (fun r ->
      if r.on_node < 0 || r.on_node >= n then invalid_arg "Availability: replica on unknown node")
    replicas;
  let clock = Clock.create () in
  let q = Events.create clock in
  let node_up = Array.make n true in
  (* valid.(i): replica i holds a usable copy of the current data. *)
  let valid = Array.make (Array.length replicas) true in
  let losses = ref 0 in
  let unavailable = ref Time.zero in
  let last_state_change = ref Time.zero in
  (* A valid memory copy is reachable even while its original host is
     down: re-mirroring moved it to a spare workstation (the paper's
     availability pitch).  Disk and Rio copies are pinned to their
     machine. *)
  let reachable () =
    Array.exists2
      (fun r v -> v && (r.medium = Memory || node_up.(r.on_node)))
      replicas valid
  in
  let was_reachable = ref true in
  let note_state () =
    let now = Clock.now clock in
    let r = reachable () in
    if !was_reachable && not r then last_state_change := now
    else if (not !was_reachable) && r then unavailable := !unavailable + (now - !last_state_change);
    was_reachable := r
  in
  let note_state_ref () = note_state () in
  let any_valid () = Array.exists Fun.id valid in
  let schedule_remirror i =
    if deployment.spare_pool then
      ignore
        (Events.schedule_after q ~delay:params.remirror_delay (fun () ->
             if (not valid.(i)) && any_valid () then begin
               valid.(i) <- true;
               note_state_ref ()
             end))
  in
  let invalidate i =
    valid.(i) <- false;
    match replicas.(i).medium with Memory -> schedule_remirror i | Disk | Rio_ups -> ()
  in
  let check_loss () =
    if not (any_valid ()) then begin
      incr losses;
      (* Operator restores from an archive: all replicas on live nodes
         become valid again (stale data — the loss already counted). *)
      Array.iteri (fun i r -> if node_up.(r.on_node) then valid.(i) <- true) replicas
    end
  in
  (* Draws far beyond the horizon never fire; cap them so huge MTBFs
     cannot overflow the integer time representation. *)
  let beyond_horizon = (2. *. Time.to_s params.horizon) +. 1. in
  let exp_delay mean =
    Time.s (Float.min (Rng.exponential rng ~mean:(Time.to_s mean)) beyond_horizon)
  in
  let crash_node node kind =
    if node_up.(node) then begin
      node_up.(node) <- false;
      Array.iteri
        (fun i r ->
          if r.on_node = node then
            match (r.medium, kind) with
            | Memory, _ -> invalidate i
            | Disk, _ -> () (* platters keep the bits *)
            | Rio_ups, Sw -> () (* Rio's whole point *)
            | Rio_ups, Hw -> () (* the cache is disk-backed; recoverable after repair *)
            | Rio_ups, Outage ->
                if Rng.float rng 1.0 < params.ups_malfunction then invalidate i)
        replicas;
      check_loss ()
    end
  in
  let repair_node node =
    node_up.(node) <- true;
    (* Memory and Rio copies resync from any valid copy on repair; if
       none exists anywhere, the operator restores from the archive —
       the loss itself was already counted when it happened. *)
    Array.iteri
      (fun i r ->
        if r.on_node = node && not valid.(i) then
          match r.medium with Memory | Rio_ups -> valid.(i) <- true | Disk -> ())
      replicas
  in
  let rec schedule_node_failures node =
    let sw = exp_delay params.software_mtbf and hw = exp_delay params.hardware_mtbf in
    let kind, delay = if sw < hw then (Sw, sw) else (Hw, hw) in
    let repair = match kind with Sw -> params.software_repair | Hw -> params.hardware_repair | Outage -> assert false in
    ignore
      (Events.schedule_after q ~delay (fun () ->
           crash_node node kind;
           note_state ();
           ignore
             (Events.schedule_after q ~delay:repair (fun () ->
                  repair_node node;
                  note_state ();
                  schedule_node_failures node))))
  in
  let supply_ids = List.sort_uniq compare (Array.to_list supplies) in
  let rec schedule_outages supply =
    ignore
      (Events.schedule_after q ~delay:(exp_delay params.outage_mtbf) (fun () ->
           Array.iteri (fun node s -> if s = supply then crash_node node Outage) supplies;
           note_state ();
           ignore
             (Events.schedule_after q ~delay:params.outage_repair (fun () ->
                  Array.iteri (fun node s -> if s = supply then repair_node node) supplies;
                  note_state ();
                  schedule_outages supply))))
  in
  for node = 0 to n - 1 do
    schedule_node_failures node
  done;
  List.iter schedule_outages supply_ids;
  Events.run_until q params.horizon;
  note_state ();
  if not !was_reachable then unavailable := !unavailable + (Clock.now clock - !last_state_change);
  let avail = 1. -. (Time.to_s !unavailable /. Time.to_s params.horizon) in
  (avail, !losses)

let simulate ?(params = default_params) ?(seed = 42) ~trials deployment =
  if trials <= 0 then invalid_arg "Availability.simulate: trials must be positive";
  let rng = Rng.create seed in
  let sum_avail = ref 0. and sum_losses = ref 0 and lossy = ref 0 in
  for _ = 1 to trials do
    let avail, losses = trial params (Rng.split rng) deployment in
    sum_avail := !sum_avail +. avail;
    sum_losses := !sum_losses + losses;
    if losses > 0 then incr lossy
  done;
  let per_decade =
    float_of_int !sum_losses /. float_of_int trials
    *. (Time.to_s (days 3650.) /. Time.to_s params.horizon)
  in
  {
    label = deployment.label;
    trials;
    availability = !sum_avail /. float_of_int trials;
    loss_events_per_decade = per_decade;
    trials_with_loss = float_of_int !lossy /. float_of_int trials;
  }

let pp_result ppf r =
  Format.fprintf ppf "%s: %.4f%% available, %.3f losses/decade (%d trials)" r.label
    (100. *. r.availability) r.loss_events_per_decade r.trials
