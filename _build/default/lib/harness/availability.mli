open Sim

(** Monte-Carlo availability and data-loss study (paper §1).

    The paper's reliability argument is qualitative: power outages are
    correlated per supply, hardware/software errors strike nodes
    independently, so two memory copies on {e different} supplies make
    data loss "unlikely".  This module quantifies that with a failure /
    repair process simulation over the {!Sim.Events} queue: nodes fail
    (software, hardware) and power supplies fail; copies of the
    database live on nodes in a given medium; a memory copy dies with
    its node and is resynced on repair if any valid copy remains; a
    disk copy survives everything but is unreachable while its node is
    down; a Rio copy follows Rio's crash matrix (plus a small UPS
    malfunction probability on outages).

    Data is {e lost} the instant no valid copy exists; the database is
    {e available} while at least one valid copy sits on a live node. *)

type medium = Disk | Rio_ups | Memory

type replica = { on_node : int; medium : medium }

type deployment = {
  label : string;
  node_supplies : int list;  (** Power supply of each node, by index. *)
  replicas : replica list;
  spare_pool : bool;
      (** Whether a lost memory copy is re-mirrored onto a spare
          workstation after [remirror_delay] (the PERSEAS deployments),
          instead of waiting for the failed host's repair. *)
}

(** Textbook deployments compared in the paper's narrative. *)
val rvm_single_node : deployment
val rio_ups_single_node : deployment
val perseas_same_supply : deployment
val perseas_two_supplies : deployment
val perseas_three_way : deployment
val standard_deployments : deployment list

type params = {
  software_mtbf : Time.t;  (** Per node. *)
  hardware_mtbf : Time.t;  (** Per node. *)
  outage_mtbf : Time.t;  (** Per power supply. *)
  software_repair : Time.t;  (** Reboot. *)
  hardware_repair : Time.t;  (** Replace parts. *)
  outage_repair : Time.t;  (** Power restored. *)
  ups_malfunction : float;  (** P(UPS fails to absorb an outage). *)
  remirror_delay : Time.t;
      (** Time to re-mirror onto a spare after losing a memory copy. *)
  horizon : Time.t;  (** Simulated duration per trial. *)
}

val default_params : params
(** Commodity-workstation figures: software MTBF 5 days, hardware MTBF
    120 days, outages every 60 days per supply, 2 % UPS malfunction,
    10-year horizon. *)

type result = {
  label : string;
  trials : int;
  availability : float;  (** Mean fraction of time the data is reachable. *)
  loss_events_per_decade : float;  (** Mean data-loss events per trial horizon. *)
  trials_with_loss : float;  (** Fraction of trials that lost data at least once. *)
}

val simulate : ?params:params -> ?seed:int -> trials:int -> deployment -> result

val pp_result : Format.formatter -> result -> unit
