let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = ' ' || c = 'x' || c = '%') s

let print ?title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))) all;
  (match title with Some t -> Printf.printf "\n== %s ==\n" t | None -> ());
  let render is_header row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = widths.(i) in
          if (not is_header) && looks_numeric cell then Printf.sprintf "%*s" w cell
          else Printf.sprintf "%-*s" w cell)
        row
    in
    print_endline (String.concat "  " cells)
  in
  (match all with
  | h :: rest ->
      render true h;
      print_endline (String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-')));
      List.iter (render false) rest
  | [] -> ());
  ()

let save_csv ~path ~header rows =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let emit row = output_string oc (String.concat "," (List.map escape row) ^ "\n") in
  emit header;
  List.iter emit rows;
  close_out oc

let fmt_int n =
  let s = string_of_int (abs n) in
  let buffer = Buffer.create 16 in
  let len = String.length s in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buffer ' ';
      Buffer.add_char buffer c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buffer

let fmt_tps x = fmt_int (int_of_float (Float.round x))

let fmt_us x = if x < 100. then Printf.sprintf "%.2f" x else fmt_int (int_of_float (Float.round x))

let fmt_ms x = Printf.sprintf "%.2f" x

let fmt_ratio x =
  if x >= 100. then fmt_int (int_of_float (Float.round x)) ^ "x" else Printf.sprintf "%.1fx" x
