(** Plain-text table rendering and CSV output for the benchmark
    harness. *)

val print : ?title:string -> header:string list -> string list list -> unit
(** Render an aligned table to stdout.  Numeric-looking cells are
    right-aligned. *)

val save_csv : path:string -> header:string list -> string list list -> unit
(** Write the same rows as CSV (creating parent directories). *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. ["95 321"]. *)

val fmt_tps : float -> string
val fmt_us : float -> string
val fmt_ms : float -> string
val fmt_ratio : float -> string
(** e.g. ["2 113x"]. *)
