open Sim
module Node = Cluster.Node
module Client = Netram.Client
module Remote_segment = Netram.Remote_segment
module Device = Disk.Device
module Layout = Perseas.Layout

type config = {
  log_capacity : int;
  write_buffer : int;
  drain_bytes_per_s : float;
  software_overhead_commit : Time.t;
  strict_updates : bool;
}

let default_config =
  {
    log_capacity = 4 * 1024 * 1024;
    write_buffer = 256 * 1024;
    (* Log pages land on disk between database-file traffic, so the
       effective rate is seek-bound page writes, not the media rate. *)
    drain_bytes_per_s = 0.5e6;
    software_overhead_commit = Time.us 4.;
    strict_updates = true;
  }

let log_export_name = "rwal!log"
let meta_export_name = "rwal!meta"
let log_header_size = 64
let tail_offset = 16

type segment = {
  seg_name : string;
  index : int;
  size : int;
  local : Mem.Segment.t;
  file_off : int;
}

type undo_entry = { u_seg : segment; u_off : int; u_data : bytes }

type txn = { owner : t; mutable undo : undo_entry list; mutable open_ : bool }

and t = {
  config : config;
  client : Client.t;
  device : Device.t;
  log_remote : Remote_segment.t;
  meta_remote : Remote_segment.t;
  log_local : Mem.Segment.t; (* local log replica / staging *)
  mutable segs : segment list; (* newest first *)
  mutable db_tail : int;
  mutable epoch : int64;
  mutable log_tail : int; (* bytes of records, relative to header end *)
  mutable ready : bool;
  mutable active : txn option;
  (* Asynchronous-writer model: [level] bytes not yet on disk as of
     [level_at]. *)
  mutable level : float;
  mutable level_at : Time.t;
  mutable n_checkpoints : int;
  mutable stalled : Time.t;
}

let clock t = Cluster.clock (Client.cluster t.client)
let local_node t = Client.local_node t.client
let local_dram t = Node.dram (local_node t)
let params t = Sci.Nic.params (Cluster.nic (Client.cluster t.client))

let charge_local_copy t len = Clock.advance (clock t) (Sci.Model.local_copy (params t) len)

let alloc_local t size what =
  match Mem.Allocator.alloc (Node.allocator (local_node t)) ~align:64 size with
  | Some seg -> seg
  | None -> failwith (Printf.sprintf "Remote_wal: out of local memory for %s" what)

let max_segments = 64
let meta_bytes = Layout.meta_size ~max_segments

let create ?(config = default_config) ~client ~device () =
  if config.log_capacity < 4096 then invalid_arg "Remote_wal.create: log too small";
  if config.write_buffer <= 0 || config.drain_bytes_per_s <= 0. then
    invalid_arg "Remote_wal.create: bad writer parameters";
  let log_remote =
    Client.malloc client ~name:log_export_name ~size:(log_header_size + config.log_capacity)
  in
  let meta_remote = Client.malloc client ~name:meta_export_name ~size:meta_bytes in
  let t =
    {
      config;
      client;
      device;
      log_remote;
      meta_remote;
      log_local = Mem.Segment.v ~base:0 ~len:1;
      segs = [];
      db_tail = 0;
      epoch = 0L;
      log_tail = 0;
      ready = false;
      active = None;
      level = 0.;
      level_at = Time.zero;
      n_checkpoints = 0;
      stalled = Time.zero;
    }
  in
  let t = { t with log_local = alloc_local t (log_header_size + config.log_capacity) "log replica" } in
  t

let config t = t.config
let segment_by_name t name = List.find_opt (fun s -> s.seg_name = name) t.segs
let checkpoints t = t.n_checkpoints
let stall_time t = t.stalled

let checksum t seg = Mem.Image.checksum (local_dram t) ~off:(Mem.Segment.base seg.local) ~len:seg.size

let check_seg_range seg ~off ~len op =
  if off < 0 || len < 0 || off + len > seg.size then
    invalid_arg (Printf.sprintf "Remote_wal.%s: [%d,+%d) outside %S" op off len seg.seg_name)

let malloc t ~name ~size =
  if t.ready then failwith "Remote_wal.malloc: database already initialised";
  if size <= 0 then invalid_arg "Remote_wal.malloc: size must be positive";
  if List.length t.segs >= max_segments then failwith "Remote_wal.malloc: too many segments";
  if segment_by_name t name <> None then failwith (Printf.sprintf "Remote_wal.malloc: segment %S exists" name);
  ignore (Layout.db_export_name name);
  if t.db_tail + size > Device.capacity t.device then failwith "Remote_wal.malloc: database file full";
  let local = alloc_local t size (Printf.sprintf "segment %S" name) in
  let seg = { seg_name = name; index = List.length t.segs; size; local; file_off = t.db_tail } in
  t.db_tail <- t.db_tail + size;
  t.segs <- seg :: t.segs;
  seg

let write_segment_to_file t seg =
  let data = Mem.Image.read_bytes (local_dram t) ~off:(Mem.Segment.base seg.local) ~len:seg.size in
  Device.write t.device ~off:seg.file_off data

let push_meta t =
  let b = Bytes.make meta_bytes '\000' in
  Layout.write_meta_magic b;
  Layout.write_epoch b t.epoch;
  Layout.write_nsegs b (List.length t.segs);
  List.iter (fun s -> Layout.write_table_entry b ~index:s.index ~name:s.seg_name ~size:s.size) t.segs;
  let image = local_dram t in
  let staging = alloc_local t meta_bytes "meta staging" in
  Mem.Image.write_bytes image ~off:(Mem.Segment.base staging) b;
  Client.write t.client t.meta_remote ~seg_off:0 ~src_off:(Mem.Segment.base staging) ~len:meta_bytes;
  Mem.Allocator.free (Node.allocator (local_node t)) staging

(* The local log replica holds the header too; keep both copies of the
   header in sync with small writes. *)
let write_log_header t =
  let image = local_dram t in
  let base = Mem.Segment.base t.log_local in
  Mem.Image.write_u64 image base Layout.meta_magic;
  Mem.Image.write_u64 image (base + 8) t.epoch;
  Mem.Image.write_u64 image (base + tail_offset) (Int64.of_int t.log_tail);
  Client.write t.client t.log_remote ~seg_off:0 ~src_off:base ~len:24

let push_tail t =
  let image = local_dram t in
  let base = Mem.Segment.base t.log_local in
  Mem.Image.write_u64 image (base + tail_offset) (Int64.of_int t.log_tail);
  (* The commit point: a single 8-byte remote store. *)
  Client.write t.client t.log_remote ~seg_off:tail_offset ~src_off:(base + tail_offset) ~len:8

let init_done t =
  if t.ready then failwith "Remote_wal.init_done: already initialised";
  t.epoch <- 1L;
  List.iter (write_segment_to_file t) (List.rev t.segs);
  push_meta t;
  write_log_header t;
  t.level_at <- Clock.now (clock t);
  t.ready <- true

let begin_transaction t =
  if not t.ready then failwith "Remote_wal.begin_transaction: call init_done first";
  (match t.active with
  | Some _ -> failwith "Remote_wal.begin_transaction: transaction already open"
  | None -> ());
  let txn = { owner = t; undo = []; open_ = true } in
  t.active <- Some txn;
  txn

let check_open txn op = if not txn.open_ then failwith (Printf.sprintf "Remote_wal.%s: transaction closed" op)

let set_range txn seg ~off ~len =
  check_open txn "set_range";
  check_seg_range seg ~off ~len "set_range";
  if len = 0 then invalid_arg "Remote_wal.set_range: empty range";
  let t = txn.owner in
  let data = Mem.Image.read_bytes (local_dram t) ~off:(Mem.Segment.base seg.local + off) ~len in
  charge_local_copy t len;
  txn.undo <- { u_seg = seg; u_off = off; u_data = data } :: txn.undo

(* Drain the async writer up to the current instant, then account the
   new record bytes; if the buffer overflows, the commit stalls until
   the disk catches up — this is where [19] degrades under load. *)
let account_async_writer t bytes =
  let now = Clock.now (clock t) in
  let drained = t.config.drain_bytes_per_s *. Time.to_s (now - t.level_at) in
  t.level <- Float.max 0. (t.level -. drained) +. float_of_int bytes;
  t.level_at <- now;
  if t.level > float_of_int t.config.write_buffer then begin
    let excess = t.level -. float_of_int t.config.write_buffer in
    let stall = Time.s (excess /. t.config.drain_bytes_per_s) in
    Clock.advance (clock t) stall;
    t.stalled <- t.stalled + stall;
    t.level <- float_of_int t.config.write_buffer;
    t.level_at <- Clock.now (clock t)
  end

(* Log full: write every segment to the database file (synchronously,
   charged) and restart the log under a new epoch. *)
let checkpoint t =
  List.iter (write_segment_to_file t) (List.rev t.segs);
  t.epoch <- Int64.add t.epoch 1L;
  t.log_tail <- 0;
  write_log_header t;
  t.level <- 0.;
  t.level_at <- Clock.now (clock t);
  t.n_checkpoints <- t.n_checkpoints + 1

let commit txn =
  check_open txn "commit";
  let t = txn.owner in
  Clock.advance (clock t) t.config.software_overhead_commit;
  let image = local_dram t in
  let total_record_bytes = ref 0 in
  let append u =
    let len = Bytes.length u.u_data in
    (* Checkpoint before encoding: the record must carry the epoch it
       will live under. *)
    let record_len = Layout.undo_header_size + len in
    if t.log_tail + record_len > t.config.log_capacity then checkpoint t;
    if t.log_tail + record_len > t.config.log_capacity then failwith "Remote_wal.commit: record larger than log";
    let after = Mem.Image.read_bytes image ~off:(Mem.Segment.base u.u_seg.local + u.u_off) ~len in
    let record =
      Layout.encode_undo
        { Layout.epoch = t.epoch; seg_index = u.u_seg.index; off = u.u_off; len }
        ~payload:after
    in
    let slot = t.log_tail in
    let staging_off = Mem.Segment.base t.log_local + log_header_size + slot in
    Mem.Image.write_bytes image ~off:staging_off record;
    charge_local_copy t record_len;
    (* Mirror the record into the remote log replica. *)
    Client.write t.client t.log_remote ~seg_off:(log_header_size + slot) ~src_off:staging_off
      ~len:record_len;
    t.log_tail <- Layout.undo_slot ~off:slot ~payload_len:len;
    total_record_bytes := !total_record_bytes + record_len
  in
  List.iter append (List.rev txn.undo);
  push_tail t;
  account_async_writer t !total_record_bytes;
  txn.open_ <- false;
  t.active <- None

let abort txn =
  check_open txn "abort";
  let t = txn.owner in
  List.iter
    (fun u ->
      Mem.Image.write_bytes (local_dram t) ~off:(Mem.Segment.base u.u_seg.local + u.u_off) u.u_data;
      charge_local_copy t (Bytes.length u.u_data))
    txn.undo;
  txn.open_ <- false;
  t.active <- None

let covered txn seg ~off ~len =
  List.exists
    (fun u -> u.u_seg == seg && u.u_off <= off && off + len <= u.u_off + Bytes.length u.u_data)
    txn.undo

let write t seg ~off data =
  let len = Bytes.length data in
  check_seg_range seg ~off ~len "write";
  if t.ready && t.config.strict_updates then begin
    match t.active with
    | Some txn when covered txn seg ~off ~len -> ()
    | Some _ -> failwith (Printf.sprintf "Remote_wal.write: [%d,+%d) of %S not covered by set_range" off len seg.seg_name)
    | None -> failwith "Remote_wal.write: no open transaction"
  end;
  Mem.Image.write_bytes (local_dram t) ~off:(Mem.Segment.base seg.local + off) data;
  charge_local_copy t len

let read t seg ~off ~len =
  check_seg_range seg ~off ~len "read";
  Mem.Image.read_bytes (local_dram t) ~off:(Mem.Segment.base seg.local + off) ~len

let recover ?(config = default_config) ~cluster ~local ~server ~device () =
  let client = Client.create ~cluster ~local ~server in
  let connect name =
    match Client.connect client ~name with
    | Some h -> h
    | None -> failwith (Printf.sprintf "Remote_wal.recover: %s not found" name)
  in
  let meta_remote = connect meta_export_name in
  let log_remote = connect log_export_name in
  let remote_image = Node.dram (Netram.Server.node server) in
  let meta =
    Mem.Image.read_bytes remote_image ~off:(Remote_segment.base meta_remote) ~len:meta_bytes
  in
  if Layout.read_meta_magic meta <> Layout.meta_magic then
    failwith "Remote_wal.recover: no metadata on this server";
  let nic = Cluster.nic cluster in
  let p = Sci.Nic.params nic in
  let hops = max 1 (Cluster.hops cluster ~src:local ~dst:(Node.id (Netram.Server.node server))) in
  Clock.advance (Cluster.clock cluster) (Sci.Model.read_range p ~hops ~off:0 ~len:meta_bytes ());
  let nsegs = Layout.read_nsegs meta in
  let t =
    {
      config;
      client;
      device;
      log_remote;
      meta_remote;
      log_local = Mem.Segment.v ~base:0 ~len:1;
      segs = [];
      db_tail = 0;
      epoch = 0L;
      log_tail = 0;
      ready = false;
      active = None;
      level = 0.;
      level_at = Clock.now (Cluster.clock cluster);
      n_checkpoints = 0;
      stalled = Time.zero;
    }
  in
  let t = { t with log_local = alloc_local t (log_header_size + config.log_capacity) "log replica" } in
  (* Database file state as of the last checkpoint. *)
  for index = 0 to nsegs - 1 do
    let name, size = Layout.read_table_entry meta ~index in
    let seg = malloc t ~name ~size in
    let data = Device.read device ~off:seg.file_off ~len:size in
    Mem.Image.write_bytes (local_dram t) ~off:(Mem.Segment.base seg.local) data
  done;
  (* Replay the remote log replica up to the committed tail. *)
  let header =
    Mem.Image.read_bytes remote_image ~off:(Remote_segment.base log_remote) ~len:log_header_size
  in
  if Bytes.get_int64_le header 0 <> Layout.meta_magic then failwith "Remote_wal.recover: bad log header";
  let epoch = Bytes.get_int64_le header 8 in
  let tail = Int64.to_int (Bytes.get_int64_le header tail_offset) in
  if tail < 0 || tail > config.log_capacity then failwith "Remote_wal.recover: corrupt log tail";
  let log_bytes =
    Mem.Image.read_bytes remote_image
      ~off:(Remote_segment.base log_remote + log_header_size)
      ~len:tail
  in
  Clock.advance (Cluster.clock cluster)
    (Sci.Model.read_range p ~hops ~off:log_header_size ~len:(max tail 8) ());
  let by_index = Array.of_list (List.rev t.segs) in
  let rec replay off =
    match Layout.decode_undo_header log_bytes ~off with
    | Some h when h.Layout.epoch = epoch && Layout.verify_undo log_bytes ~off h ->
        if h.seg_index < Array.length by_index then begin
          let seg = by_index.(h.seg_index) in
          if h.off + h.len <= seg.size then
            Mem.Image.write_bytes (local_dram t)
              ~off:(Mem.Segment.base seg.local + h.off)
              (Bytes.sub log_bytes (off + Layout.undo_header_size) h.len)
        end;
        replay (Layout.undo_slot ~off ~payload_len:h.Layout.len)
    | _ -> ()
  in
  replay 0;
  t.epoch <- epoch;
  t.log_tail <- tail;
  let image = local_dram t in
  Mem.Image.write_bytes image ~off:(Mem.Segment.base t.log_local)
    (Bytes.cat header log_bytes);
  t.ready <- true;
  (* Checkpoint so the rebuilt state is on disk and the log restarts. *)
  checkpoint t;
  t

module Engine = struct
  type nonrec t = t
  type nonrec segment = segment
  type nonrec txn = txn

  let name = "RemoteWAL"
  let malloc = malloc
  let find_segment = segment_by_name
  let init_done = init_done
  let begin_transaction = begin_transaction
  let set_range txn seg ~off ~len = set_range txn seg ~off ~len
  let commit = commit
  let abort = abort
  let write = write
  let read = read
end
