open Sim

(** The Remote-WAL baseline: Ioanidis, Markatos & Sevaslidou's scheme
    discussed in §2 of the paper — keep the write-ahead log replicated
    in (local and) remote main memory, acknowledge commits as soon as
    the records are in remote memory, and write the log to disk
    {e asynchronously} in the background.

    The paper's critique, which this model reproduces: all transaction
    data still flows to the disk, so under sustained load the
    asynchronous writes back up, the write buffer fills, and commits
    stall at disk throughput.  A short burst commits at network speed;
    a long run converges to [drain_bytes_per_s / bytes_per_commit].

    Recovery uses the remote log replica: the database file (written at
    checkpoints) plus a replay of the remotely-mirrored records — so a
    primary crash loses nothing that was acknowledged, like PERSEAS,
    but unlike PERSEAS the steady-state throughput is the disk's. *)

type config = {
  log_capacity : int;  (** Remote log replica size; full ⇒ checkpoint. *)
  write_buffer : int;  (** Async disk write buffer (the stall threshold). *)
  drain_bytes_per_s : float;
      (** Effective background disk-write rate for log traffic
          (seek-bound page writes, not raw media rate). *)
  software_overhead_commit : Time.t;
  strict_updates : bool;
}

val default_config : config

type t
type segment
type txn

val create :
  ?config:config ->
  client:Netram.Client.t ->
  device:Disk.Device.t ->
  unit ->
  t
(** [client] runs on the primary and mirrors the log into the remote
    node's memory; [device] holds the database file and absorbs the
    background log traffic. *)

val config : t -> config
val segment_by_name : t -> string -> segment option
val checksum : t -> segment -> int64
val checkpoints : t -> int
val stall_time : t -> Time.t
(** Total virtual time commits spent waiting for the async writer. *)

val recover :
  ?config:config ->
  cluster:Cluster.t ->
  local:int ->
  server:Netram.Server.t ->
  device:Disk.Device.t ->
  unit ->
  t
(** Rebuild on any node reachable from the log's memory server: read
    the database file from [device] (checkpoint state) and replay the
    remotely-mirrored log records up to the committed tail. *)

module Engine :
  Perseas.Txn_intf.S with type t = t and type segment = segment and type txn = txn
