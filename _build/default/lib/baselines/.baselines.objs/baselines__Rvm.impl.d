lib/baselines/rvm.ml: Array Bytes Clock Cluster Disk Int32 Int64 List Mem Perseas Printf Sci Sim Time
