lib/baselines/remote_wal.ml: Array Bytes Clock Cluster Disk Float Int64 List Mem Netram Perseas Printf Sci Sim Time
