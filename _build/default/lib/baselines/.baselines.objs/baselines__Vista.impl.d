lib/baselines/vista.ml: Array Bytes Char Clock Cluster Disk Int64 List Perseas Printf Sim Time
