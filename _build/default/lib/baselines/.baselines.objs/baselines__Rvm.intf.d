lib/baselines/rvm.mli: Cluster Disk Perseas Sim Time
