lib/baselines/vista.mli: Cluster Disk Perseas Sim Time
