lib/baselines/remote_wal.mli: Cluster Disk Netram Perseas Sim Time
