open Sim

(** RVM-style recoverable virtual memory: the write-ahead-logging
    baseline of the paper (Figure 2).

    The database lives in local main memory; [set_range] snapshots
    before-images into an in-memory undo log (for abort), and [commit]
    appends after-image redo records to a log file on stable storage
    and forces it synchronously — the disk access PERSEAS exists to
    eliminate.  When the log fills past a threshold, dirty segments are
    written back to the database file and the log is truncated.

    Instantiating the same code over a {!Disk.Device.Rio} backend gives
    the RVM-Rio baseline: identical logging logic, memory-speed stable
    writes, but still RVM's software path cost.

    [group_commit] batches log forces over N transactions (the
    "sophisticated optimisation" of §6 that PERSEAS still beats): with
    N > 1 a commit's records may reach stable storage only at the
    group's force, trading durability lag for throughput, exactly like
    the real optimisation. *)

type config = {
  log_size : int;
  group_commit : int;  (** Force the log every N commits (1 = always). *)
  software_overhead_commit : Time.t;
      (** RVM library path cost per commit (record building, buffer
          management, syscall) — why RVM-Rio is ~10⁴ tps and not 10⁶. *)
  software_overhead_set_range : Time.t;
  metadata_force : bool;
      (** Charge a file-system metadata update (a far-away device
          write) with every force, as a log file on a real FS does. *)
  truncate_threshold : float;  (** Truncate when used/capacity exceeds this. *)
  strict_updates : bool;
}

val default_config : config

type t
type segment
type txn

val create : ?config:config -> node:Cluster.Node.t -> device:Disk.Device.t -> unit -> t
(** The device must be large enough for the planned segments plus
    [log_size] plus a metadata block; segment space is claimed by
    {!Engine.malloc} calls before [init_done]. *)

val device : t -> Disk.Device.t
val config : t -> config

val segment_by_name : t -> string -> segment option
val checksum : t -> segment -> int64
val forces : t -> int
(** Synchronous log forces performed so far. *)

val truncations : t -> int

val flush : t -> unit
(** Force any pending group-commit batch (end-of-run barrier so that
    throughput numbers include all log I/O). *)

val recover : ?config:config -> node:Cluster.Node.t -> device:Disk.Device.t -> unit -> t
(** Rebuild the in-memory database from the database file plus a redo
    scan of the log (torn tails are discarded by the log layer).
    Raises [Failure] if the device contents did not survive the crash
    (e.g. Rio after a power outage without UPS). *)

module Engine :
  Perseas.Txn_intf.S with type t = t and type segment = segment and type txn = txn

val name_for : Disk.Device.t -> string
(** "RVM" or "RVM-Rio" depending on the backend. *)
