open Sim
module Node = Cluster.Node
module Device = Disk.Device
module Log = Disk.Log
module Layout = Perseas.Layout

type config = {
  log_size : int;
  group_commit : int;
  software_overhead_commit : Time.t;
  software_overhead_set_range : Time.t;
  metadata_force : bool;
  truncate_threshold : float;
  strict_updates : bool;
}

let default_config =
  {
    log_size = 4 * 1024 * 1024;
    group_commit = 1;
    software_overhead_commit = Time.us 70.;
    software_overhead_set_range = Time.us 5.;
    metadata_force = true;
    truncate_threshold = 0.5;
    strict_updates = true;
  }

let max_segments = 64
let meta_region_size = 4096
let meta_region_off = 0
let log_off = meta_region_size

type segment = {
  seg_name : string;
  index : int;
  size : int;
  local : Mem.Segment.t;  (** placement in node DRAM *)
  file_off : int;  (** placement in the database file region *)
}

type undo_entry = { u_seg : segment; u_off : int; u_data : bytes }

type txn = { owner : t; mutable undo : undo_entry list; mutable open_ : bool }

and t = {
  config : config;
  node : Node.t;
  device : Device.t;
  log : Log.t;
  mutable segs : segment list; (* newest first *)
  mutable db_tail : int; (* next free offset in the db file region *)
  mutable ready : bool;
  mutable active : txn option;
  mutable pending_commits : int;
  mutable dirty : segment list;
  mutable n_forces : int;
  mutable n_truncations : int;
}

let db_base config = log_off + config.log_size

let create ?(config = default_config) ~node ~device () =
  if config.group_commit < 1 then invalid_arg "Rvm.create: group_commit must be >= 1";
  if db_base config >= Device.capacity device then invalid_arg "Rvm.create: device too small";
  let log = Log.create device ~base:log_off ~size:config.log_size in
  {
    config;
    node;
    device;
    log;
    segs = [];
    db_tail = db_base config;
    ready = false;
    active = None;
    pending_commits = 0;
    dirty = [];
    n_forces = 0;
    n_truncations = 0;
  }

let device t = t.device
let config t = t.config
let segment_by_name t name = List.find_opt (fun s -> s.seg_name = name) t.segs
let forces t = t.n_forces
let truncations t = t.n_truncations

let clock t = Node.clock t.node
let dram t = Node.dram t.node

let charge_local_copy t len = Clock.advance (clock t) (Sci.Model.local_copy Sci.Params.default len)

let checksum t seg = Mem.Image.checksum (dram t) ~off:(Mem.Segment.base seg.local) ~len:seg.size

let check_seg_range seg ~off ~len op =
  if off < 0 || len < 0 || off + len > seg.size then
    invalid_arg (Printf.sprintf "Rvm.%s: [%d,+%d) outside %S" op off len seg.seg_name)

let malloc t ~name ~size =
  if t.ready then failwith "Rvm.malloc: database already initialised";
  if size <= 0 then invalid_arg "Rvm.malloc: size must be positive";
  if List.length t.segs >= max_segments then failwith "Rvm.malloc: too many segments";
  if segment_by_name t name <> None then failwith (Printf.sprintf "Rvm.malloc: segment %S exists" name);
  ignore (Layout.db_export_name name) (* validate the name rules *);
  if t.db_tail + size > Device.capacity t.device then failwith "Rvm.malloc: database file region full";
  let local =
    match Mem.Allocator.alloc (Node.allocator t.node) ~align:64 size with
    | Some seg -> seg
    | None -> failwith "Rvm.malloc: out of node memory"
  in
  let seg = { seg_name = name; index = List.length t.segs; size; local; file_off = t.db_tail } in
  t.db_tail <- t.db_tail + size;
  t.segs <- seg :: t.segs;
  seg

let write_meta t =
  let b = Bytes.make meta_region_size '\000' in
  Layout.write_meta_magic b;
  Layout.write_nsegs b (List.length t.segs);
  List.iter (fun s -> Layout.write_table_entry b ~index:s.index ~name:s.seg_name ~size:s.size) t.segs;
  Device.write t.device ~off:meta_region_off b

let write_segment_to_file t seg =
  let data = Mem.Image.read_bytes (dram t) ~off:(Mem.Segment.base seg.local) ~len:seg.size in
  Device.write t.device ~off:seg.file_off data

let init_done t =
  if t.ready then failwith "Rvm.init_done: already initialised";
  write_meta t;
  List.iter (write_segment_to_file t) (List.rev t.segs);
  t.ready <- true

let begin_transaction t =
  if not t.ready then failwith "Rvm.begin_transaction: call init_done first";
  (match t.active with Some _ -> failwith "Rvm.begin_transaction: transaction already open" | None -> ());
  let txn = { owner = t; undo = []; open_ = true } in
  t.active <- Some txn;
  txn

let check_open txn op = if not txn.open_ then failwith (Printf.sprintf "Rvm.%s: transaction closed" op)

let set_range txn seg ~off ~len =
  check_open txn "set_range";
  check_seg_range seg ~off ~len "set_range";
  if len = 0 then invalid_arg "Rvm.set_range: empty range";
  let t = txn.owner in
  Clock.advance (clock t) t.config.software_overhead_set_range;
  let data = Mem.Image.read_bytes (dram t) ~off:(Mem.Segment.base seg.local + off) ~len in
  charge_local_copy t len;
  txn.undo <- { u_seg = seg; u_off = off; u_data = data } :: txn.undo

(* Redo record payload: segment index, offset, length, after-image. *)
let encode_redo seg ~off ~len ~data =
  let b = Bytes.create (12 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int seg.index);
  Bytes.set_int32_le b 4 (Int32.of_int off);
  Bytes.set_int32_le b 8 (Int32.of_int len);
  Bytes.blit data 0 b 12 len;
  b

let decode_redo payload =
  if Bytes.length payload < 12 then failwith "Rvm: corrupt redo record";
  let seg_index = Int32.to_int (Bytes.get_int32_le payload 0) in
  let off = Int32.to_int (Bytes.get_int32_le payload 4) in
  let len = Int32.to_int (Bytes.get_int32_le payload 8) in
  if len <> Bytes.length payload - 12 then failwith "Rvm: corrupt redo record";
  (seg_index, off, Bytes.sub payload 12 len)

let mark_dirty t seg = if not (List.memq seg t.dirty) then t.dirty <- seg :: t.dirty

let truncate t =
  List.iter (write_segment_to_file t) (List.rev t.dirty);
  t.dirty <- [];
  Log.truncate t.log;
  t.n_truncations <- t.n_truncations + 1

let force t =
  Log.force t.log;
  if t.config.metadata_force then begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int t.n_forces);
    Device.write t.device ~off:(meta_region_off + 56) b
  end;
  t.n_forces <- t.n_forces + 1;
  t.pending_commits <- 0;
  if float_of_int (Log.used_bytes t.log) > t.config.truncate_threshold *. float_of_int t.config.log_size
  then truncate t

let commit txn =
  check_open txn "commit";
  let t = txn.owner in
  Clock.advance (clock t) t.config.software_overhead_commit;
  (* Append one redo record per declared range, after-images included;
     the synchronous force is the WAL protocol's step 2 (Figure 2). *)
  List.iter
    (fun u ->
      let len = Bytes.length u.u_data in
      let data = Mem.Image.read_bytes (dram t) ~off:(Mem.Segment.base u.u_seg.local + u.u_off) ~len in
      charge_local_copy t len;
      ignore (Log.append t.log (encode_redo u.u_seg ~off:u.u_off ~len ~data));
      mark_dirty t u.u_seg)
    (List.rev txn.undo);
  t.pending_commits <- t.pending_commits + 1;
  if t.pending_commits >= t.config.group_commit then force t;
  txn.open_ <- false;
  t.active <- None

let abort txn =
  check_open txn "abort";
  let t = txn.owner in
  List.iter
    (fun u ->
      Mem.Image.write_bytes (dram t) ~off:(Mem.Segment.base u.u_seg.local + u.u_off) u.u_data;
      charge_local_copy t (Bytes.length u.u_data))
    txn.undo;
  txn.open_ <- false;
  t.active <- None

let flush t = if t.pending_commits > 0 then force t

let covered txn seg ~off ~len =
  List.exists
    (fun u -> u.u_seg == seg && u.u_off <= off && off + len <= u.u_off + Bytes.length u.u_data)
    txn.undo

let write t seg ~off data =
  let len = Bytes.length data in
  check_seg_range seg ~off ~len "write";
  if t.ready && t.config.strict_updates then begin
    match t.active with
    | Some txn when covered txn seg ~off ~len -> ()
    | Some _ -> failwith (Printf.sprintf "Rvm.write: [%d,+%d) of %S not covered by set_range" off len seg.seg_name)
    | None -> failwith "Rvm.write: no open transaction"
  end;
  Mem.Image.write_bytes (dram t) ~off:(Mem.Segment.base seg.local + off) data;
  charge_local_copy t len

let read t seg ~off ~len =
  check_seg_range seg ~off ~len "read";
  Mem.Image.read_bytes (dram t) ~off:(Mem.Segment.base seg.local + off) ~len

let recover ?(config = default_config) ~node ~device () =
  let meta = Device.read device ~off:meta_region_off ~len:meta_region_size in
  if Layout.read_meta_magic meta <> Layout.meta_magic then
    failwith "Rvm.recover: no database on this device (did stable storage survive the crash?)";
  let nsegs = Layout.read_nsegs meta in
  let log = Log.attach device ~base:log_off ~size:config.log_size in
  let t =
    {
      config;
      node;
      device;
      log;
      segs = [];
      db_tail = db_base config;
      ready = false;
      active = None;
      pending_commits = 0;
      dirty = [];
      n_forces = 0;
      n_truncations = 0;
    }
  in
  for index = 0 to nsegs - 1 do
    let name, size = Layout.read_table_entry meta ~index in
    let seg = malloc t ~name ~size in
    let data = Device.read device ~off:seg.file_off ~len:size in
    Mem.Image.write_bytes (dram t) ~off:(Mem.Segment.base seg.local) data
  done;
  let by_index = Array.of_list (List.rev t.segs) in
  List.iter
    (fun (_, payload) ->
      let seg_index, off, data = decode_redo payload in
      if seg_index < 0 || seg_index >= Array.length by_index then failwith "Rvm.recover: bad redo record";
      let seg = by_index.(seg_index) in
      check_seg_range seg ~off ~len:(Bytes.length data) "recover";
      Mem.Image.write_bytes (dram t) ~off:(Mem.Segment.base seg.local + off) data)
    (Log.replay log);
  t.ready <- true;
  (* Checkpoint: fold the replayed log into the database file. *)
  t.dirty <- t.segs;
  truncate t;
  t

module Engine = struct
  type nonrec t = t
  type nonrec segment = segment
  type nonrec txn = txn

  let name = "RVM"
  let malloc = malloc
  let find_segment = segment_by_name
  let init_done = init_done
  let begin_transaction = begin_transaction
  let set_range txn seg ~off ~len = set_range txn seg ~off ~len
  let commit = commit
  let abort = abort
  let write = write
  let read = read
end

let name_for device =
  match Device.backend device with Device.Magnetic _ -> "RVM" | Device.Rio _ -> "RVM-Rio"
