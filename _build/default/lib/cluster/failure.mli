(** Failure kinds and their semantics (paper §1).

    Power outages take down every node on the affected power supply at
    once — which is why PERSEAS mirrors across nodes on {e different}
    supplies.  Hardware and software errors strike nodes independently.
    A UPS absorbs power outages entirely (the node keeps running). *)

type kind = Disk.Device.failure = Power_outage | Hardware_error | Software_error

val all : kind list
val to_string : kind -> string
val pp : Format.formatter -> kind -> unit

val random : Sim.Rng.t -> kind
(** Uniform over the three kinds. *)
