lib/cluster/cluster.ml: Array Clock Failure List Node Printf Sci Sim
