lib/cluster/node.ml: Clock Failure Mem Printf Sci Sim
