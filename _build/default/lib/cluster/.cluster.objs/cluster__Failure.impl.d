lib/cluster/failure.ml: Disk Format Sim
