lib/cluster/node.mli: Clock Failure Mem Sci Sim
