lib/cluster/cluster.mli: Clock Failure Node Sci Sim
