lib/cluster/failure.mli: Disk Format Sim
