type kind = Disk.Device.failure = Power_outage | Hardware_error | Software_error

let all = [ Power_outage; Hardware_error; Software_error ]

let to_string = function
  | Power_outage -> "power-outage"
  | Hardware_error -> "hardware-error"
  | Software_error -> "software-error"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let random rng =
  match Sim.Rng.int rng 3 with
  | 0 -> Power_outage
  | 1 -> Hardware_error
  | _ -> Software_error
