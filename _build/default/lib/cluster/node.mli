open Sim

(** A workstation: DRAM, a CPU, a power supply, optionally a UPS.

    Crashing a node wipes its DRAM (a rebooted OS reinitialises memory)
    and makes it unreachable until restart; a node with a UPS simply
    survives power outages.  The DRAM is a real byte image, so "the
    mirror still holds the data" is an observable fact, not an
    assumption.  Stable-storage devices (disk, Rio) are separate
    {!Disk.Device} values hosted alongside a node by the testbeds. *)

type t

val create :
  ?ups:bool ->
  id:int ->
  name:string ->
  dram_size:int ->
  power_supply:int ->
  Clock.t ->
  t

val id : t -> int
val name : t -> string
val power_supply : t -> int
val has_ups : t -> bool
val clock : t -> Clock.t

val dram : t -> Mem.Image.t
(** Raises [Failure] when the node is down: a crashed node's memory is
    unreachable until restart. *)

val allocator : t -> Mem.Allocator.t
(** Allocator over the node's whole DRAM; reset on restart. *)

val is_up : t -> bool
val crashes_since_start : t -> int

val crash : t -> Failure.kind -> [ `Crashed | `Survived ]
(** Apply a failure.  [`Survived] when a UPS absorbs a power outage;
    otherwise the node goes down and its DRAM is wiped. Crashing an
    already-down node is a no-op ([`Crashed]). *)

val restart : t -> unit
(** Bring a crashed node back up with empty (wiped) DRAM and a fresh
    allocator.  No-op when already up. *)

val local_copy : t -> ?params:Sci.Params.t -> src_off:int -> dst_off:int -> len:int -> unit -> unit
(** An in-DRAM memcpy: moves real bytes and charges the CPU cost. *)
