open Sim

type t = {
  id : int;
  name : string;
  power_supply : int;
  ups : bool;
  clock : Clock.t;
  memory : Mem.Image.t;
  mutable alloc : Mem.Allocator.t;
  mutable up : bool;
  mutable crashes : int;
}

let create ?(ups = false) ~id ~name ~dram_size ~power_supply clock =
  {
    id;
    name;
    power_supply;
    ups;
    clock;
    memory = Mem.Image.create ~size:dram_size;
    alloc = Mem.Allocator.create ~size:dram_size ();
    up = true;
    crashes = 0;
  }

let id t = t.id
let name t = t.name
let power_supply t = t.power_supply
let has_ups t = t.ups
let clock t = t.clock

let dram t =
  if not t.up then failwith (Printf.sprintf "Node.dram: node %s is down" t.name);
  t.memory

let allocator t =
  if not t.up then failwith (Printf.sprintf "Node.allocator: node %s is down" t.name);
  t.alloc

let is_up t = t.up
let crashes_since_start t = t.crashes

let crash t kind =
  if not t.up then `Crashed
  else if kind = Failure.Power_outage && t.ups then `Survived
  else begin
    t.up <- false;
    t.crashes <- t.crashes + 1;
    Mem.Image.wipe t.memory;
    `Crashed
  end

let restart t =
  if not t.up then begin
    t.alloc <- Mem.Allocator.create ~size:(Mem.Image.size t.memory) ();
    t.up <- true
  end

let local_copy t ?(params = Sci.Params.default) ~src_off ~dst_off ~len () =
  let memory = dram t in
  Mem.Image.blit ~src:memory ~src_off ~dst:memory ~dst_off ~len;
  Clock.advance t.clock (Sci.Model.local_copy params len)
