type t = { base : int; len : int }

let v ~base ~len =
  if base < 0 then invalid_arg "Segment.v: negative base";
  if len <= 0 then invalid_arg "Segment.v: non-positive length";
  { base; len }

let base t = t.base
let len t = t.len
let last t = t.base + t.len - 1

let contains t ~off ~len =
  len >= 0 && off >= t.base && off + len <= t.base + t.len

let overlaps a b = a.base < b.base + b.len && b.base < a.base + a.len
let equal a b = a.base = b.base && a.len = b.len
let pp ppf t = Format.fprintf ppf "[%#x..%#x)" t.base (t.base + t.len)
