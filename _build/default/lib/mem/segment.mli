(** A contiguous region of an {!Image}. *)

type t = private { base : int; len : int }

val v : base:int -> len:int -> t
(** Raises [Invalid_argument] on a negative base or non-positive
    length. *)

val base : t -> int
val len : t -> int
val last : t -> int
(** Offset of the final byte, [base + len - 1]. *)

val contains : t -> off:int -> len:int -> bool
(** Whether [\[off, off+len)] (relative to the image) lies inside the
    segment. *)

val overlaps : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
