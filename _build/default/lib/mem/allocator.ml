type block = { base : int; len : int }

type t = {
  range_base : int;
  range_size : int;
  mutable free_list : block list; (* sorted by base, coalesced *)
  live : (int, int) Hashtbl.t; (* base -> len *)
  mutable live_bytes : int;
}

let create ?(base = 0) ~size () =
  if base < 0 then invalid_arg "Allocator.create: negative base";
  if size <= 0 then invalid_arg "Allocator.create: non-positive size";
  {
    range_base = base;
    range_size = size;
    free_list = [ { base; len = size } ];
    live = Hashtbl.create 64;
    live_bytes = 0;
  }

let is_power_of_two n = n > 0 && n land (n - 1) = 0
let align_up x a = (x + a - 1) land lnot (a - 1)

let alloc t ?(align = 1) n =
  if n <= 0 then invalid_arg "Allocator.alloc: non-positive size";
  if not (is_power_of_two align) then invalid_arg "Allocator.alloc: align not a power of two";
  (* First fit: walk the free list looking for a block in which an
     aligned sub-range of [n] bytes fits; split off leading padding and
     trailing remainder back to the free list. *)
  let rec walk acc = function
    | [] -> None
    | b :: rest ->
        let aligned = align_up b.base align in
        if aligned + n <= b.base + b.len then begin
          let before = if aligned > b.base then [ { base = b.base; len = aligned - b.base } ] else [] in
          let after_base = aligned + n in
          let after =
            if after_base < b.base + b.len then [ { base = after_base; len = b.base + b.len - after_base } ]
            else []
          in
          t.free_list <- List.rev_append acc (before @ after @ rest);
          Hashtbl.replace t.live aligned n;
          t.live_bytes <- t.live_bytes + n;
          Some (Segment.v ~base:aligned ~len:n)
        end
        else walk (b :: acc) rest
  in
  walk [] t.free_list

let alloc_exn t ?align n =
  match alloc t ?align n with
  | Some seg -> seg
  | None -> failwith (Printf.sprintf "Allocator.alloc_exn: out of memory (%d bytes requested)" n)

let is_live t seg =
  match Hashtbl.find_opt t.live (Segment.base seg) with
  | Some len -> len = Segment.len seg
  | None -> false

let free t seg =
  if not (is_live t seg) then
    invalid_arg (Format.asprintf "Allocator.free: %a is not a live block" Segment.pp seg);
  Hashtbl.remove t.live (Segment.base seg);
  t.live_bytes <- t.live_bytes - Segment.len seg;
  let blk = { base = Segment.base seg; len = Segment.len seg } in
  let rec insert = function
    | [] -> [ blk ]
    | b :: rest when blk.base < b.base -> blk :: b :: rest
    | b :: rest -> b :: insert rest
  in
  let rec coalesce = function
    | a :: b :: rest when a.base + a.len = b.base -> coalesce ({ base = a.base; len = a.len + b.len } :: rest)
    | a :: rest -> a :: coalesce rest
    | [] -> []
  in
  t.free_list <- coalesce (insert t.free_list)

let live_segments t =
  Hashtbl.fold (fun base len acc -> Segment.v ~base ~len :: acc) t.live []
  |> List.sort (fun a b -> compare (Segment.base a) (Segment.base b))

let bytes_free t = List.fold_left (fun acc b -> acc + b.len) 0 t.free_list
let bytes_live t = t.live_bytes

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let rec sorted_coalesced = function
    | a :: b :: rest ->
        if a.base + a.len > b.base then Error (Printf.sprintf "free blocks overlap or unsorted at %#x" b.base)
        else if a.base + a.len = b.base then Error (Printf.sprintf "uncoalesced free blocks at %#x" b.base)
        else sorted_coalesced (b :: rest)
    | _ -> Ok ()
  in
  let* () = sorted_coalesced t.free_list in
  let* () =
    if
      List.for_all
        (fun b -> b.base >= t.range_base && b.base + b.len <= t.range_base + t.range_size && b.len > 0)
        t.free_list
    then Ok ()
    else Error "free block outside managed range"
  in
  let live = live_segments t in
  let rec live_disjoint = function
    | a :: b :: rest ->
        if Segment.overlaps a b then Error (Format.asprintf "live blocks overlap: %a %a" Segment.pp a Segment.pp b)
        else live_disjoint (b :: rest)
    | _ -> Ok ()
  in
  let* () = live_disjoint live in
  let* () =
    if
      List.for_all
        (fun s ->
          List.for_all
            (fun b -> not (Segment.overlaps s (Segment.v ~base:b.base ~len:b.len)))
            t.free_list)
        live
    then Ok ()
    else Error "live block overlaps free block"
  in
  let accounted = bytes_free t + bytes_live t in
  if accounted = t.range_size then Ok ()
  else Error (Printf.sprintf "accounting mismatch: free+live = %d, size = %d" accounted t.range_size)
