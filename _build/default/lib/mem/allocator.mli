(** First-fit allocator over a memory range.

    Manages the address space of a node's exportable memory (and of the
    local database heap).  Blocks can be aligned, which the SCI layer
    uses to place mirrored segments on 64-byte boundaries so remote
    copies packetise efficiently. *)

type t

val create : ?base:int -> size:int -> unit -> t
(** An allocator managing [\[base, base+size)].  Default [base] 0. *)

val alloc : t -> ?align:int -> int -> Segment.t option
(** [alloc t ~align n] returns a free block of [n] bytes whose base is a
    multiple of [align] (default 1, must be a power of two), or [None]
    when no block fits.  [n] must be positive. *)

val alloc_exn : t -> ?align:int -> int -> Segment.t
(** Like {!alloc} but raises [Failure] on exhaustion. *)

val free : t -> Segment.t -> unit
(** Returns a block to the free list, coalescing with neighbours.
    Raises [Invalid_argument] if the segment was not live (double free
    or never allocated). *)

val is_live : t -> Segment.t -> bool
val live_segments : t -> Segment.t list
(** Live blocks in ascending base order. *)

val bytes_free : t -> int
val bytes_live : t -> int

val check_invariants : t -> (unit, string) result
(** Validates: free list sorted, gap-coalesced, disjoint from live
    blocks, and [free + live + alignment padding = size].  Used by the
    property tests. *)
