type t = { data : bytes }

let create ~size =
  if size <= 0 then invalid_arg "Image.create: size must be positive";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t off len name =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Image.%s: range [%d, %d+%d) outside image of %d bytes" name off off len
         (Bytes.length t.data))

let read_u8 t off =
  check t off 1 "read_u8";
  Char.code (Bytes.get t.data off)

let write_u8 t off v =
  check t off 1 "write_u8";
  Bytes.set t.data off (Char.chr (v land 0xff))

let read_u32 t off =
  check t off 4 "read_u32";
  Int32.to_int (Bytes.get_int32_le t.data off) land 0xFFFFFFFF

let write_u32 t off v =
  check t off 4 "write_u32";
  Bytes.set_int32_le t.data off (Int32.of_int v)

let read_u64 t off =
  check t off 8 "read_u64";
  Bytes.get_int64_le t.data off

let write_u64 t off v =
  check t off 8 "write_u64";
  Bytes.set_int64_le t.data off v

let read_bytes t ~off ~len =
  check t off len "read_bytes";
  Bytes.sub t.data off len

let write_bytes t ~off b =
  check t off (Bytes.length b) "write_bytes";
  Bytes.blit b 0 t.data off (Bytes.length b)

let blit ~src ~src_off ~dst ~dst_off ~len =
  check src src_off len "blit(src)";
  check dst dst_off len "blit(dst)";
  Bytes.blit src.data src_off dst.data dst_off len

let fill t ~off ~len c =
  check t off len "fill";
  Bytes.fill t.data off len c

let wipe t = Bytes.fill t.data 0 (Bytes.length t.data) '\xde'

let equal_range a b ~off ~len =
  check a off len "equal_range(a)";
  check b off len "equal_range(b)";
  Bytes.sub a.data off len = Bytes.sub b.data off len

let checksum t ~off ~len =
  check t off len "checksum";
  let h = ref 0xcbf29ce484222325L in
  for i = off to off + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get t.data i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let snapshot t ~off ~len = read_bytes t ~off ~len
