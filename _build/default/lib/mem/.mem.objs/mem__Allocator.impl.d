lib/mem/allocator.ml: Format Hashtbl List Printf Result Segment
