lib/mem/image.mli:
