lib/mem/allocator.mli: Segment
