lib/mem/segment.ml: Format
