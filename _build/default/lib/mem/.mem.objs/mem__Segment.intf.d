lib/mem/segment.mli: Format
