lib/mem/image.ml: Bytes Char Int32 Int64 Printf
