(** A node's physical memory as a concrete byte image.

    Data movement in the simulation is real: undo logs, mirrored
    databases and recovery all copy actual bytes between images, so
    correctness properties (atomicity, mirror equality) are checked
    against real state rather than assumed.  Costs are charged
    separately by the components that drive the copies. *)

type t

val create : size:int -> t
(** A zero-filled image of [size] bytes.  [size] must be positive. *)

val size : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_u32 : t -> int -> int
(** Little-endian, 4-byte aligned access not required. *)

val write_u32 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit

val read_bytes : t -> off:int -> len:int -> bytes
val write_bytes : t -> off:int -> bytes -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Copy between (or within) images.  Overlapping self-copies behave
    like [Bytes.blit] (memmove semantics). *)

val fill : t -> off:int -> len:int -> char -> unit

val wipe : t -> unit
(** Model power loss: all bytes revert to a recognisable garbage
    pattern (0xDE), distinct from the zero fill of fresh memory. *)

val equal_range : t -> t -> off:int -> len:int -> bool
val checksum : t -> off:int -> len:int -> int64
(** FNV-1a over the range; used by tests and workload validation. *)

val snapshot : t -> off:int -> len:int -> bytes
(** Alias of {!read_bytes}, named for test-oracle call sites. *)
