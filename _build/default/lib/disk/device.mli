open Sim

(** Stable-storage device: a magnetic disk model, or the Rio file cache.

    The magnetic model charges seek + rotational + transfer time with a
    head-position-aware sequential-append fast path — the cost structure
    that gates write-ahead-logging systems (RVM).  The Rio model is the
    same API at memory speed, with Rio's crash semantics: contents
    survive software crashes (the OS protects the file cache) and, when
    the node has a UPS, power outages too.

    Contents are held in a real {!Mem.Image}; the crash model decides
    which bytes survive which failure kinds. *)

type magnetic_geometry = {
  avg_seek : Time.t;  (** Average seek when the head must move. *)
  track_skip : Time.t;  (** Short head move (near-sequential access). *)
  rpm : int;  (** Spindle speed; average rotational delay is half a turn. *)
  transfer_bytes_per_s : float;
  near_threshold : int;  (** Accesses within this many bytes of the head count as near. *)
}

val default_geometry : magnetic_geometry
(** A 1997-class disk: 10 ms average seek, 5400 rpm, 8 MB/s media rate. *)

val projected_geometry : ?base:magnetic_geometry -> years:int -> unit -> magnetic_geometry
(** The paper's §6 trend for disks: latency improves ~10 %/year
    (seeks, spindle speed) and throughput ~20 %/year. *)

type rio_config = {
  write_overhead : Time.t;  (** Fixed cost of a protected cache write. *)
  bytes_per_s : float;  (** Memory-speed bandwidth. *)
  ups : bool;  (** Whether the hosting node has a UPS. *)
}

val default_rio : rio_config

type backend = Magnetic of magnetic_geometry | Rio of rio_config

type failure = Power_outage | Hardware_error | Software_error

type t

val create : clock:Clock.t -> backend:backend -> capacity:int -> t
val capacity : t -> int
val backend : t -> backend

val write : t -> off:int -> bytes -> unit
(** Synchronous write: returns after the bytes are stable; charges the
    full device cost. *)

val write_buffered : t -> off:int -> bytes -> unit
(** Queue the write in the volatile device buffer at negligible cost;
    it becomes stable at the next {!sync} (or is lost in a crash). *)

val sync : t -> unit
(** Flush buffered writes to stable storage, charging their cost. *)

val buffered_bytes : t -> int

val read : t -> off:int -> len:int -> bytes
(** Reads see stable contents plus any still-buffered writes (the
    device buffer is read-through), and charge transfer cost. *)

val peek : t -> off:int -> len:int -> bytes
(** Zero-cost read of stable contents overlaid with buffered writes.
    Meaningful for memory-backed (Rio) devices, where loads are plain
    DRAM reads; using it to dodge magnetic read costs would be a
    modelling bug, so benches never peek magnetic devices. *)

val crash : t -> failure -> unit
(** Apply a failure: buffered writes are always lost; stable contents
    are wiped exactly when the backend does not survive the failure
    kind (magnetic survives everything; Rio loses contents on a power
    outage without UPS and on hardware errors). *)

val survives : backend -> failure -> bool

val total_io_time : t -> Time.t
(** Cumulated virtual time this device has charged. *)

val writes_performed : t -> int
