(** Append-only log on a stable-storage device (the WAL redo file).

    Records are framed with a magic, a length and a checksum so that
    {!replay} after a crash recovers exactly the prefix of records whose
    force completed — a torn or never-forced tail is detected and
    discarded, which is the standard WAL contract RVM relies on. *)

type t

val create : Device.t -> base:int -> size:int -> t
(** Format a fresh, empty log in [\[base, base+size)] of the device. *)

val attach : Device.t -> base:int -> size:int -> t
(** Re-open an existing log after a crash without reformatting; the
    tail is found by scanning (see {!replay}). *)

val append : t -> bytes -> int
(** Buffer a record; returns its LSN (0-based sequence number).  The
    record is {e not} stable until {!force}.  Raises [Failure] when the
    log region is full — callers must {!truncate}. *)

val force : t -> unit
(** Make all appended records stable (one synchronous device access —
    the group-commit point). *)

val replay : t -> (int * bytes) list
(** All stable, well-formed records in append order, stopping at the
    first torn or missing record. *)

val truncate : t -> unit
(** Drop all records (after they have been applied to the database
    file); reformats the head frame stably. *)

val used_bytes : t -> int
(** Bytes of the region consumed by stable + buffered records. *)

val capacity : t -> int
val record_overhead : int
(** Framing bytes added to each record. *)
