open Sim

type magnetic_geometry = {
  avg_seek : Time.t;
  track_skip : Time.t;
  rpm : int;
  transfer_bytes_per_s : float;
  near_threshold : int;
}

let default_geometry =
  {
    avg_seek = Time.ms 10.;
    track_skip = Time.ms 1.;
    rpm = 5400;
    transfer_bytes_per_s = 8e6;
    near_threshold = 64 * 1024;
  }

let projected_geometry ?(base = default_geometry) ~years () =
  if years < 0 then invalid_arg "Device.projected_geometry: negative years";
  let y = float_of_int years in
  let latency = 0.9 ** y (* -10 %/year *) in
  let bandwidth = 1.2 ** y (* +20 %/year *) in
  {
    base with
    avg_seek = max 1 (int_of_float (float_of_int base.avg_seek *. latency));
    track_skip = max 1 (int_of_float (float_of_int base.track_skip *. latency));
    rpm = int_of_float (float_of_int base.rpm /. latency);
    transfer_bytes_per_s = base.transfer_bytes_per_s *. bandwidth;
  }

type rio_config = { write_overhead : Time.t; bytes_per_s : float; ups : bool }

let default_rio = { write_overhead = Time.us 1.3; bytes_per_s = 80e6; ups = false }

type backend = Magnetic of magnetic_geometry | Rio of rio_config

type failure = Power_outage | Hardware_error | Software_error

type pending = { off : int; data : bytes }

type t = {
  clock : Clock.t;
  backend : backend;
  stable : Mem.Image.t;
  mutable buffer : pending list; (* newest first *)
  mutable head : int; (* magnetic head position *)
  mutable io_time : Time.t;
  mutable writes : int;
}

let create ~clock ~backend ~capacity =
  { clock; backend; stable = Mem.Image.create ~size:capacity; buffer = []; head = 0; io_time = Time.zero; writes = 0 }

let capacity t = Mem.Image.size t.stable
let backend t = t.backend

let rotational_avg g = Time.s (60. /. float_of_int g.rpm /. 2.)

(* Even a sequential synchronous append waits on the platter: by the
   time the next force arrives the target sector has passed under the
   head, so every access pays average rotational delay; seeks are paid
   only when the head has to move far. *)
let magnetic_cost t g ~off ~len =
  let near = off >= t.head && off - t.head <= g.near_threshold in
  let seek = if near then (if off = t.head then Time.zero else g.track_skip) else g.avg_seek in
  seek + rotational_avg g + Time.of_bandwidth ~bytes_per_s:g.transfer_bytes_per_s len

let charge t cost =
  Clock.advance t.clock cost;
  t.io_time <- t.io_time + cost

let access_cost t ~off ~len =
  match t.backend with
  | Magnetic g ->
      let cost = magnetic_cost t g ~off ~len in
      t.head <- off + len;
      cost
  | Rio r -> r.write_overhead + Time.of_bandwidth ~bytes_per_s:r.bytes_per_s len

let write t ~off data =
  let len = Bytes.length data in
  charge t (access_cost t ~off ~len);
  Mem.Image.write_bytes t.stable ~off data;
  t.writes <- t.writes + 1

let write_buffered t ~off data = t.buffer <- { off; data = Bytes.copy data } :: t.buffer

(* Contiguous buffered writes (log appends) coalesce into one device
   access, so forcing a batch of records pays one rotational delay —
   this is what makes group commit effective for the WAL baselines. *)
let sync t =
  let in_order = List.rev t.buffer in
  let flush_run = function
    | [] -> ()
    | run ->
        let run = List.rev run in
        let first = List.hd run in
        let total = List.fold_left (fun acc p -> acc + Bytes.length p.data) 0 run in
        let merged = Bytes.create total in
        ignore
          (List.fold_left
             (fun pos p ->
               Bytes.blit p.data 0 merged pos (Bytes.length p.data);
               pos + Bytes.length p.data)
             0 run);
        write t ~off:first.off merged
  in
  let rec group current current_end = function
    | [] -> flush_run current
    | p :: rest ->
        if current <> [] && p.off = current_end then group (p :: current) (p.off + Bytes.length p.data) rest
        else begin
          flush_run current;
          group [ p ] (p.off + Bytes.length p.data) rest
        end
  in
  group [] 0 in_order;
  t.buffer <- []

let buffered_bytes t = List.fold_left (fun acc p -> acc + Bytes.length p.data) 0 t.buffer

let read t ~off ~len =
  let cost =
    match t.backend with
    | Magnetic g ->
        let c = magnetic_cost t g ~off ~len in
        t.head <- off + len;
        c
    | Rio r -> r.write_overhead + Time.of_bandwidth ~bytes_per_s:r.bytes_per_s len
  in
  charge t cost;
  let result = Mem.Image.read_bytes t.stable ~off ~len in
  (* Read-through: newer buffered writes overlay stable contents. *)
  List.iter
    (fun p ->
      let p_end = p.off + Bytes.length p.data and r_end = off + len in
      let lo = max off p.off and hi = min r_end p_end in
      if lo < hi then Bytes.blit p.data (lo - p.off) result (lo - off) (hi - lo))
    (List.rev t.buffer);
  result

let peek t ~off ~len =
  let result = Mem.Image.read_bytes t.stable ~off ~len in
  List.iter
    (fun p ->
      let p_end = p.off + Bytes.length p.data and r_end = off + len in
      let lo = max off p.off and hi = min r_end p_end in
      if lo < hi then Bytes.blit p.data (lo - p.off) result (lo - off) (hi - lo))
    (List.rev t.buffer);
  result

let survives backend failure =
  match (backend, failure) with
  | Magnetic _, _ -> true
  | Rio r, Power_outage -> r.ups
  | Rio _, Hardware_error -> false
  | Rio _, Software_error -> true

let crash t failure =
  t.buffer <- [];
  if not (survives t.backend failure) then Mem.Image.wipe t.stable

let total_io_time t = t.io_time
let writes_performed t = t.writes
