lib/disk/log.ml: Bytes Char Device Int32 Int64 List
