lib/disk/log.mli: Device
