lib/disk/device.mli: Clock Sim Time
