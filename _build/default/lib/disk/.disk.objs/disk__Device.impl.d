lib/disk/device.ml: Bytes Clock List Mem Sim Time
