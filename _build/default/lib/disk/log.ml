let log_magic = 0x5045524Cl (* "PERL" *)
let record_magic = 0x5245434Cl (* "RECL" *)

let header_size = 4 + 8 (* magic + generation *)
let frame_header = 4 + 8 + 4 + 8 (* magic + generation + length + crc *)
let record_overhead = frame_header

type t = {
  device : Device.t;
  base : int;
  size : int;
  mutable generation : int64;
  mutable tail : int; (* next write offset, relative to device *)
  mutable next_lsn : int;
}

let fnv64 data =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    data;
  !h

let write_header t =
  let b = Bytes.create header_size in
  Bytes.set_int32_le b 0 log_magic;
  Bytes.set_int64_le b 4 t.generation;
  Device.write t.device ~off:t.base b

let create device ~base ~size =
  if size <= header_size + frame_header then invalid_arg "Log.create: region too small";
  let t = { device; base; size; generation = 1L; tail = base + header_size; next_lsn = 0 } in
  write_header t;
  t

let frame t payload =
  let len = Bytes.length payload in
  let b = Bytes.create (frame_header + len) in
  Bytes.set_int32_le b 0 record_magic;
  Bytes.set_int64_le b 4 t.generation;
  Bytes.set_int32_le b 12 (Int32.of_int len);
  Bytes.set_int64_le b 16 (fnv64 payload);
  Bytes.blit payload 0 b frame_header len;
  b

let append t payload =
  let b = frame t payload in
  if t.tail + Bytes.length b > t.base + t.size then failwith "Log.append: log full";
  Device.write_buffered t.device ~off:t.tail b;
  t.tail <- t.tail + Bytes.length b;
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  lsn

let force t = Device.sync t.device

let scan t =
  (* Walk stable records of the current generation from the head. *)
  let records = ref [] in
  let pos = ref (t.base + header_size) in
  let finished = ref false in
  while not !finished do
    if !pos + frame_header > t.base + t.size then finished := true
    else begin
      let hdr = Device.read t.device ~off:!pos ~len:frame_header in
      let magic = Bytes.get_int32_le hdr 0 in
      let gen = Bytes.get_int64_le hdr 4 in
      let len = Int32.to_int (Bytes.get_int32_le hdr 12) in
      let crc = Bytes.get_int64_le hdr 16 in
      if magic <> record_magic || gen <> t.generation || len < 0
         || !pos + frame_header + len > t.base + t.size
      then finished := true
      else begin
        let payload = Device.read t.device ~off:(!pos + frame_header) ~len in
        if fnv64 payload <> crc then finished := true
        else begin
          records := payload :: !records;
          pos := !pos + frame_header + len
        end
      end
    end
  done;
  (List.rev !records, !pos)

let attach device ~base ~size =
  let hdr = Device.read device ~off:base ~len:header_size in
  let magic = Bytes.get_int32_le hdr 0 in
  if magic <> log_magic then failwith "Log.attach: no log header found";
  let generation = Bytes.get_int64_le hdr 4 in
  let t = { device; base; size; generation; tail = base + header_size; next_lsn = 0 } in
  let records, tail = scan t in
  t.tail <- tail;
  t.next_lsn <- List.length records;
  t

let replay t =
  let records, _ = scan t in
  List.mapi (fun i payload -> (i, payload)) records

let truncate t =
  t.generation <- Int64.add t.generation 1L;
  t.tail <- t.base + header_size;
  t.next_lsn <- 0;
  write_header t

let used_bytes t = t.tail - t.base + Device.buffered_bytes t.device
let capacity t = t.size
