(** A persistent FIFO queue over any PERSEAS-style engine.

    A fixed-capacity ring of fixed-size slots: [enqueue] and [dequeue]
    are each one transaction, so a crash never loses or duplicates an
    element — the producer/consumer cursor moves atomically with the
    payload.  The shape under many message brokers' durable queues,
    here mirrored in remote memory by PERSEAS (or logged by the
    baseline engines). *)

type config = {
  slots : int;  (** Ring capacity. *)
  max_item : int;  (** Largest element, in bytes. *)
}

val default_config : config
(** 1024 slots of up to 256 bytes. *)

exception Queue_full
exception Item_too_large

module Make (E : Perseas.Txn_intf.S) : sig
  type t

  val create : ?config:config -> E.t -> name:string -> t
  (** Allocate and format the queue's segments; call before the
      engine's [init_done]. *)

  val attach : ?config:config -> E.t -> name:string -> t
  (** Re-open after recovery; [config] must match [create]'s. *)

  val enqueue : t -> string -> unit
  (** Atomic append.  Raises {!Queue_full} or {!Item_too_large}. *)

  val dequeue : t -> string option
  (** Atomic removal of the oldest element; [None] when empty. *)

  val peek : t -> string option
  (** The oldest element without removing it (read-only). *)

  val length : t -> int
  val is_empty : t -> bool
  val capacity : t -> int

  val to_list : t -> string list
  (** Oldest first (read-only). *)

  val check_invariants : t -> (unit, string) result
  (** Cursor sanity and slot-length bounds. *)
end
