type config = { slots : int; max_item : int }

let default_config = { slots = 1024; max_item = 256 }

exception Queue_full
exception Item_too_large

module Make (E : Perseas.Txn_intf.S) = struct
  type t = {
    config : config;
    engine : E.t;
    meta : E.segment;  (** head (8), tail (8): monotonically increasing cursors. *)
    ring : E.segment;  (** slots x (4-byte length + payload). *)
  }

  let slot_size config = 4 + config.max_item

  let validate config =
    if config.slots <= 0 || config.max_item <= 0 then invalid_arg "Pqueue: empty geometry"

  let segment_names name = (name ^ ".qmeta", name ^ ".qring")

  let create ?(config = default_config) engine ~name =
    validate config;
    let meta_name, ring_name = segment_names name in
    let meta = E.malloc engine ~name:meta_name ~size:64 in
    let ring = E.malloc engine ~name:ring_name ~size:(config.slots * slot_size config) in
    (* Zero cursors are the fresh state. *)
    { config; engine; meta; ring }

  let attach ?(config = default_config) engine ~name =
    validate config;
    let meta_name, ring_name = segment_names name in
    let find n =
      match E.find_segment engine n with
      | Some seg -> seg
      | None -> failwith (Printf.sprintf "Pqueue.attach: segment %S not found" n)
    in
    { config; engine; meta = find meta_name; ring = find ring_name }

  let read_i64 t off = Bytes.get_int64_le (E.read t.engine t.meta ~off ~len:8) 0
  let head t = Int64.to_int (read_i64 t 0) (* next to dequeue *)
  let tail t = Int64.to_int (read_i64 t 8) (* next to enqueue *)
  let length t = tail t - head t
  let is_empty t = length t = 0
  let capacity t = t.config.slots

  let write_i64 t off v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    E.write t.engine t.meta ~off b

  let slot_off t cursor = cursor mod t.config.slots * slot_size t.config

  let read_slot t cursor =
    let off = slot_off t cursor in
    let len = Int32.to_int (Bytes.get_int32_le (E.read t.engine t.ring ~off ~len:4) 0) in
    if len < 0 || len > t.config.max_item then
      failwith (Printf.sprintf "Pqueue: corrupt slot length %d" len);
    Bytes.to_string (E.read t.engine t.ring ~off:(off + 4) ~len)

  let enqueue t item =
    if String.length item > t.config.max_item then raise Item_too_large;
    let txn = E.begin_transaction t.engine in
    if length t >= t.config.slots then begin
      E.abort txn;
      raise Queue_full
    end;
    let cursor = tail t in
    let off = slot_off t cursor in
    E.set_range txn t.ring ~off ~len:(4 + String.length item);
    let header = Bytes.create 4 in
    Bytes.set_int32_le header 0 (Int32.of_int (String.length item));
    E.write t.engine t.ring ~off header;
    if item <> "" then E.write t.engine t.ring ~off:(off + 4) (Bytes.of_string item);
    E.set_range txn t.meta ~off:8 ~len:8;
    write_i64 t 8 (cursor + 1);
    E.commit txn

  let peek t = if is_empty t then None else Some (read_slot t (head t))

  let dequeue t =
    let txn = E.begin_transaction t.engine in
    if is_empty t then begin
      E.abort txn;
      None
    end
    else begin
      let cursor = head t in
      let item = read_slot t cursor in
      E.set_range txn t.meta ~off:0 ~len:8;
      write_i64 t 0 (cursor + 1);
      E.commit txn;
      Some item
    end

  let to_list t =
    let rec go cursor acc = if cursor >= tail t then List.rev acc else go (cursor + 1) (read_slot t cursor :: acc) in
    go (head t) []

  let check_invariants t =
    let h = head t and tl = tail t in
    if h < 0 || tl < h then Error (Printf.sprintf "cursor disorder: head %d tail %d" h tl)
    else if tl - h > t.config.slots then Error "more elements than slots"
    else
      try
        ignore (to_list t);
        Ok ()
      with Failure m -> Error m
end
