(** The engine-generic transactional interface.

    PERSEAS and the three baselines (RVM, RVM-Rio, Vista) all expose
    this signature, so the workloads and the benchmark harness run the
    same code against every engine — the comparison measures the
    engines, not benchmark-code differences.

    Protocol contract (same as the paper's API):
    - create segments with [malloc] and fill them with [write] while
      the store is still cold, then call [init_done] once;
    - afterwards, updates happen inside transactions: [begin_transaction],
      one [set_range] per region {e before} modifying it, the
      modifications via [write], then [commit] or [abort]. *)

module type S = sig
  type t
  type segment
  type txn

  val name : string
  (** Engine name as printed in benchmark tables. *)

  val malloc : t -> name:string -> size:int -> segment

  val find_segment : t -> string -> segment option
  (** Look an existing segment up by name (e.g. after recovery). *)

  val init_done : t -> unit
  (** [PERSEAS_init_remote_db] / the initial checkpoint: the database
      contents become recoverable, and strict update rules apply from
      here on. *)

  val begin_transaction : t -> txn

  val set_range : txn -> segment -> off:int -> len:int -> unit
  (** Declare an update range; logs its before-image.  Must precede the
      [write]s it covers. *)

  val commit : txn -> unit
  val abort : txn -> unit

  val write : t -> segment -> off:int -> bytes -> unit
  (** After [init_done], only legal inside an open transaction and
      within a [set_range]-declared region. *)

  val read : t -> segment -> off:int -> len:int -> bytes
end
