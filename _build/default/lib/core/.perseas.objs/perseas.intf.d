lib/core/perseas.mli: Cluster Disk Layout Netram Txn_intf
