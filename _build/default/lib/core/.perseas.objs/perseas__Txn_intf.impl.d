lib/core/txn_intf.ml:
