lib/core/layout.ml: Bytes Char Int32 Int64 Printf String
