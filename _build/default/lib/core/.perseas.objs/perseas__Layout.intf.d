lib/core/layout.mli:
