lib/core/perseas.ml: Array Bytes Clock Cluster Disk Int32 Int64 Layout List Logs Mem Netram Printf Sci Sim Time Txn_intf
