(** Handle to a segment of remote memory, mapped into the client's
    virtual address space.

    A handle names real bytes in the owner node's DRAM.  Handles become
    stale when the owner crashes (its generation counter advances);
    every access through a stale handle fails, mirroring pointers that
    no longer map anything. *)

type t = {
  owner : int;  (** Node id of the exporting workstation. *)
  owner_generation : int;  (** Owner's crash count when exported. *)
  name : string;  (** Directory name used by [connect_segment]. *)
  seg : Mem.Segment.t;  (** Physical placement in the owner's DRAM. *)
}

val base : t -> int
val len : t -> int
val pp : Format.formatter -> t -> unit
