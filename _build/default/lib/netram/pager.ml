open Sim
module Node = Cluster.Node

let page_size = 4096

type backing =
  | Remote_memory of Client.t
  | Swap_disk of Disk.Device.t

type backing_state =
  | Remote of { client : Client.t; segment : Remote_segment.t }
  | Swap of { device : Disk.Device.t }

type page_state = Absent | Resident of int (* frame index *)

type frame = { mutable page : int; mutable dirty : bool; mutable last_use : int }

type t = {
  node : Node.t;
  backing : backing_state;
  slab : Mem.Segment.t; (* frames * page_size bytes of node DRAM *)
  page_table : page_state array;
  frame_table : frame array;
  mutable tick : int;
  mutable free_frames : int list;
  mutable st_faults : int;
  mutable st_evictions : int;
  mutable st_writebacks : int;
  mutable st_hits : int;
  mutable st_fault_time : Time.t;
}

type stats = { faults : int; evictions : int; writebacks : int; hits : int }

let pages t = Array.length t.page_table
let frames t = Array.length t.frame_table
let clock t = Node.clock t.node
let dram t = Node.dram t.node

let create ~backing ~node ~pages ~frames () =
  if pages <= 0 then invalid_arg "Pager.create: pages must be positive";
  if frames <= 0 || frames > pages then invalid_arg "Pager.create: frames must be in [1, pages]";
  let backing =
    match backing with
    | Remote_memory client ->
        let segment = Client.malloc client ~name:"pager!space" ~size:(pages * page_size) in
        Remote { client; segment }
    | Swap_disk device ->
        if Disk.Device.capacity device < pages * page_size then
          invalid_arg "Pager.create: swap device too small";
        Swap { device }
  in
  let slab =
    match Mem.Allocator.alloc (Node.allocator node) ~align:64 (frames * page_size) with
    | Some seg -> seg
    | None -> failwith "Pager.create: out of node memory for the resident set"
  in
  {
    node;
    backing;
    slab;
    page_table = Array.make pages Absent;
    frame_table = Array.init frames (fun _ -> { page = -1; dirty = false; last_use = 0 });
    tick = 0;
    free_frames = List.init frames Fun.id;
    st_faults = 0;
    st_evictions = 0;
    st_writebacks = 0;
    st_hits = 0;
    st_fault_time = Time.zero;
  }

let frame_off t frame = Mem.Segment.base t.slab + (frame * page_size)

let charged t f =
  let t0 = Clock.now (clock t) in
  f ();
  t.st_fault_time <- t.st_fault_time + (Clock.now (clock t) - t0)

(* Backing I/O: a whole page at a time, real bytes, charged. *)
let backing_read t ~page ~frame =
  match t.backing with
  | Remote { client; segment } ->
      Client.read_to_image client segment ~seg_off:(page * page_size) ~dst:(dram t)
        ~dst_off:(frame_off t frame) ~len:page_size
  | Swap { device } ->
      let data = Disk.Device.read device ~off:(page * page_size) ~len:page_size in
      Mem.Image.write_bytes (dram t) ~off:(frame_off t frame) data

let backing_write t ~page ~frame =
  match t.backing with
  | Remote { client; segment } ->
      (* The local frame is in this node's DRAM: a plain remote write. *)
      Client.write client segment ~seg_off:(page * page_size) ~src_off:(frame_off t frame)
        ~len:page_size
  | Swap { device } ->
      Disk.Device.write device ~off:(page * page_size)
        (Mem.Image.read_bytes (dram t) ~off:(frame_off t frame) ~len:page_size)

let evict t frame =
  let f = t.frame_table.(frame) in
  if f.page >= 0 then begin
    t.page_table.(f.page) <- Absent;
    t.st_evictions <- t.st_evictions + 1;
    if f.dirty then begin
      t.st_writebacks <- t.st_writebacks + 1;
      charged t (fun () -> backing_write t ~page:f.page ~frame)
    end;
    f.page <- -1;
    f.dirty <- false
  end

let pick_victim t =
  (* Least recently used. *)
  let best = ref 0 in
  Array.iteri
    (fun i f -> if f.last_use < t.frame_table.(!best).last_use then best := i)
    t.frame_table;
  !best

let ensure_resident t page =
  t.tick <- t.tick + 1;
  match t.page_table.(page) with
  | Resident frame ->
      t.frame_table.(frame).last_use <- t.tick;
      t.st_hits <- t.st_hits + 1;
      frame
  | Absent ->
      let frame =
        match t.free_frames with
        | f :: rest ->
            t.free_frames <- rest;
            f
        | [] ->
            let victim = pick_victim t in
            evict t victim;
            victim
      in
      t.st_faults <- t.st_faults + 1;
      charged t (fun () -> backing_read t ~page ~frame);
      let f = t.frame_table.(frame) in
      f.page <- page;
      f.dirty <- false;
      f.last_use <- t.tick;
      t.page_table.(page) <- Resident frame;
      frame

let check_range t ~addr ~len op =
  if addr < 0 || len < 0 || addr + len > pages t * page_size then
    invalid_arg (Printf.sprintf "Pager.%s: [%d,+%d) outside the address space" op addr len)

let for_each_page t ~addr ~len f =
  let rec go addr remaining data_off =
    if remaining > 0 then begin
      let page = addr / page_size in
      let in_page = addr mod page_size in
      let chunk = min remaining (page_size - in_page) in
      f ~page ~in_page ~data_off ~chunk;
      go (addr + chunk) (remaining - chunk) (data_off + chunk)
    end
  in
  go addr len 0;
  Clock.advance (clock t) (Sci.Model.local_copy Sci.Params.default len)

let read t ~addr ~len =
  check_range t ~addr ~len "read";
  let out = Bytes.create len in
  for_each_page t ~addr ~len (fun ~page ~in_page ~data_off ~chunk ->
      let frame = ensure_resident t page in
      Bytes.blit
        (Mem.Image.read_bytes (dram t) ~off:(frame_off t frame + in_page) ~len:chunk)
        0 out data_off chunk);
  out

let write t ~addr data =
  let len = Bytes.length data in
  check_range t ~addr ~len "write";
  for_each_page t ~addr ~len (fun ~page ~in_page ~data_off ~chunk ->
      let frame = ensure_resident t page in
      Mem.Image.write_bytes (dram t)
        ~off:(frame_off t frame + in_page)
        (Bytes.sub data data_off chunk);
      t.frame_table.(frame).dirty <- true)

let read_u64 t ~addr = Bytes.get_int64_le (read t ~addr ~len:8) 0

let write_u64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t ~addr b

let flush t =
  Array.iteri
    (fun frame f ->
      if f.page >= 0 && f.dirty then begin
        t.st_writebacks <- t.st_writebacks + 1;
        charged t (fun () -> backing_write t ~page:f.page ~frame);
        f.dirty <- false
      end)
    t.frame_table

let stats t =
  { faults = t.st_faults; evictions = t.st_evictions; writebacks = t.st_writebacks; hits = t.st_hits }

let fault_time t = t.st_fault_time
