type t = {
  owner : int;
  owner_generation : int;
  name : string;
  seg : Mem.Segment.t;
}

let base t = Mem.Segment.base t.seg
let len t = Mem.Segment.len t.seg

let pp ppf t =
  Format.fprintf ppf "%s@node%d:%a" t.name t.owner Mem.Segment.pp t.seg
