open Sim

(** Remote-memory paging: the sister use of network RAM in the paper's
    project ("exploitation of idle memory in a workstation cluster" —
    the related work's reliable remote memory pager).

    A pager exposes a flat paged address space larger than its local
    resident set.  Page faults fetch pages from the backing store and
    evict least-recently-used frames (writing them back when dirty).
    The backing store is either {e remote memory} over the SCI network
    or a {e swap partition} on a magnetic disk — the comparison the
    remote-paging literature makes, reproduced by the [paging] bench:
    a remote-memory fault costs ~150 µs, a disk fault ~15 ms. *)

type backing =
  | Remote_memory of Client.t
      (** Pages live in a segment exported by a memory server. *)
  | Swap_disk of Disk.Device.t
      (** Pages live in a swap region of a device. *)

type t

val create :
  backing:backing -> node:Cluster.Node.t -> pages:int -> frames:int -> unit -> t
(** An address space of [pages] 4 KiB pages with [frames] resident
    frames of the node's DRAM.  [frames] must be in [\[1, pages\]];
    the backing store must be able to hold [pages] pages. *)

val page_size : int
val pages : t -> int
val frames : t -> int

val read : t -> addr:int -> len:int -> bytes
(** May span pages; faults and evicts as needed, charging the backing
    store's costs plus the CPU copy. *)

val write : t -> addr:int -> bytes -> unit

val read_u64 : t -> addr:int -> int64
val write_u64 : t -> addr:int -> int64 -> unit

val flush : t -> unit
(** Write every dirty resident page back to the backing store. *)

type stats = {
  faults : int;
  evictions : int;
  writebacks : int;  (** Dirty evictions (plus flushes). *)
  hits : int;
}

val stats : t -> stats
val fault_time : t -> Time.t
(** Cumulative virtual time spent servicing faults and writebacks. *)
