lib/netram/remote_segment.ml: Format Mem
