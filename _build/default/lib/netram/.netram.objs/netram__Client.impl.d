lib/netram/client.ml: Clock Cluster Printf Remote_segment Sci Server Sim Time
