lib/netram/server.ml: Cluster Hashtbl List Mem Printf Remote_segment
