lib/netram/pager.ml: Array Bytes Client Clock Cluster Disk Fun List Mem Printf Remote_segment Sci Sim Time
