lib/netram/pager.mli: Client Cluster Disk Sim Time
