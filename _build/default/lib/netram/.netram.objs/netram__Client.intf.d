lib/netram/client.mli: Cluster Mem Remote_segment Sci Server Sim Time
