lib/netram/remote_segment.mli: Format Mem
