lib/netram/server.mli: Cluster Remote_segment
