(** A transactional key-value store over any PERSEAS-style engine.

    This is the kind of application the paper motivates: a
    main-memory data repository whose every mutation is an atomic,
    recoverable transaction.  The store is a chained hash table laid
    out in three engine segments (bucket directory, entry slab,
    allocation metadata); each [put]/[delete] runs as one transaction,
    so a crash mid-operation leaves the map either before or after the
    operation — never a broken chain — and, on PERSEAS, the whole map
    survives on the mirror.

    Being a functor over {!Perseas.Txn_intf.S}, the same store runs on
    PERSEAS, RVM, RVM-Rio, Vista or RemoteWAL unchanged. *)

type config = {
  buckets : int;  (** Hash directory size. *)
  capacity : int;  (** Maximum number of live entries. *)
  max_key : int;  (** Longest key, in bytes. *)
  max_value : int;  (** Longest value, in bytes. *)
}

val default_config : config
(** 1024 buckets, 4096 entries, 64-byte keys, 256-byte values. *)

exception Store_full
exception Oversized of string  (** Key or value exceeds the configured maxima. *)

module Make (E : Perseas.Txn_intf.S) : sig
  type t

  val create : ?config:config -> E.t -> name:string -> t
  (** Allocate and format the store's segments.  Must run before the
      engine's [init_done]; the engine remains usable for other
      segments.  [name] prefixes the segment names, so several stores
      can share one engine. *)

  val attach : ?config:config -> E.t -> name:string -> t
  (** Re-open an existing store after recovery (the segments already
      exist in the recovered engine); [config] must match [create]'s. *)

  val put : t -> string -> string -> unit
  (** Insert or update, atomically.  Raises {!Store_full} or
      {!Oversized}. *)

  val get : t -> string -> string option
  (** Read-only: no transaction needed. *)

  val mem : t -> string -> bool

  val delete : t -> string -> bool
  (** [true] if the key existed.  Atomic. *)

  val length : t -> int
  val capacity : t -> int

  val iter : t -> (string -> string -> unit) -> unit
  (** Visit every binding (no particular order). *)

  val fold : t -> init:'a -> f:('a -> string -> string -> 'a) -> 'a

  val check_invariants : t -> (unit, string) result
  (** Structural audit: chains acyclic and bucket-consistent, free
      list and chains partition the slab, stored lengths in range.
      Used by the crash-recovery tests. *)
end
