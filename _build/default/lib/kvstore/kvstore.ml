type config = {
  buckets : int;
  capacity : int;
  max_key : int;
  max_value : int;
}

let default_config = { buckets = 1024; capacity = 4096; max_key = 64; max_value = 256 }

exception Store_full
exception Oversized of string

let fnv32 s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) s;
  !h

module Make (E : Perseas.Txn_intf.S) = struct
  type t = {
    config : config;
    engine : E.t;
    meta : E.segment;  (** count (4), free-list head (4). *)
    dir : E.segment;  (** one u32 slot per bucket: entry index + 1, 0 = nil. *)
    slab : E.segment;  (** capacity fixed-size entries. *)
  }

  (* Entry layout: next (4), key_len (4), val_len (4), pad (4),
     key bytes (max_key), value bytes (max_value). *)
  let entry_header = 16
  let entry_size config = entry_header + config.max_key + config.max_value
  let entry_off t idx = (idx - 1) * entry_size t.config
  let key_off t idx = entry_off t idx + entry_header
  let value_off t idx = entry_off t idx + entry_header + t.config.max_key

  let u32_bytes v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    b

  let read_u32 t seg off = Int32.to_int (Bytes.get_int32_le (E.read t.engine seg ~off ~len:4) 0)
  let write_u32 t seg off v = E.write t.engine seg ~off (u32_bytes v)

  let validate config =
    if config.buckets <= 0 || config.capacity <= 0 then invalid_arg "Kvstore: empty geometry";
    if config.max_key <= 0 || config.max_value <= 0 then invalid_arg "Kvstore: zero-sized fields"

  let segment_names name = (name ^ ".kvmeta", name ^ ".kvdir", name ^ ".kvslab")

  let create ?(config = default_config) engine ~name =
    validate config;
    let meta_name, dir_name, slab_name = segment_names name in
    let meta = E.malloc engine ~name:meta_name ~size:64 in
    let dir = E.malloc engine ~name:dir_name ~size:(config.buckets * 4) in
    let slab = E.malloc engine ~name:slab_name ~size:(config.capacity * entry_size config) in
    let t = { config; engine; meta; dir; slab } in
    (* Format: empty buckets (zero-fill is the fresh state) and a free
       list threading every entry. *)
    for idx = 1 to config.capacity do
      write_u32 t slab (entry_off t idx) (if idx = config.capacity then 0 else idx + 1)
    done;
    write_u32 t meta 0 0;
    write_u32 t meta 4 1;
    t

  let attach ?(config = default_config) engine ~name =
    validate config;
    let meta_name, dir_name, slab_name = segment_names name in
    let find n =
      match E.find_segment engine n with
      | Some seg -> seg
      | None -> failwith (Printf.sprintf "Kvstore.attach: segment %S not found" n)
    in
    { config; engine; meta = find meta_name; dir = find dir_name; slab = find slab_name }

  let length t = read_u32 t t.meta 0
  let capacity t = t.config.capacity

  let bucket t key = fnv32 key mod t.config.buckets

  let entry_key t idx =
    let len = read_u32 t t.slab (entry_off t idx + 4) in
    Bytes.to_string (E.read t.engine t.slab ~off:(key_off t idx) ~len)

  let entry_value t idx =
    let len = read_u32 t t.slab (entry_off t idx + 8) in
    Bytes.to_string (E.read t.engine t.slab ~off:(value_off t idx) ~len)

  let entry_next t idx = read_u32 t t.slab (entry_off t idx)

  (* Find [key] in its bucket chain; returns (predecessor, index). *)
  let find_entry t key =
    let rec walk pred idx =
      if idx = 0 then None
      else if entry_key t idx = key then Some (pred, idx)
      else walk idx (entry_next t idx)
    in
    walk 0 (read_u32 t t.dir (bucket t key * 4))

  let get t key = Option.map (fun (_, idx) -> entry_value t idx) (find_entry t key)
  let mem t key = find_entry t key <> None

  let check_sizes t key value =
    if String.length key > t.config.max_key || key = "" then Oversized key |> raise;
    if String.length value > t.config.max_value then Oversized value |> raise

  let put t key value =
    check_sizes t key value;
    let txn = E.begin_transaction t.engine in
    match find_entry t key with
    | Some (_, idx) ->
        (* Update in place: value length and value bytes. *)
        E.set_range txn t.slab ~off:(entry_off t idx + 8) ~len:4;
        write_u32 t t.slab (entry_off t idx + 8) (String.length value);
        if String.length value > 0 then begin
          E.set_range txn t.slab ~off:(value_off t idx) ~len:(String.length value);
          E.write t.engine t.slab ~off:(value_off t idx) (Bytes.of_string value)
        end;
        E.commit txn
    | None ->
        let free = read_u32 t t.meta 4 in
        if free = 0 then begin
          E.abort txn;
          raise Store_full
        end;
        let next_free = entry_next t free in
        let b = bucket t key in
        let head = read_u32 t t.dir (b * 4) in
        (* New entry: header + key + value in one covered range. *)
        let write_len = entry_header + t.config.max_key + String.length value in
        E.set_range txn t.slab ~off:(entry_off t free) ~len:write_len;
        write_u32 t t.slab (entry_off t free) head;
        write_u32 t t.slab (entry_off t free + 4) (String.length key);
        write_u32 t t.slab (entry_off t free + 8) (String.length value);
        write_u32 t t.slab (entry_off t free + 12) 0;
        E.write t.engine t.slab ~off:(key_off t free) (Bytes.of_string key);
        if String.length value > 0 then
          E.write t.engine t.slab ~off:(value_off t free) (Bytes.of_string value);
        (* Bucket head and allocation metadata. *)
        E.set_range txn t.dir ~off:(b * 4) ~len:4;
        write_u32 t t.dir (b * 4) free;
        E.set_range txn t.meta ~off:0 ~len:8;
        write_u32 t t.meta 0 (length t + 1);
        write_u32 t t.meta 4 next_free;
        E.commit txn

  let delete t key =
    let txn = E.begin_transaction t.engine in
    match find_entry t key with
    | None ->
        E.abort txn;
        false
    | Some (pred, idx) ->
        let next = entry_next t idx in
        if pred = 0 then begin
          let b = bucket t key in
          E.set_range txn t.dir ~off:(bucket t key * 4) ~len:4;
          write_u32 t t.dir (b * 4) next
        end
        else begin
          E.set_range txn t.slab ~off:(entry_off t pred) ~len:4;
          write_u32 t t.slab (entry_off t pred) next
        end;
        (* Push the slot onto the free list. *)
        let free = read_u32 t t.meta 4 in
        E.set_range txn t.slab ~off:(entry_off t idx) ~len:4;
        write_u32 t t.slab (entry_off t idx) free;
        E.set_range txn t.meta ~off:0 ~len:8;
        write_u32 t t.meta 0 (length t - 1);
        write_u32 t t.meta 4 idx;
        E.commit txn;
        true

  let iter t f =
    for b = 0 to t.config.buckets - 1 do
      let rec walk idx =
        if idx <> 0 then begin
          f (entry_key t idx) (entry_value t idx);
          walk (entry_next t idx)
        end
      in
      walk (read_u32 t t.dir (b * 4))
    done

  let fold t ~init ~f =
    let acc = ref init in
    iter t (fun k v -> acc := f !acc k v);
    !acc

  let check_invariants t =
    let cap = t.config.capacity in
    let seen = Array.make (cap + 1) `Unseen in
    let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let exception Bad of string in
    try
      (* Bucket chains. *)
      let chained = ref 0 in
      for b = 0 to t.config.buckets - 1 do
        let rec walk idx steps =
          if idx <> 0 then begin
            if idx < 0 || idx > cap then raise (Bad (Printf.sprintf "bucket %d: index %d out of range" b idx));
            if steps > cap then raise (Bad (Printf.sprintf "bucket %d: cycle" b));
            if seen.(idx) <> `Unseen then raise (Bad (Printf.sprintf "entry %d reached twice" idx));
            seen.(idx) <- `Chained;
            incr chained;
            let klen = read_u32 t t.slab (entry_off t idx + 4) in
            let vlen = read_u32 t t.slab (entry_off t idx + 8) in
            if klen <= 0 || klen > t.config.max_key then raise (Bad (Printf.sprintf "entry %d: bad key length" idx));
            if vlen < 0 || vlen > t.config.max_value then raise (Bad (Printf.sprintf "entry %d: bad value length" idx));
            if bucket t (entry_key t idx) <> b then raise (Bad (Printf.sprintf "entry %d: in the wrong bucket" idx));
            walk (entry_next t idx) (steps + 1)
          end
        in
        walk (read_u32 t t.dir (b * 4)) 0
      done;
      (* Free list. *)
      let free = ref 0 in
      let rec walk idx steps =
        if idx <> 0 then begin
          if idx < 0 || idx > cap then raise (Bad (Printf.sprintf "free list: index %d out of range" idx));
          if steps > cap then raise (Bad "free list: cycle");
          if seen.(idx) <> `Unseen then raise (Bad (Printf.sprintf "entry %d both chained and free" idx));
          seen.(idx) <- `Free;
          incr free;
          walk (entry_next t idx) (steps + 1)
        end
      in
      walk (read_u32 t t.meta 4) 0;
      if !chained + !free <> cap then
        err "slab not partitioned: %d chained + %d free <> %d" !chained !free cap
      else if length t <> !chained then err "count %d but %d chained entries" (length t) !chained
      else Ok ()
    with Bad msg -> Error msg
end
