(** The virtual clock.

    A clock only moves forward.  Components charge virtual time to the
    clock as they model work (memory copies, NIC packets, disk seeks);
    benchmarks read the clock before and after a workload to compute
    virtual latency and throughput. *)

type t

val create : ?at:Time.t -> unit -> t
(** A fresh clock, starting at [at] (default {!Time.zero}). *)

val now : t -> Time.t

val advance : t -> Time.t -> unit
(** [advance c d] moves the clock forward by duration [d].
    Raises [Invalid_argument] if [d] is negative. *)

val advance_to : t -> Time.t -> unit
(** [advance_to c t] moves the clock forward to absolute time [t].
    A no-op if [t] is in the past (the clock never goes backwards). *)

val elapsed_since : t -> Time.t -> Time.t
(** [elapsed_since c t0] is [now c - t0]. *)

val pp : Format.formatter -> t -> unit
