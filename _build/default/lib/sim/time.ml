type t = int

let zero = 0
let ns n = n
let us x = int_of_float (Float.round (x *. 1e3))
let ms x = int_of_float (Float.round (x *. 1e6))
let s x = int_of_float (Float.round (x *. 1e9))
let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9

let of_bandwidth ~bytes_per_s n =
  if bytes_per_s <= 0. then invalid_arg "Time.of_bandwidth: bandwidth <= 0";
  if n < 0 then invalid_arg "Time.of_bandwidth: negative byte count";
  int_of_float (Float.round (float_of_int n /. bytes_per_s *. 1e9))

let pp ppf t =
  let abs = abs t in
  if abs < 1_000 then Format.fprintf ppf "%dns" t
  else if abs < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else if abs < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_s t)

let to_string t = Format.asprintf "%a" pp t
