(** Virtual time and durations.

    All simulated timing in this repository is expressed as integer
    nanoseconds of virtual time.  Using integers keeps every experiment
    deterministic and machine independent; using nanoseconds gives enough
    resolution to model sub-microsecond NIC effects while still covering
    ~292 years of simulated time in a 63-bit [int]. *)

type t = int
(** A point in virtual time, or a duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : float -> t
(** [us x] is [x] microseconds, rounded to the nearest nanosecond. *)

val ms : float -> t
(** [ms x] is [x] milliseconds, rounded to the nearest nanosecond. *)

val s : float -> t
(** [s x] is [x] seconds, rounded to the nearest nanosecond. *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val of_bandwidth : bytes_per_s:float -> int -> t
(** [of_bandwidth ~bytes_per_s n] is the time needed to move [n] bytes at
    the given sustained bandwidth.  Raises [Invalid_argument] if the
    bandwidth is not strictly positive or [n] is negative. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
