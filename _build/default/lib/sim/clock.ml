type t = { mutable now : Time.t }

let create ?(at = Time.zero) () = { now = at }
let now c = c.now

let advance c d =
  if d < 0 then invalid_arg "Clock.advance: negative duration";
  c.now <- c.now + d

let advance_to c t = if t > c.now then c.now <- t
let elapsed_since c t0 = c.now - t0
let pp ppf c = Format.fprintf ppf "t=%a" Time.pp c.now
