lib/sim/rng.mli:
