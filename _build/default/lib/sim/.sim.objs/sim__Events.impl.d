lib/sim/events.ml: Array Clock Hashtbl Option Time
