lib/sim/clock.ml: Format Time
