lib/sim/events.mli: Clock Time
