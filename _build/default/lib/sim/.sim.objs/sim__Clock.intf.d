lib/sim/clock.mli: Format Time
