(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component of the simulation draws from its own
    stream derived from a root seed, so experiments are reproducible
    bit-for-bit and independent components do not perturb each other's
    sequences. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Generators created from the same
    seed produce identical sequences. *)

val split : t -> t
(** [split t] derives an independent child stream and advances [t]. *)

val next64 : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)
