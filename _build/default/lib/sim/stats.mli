(** Statistics for benchmark results.

    {!Summary} keeps O(1) online aggregates (Welford); {!Series} keeps
    every sample so exact percentiles can be reported, which is what the
    benchmark harness uses (sample counts are modest). *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Sample variance (n-1 denominator); 0 when fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** Raises [Invalid_argument] when empty. *)

  val max : t -> float
  (** Raises [Invalid_argument] when empty. *)
end

module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [\[0,100\]], by linear interpolation
      between closest ranks.  Raises [Invalid_argument] when empty or
      [p] out of range. *)

  val median : t -> float
  val to_array : t -> float array
  (** A sorted copy of the samples. *)
end

module Histogram : sig
  type t
  (** Log-scaled histogram of non-negative values, for latency
      distributions spanning several orders of magnitude. *)

  val create : ?buckets_per_decade:int -> unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val buckets : t -> (float * float * int) list
  (** Non-empty buckets as [(lo, hi, count)], ascending. *)

  val pp : Format.formatter -> t -> unit
end
