(** The [order-entry] benchmark: "follows TPC-C and models the
    activities of a wholesale supplier" (paper §5).

    {!Make.transaction} is the TPC-C {e new-order} profile (district
    counter, 5–15 stock rows, order header + lines);
    {!Make.payment} is the {e payment} profile (customer balance,
    district year-to-date); {!Make.mixed_transaction} runs the
    roughly-half-and-half mix. *)

val district_size : int
val stock_size : int
val order_size : int
val line_size : int
val customer_size : int
val max_lines : int
val stock_initial_quantity : int64

type params = {
  scale : int;
  districts : int;
  stock_items : int;
  order_slots : int;
  customers : int;
}

val default_params : params
val small_params : params

module Make (E : Perseas.Txn_intf.S) : sig
  type db = {
    engine : E.t;
    params : params;
    districts : E.segment;
    stock : E.segment;
    orders : E.segment;
    lines : E.segment;
    customers : E.segment;
    n_districts : int;
    n_stock : int;
    n_customers : int;
    mutable lines_inserted : int;
    mutable payments_total : int64;
  }
  (** Transparent so recovery tests can rebind the segments of a
      recovered engine. *)

  val setup : E.t -> params:params -> db
  val transaction : db -> Sim.Rng.t -> unit
  (** One new-order transaction. *)

  val payment : db -> Sim.Rng.t -> unit
  val mixed_transaction : db -> Sim.Rng.t -> unit

  val consistent : db -> bool
  (** Stock order-counts equal order lines inserted; district
      year-to-date totals equal payments taken and mirror the negated
      customer balances. *)

  val checksum : db -> int64
end
