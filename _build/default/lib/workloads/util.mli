(** Shared helpers for workload implementations. *)

val fnv64 : bytes -> int64
(** FNV-1a digest, the common checksum of the workload oracles. *)

val get_i64 : bytes -> int -> int64
val i64_bytes : int64 -> bytes
val u32_bytes : int -> bytes
