(** The [order-entry] benchmark: "follows TPC-C and models the
    activities of a wholesale supplier" (paper §5).

    The default profile is the TPC-C {e new-order} transaction: take
    the next order number from a random district, decrement the
    quantity (and bump year-to-date and order-count) of 5–15 random
    stock items, and insert an order header plus its order lines — a
    dozen or so small scattered updates per transaction, several times
    the write set of debit-credit, which is why its throughput is a few
    times lower (Table 1).  {!Make.payment} adds TPC-C's second
    transaction type (customer balance + district year-to-date), and
    {!Make.mixed_transaction} runs the standard 55/45-ish mix.

    Invariants used by tests: the sum of stock [order_cnt] fields
    equals the total number of order lines ever inserted, and district
    year-to-date totals equal the sum of customer payments. *)

let district_size = 64
let stock_size = 32
let order_size = 32
let line_size = 24
let max_lines = 15

let customer_size = 64

type params = {
  scale : int;
  districts : int;
  stock_items : int;
  order_slots : int;
  customers : int;
}

let default_params =
  { scale = 1; districts = 10; stock_items = 10_000; order_slots = 4096; customers = 3000 }

let small_params = { scale = 1; districts = 4; stock_items = 500; order_slots = 128; customers = 64 }

(* Stock record: quantity (8), ytd (8), order_cnt (8), pad (8). *)
let stock_initial_quantity = 1_000_000L

module Make (E : Perseas.Txn_intf.S) = struct
  type db = {
    engine : E.t;
    params : params;
    districts : E.segment;
    stock : E.segment;
    orders : E.segment;
    lines : E.segment;
    customers : E.segment;
    n_districts : int;
    n_stock : int;
    n_customers : int;
    mutable lines_inserted : int;
    mutable payments_total : int64;
  }

  let setup engine ~(params : params) =
    let n_districts = params.districts * params.scale in
    let n_stock = params.stock_items * params.scale in
    let districts = E.malloc engine ~name:"districts" ~size:(n_districts * district_size) in
    let stock = E.malloc engine ~name:"stock" ~size:(n_stock * stock_size) in
    let orders = E.malloc engine ~name:"orders" ~size:(params.order_slots * order_size) in
    let lines = E.malloc engine ~name:"lines" ~size:(params.order_slots * max_lines * line_size) in
    let n_customers = params.customers * params.scale in
    let customers = E.malloc engine ~name:"customers" ~size:(n_customers * customer_size) in
    for i = 0 to n_stock - 1 do
      E.write engine stock ~off:(i * stock_size) (Util.i64_bytes stock_initial_quantity)
    done;
    E.init_done engine;
    {
      engine;
      params;
      districts;
      stock;
      orders;
      lines;
      customers;
      n_districts;
      n_stock;
      n_customers;
      lines_inserted = 0;
      payments_total = 0L;
    }

  let read_i64 db seg off = Util.get_i64 (E.read db.engine seg ~off ~len:8) 0

  let transaction db rng =
    let district = Sim.Rng.int rng db.n_districts in
    let n_items = Sim.Rng.int_in rng 5 max_lines in
    let items = Array.init n_items (fun _ -> Sim.Rng.int rng db.n_stock) in
    let quantities = Array.init n_items (fun _ -> Sim.Rng.int_in rng 1 10) in
    let txn = E.begin_transaction db.engine in
    (* District: take the next order id. *)
    let d_off = district * district_size in
    E.set_range txn db.districts ~off:d_off ~len:8;
    let o_id = read_i64 db db.districts d_off in
    E.write db.engine db.districts ~off:d_off (Util.i64_bytes (Int64.add o_id 1L));
    let slot = Int64.to_int (Int64.rem o_id (Int64.of_int db.params.order_slots)) in
    (* Stock: quantity, ytd and order count of each ordered item. *)
    Array.iteri
      (fun i item ->
        let s_off = item * stock_size in
        E.set_range txn db.stock ~off:s_off ~len:24;
        let qty = read_i64 db db.stock s_off in
        let q = Int64.of_int quantities.(i) in
        (* TPC-C restocking rule. *)
        let qty' = if Int64.compare qty (Int64.add q 10L) < 0 then Int64.add (Int64.sub qty q) 91L else Int64.sub qty q in
        E.write db.engine db.stock ~off:s_off (Util.i64_bytes qty');
        let ytd = read_i64 db db.stock (s_off + 8) in
        E.write db.engine db.stock ~off:(s_off + 8) (Util.i64_bytes (Int64.add ytd q));
        let cnt = read_i64 db db.stock (s_off + 16) in
        E.write db.engine db.stock ~off:(s_off + 16) (Util.i64_bytes (Int64.add cnt 1L)))
      items;
    (* Order header. *)
    let o_off = slot * order_size in
    E.set_range txn db.orders ~off:o_off ~len:order_size;
    let header = Bytes.make order_size '\000' in
    Bytes.set_int64_le header 0 o_id;
    Bytes.set_int32_le header 8 (Int32.of_int district);
    Bytes.set_int32_le header 12 (Int32.of_int n_items);
    E.write db.engine db.orders ~off:o_off header;
    (* Order lines, contiguous in the slot. *)
    let l_off = slot * max_lines * line_size in
    E.set_range txn db.lines ~off:l_off ~len:(n_items * line_size);
    let line_block = Bytes.make (n_items * line_size) '\000' in
    Array.iteri
      (fun i item ->
        Bytes.set_int64_le line_block (i * line_size) o_id;
        Bytes.set_int32_le line_block ((i * line_size) + 8) (Int32.of_int item);
        Bytes.set_int32_le line_block ((i * line_size) + 12) (Int32.of_int quantities.(i)))
      items;
    E.write db.engine db.lines ~off:l_off line_block;
    E.commit txn;
    db.lines_inserted <- db.lines_inserted + n_items

  (* TPC-C payment: debit a customer's balance, credit the district's
     year-to-date (district record offset 8). *)
  let payment db rng =
    let district = Sim.Rng.int rng db.n_districts in
    let customer = Sim.Rng.int rng db.n_customers in
    let amount = Int64.of_int (Sim.Rng.int_in rng 1 5000) in
    let txn = E.begin_transaction db.engine in
    let c_off = customer * customer_size in
    E.set_range txn db.customers ~off:c_off ~len:8;
    let balance = read_i64 db db.customers c_off in
    E.write db.engine db.customers ~off:c_off (Util.i64_bytes (Int64.sub balance amount));
    let d_off = (district * district_size) + 8 in
    E.set_range txn db.districts ~off:d_off ~len:8;
    let ytd = read_i64 db db.districts d_off in
    E.write db.engine db.districts ~off:d_off (Util.i64_bytes (Int64.add ytd amount));
    E.commit txn;
    db.payments_total <- Int64.add db.payments_total amount

  (* The TPC-C-ish mix: roughly half new-order, half payment. *)
  let mixed_transaction db rng =
    if Sim.Rng.int rng 100 < 55 then transaction db rng else payment db rng

  (** Invariant: total stock order counts equal lines inserted. *)
  let consistent db =
    let total = ref 0L in
    for i = 0 to db.n_stock - 1 do
      total := Int64.add !total (read_i64 db db.stock ((i * stock_size) + 16))
    done;
    if Int64.to_int !total <> db.lines_inserted then false
    else begin
      (* Payment invariant: district YTDs equal total payments, and
         mirror the (negated) sum of customer balances. *)
      let ytd = ref 0L and balances = ref 0L in
      for d = 0 to db.n_districts - 1 do
        ytd := Int64.add !ytd (read_i64 db db.districts ((d * district_size) + 8))
      done;
      for c = 0 to db.n_customers - 1 do
        balances := Int64.add !balances (read_i64 db db.customers (c * customer_size))
      done;
      Int64.equal !ytd db.payments_total && Int64.equal !balances (Int64.neg db.payments_total)
    end

  let checksum db =
    List.fold_left
      (fun acc (seg, n) -> Int64.logxor acc (Util.fnv64 (E.read db.engine seg ~off:0 ~len:n)))
      0L
      [
        (db.districts, db.n_districts * district_size);
        (db.stock, db.n_stock * stock_size);
        (db.orders, db.params.order_slots * order_size);
        (db.lines, db.params.order_slots * max_lines * line_size);
        (db.customers, db.n_customers * customer_size);
      ]
end
