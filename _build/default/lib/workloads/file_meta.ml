(** A file-system-metadata workload: the third application domain the
    paper's introduction motivates (transactions "useful to several
    systems, ranging from CAD environments, to file systems and
    databases").

    The schema is a miniature file system's metadata: an inode table
    (type, size, link count), a flat directory of fixed-size entries
    (name hash → inode), and an inode allocation bitmap.  Each
    operation — create, unlink, rename, append — touches two or three
    of those structures and must be atomic: a crash between "allocate
    inode" and "insert directory entry" is exactly the classic
    metadata-corruption scenario journalling file systems exist for.

    Invariants (used by the tests): every directory entry points to an
    allocated inode whose link count equals its number of directory
    entries; allocated-bit count equals live inode count. *)

let inode_size = 32 (* type/flags (4), links (4), size (8), mtime (8), pad *)
let dentry_size = 48 (* inode (4), name_len (4), name (40) *)
let max_name = 40

type params = { inodes : int; dentries : int }

let default_params = { inodes = 4096; dentries = 4096 }
let small_params = { inodes = 128; dentries = 128 }

module Make (E : Perseas.Txn_intf.S) = struct
  type db = {
    engine : E.t;
    params : params;
    inodes : E.segment;
    dentries : E.segment;
    bitmap : E.segment;
    mutable op_counter : int;
    mutable live_files : string list; (* model: names present *)
  }

  let setup engine ~(params : params) =
    let inodes = E.malloc engine ~name:"inodes" ~size:(params.inodes * inode_size) in
    let dentries = E.malloc engine ~name:"dentries" ~size:(params.dentries * dentry_size) in
    let bitmap = E.malloc engine ~name:"inode-bitmap" ~size:((params.inodes + 7) / 8) in
    E.init_done engine;
    { engine; params; inodes; dentries; bitmap; op_counter = 0; live_files = [] }

  let read_u32 db seg off = Int32.to_int (Bytes.get_int32_le (E.read db.engine seg ~off ~len:4) 0)

  let write_u32 db seg off v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    E.write db.engine seg ~off b

  let bit_get db i =
    let byte = Char.code (Bytes.get (E.read db.engine db.bitmap ~off:(i / 8) ~len:1) 0) in
    byte land (1 lsl (i mod 8)) <> 0

  let bit_set txn db i v =
    E.set_range txn db.bitmap ~off:(i / 8) ~len:1;
    let byte = Char.code (Bytes.get (E.read db.engine db.bitmap ~off:(i / 8) ~len:1) 0) in
    let byte' = if v then byte lor (1 lsl (i mod 8)) else byte land lnot (1 lsl (i mod 8)) in
    E.write db.engine db.bitmap ~off:(i / 8) (Bytes.make 1 (Char.chr byte'))

  let find_free_inode db =
    let rec scan i = if i >= db.params.inodes then None else if bit_get db i then scan (i + 1) else Some i in
    scan 0

  let dentry_inode db slot = read_u32 db db.dentries (slot * dentry_size)

  let dentry_name db slot =
    let len = read_u32 db db.dentries ((slot * dentry_size) + 4) in
    Bytes.to_string (E.read db.engine db.dentries ~off:((slot * dentry_size) + 8) ~len)

  (* Directory entries: slot 0 means free (inode numbers are 1-based
     in entries). *)
  let find_dentry db name =
    let rec scan slot =
      if slot >= db.params.dentries then None
      else if dentry_inode db slot <> 0 && dentry_name db slot = name then Some slot
      else scan (slot + 1)
    in
    scan 0

  let find_free_dentry db =
    let rec scan slot =
      if slot >= db.params.dentries then None
      else if dentry_inode db slot = 0 then Some slot
      else scan (slot + 1)
    in
    scan 0

  exception Fs_full
  exception Bad_name of string

  let check_name name =
    if name = "" || String.length name > max_name then raise (Bad_name name)

  let inode_links db ino = read_u32 db db.inodes ((ino * inode_size) + 4)

  let write_dentry txn db slot ~ino ~name =
    E.set_range txn db.dentries ~off:(slot * dentry_size) ~len:dentry_size;
    write_u32 db db.dentries (slot * dentry_size) ino;
    write_u32 db db.dentries ((slot * dentry_size) + 4) (String.length name);
    let padded = Bytes.make max_name '\000' in
    Bytes.blit_string name 0 padded 0 (String.length name);
    E.write db.engine db.dentries ~off:((slot * dentry_size) + 8) padded

  let clear_dentry txn db slot =
    E.set_range txn db.dentries ~off:(slot * dentry_size) ~len:8;
    write_u32 db db.dentries (slot * dentry_size) 0;
    write_u32 db db.dentries ((slot * dentry_size) + 4) 0

  let set_links txn db ino links =
    E.set_range txn db.inodes ~off:((ino * inode_size) + 4) ~len:4;
    write_u32 db db.inodes ((ino * inode_size) + 4) links

  (* create: allocate an inode, set links=1, insert a directory entry. *)
  let create db name =
    check_name name;
    if find_dentry db name <> None then invalid_arg "File_meta.create: name exists";
    let txn = E.begin_transaction db.engine in
    match (find_free_inode db, find_free_dentry db) with
    | Some ino, Some slot ->
        bit_set txn db ino true;
        E.set_range txn db.inodes ~off:(ino * inode_size) ~len:inode_size;
        write_u32 db db.inodes (ino * inode_size) 1 (* regular file *);
        write_u32 db db.inodes ((ino * inode_size) + 4) 1 (* links *);
        E.write db.engine db.inodes
          ~off:((ino * inode_size) + 8)
          (Bytes.make 16 '\000');
        write_dentry txn db slot ~ino:(ino + 1) ~name;
        E.commit txn;
        db.op_counter <- db.op_counter + 1;
        db.live_files <- name :: db.live_files
    | _ ->
        E.abort txn;
        raise Fs_full

  (* unlink: remove the entry; free the inode when links reach 0. *)
  let unlink db name =
    match find_dentry db name with
    | None -> false
    | Some slot ->
        let ino = dentry_inode db slot - 1 in
        let txn = E.begin_transaction db.engine in
        clear_dentry txn db slot;
        let links = inode_links db ino in
        set_links txn db ino (links - 1);
        if links = 1 then bit_set txn db ino false;
        E.commit txn;
        db.op_counter <- db.op_counter + 1;
        db.live_files <- List.filter (fun n -> n <> name) db.live_files;
        true

  (* rename: rewrite the entry's name in place — atomic, so a crash
     never shows neither or both names. *)
  let rename db ~from ~to_ =
    check_name to_;
    if find_dentry db to_ <> None then invalid_arg "File_meta.rename: target exists";
    match find_dentry db from with
    | None -> false
    | Some slot ->
        let ino = dentry_inode db slot in
        let txn = E.begin_transaction db.engine in
        write_dentry txn db slot ~ino ~name:to_;
        E.commit txn;
        db.op_counter <- db.op_counter + 1;
        db.live_files <- to_ :: List.filter (fun n -> n <> from) db.live_files;
        true

  (* append: bump size and mtime (the metadata half of a write). *)
  let append db name bytes =
    match find_dentry db name with
    | None -> false
    | Some slot ->
        let ino = dentry_inode db slot - 1 in
        let off = (ino * inode_size) + 8 in
        let txn = E.begin_transaction db.engine in
        E.set_range txn db.inodes ~off ~len:16;
        let size = Bytes.get_int64_le (E.read db.engine db.inodes ~off ~len:8) 0 in
        let b = Bytes.create 16 in
        Bytes.set_int64_le b 0 (Int64.add size (Int64.of_int bytes));
        Bytes.set_int64_le b 8 (Int64.of_int db.op_counter);
        E.write db.engine db.inodes ~off b;
        E.commit txn;
        db.op_counter <- db.op_counter + 1;
        true

  let exists db name = find_dentry db name <> None

  let file_size db name =
    Option.map
      (fun slot ->
        let ino = dentry_inode db slot - 1 in
        Int64.to_int (Bytes.get_int64_le (E.read db.engine db.inodes ~off:((ino * inode_size) + 8) ~len:8) 0))
      (find_dentry db name)

  let live_count db =
    let n = ref 0 in
    for slot = 0 to db.params.dentries - 1 do
      if dentry_inode db slot <> 0 then incr n
    done;
    !n

  (* One mixed metadata transaction, TPC-style random choice. *)
  let transaction db rng =
    let roll = Sim.Rng.int rng 100 in
    let name i = Printf.sprintf "file-%04d" i in
    if roll < 40 || db.live_files = [] then begin
      (* create (or recreate) *)
      let candidate = name (Sim.Rng.int rng db.params.dentries) in
      if not (exists db candidate) then (try create db candidate with Fs_full -> ())
      else ignore (append db candidate (Sim.Rng.int_in rng 1 4096))
    end
    else
      let victim = List.nth db.live_files (Sim.Rng.int rng (List.length db.live_files)) in
      if roll < 65 then ignore (append db victim (Sim.Rng.int_in rng 1 4096))
      else if roll < 85 then ignore (unlink db victim)
      else begin
        let target = name (Sim.Rng.int rng db.params.dentries) ^ "-r" in
        if not (exists db target) then ignore (rename db ~from:victim ~to_:target)
      end

  (* Invariants: entries point at allocated inodes with matching link
     counts; the bitmap population equals the number of inodes
     referenced. *)
  let consistent db =
    let refs = Hashtbl.create 64 in
    let ok = ref true in
    for slot = 0 to db.params.dentries - 1 do
      let ino = dentry_inode db slot in
      if ino <> 0 then begin
        let ino = ino - 1 in
        if ino < 0 || ino >= db.params.inodes || not (bit_get db ino) then ok := false
        else Hashtbl.replace refs ino (1 + Option.value ~default:0 (Hashtbl.find_opt refs ino))
      end
    done;
    let allocated = ref 0 in
    for ino = 0 to db.params.inodes - 1 do
      if bit_get db ino then begin
        incr allocated;
        if Hashtbl.find_opt refs ino <> Some (inode_links db ino) then ok := false
      end
    done;
    !ok && !allocated = Hashtbl.length refs

  let checksum db =
    List.fold_left
      (fun acc (seg, len) -> Int64.logxor acc (Util.fnv64 (E.read db.engine seg ~off:0 ~len)))
      0L
      [
        (db.inodes, db.params.inodes * inode_size);
        (db.dentries, db.params.dentries * dentry_size);
        (db.bitmap, (db.params.inodes + 7) / 8);
      ]
end
