(** Shared helpers for workload implementations. *)

let fnv64 data =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    data;
  !h

let get_i64 b off = Bytes.get_int64_le b off

let i64_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let u32_bytes v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b
