lib/workloads/synthetic.mli: Perseas Sim
