lib/workloads/order_entry.mli: Perseas Sim
