lib/workloads/debit_credit.ml: Bytes Int32 Int64 List Perseas Sim Util
