lib/workloads/file_meta.ml: Bytes Char Hashtbl Int32 Int64 List Option Perseas Printf Sim String Util
