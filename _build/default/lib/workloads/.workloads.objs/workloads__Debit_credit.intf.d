lib/workloads/debit_credit.mli: Perseas Sim
