lib/workloads/util.ml: Bytes Char Int32 Int64
