lib/workloads/order_entry.ml: Array Bytes Int32 Int64 List Perseas Sim Util
