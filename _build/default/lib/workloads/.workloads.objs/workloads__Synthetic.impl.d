lib/workloads/synthetic.ml: Bytes Char Perseas Sim Util
