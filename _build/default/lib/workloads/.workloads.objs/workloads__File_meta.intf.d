lib/workloads/file_meta.mli: Perseas Sim
