lib/workloads/util.mli:
