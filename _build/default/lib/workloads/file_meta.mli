(** A file-system-metadata workload: the third application domain the
    paper's introduction motivates ("... ranging from CAD environments,
    to file systems and databases").

    The schema is a miniature file system's metadata — inode table,
    flat directory, inode allocation bitmap — and each operation
    (create, unlink, rename, append) is one atomic transaction, closing
    the classic crash window between "allocate inode" and "insert
    directory entry". *)

val inode_size : int
val dentry_size : int
val max_name : int

type params = { inodes : int; dentries : int }

val default_params : params
val small_params : params

module Make (E : Perseas.Txn_intf.S) : sig
  type db = {
    engine : E.t;
    params : params;
    inodes : E.segment;
    dentries : E.segment;
    bitmap : E.segment;
    mutable op_counter : int;
    mutable live_files : string list;
  }
  (** Transparent so recovery tests can rebind the segments of a
      recovered engine ([live_files] is advisory bookkeeping for the
      random workload, not part of the persistent state). *)

  exception Fs_full
  exception Bad_name of string

  val setup : E.t -> params:params -> db

  val create : db -> string -> unit
  (** Allocate an inode and insert a directory entry, atomically.
      Raises {!Fs_full}, {!Bad_name}, or [Invalid_argument] if the name
      exists. *)

  val unlink : db -> string -> bool
  (** Remove the entry; frees the inode when its link count drops to
      zero.  [false] when absent. *)

  val rename : db -> from:string -> to_:string -> bool
  (** Atomic rename; raises [Invalid_argument] if the target exists. *)

  val append : db -> string -> int -> bool
  (** Metadata half of a write: bump size and mtime. *)

  val exists : db -> string -> bool
  val file_size : db -> string -> int option
  val live_count : db -> int

  val transaction : db -> Sim.Rng.t -> unit
  (** One random metadata operation (weighted mix). *)

  val consistent : db -> bool
  (** Directory entries point at allocated inodes with matching link
      counts; bitmap population matches. *)

  val checksum : db -> int64
end
