(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index).

   Usage:
     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- fig6 table1  # a subset
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --bechamel   # wall-clock micro-benches *)

let list_experiments () =
  print_endline "Available experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-18s %s\n" name descr)
    Harness.Experiments.names

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      Harness.Experiments.all ();
      print_endline "\nAll experiments done; CSVs are under results/."
  | [ "--list" ] -> list_experiments ()
  | [ "--bechamel" ] -> Bechamel_suite.run ()
  | names ->
      List.iter
        (fun name ->
          match
            List.find_opt (fun (n, _, _) -> n = name) Harness.Experiments.names
          with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 2)
        names
