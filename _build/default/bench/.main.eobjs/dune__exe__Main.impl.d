bench/main.ml: Array Bechamel_suite Harness List Printf Sys
