bench/main.mli:
