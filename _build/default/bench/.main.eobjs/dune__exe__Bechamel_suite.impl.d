bench/bechamel_suite.ml: Analyze Bechamel Benchmark Harness Hashtbl Instance List Perseas Printf Sci Sim Staged Test Time Toolkit Workloads
