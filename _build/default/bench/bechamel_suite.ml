(* Wall-clock micro-benchmarks of the hot code paths behind each
   table/figure, via Bechamel.  Virtual-time results (the paper's
   numbers) come from the Harness experiments; these measure how fast
   the simulator itself executes them, one Test.make per artefact. *)

open Bechamel
open Toolkit

let make_perseas_tx () =
  let bed = Harness.Testbed.perseas_bed () in
  let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
  let rng = Sim.Rng.create 7 in
  let db = W.setup bed.perseas ~params:Workloads.Debit_credit.small_params in
  fun () -> W.transaction db rng

let make_synthetic_tx tx_size =
  let bed = Harness.Testbed.perseas_bed () in
  let module S = Workloads.Synthetic.Make (Perseas.Engine) in
  let rng = Sim.Rng.create 42 in
  let db = S.setup bed.perseas ~db_size:(1 lsl 20) in
  fun () -> S.transaction db rng ~tx_size

let make_order_entry_tx () =
  let bed = Harness.Testbed.perseas_bed () in
  let module W = Workloads.Order_entry.Make (Perseas.Engine) in
  let rng = Sim.Rng.create 11 in
  let db = W.setup bed.perseas ~params:Workloads.Order_entry.small_params in
  fun () -> W.transaction db rng

let make_sci_latency () =
  let p = Sci.Params.default in
  fun () -> ignore (Sci.Model.write_range p ~off:0 ~len:128 ())

let tests =
  [
    Test.make ~name:"fig5:sci-write-latency-model" (Staged.stage (make_sci_latency ()));
    Test.make ~name:"fig6:synthetic-tx-4B" (Staged.stage (make_synthetic_tx 4));
    Test.make ~name:"fig6:synthetic-tx-4KB" (Staged.stage (make_synthetic_tx 4096));
    Test.make ~name:"table1:debit-credit-tx" (Staged.stage (make_perseas_tx ()));
    Test.make ~name:"table1:order-entry-tx" (Staged.stage (make_order_entry_tx ()));
  ]

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  Benchmark.all cfg instances test

let analyze results =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |] in
  Analyze.all ols Instance.monotonic_clock results

let run () =
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        results)
    tests
