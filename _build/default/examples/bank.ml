(* A banking day on PERSEAS: the TPC-B-style debit-credit workload from
   the paper's evaluation, with a power failure in the middle of the
   day and an immediate takeover by a spare workstation.

   Run with: dune exec examples/bank.exe *)

module W = Workloads.Debit_credit.Make (Perseas.Engine)

let print_tps label clock n t0 =
  let dt = Sim.Time.to_s (Sim.Clock.now clock - t0) in
  Printf.printf "%-28s %6d txns in %7.3fs virtual = %s tps\n" label n dt
    (Harness.Table.fmt_tps (float_of_int n /. dt))

let () =
  let bed = Harness.Testbed.perseas_bed () in
  let rng = Sim.Rng.create 2024 in
  let params = { Workloads.Debit_credit.default_params with accounts_per_branch = 10_000 } in
  let db = W.setup bed.perseas ~params in
  Printf.printf "bank open: %d accounts, %d tellers, %d branches\n" db.W.n_accounts
    db.W.n_tellers db.W.n_branches;

  (* Morning: 20 000 transactions. *)
  let t0 = Sim.Clock.now bed.clock in
  for _ = 1 to 20_000 do
    W.transaction db rng
  done;
  print_tps "morning session:" bed.clock 20_000 t0;
  assert (W.consistent db);
  print_endline "TPC-B invariant holds (accounts = tellers = branches)";

  (* Lunchtime disaster: the primary's power supply fails while a
     transaction is being committed. *)
  let exception Blackout in
  let fuse = ref 40_000 in
  Perseas.set_packet_hook bed.perseas
    (Some (fun () -> if !fuse = 0 then raise Blackout else decr fuse));
  let survived = ref 0 in
  (try
     while true do
       W.transaction db rng;
       incr survived
     done
   with Blackout -> ());
  Perseas.set_packet_hook bed.perseas None;
  let downed = Cluster.crash_power_supply bed.cluster 0 in
  Printf.printf "\npower outage on supply 0 after %d more txns (nodes down: %s)\n" !survived
    (String.concat ", " (List.map string_of_int downed));

  (* The spare workstation recovers from the mirror and reopens. *)
  let t_rec = Sim.Clock.now bed.clock in
  let spare = Perseas.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
  Printf.printf "spare recovered the bank in %s\n"
    (Sim.Time.to_string (Sim.Clock.now bed.clock - t_rec));

  (* Verify the books balance on the recovered database. *)
  let sum name n =
    let seg = Option.get (Perseas.segment spare name) in
    let total = ref 0L in
    for i = 0 to n - 1 do
      total := Int64.add !total (Perseas.read_u64 spare seg ~off:(i * Workloads.Debit_credit.record_size))
    done;
    !total
  in
  let a = sum "accounts" db.W.n_accounts in
  let t = sum "tellers" db.W.n_tellers in
  let b = sum "branches" db.W.n_branches in
  Printf.printf "recovered books: accounts %Ld, tellers %Ld, branches %Ld\n" a t b;
  assert (a = t && t = b);
  print_endline "the half-committed lunchtime transaction vanished atomically;";
  print_endline "every completed transaction survived. Business as usual."
