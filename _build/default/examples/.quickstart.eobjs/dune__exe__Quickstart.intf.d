examples/quickstart.mli:
