examples/engine_shootout.ml: Harness List Sim Workloads
