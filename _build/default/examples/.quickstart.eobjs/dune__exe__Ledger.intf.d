examples/ledger.mli:
