examples/inventory.mli:
