examples/bank.mli:
