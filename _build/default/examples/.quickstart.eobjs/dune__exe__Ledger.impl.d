examples/ledger.ml: Btree Cluster Harness Int64 List Option Perseas Printf Sim
