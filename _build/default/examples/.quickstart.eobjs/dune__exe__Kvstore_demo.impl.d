examples/kvstore_demo.ml: Cluster Kvstore List Netram Option Perseas Printf Sim
