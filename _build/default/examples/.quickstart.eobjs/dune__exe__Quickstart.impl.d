examples/quickstart.ml: Cluster Netram Option Perseas Printf Sim
