examples/bank.ml: Cluster Harness Int64 List Option Perseas Printf Sim String Workloads
