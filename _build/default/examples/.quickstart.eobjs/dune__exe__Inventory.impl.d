examples/inventory.ml: Cluster Harness Int64 Netram Option Perseas Printf Sim Workloads
