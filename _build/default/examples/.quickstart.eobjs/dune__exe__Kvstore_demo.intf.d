examples/kvstore_demo.mli:
