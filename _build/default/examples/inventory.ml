(* A wholesale supplier on PERSEAS: the TPC-C-style order-entry
   workload (new-order profile), demonstrating larger multi-range
   transactions, mirror migration while the system is live, and the
   paper's availability property.

   Run with: dune exec examples/inventory.exe *)

module W = Workloads.Order_entry.Make (Perseas.Engine)

let () =
  let bed = Harness.Testbed.perseas_bed () in
  let rng = Sim.Rng.create 7 in
  let db = W.setup bed.perseas ~params:Workloads.Order_entry.default_params in
  Printf.printf "warehouse online: %d districts, %d stock items\n" db.W.n_districts db.W.n_stock;

  let t0 = Sim.Clock.now bed.clock in
  for _ = 1 to 10_000 do
    W.transaction db rng
  done;
  let dt = Sim.Time.to_s (Sim.Clock.now bed.clock - t0) in
  Printf.printf "10000 new-order transactions (%d order lines) in %.3fs virtual = %s tps\n"
    db.W.lines_inserted dt
    (Harness.Table.fmt_tps (10_000. /. dt));
  assert (W.consistent db);

  (* Planned maintenance: the mirror node must go down.  Re-mirror the
     live database onto the spare's memory server first — transactions
     continue right after, no downtime for the application. *)
  print_endline "\nmirror node needs maintenance: migrating the mirror to the spare";
  ignore (Cluster.crash_node bed.cluster 1 Cluster.Failure.Hardware_error);
  let server2 = Netram.Server.create (Cluster.node bed.cluster 2) in
  let t1 = Sim.Clock.now bed.clock in
  Perseas.remirror bed.perseas ~server:server2;
  Printf.printf "re-mirrored in %s\n" (Sim.Time.to_string (Sim.Clock.now bed.clock - t1));
  for _ = 1 to 5_000 do
    W.transaction db rng
  done;
  assert (W.consistent db);
  print_endline "5000 more orders against the new mirror; stock ledger still consistent";

  (* And the new mirror really protects us: kill the primary, recover
     on the rebooted original mirror machine. *)
  ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
  Cluster.restart_node bed.cluster 1;
  let t2 = Perseas.recover ~cluster:bed.cluster ~local:1 ~server:server2 () in
  let stock = Option.get (Perseas.segment t2 "stock") in
  let total_orders = ref 0L in
  for i = 0 to db.W.n_stock - 1 do
    total_orders :=
      Int64.add !total_orders
        (Perseas.read_u64 t2 stock ~off:((i * Workloads.Order_entry.stock_size) + 16))
  done;
  Printf.printf "\nprimary crashed; recovered on node 1: %Ld order lines on the books\n"
    !total_orders;
  Printf.printf "total virtual time: %s\n" (Sim.Time.to_string (Sim.Clock.now bed.clock))
