(* Quickstart: the seven PERSEAS calls on a two-node mirror, plus the
   one that matters — recovering after the primary dies mid-commit.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A cluster of three workstations on an SCI ring.  Primary and
     mirror sit on different power supplies (the paper's deployment
     rule); the third machine is a spare that will take over. *)
  let clock = Sim.Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~power_supply:0 "primary";
        Cluster.spec ~power_supply:1 "mirror";
        Cluster.spec ~power_supply:2 "spare";
      ]
  in
  (* The memory server runs on the mirror node and exports segments of
     its DRAM; the client maps them over the SCI network. *)
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in

  (* PERSEAS_init / PERSEAS_malloc / PERSEAS_init_remote_db *)
  let t = Perseas.init client in
  let accounts = Perseas.malloc t ~name:"accounts" ~size:4096 in
  for i = 0 to 15 do
    Perseas.write_u64 t accounts ~off:(i * 8) 1000L (* everyone starts with 1000 *)
  done;
  Perseas.init_remote_db t;
  Printf.printf "database mirrored; epoch %Ld\n" (Perseas.epoch t);

  (* A transaction: move 250 from account 0 to account 1. *)
  let txn = Perseas.begin_transaction t in
  Perseas.set_range txn accounts ~off:0 ~len:16;
  Perseas.write_u64 t accounts ~off:0 750L;
  Perseas.write_u64 t accounts ~off:8 1250L;
  Perseas.commit txn;
  Printf.printf "transfer committed at t=%s\n" (Sim.Time.to_string (Sim.Clock.now clock));

  (* An aborted transaction leaves no trace. *)
  let txn = Perseas.begin_transaction t in
  Perseas.set_range txn accounts ~off:0 ~len:8;
  Perseas.write_u64 t accounts ~off:0 0L;
  Perseas.abort txn;
  assert (Perseas.read_u64 t accounts ~off:0 = 750L);
  print_endline "abort rolled back cleanly";

  (* Now the disaster: the primary dies in the middle of a commit —
     after some packets of the data propagation have reached the
     mirror, but before the commit point. *)
  let txn = Perseas.begin_transaction t in
  Perseas.set_range txn accounts ~off:0 ~len:16;
  Perseas.write_u64 t accounts ~off:0 0L;
  Perseas.write_u64 t accounts ~off:8 2000L;
  let exception Lights_out in
  Perseas.set_packet_hook t (Some (fun () -> raise Lights_out));
  (try Perseas.commit txn with Lights_out -> ());
  ignore (Cluster.crash_node cluster 0 Cluster.Failure.Power_outage);
  print_endline "primary lost power mid-commit";

  (* Any workstation that can reach the mirror recovers the database;
     the half-committed transfer is rolled back from the remote undo
     log. *)
  let t2 = Perseas.recover ~cluster ~local:2 ~server () in
  let accounts2 = Option.get (Perseas.segment t2 "accounts") in
  let b0 = Perseas.read_u64 t2 accounts2 ~off:0 in
  let b1 = Perseas.read_u64 t2 accounts2 ~off:8 in
  Printf.printf "recovered on the spare: balances %Ld / %Ld (the committed transfer survived,\n"
    b0 b1;
  print_endline "the in-flight one vanished atomically)";
  assert (b0 = 750L && b1 = 1250L);
  Printf.printf "total virtual time: %s\n" (Sim.Time.to_string (Sim.Clock.now clock))
