(* A time-ordered ledger on the transactional B+-tree: append entries
   keyed by (timestamp-like) sequence numbers, answer range queries
   ("what happened between t=3000 and t=4000?"), survive a crash in the
   middle of an append that splits tree nodes.

   Run with: dune exec examples/ledger.exe *)

module BT = Btree.Make (Perseas.Engine)

let () =
  let bed = Harness.Testbed.perseas_bed () in
  let ledger = BT.create bed.perseas ~name:"ledger" in
  Perseas.init_remote_db bed.perseas;

  (* Business as usual: 2000 ledger entries, keys are sequence numbers
     with gaps (like timestamps), values are amounts. *)
  let rng = Sim.Rng.create 77 in
  let seq = ref 0L in
  for _ = 1 to 2000 do
    seq := Int64.add !seq (Int64.of_int (Sim.Rng.int_in rng 1 10));
    BT.insert ledger ~key:!seq ~value:(Int64.of_int (Sim.Rng.int_in rng (-500) 500))
  done;
  Printf.printf "ledger: %d entries, B+-tree height %d, keys %Ld..%Ld\n" (BT.length ledger)
    (BT.height ledger)
    (fst (Option.get (BT.min_binding ledger)))
    (fst (Option.get (BT.max_binding ledger)));

  (* The query a hash map cannot answer: a key range. *)
  let window = BT.range ledger ~lo:3000L ~hi:4000L in
  let total = List.fold_left (fun acc (_, v) -> Int64.add acc v) 0L window in
  Printf.printf "entries in [3000, 4000]: %d, net amount %Ld\n" (List.length window) total;

  (* Crash in the middle of an append (quite possibly mid node-split). *)
  let exception Crash in
  let sent = ref 0 in
  Perseas.set_packet_hook bed.perseas
    (Some (fun () -> if !sent >= 5 then raise Crash else incr sent));
  (try BT.insert ledger ~key:999_999L ~value:1L with Crash -> ());
  ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
  print_endline "primary crashed during an append";

  let t2 = Perseas.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
  let ledger2 = BT.attach t2 ~name:"ledger" in
  (match BT.check_invariants ledger2 with
  | Ok () -> print_endline "recovered tree passes its structural audit"
  | Error m -> failwith m);
  let window2 = BT.range ledger2 ~lo:3000L ~hi:4000L in
  assert (window2 = window);
  Printf.printf "the [3000, 4000] query returns identical results after recovery;\n";
  Printf.printf "the interrupted append is %s\n"
    (if BT.mem ledger2 999_999L then "present (commit point reached)" else "absent (rolled back)");
  BT.insert ledger2 ~key:1_000_000L ~value:42L;
  Printf.printf "ledger reopened for business: %d entries\n" (BT.length ledger2)
