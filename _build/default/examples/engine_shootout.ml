(* Engine shootout: the same debit-credit workload on all four engines
   (PERSEAS, RVM on disk, RVM on Rio, Vista), exercising the
   engine-generic Txn_intf — the comparison the paper's section 5 makes
   against published numbers, regenerated live.

   Run with: dune exec examples/engine_shootout.exe *)

let run_one ((module I : Harness.Testbed.INSTANCE) as inst) =
  let module W = Workloads.Debit_credit.Make (I.E) in
  let rng = Sim.Rng.create 99 in
  let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
  (* The same transaction count everywhere, so the final states are
     comparable bit for bit. *)
  let r =
    Harness.Measure.run ~clock:I.clock ~finish:I.finish ~warmup:100 ~iters:1_000 (fun _ ->
        W.transaction db rng)
  in
  assert (W.consistent db);
  (Harness.Testbed.label inst, r, W.checksum db)

let () =
  let results = List.map run_one (Harness.Testbed.all_instances ()) in
  (* Same seed, same schema: every engine must land on the same state. *)
  (match results with
  | (_, _, reference) :: rest ->
      List.iter (fun (label, _, c) -> if c <> reference then failwith (label ^ " diverged!")) rest
  | [] -> ());
  print_endline "All four engines produced bit-identical final databases.";
  Harness.Table.print ~title:"debit-credit, same seed, four engines"
    ~header:[ "engine"; "tps"; "mean latency (us)"; "p99 (us)" ]
    (List.map
       (fun (label, (r : Harness.Measure.result), _) ->
         [
           label;
           Harness.Table.fmt_tps r.tps;
           Harness.Table.fmt_us r.mean_us;
           Harness.Table.fmt_us r.p99_us;
         ])
       results);
  print_endline "\nWhat differs is the cost of durability:";
  print_endline "  RVM pays the disk on every commit; RVM-Rio pays RVM's software path;";
  print_endline "  Vista pays a handful of protected stores but needs a modified OS and";
  print_endline "  leaves the data hostage if the machine stays down;";
  print_endline "  PERSEAS pays a few SCI packets and survives on any other workstation."
