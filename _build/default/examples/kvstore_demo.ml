(* A replicated, crash-proof key-value store in ~30 lines of
   application code: the Kvstore library over PERSEAS with two mirrors,
   surviving a mid-operation crash of the primary.

   Run with: dune exec examples/kvstore_demo.exe *)

module KV = Kvstore.Make (Perseas.Engine)

let () =
  (* Primary + two mirrors on three power supplies + one spare. *)
  let clock = Sim.Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~power_supply:0 "primary";
        Cluster.spec ~power_supply:1 "mirror-a";
        Cluster.spec ~power_supply:2 "mirror-b";
        Cluster.spec ~power_supply:3 "spare";
      ]
  in
  let servers = [ 1; 2 ] |> List.map (fun i -> Netram.Server.create (Cluster.node cluster i)) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  let t = Perseas.init_replicated clients in
  let kv = KV.create t ~name:"catalog" in
  Perseas.init_remote_db t;

  (* Normal operation: every put/delete is one atomic transaction,
     mirrored twice. *)
  KV.put kv "ocaml" "a fine systems language";
  KV.put kv "perseas" "slew Medusa with a mirror";
  KV.put kv "medusa" "do not look directly";
  ignore (KV.delete kv "medusa");
  Printf.printf "catalog holds %d entries on %d mirrors\n" (KV.length kv)
    (Perseas.mirror_count t);

  (* Crash the primary in the middle of a put. *)
  let exception Crash in
  let sent = ref 0 in
  Perseas.set_packet_hook t (Some (fun () -> if !sent >= 4 then raise Crash else incr sent));
  (try KV.put kv "victim" "half-written?" with Crash -> ());
  ignore (Cluster.crash_node cluster 0 Cluster.Failure.Power_outage);
  print_endline "primary lost power mid-put";

  (* The spare recovers from whichever mirror got furthest and reopens
     the same store. *)
  let t2 = Perseas.recover_replicated ~cluster ~local:3 ~servers () in
  let kv2 = KV.attach t2 ~name:"catalog" in
  (match KV.check_invariants kv2 with
  | Ok () -> print_endline "recovered store passes its structural audit"
  | Error m -> failwith m);
  Printf.printf "ocaml -> %s\n" (Option.get (KV.get kv2 "ocaml"));
  Printf.printf "victim present? %b (either way, atomically)\n" (KV.mem kv2 "victim");
  KV.put kv2 "back" "in business";
  Printf.printf "%d entries, %d mirrors resynced, epoch %Ld\n" (KV.length kv2)
    (Perseas.mirror_count t2) (Perseas.epoch t2)
