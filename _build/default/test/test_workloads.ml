open Sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* All workload logic is engine-generic; run the tests against PERSEAS
   and cross-check state equivalence against the baselines. *)

let perseas_instance () = Harness.Testbed.perseas_instance ()

let test_synthetic_preserves_size_and_runs () =
  let (module I) = perseas_instance () in
  let module S = Workloads.Synthetic.Make (I.E) in
  let rng = Rng.create 1 in
  let db = S.setup I.engine ~db_size:65536 in
  let c0 = S.checksum db in
  for _ = 1 to 50 do
    S.transaction db rng ~tx_size:128
  done;
  check_bool "content changed" true (S.checksum db <> c0)

let test_synthetic_rejects_bad_sizes () =
  let (module I) = perseas_instance () in
  let module S = Workloads.Synthetic.Make (I.E) in
  let rng = Rng.create 1 in
  let db = S.setup I.engine ~db_size:1024 in
  (try
     S.transaction db rng ~tx_size:2048;
     Alcotest.fail "oversized tx"
   with Invalid_argument _ -> ());
  try
    S.transaction db rng ~tx_size:0;
    Alcotest.fail "zero tx"
  with Invalid_argument _ -> ()

let test_debit_credit_invariant () =
  let (module I) = perseas_instance () in
  let module W = Workloads.Debit_credit.Make (I.E) in
  let rng = Rng.create 2 in
  let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
  check_bool "consistent at start" true (W.consistent db);
  for _ = 1 to 500 do
    W.transaction db rng
  done;
  check_bool "consistent after 500 txns" true (W.consistent db)

let test_debit_credit_history_wraps () =
  let (module I) = perseas_instance () in
  let module W = Workloads.Debit_credit.Make (I.E) in
  let rng = Rng.create 3 in
  let params = { Workloads.Debit_credit.small_params with history_slots = 16 } in
  let db = W.setup I.engine ~params in
  (* More transactions than history slots: the circular buffer must
     wrap without bounds errors, invariant intact. *)
  for _ = 1 to 100 do
    W.transaction db rng
  done;
  check_bool "still consistent" true (W.consistent db)

let test_order_entry_invariant () =
  let (module I) = perseas_instance () in
  let module W = Workloads.Order_entry.Make (I.E) in
  let rng = Rng.create 4 in
  let db = W.setup I.engine ~params:Workloads.Order_entry.small_params in
  for _ = 1 to 300 do
    W.transaction db rng
  done;
  check_bool "order counts match lines" true (W.consistent db)

let test_order_entry_payment_mix () =
  let (module I) = perseas_instance () in
  let module W = Workloads.Order_entry.Make (I.E) in
  let rng = Rng.create 6 in
  let db = W.setup I.engine ~params:Workloads.Order_entry.small_params in
  for _ = 1 to 400 do
    W.mixed_transaction db rng
  done;
  check_bool "order + payment invariants hold" true (W.consistent db);
  check_bool "both types ran" true (db.W.lines_inserted > 0 && db.W.payments_total > 0L)

let test_order_entry_restocks () =
  let (module I) = perseas_instance () in
  let module W = Workloads.Order_entry.Make (I.E) in
  let rng = Rng.create 5 in
  (* A tiny stock table gets hammered, so quantities would go negative
     without the TPC-C restocking rule. *)
  let params = { Workloads.Order_entry.small_params with stock_items = 8 } in
  let db = W.setup I.engine ~params in
  for _ = 1 to 400 do
    W.transaction db rng
  done;
  check_bool "consistent" true (W.consistent db)

(* Determinism: identical seeds on identical engines give identical
   final states (the whole stack is deterministic). *)
let test_workload_determinism () =
  let run () =
    let (module I) = perseas_instance () in
    let module W = Workloads.Debit_credit.Make (I.E) in
    let rng = Rng.create 9 in
    let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
    for _ = 1 to 200 do
      W.transaction db rng
    done;
    (W.checksum db, Clock.now I.clock)
  in
  let c1, t1 = run () in
  let c2, t2 = run () in
  check Alcotest.int64 "same state" c1 c2;
  check_int "same virtual time" t1 t2

(* Cross-engine equivalence: the same seed must produce the same final
   database state on every engine — the engines differ in cost and
   recoverability, never in data semantics. *)
let cross_engine_checksums ~run_txns =
  List.map
    (fun ((module I : Harness.Testbed.INSTANCE) as inst) ->
      let module W = Workloads.Debit_credit.Make (I.E) in
      let rng = Rng.create 77 in
      let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
      for _ = 1 to run_txns do
        W.transaction db rng
      done;
      I.finish ();
      check_bool (Harness.Testbed.label inst ^ " consistent") true (W.consistent db);
      (Harness.Testbed.label inst, W.checksum db))
    (Harness.Testbed.all_instances ())

let test_cross_engine_equivalence () =
  match cross_engine_checksums ~run_txns:150 with
  | (_, reference) :: rest ->
      List.iter (fun (label, c) -> check Alcotest.int64 (label ^ " matches PERSEAS") reference c) rest
  | [] -> Alcotest.fail "no engines"

let test_cross_engine_order_entry () =
  let checksums =
    List.map
      (fun (module I : Harness.Testbed.INSTANCE) ->
        let module W = Workloads.Order_entry.Make (I.E) in
        let rng = Rng.create 78 in
        let db = W.setup I.engine ~params:Workloads.Order_entry.small_params in
        for _ = 1 to 100 do
          W.transaction db rng
        done;
        I.finish ();
        W.checksum db)
      (Harness.Testbed.all_instances ())
  in
  match checksums with
  | reference :: rest -> List.iter (fun c -> check Alcotest.int64 "same state" reference c) rest
  | [] -> Alcotest.fail "no engines"

let prop_debit_credit_invariant_random_seeds =
  QCheck.Test.make ~name:"debit-credit invariant holds for random seeds" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let (module I) = perseas_instance () in
      let module W = Workloads.Debit_credit.Make (I.E) in
      let rng = Rng.create seed in
      let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
      for _ = 1 to 60 do
        W.transaction db rng
      done;
      W.consistent db)

let suite =
  [
    ("synthetic runs and mutates", `Quick, test_synthetic_preserves_size_and_runs);
    ("synthetic rejects bad sizes", `Quick, test_synthetic_rejects_bad_sizes);
    ("debit-credit TPC-B invariant", `Quick, test_debit_credit_invariant);
    ("debit-credit history wraps", `Quick, test_debit_credit_history_wraps);
    ("order-entry invariant", `Quick, test_order_entry_invariant);
    ("order-entry restocking rule", `Quick, test_order_entry_restocks);
    ("order-entry payment mix", `Quick, test_order_entry_payment_mix);
    ("workloads are deterministic", `Quick, test_workload_determinism);
    ("cross-engine state equivalence (debit-credit)", `Slow, test_cross_engine_equivalence);
    ("cross-engine state equivalence (order-entry)", `Slow, test_cross_engine_order_entry);
    QCheck_alcotest.to_alcotest prop_debit_credit_invariant_random_seeds;
  ]
