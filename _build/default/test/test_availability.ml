module A = Harness.Availability
open Sim

let check = Alcotest.check
let check_bool = check Alcotest.bool

let run ?params d = A.simulate ?params ~trials:60 ~seed:7 d

let test_deterministic () =
  let a = A.simulate ~trials:20 ~seed:3 A.perseas_two_supplies in
  let b = A.simulate ~trials:20 ~seed:3 A.perseas_two_supplies in
  check (Alcotest.float 0.) "same availability" a.availability b.availability;
  check (Alcotest.float 0.) "same losses" a.loss_events_per_decade b.loss_events_per_decade;
  let c = A.simulate ~trials:20 ~seed:4 A.perseas_two_supplies in
  check_bool "different seed differs" true
    (c.availability <> a.availability || c.loss_events_per_decade <> a.loss_events_per_decade)

let test_disk_never_loses_data () =
  let r = run A.rvm_single_node in
  check (Alcotest.float 0.) "no losses" 0. r.loss_events_per_decade;
  (* ...but hardware repairs keep it down a couple of percent. *)
  check_bool "availability below 99%" true (r.availability < 0.99);
  check_bool "availability above 95%" true (r.availability > 0.95)

let test_supply_separation_matters () =
  (* The paper's deployment rule: same-supply mirrors lose data on
     every outage; separate supplies almost never. *)
  let same = run A.perseas_same_supply in
  let diff = run A.perseas_two_supplies in
  check_bool "same-supply loses roughly per outage" true (same.loss_events_per_decade > 30.);
  check_bool "separate supplies at least 10x safer" true
    (diff.loss_events_per_decade *. 10. < same.loss_events_per_decade)

let test_more_mirrors_safer () =
  let two = run A.perseas_two_supplies in
  let three = run A.perseas_three_way in
  check_bool "3-way loses no more than 2-way" true
    (three.loss_events_per_decade <= two.loss_events_per_decade)

let test_perseas_more_available_than_single_node () =
  let disk = run A.rvm_single_node in
  let perseas = run A.perseas_two_supplies in
  check_bool "mirrored memory beats a single machine" true
    (perseas.availability > disk.availability)

let test_ups_malfunction_hurts_rio () =
  let params flaky = { A.default_params with ups_malfunction = flaky } in
  let solid = A.simulate ~params:(params 0.0) ~trials:60 ~seed:7 A.rio_ups_single_node in
  let flaky = A.simulate ~params:(params 0.5) ~trials:60 ~seed:7 A.rio_ups_single_node in
  check (Alcotest.float 0.) "perfect UPS never loses" 0. solid.loss_events_per_decade;
  check_bool "flaky UPS loses data" true (flaky.loss_events_per_decade > 1.)

let test_no_failures_no_downtime () =
  (* "Practically never": ~137-year MTBFs against a 1-day horizon (the
     largest representable virtual durations are ~292 years). *)
  let forever = Time.s (86_400. *. 50_000.) in
  let params =
    {
      A.default_params with
      software_mtbf = forever;
      hardware_mtbf = forever;
      outage_mtbf = forever;
      horizon = Time.s 86_400.;
    }
  in
  let r = A.simulate ~params ~trials:5 ~seed:1 A.perseas_two_supplies in
  check (Alcotest.float 1e-12) "fully available" 1.0 r.availability;
  check (Alcotest.float 0.) "no losses" 0. r.loss_events_per_decade

let test_fast_remirror_reduces_losses () =
  let with_delay d =
    let params = { A.default_params with remirror_delay = d } in
    (A.simulate ~params ~trials:80 ~seed:11 A.perseas_two_supplies).loss_events_per_decade
  in
  let fast = with_delay (Time.s 60.) in
  let slow = with_delay (Time.s 86_400.) in
  check_bool
    (Printf.sprintf "1-minute remirror (%.2f) beats 1-day (%.2f)" fast slow)
    true (fast <= slow)

let suite =
  [
    ("simulation is deterministic per seed", `Quick, test_deterministic);
    ("disk never loses data but is less available", `Quick, test_disk_never_loses_data);
    ("power-supply separation matters", `Quick, test_supply_separation_matters);
    ("more mirrors are safer", `Quick, test_more_mirrors_safer);
    ("PERSEAS beats single-node availability", `Quick, test_perseas_more_available_than_single_node);
    ("UPS malfunction hurts Rio", `Quick, test_ups_malfunction_hurts_rio);
    ("no failures, no downtime", `Quick, test_no_failures_no_downtime);
    ("fast remirroring reduces losses", `Quick, test_fast_remirror_reduces_losses);
  ]
