open Sim
module Node = Cluster.Node
module Failure = Cluster.Failure

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let three_nodes ?(ups_on = []) () =
  let clock = Clock.create () in
  let spec i name supply =
    Cluster.spec ~ups:(List.mem i ups_on) ~dram_size:(1 lsl 20) ~power_supply:supply name
  in
  (clock, Cluster.create ~clock [ spec 0 "a" 0; spec 1 "b" 1; spec 2 "c" 0 ])

let test_ring_hops () =
  let _, c = three_nodes () in
  check_int "self" 0 (Cluster.hops c ~src:0 ~dst:0);
  check_int "next" 1 (Cluster.hops c ~src:0 ~dst:1);
  check_int "two" 2 (Cluster.hops c ~src:0 ~dst:2);
  check_int "wraps" 1 (Cluster.hops c ~src:2 ~dst:0)

let test_crash_wipes_dram () =
  let _, c = three_nodes () in
  let n = Cluster.node c 0 in
  Mem.Image.write_bytes (Node.dram n) ~off:0 (Bytes.of_string "precious");
  check Alcotest.string "written" "precious" (Bytes.to_string (Mem.Image.read_bytes (Node.dram n) ~off:0 ~len:8));
  (match Node.crash n Failure.Software_error with
  | `Crashed -> ()
  | `Survived -> Alcotest.fail "expected crash");
  check_bool "down" false (Node.is_up n);
  (try
     ignore (Node.dram n);
     Alcotest.fail "dram of a down node must be unreachable"
   with Failure _ -> ());
  Node.restart n;
  check_bool "up again" true (Node.is_up n);
  check_bool "memory gone" true
    (Bytes.to_string (Mem.Image.read_bytes (Node.dram n) ~off:0 ~len:8) <> "precious")

let test_ups_absorbs_power_outage () =
  let _, c = three_nodes ~ups_on:[ 1 ] () in
  let n = Cluster.node c 1 in
  (match Node.crash n Failure.Power_outage with
  | `Survived -> ()
  | `Crashed -> Alcotest.fail "UPS node must survive a power outage");
  check_bool "still up" true (Node.is_up n);
  (* ...but not software errors. *)
  match Node.crash n Failure.Software_error with
  | `Crashed -> ()
  | `Survived -> Alcotest.fail "UPS does not help a software crash"

let test_power_supply_correlation () =
  let _, c = three_nodes () in
  (* Nodes 0 and 2 share supply 0; node 1 is on supply 1. *)
  let downed = Cluster.crash_power_supply c 0 in
  check (Alcotest.list Alcotest.int) "both nodes on supply 0 down" [ 0; 2 ] (List.sort compare downed);
  check (Alcotest.list Alcotest.int) "node on supply 1 alive" [ 1 ] (Cluster.up_nodes c)

let test_power_supply_spares_ups () =
  let _, c = three_nodes ~ups_on:[ 2 ] () in
  let downed = Cluster.crash_power_supply c 0 in
  check (Alcotest.list Alcotest.int) "only the non-UPS node" [ 0 ] downed;
  check (Alcotest.list Alcotest.int) "two survivors" [ 1; 2 ] (List.sort compare (Cluster.up_nodes c))

let test_crash_counts_and_restart_allocator () =
  let _, c = three_nodes () in
  let n = Cluster.node c 0 in
  let seg = Mem.Allocator.alloc_exn (Node.allocator n) 100 in
  check_int "no crashes yet" 0 (Node.crashes_since_start n);
  ignore (Node.crash n Failure.Hardware_error);
  Node.restart n;
  check_int "one crash" 1 (Node.crashes_since_start n);
  (* A fresh allocator after restart: the old segment is no longer live. *)
  check_bool "old segment not live" false (Mem.Allocator.is_live (Node.allocator n) seg);
  ignore (Mem.Allocator.alloc_exn (Node.allocator n) (1 lsl 20))

let test_local_copy_moves_and_charges () =
  let clock, c = three_nodes () in
  let n = Cluster.node c 0 in
  Mem.Image.write_bytes (Node.dram n) ~off:0 (Bytes.of_string "move-me");
  Node.local_copy n ~src_off:0 ~dst_off:100 ~len:7 ();
  check Alcotest.string "copied" "move-me" (Bytes.to_string (Mem.Image.read_bytes (Node.dram n) ~off:100 ~len:7));
  check_bool "charged" true (Clock.now clock > 0)

let test_crash_idempotent () =
  let _, c = three_nodes () in
  let n = Cluster.node c 0 in
  ignore (Node.crash n Failure.Software_error);
  (match Node.crash n Failure.Software_error with
  | `Crashed -> ()
  | `Survived -> Alcotest.fail "crashing a down node is `Crashed");
  check_int "counted once" 1 (Node.crashes_since_start n)

let test_empty_cluster_rejected () =
  let clock = Clock.create () in
  try
    ignore (Cluster.create ~clock []);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    ("ring hop distances", `Quick, test_ring_hops);
    ("crash wipes DRAM and blocks access", `Quick, test_crash_wipes_dram);
    ("UPS absorbs power outages only", `Quick, test_ups_absorbs_power_outage);
    ("power supply failure is correlated", `Quick, test_power_supply_correlation);
    ("power supply failure spares UPS nodes", `Quick, test_power_supply_spares_ups);
    ("restart resets allocator, counts crashes", `Quick, test_crash_counts_and_restart_allocator);
    ("local copy moves bytes and charges", `Quick, test_local_copy_moves_and_charges);
    ("crash is idempotent", `Quick, test_crash_idempotent);
    ("empty cluster rejected", `Quick, test_empty_cluster_rejected);
  ]
