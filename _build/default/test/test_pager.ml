open Sim
module Pager = Netram.Pager
module Node = Cluster.Node

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let remote_bed ?(pages = 32) ?(frames = 8) () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:(4 * 1024 * 1024) ~power_supply:0 "local";
        Cluster.spec ~dram_size:(4 * 1024 * 1024) ~power_supply:1 "memory-server";
      ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  let pager =
    Pager.create ~backing:(Pager.Remote_memory client) ~node:(Cluster.node cluster 0) ~pages
      ~frames ()
  in
  (clock, cluster, pager)

let swap_bed ?(pages = 32) ?(frames = 8) () =
  let clock = Clock.create () in
  let cluster = Cluster.create ~clock [ Cluster.spec ~dram_size:(4 * 1024 * 1024) "local" ] in
  let device =
    Disk.Device.create ~clock ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
      ~capacity:(pages * Pager.page_size)
  in
  let pager =
    Pager.create ~backing:(Pager.Swap_disk device) ~node:(Cluster.node cluster 0) ~pages ~frames ()
  in
  (clock, pager)

let test_rw_within_resident_set () =
  let _, _, p = remote_bed () in
  Pager.write p ~addr:100 (Bytes.of_string "resident");
  check Alcotest.string "roundtrip" "resident" (Bytes.to_string (Pager.read p ~addr:100 ~len:8));
  let s = Pager.stats p in
  check_int "one fault (first touch)" 1 s.faults;
  check_int "one hit (read)" 1 s.hits;
  check_int "no evictions" 0 s.evictions

let test_data_survives_eviction () =
  let _, _, p = remote_bed ~pages:32 ~frames:4 () in
  (* Write a distinct stamp into every page, blowing out the resident
     set many times over. *)
  for page = 0 to 31 do
    Pager.write_u64 p ~addr:(page * Pager.page_size) (Int64.of_int (page * 1000))
  done;
  for page = 0 to 31 do
    check Alcotest.int64
      (Printf.sprintf "page %d intact" page)
      (Int64.of_int (page * 1000))
      (Pager.read_u64 p ~addr:(page * Pager.page_size))
  done;
  let s = Pager.stats p in
  check_bool "evictions happened" true (s.evictions > 0);
  check_bool "dirty pages written back" true (s.writebacks > 0)

let test_cross_page_access () =
  let _, _, p = remote_bed () in
  let addr = Pager.page_size - 4 in
  Pager.write p ~addr (Bytes.of_string "spanning!");
  check Alcotest.string "crosses the boundary" "spanning!"
    (Bytes.to_string (Pager.read p ~addr ~len:9))

let test_lru_policy () =
  let _, _, p = remote_bed ~pages:8 ~frames:2 () in
  let touch page = ignore (Pager.read_u64 p ~addr:(page * Pager.page_size)) in
  touch 0;
  touch 1;
  (* Re-touch 0 so page 1 is the LRU victim. *)
  touch 0;
  touch 2;
  (* 0 must still be resident: touching it again faults nothing new. *)
  let faults_before = (Pager.stats p).faults in
  touch 0;
  check_int "page 0 kept (MRU)" faults_before (Pager.stats p).faults;
  touch 1;
  check_int "page 1 was evicted" (faults_before + 1) (Pager.stats p).faults

let test_remote_fault_orders_faster_than_disk () =
  (* The remote-paging pitch: a fault served from network memory is
     ~100x cheaper than one served from a swap disk. *)
  let _, _, rp = remote_bed ~pages:64 ~frames:8 () in
  let _, sp = swap_bed ~pages:64 ~frames:8 () in
  let thrash p =
    for i = 0 to 255 do
      ignore (Pager.read_u64 p ~addr:(i * 17 mod 64 * Pager.page_size))
    done
  in
  thrash rp;
  thrash sp;
  let rt = Pager.fault_time rp and st = Pager.fault_time sp in
  check_bool "same fault counts" true ((Pager.stats rp).faults = (Pager.stats sp).faults);
  check_bool
    (Printf.sprintf "remote (%s) at least 20x faster than disk (%s)" (Time.to_string rt)
       (Time.to_string st))
    true
    (Time.to_ns st > 20 * Time.to_ns rt)

let test_flush_writes_dirty_pages () =
  let _, cluster, p = remote_bed ~pages:4 ~frames:4 () in
  Pager.write_u64 p ~addr:0 42L;
  Pager.flush p;
  (* The page now lives remotely: its bytes are visible in the memory
     server's DRAM (and the local copy is clean). *)
  let server_node = Cluster.node cluster 1 in
  let remote = Node.dram server_node in
  let found = ref false in
  (* Scan the server's memory for the stamp (the segment's base is an
     implementation detail of the allocator). *)
  let size = Mem.Image.size remote in
  let i = ref 0 in
  while (not !found) && !i + 8 <= size do
    if Mem.Image.read_u64 remote !i = 42L then found := true;
    i := !i + 8
  done;
  check_bool "stamp reached the server" true !found;
  check_bool "flush counted" true ((Pager.stats p).writebacks >= 1)

let test_bounds_and_validation () =
  let _, _, p = remote_bed ~pages:4 ~frames:2 () in
  (try
     ignore (Pager.read p ~addr:(4 * Pager.page_size) ~len:1);
     Alcotest.fail "out of range"
   with Invalid_argument _ -> ());
  let clock = Clock.create () in
  let cluster = Cluster.create ~clock [ Cluster.spec "x" ] in
  try
    ignore
      (Pager.create
         ~backing:
           (Pager.Swap_disk
              (Disk.Device.create ~clock
                 ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
                 ~capacity:1024))
         ~node:(Cluster.node cluster 0) ~pages:16 ~frames:4 ());
    Alcotest.fail "swap too small"
  with Invalid_argument _ -> ()

let prop_pager_matches_flat_memory =
  QCheck.Test.make ~name:"paged reads/writes match a flat byte array" ~count:40
    QCheck.(
      list_of_size (Gen.int_range 1 80)
        (triple bool (int_bound (16 * 4096 - 64)) (int_range 1 64)))
    (fun ops ->
      let _, _, p = remote_bed ~pages:16 ~frames:3 () in
      let model = Bytes.make (16 * Pager.page_size) '\000' in
      List.for_all
        (fun (is_write, addr, len) ->
          if is_write then begin
            let data = Bytes.init len (fun i -> Char.chr ((addr + i) land 0xff)) in
            Pager.write p ~addr data;
            Bytes.blit data 0 model addr len;
            true
          end
          else Pager.read p ~addr ~len = Bytes.sub model addr len)
        ops)

let suite =
  [
    ("read/write within the resident set", `Quick, test_rw_within_resident_set);
    ("data survives eviction", `Quick, test_data_survives_eviction);
    ("cross-page access", `Quick, test_cross_page_access);
    ("LRU eviction policy", `Quick, test_lru_policy);
    ("remote faults beat disk faults", `Quick, test_remote_fault_orders_faster_than_disk);
    ("flush pushes dirty pages to the server", `Quick, test_flush_writes_dirty_pages);
    ("bounds and validation", `Quick, test_bounds_and_validation);
    QCheck_alcotest.to_alcotest prop_pager_matches_flat_memory;
  ]
