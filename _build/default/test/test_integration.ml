(* End-to-end scenarios across the whole stack: realistic workloads,
   crashes at awkward moments, recovery on other workstations, and the
   availability property the paper advertises. *)

open Sim
module P = Perseas
module Node = Cluster.Node

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

let bed () = Harness.Testbed.perseas_bed ~dram_mb:32 ()

(* A banking day with a crash in the middle: run debit-credit, crash
   the primary at a random packet of a random transaction, recover on
   the spare, and keep going — the invariant must hold throughout. *)
let test_bank_crash_and_continue () =
  let b = bed () in
  let module W = Workloads.Debit_credit.Make (P.Engine) in
  let rng = Rng.create 100 in
  let db = W.setup b.perseas ~params:Workloads.Debit_credit.small_params in
  for _ = 1 to 200 do
    W.transaction db rng
  done;
  check_bool "consistent before crash" true (W.consistent db);
  (* Crash inside some later transaction. *)
  let exception Boom in
  let countdown = ref 23 in
  P.set_packet_hook b.perseas
    (Some (fun () -> if !countdown = 0 then raise Boom else decr countdown));
  (try
     for _ = 1 to 50 do
       W.transaction db rng
     done;
     Alcotest.fail "hook should have fired"
   with Boom -> ());
  P.set_packet_hook b.perseas None;
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  (* Recover on the spare workstation; the recovered store must pass
     the TPC-B consistency condition. *)
  let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  let sum_first_8 seg_name n stride =
    let seg = Option.get (P.segment t2 seg_name) in
    let total = ref 0L in
    for i = 0 to n - 1 do
      total := Int64.add !total (P.read_u64 t2 seg ~off:(i * stride))
    done;
    !total
  in
  let params = Workloads.Debit_credit.small_params in
  let rs = Workloads.Debit_credit.record_size in
  let a = sum_first_8 "accounts" params.accounts_per_branch rs in
  let t = sum_first_8 "tellers" (10 * params.scale) rs in
  let br = sum_first_8 "branches" params.scale rs in
  check_i64 "accounts = tellers" a t;
  check_i64 "tellers = branches" t br;
  (* Every segment's local copy must equal its mirror after recovery. *)
  List.iter
    (fun seg -> check_i64 (P.segment_name seg ^ " mirrored") (P.checksum t2 seg) (P.mirror_checksum t2 seg))
    (P.segments t2)

(* The paper's availability pitch: with the primary out cold, a fresh
   workstation takes over immediately; when the primary finally comes
   back it can recover too, from the same mirror, seeing the spare's
   later commits. *)
let test_failover_then_failback () =
  let b = bed () in
  let seg = P.malloc b.perseas ~name:"kv" ~size:4096 in
  P.init_remote_db b.perseas;
  let put t seg k v =
    let txn = P.begin_transaction t in
    P.set_range txn seg ~off:(k * 8) ~len:8;
    P.write_u64 t seg ~off:(k * 8) v;
    P.commit txn
  in
  put b.perseas seg 1 100L;
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Hardware_error);
  (* Spare takes over and commits more work. *)
  let spare = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  let seg_s = Option.get (P.segment spare "kv") in
  check_i64 "sees old value" 100L (P.read_u64 spare seg_s ~off:8);
  put spare seg_s 2 200L;
  (* Primary comes back much later and recovers: it must see both. *)
  ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Software_error);
  Cluster.restart_node b.cluster 0;
  let back = P.recover ~cluster:b.cluster ~local:0 ~server:b.server () in
  let seg_b = Option.get (P.segment back "kv") in
  check_i64 "old value" 100L (P.read_u64 back seg_b ~off:8);
  check_i64 "spare's commit" 200L (P.read_u64 back seg_b ~off:16)

(* Double-crash scenario the paper concedes: if both the primary and
   the mirror die in the same window, the data is gone. *)
let test_double_crash_loses_data () =
  let b = bed () in
  let _seg = P.malloc b.perseas ~name:"doomed" ~size:256 in
  P.init_remote_db b.perseas;
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Software_error);
  Cluster.restart_node b.cluster 1;
  let server2 = Netram.Server.create (Cluster.node b.cluster 1) in
  try
    ignore (P.recover ~cluster:b.cluster ~local:2 ~server:server2 ());
    Alcotest.fail "expected unrecoverable failure"
  with Failure _ -> ()

(* ...but a correlated power outage on the *primary's* supply does not
   hurt, because the mirror hangs off a different supply (the paper's
   §1 deployment rule). *)
let test_correlated_power_outage_survivable () =
  let b = bed () in
  let seg = P.malloc b.perseas ~name:"kv" ~size:256 in
  P.write b.perseas seg ~off:0 (Bytes.of_string "important");
  P.init_remote_db b.perseas;
  let downed = Cluster.crash_power_supply b.cluster 0 in
  check (Alcotest.list Alcotest.int) "only primary down" [ 0 ] downed;
  let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  check Alcotest.string "data intact" "important"
    (Bytes.to_string (P.read t2 (Option.get (P.segment t2 "kv")) ~off:0 ~len:9))

(* Mirror maintenance mid-workload: kill the mirror, re-mirror to the
   spare, keep transacting, then crash the primary and recover from
   the new mirror. *)
let test_mirror_migration_under_load () =
  let b = bed () in
  let module W = Workloads.Debit_credit.Make (P.Engine) in
  let rng = Rng.create 55 in
  let db = W.setup b.perseas ~params:Workloads.Debit_credit.small_params in
  for _ = 1 to 100 do
    W.transaction db rng
  done;
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  let server2 = Netram.Server.create (Cluster.node b.cluster 2) in
  P.remirror b.perseas ~server:server2;
  for _ = 1 to 100 do
    W.transaction db rng
  done;
  check_bool "consistent" true (W.consistent db);
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Power_outage);
  Cluster.restart_node b.cluster 0;
  let t2 = P.recover ~cluster:b.cluster ~local:0 ~server:server2 () in
  List.iter
    (fun seg -> check_i64 "mirrored" (P.checksum t2 seg) (P.mirror_checksum t2 seg))
    (P.segments t2)

(* Recovery must be idempotent: recovering twice from the same mirror
   state (e.g. the recovering node crashes right after recovery)
   produces the same database. *)
let test_recovery_idempotent () =
  let b = bed () in
  let seg = P.malloc b.perseas ~name:"kv" ~size:1024 in
  P.write b.perseas seg ~off:0 (Bytes.make 1024 'i');
  P.init_remote_db b.perseas;
  let exception Boom in
  let txn = P.begin_transaction b.perseas in
  P.set_range txn seg ~off:0 ~len:512;
  P.write b.perseas seg ~off:0 (Bytes.make 512 'j');
  let n = ref 0 in
  P.set_packet_hook b.perseas (Some (fun () -> if !n >= 3 then raise Boom else incr n));
  (match P.commit txn with () -> Alcotest.fail "expected crash" | exception Boom -> ());
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  let c2 = P.checksum t2 (Option.get (P.segment t2 "kv")) in
  ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Software_error);
  Cluster.restart_node b.cluster 2;
  let t3 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  let c3 = P.checksum t3 (Option.get (P.segment t3 "kv")) in
  check_i64 "idempotent" c2 c3

(* Virtual-time sanity: PERSEAS transactions are orders of magnitude
   faster than disk-based RVM on the same workload — checked here so a
   regression in the cost models fails the test suite, not just the
   benchmark report. *)
let test_order_of_magnitude_vs_rvm () =
  let tps (module I : Harness.Testbed.INSTANCE) iters =
    let module W = Workloads.Debit_credit.Make (I.E) in
    let rng = Rng.create 3 in
    let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
    let r = Harness.Measure.run ~clock:I.clock ~finish:I.finish ~warmup:50 ~iters (fun _ ->
        W.transaction db rng)
    in
    r.Harness.Measure.tps
  in
  let perseas = tps (Harness.Testbed.perseas_instance ()) 2000 in
  let rvm = tps (Harness.Testbed.rvm_instance ()) 300 in
  let vista = tps (Harness.Testbed.vista_instance ()) 2000 in
  check_bool "PERSEAS >= 100x RVM" true (perseas >= 100. *. rvm);
  check_bool "PERSEAS within 10x of Vista" true (vista /. perseas < 10.);
  check_bool "PERSEAS > 20k tps" true (perseas > 20_000.)

(* Torture: several random crashes over one long banking run — crash
   at a random packet, recover on an alternating node, keep going; the
   invariant and the mirror scrub must hold after every round. *)
let test_repeated_crash_torture () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:16 () in
  let module W = Workloads.Debit_credit.Make (P.Engine) in
  let rng = Rng.create 2026 in
  let db = W.setup bed.perseas ~params:Workloads.Debit_credit.small_params in
  let engine = ref bed.perseas in
  let db = ref db in
  let home = ref 0 in
  for round = 1 to 6 do
    let exception Boom in
    let fuse = ref (200 + Rng.int rng 400) in
    P.set_packet_hook !engine (Some (fun () -> if !fuse = 0 then raise Boom else decr fuse));
    (try
       for _ = 1 to 200 do
         W.transaction !db rng
       done
     with Boom -> ());
    P.set_packet_hook !engine None;
    ignore (Cluster.crash_node bed.cluster !home Cluster.Failure.Software_error);
    (* Recover on the other non-mirror node. *)
    let next = if !home = 0 then 2 else 0 in
    Cluster.restart_node bed.cluster next;
    let t2 = P.recover ~cluster:bed.cluster ~local:next ~server:bed.server () in
    check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
      (Printf.sprintf "round %d scrub clean" round)
      [] (P.verify_mirrors t2);
    home := next;
    engine := t2;
    (* Rebind the workload db to the recovered engine. *)
    db :=
      {
        !db with
        W.engine = t2;
        accounts = Option.get (P.segment t2 "accounts");
        tellers = Option.get (P.segment t2 "tellers");
        branches = Option.get (P.segment t2 "branches");
        history = Option.get (P.segment t2 "history");
      };
    check_bool (Printf.sprintf "round %d invariant" round) true (W.consistent !db);
    (* And the system keeps serving transactions. *)
    for _ = 1 to 50 do
      W.transaction !db rng
    done
  done

let test_verify_mirrors_scrub () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:8 () in
  let seg = P.malloc bed.perseas ~name:"kv" ~size:1024 in
  P.init_remote_db bed.perseas;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "clean after init" []
    (P.verify_mirrors bed.perseas);
  let txn = P.begin_transaction bed.perseas in
  P.set_range txn seg ~off:0 ~len:64;
  P.write bed.perseas seg ~off:0 (Bytes.make 64 's');
  (* Mid-transaction, before commit, local diverges from the mirror. *)
  check_bool "divergent mid-txn" true (P.verify_mirrors bed.perseas <> []);
  P.commit txn;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "clean after commit" []
    (P.verify_mirrors bed.perseas)

let suite =
  [
    ("bank day with crash and takeover", `Slow, test_bank_crash_and_continue);
    ("repeated crash torture", `Slow, test_repeated_crash_torture);
    ("verify_mirrors scrub", `Quick, test_verify_mirrors_scrub);
    ("failover to spare, failback to primary", `Quick, test_failover_then_failback);
    ("double crash loses data (paper's caveat)", `Quick, test_double_crash_loses_data);
    ("correlated power outage survivable", `Quick, test_correlated_power_outage_survivable);
    ("mirror migration under load", `Slow, test_mirror_migration_under_load);
    ("recovery is idempotent", `Quick, test_recovery_idempotent);
    ("orders-of-magnitude speedup holds", `Slow, test_order_of_magnitude_vs_rvm);
  ]
