(* The application layer (Kvstore, Btree, file-meta) is a functor over
   Txn_intf: these tests run the same model-checked op sequences on the
   baseline engines, proving the interface is honest — the structures
   neither depend on PERSEAS internals nor break on engines with
   different durability machinery. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

(* Run the same randomised kvstore session on one engine and compare
   against a Hashtbl model. *)
let kv_session (module I : Harness.Testbed.INSTANCE) =
  let module KV = Kvstore.Make (I.E) in
  let config = { Kvstore.buckets = 8; capacity = 32; max_key = 16; max_value = 32 } in
  let kv = KV.create ~config I.engine ~name:"generic" in
  I.E.init_done I.engine;
  let rng = Sim.Rng.create 1234 in
  let model = Hashtbl.create 32 in
  for _ = 1 to 300 do
    let key = Printf.sprintf "k%d" (Sim.Rng.int rng 20) in
    match Sim.Rng.int rng 3 with
    | 0 -> (
        let v = String.make (Sim.Rng.int rng 30) 'v' in
        try
          KV.put kv key v;
          Hashtbl.replace model key v
        with Kvstore.Store_full -> ())
    | 1 ->
        let expect = Hashtbl.mem model key in
        if KV.delete kv key <> expect then Alcotest.failf "%s: delete disagrees" I.label;
        Hashtbl.remove model key
    | _ ->
        if KV.get kv key <> Hashtbl.find_opt model key then
          Alcotest.failf "%s: get disagrees" I.label
  done;
  (match KV.check_invariants kv with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" I.label m);
  check_int (I.label ^ " length") (Hashtbl.length model) (KV.length kv)

let test_kvstore_on_all_engines () =
  List.iter kv_session (Harness.Testbed.all_instances ~dram_mb:16 ~device_mb:16 ())

let bt_session (module I : Harness.Testbed.INSTANCE) =
  let module BT = Btree.Make (I.E) in
  let config = { Btree.max_nodes = 256; degree = 4 } in
  let bt = BT.create ~config I.engine ~name:"generic" in
  I.E.init_done I.engine;
  let rng = Sim.Rng.create 99 in
  let module M = Map.Make (Int64) in
  let model = ref M.empty in
  for _ = 1 to 300 do
    let key = Int64.of_int (Sim.Rng.int rng 100) in
    if Sim.Rng.bool rng then begin
      let value = Int64.of_int (Sim.Rng.int rng 1000) in
      BT.insert bt ~key ~value;
      model := M.add key value !model
    end
    else begin
      let expect = M.mem key !model in
      if BT.delete bt key <> expect then Alcotest.failf "%s: delete disagrees" I.label;
      model := M.remove key !model
    end
  done;
  (match BT.check_invariants bt with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" I.label m);
  check_bool (I.label ^ " bindings")
    true
    (BT.range bt ~lo:Int64.min_int ~hi:Int64.max_int = M.bindings !model)

let test_btree_on_all_engines () =
  List.iter bt_session (Harness.Testbed.all_instances ~dram_mb:16 ~device_mb:16 ())

let fs_session (module I : Harness.Testbed.INSTANCE) =
  let module FS = Workloads.File_meta.Make (I.E) in
  let fs = FS.setup I.engine ~params:Workloads.File_meta.small_params in
  let rng = Sim.Rng.create 55 in
  for _ = 1 to 200 do
    FS.transaction fs rng
  done;
  check_bool (I.label ^ " file-meta consistent") true (FS.consistent fs)

let test_file_meta_on_all_engines () =
  List.iter fs_session (Harness.Testbed.all_instances ~dram_mb:16 ~device_mb:16 ())

(* Vista crash-recovery under the kvstore: engine-specific durability,
   engine-generic structure. *)
let test_kvstore_on_vista_survives_crash () =
  let clock = Sim.Clock.create () in
  let cluster = Cluster.create ~clock [ Cluster.spec ~dram_size:(8 * 1024 * 1024) "host" ] in
  let node = Cluster.node cluster 0 in
  let device =
    Disk.Device.create ~clock
      ~backend:(Disk.Device.Rio { Disk.Device.default_rio with ups = true })
      ~capacity:(16 * 1024 * 1024)
  in
  let engine = Baselines.Vista.create ~node ~device () in
  let module KV = Kvstore.Make (Baselines.Vista.Engine) in
  let config = { Kvstore.default_config with buckets = 8; capacity = 32 } in
  let kv = KV.create ~config engine ~name:"store" in
  Baselines.Vista.Engine.init_done engine;
  KV.put kv "durable" "yes";
  ignore (Cluster.Node.crash node Cluster.Failure.Software_error);
  Disk.Device.crash device Disk.Device.Software_error;
  Cluster.Node.restart node;
  let engine2 = Baselines.Vista.recover ~node ~device () in
  let kv2 = KV.attach ~config engine2 ~name:"store" in
  (match KV.check_invariants kv2 with Ok () -> () | Error m -> Alcotest.fail m);
  check (Alcotest.option Alcotest.string) "binding survived Rio" (Some "yes") (KV.get kv2 "durable")

let suite =
  [
    ("kvstore runs on every engine", `Slow, test_kvstore_on_all_engines);
    ("btree runs on every engine", `Slow, test_btree_on_all_engines);
    ("file-meta runs on every engine", `Slow, test_file_meta_on_all_engines);
    ("kvstore on Vista survives a crash", `Quick, test_kvstore_on_vista_survives_crash);
  ]
