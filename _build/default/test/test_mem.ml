open Mem

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Image *)

let test_image_rw () =
  let img = Image.create ~size:64 in
  Image.write_u8 img 0 0xab;
  check_int "u8" 0xab (Image.read_u8 img 0);
  Image.write_u32 img 4 0xdeadbeef;
  check_int "u32" 0xdeadbeef (Image.read_u32 img 4);
  Image.write_u64 img 8 0x1122334455667788L;
  check Alcotest.int64 "u64" 0x1122334455667788L (Image.read_u64 img 8);
  Image.write_bytes img ~off:20 (Bytes.of_string "hello");
  check Alcotest.string "bytes" "hello" (Bytes.to_string (Image.read_bytes img ~off:20 ~len:5))

let test_image_bounds () =
  let img = Image.create ~size:16 in
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> ignore (Image.read_u8 img 16));
  expect_invalid (fun () -> Image.write_u32 img 13 0);
  expect_invalid (fun () -> ignore (Image.read_bytes img ~off:(-1) ~len:2));
  expect_invalid (fun () -> Image.fill img ~off:8 ~len:9 'x')

let test_image_blit_between () =
  let a = Image.create ~size:32 and b = Image.create ~size:32 in
  Image.write_bytes a ~off:0 (Bytes.of_string "0123456789");
  Image.blit ~src:a ~src_off:2 ~dst:b ~dst_off:10 ~len:5;
  check Alcotest.string "copied" "23456" (Bytes.to_string (Image.read_bytes b ~off:10 ~len:5))

let test_image_blit_overlap () =
  let img = Image.create ~size:16 in
  Image.write_bytes img ~off:0 (Bytes.of_string "abcdef");
  Image.blit ~src:img ~src_off:0 ~dst:img ~dst_off:2 ~len:4;
  check Alcotest.string "memmove semantics" "ababcd"
    (Bytes.to_string (Image.read_bytes img ~off:0 ~len:6))

let test_image_wipe_and_checksum () =
  let img = Image.create ~size:128 in
  Image.write_bytes img ~off:0 (Bytes.of_string "payload");
  let before = Image.checksum img ~off:0 ~len:128 in
  Image.wipe img;
  check_bool "wipe changes checksum" true (before <> Image.checksum img ~off:0 ~len:128);
  check_int "wipe pattern" 0xde (Image.read_u8 img 0)

let test_image_equal_range () =
  let a = Image.create ~size:16 and b = Image.create ~size:16 in
  check_bool "fresh equal" true (Image.equal_range a b ~off:0 ~len:16);
  Image.write_u8 b 7 1;
  check_bool "differ" false (Image.equal_range a b ~off:0 ~len:16);
  check_bool "prefix equal" true (Image.equal_range a b ~off:0 ~len:7)

(* ------------------------------------------------------------------ *)
(* Segment *)

let test_segment_basics () =
  let s = Segment.v ~base:64 ~len:32 in
  check_int "base" 64 (Segment.base s);
  check_int "len" 32 (Segment.len s);
  check_int "last" 95 (Segment.last s);
  check_bool "contains inner" true (Segment.contains s ~off:64 ~len:32);
  check_bool "not before" false (Segment.contains s ~off:63 ~len:2);
  check_bool "not after" false (Segment.contains s ~off:95 ~len:2);
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> ignore (Segment.v ~base:(-1) ~len:4));
  expect_invalid (fun () -> ignore (Segment.v ~base:0 ~len:0))

let test_segment_overlap () =
  let a = Segment.v ~base:0 ~len:10 and b = Segment.v ~base:10 ~len:10 in
  check_bool "adjacent do not overlap" false (Segment.overlaps a b);
  let c = Segment.v ~base:5 ~len:10 in
  check_bool "overlap" true (Segment.overlaps a c);
  check_bool "symmetric" true (Segment.overlaps c a)

(* ------------------------------------------------------------------ *)
(* Allocator *)

let ok_invariants a =
  match Allocator.check_invariants a with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariants: " ^ msg)

let test_alloc_basic () =
  let a = Allocator.create ~size:1024 () in
  let s1 = Allocator.alloc_exn a 100 in
  let s2 = Allocator.alloc_exn a 200 in
  check_bool "disjoint" false (Mem.Segment.overlaps s1 s2);
  check_int "live" 300 (Allocator.bytes_live a);
  check_int "free" 724 (Allocator.bytes_free a);
  ok_invariants a;
  Allocator.free a s1;
  check_int "live after free" 200 (Allocator.bytes_live a);
  ok_invariants a

let test_alloc_alignment () =
  let a = Allocator.create ~size:4096 () in
  let _pad = Allocator.alloc_exn a 10 in
  let s = Allocator.alloc_exn a ~align:64 100 in
  check_int "aligned" 0 (Mem.Segment.base s mod 64);
  ok_invariants a

let test_alloc_exhaustion_and_reuse () =
  let a = Allocator.create ~size:256 () in
  let s = Allocator.alloc_exn a 256 in
  check_bool "full" true (Allocator.alloc a 1 = None);
  Allocator.free a s;
  let s' = Allocator.alloc_exn a 256 in
  check_int "reuses space" (Mem.Segment.base s) (Mem.Segment.base s');
  ok_invariants a

let test_alloc_coalescing () =
  let a = Allocator.create ~size:300 () in
  let s1 = Allocator.alloc_exn a 100 in
  let s2 = Allocator.alloc_exn a 100 in
  let s3 = Allocator.alloc_exn a 100 in
  Allocator.free a s1;
  Allocator.free a s3;
  Allocator.free a s2;
  (* All free again: a single coalesced block must satisfy a full-size
     request. *)
  ignore (Allocator.alloc_exn a 300);
  ok_invariants a

let test_alloc_double_free () =
  let a = Allocator.create ~size:128 () in
  let s = Allocator.alloc_exn a 64 in
  Allocator.free a s;
  (try
     Allocator.free a s;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  ok_invariants a

let test_alloc_nonzero_base () =
  let a = Allocator.create ~base:1000 ~size:100 () in
  let s = Allocator.alloc_exn a 100 in
  check_int "base respected" 1000 (Mem.Segment.base s);
  ok_invariants a

(* Property: a random interleaving of allocs and frees preserves the
   allocator invariants, and no two live blocks ever overlap. *)
let prop_allocator_random_ops =
  QCheck.Test.make ~name:"allocator random alloc/free keeps invariants" ~count:200
    QCheck.(pair (int_bound 1000) (list (pair (int_range 1 200) bool)))
    (fun (seed, ops) ->
      let rng = Sim.Rng.create seed in
      let a = Allocator.create ~size:8192 () in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          if do_free && !live <> [] then begin
            let i = Sim.Rng.int rng (List.length !live) in
            let seg = List.nth !live i in
            Allocator.free a seg;
            live := List.filteri (fun j _ -> j <> i) !live
          end
          else
            match Allocator.alloc a ~align:(1 lsl Sim.Rng.int rng 7) size with
            | Some seg -> live := seg :: !live
            | None -> ())
        ops;
      (match Allocator.check_invariants a with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report msg);
      true)

let prop_alloc_conserves_bytes =
  QCheck.Test.make ~name:"allocator conserves bytes" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 100))
    (fun sizes ->
      let a = Allocator.create ~size:65536 () in
      let segs = List.filter_map (fun n -> Allocator.alloc a n) sizes in
      let live = List.fold_left (fun acc s -> acc + Mem.Segment.len s) 0 segs in
      Allocator.bytes_live a = live && Allocator.bytes_free a + live = 65536)

let suite =
  [
    ("image read/write", `Quick, test_image_rw);
    ("image bounds checking", `Quick, test_image_bounds);
    ("image blit between images", `Quick, test_image_blit_between);
    ("image overlapping blit", `Quick, test_image_blit_overlap);
    ("image wipe and checksum", `Quick, test_image_wipe_and_checksum);
    ("image equal_range", `Quick, test_image_equal_range);
    ("segment basics", `Quick, test_segment_basics);
    ("segment overlap", `Quick, test_segment_overlap);
    ("allocator basic alloc/free", `Quick, test_alloc_basic);
    ("allocator alignment", `Quick, test_alloc_alignment);
    ("allocator exhaustion and reuse", `Quick, test_alloc_exhaustion_and_reuse);
    ("allocator coalescing", `Quick, test_alloc_coalescing);
    ("allocator double free rejected", `Quick, test_alloc_double_free);
    ("allocator non-zero base", `Quick, test_alloc_nonzero_base);
    QCheck_alcotest.to_alcotest prop_allocator_random_ops;
    QCheck_alcotest.to_alcotest prop_alloc_conserves_bytes;
  ]
