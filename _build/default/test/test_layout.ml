module L = Perseas.Layout

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Names and namespaces *)

let test_export_names () =
  check_str "default db name" "perseas!db!accounts" (L.db_export_name "accounts");
  check_str "namespaced db name" "bank!db!accounts" (L.db_export_name ~ns:"bank" "accounts");
  check_str "meta" "bank!meta" (L.meta_name ~ns:"bank");
  check_str "undo" "bank!undo" (L.undo_name ~ns:"bank");
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> ignore (L.db_export_name ""));
  expect_invalid (fun () -> ignore (L.db_export_name "has!bang"));
  expect_invalid (fun () -> ignore (L.db_export_name (String.make 40 'x')));
  expect_invalid (fun () -> ignore (L.db_export_name ~ns:"bad!ns" "ok"));
  expect_invalid (fun () -> ignore (L.meta_name ~ns:""))

let test_namespace_validity () =
  check_bool "default ok" true (L.valid_namespace L.default_namespace);
  check_bool "empty bad" false (L.valid_namespace "");
  check_bool "bang bad" false (L.valid_namespace "a!b");
  check_bool "too long bad" false (L.valid_namespace (String.make 33 'n'))

(* ------------------------------------------------------------------ *)
(* Metadata segment *)

let test_meta_roundtrip () =
  let b = Bytes.make (L.meta_size ~max_segments:8) '\000' in
  L.write_meta_magic b;
  L.write_epoch b 42L;
  L.write_nsegs b 2;
  L.write_table_entry b ~index:0 ~name:"alpha" ~size:1000;
  L.write_table_entry b ~index:1 ~name:"beta" ~size:2000;
  check Alcotest.int64 "magic" L.meta_magic (L.read_meta_magic b);
  check Alcotest.int64 "epoch" 42L (L.read_epoch b);
  check_int "nsegs" 2 (L.read_nsegs b);
  let n0, s0 = L.read_table_entry b ~index:0 in
  let n1, s1 = L.read_table_entry b ~index:1 in
  check_str "name 0" "alpha" n0;
  check_int "size 0" 1000 s0;
  check_str "name 1" "beta" n1;
  check_int "size 1" 2000 s1

let test_meta_corrupt_entry () =
  let b = Bytes.make (L.meta_size ~max_segments:4) '\000' in
  try
    ignore (L.read_table_entry b ~index:0);
    Alcotest.fail "expected failure on blank entry"
  with Failure _ -> ()

let test_epoch_field_is_8_bytes_at_fixed_offset () =
  (* The commit point depends on this: one sub-16-byte field. *)
  check_int "offset" 8 L.epoch_offset;
  check_bool "within one 16-byte sub-block" true (L.epoch_offset / 16 = (L.epoch_offset + 7) / 16)

(* ------------------------------------------------------------------ *)
(* Undo records *)

let test_undo_roundtrip () =
  let payload = Bytes.of_string "before-image" in
  let h = { L.epoch = 7L; seg_index = 3; off = 100; len = Bytes.length payload } in
  let rec_ = L.encode_undo h ~payload in
  check_int "size" (L.undo_header_size + Bytes.length payload) (Bytes.length rec_);
  (match L.decode_undo_header rec_ ~off:0 with
  | Some h' ->
      check Alcotest.int64 "epoch" h.epoch h'.L.epoch;
      check_int "seg" h.seg_index h'.L.seg_index;
      check_int "off" h.off h'.L.off;
      check_int "len" h.len h'.L.len
  | None -> Alcotest.fail "decode failed");
  check_bool "checksum verifies" true (L.verify_undo rec_ ~off:0 h)

let test_undo_detects_corruption () =
  let payload = Bytes.make 32 'p' in
  let h = { L.epoch = 1L; seg_index = 0; off = 0; len = 32 } in
  let rec_ = L.encode_undo h ~payload in
  (* Flip one payload byte: the checksum must catch it. *)
  Bytes.set rec_ (L.undo_header_size + 5) 'X';
  check_bool "corrupt payload rejected" false (L.verify_undo rec_ ~off:0 h)

let test_undo_slot_alignment () =
  check_int "empty record slots to 64" 64 (L.undo_slot ~off:0 ~payload_len:4);
  check_int "bigger record" 128 (L.undo_slot ~off:0 ~payload_len:64);
  check_int "chained" 192 (L.undo_slot ~off:64 ~payload_len:100);
  check_bool "always 64-aligned" true (L.undo_slot ~off:64 ~payload_len:17 mod 64 = 0)

let test_undo_decode_bounds () =
  let payload = Bytes.make 8 'z' in
  let h = { L.epoch = 1L; seg_index = 0; off = 0; len = 8 } in
  let rec_ = L.encode_undo h ~payload in
  (* Truncated buffer: header says 8 payload bytes but they are cut off. *)
  let truncated = Bytes.sub rec_ 0 (L.undo_header_size + 4) in
  check_bool "truncated record rejected" true (L.decode_undo_header truncated ~off:0 = None);
  check_bool "off out of range" true (L.decode_undo_header rec_ ~off:100 = None)

let prop_undo_roundtrip =
  QCheck.Test.make ~name:"undo records roundtrip for arbitrary payloads" ~count:300
    QCheck.(
      quad (int_bound 1000) (int_bound 63) (int_bound 100_000)
        (string_gen_of_size (Gen.int_range 1 512) Gen.char))
    (fun (epoch, seg_index, off, payload) ->
      let payload = Bytes.of_string payload in
      let h = { L.epoch = Int64.of_int epoch; seg_index; off; len = Bytes.length payload } in
      let rec_ = L.encode_undo h ~payload in
      match L.decode_undo_header rec_ ~off:0 with
      | Some h' -> h' = h && L.verify_undo rec_ ~off:0 h'
      | None -> false)

let prop_undo_garbage_rejected =
  QCheck.Test.make ~name:"random garbage never verifies as an undo record" ~count:300
    QCheck.(string_gen_of_size (Gen.return 128) Gen.char)
    (fun garbage ->
      let b = Bytes.of_string garbage in
      match L.decode_undo_header b ~off:0 with
      | None -> true
      | Some h -> not (L.verify_undo b ~off:0 h) || h.L.len <= 128 - L.undo_header_size)

let suite =
  [
    ("export names and namespaces", `Quick, test_export_names);
    ("namespace validity", `Quick, test_namespace_validity);
    ("metadata roundtrip", `Quick, test_meta_roundtrip);
    ("corrupt table entry rejected", `Quick, test_meta_corrupt_entry);
    ("epoch field placement", `Quick, test_epoch_field_is_8_bytes_at_fixed_offset);
    ("undo record roundtrip", `Quick, test_undo_roundtrip);
    ("undo checksum catches corruption", `Quick, test_undo_detects_corruption);
    ("undo slot alignment", `Quick, test_undo_slot_alignment);
    ("undo decode bounds", `Quick, test_undo_decode_bounds);
    QCheck_alcotest.to_alcotest prop_undo_roundtrip;
    QCheck_alcotest.to_alcotest prop_undo_garbage_rejected;
  ]
