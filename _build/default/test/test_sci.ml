open Sim

let p = Sci.Params.default
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Packetisation *)

let test_packet_small_store () =
  let pkts = Sci.Packet.of_range p ~off:0 ~len:4 in
  check_int "one packet" 1 (List.length pkts);
  check_int "16B kind" 1 (Sci.Packet.count Sci.Packet.Part16 pkts)

let test_packet_crossing_subblock () =
  (* A store crossing a 16-byte boundary needs two packets (paper §4). *)
  let pkts = Sci.Packet.of_range p ~off:12 ~len:8 in
  check_int "two packets" 2 (List.length pkts);
  check_int "conserves bytes" 8 (Sci.Packet.total_bytes pkts)

let test_packet_full_buffer () =
  let pkts = Sci.Packet.of_range p ~off:0 ~len:64 in
  check_int "one full64" 1 (Sci.Packet.count Sci.Packet.Full64 pkts);
  check_int "no part16" 0 (Sci.Packet.count Sci.Packet.Part16 pkts)

let test_packet_mixed () =
  (* 200 bytes from offset 0: 3 full buffers + one 8-byte tail. *)
  let pkts = Sci.Packet.of_range p ~off:0 ~len:200 in
  check_int "full64" 3 (Sci.Packet.count Sci.Packet.Full64 pkts);
  check_int "part16" 1 (Sci.Packet.count Sci.Packet.Part16 pkts);
  check_int "bytes" 200 (Sci.Packet.total_bytes pkts)

let test_packet_unaligned_both_sides () =
  (* [60, 132): 4 bytes in buffer 0, full buffer 1, 4 bytes in buffer 2. *)
  let pkts = Sci.Packet.of_range p ~off:60 ~len:72 in
  check_int "full64" 1 (Sci.Packet.count Sci.Packet.Full64 pkts);
  check_int "part16" 2 (Sci.Packet.count Sci.Packet.Part16 pkts);
  check_int "bytes" 72 (Sci.Packet.total_bytes pkts)

let test_packet_empty_and_invalid () =
  check_int "empty" 0 (List.length (Sci.Packet.of_range p ~off:0 ~len:0));
  (try
     ignore (Sci.Packet.of_range p ~off:(-4) ~len:8);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_last_word () =
  check_bool "ends at 64" true (Sci.Packet.ends_on_last_word p ~off:0 ~len:64);
  check_bool "ends at 62" true (Sci.Packet.ends_on_last_word p ~off:0 ~len:62);
  check_bool "ends at 56" false (Sci.Packet.ends_on_last_word p ~off:0 ~len:56)

let test_buffer_index () =
  check_int "addr 0 -> buf 0" 0 (Sci.Packet.buffer_index p 0);
  check_int "addr 64 -> buf 1" 1 (Sci.Packet.buffer_index p 64);
  check_int "addr 512 wraps" 0 (Sci.Packet.buffer_index p 512)

let prop_packets_conserve_bytes =
  QCheck.Test.make ~name:"packetisation conserves bytes and stays in range" ~count:500
    QCheck.(pair (int_bound 1000) (int_range 1 2048))
    (fun (off, len) ->
      let pkts = Sci.Packet.of_range p ~off ~len in
      Sci.Packet.total_bytes pkts = len
      && List.for_all (fun (pkt : Sci.Packet.t) -> pkt.addr >= off && pkt.addr + pkt.len <= off + len) pkts
      && List.for_all
           (fun (pkt : Sci.Packet.t) ->
             match pkt.kind with
             | Sci.Packet.Full64 -> pkt.len = 64 && pkt.addr mod 64 = 0
             | Sci.Packet.Part16 -> pkt.len >= 1 && pkt.len <= 16)
           pkts)

let prop_packets_sorted_disjoint =
  QCheck.Test.make ~name:"packets are address-ordered and disjoint" ~count:500
    QCheck.(pair (int_bound 1000) (int_range 1 2048))
    (fun (off, len) ->
      let pkts = Sci.Packet.of_range p ~off ~len in
      let rec ordered = function
        | (a : Sci.Packet.t) :: (b : Sci.Packet.t) :: rest -> a.addr + a.len = b.addr && ordered (b :: rest)
        | _ -> true
      in
      ordered pkts)

(* ------------------------------------------------------------------ *)
(* Latency model *)

let us x = Time.us x

let test_latency_calibration_points () =
  check_int "4B store = 2.7us" (us 2.7) (Sci.Model.write_range p ~off:0 ~len:4 ());
  (* one vs two sub-block packets *)
  check_int "8B crossing = 4.5us" (us 4.5) (Sci.Model.write_range p ~off:12 ~len:8 ());
  (* A whole buffer ends on its last word, so the early-flush bonus
     applies: 0.9 + 5.0 - 0.3. *)
  check_int "full 64B = 5.6us" (us 5.6) (Sci.Model.write_range p ~off:0 ~len:64 ())

let test_latency_aligned_wins_above_32 () =
  (* Raw 33..64-byte stores are slower than one whole 64-byte buffer. *)
  let full = Sci.Model.write_range p ~off:0 ~len:64 () in
  for len = 33 to 63 do
    if not (Sci.Packet.ends_on_last_word p ~off:0 ~len) then
      check_bool
        (Printf.sprintf "64B region beats raw %dB" len)
        true
        (Sci.Model.write_range p ~off:0 ~len () >= full)
  done;
  (* ...but a 32-byte store is cheaper raw (the paper's threshold). *)
  check_bool "32B raw beats 64B region" true (Sci.Model.write_range p ~off:0 ~len:32 () < full)

let test_latency_monotone_in_buffers () =
  let lat n = Sci.Model.write_range p ~off:0 ~len:(n * 64) () in
  for n = 1 to 16 do
    check_bool "monotone" true (lat (n + 1) > lat n)
  done

let test_latency_streaming_amortises () =
  (* Per-buffer marginal cost for a long copy is the streaming cost,
     lower than the first-packet cost. *)
  let l1 = Sci.Model.write_range p ~off:0 ~len:(64 * 100) () in
  let l2 = Sci.Model.write_range p ~off:0 ~len:(64 * 101) () in
  check_int "marginal 64B = streaming cost" p.t_pkt64_stream (l2 - l1)

let test_latency_1mb_under_100ms () =
  (* Figure 6: a 1 MB transaction does ~2 remote MB + 1 local MB and
     must end under 0.1 s. *)
  let remote = Sci.Model.write_range p ~off:0 ~len:(1 lsl 20) () in
  let local = Sci.Model.local_copy p (1 lsl 20) in
  check_bool "2 remote + 1 local < 100ms" true ((2 * remote) + local < Time.ms 100.)

let test_latency_hops () =
  let one = Sci.Model.write_range p ~hops:1 ~off:0 ~len:4 () in
  let two = Sci.Model.write_range p ~hops:2 ~off:0 ~len:4 () in
  check_int "one extra hop" p.t_hop (two - one)

let test_read_more_expensive_than_write () =
  List.iter
    (fun len ->
      check_bool
        (Printf.sprintf "read %dB >= write" len)
        true
        (Sci.Model.read_range p ~off:0 ~len () >= Sci.Model.write_range p ~off:0 ~len ()))
    [ 4; 64; 256; 4096 ]

let test_local_copy_costs () =
  check_int "zero bytes free" 0 (Sci.Model.local_copy p 0);
  let one = Sci.Model.local_copy p 1 in
  check_bool "overhead dominates 1B" true (one >= p.local_copy_overhead);
  let big = Sci.Model.local_copy p 100_000_000 in
  check_bool "about 1s for 100MB at 100MB/s" true (Time.to_s big > 0.9 && Time.to_s big < 1.1)

let prop_latency_positive_monotone_same_shape =
  QCheck.Test.make ~name:"write latency positive and grows with whole buffers" ~count:300
    QCheck.(int_range 1 100)
    (fun n ->
      let lat = Sci.Model.write_range p ~off:0 ~len:(n * 64) () in
      lat > 0 && lat = p.t_base + p.t_pkt64_first + ((n - 1) * p.t_pkt64_stream) - p.t_lastword_bonus)

let test_projection_trend () =
  (* section 6: latencies shrink, throughput terms shrink faster. *)
  let p0 = Sci.Params.projected ~years:0 () in
  let p4 = Sci.Params.projected ~years:4 () in
  check_int "year 0 is the default" Sci.Params.default.t_base p0.t_base;
  check_bool "latency improves" true (p4.t_base < p0.t_base && p4.t_pkt16 < p0.t_pkt16);
  check_bool "throughput improves faster" true
    (float_of_int p4.t_pkt64_stream /. float_of_int p0.t_pkt64_stream
    < float_of_int p4.t_base /. float_of_int p0.t_base);
  check_bool "still valid" true (Sci.Params.validate p4 = Ok ());
  (* Transactions get monotonically cheaper with the years. *)
  let cost y =
    let p = Sci.Params.projected ~years:y () in
    Sci.Model.write_range p ~off:0 ~len:256 ()
  in
  check_bool "monotone improvement" true (cost 2 < cost 0 && cost 6 < cost 2)

(* ------------------------------------------------------------------ *)
(* Nic transfers *)

let fresh_pair () =
  let clock = Clock.create () in
  let nic = Sci.Nic.create clock in
  let src = Mem.Image.create ~size:4096 and dst = Mem.Image.create ~size:4096 in
  (clock, nic, src, dst)

let test_nic_write_copies_and_charges () =
  let clock, nic, src, dst = fresh_pair () in
  Mem.Image.write_bytes src ~off:100 (Bytes.of_string "abcdefgh");
  Sci.Nic.write nic ~src ~src_off:100 ~dst ~dst_off:200 ~len:8 ();
  check Alcotest.string "bytes landed" "abcdefgh" (Bytes.to_string (Mem.Image.read_bytes dst ~off:200 ~len:8));
  check_bool "time charged" true (Clock.now clock > 0)

let test_nic_plan_latency_matches_model () =
  let _, nic, src, dst = fresh_pair () in
  List.iter
    (fun (off, len) ->
      let plan = Sci.Nic.plan_write nic ~src ~src_off:off ~dst ~dst_off:off ~len () in
      check_int
        (Printf.sprintf "plan latency = model (off=%d len=%d)" off len)
        (Sci.Model.write_range p ~off ~len ())
        (Sci.Nic.plan_latency plan))
    [ (0, 4); (12, 8); (0, 64); (0, 200); (60, 72); (0, 4096) ]

let test_nic_widening () =
  let _, nic, src, dst = fresh_pair () in
  let window = Mem.Segment.v ~base:0 ~len:4096 in
  (* A 40-byte copy at offset 10 widens to the whole [0,64) buffer. *)
  let plan = Sci.Nic.plan_write nic ~window ~src ~src_off:10 ~dst ~dst_off:10 ~len:40 () in
  check_int "widened to 64" 64 (Sci.Nic.plan_bytes plan);
  (* The widening never leaves the window. *)
  let tight = Mem.Segment.v ~base:10 ~len:40 in
  let plan2 = Sci.Nic.plan_write nic ~window:tight ~src ~src_off:10 ~dst ~dst_off:10 ~len:40 () in
  check_int "clamped" 40 (Sci.Nic.plan_bytes plan2)

let test_nic_widening_respects_mirror_equality () =
  let _, nic, src, dst = fresh_pair () in
  (* Mirrors agree outside the written range, so widening must not
     corrupt the destination: make the images equal first. *)
  for i = 0 to 4095 do
    Mem.Image.write_u8 src i (i land 0xff);
    Mem.Image.write_u8 dst i (i land 0xff)
  done;
  Mem.Image.write_bytes src ~off:70 (Bytes.make 40 '!');
  let window = Mem.Segment.v ~base:0 ~len:4096 in
  Sci.Nic.write nic ~window ~src ~src_off:70 ~dst ~dst_off:70 ~len:40 ();
  check_bool "images equal" true (Mem.Image.equal_range src dst ~off:0 ~len:4096)

let test_nic_no_widening_when_misaligned () =
  let _, nic, src, dst = fresh_pair () in
  let window = Mem.Segment.v ~base:0 ~len:4096 in
  (* src/dst offsets not congruent mod 64: widening must be skipped. *)
  let plan = Sci.Nic.plan_write nic ~window ~src ~src_off:3 ~dst ~dst_off:10 ~len:40 () in
  check_int "no widening" 40 (Sci.Nic.plan_bytes plan)

let test_nic_counters () =
  let _, nic, src, dst = fresh_pair () in
  Sci.Nic.write nic ~src ~src_off:0 ~dst ~dst_off:0 ~len:200 ();
  let c = Sci.Nic.counters nic in
  check_int "bursts" 1 c.bursts;
  check_int "packets64" 3 c.packets64;
  check_int "packets16" 1 c.packets16;
  check_int "bytes" 200 c.bytes_written;
  Sci.Nic.reset_counters nic;
  check_int "reset" 0 (Sci.Nic.counters nic).bytes_written

let test_nic_step_by_step_partial () =
  let _, nic, src, dst = fresh_pair () in
  Mem.Image.fill src ~off:0 ~len:200 'x';
  let plan = Sci.Nic.plan_write nic ~src ~src_off:0 ~dst ~dst_off:0 ~len:200 () in
  let steps = Sci.Nic.plan_steps plan in
  check_int "4 steps" 4 (List.length steps);
  (* Apply only the first two: exactly 128 bytes must have landed. *)
  List.iteri (fun i s -> if i < 2 then Sci.Nic.apply_step nic s) steps;
  check Alcotest.string "first 128 landed" (String.make 128 'x')
    (Bytes.to_string (Mem.Image.read_bytes dst ~off:0 ~len:128));
  check_int "tail untouched" 0 (Mem.Image.read_u8 dst 128)

let test_nic_read_roundtrip () =
  let _, nic, src, dst = fresh_pair () in
  Mem.Image.write_bytes src ~off:50 (Bytes.of_string "remote-data");
  Sci.Nic.read nic ~src ~src_off:50 ~dst ~dst_off:0 ~len:11 ();
  check Alcotest.string "read back" "remote-data" (Bytes.to_string (Mem.Image.read_bytes dst ~off:0 ~len:11));
  check_int "read bytes counted" 11 (Sci.Nic.counters nic).bytes_read

let test_nic_u64_roundtrip () =
  let _, nic, _, dst = fresh_pair () in
  Sci.Nic.write_u64 nic ~dst ~dst_off:16 0xfeedfacecafebeefL;
  check Alcotest.int64 "u64" 0xfeedfacecafebeefL (Sci.Nic.read_u64 nic ~src:dst ~src_off:16 ())

let prop_plan_steps_cover_range =
  QCheck.Test.make ~name:"nic run moves exactly the requested bytes (no widening)" ~count:200
    QCheck.(pair (int_bound 500) (int_range 1 1024))
    (fun (off, len) ->
      let _, nic, src, dst = fresh_pair () in
      for i = 0 to 4095 do
        Mem.Image.write_u8 src i ((i * 7) land 0xff)
      done;
      Sci.Nic.write nic ~src ~src_off:off ~dst ~dst_off:off ~len ();
      Mem.Image.equal_range src dst ~off ~len
      &&
      (* Bytes before/after the range stay zero. *)
      (off = 0 || Mem.Image.read_u8 dst (off - 1) = 0)
      && (off + len >= 4096 || Mem.Image.read_u8 dst (off + len) = 0))

let suite =
  [
    ("packet: small store", `Quick, test_packet_small_store);
    ("packet: crossing sub-block boundary", `Quick, test_packet_crossing_subblock);
    ("packet: full buffer", `Quick, test_packet_full_buffer);
    ("packet: mixed 200B", `Quick, test_packet_mixed);
    ("packet: unaligned both sides", `Quick, test_packet_unaligned_both_sides);
    ("packet: empty and invalid", `Quick, test_packet_empty_and_invalid);
    ("packet: last-word detection", `Quick, test_last_word);
    ("packet: buffer index mapping", `Quick, test_buffer_index);
    QCheck_alcotest.to_alcotest prop_packets_conserve_bytes;
    QCheck_alcotest.to_alcotest prop_packets_sorted_disjoint;
    ("latency: calibration points", `Quick, test_latency_calibration_points);
    ("latency: aligned 64B wins above 32B", `Quick, test_latency_aligned_wins_above_32);
    ("latency: monotone in buffers", `Quick, test_latency_monotone_in_buffers);
    ("latency: streaming amortisation", `Quick, test_latency_streaming_amortises);
    ("latency: 1MB transaction budget", `Quick, test_latency_1mb_under_100ms);
    ("latency: ring hops", `Quick, test_latency_hops);
    ("latency: reads cost more than writes", `Quick, test_read_more_expensive_than_write);
    ("latency: local copy model", `Quick, test_local_copy_costs);
    ("params: technology projection", `Quick, test_projection_trend);
    QCheck_alcotest.to_alcotest prop_latency_positive_monotone_same_shape;
    ("nic: write copies and charges", `Quick, test_nic_write_copies_and_charges);
    ("nic: plan latency matches model", `Quick, test_nic_plan_latency_matches_model);
    ("nic: sci_memcpy widening", `Quick, test_nic_widening);
    ("nic: widening preserves mirror equality", `Quick, test_nic_widening_respects_mirror_equality);
    ("nic: no widening when misaligned", `Quick, test_nic_no_widening_when_misaligned);
    ("nic: traffic counters", `Quick, test_nic_counters);
    ("nic: partial application lands a prefix", `Quick, test_nic_step_by_step_partial);
    ("nic: remote read roundtrip", `Quick, test_nic_read_roundtrip);
    ("nic: u64 roundtrip", `Quick, test_nic_u64_roundtrip);
    QCheck_alcotest.to_alcotest prop_plan_steps_cover_range;
  ]
