module Q = Pqueue.Make (Perseas.Engine)
module P = Perseas

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str_opt = check (Alcotest.option Alcotest.string)

let small = { Pqueue.slots = 8; max_item = 32 }

let fresh ?(config = small) () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:8 () in
  let q = Q.create ~config bed.perseas ~name:"queue" in
  Perseas.init_remote_db bed.perseas;
  (bed, q)

let ok q = match Q.check_invariants q with Ok () -> () | Error m -> Alcotest.fail m

let test_fifo_order () =
  let _, q = fresh () in
  check_bool "empty" true (Q.is_empty q);
  Q.enqueue q "first";
  Q.enqueue q "second";
  Q.enqueue q "third";
  check_int "length" 3 (Q.length q);
  check_str_opt "peek" (Some "first") (Q.peek q);
  check_str_opt "deq 1" (Some "first") (Q.dequeue q);
  check_str_opt "deq 2" (Some "second") (Q.dequeue q);
  check_str_opt "deq 3" (Some "third") (Q.dequeue q);
  check_str_opt "empty again" None (Q.dequeue q);
  ok q

let test_ring_wraps () =
  let _, q = fresh () in
  (* Keep a few elements in flight while the cursors travel several
     times around the 8-slot ring. *)
  Q.enqueue q "0a";
  Q.enqueue q "0b";
  for i = 1 to 50 do
    Q.enqueue q (string_of_int i)
  |> fun () ->
    if i > 2 then check_str_opt "in order across wraps" (Some (string_of_int (i - 2))) (Q.dequeue q)
    else ignore (Q.dequeue q)
  done;
  ok q;
  check_int "two in flight" 2 (Q.length q)

let test_full_and_drain () =
  let _, q = fresh () in
  for i = 1 to 8 do
    Q.enqueue q (string_of_int i)
  done;
  (try
     Q.enqueue q "overflow";
     Alcotest.fail "expected Queue_full"
   with Pqueue.Queue_full -> ());
  check (Alcotest.list Alcotest.string) "contents" (List.init 8 (fun i -> string_of_int (i + 1)))
    (Q.to_list q);
  for i = 1 to 8 do
    check_str_opt "drain" (Some (string_of_int i)) (Q.dequeue q)
  done;
  check_bool "drained" true (Q.is_empty q);
  Q.enqueue q "works again";
  ok q

let test_oversized_and_empty_items () =
  let _, q = fresh () in
  (try
     Q.enqueue q (String.make 100 'x');
     Alcotest.fail "expected Item_too_large"
   with Pqueue.Item_too_large -> ());
  Q.enqueue q "";
  check_str_opt "empty item roundtrips" (Some "") (Q.dequeue q)

let test_survives_crash () =
  let bed, q = fresh () in
  Q.enqueue q "durable-1";
  Q.enqueue q "durable-2";
  ignore (Q.dequeue q);
  ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Power_outage);
  let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
  let q2 = Q.attach ~config:small t2 ~name:"queue" in
  ok q2;
  check_int "one element" 1 (Q.length q2);
  check_str_opt "the right one" (Some "durable-2") (Q.dequeue q2)

let test_crash_mid_enqueue_no_loss_no_dup () =
  (* Cut every packet of an enqueue: after recovery the queue holds
     either n or n+1 elements, and the surviving prefix is intact. *)
  let run cut =
    let bed, q = fresh () in
    Q.enqueue q "stable-a";
    Q.enqueue q "stable-b";
    let exception Crash in
    let sent = ref 0 in
    P.set_packet_hook bed.perseas (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    let crashed = try Q.enqueue q "victim" |> fun () -> false with Crash -> true in
    P.set_packet_hook bed.perseas None;
    if crashed then begin
      ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
      let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
      let q2 = Q.attach ~config:small t2 ~name:"queue" in
      ok q2;
      (match Q.to_list q2 with
      | [ "stable-a"; "stable-b" ] | [ "stable-a"; "stable-b"; "victim" ] -> ()
      | l -> Alcotest.failf "unexpected contents at cut %d: [%s]" cut (String.concat "; " l));
      true
    end
    else false
  in
  let cut = ref 0 in
  while run !cut do
    incr cut
  done

let prop_queue_matches_model =
  QCheck.Test.make ~name:"pqueue matches a Queue model" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 120) (pair bool (int_bound 999)))
    (fun ops ->
      let _, q = fresh ~config:{ Pqueue.slots = 16; max_item = 8 } () in
      let model = Queue.create () in
      List.for_all
        (fun (is_enq, v) ->
          if is_enq then begin
            let item = string_of_int v in
            match Q.enqueue q item with
            | () ->
                Queue.push item model;
                true
            | exception Pqueue.Queue_full -> Queue.length model = 16
          end
          else
            let expect = if Queue.is_empty model then None else Some (Queue.pop model) in
            Q.dequeue q = expect)
        ops
      && Q.length q = Queue.length model)

let suite =
  [
    ("fifo order", `Quick, test_fifo_order);
    ("ring wraps around", `Quick, test_ring_wraps);
    ("full, drain, reuse", `Quick, test_full_and_drain);
    ("oversized and empty items", `Quick, test_oversized_and_empty_items);
    ("survives crash", `Quick, test_survives_crash);
    ("crash mid-enqueue: no loss, no duplication", `Slow, test_crash_mid_enqueue_no_loss_no_dup);
    QCheck_alcotest.to_alcotest prop_queue_matches_model;
  ]
