module BT = Btree.Make (Perseas.Engine)
module P = Perseas

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64_opt = check (Alcotest.option Alcotest.int64)

let small = { Btree.max_nodes = 512; degree = 4 }

let fresh ?(config = small) () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:8 () in
  let bt = BT.create ~config bed.perseas ~name:"index" in
  Perseas.init_remote_db bed.perseas;
  (bed, bt)

let ok bt =
  match BT.check_invariants bt with Ok () -> () | Error m -> Alcotest.fail ("invariants: " ^ m)

let i64 = Int64.of_int

let test_insert_find () =
  let _, bt = fresh () in
  BT.insert bt ~key:10L ~value:100L;
  BT.insert bt ~key:5L ~value:50L;
  BT.insert bt ~key:20L ~value:200L;
  check_i64_opt "find 10" (Some 100L) (BT.find bt 10L);
  check_i64_opt "find 5" (Some 50L) (BT.find bt 5L);
  check_i64_opt "missing" None (BT.find bt 7L);
  check_int "length" 3 (BT.length bt);
  ok bt

let test_overwrite () =
  let _, bt = fresh () in
  BT.insert bt ~key:1L ~value:1L;
  BT.insert bt ~key:1L ~value:2L;
  check_i64_opt "overwritten" (Some 2L) (BT.find bt 1L);
  check_int "no duplicate" 1 (BT.length bt);
  ok bt

let test_splits_grow_height () =
  let _, bt = fresh () in
  check_int "height 1" 1 (BT.height bt);
  for i = 1 to 100 do
    BT.insert bt ~key:(i64 i) ~value:(i64 (i * 10))
  done;
  check_bool "tree grew" true (BT.height bt >= 3);
  check_int "all there" 100 (BT.length bt);
  for i = 1 to 100 do
    check_i64_opt (Printf.sprintf "key %d" i) (Some (i64 (i * 10))) (BT.find bt (i64 i))
  done;
  ok bt

let test_descending_and_random_orders () =
  let orders =
    [
      List.init 80 (fun i -> 80 - i);
      (let a = Array.init 80 (fun i -> i + 1) in
       Sim.Rng.shuffle (Sim.Rng.create 3) a;
       Array.to_list a);
    ]
  in
  List.iter
    (fun order ->
      let _, bt = fresh () in
      List.iter (fun i -> BT.insert bt ~key:(i64 i) ~value:(i64 i)) order;
      ok bt;
      check_int "all present" 80 (BT.length bt);
      check_i64_opt "min" (Some 1L) (Option.map fst (BT.min_binding bt));
      check_i64_opt "max" (Some 80L) (Option.map fst (BT.max_binding bt)))
    orders

let test_range_scan () =
  let _, bt = fresh () in
  List.iter (fun i -> BT.insert bt ~key:(i64 (i * 10)) ~value:(i64 i)) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let r = BT.range bt ~lo:25L ~hi:55L in
  check (Alcotest.list (Alcotest.pair Alcotest.int64 Alcotest.int64)) "inclusive range"
    [ (30L, 3L); (40L, 4L); (50L, 5L) ]
    r;
  check_int "full range" 8 (List.length (BT.range bt ~lo:Int64.min_int ~hi:Int64.max_int));
  check_int "empty range" 0 (List.length (BT.range bt ~lo:41L ~hi:49L));
  check_int "inverted range" 0 (List.length (BT.range bt ~lo:50L ~hi:30L))

let test_delete () =
  let _, bt = fresh () in
  for i = 1 to 50 do
    BT.insert bt ~key:(i64 i) ~value:(i64 i)
  done;
  check_bool "delete" true (BT.delete bt 25L);
  check_bool "gone" false (BT.mem bt 25L);
  check_bool "delete again" false (BT.delete bt 25L);
  check_int "49 left" 49 (BT.length bt);
  ok bt;
  (* Deleted keys disappear from range scans; reinsert works. *)
  check_int "range skips deleted" 10 (List.length (BT.range bt ~lo:20L ~hi:30L));
  BT.insert bt ~key:25L ~value:999L;
  check_i64_opt "reinserted" (Some 999L) (BT.find bt 25L);
  ok bt

let test_delete_everything () =
  let _, bt = fresh () in
  for i = 1 to 60 do
    BT.insert bt ~key:(i64 i) ~value:(i64 i)
  done;
  for i = 1 to 60 do
    check_bool "deleted" true (BT.delete bt (i64 i))
  done;
  check_int "empty" 0 (BT.length bt);
  check_i64_opt "no min" None (Option.map fst (BT.min_binding bt));
  check_i64_opt "no max" None (Option.map fst (BT.max_binding bt));
  ok bt;
  (* And refill after total emptiness. *)
  for i = 100 to 140 do
    BT.insert bt ~key:(i64 i) ~value:(i64 i)
  done;
  check_int "refilled" 41 (BT.length bt);
  ok bt

let test_tree_full () =
  let config = { Btree.max_nodes = 4; degree = 4 } in
  let _, bt = fresh ~config () in
  try
    for i = 1 to 100 do
      BT.insert bt ~key:(i64 i) ~value:0L
    done;
    Alcotest.fail "expected Tree_full"
  with Btree.Tree_full ->
    (* The failed insert aborted: the tree is still consistent. *)
    ok bt

let test_iter_in_order () =
  let _, bt = fresh () in
  let a = Array.init 70 (fun i -> i + 1) in
  Sim.Rng.shuffle (Sim.Rng.create 9) a;
  Array.iter (fun i -> BT.insert bt ~key:(i64 i) ~value:(i64 i)) a;
  let seen = ref [] in
  BT.iter bt (fun k _ -> seen := k :: !seen);
  check (Alcotest.list Alcotest.int64) "ascending" (List.init 70 (fun i -> i64 (i + 1)))
    (List.rev !seen)

let test_mirror_in_sync () =
  let bed, bt = fresh () in
  for i = 1 to 64 do
    BT.insert bt ~key:(i64 (i * 7)) ~value:(i64 i)
  done;
  ignore (BT.delete bt 21L);
  List.iter
    (fun seg ->
      check Alcotest.int64
        (P.segment_name seg ^ " mirrored")
        (P.checksum bed.perseas seg)
        (P.mirror_checksum bed.perseas seg))
    (P.segments bed.perseas)

let test_survives_crash () =
  let bed, bt = fresh () in
  for i = 1 to 40 do
    BT.insert bt ~key:(i64 i) ~value:(i64 (i * 2))
  done;
  ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Power_outage);
  let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
  let bt2 = BT.attach ~config:small t2 ~name:"index" in
  ok bt2;
  check_int "all keys back" 40 (BT.length bt2);
  check_i64_opt "spot check" (Some 34L) (BT.find bt2 17L);
  BT.insert bt2 ~key:1000L ~value:1L;
  ok bt2

let test_crash_mid_split_is_atomic () =
  (* The nastiest case: crash during a commit whose transaction split
     nodes (possibly growing the root).  At every packet cut the
     recovered tree must be structurally sound and contain either the
     old or the new key set. *)
  let run cut =
    let bed, bt = fresh () in
    (* Fill so the next insert splits. *)
    for i = 1 to 16 do
      BT.insert bt ~key:(i64 (i * 2)) ~value:(i64 i)
    done;
    let exception Crash in
    let sent = ref 0 in
    Perseas.set_packet_hook bed.perseas
      (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    let crashed =
      try
        BT.insert bt ~key:7L ~value:777L;
        false
      with Crash -> true
    in
    Perseas.set_packet_hook bed.perseas None;
    if crashed then begin
      ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
      let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
      let bt2 = BT.attach ~config:small t2 ~name:"index" in
      (match BT.check_invariants bt2 with
      | Ok () -> ()
      | Error m -> Alcotest.failf "broken tree at cut %d: %s" cut m);
      (match BT.find bt2 7L with
      | Some v -> check Alcotest.int64 "new value complete" 777L v
      | None -> check_int "old key set" 16 (BT.length bt2));
      for i = 1 to 16 do
        check_i64_opt "old keys intact" (Some (i64 i)) (BT.find bt2 (i64 (i * 2)))
      done;
      true
    end
    else false
  in
  let cut = ref 0 in
  while run !cut do
    incr cut
  done

let prop_model_equivalence =
  QCheck.Test.make ~name:"btree matches a Map model" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 0 150) (triple (int_bound 2) (int_bound 60) (int_bound 1000)))
    (fun ops ->
      let _, bt = fresh () in
      let module M = Map.Make (Int64) in
      let model = ref M.empty in
      List.iter
        (fun (op, k, v) ->
          let key = i64 k and value = i64 v in
          match op with
          | 0 ->
              BT.insert bt ~key ~value;
              model := M.add key value !model
          | 1 ->
              let expect = M.mem key !model in
              if BT.delete bt key <> expect then QCheck.Test.fail_report "delete disagrees";
              model := M.remove key !model
          | _ ->
              if BT.find bt key <> M.find_opt key !model then
                QCheck.Test.fail_report "find disagrees")
        ops;
      (match BT.check_invariants bt with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      BT.length bt = M.cardinal !model
      && BT.range bt ~lo:Int64.min_int ~hi:Int64.max_int = M.bindings !model)

let suite =
  [
    ("insert and find", `Quick, test_insert_find);
    ("overwrite", `Quick, test_overwrite);
    ("splits grow the tree", `Quick, test_splits_grow_height);
    ("descending and random insert orders", `Quick, test_descending_and_random_orders);
    ("range scans", `Quick, test_range_scan);
    ("delete", `Quick, test_delete);
    ("delete everything, then refill", `Quick, test_delete_everything);
    ("tree-full aborts cleanly", `Quick, test_tree_full);
    ("iteration is in key order", `Quick, test_iter_in_order);
    ("mirror stays in sync", `Quick, test_mirror_in_sync);
    ("survives crash and reattaches", `Quick, test_survives_crash);
    ("crash mid-split is atomic at every cut", `Slow, test_crash_mid_split_is_atomic);
    QCheck_alcotest.to_alcotest prop_model_equivalence;
  ]
