test/test_kvstore.ml: Alcotest Cluster Gen Harness Hashtbl Kvstore List Perseas Printf QCheck QCheck_alcotest String
