test/test_baselines.ml: Alcotest Baselines Bytes Char Clock Cluster Disk Gen List Option QCheck QCheck_alcotest Sim String Time
