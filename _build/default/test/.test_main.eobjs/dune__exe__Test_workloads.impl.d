test/test_workloads.ml: Alcotest Clock Harness List QCheck QCheck_alcotest Rng Sim Workloads
