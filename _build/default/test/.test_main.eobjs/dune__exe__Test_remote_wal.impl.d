test/test_remote_wal.ml: Alcotest Baselines Bytes Char Clock Cluster Disk Gen List Netram Option Printf QCheck QCheck_alcotest Sim Time
