test/test_sim.ml: Alcotest Array Clock Events Float Fun Gen List QCheck QCheck_alcotest Rng Sim Stats Time
