test/test_pqueue.ml: Alcotest Cluster Gen Harness List Perseas Pqueue QCheck QCheck_alcotest Queue String
