test/test_integration.ml: Alcotest Bytes Cluster Harness Int64 List Netram Option Perseas Printf Rng Sim Workloads
