test/test_engines_generic.ml: Alcotest Baselines Btree Cluster Disk Harness Hashtbl Int64 Kvstore List Map Printf Sim String Workloads
