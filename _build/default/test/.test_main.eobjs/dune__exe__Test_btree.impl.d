test/test_btree.ml: Alcotest Array Btree Cluster Gen Harness Int64 List Map Option Perseas Printf QCheck QCheck_alcotest Sim
