test/test_mem.ml: Alcotest Allocator Bytes Gen Image List Mem QCheck QCheck_alcotest Segment Sim
