test/test_layout.ml: Alcotest Bytes Gen Int64 Perseas QCheck QCheck_alcotest String
