test/test_harness.ml: Alcotest Clock Cluster Filename Harness List Sim Sys Time
