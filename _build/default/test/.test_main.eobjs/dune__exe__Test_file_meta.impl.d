test/test_file_meta.ml: Alcotest Cluster Gen Harness Hashtbl List Option Perseas Printf QCheck QCheck_alcotest Sim String Workloads
