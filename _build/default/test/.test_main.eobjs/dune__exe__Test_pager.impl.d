test/test_pager.ml: Alcotest Bytes Char Clock Cluster Disk Gen Int64 List Mem Netram Printf QCheck QCheck_alcotest Sim Time
