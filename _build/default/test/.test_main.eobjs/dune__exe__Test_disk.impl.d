test/test_disk.ml: Alcotest Bytes Clock Disk Gen List QCheck QCheck_alcotest Sci Sim Time
