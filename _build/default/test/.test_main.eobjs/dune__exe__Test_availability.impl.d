test/test_availability.ml: Alcotest Harness Printf Sim Time
