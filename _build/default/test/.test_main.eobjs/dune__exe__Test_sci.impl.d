test/test_sci.ml: Alcotest Bytes Clock List Mem Printf QCheck QCheck_alcotest Sci Sim String Time
