test/test_replication.ml: Alcotest Bytes Char Clock Cluster List Netram Option Perseas Printf QCheck QCheck_alcotest Sim String
