test/test_perseas.ml: Alcotest Bytes Char Clock Cluster Disk Gen List Netram Option Perseas Printf QCheck QCheck_alcotest Sci Sim Time
