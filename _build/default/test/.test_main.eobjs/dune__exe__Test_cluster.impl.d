test/test_cluster.ml: Alcotest Bytes Clock Cluster List Mem Sim
