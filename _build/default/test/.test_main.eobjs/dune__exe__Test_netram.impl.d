test/test_netram.ml: Alcotest Bytes Clock Cluster List Mem Netram Sim
