open Sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Table formatting *)

let test_fmt_int () =
  check_str "small" "7" (Harness.Table.fmt_int 7);
  check_str "thousands" "1 234" (Harness.Table.fmt_int 1234);
  check_str "millions" "12 345 678" (Harness.Table.fmt_int 12_345_678);
  check_str "negative" "-9 999" (Harness.Table.fmt_int (-9999))

let test_fmt_tps_and_us () =
  check_str "tps rounds" "1 234" (Harness.Table.fmt_tps 1233.7);
  check_str "us small keeps decimals" "12.34" (Harness.Table.fmt_us 12.34);
  check_str "us large groups" "1 235" (Harness.Table.fmt_us 1234.6);
  check_str "ratio small" "2.5x" (Harness.Table.fmt_ratio 2.49);
  check_str "ratio large" "2 500x" (Harness.Table.fmt_ratio 2499.9)

let test_csv_roundtrip () =
  let path = Filename.temp_file "perseas-test" ".csv" in
  Harness.Table.save_csv ~path ~header:[ "a"; "b" ]
    [ [ "1"; "plain" ]; [ "2"; "with,comma" ]; [ "3"; "with\"quote" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "4 lines" 4 (List.length lines);
  check_str "header" "a,b" (List.nth lines 0);
  check_str "escaped comma" "2,\"with,comma\"" (List.nth lines 2);
  check_str "escaped quote" "3,\"with\"\"quote\"" (List.nth lines 3)

(* ------------------------------------------------------------------ *)
(* Measure *)

let test_measure_counts_only_measured_phase () =
  let clock = Clock.create () in
  let tx _ = Clock.advance clock (Time.us 10.) in
  let r = Harness.Measure.run ~clock ~warmup:5 ~iters:100 tx in
  check_int "iters" 100 r.iters;
  check (Alcotest.float 1e-6) "mean 10us" 10. r.mean_us;
  check (Alcotest.float 1e-6) "p99 10us" 10. r.p99_us;
  check (Alcotest.float 0.5) "tps 100k" 100_000. r.tps;
  check_int "elapsed excludes warmup" (Time.us 1000.) r.elapsed

let test_measure_finish_accounted () =
  let clock = Clock.create () in
  let pending = ref 0 in
  let tx _ = incr pending in
  let finish () =
    Clock.advance clock (Time.us (float_of_int !pending));
    pending := 0
  in
  let r = Harness.Measure.run ~clock ~finish ~warmup:0 ~iters:100 tx in
  (* All work is deferred to finish: throughput must still account it. *)
  check (Alcotest.float 1.) "tps includes finish" 1_000_000. r.tps

let test_measure_percentiles () =
  let clock = Clock.create () in
  let i = ref 0 in
  let tx _ =
    incr i;
    Clock.advance clock (Time.us (if !i mod 100 = 0 then 1000. else 10.))
  in
  let r = Harness.Measure.run ~clock ~warmup:0 ~iters:1000 tx in
  check (Alcotest.float 1e-6) "p50 ignores outliers" 10. r.p50_us;
  check_bool "p99 near the outlier" true (r.p99_us >= 10.);
  check_bool "mean pulled up" true (r.mean_us > 10.)

let test_measure_rejects_bad_iters () =
  let clock = Clock.create () in
  try
    ignore (Harness.Measure.run ~clock ~warmup:0 ~iters:0 (fun _ -> ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Testbeds *)

let test_all_instances_labels () =
  let labels = List.map Harness.Testbed.label (Harness.Testbed.all_instances ()) in
  check (Alcotest.list Alcotest.string) "the five engines"
    [ "PERSEAS"; "RVM"; "RVM-Rio"; "Vista"; "RemoteWAL" ]
    labels

let test_instances_independent_clocks () =
  let a = Harness.Testbed.perseas_instance () in
  let b = Harness.Testbed.perseas_instance () in
  Clock.advance (Harness.Testbed.clock_of a) (Time.ms 5.);
  check_bool "separate clocks" true
    (Clock.now (Harness.Testbed.clock_of b) < Time.ms 1.)

let test_perseas_bed_deployment () =
  let bed = Harness.Testbed.perseas_bed () in
  check_int "three nodes" 3 (Cluster.size bed.cluster);
  (* Primary and mirror on different power supplies — the paper's rule. *)
  check_bool "separate supplies" true
    (Cluster.Node.power_supply (Cluster.node bed.cluster 0)
    <> Cluster.Node.power_supply (Cluster.node bed.cluster 1))

let suite =
  [
    ("table: integer grouping", `Quick, test_fmt_int);
    ("table: tps/us/ratio formats", `Quick, test_fmt_tps_and_us);
    ("table: csv escaping roundtrip", `Quick, test_csv_roundtrip);
    ("measure: measured phase only", `Quick, test_measure_counts_only_measured_phase);
    ("measure: finish is accounted", `Quick, test_measure_finish_accounted);
    ("measure: percentiles", `Quick, test_measure_percentiles);
    ("measure: rejects bad iters", `Quick, test_measure_rejects_bad_iters);
    ("testbed: all engines present", `Quick, test_all_instances_labels);
    ("testbed: instances are isolated", `Quick, test_instances_independent_clocks);
    ("testbed: paper deployment rules", `Quick, test_perseas_bed_deployment);
  ]
