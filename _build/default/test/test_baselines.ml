open Sim
module Rvm = Baselines.Rvm
module Vista = Baselines.Vista
module Device = Disk.Device

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

let node_with_clock () =
  let clock = Clock.create () in
  let cluster = Cluster.create ~clock [ Cluster.spec ~dram_size:(8 * 1024 * 1024) "host" ] in
  (clock, Cluster.node cluster 0)

let magnetic_device clock = Device.create ~clock ~backend:(Device.Magnetic Device.default_geometry) ~capacity:(16 * 1024 * 1024)

let rio_device ?(ups = true) clock =
  Device.create ~clock ~backend:(Device.Rio { Device.default_rio with ups }) ~capacity:(16 * 1024 * 1024)

(* ------------------------------------------------------------------ *)
(* RVM *)

let rvm_db ?config ?(rio = false) () =
  let clock, node = node_with_clock () in
  let device = if rio then rio_device clock else magnetic_device clock in
  let t = Rvm.create ?config ~node ~device () in
  let seg = Rvm.Engine.malloc t ~name:"db" ~size:4096 in
  Rvm.Engine.write t seg ~off:0 (Bytes.init 4096 (fun i -> Char.chr (i land 0xff)));
  Rvm.Engine.init_done t;
  (clock, node, device, t, seg)

let test_rvm_commit_applies_and_logs () =
  let _, _, _, t, seg = rvm_db () in
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:0 ~len:16;
  Rvm.Engine.write t seg ~off:0 (Bytes.make 16 'R');
  Rvm.Engine.commit txn;
  check Alcotest.string "applied" (String.make 16 'R')
    (Bytes.to_string (Rvm.Engine.read t seg ~off:0 ~len:16));
  check_int "one force" 1 (Rvm.forces t)

let test_rvm_commit_pays_disk () =
  let clock, _, _, t, seg = rvm_db () in
  let t0 = Clock.now clock in
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:0 ~len:4;
  Rvm.Engine.write t seg ~off:0 (Bytes.make 4 'x');
  Rvm.Engine.commit txn;
  (* Synchronous log force: milliseconds, not microseconds. *)
  check_bool "commit costs >= 5ms" true (Clock.now clock - t0 >= Time.ms 5.)

let test_rvm_rio_commit_is_fast () =
  let clock, _, _, t, seg = rvm_db ~rio:true () in
  let t0 = Clock.now clock in
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:0 ~len:4;
  Rvm.Engine.write t seg ~off:0 (Bytes.make 4 'x');
  Rvm.Engine.commit txn;
  (* Same code over Rio: the software overhead dominates (~tens of us). *)
  let dt = Clock.now clock - t0 in
  check_bool "under 1ms" true (dt < Time.ms 1.);
  check_bool "but has RVM software cost" true (dt >= Time.us 50.)

let test_rvm_abort () =
  let _, _, _, t, seg = rvm_db () in
  let before = Rvm.checksum t seg in
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:100 ~len:50;
  Rvm.Engine.write t seg ~off:100 (Bytes.make 50 'Z');
  Rvm.Engine.abort txn;
  check_i64 "restored" before (Rvm.checksum t seg);
  check_int "no force on abort" 0 (Rvm.forces t)

let test_rvm_group_commit_batches_forces () =
  let config = { Rvm.default_config with group_commit = 4 } in
  let _, _, _, t, seg = rvm_db ~config () in
  for i = 1 to 8 do
    let txn = Rvm.Engine.begin_transaction t in
    Rvm.Engine.set_range txn seg ~off:(i * 8) ~len:8;
    Rvm.Engine.write t seg ~off:(i * 8) (Bytes.make 8 'g');
    Rvm.Engine.commit txn
  done;
  check_int "two forces for eight commits" 2 (Rvm.forces t);
  (* A ninth commit stays pending until flush. *)
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:0 ~len:8;
  Rvm.Engine.write t seg ~off:0 (Bytes.make 8 'h');
  Rvm.Engine.commit txn;
  check_int "still two" 2 (Rvm.forces t);
  Rvm.flush t;
  check_int "flush forces" 3 (Rvm.forces t)

let test_rvm_recover_after_crash () =
  let _, node, device, t, seg = rvm_db () in
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:0 ~len:32;
  Rvm.Engine.write t seg ~off:0 (Bytes.make 32 'V');
  Rvm.Engine.commit txn;
  let expect = Rvm.checksum t seg in
  (* The machine dies: memory gone, disk intact. *)
  ignore (Cluster.Node.crash node Cluster.Failure.Power_outage);
  Device.crash device Device.Power_outage;
  Cluster.Node.restart node;
  let t2 = Rvm.recover ~node ~device () in
  let seg2 = Option.get (Rvm.segment_by_name t2 "db") in
  check_i64 "state recovered from log+file" expect (Rvm.checksum t2 seg2)

let test_rvm_unforced_commit_lost_in_crash () =
  (* With group commit, an unforced transaction is durably lost — the
     durability lag the optimisation trades away. *)
  let config = { Rvm.default_config with group_commit = 16 } in
  let _, node, device, t, seg = rvm_db ~config () in
  let before = Rvm.checksum t seg in
  let txn = Rvm.Engine.begin_transaction t in
  Rvm.Engine.set_range txn seg ~off:0 ~len:8;
  Rvm.Engine.write t seg ~off:0 (Bytes.make 8 'L');
  Rvm.Engine.commit txn;
  ignore (Cluster.Node.crash node Cluster.Failure.Power_outage);
  Device.crash device Device.Power_outage;
  Cluster.Node.restart node;
  let t2 = Rvm.recover ~node ~device () in
  let seg2 = Option.get (Rvm.segment_by_name t2 "db") in
  check_i64 "pre-state (commit was lost)" before (Rvm.checksum t2 seg2)

let test_rvm_truncation_roundtrip () =
  let config = { Rvm.default_config with log_size = 8192; truncate_threshold = 0.3 } in
  let _, node, device, t, seg = rvm_db ~config () in
  for i = 0 to 99 do
    let txn = Rvm.Engine.begin_transaction t in
    Rvm.Engine.set_range txn seg ~off:(i * 16 mod 4000) ~len:16;
    Rvm.Engine.write t seg ~off:(i * 16 mod 4000) (Bytes.make 16 (Char.chr (65 + (i mod 26))));
    Rvm.Engine.commit txn
  done;
  check_bool "log truncated at least once" true (Rvm.truncations t > 0);
  let expect = Rvm.checksum t seg in
  ignore (Cluster.Node.crash node Cluster.Failure.Software_error);
  Cluster.Node.restart node;
  (* The same layout config must be used to re-open the store. *)
  let t2 = Rvm.recover ~config ~node ~device () in
  check_i64 "recovers across truncations" expect (Rvm.checksum t2 (Option.get (Rvm.segment_by_name t2 "db")))

let test_rvm_rio_loses_data_without_ups () =
  let clock, node = node_with_clock () in
  let device = rio_device ~ups:false clock in
  let t = Rvm.create ~node ~device () in
  let seg = Rvm.Engine.malloc t ~name:"db" ~size:256 in
  Rvm.Engine.write t seg ~off:0 (Bytes.make 256 'd');
  Rvm.Engine.init_done t;
  ignore (Cluster.Node.crash node Cluster.Failure.Power_outage);
  Device.crash device Device.Power_outage;
  Cluster.Node.restart node;
  try
    ignore (Rvm.recover ~node ~device ());
    Alcotest.fail "expected recovery failure (Rio lost to power outage)"
  with Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Vista *)

let vista_db ?config () =
  let clock, node = node_with_clock () in
  let device = rio_device clock in
  let t = Vista.create ?config ~node ~device () in
  let seg = Vista.Engine.malloc t ~name:"db" ~size:4096 in
  Vista.Engine.write t seg ~off:0 (Bytes.init 4096 (fun i -> Char.chr (i land 0xff)));
  Vista.Engine.init_done t;
  (clock, node, device, t, seg)

let test_vista_requires_rio () =
  let clock, node = node_with_clock () in
  let device = magnetic_device clock in
  try
    ignore (Vista.create ~node ~device ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_vista_commit_cheap () =
  let clock, _, _, t, seg = vista_db () in
  let t0 = Clock.now clock in
  let txn = Vista.Engine.begin_transaction t in
  Vista.Engine.set_range txn seg ~off:0 ~len:4;
  Vista.Engine.write t seg ~off:0 (Bytes.make 4 'v');
  Vista.Engine.commit txn;
  check_bool "a few microseconds" true (Clock.now clock - t0 < Time.us 10.)

let test_vista_abort_restores () =
  let _, _, _, t, seg = vista_db () in
  let before = Vista.checksum t seg in
  let txn = Vista.Engine.begin_transaction t in
  Vista.Engine.set_range txn seg ~off:0 ~len:100;
  Vista.Engine.write t seg ~off:0 (Bytes.make 100 'W');
  Vista.Engine.abort txn;
  check_i64 "restored" before (Vista.checksum t seg)

let test_vista_recover_in_flight_rolls_back () =
  let _, node, device, t, seg = vista_db () in
  let before = Vista.checksum t seg in
  let txn = Vista.Engine.begin_transaction t in
  Vista.Engine.set_range txn seg ~off:50 ~len:200;
  Vista.Engine.write t seg ~off:50 (Bytes.make 200 'U');
  ignore txn;
  (* Crash without committing: Rio keeps the (dirty) database plus the
     undo records; recovery must roll the transaction back. *)
  ignore (Cluster.Node.crash node Cluster.Failure.Software_error);
  Device.crash device Device.Software_error;
  Cluster.Node.restart node;
  let t2 = Vista.recover ~node ~device () in
  let seg2 = Option.get (Vista.segment_by_name t2 "db") in
  check_i64 "rolled back" before (Vista.checksum t2 seg2)

let test_vista_recover_committed_persists () =
  let _, node, device, t, seg = vista_db () in
  let txn = Vista.Engine.begin_transaction t in
  Vista.Engine.set_range txn seg ~off:0 ~len:64;
  Vista.Engine.write t seg ~off:0 (Bytes.make 64 'K');
  Vista.Engine.commit txn;
  let expect = Vista.checksum t seg in
  ignore (Cluster.Node.crash node Cluster.Failure.Software_error);
  Device.crash device Device.Software_error;
  Cluster.Node.restart node;
  let t2 = Vista.recover ~node ~device () in
  check_i64 "committed state" expect (Vista.checksum t2 (Option.get (Vista.segment_by_name t2 "db")))

let test_vista_dies_on_power_without_ups () =
  let clock, node = node_with_clock () in
  let device = rio_device ~ups:false clock in
  let t = Vista.create ~node ~device () in
  let seg = Vista.Engine.malloc t ~name:"db" ~size:64 in
  ignore seg;
  Vista.Engine.init_done t;
  Device.crash device Device.Power_outage;
  try
    ignore (Vista.recover ~node ~device ());
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let prop_rvm_vista_abort_identity =
  QCheck.Test.make ~name:"baseline aborts are identities" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 4) (pair (int_bound 4000) (int_range 1 90)))
    (fun raw ->
      let ranges = List.map (fun (off, len) -> (min off (4096 - len), len)) raw in
      let _, _, _, rt, rseg = rvm_db () in
      let rvm_before = Rvm.checksum rt rseg in
      let txn = Rvm.Engine.begin_transaction rt in
      List.iter
        (fun (off, len) ->
          Rvm.Engine.set_range txn rseg ~off ~len;
          Rvm.Engine.write rt rseg ~off (Bytes.make len '!'))
        ranges;
      Rvm.Engine.abort txn;
      let _, _, _, vt, vseg = vista_db () in
      let vista_before = Vista.checksum vt vseg in
      let txn = Vista.Engine.begin_transaction vt in
      List.iter
        (fun (off, len) ->
          Vista.Engine.set_range txn vseg ~off ~len;
          Vista.Engine.write vt vseg ~off (Bytes.make len '!'))
        ranges;
      Vista.Engine.abort txn;
      Rvm.checksum rt rseg = rvm_before && Vista.checksum vt vseg = vista_before)

let suite =
  [
    ("rvm: commit applies and forces the log", `Quick, test_rvm_commit_applies_and_logs);
    ("rvm: commit pays the disk", `Quick, test_rvm_commit_pays_disk);
    ("rvm-rio: commit at software-overhead speed", `Quick, test_rvm_rio_commit_is_fast);
    ("rvm: abort restores", `Quick, test_rvm_abort);
    ("rvm: group commit batches forces", `Quick, test_rvm_group_commit_batches_forces);
    ("rvm: crash recovery from db file + log", `Quick, test_rvm_recover_after_crash);
    ("rvm: unforced group commit lost in crash", `Quick, test_rvm_unforced_commit_lost_in_crash);
    ("rvm: recovery across log truncations", `Quick, test_rvm_truncation_roundtrip);
    ("rvm-rio: lost without UPS on power outage", `Quick, test_rvm_rio_loses_data_without_ups);
    ("vista: requires Rio", `Quick, test_vista_requires_rio);
    ("vista: commit is a few stores", `Quick, test_vista_commit_cheap);
    ("vista: abort restores", `Quick, test_vista_abort_restores);
    ("vista: recovery rolls back in-flight txn", `Quick, test_vista_recover_in_flight_rolls_back);
    ("vista: recovery keeps committed txn", `Quick, test_vista_recover_committed_persists);
    ("vista: dies on power outage without UPS", `Quick, test_vista_dies_on_power_without_ups);
    QCheck_alcotest.to_alcotest prop_rvm_vista_abort_identity;
  ]
