module FS = Workloads.File_meta.Make (Perseas.Engine)
module P = Perseas

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let fresh ?(params = Workloads.File_meta.small_params) () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:8 () in
  (bed, FS.setup bed.perseas ~params)

let ok fs = check_bool "consistent" true (FS.consistent fs)

let test_create_unlink () =
  let _, fs = fresh () in
  FS.create fs "a.txt";
  FS.create fs "b.txt";
  check_bool "exists" true (FS.exists fs "a.txt");
  check_int "two live" 2 (FS.live_count fs);
  ok fs;
  check_bool "unlink" true (FS.unlink fs "a.txt");
  check_bool "gone" false (FS.exists fs "a.txt");
  check_bool "unlink absent" false (FS.unlink fs "a.txt");
  check_int "one live" 1 (FS.live_count fs);
  ok fs

let test_inode_reuse () =
  let params = { Workloads.File_meta.inodes = 4; dentries = 8 } in
  let _, fs = fresh ~params () in
  List.iter (FS.create fs) [ "f1"; "f2"; "f3"; "f4" ];
  (try
     FS.create fs "f5";
     Alcotest.fail "expected Fs_full"
   with FS.Fs_full -> ());
  check_bool "free one" true (FS.unlink fs "f2");
  FS.create fs "f5";
  check_int "four live" 4 (FS.live_count fs);
  ok fs

let test_rename () =
  let _, fs = fresh () in
  FS.create fs "old-name";
  ignore (FS.append fs "old-name" 1000);
  check_bool "renamed" true (FS.rename fs ~from:"old-name" ~to_:"new-name");
  check_bool "old gone" false (FS.exists fs "old-name");
  check_bool "new there" true (FS.exists fs "new-name");
  check (Alcotest.option Alcotest.int) "size follows" (Some 1000) (FS.file_size fs "new-name");
  (try
     ignore (FS.rename fs ~from:"new-name" ~to_:"new-name");
     Alcotest.fail "rename onto itself"
   with Invalid_argument _ -> ());
  ok fs

let test_append_accumulates () =
  let _, fs = fresh () in
  FS.create fs "log";
  ignore (FS.append fs "log" 100);
  ignore (FS.append fs "log" 200);
  check (Alcotest.option Alcotest.int) "size" (Some 300) (FS.file_size fs "log");
  check_bool "append to absent" false (FS.append fs "nope" 10)

let test_bad_names () =
  let _, fs = fresh () in
  (try
     FS.create fs "";
     Alcotest.fail "empty name"
   with FS.Bad_name _ -> ());
  try
    FS.create fs (String.make 60 'n');
    Alcotest.fail "long name"
  with FS.Bad_name _ -> ()

let test_mixed_workload_consistent () =
  let _, fs = fresh () in
  let rng = Sim.Rng.create 17 in
  for _ = 1 to 400 do
    FS.transaction fs rng
  done;
  ok fs

let test_crash_mid_create_is_atomic () =
  (* The classic corruption scenario: crash between inode allocation
     and directory insertion.  Cut at every packet; the recovered file
     system must be consistent, with the file fully there or fully
     absent. *)
  let run cut =
    let bed, fs = fresh () in
    FS.create fs "existing";
    let exception Crash in
    let sent = ref 0 in
    P.set_packet_hook bed.perseas
      (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    let crashed = try FS.create fs "victim" |> fun () -> false with Crash -> true in
    P.set_packet_hook bed.perseas None;
    if crashed then begin
      ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
      let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
      let fs2 =
        {
          fs with
          FS.engine = t2;
          inodes = Option.get (P.segment t2 "inodes");
          dentries = Option.get (P.segment t2 "dentries");
          bitmap = Option.get (P.segment t2 "inode-bitmap");
        }
      in
      check_bool (Printf.sprintf "consistent after cut %d" cut) true (FS.consistent fs2);
      check_bool "pre-existing file intact" true (FS.exists fs2 "existing");
      (match FS.live_count fs2 with
      | 1 | 2 -> ()
      | n -> Alcotest.failf "unexpected live count %d at cut %d" n cut);
      true
    end
    else false
  in
  let cut = ref 0 in
  while run !cut do
    incr cut
  done

let prop_model_equivalence =
  QCheck.Test.make ~name:"file-meta matches a set model" ~count:40
    QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_bound 3) (int_bound 15)))
    (fun ops ->
      let _, fs = fresh () in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (op, i) ->
          let name = Printf.sprintf "n%d" i in
          match op with
          | 0 ->
              if not (Hashtbl.mem model name) then begin
                (try
                   FS.create fs name;
                   Hashtbl.replace model name 0
                 with FS.Fs_full -> ())
              end
          | 1 ->
              let expect = Hashtbl.mem model name in
              if FS.unlink fs name <> expect then QCheck.Test.fail_report "unlink disagrees";
              Hashtbl.remove model name
          | 2 ->
              let expect = Hashtbl.mem model name in
              if FS.append fs name 10 <> expect then QCheck.Test.fail_report "append disagrees";
              if expect then Hashtbl.replace model name (Hashtbl.find model name + 10)
          | _ ->
              if FS.exists fs name <> Hashtbl.mem model name then
                QCheck.Test.fail_report "exists disagrees")
        ops;
      FS.consistent fs
      && FS.live_count fs = Hashtbl.length model
      && Hashtbl.fold (fun name size acc -> acc && FS.file_size fs name = Some size) model true)

let suite =
  [
    ("create and unlink", `Quick, test_create_unlink);
    ("inode exhaustion and reuse", `Quick, test_inode_reuse);
    ("rename", `Quick, test_rename);
    ("append accumulates size", `Quick, test_append_accumulates);
    ("bad names rejected", `Quick, test_bad_names);
    ("mixed workload stays consistent", `Quick, test_mixed_workload_consistent);
    ("crash mid-create is atomic at every cut", `Slow, test_crash_mid_create_is_atomic);
    QCheck_alcotest.to_alcotest prop_model_equivalence;
  ]
