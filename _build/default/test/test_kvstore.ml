module KV = Kvstore.Make (Perseas.Engine)
module P = Perseas

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str_opt = check (Alcotest.option Alcotest.string)

let small = { Kvstore.buckets = 16; capacity = 64; max_key = 24; max_value = 48 }

let fresh ?(config = small) () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:8 () in
  let kv = KV.create ~config bed.perseas ~name:"store" in
  Perseas.init_remote_db bed.perseas;
  (bed, kv)

let ok_invariants kv =
  match KV.check_invariants kv with Ok () -> () | Error m -> Alcotest.fail ("invariants: " ^ m)

let test_put_get_roundtrip () =
  let _, kv = fresh () in
  KV.put kv "alpha" "1";
  KV.put kv "beta" "2";
  check_str_opt "alpha" (Some "1") (KV.get kv "alpha");
  check_str_opt "beta" (Some "2") (KV.get kv "beta");
  check_str_opt "missing" None (KV.get kv "gamma");
  check_int "length" 2 (KV.length kv);
  ok_invariants kv

let test_update_in_place () =
  let _, kv = fresh () in
  KV.put kv "k" "first";
  KV.put kv "k" "second-and-longer";
  check_str_opt "updated" (Some "second-and-longer") (KV.get kv "k");
  KV.put kv "k" "s";
  check_str_opt "shrunk" (Some "s") (KV.get kv "k");
  KV.put kv "k" "";
  check_str_opt "empty value" (Some "") (KV.get kv "k");
  check_int "still one binding" 1 (KV.length kv);
  ok_invariants kv

let test_delete () =
  let _, kv = fresh () in
  KV.put kv "a" "1";
  KV.put kv "b" "2";
  check_bool "delete existing" true (KV.delete kv "a");
  check_bool "delete absent" false (KV.delete kv "a");
  check_str_opt "gone" None (KV.get kv "a");
  check_str_opt "kept" (Some "2") (KV.get kv "b");
  check_int "length" 1 (KV.length kv);
  ok_invariants kv

let test_collision_chains () =
  (* One bucket forces every key into a single chain. *)
  let config = { small with buckets = 1; capacity = 32 } in
  let _, kv = fresh ~config () in
  for i = 0 to 19 do
    KV.put kv (Printf.sprintf "key%02d" i) (string_of_int i)
  done;
  ok_invariants kv;
  for i = 0 to 19 do
    check_str_opt "chained get" (Some (string_of_int i)) (KV.get kv (Printf.sprintf "key%02d" i))
  done;
  (* Delete from the middle, the head and the tail of the chain. *)
  List.iter
    (fun i -> check_bool "chain delete" true (KV.delete kv (Printf.sprintf "key%02d" i)))
    [ 10; 0; 19 ];
  ok_invariants kv;
  check_int "17 left" 17 (KV.length kv);
  check_str_opt "middle gone" None (KV.get kv "key10")

let test_capacity_and_reuse () =
  let config = { small with buckets = 4; capacity = 8 } in
  let _, kv = fresh ~config () in
  for i = 0 to 7 do
    KV.put kv (Printf.sprintf "k%d" i) "x"
  done;
  (try
     KV.put kv "overflow" "x";
     Alcotest.fail "expected Store_full"
   with Kvstore.Store_full -> ());
  (* Updating an existing key is still fine when full. *)
  KV.put kv "k3" "updated";
  check_bool "free a slot" true (KV.delete kv "k0");
  KV.put kv "replacement" "y";
  check_str_opt "reused slot" (Some "y") (KV.get kv "replacement");
  check_int "full again" 8 (KV.length kv);
  ok_invariants kv

let test_oversized_rejected () =
  let _, kv = fresh () in
  (try
     KV.put kv (String.make 100 'k') "v";
     Alcotest.fail "key too long"
   with Kvstore.Oversized _ -> ());
  (try
     KV.put kv "k" (String.make 100 'v');
     Alcotest.fail "value too long"
   with Kvstore.Oversized _ -> ());
  try
    KV.put kv "" "v";
    Alcotest.fail "empty key"
  with Kvstore.Oversized _ -> ()

let test_iter_fold () =
  let _, kv = fresh () in
  List.iter (fun (k, v) -> KV.put kv k v) [ ("x", "1"); ("y", "2"); ("z", "3") ];
  let total = KV.fold kv ~init:0 ~f:(fun acc _ v -> acc + int_of_string v) in
  check_int "fold sums" 6 total;
  let count = ref 0 in
  KV.iter kv (fun _ _ -> incr count);
  check_int "iter visits all" 3 !count

let test_mirror_in_sync () =
  let bed, kv = fresh () in
  for i = 0 to 30 do
    KV.put kv (Printf.sprintf "key%d" i) (String.make (i mod 40) 'v')
  done;
  ignore (KV.delete kv "key7");
  List.iter
    (fun seg ->
      check (Alcotest.int64)
        (P.segment_name seg ^ " mirrored")
        (P.checksum bed.perseas seg)
        (P.mirror_checksum bed.perseas seg))
    (P.segments bed.perseas)

let test_survives_crash_and_attach () =
  let bed, kv = fresh () in
  for i = 0 to 20 do
    KV.put kv (Printf.sprintf "key%d" i) (string_of_int (i * i))
  done;
  ignore (KV.delete kv "key5");
  ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Power_outage);
  let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
  let kv2 = KV.attach ~config:small t2 ~name:"store" in
  ok_invariants kv2;
  check_int "20 bindings" 20 (KV.length kv2);
  check_str_opt "key3" (Some "9") (KV.get kv2 "key3");
  check_str_opt "key5 deleted" None (KV.get kv2 "key5");
  (* The recovered store accepts new transactions. *)
  KV.put kv2 "after-recovery" "yes";
  check_str_opt "new put" (Some "yes") (KV.get kv2 "after-recovery")

let test_crash_mid_put_is_atomic () =
  (* Cut the commit of a put at every packet: after recovery the store
     must contain either the old map or the new map, with invariants
     intact — no broken chains, no leaked slots. *)
  let run cut =
    let bed, kv = fresh () in
    for i = 0 to 9 do
      KV.put kv (Printf.sprintf "pre%d" i) (string_of_int i)
    done;
    let exception Crash in
    let sent = ref 0 in
    Perseas.set_packet_hook bed.perseas
      (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    let crashed = try KV.put kv "victim" "payload" |> fun () -> false with Crash -> true in
    Perseas.set_packet_hook bed.perseas None;
    if crashed then begin
      ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
      let t2 = P.recover ~cluster:bed.cluster ~local:2 ~server:bed.server () in
      let kv2 = KV.attach ~config:small t2 ~name:"store" in
      ok_invariants kv2;
      (match KV.get kv2 "victim" with
      | Some v -> check Alcotest.string "complete value" "payload" v
      | None -> check_int "old map intact" 10 (KV.length kv2));
      for i = 0 to 9 do
        check_str_opt "pre-keys intact" (Some (string_of_int i)) (KV.get kv2 (Printf.sprintf "pre%d" i))
      done;
      true
    end
    else false
  in
  let cut = ref 0 in
  while run !cut do
    incr cut
  done

let prop_model_equivalence =
  (* Random op sequence against a Hashtbl model. *)
  QCheck.Test.make ~name:"kvstore matches a Hashtbl model" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 0 120)
        (triple (int_bound 2) (int_bound 30) (string_gen_of_size (Gen.int_range 0 20) Gen.printable)))
    (fun ops ->
      let _, kv = fresh () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, ki, v) ->
          let key = Printf.sprintf "key%d" ki in
          match op with
          | 0 ->
              (try
                 KV.put kv key v;
                 Hashtbl.replace model key v
               with Kvstore.Store_full -> ())
          | 1 ->
              let expected = Hashtbl.mem model key in
              if KV.delete kv key <> expected then QCheck.Test.fail_report "delete disagrees";
              Hashtbl.remove model key
          | _ ->
              if KV.get kv key <> Hashtbl.find_opt model key then
                QCheck.Test.fail_report "get disagrees")
        ops;
      (match KV.check_invariants kv with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      KV.length kv = Hashtbl.length model
      && KV.fold kv ~init:true ~f:(fun acc k v -> acc && Hashtbl.find_opt model k = Some v))

let test_two_stores_one_engine () =
  let bed = Harness.Testbed.perseas_bed ~dram_mb:8 () in
  let a = KV.create ~config:small bed.perseas ~name:"users" in
  let b = KV.create ~config:small bed.perseas ~name:"sessions" in
  Perseas.init_remote_db bed.perseas;
  KV.put a "alice" "admin";
  KV.put b "alice" "token-1";
  check_str_opt "store a" (Some "admin") (KV.get a "alice");
  check_str_opt "store b" (Some "token-1") (KV.get b "alice");
  ignore (KV.delete a "alice");
  check_str_opt "b unaffected" (Some "token-1") (KV.get b "alice");
  ok_invariants a;
  ok_invariants b

let suite =
  [
    ("put/get roundtrip", `Quick, test_put_get_roundtrip);
    ("update in place", `Quick, test_update_in_place);
    ("delete", `Quick, test_delete);
    ("collision chains", `Quick, test_collision_chains);
    ("capacity and slot reuse", `Quick, test_capacity_and_reuse);
    ("oversized keys/values rejected", `Quick, test_oversized_rejected);
    ("iter and fold", `Quick, test_iter_fold);
    ("mirror stays in sync", `Quick, test_mirror_in_sync);
    ("survives crash, reattaches", `Quick, test_survives_crash_and_attach);
    ("crash mid-put is atomic at every cut", `Slow, test_crash_mid_put_is_atomic);
    QCheck_alcotest.to_alcotest prop_model_equivalence;
    ("two stores share an engine", `Quick, test_two_stores_one_engine);
  ]
