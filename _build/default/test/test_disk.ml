open Sim
module Device = Disk.Device
module Log = Disk.Log

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let magnetic () =
  let clock = Clock.create () in
  (clock, Device.create ~clock ~backend:(Device.Magnetic Device.default_geometry) ~capacity:(1 lsl 20))

let rio ?(ups = false) () =
  let clock = Clock.create () in
  (clock, Device.create ~clock ~backend:(Device.Rio { Device.default_rio with ups }) ~capacity:(1 lsl 20))

(* ------------------------------------------------------------------ *)
(* Device *)

let test_write_read_roundtrip () =
  let _, d = magnetic () in
  Device.write d ~off:100 (Bytes.of_string "stable");
  check Alcotest.string "roundtrip" "stable" (Bytes.to_string (Device.read d ~off:100 ~len:6))

let test_magnetic_costs_rotation () =
  let clock, d = magnetic () in
  Device.write d ~off:0 (Bytes.make 512 'x');
  (* Sequential start: rotational delay but no seek. *)
  check_bool "first write pays rotation" true (Clock.now clock >= Time.ms 5.);
  check_bool "no seek at the head" true (Clock.now clock < Time.ms 10.);
  let t1 = Clock.now clock in
  Device.write d ~off:(512 * 1024) (Bytes.make 512 'x');
  let jump = Clock.now clock - t1 in
  (* A far jump pays the average seek on top of rotation. *)
  check_bool "far write pays seek" true (jump >= Time.ms 15.);
  let t2 = Clock.now clock in
  Device.write d ~off:(512 * 1024 + 512) (Bytes.make 512 'x');
  let seq = Clock.now clock - t2 in
  check_bool "sequential cheaper than far" true (seq < jump);
  check_bool "but still pays rotation" true (seq >= Time.ms 5.)

let test_rio_is_memory_speed () =
  let clock, d = rio () in
  Device.write d ~off:0 (Bytes.make 64 'x');
  check_bool "about a microsecond" true (Clock.now clock < Time.us 5.)

let test_buffered_writes_and_sync () =
  let clock, d = magnetic () in
  Device.write_buffered d ~off:0 (Bytes.of_string "aaaa");
  Device.write_buffered d ~off:4 (Bytes.of_string "bbbb");
  check_int "buffered" 8 (Device.buffered_bytes d);
  check_int "free until sync" 0 (Clock.now clock);
  (* Read-through sees buffered data. *)
  check Alcotest.string "read-through" "aaaabbbb" (Bytes.to_string (Device.read d ~off:0 ~len:8));
  let t_read = Clock.now clock in
  Device.sync d;
  check_int "drained" 0 (Device.buffered_bytes d);
  check_bool "sync charged" true (Clock.now clock > t_read);
  check Alcotest.string "stable now" "aaaabbbb" (Bytes.to_string (Device.read d ~off:0 ~len:8))

let test_sync_coalesces_contiguous () =
  let _, d = magnetic () in
  let w0 = Device.writes_performed d in
  for i = 0 to 9 do
    Device.write_buffered d ~off:(i * 16) (Bytes.make 16 'x')
  done;
  Device.sync d;
  check_int "one coalesced device write" 1 (Device.writes_performed d - w0)

let test_sync_does_not_coalesce_gaps () =
  let _, d = magnetic () in
  let w0 = Device.writes_performed d in
  Device.write_buffered d ~off:0 (Bytes.make 16 'x');
  Device.write_buffered d ~off:100 (Bytes.make 16 'y');
  Device.sync d;
  check_int "two runs" 2 (Device.writes_performed d - w0)

let test_crash_semantics () =
  (* Magnetic survives everything; buffered data always dies. *)
  let _, d = magnetic () in
  Device.write d ~off:0 (Bytes.of_string "keep");
  Device.write_buffered d ~off:10 (Bytes.of_string "lose");
  Device.crash d Device.Power_outage;
  check Alcotest.string "stable kept" "keep" (Bytes.to_string (Device.read d ~off:0 ~len:4));
  check_int "buffer lost" 0 (Device.buffered_bytes d);
  check_bool "buffered bytes gone" true (Bytes.to_string (Device.read d ~off:10 ~len:4) <> "lose")

let test_rio_crash_matrix () =
  check_bool "rio survives software crash" true
    (Device.survives (Device.Rio Device.default_rio) Device.Software_error);
  check_bool "rio loses power without UPS" false
    (Device.survives (Device.Rio Device.default_rio) Device.Power_outage);
  check_bool "rio+UPS survives power" true
    (Device.survives (Device.Rio { Device.default_rio with ups = true }) Device.Power_outage);
  check_bool "rio loses hardware" false
    (Device.survives (Device.Rio Device.default_rio) Device.Hardware_error);
  let _, d = rio () in
  Device.write d ~off:0 (Bytes.of_string "data");
  Device.crash d Device.Software_error;
  check Alcotest.string "software crash survived" "data" (Bytes.to_string (Device.peek d ~off:0 ~len:4));
  Device.crash d Device.Power_outage;
  check_bool "power outage wiped" true (Bytes.to_string (Device.peek d ~off:0 ~len:4) <> "data")

let test_peek_free () =
  let clock, d = rio () in
  Device.write d ~off:0 (Bytes.of_string "zero-cost");
  let t = Clock.now clock in
  ignore (Device.peek d ~off:0 ~len:9);
  check_int "peek charges nothing" t (Clock.now clock)

let test_projected_geometry () =
  let g0 = Device.projected_geometry ~years:0 () in
  let g5 = Device.projected_geometry ~years:5 () in
  check_int "year 0 unchanged" Device.default_geometry.avg_seek g0.avg_seek;
  check_bool "seeks improve" true (g5.avg_seek < g0.avg_seek);
  check_bool "spindle speeds up" true (g5.rpm > g0.rpm);
  check_bool "transfer improves" true (g5.transfer_bytes_per_s > g0.transfer_bytes_per_s);
  (* Disk access improves far slower than the network (section 6). *)
  let disk_ratio = float_of_int g5.avg_seek /. float_of_int g0.avg_seek in
  let p5 = Sci.Params.projected ~years:5 () in
  let net_ratio = float_of_int p5.t_base /. float_of_int Sci.Params.default.t_base in
  check_bool "network gains outpace disk" true (net_ratio < disk_ratio)

(* ------------------------------------------------------------------ *)
(* Log *)

let test_log_append_replay () =
  let _, d = magnetic () in
  let log = Log.create d ~base:0 ~size:65536 in
  let l0 = Log.append log (Bytes.of_string "first") in
  let l1 = Log.append log (Bytes.of_string "second") in
  check_int "lsn 0" 0 l0;
  check_int "lsn 1" 1 l1;
  Log.force log;
  let replayed = Log.replay log in
  check_int "two records" 2 (List.length replayed);
  check Alcotest.string "payload 0" "first" (Bytes.to_string (List.assoc 0 replayed));
  check Alcotest.string "payload 1" "second" (Bytes.to_string (List.assoc 1 replayed))

let test_log_unforced_tail_lost () =
  let _, d = magnetic () in
  let log = Log.create d ~base:0 ~size:65536 in
  ignore (Log.append log (Bytes.of_string "stable"));
  Log.force log;
  ignore (Log.append log (Bytes.of_string "torn"));
  (* Crash before force: the buffered tail evaporates. *)
  Device.crash d Device.Software_error;
  let log' = Log.attach d ~base:0 ~size:65536 in
  let replayed = Log.replay log' in
  check_int "only the forced record" 1 (List.length replayed);
  check Alcotest.string "survivor" "stable" (Bytes.to_string (List.assoc 0 replayed))

let test_log_truncate_invalidates_old_records () =
  let _, d = magnetic () in
  let log = Log.create d ~base:0 ~size:65536 in
  ignore (Log.append log (Bytes.of_string "old-one"));
  ignore (Log.append log (Bytes.of_string "old-two"));
  Log.force log;
  Log.truncate log;
  check_int "empty after truncate" 0 (List.length (Log.replay log));
  (* New records after truncation replay alone even though stale bytes
     of the same length sit right behind them. *)
  ignore (Log.append log (Bytes.of_string "new-one"));
  Log.force log;
  let replayed = Log.replay log in
  check_int "one record" 1 (List.length replayed);
  check Alcotest.string "the new one" "new-one" (Bytes.to_string (List.assoc 0 replayed));
  (* Same after a crash + attach. *)
  Device.crash d Device.Software_error;
  let log' = Log.attach d ~base:0 ~size:65536 in
  check_int "attach sees one" 1 (List.length (Log.replay log'))

let test_log_full () =
  let _, d = magnetic () in
  let log = Log.create d ~base:0 ~size:256 in
  (try
     for _ = 1 to 100 do
       ignore (Log.append log (Bytes.make 32 'x'))
     done;
     Alcotest.fail "expected log-full failure"
   with Failure _ -> ())

let test_log_attach_continues_lsns () =
  let _, d = magnetic () in
  let log = Log.create d ~base:0 ~size:65536 in
  ignore (Log.append log (Bytes.of_string "a"));
  ignore (Log.append log (Bytes.of_string "b"));
  Log.force log;
  let log' = Log.attach d ~base:0 ~size:65536 in
  let l = Log.append log' (Bytes.of_string "c") in
  check_int "lsn continues" 2 l

let prop_log_replay_prefix =
  QCheck.Test.make ~name:"log replays exactly the forced prefix" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 20) (string_gen_of_size (Gen.int_range 0 64) Gen.printable))
        (list_of_size (Gen.int_range 0 5) (string_gen_of_size (Gen.int_range 0 64) Gen.printable)))
    (fun (forced, unforced) ->
      let clock = Clock.create () in
      let d = Device.create ~clock ~backend:(Device.Magnetic Device.default_geometry) ~capacity:(1 lsl 20) in
      let log = Log.create d ~base:0 ~size:(1 lsl 19) in
      List.iter (fun s -> ignore (Log.append log (Bytes.of_string s))) forced;
      Log.force log;
      List.iter (fun s -> ignore (Log.append log (Bytes.of_string s))) unforced;
      Device.crash d Device.Software_error;
      let log' = Log.attach d ~base:0 ~size:(1 lsl 19) in
      let replayed = List.map (fun (_, b) -> Bytes.to_string b) (Log.replay log') in
      replayed = forced)

let suite =
  [
    ("device: write/read roundtrip", `Quick, test_write_read_roundtrip);
    ("device: magnetic cost model", `Quick, test_magnetic_costs_rotation);
    ("device: rio at memory speed", `Quick, test_rio_is_memory_speed);
    ("device: buffered writes and sync", `Quick, test_buffered_writes_and_sync);
    ("device: sync coalesces contiguous runs", `Quick, test_sync_coalesces_contiguous);
    ("device: sync keeps gaps separate", `Quick, test_sync_does_not_coalesce_gaps);
    ("device: crash drops buffers, keeps stable", `Quick, test_crash_semantics);
    ("device: rio crash matrix", `Quick, test_rio_crash_matrix);
    ("device: peek is free", `Quick, test_peek_free);
    ("device: projected geometry trend", `Quick, test_projected_geometry);
    ("log: append and replay", `Quick, test_log_append_replay);
    ("log: unforced tail lost in crash", `Quick, test_log_unforced_tail_lost);
    ("log: truncate invalidates old records", `Quick, test_log_truncate_invalidates_old_records);
    ("log: full log rejected", `Quick, test_log_full);
    ("log: attach continues LSNs", `Quick, test_log_attach_continues_lsns);
    QCheck_alcotest.to_alcotest prop_log_replay_prefix;
  ]
