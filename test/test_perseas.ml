open Sim
module P = Perseas
module Node = Cluster.Node

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  server : Netram.Server.t;
  t : P.t;
}

let bed ?config ?(dram = 4 * 1024 * 1024) () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:dram ~power_supply:0 "primary";
        Cluster.spec ~dram_size:dram ~power_supply:1 "mirror";
        Cluster.spec ~dram_size:dram ~power_supply:2 "spare";
      ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  { clock; cluster; server; t = P.init ?config client }

let with_db ?config ?dram ?(size = 4096) () =
  let b = bed ?config ?dram () in
  let seg = P.malloc b.t ~name:"db" ~size in
  P.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db b.t;
  (b, seg)

(* ------------------------------------------------------------------ *)
(* Lifecycle and protocol rules *)

let test_init_mirrors_whole_db () =
  let b, seg = with_db () in
  check_i64 "mirror equals local" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  check_bool "ready" true (P.remote_ready b.t);
  check_i64 "epoch 1" 1L (P.epoch b.t)

let test_malloc_rules () =
  let b = bed () in
  let _seg = P.malloc b.t ~name:"a" ~size:64 in
  (try
     ignore (P.malloc b.t ~name:"a" ~size:64);
     Alcotest.fail "duplicate name"
   with Failure _ -> ());
  (try
     ignore (P.malloc b.t ~name:"has!bang" ~size:64);
     Alcotest.fail "reserved char"
   with Invalid_argument _ -> ());
  P.init_remote_db b.t;
  try
    ignore (P.malloc b.t ~name:"late" ~size:64);
    Alcotest.fail "malloc after init"
  with Failure _ -> ()

let test_transaction_rules () =
  let b, seg = with_db () in
  (* The same client cannot double-begin; a distinct client can open
     concurrently. *)
  let txn = P.begin_transaction b.t in
  (try
     ignore (P.begin_transaction b.t);
     Alcotest.fail "nested begin"
   with P.Double_begin "default" -> ());
  let peer = P.begin_transaction ~client:"peer" b.t in
  check_int "two clients open" 2 (P.open_txn_count b.t);
  P.abort peer;
  P.set_range txn seg ~off:0 ~len:8;
  P.commit txn;
  (* Closed transactions reject everything. *)
  (try
     P.commit txn;
     Alcotest.fail "double commit"
   with Failure _ -> ());
  try
    P.set_range txn seg ~off:0 ~len:8;
    Alcotest.fail "set_range on closed txn"
  with Failure _ -> ()

let test_strict_updates_enforced () =
  let b, seg = with_db () in
  (* Writes outside a transaction are rejected once live. *)
  (try
     P.write b.t seg ~off:0 (Bytes.make 4 'x');
     Alcotest.fail "write without txn"
   with Failure _ -> ());
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:100 ~len:16;
  (* Covered write fine; uncovered rejected. *)
  P.write b.t seg ~off:104 (Bytes.make 8 'y');
  (try
     P.write b.t seg ~off:200 (Bytes.make 4 'z');
     Alcotest.fail "uncovered write"
   with Failure _ -> ());
  P.abort txn

let test_relaxed_updates () =
  let config = { P.default_config with strict_updates = false } in
  let b, seg = with_db ~config () in
  (* Without strict mode the library trusts the application. *)
  P.write b.t seg ~off:0 (Bytes.make 4 'x');
  check Alcotest.string "wrote" "xxxx" (Bytes.to_string (P.read b.t seg ~off:0 ~len:4))

let test_commit_updates_mirror () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:10 ~len:100;
  P.write b.t seg ~off:10 (Bytes.make 100 'N');
  P.commit txn;
  check_i64 "mirror in sync" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  check_i64 "epoch bumped" 2L (P.epoch b.t)

let test_abort_restores_locally () =
  let b, seg = with_db () in
  let before = P.checksum b.t seg in
  let nic = Cluster.nic b.cluster in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:64;
  P.write b.t seg ~off:0 (Bytes.make 64 'Z');
  let written_before_abort = (Sci.Nic.counters nic).bytes_written in
  P.abort txn;
  check_i64 "local restored" before (P.checksum b.t seg);
  (* Abort is local memory copies only: no new remote traffic. *)
  check_int "no remote writes during abort" written_before_abort (Sci.Nic.counters nic).bytes_written;
  (* And the database is still usable and consistent remotely. *)
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:8;
  P.write b.t seg ~off:0 (Bytes.make 8 'q');
  P.commit txn;
  check_i64 "mirror after abort+commit" (P.checksum b.t seg) (P.mirror_checksum b.t seg)

let test_multiple_ranges_and_overlap_abort () =
  let b, seg = with_db () in
  let before = P.checksum b.t seg in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:32;
  P.set_range txn seg ~off:100 ~len:32;
  P.write b.t seg ~off:0 (Bytes.make 32 'a');
  P.write b.t seg ~off:100 (Bytes.make 32 'b');
  P.abort txn;
  check_i64 "both ranges restored" before (P.checksum b.t seg)

let test_undo_overflow () =
  let config = { P.default_config with undo_capacity = 4096 } in
  let b, seg = with_db ~config () in
  let txn = P.begin_transaction b.t in
  (try
     P.set_range txn seg ~off:0 ~len:4090;
     Alcotest.fail "expected Undo_overflow"
   with P.Undo_overflow -> ());
  P.abort txn

let test_undo_overflow_mid_transaction () =
  (* Overflow on the second range of a transaction: the first range is
     already logged (locally and remotely), the failing one must not
     leave a torn undo record behind.  Abort restores the image byte
     for byte, recovery from the mirror ignores the aborted residue,
     and the engine accepts new transactions. *)
  let config = { P.default_config with undo_capacity = 4096 } in
  let b, seg = with_db ~config () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:64;
  P.write b.t seg ~off:0 (Bytes.make 64 'c');
  P.commit txn;
  let before = P.read b.t seg ~off:0 ~len:4096 in
  let epoch_before = P.epoch b.t in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:64;
  P.write b.t seg ~off:0 (Bytes.make 64 'X');
  (try
     P.set_range txn seg ~off:64 ~len:4000;
     Alcotest.fail "expected Undo_overflow"
   with P.Undo_overflow -> ());
  P.abort txn;
  check Alcotest.string "abort restores the image byte for byte" (Bytes.to_string before)
    (Bytes.to_string (P.read b.t seg ~off:0 ~len:4096));
  check_i64 "epoch unchanged by the aborted transaction" epoch_before (P.epoch b.t);
  (* The engine is immediately usable again. *)
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:128 ~len:32;
  P.write b.t seg ~off:128 (Bytes.make 32 'n');
  P.abort txn;
  check Alcotest.string "second abort also clean" (Bytes.to_string before)
    (Bytes.to_string (P.read b.t seg ~off:0 ~len:4096));
  (* Crash the primary without committing anything further: whatever
     undo bytes the overflowing transaction pushed to the mirror must
     not be replayed into the committed image. *)
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 = P.recover ~config ~cluster:b.cluster ~local:2 ~server:b.server () in
  let seg2 = Option.get (P.segment t2 "db") in
  check Alcotest.string "recovery ignores the aborted transaction's residue"
    (Bytes.to_string before)
    (Bytes.to_string (P.read t2 seg2 ~off:0 ~len:4096));
  (* Recovery always bumps the epoch once to invalidate whatever undo
     records it applied — the image, not the counter, is the claim. *)
  check_i64 "recovered one epoch past the committed one" (Int64.add epoch_before 1L) (P.epoch t2)

let test_set_range_validation () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  (try
     P.set_range txn seg ~off:4090 ~len:100;
     Alcotest.fail "out of bounds"
   with Invalid_argument _ -> ());
  (try
     P.set_range txn seg ~off:0 ~len:0;
     Alcotest.fail "empty range"
   with Invalid_argument _ -> ());
  P.abort txn

let test_helpers_roundtrip () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:16;
  P.write_u32 b.t seg ~off:0 0xcafe;
  P.write_u64 b.t seg ~off:8 77L;
  check_int "u32" 0xcafe (P.read_u32 b.t seg ~off:0);
  check_i64 "u64" 77L (P.read_u64 b.t seg ~off:8);
  P.commit txn

let test_stats_accounting () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:10;
  P.write b.t seg ~off:0 (Bytes.make 10 'x');
  P.commit txn;
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:10;
  P.abort txn;
  let s = P.stats b.t in
  check_int "begun" 2 s.begun;
  check_int "committed" 1 s.committed;
  check_int "aborts" 1 s.aborts;
  check_int "set_ranges" 2 s.set_ranges;
  check_int "undo bytes" 20 s.undo_bytes_logged

let test_epoch_write_is_single_packet () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:4;
  P.write b.t seg ~off:0 (Bytes.make 4 'x');
  (* 4-byte data = 1 packet, plus exactly 1 packet for the atomic
     commit point. *)
  check_int "2 packets" 2 (P.commit_packets txn);
  P.commit txn

(* ------------------------------------------------------------------ *)
(* Recovery *)

let crash_primary b = ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error)

let test_recover_after_clean_commit () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:256;
  P.write b.t seg ~off:0 (Bytes.make 256 'C');
  P.commit txn;
  let expect = P.checksum b.t seg in
  crash_primary b;
  let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  let seg2 = Option.get (P.segment t2 "db") in
  check_i64 "post-commit state" expect (P.checksum t2 seg2);
  check_i64 "mirror consistent" (P.checksum t2 seg2) (P.mirror_checksum t2 seg2);
  check_bool "epoch advanced by recovery" true (P.epoch t2 > 2L)

let test_recover_multiple_segments () =
  let b = bed () in
  let a = P.malloc b.t ~name:"alpha" ~size:512 in
  let c = P.malloc b.t ~name:"beta" ~size:1024 in
  P.write b.t a ~off:0 (Bytes.make 512 'a');
  P.write b.t c ~off:0 (Bytes.make 1024 'b');
  P.init_remote_db b.t;
  let ca = P.checksum b.t a and cb = P.checksum b.t c in
  crash_primary b;
  let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  check_int "two segments" 2 (List.length (P.segments t2));
  check_i64 "alpha" ca (P.checksum t2 (Option.get (P.segment t2 "alpha")));
  check_i64 "beta" cb (P.checksum t2 (Option.get (P.segment t2 "beta")))

let test_recovered_instance_supports_transactions () =
  let b, seg = with_db () in
  ignore seg;
  crash_primary b;
  let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
  let seg2 = Option.get (P.segment t2 "db") in
  let txn = P.begin_transaction t2 in
  P.set_range txn seg2 ~off:0 ~len:8;
  P.write t2 seg2 ~off:0 (Bytes.make 8 'r');
  P.commit txn;
  check_i64 "mirror ok after recovered commit" (P.checksum t2 seg2) (P.mirror_checksum t2 seg2);
  (* And survives a second crash-recover cycle, back on the rebooted
     primary. *)
  ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Hardware_error);
  Cluster.restart_node b.cluster 0;
  let t3 = P.recover ~cluster:b.cluster ~local:0 ~server:b.server () in
  let seg3 = Option.get (P.segment t3 "db") in
  check Alcotest.string "second recovery sees the commit" "rrrrrrrr"
    (Bytes.to_string (P.read t3 seg3 ~off:0 ~len:8))

let test_recover_on_rebooted_primary () =
  let b, seg = with_db () in
  let expect = P.checksum b.t seg in
  crash_primary b;
  Cluster.restart_node b.cluster 0;
  let t2 = P.recover ~cluster:b.cluster ~local:0 ~server:b.server () in
  check_i64 "state back" expect (P.checksum t2 (Option.get (P.segment t2 "db")))

let test_recover_without_db_fails () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock [ Cluster.spec "a"; Cluster.spec ~power_supply:1 "b" ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  try
    ignore (P.recover ~cluster ~local:0 ~server ());
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let test_remirror_after_mirror_death () =
  let b, seg = with_db () in
  let expect = P.checksum b.t seg in
  (* The mirror dies; re-mirror onto the spare node's fresh server. *)
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  let server2 = Netram.Server.create (Cluster.node b.cluster 2) in
  P.remirror b.t ~server:server2;
  check_i64 "local intact" expect (P.checksum b.t seg);
  check_i64 "new mirror in sync" expect (P.mirror_checksum b.t seg);
  (* Transactions keep working against the new mirror... *)
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:8;
  P.write b.t seg ~off:0 (Bytes.make 8 'm');
  P.commit txn;
  (* ...and the database survives a primary crash via the new mirror. *)
  crash_primary b;
  Cluster.restart_node b.cluster 0;
  let t2 = P.recover ~cluster:b.cluster ~local:0 ~server:server2 () in
  check Alcotest.string "recovered via new mirror" "mmmmmmmm"
    (Bytes.to_string (P.read t2 (Option.get (P.segment t2 "db")) ~off:0 ~len:8))

(* ------------------------------------------------------------------ *)
(* Crash atomicity: exhaustive and property-based                      *)

exception Injected

(* Run one transaction and crash after [cut] remote packets (counted
   across set_range undo pushes, commit data, and the epoch write);
   recover on the spare node and return the recovered checksum together
   with the pre/post oracles. *)
let crash_scenario ~ranges ~cut =
  let b, seg = with_db ~size:8192 () in
  let pre = P.checksum b.t seg in
  let sent = ref 0 in
  let txn = P.begin_transaction b.t in
  let hook () = if !sent >= cut then raise Injected else incr sent in
  P.set_packet_hook b.t (Some hook);
  let crashed =
    try
      List.iter
        (fun (off, len, fill) ->
          P.set_range txn seg ~off ~len;
          P.set_packet_hook b.t None;
          P.write b.t seg ~off (Bytes.make len fill);
          P.set_packet_hook b.t (Some hook))
        ranges;
      P.commit txn;
      false
    with Injected -> true
  in
  P.set_packet_hook b.t None;
  let post = P.checksum b.t seg in
  if crashed then begin
    crash_primary b;
    let t2 = P.recover ~cluster:b.cluster ~local:2 ~server:b.server () in
    let seg2 = Option.get (P.segment t2 "db") in
    let got = P.checksum t2 seg2 in
    let mirror = P.mirror_checksum t2 seg2 in
    (`Crashed (got, mirror), pre, post)
  end
  else (`Completed post, pre, post)

let test_crash_atomicity_exhaustive () =
  (* Two ranges, one crossing several buffers: enumerate every cut. *)
  let ranges = [ (100, 30, 'A'); (700, 200, 'B') ] in
  (* Generous upper bound on packets; once the txn completes, higher
     cuts are equivalent. *)
  let rec go cut =
    match crash_scenario ~ranges ~cut with
    | `Completed final, pre, _ ->
        check_bool "completed differs from pre" true (final <> pre)
    | `Crashed (got, mirror), pre, post ->
        if got <> pre && got <> post then
          Alcotest.failf "atomicity violated at cut %d" cut;
        check_i64 "recovered = mirror" mirror got;
        if cut < 64 then go (cut + 1)
  in
  go 0

let prop_crash_atomicity =
  QCheck.Test.make ~name:"crash at random packet yields pre- or post-state" ~count:120
    QCheck.(
      pair (int_bound 40)
        (list_of_size (Gen.int_range 1 4) (pair (int_bound 7000) (int_range 1 900))))
    (fun (cut, raw_ranges) ->
      let ranges =
        List.mapi (fun i (off, len) -> (min off (8192 - len), len, Char.chr (65 + i))) raw_ranges
      in
      match crash_scenario ~ranges ~cut with
      | `Completed _, _, _ -> true
      | `Crashed (got, mirror), pre, post -> (got = pre || got = post) && got = mirror)

let prop_commit_then_recover_is_post_state =
  QCheck.Test.make ~name:"crash after commit point preserves the transaction" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 3) (pair (int_bound 7000) (int_range 1 500)))
    (fun raw_ranges ->
      let ranges =
        List.mapi (fun i (off, len) -> (min off (8192 - len), len, Char.chr (97 + i))) raw_ranges
      in
      (* A cut beyond any possible packet count: transaction completes,
         then the node dies; recovery must land on the post-state. *)
      match crash_scenario ~ranges ~cut:100_000 with
      | `Completed post, _, post' -> post = post'
      | `Crashed _, _, _ -> false)

let test_crash_during_set_range_only () =
  (* Crash before commit even starts: recovery must give the pre-state
     (the undo records alone must not corrupt anything). *)
  for cut = 0 to 3 do
    match crash_scenario ~ranges:[ (0, 100, 'S') ] ~cut with
    | `Crashed (got, _), pre, _ -> check_i64 (Printf.sprintf "pre-state at cut %d" cut) pre got
    | `Completed _, _, _ -> Alcotest.fail "should have crashed during set_range"
  done

(* ------------------------------------------------------------------ *)
(* Archive: graceful shutdown to stable storage and cold restart       *)

let test_archive_roundtrip () =
  let b, seg = with_db () in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:128;
  P.write b.t seg ~off:0 (Bytes.make 128 'A');
  P.commit txn;
  let expect = P.checksum b.t seg in
  let device =
    Disk.Device.create ~clock:b.clock
      ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
      ~capacity:(1 lsl 20)
  in
  let t0 = Clock.now b.clock in
  P.archive b.t device;
  check_bool "archive pays the disk" true (Clock.now b.clock - t0 > Time.ms 1.);
  (* Scheduled shutdown: the whole cluster goes dark. *)
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Power_outage);
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Power_outage);
  Cluster.restart_node b.cluster 0;
  Cluster.restart_node b.cluster 1;
  (* Cold start on the rebooted cluster from the archive. *)
  let server = Netram.Server.create (Cluster.node b.cluster 1) in
  let clients = [ Netram.Client.create ~cluster:b.cluster ~local:0 ~server ] in
  let t2 = P.restore_from_archive ~clients device in
  let seg2 = Option.get (P.segment t2 "db") in
  check_i64 "restored state" expect (P.checksum t2 seg2);
  check_bool "live again" true (P.remote_ready t2);
  (* And transactional again. *)
  let txn = P.begin_transaction t2 in
  P.set_range txn seg2 ~off:0 ~len:8;
  P.write t2 seg2 ~off:0 (Bytes.make 8 'z');
  P.commit txn;
  check_i64 "mirror ok" (P.checksum t2 seg2) (P.mirror_checksum t2 seg2)

let test_archive_rules () =
  let b, seg = with_db () in
  let device =
    Disk.Device.create ~clock:b.clock
      ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
      ~capacity:(1 lsl 20)
  in
  (* No archive with an open transaction. *)
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:8;
  (try
     P.archive b.t device;
     Alcotest.fail "archive with open txn"
   with Failure _ -> ());
  P.abort txn;
  (* Restoring from a blank device fails cleanly. *)
  let blank =
    Disk.Device.create ~clock:b.clock
      ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
      ~capacity:(1 lsl 20)
  in
  let server = Netram.Server.create (Cluster.node b.cluster 2) in
  let clients = [ Netram.Client.create ~cluster:b.cluster ~local:0 ~server ] in
  try
    ignore (P.restore_from_archive ~clients blank);
    Alcotest.fail "restore from blank device"
  with Failure _ -> ()

(* Two independent databases sharing one memory server, isolated by
   namespace. *)
let test_namespaces_share_a_server () =
  let b = bed () in
  let t_bank = b.t in
  let client2 = Netram.Client.create ~cluster:b.cluster ~local:0 ~server:b.server in
  let t_shop = P.init ~config:{ P.default_config with namespace = "shop" } client2 in
  let bank_seg = P.malloc t_bank ~name:"table" ~size:512 in
  let shop_seg = P.malloc t_shop ~name:"table" ~size:512 in
  P.write t_bank bank_seg ~off:0 (Bytes.make 512 'b');
  P.write t_shop shop_seg ~off:0 (Bytes.make 512 's');
  P.init_remote_db t_bank;
  P.init_remote_db t_shop;
  let commit_one t seg fill =
    let txn = P.begin_transaction t in
    P.set_range txn seg ~off:0 ~len:8;
    P.write t seg ~off:0 (Bytes.make 8 fill);
    P.commit txn
  in
  commit_one t_bank bank_seg 'B';
  commit_one t_shop shop_seg 'S';
  (* Crash the primary: each database recovers under its own namespace
     with its own contents. *)
  crash_primary b;
  let bank2 =
    P.recover ~config:P.default_config ~cluster:b.cluster ~local:2 ~server:b.server ()
  in
  let shop2 =
    P.recover
      ~config:{ P.default_config with namespace = "shop" }
      ~cluster:b.cluster ~local:2 ~server:b.server ()
  in
  check Alcotest.string "bank data" "BBBBBBBB"
    (Bytes.to_string (P.read bank2 (Option.get (P.segment bank2 "table")) ~off:0 ~len:8));
  check Alcotest.string "shop data" "SSSSSSSS"
    (Bytes.to_string (P.read shop2 (Option.get (P.segment shop2 "table")) ~off:0 ~len:8))

(* The default namespace rejects a second database on the same server. *)
let test_namespace_collision_detected () =
  let b = bed () in
  ignore b.t;
  let client2 = Netram.Client.create ~cluster:b.cluster ~local:0 ~server:b.server in
  try
    ignore (P.init client2);
    Alcotest.fail "expected name collision"
  with Failure _ -> ()

let suite =
  [
    ("init mirrors the whole database", `Quick, test_init_mirrors_whole_db);
    ("malloc naming and lifecycle rules", `Quick, test_malloc_rules);
    ("transaction state rules", `Quick, test_transaction_rules);
    ("strict update enforcement", `Quick, test_strict_updates_enforced);
    ("relaxed update mode", `Quick, test_relaxed_updates);
    ("commit updates the mirror", `Quick, test_commit_updates_mirror);
    ("abort restores locally without remote traffic", `Quick, test_abort_restores_locally);
    ("multi-range abort", `Quick, test_multiple_ranges_and_overlap_abort);
    ("undo overflow", `Quick, test_undo_overflow);
    ("undo overflow mid-transaction", `Quick, test_undo_overflow_mid_transaction);
    ("set_range validation", `Quick, test_set_range_validation);
    ("u32/u64 helpers", `Quick, test_helpers_roundtrip);
    ("statistics accounting", `Quick, test_stats_accounting);
    ("commit point is a single packet", `Quick, test_epoch_write_is_single_packet);
    ("recover after clean commit", `Quick, test_recover_after_clean_commit);
    ("recover multiple segments", `Quick, test_recover_multiple_segments);
    ("recovered instance runs transactions", `Quick, test_recovered_instance_supports_transactions);
    ("recover on rebooted primary", `Quick, test_recover_on_rebooted_primary);
    ("recover without a database fails", `Quick, test_recover_without_db_fails);
    ("remirror after mirror death", `Quick, test_remirror_after_mirror_death);
    ("crash atomicity at every cut point", `Slow, test_crash_atomicity_exhaustive);
    QCheck_alcotest.to_alcotest prop_crash_atomicity;
    QCheck_alcotest.to_alcotest prop_commit_then_recover_is_post_state;
    ("crash during set_range keeps pre-state", `Quick, test_crash_during_set_range_only);
    ("archive and cold restart", `Quick, test_archive_roundtrip);
    ("archive rules", `Quick, test_archive_rules);
    ("namespaces share a server", `Quick, test_namespaces_share_a_server);
    ("namespace collision detected", `Quick, test_namespace_collision_detected);
  ]
