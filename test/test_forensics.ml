(* The forensic layer: causal cross-node timelines, the flight
   recorder, and the online protocol-invariant monitor.  The layer
   contract comes first — a fully instrumented run (ring + monitor +
   causal tags) stays byte-identical to an uninstrumented one — then
   the monitor must stay silent on legal runs (eager, group commit,
   checkpoints, mirror loss, recovery) and catch every seeded
   violation with the right typed alert. *)

open Sim
module P = Perseas
module F = Harness.Forensics
module M = Trace.Monitor

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list;
  ckpt : Netram.Server.t;
  t : P.t;
}

(* Primary on 0, two mirrors on 1-2, checkpoint target on 3, spare on
   4 — enough cluster to exercise every packet source the monitor
   attributes: commit bursts, convoys, resync, metadata pushes,
   checkpoint streaming. *)
let bed ?(config = P.default_config) () =
  let clock = Clock.create () in
  let dram = 4 * 1024 * 1024 in
  let names = [ "primary"; "mirror0"; "mirror1"; "ckpt"; "spare" ] in
  let specs = List.mapi (fun i n -> Cluster.spec ~dram_size:dram ~power_supply:i n) names in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init 2 (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  let t = P.init_replicated ~config clients in
  let ckpt = Netram.Server.create (Cluster.node cluster 3) in
  { clock; cluster; servers; ckpt; t }

let with_db ?config ?(size = 8192) () =
  let b = bed ?config () in
  let seg = P.malloc b.t ~name:"db" ~size in
  P.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db b.t;
  (b, seg)

let commit_fill b seg ~off fill =
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off ~len:128;
  P.write b.t seg ~off (Bytes.make 128 fill);
  P.commit txn

(* The richest deterministic story the stack tells: group commits,
   checkpoints (full take, then a fuzzy start/step/finalize cut across
   commits), a mirror crash mid-run, a spare recruited, a final flush.
   Used both for the byte-identity check and the zero-alert check. *)
let full_story ?forensics () =
  let config = { P.default_config with group_commit = 2 } in
  let b, seg = with_db ~config () in
  Option.iter (fun f -> F.attach f b.t) forensics;
  P.Checkpoint.set_ram_target b.t ~server:b.ckpt;
  for i = 0 to 5 do
    commit_fill b seg ~off:(256 * i) (Char.chr (Char.code 'a' + i))
  done;
  P.flush b.t;
  ignore (P.Checkpoint.take b.t);
  (* Kill mirror1 (node 2): the next plan against it raises, the engine
     drops it and continues degraded. *)
  ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Hardware_error);
  for i = 0 to 3 do
    commit_fill b seg ~off:(2048 + (256 * i)) (Char.chr (Char.code 'p' + i))
  done;
  P.flush b.t;
  (* Recruit the spare (node 4): resync traffic, then more commits
     interleaved with an open fuzzy checkpoint. *)
  P.attach_mirror b.t ~server:(Netram.Server.create (Cluster.node b.cluster 4));
  P.Checkpoint.start b.t;
  commit_fill b seg ~off:4096 'x';
  ignore (P.Checkpoint.step b.t ~budget:4096);
  commit_fill b seg ~off:4352 'y';
  P.flush b.t;
  ignore (P.Checkpoint.finalize b.t);
  (Clock.now b.clock, Sci.Nic.counters (Cluster.nic b.cluster), P.stats b.t)

(* ------------------------------------------------------------------ *)

let test_ring_capacities () =
  let s = Trace.Sink.memory ~span_capacity:2 ~event_capacity:4 () in
  for i = 0 to 4 do
    Trace.Sink.span s ~cat:"txn" ~name:(string_of_int i) ~start:i ~stop:(i + 1)
  done;
  for i = 0 to 9 do
    Trace.Sink.instant s ~cat:"sci" ~name:"pkt.full64" ~at:i
  done;
  check_int "span ring bounded" 2 (List.length (Trace.Sink.spans s));
  check_int "event ring bounded" 4 (List.length (Trace.Sink.events s));
  check_int "span drops counted separately" 3 (Trace.Sink.dropped_spans s);
  check_int "event drops counted separately" 6 (Trace.Sink.dropped_events s);
  (* Newest survive, oldest drop. *)
  (match Trace.Sink.spans s with
  | [ a; b ] ->
      check Alcotest.string "oldest surviving span" "3" a.Trace.Span.name;
      check Alcotest.string "newest span" "4" b.Trace.Span.name
  | _ -> Alcotest.fail "expected 2 spans");
  let tee = Trace.Sink.tee [ Trace.Sink.noop; s ] in
  check_int "tee reads through to the ring" 2 (List.length (Trace.Sink.spans tee))

let test_byte_identity () =
  let clock_off, nic_off, stats_off = full_story () in
  let f = F.create () in
  let clock_on, nic_on, stats_on = full_story ~forensics:f () in
  check_int "final clock identical" clock_off clock_on;
  check_bool "NIC counters identical" true (nic_off = nic_on);
  check_bool "engine stats identical" true (stats_off = stats_on);
  check_bool "and the recorder actually saw traffic" true
    (Trace.Sink.event_count (F.sink f) > 100)

let test_zero_alerts_full_story () =
  let f = F.create () in
  ignore (full_story ~forensics:f ());
  check_int "monitor silent on a legal run" 0 (F.alert_count f);
  check_bool "monitor consumed the stream" true (M.events_seen (F.monitor f) > 100)

let test_zero_alerts_crash_sweep () =
  (* Primary-victim sweep with the recorder attached at every point:
     every crash/recovery pair must stream through the monitor without
     one alert — and the sweep's own oracle still holds. *)
  let dir = "forensics-sweep-out" in
  let scenario = Harness.Crashpoint.commit_scenario ~mirrors:1 ~ranges:2 () in
  let r = Harness.Crashpoint.sweep ~postmortem:dir scenario in
  check_bool "sweep completed" true (r.Harness.Crashpoint.total_packets > 0);
  check_bool "no bundle dumped on a clean sweep" true (not (Sys.file_exists dir));
  let r2 = Harness.Crashpoint.sweep ~victim:(Harness.Crashpoint.Mirror 0) ~postmortem:dir scenario in
  check_bool "mirror sweep clean too" true (r2.Harness.Crashpoint.total_packets > 0);
  check_bool "still no bundle" true (not (Sys.file_exists dir))

let test_zero_alerts_churn () =
  let params =
    {
      Harness.Churn.default_params with
      Harness.Churn.duration = Time.ms 20.0;
      checkpoint_interval = Some (Time.ms 4.0);
    }
  in
  let dir = "forensics-churn-out" in
  let r = Harness.Churn.run ~params ~postmortem:dir () in
  Harness.Churn.check r;
  check_bool "churn committed work" true (r.Harness.Churn.committed > 0);
  check_bool "no bundle dumped on a clean churn run" true (not (Sys.file_exists dir))

(* ------------------------------------------------------------------ *)
(* Seeded violations: replay deliberately corrupted streams through
   the monitor's test hook and demand the right typed alert. *)

let ev ?(name = "pkt.full64") ?(at = 10) args = { Trace.Event.name; cat = "sci"; at; args }

let convoy_pkt ?(node = 1) ?(at = 10) ~convoy ~tag ?epoch ~batch () =
  ev ~at
    ([
       ("op", "flush_convoy");
       ("node", string_of_int node);
       ("convoy", convoy);
       ("tag", tag);
       ("batch", batch);
     ]
    @ match epoch with Some e -> [ ("epoch", Int64.to_string e) ] | None -> [])

let seeded label feed pick =
  let m = M.create () in
  List.iter (M.event m) feed;
  match M.alerts m with
  | [] -> Alcotest.failf "%s: violation not caught" label
  | a :: _ ->
      check_bool (label ^ ": right alert type") true (pick a.M.violation);
      check_int (label ^ ": exactly one alert") 1 (M.alert_count m)

let test_mutation_fence_not_last () =
  seeded "fence shipped early"
    [
      convoy_pkt ~at:1 ~convoy:"c1" ~tag:"undo" ~batch:"1+2" ();
      convoy_pkt ~at:2 ~convoy:"c1" ~tag:"fence" ~epoch:2L ~batch:"1+2" ();
      (* the mutation: data follows its own unit's fence *)
      convoy_pkt ~at:3 ~convoy:"c1" ~tag:"data" ~batch:"1+2" ();
    ]
    (function M.Fence_not_last { node = 1; convoy = "c1"; _ } -> true | _ -> false)

let test_mutation_epoch_regressed () =
  seeded "non-monotone fence epoch"
    [
      convoy_pkt ~at:1 ~convoy:"c1" ~tag:"fence" ~epoch:5L ~batch:"1" ();
      convoy_pkt ~at:2 ~convoy:"c2" ~tag:"fence" ~epoch:4L ~batch:"2" ();
    ]
    (function M.Epoch_regressed { node = 1; prev = 5L; next = 4L; _ } -> true | _ -> false)

let test_mutation_undo_after_data_convoy () =
  seeded "undo chunk after data in one convoy"
    [
      convoy_pkt ~at:1 ~convoy:"c1" ~tag:"data" ~batch:"3" ();
      convoy_pkt ~at:2 ~convoy:"c1" ~tag:"undo" ~batch:"3" ();
    ]
    (function M.Undo_after_data { txn = "3"; node = 1; _ } -> true | _ -> false)

let test_mutation_undo_after_data_eager () =
  seeded "eager undo push after the txn's commit data"
    [
      ev ~at:1
        [ ("op", "commit_propagate"); ("node", "1"); ("convoy", "t7"); ("txn", "7") ];
      ev ~at:2
        [ ("op", "commit_fence"); ("node", "1"); ("convoy", "t7"); ("txn", "7"); ("epoch", "2") ];
      ev ~at:3 [ ("op", "remote_undo"); ("node", "1"); ("txn", "7") ];
    ]
    (function M.Undo_after_data { txn = "7"; node = 1; _ } -> true | _ -> false)

let test_mutation_split_convoy () =
  seeded "two convoys interleaved on one node"
    [
      convoy_pkt ~at:1 ~convoy:"c1" ~tag:"data" ~batch:"1" ();
      convoy_pkt ~at:2 ~convoy:"c2" ~tag:"data" ~batch:"2" ();
    ]
    (function
      | M.Convoy_interleaved { node = 1; convoy = "c1"; intruder = "c2"; _ } -> true | _ -> false)

let test_mutation_checkpoint_cut_inside_convoy () =
  let m = M.create () in
  M.event m (convoy_pkt ~at:1 ~convoy:"c1" ~tag:"data" ~batch:"1" ());
  M.event m { Trace.Event.name = "cut"; cat = "ckpt"; at = 2; args = [] };
  (match M.alerts m with
  | { M.violation = M.Checkpoint_split_convoy { node = 1; convoy = "c1"; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "checkpoint cut inside an open convoy not caught");
  (* And the legal orderings around it stay silent. *)
  let m2 = M.create () in
  M.event m2 (convoy_pkt ~at:1 ~convoy:"c1" ~tag:"data" ~batch:"1" ());
  M.event m2 (convoy_pkt ~at:2 ~convoy:"c1" ~tag:"fence" ~epoch:2L ~batch:"1" ());
  M.event m2 { Trace.Event.name = "cut"; cat = "ckpt"; at = 3; args = [] };
  check_int "cut between units is legal" 0 (M.alert_count m2)

(* A mirror loss forgives an interrupted unit: no alert when the next
   traffic to that node starts a fresh unit, or when a cut follows. *)
let test_mirror_loss_forgives_open_unit () =
  let m = M.create () in
  M.event m (convoy_pkt ~at:1 ~convoy:"c1" ~tag:"data" ~batch:"1" ());
  M.event m { Trace.Event.name = "dropped"; cat = "mirror"; at = 2; args = [ ("node", "1") ] };
  M.event m { Trace.Event.name = "cut"; cat = "ckpt"; at = 3; args = [] };
  M.event m (convoy_pkt ~at:4 ~convoy:"c2" ~tag:"data" ~batch:"2" ());
  M.event m (convoy_pkt ~at:5 ~convoy:"c2" ~tag:"fence" ~epoch:3L ~batch:"2" ());
  check_int "interruption by mirror loss is not a violation" 0 (M.alert_count m)

(* ------------------------------------------------------------------ *)

let test_causal_timeline () =
  let b, seg = with_db () in
  let f = F.create () in
  F.attach f b.t;
  commit_fill b seg ~off:0 'q';
  commit_fill b seg ~off:256 'r';
  let timelines = F.timelines f in
  check_bool "one timeline per transaction" true (List.length timelines >= 2);
  match Trace.Causal.find timelines ~txn:"1" with
  | None -> Alcotest.fail "no timeline for txn 1"
  | Some c ->
      let on_node n (h : Trace.Causal.hop) = h.Trace.Causal.h_node = Some n in
      let what w (h : Trace.Causal.hop) = h.Trace.Causal.h_what = w in
      let hops = c.Trace.Causal.c_hops in
      (* The cross-node story: undo then data then fence, on BOTH
         mirror nodes, with packet runs coalesced into single hops. *)
      List.iter
        (fun node ->
          List.iter
            (fun w ->
              check_bool
                (Printf.sprintf "txn 1 %s on node %d" w node)
                true
                (List.exists (fun h -> on_node node h && what w h) hops))
            [ "pkt/remote_undo"; "pkt/commit_propagate"; "pkt/commit_fence" ])
        [ 1; 2 ];
      check_bool "packet runs coalesced" true
        (List.exists (fun (h : Trace.Causal.hop) -> h.Trace.Causal.h_pkts > 1) hops);
      (* Primary-side spans join the same story. *)
      check_bool "primary-side commit span present" true
        (List.exists (fun h -> what "txn/commit" h && h.Trace.Causal.h_node = None) hops);
      (* Hops are time-ordered. *)
      let rec ordered = function
        | (a : Trace.Causal.hop) :: (b : Trace.Causal.hop) :: rest ->
            a.Trace.Causal.h_start <= b.Trace.Causal.h_start && ordered (b :: rest)
        | _ -> true
      in
      check_bool "hops ordered by virtual time" true (ordered hops)

let test_convoy_timeline () =
  let config = { P.default_config with group_commit = 3 } in
  let b, seg = with_db ~config () in
  let f = F.create () in
  F.attach f b.t;
  commit_fill b seg ~off:0 'a';
  commit_fill b seg ~off:256 'b';
  commit_fill b seg ~off:512 'c';
  P.flush b.t;
  let timelines = F.timelines f in
  (* Every batched transaction's timeline carries the convoy hops. *)
  List.iter
    (fun txn ->
      match Trace.Causal.find timelines ~txn with
      | None -> Alcotest.failf "no timeline for batched txn %s" txn
      | Some c ->
          check_bool
            (Printf.sprintf "txn %s rode a convoy" txn)
            true
            (List.exists
               (fun (h : Trace.Causal.hop) -> h.Trace.Causal.h_what = "pkt/flush_convoy")
               c.Trace.Causal.c_hops))
    [ "1"; "2"; "3" ];
  check_int "convoys are legal" 0 (F.alert_count f)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_postmortem_bundle () =
  let b, seg = with_db () in
  let f = F.create () in
  F.attach f b.t;
  commit_fill b seg ~off:0 'q';
  commit_fill b seg ~off:256 'r';
  (* Force a failure: seed a protocol violation naming a REAL
     transaction, as a failing oracle would. *)
  M.event (F.monitor f)
    (ev ~at:(Clock.now b.clock) [ ("op", "remote_undo"); ("node", "1"); ("txn", "2") ]);
  check_int "seeded violation alerted" 1 (F.alert_count f);
  let dir = "forensics-bundle-out" in
  if Sys.file_exists dir then rm_rf dir;
  let out = F.dump f ~dir ~cause:"test: seeded undo-after-data" ~stats:(P.stats b.t) () in
  check Alcotest.string "dump returns the dir" dir out;
  let slurp name =
    let ic = open_in (Filename.concat dir name) in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* Header: cause, ring occupancy, SEPARATE drop counters, alerts. *)
  let header = Harness.Json.parse_exn (slurp "header.json") in
  let mem k = Harness.Json.member_exn k header in
  check Alcotest.string "cause recorded" "test: seeded undo-after-data"
    (Harness.Json.to_string (mem "cause"));
  check_int "no span drops at this size" 0 (Harness.Json.to_int (mem "dropped_spans"));
  check_int "no event drops at this size" 0 (Harness.Json.to_int (mem "dropped_events"));
  (match Harness.Json.to_list (mem "alerts") with
  | [ a ] ->
      check_bool "alert rendered" true (contains (Harness.Json.to_string a) "undo for txn 2")
  | _ -> Alcotest.fail "expected exactly one alert in the header");
  (* The Perfetto trace and the stats snapshot parse. *)
  check_bool "trace.json parses" true
    (match Harness.Json.parse (slurp "trace.json") with Ok _ -> true | Error _ -> false);
  check_bool "stats.json parses" true
    (match Harness.Json.parse (slurp "stats.json") with Ok _ -> true | Error _ -> false);
  (* The causal timeline contains the offending transaction's
     cross-node spans: its packets on both mirrors. *)
  let causal = slurp "causal.txt" in
  check_bool "offending txn present" true (contains causal "txn 2:");
  check_bool "cross-node undo hop" true (contains causal "pkt/remote_undo");
  check_bool "cross-node fence hop" true (contains causal "pkt/commit_fence");
  check_bool "node 1 visited" true (contains causal "node 1");
  check_bool "node 2 visited" true (contains causal "node 2");
  rm_rf dir

let suite =
  [
    ("ring capacities and drop accounting", `Quick, test_ring_capacities);
    ("forensics leave the run byte-identical", `Quick, test_byte_identity);
    ("monitor silent across the full story", `Quick, test_zero_alerts_full_story);
    ("monitor silent across crash sweeps", `Slow, test_zero_alerts_crash_sweep);
    ("monitor silent under churn", `Slow, test_zero_alerts_churn);
    ("mutation: fence shipped early", `Quick, test_mutation_fence_not_last);
    ("mutation: non-monotone epoch", `Quick, test_mutation_epoch_regressed);
    ("mutation: undo after data (convoy)", `Quick, test_mutation_undo_after_data_convoy);
    ("mutation: undo after data (eager)", `Quick, test_mutation_undo_after_data_eager);
    ("mutation: interleaved convoys", `Quick, test_mutation_split_convoy);
    ("mutation: cut splits a convoy", `Quick, test_mutation_checkpoint_cut_inside_convoy);
    ("mirror loss forgives an open unit", `Quick, test_mirror_loss_forgives_open_unit);
    ("causal timeline: eager cross-node story", `Quick, test_causal_timeline);
    ("causal timeline: convoy batches", `Quick, test_convoy_timeline);
    ("post-mortem bundle", `Quick, test_postmortem_bundle);
  ]
