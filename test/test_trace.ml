(* Tracing: the sink must be a pure observer (runs with and without it
   byte-identical in packet counts, stats and final clock), the txn
   span taxonomy must cover every clock charge (per-phase sums equal
   end-to-end latency exactly), and the exporters must produce
   Perfetto-loadable JSON. *)

open Sim
module P = Perseas
module Sup = Perseas.Supervisor

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list;
  t : P.t;
}

(* Primary on node 0; [k] mirrors on nodes 1..k; one spare at the end
   (same shape as the replication tests, so supervisor recruitment has
   somewhere to go). *)
let bed ~k () =
  let clock = Clock.create () in
  let dram = 4 * 1024 * 1024 in
  let specs =
    Cluster.spec ~dram_size:dram ~power_supply:0 "primary"
    :: (List.init k (fun i ->
            Cluster.spec ~dram_size:dram ~power_supply:(i + 1) (Printf.sprintf "mirror%d" i))
       @ [ Cluster.spec ~dram_size:dram ~power_supply:(k + 1) "spare" ])
  in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init k (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  { clock; cluster; servers; t = P.init_replicated clients }

let with_db ~k ?(size = 4096) () =
  let b = bed ~k () in
  let seg = P.malloc b.t ~name:"db" ~size in
  P.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db b.t;
  (b, seg)

let commit_fill b seg fill =
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:64 ~len:128;
  P.write b.t seg ~off:64 (Bytes.make 128 fill);
  P.commit txn

let run_workload b seg n =
  for i = 0 to n - 1 do
    commit_fill b seg (Char.chr (Char.code 'a' + (i mod 26)))
  done

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Sink mechanics *)

let test_sink_basics () =
  check_bool "noop disabled" false (Trace.Sink.enabled Trace.Sink.noop);
  Trace.Sink.span Trace.Sink.noop ~cat:"txn" ~name:"x" ~start:0 ~stop:10;
  check_int "noop drops spans" 0 (Trace.Sink.span_count Trace.Sink.noop);
  let s = Trace.Sink.memory () in
  check_bool "memory enabled" true (Trace.Sink.enabled s);
  Trace.Sink.span s ~cat:"txn" ~name:"a" ~start:0 ~stop:5;
  Trace.Sink.span s ~cat:"txn" ~name:"b" ~start:5 ~stop:7 ~args:[ ("mirror", "0") ];
  Trace.Sink.instant s ~cat:"sci" ~name:"pkt.full64" ~at:6;
  check_int "two spans" 2 (Trace.Sink.span_count s);
  check_int "one event" 1 (Trace.Sink.event_count s);
  (match Trace.Sink.spans s with
  | [ a; b ] ->
      check_string "oldest first" "a" a.Trace.Span.name;
      check_int "duration" 2 (Trace.Span.duration b);
      check_string "args kept" "0" (List.assoc "mirror" b.Trace.Span.args)
  | _ -> Alcotest.fail "expected two spans");
  check_int "cursor window" 1 (List.length (Trace.Sink.spans_since s 1));
  Trace.Sink.clear s;
  check_int "cleared" 0 (Trace.Sink.span_count s)

(* ------------------------------------------------------------------ *)
(* The core invariant: tracing never perturbs the simulation. *)

let test_disabled_invariance () =
  let run traced =
    let b, seg = with_db ~k:2 () in
    if traced then P.set_sink b.t (Trace.Sink.memory ());
    run_workload b seg 40;
    ignore (P.abort (P.begin_transaction b.t));
    (Clock.now b.clock, Sci.Nic.counters (Cluster.nic b.cluster), P.stats b.t)
  in
  let clock_on, nic_on, stats_on = run true in
  let clock_off, nic_off, stats_off = run false in
  check_int "final clock identical" clock_off clock_on;
  check_bool "NIC counters identical" true (nic_off = nic_on);
  check_bool "engine stats identical" true (stats_off = stats_on)

(* The txn spans are disjoint and cover every clock charge, so their
   summed durations equal the end-to-end virtual time exactly (integer
   nanoseconds, no tolerance needed). *)
let test_taxonomy_covers_latency () =
  let b, seg = with_db ~k:2 () in
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  let t0 = Clock.now b.clock in
  run_workload b seg 25;
  let elapsed = Clock.now b.clock - t0 in
  let txn_spans = List.filter (fun (s : Trace.Span.t) -> s.cat = "txn") (Trace.Sink.spans sink) in
  let total = List.fold_left (fun acc s -> acc + Trace.Span.duration s) 0 txn_spans in
  check_int "txn spans sum to end-to-end latency" elapsed total;
  let names = List.sort_uniq compare (List.map (fun (s : Trace.Span.t) -> s.name) txn_spans) in
  List.iter
    (fun n -> check_bool (n ^ " present") true (List.mem n names))
    [
      "begin"; "set_range"; "local_undo"; "remote_undo"; "in_place_write"; "commit";
      "commit_propagate"; "commit_fence";
    ];
  (* Per-mirror phases name the mirror they hit. *)
  let mirrors =
    List.filter_map
      (fun (s : Trace.Span.t) ->
        if s.name = "remote_undo" then List.assoc_opt "mirror" s.args else None)
      txn_spans
    |> List.sort_uniq compare
  in
  check (Alcotest.list Alcotest.string) "both mirrors hit" [ "0"; "1" ] mirrors

let test_abort_span () =
  let b, seg = with_db ~k:1 () in
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:64;
  P.write b.t seg ~off:0 (Bytes.make 64 'z');
  P.abort txn;
  let names = List.map (fun (s : Trace.Span.t) -> s.name) (Trace.Sink.spans sink) in
  check_bool "abort span recorded" true (List.mem "abort" names);
  check_bool "no commit span" false (List.mem "commit" names)

(* ------------------------------------------------------------------ *)
(* NIC and RPC events *)

let test_nic_packet_events () =
  let b, seg = with_db ~k:1 () in
  let nic = Cluster.nic b.cluster in
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  let before = Sci.Nic.counters nic in
  run_workload b seg 10;
  let after = Sci.Nic.counters nic in
  let events = Trace.Sink.events sink in
  let count name = List.length (List.filter (fun (e : Trace.Event.t) -> e.name = name) events) in
  check_int "one instant per 64B packet" (after.packets64 - before.packets64) (count "pkt.full64");
  check_int "one instant per 16B packet" (after.packets16 - before.packets16) (count "pkt.part16");
  check_bool "packets tagged bulk" true
    (List.exists
       (fun (e : Trace.Event.t) ->
         e.cat = "sci" && List.assoc_opt "tag" e.args = Some "bulk")
       events)

let test_netram_rpc_events () =
  let b = bed ~k:1 () in
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  ignore (P.malloc b.t ~name:"seg" ~size:1024);
  let rpcs =
    List.filter
      (fun (e : Trace.Event.t) -> e.cat = "netram" && List.assoc_opt "tag" e.args = Some "rpc")
      (Trace.Sink.events sink)
  in
  check_bool "malloc emitted an rpc instant" true
    (List.exists (fun (e : Trace.Event.t) -> List.assoc_opt "op" e.args = Some "malloc") rpcs)

(* ------------------------------------------------------------------ *)
(* Supervisor and recovery *)

let test_supervisor_instants () =
  let b, seg = with_db ~k:1 () in
  commit_fill b seg 'a';
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  let spare = Netram.Server.create (Cluster.node b.cluster (Cluster.size b.cluster - 1)) in
  let sup = Sup.create ~spares:[ spare ] b.t in
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  Clock.advance b.clock Sup.default_policy.probe_interval;
  Sup.tick sup;
  let sup_events =
    List.filter (fun (e : Trace.Event.t) -> e.cat = "supervisor") (Trace.Sink.events sink)
  in
  let names = List.map (fun (e : Trace.Event.t) -> e.name) sup_events in
  check_bool "mirror_lost instant" true (List.mem "mirror_lost" names);
  check_bool "recruited instant" true (List.mem "recruited" names);
  (* Recruitment resyncs the spare: a mirror/resync span too. *)
  check_bool "resync span" true
    (List.exists
       (fun (s : Trace.Span.t) -> s.cat = "mirror" && s.name = "resync")
       (Trace.Sink.spans sink))

let test_recovery_spans () =
  let b, seg = with_db ~k:2 () in
  commit_fill b seg 'a';
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let sink = Trace.Sink.memory () in
  let t2 =
    P.recover_replicated ~sink ~cluster:b.cluster ~local:(Cluster.size b.cluster - 1)
      ~servers:b.servers ()
  in
  ignore t2;
  let rec_spans =
    List.filter (fun (s : Trace.Span.t) -> s.cat = "recovery") (Trace.Sink.spans sink)
  in
  let names = List.map (fun (s : Trace.Span.t) -> s.name) rec_spans in
  List.iter
    (fun n -> check_bool (n ^ " phase present") true (List.mem n names))
    [ "probe"; "repair"; "fetch_db"; "resync_mirrors" ];
  (* The four phases are contiguous: they partition recovery's whole
     virtual extent. *)
  (match (rec_spans, List.rev rec_spans) with
  | first :: _, last :: _ ->
      let covered =
        List.fold_left (fun acc s -> acc + Trace.Span.duration s) 0 rec_spans
      in
      check_int "phases partition recovery time" (last.Trace.Span.stop - first.Trace.Span.start)
        covered
  | _ -> Alcotest.fail "no recovery spans")

(* ------------------------------------------------------------------ *)
(* Breakdown, registry, exporters, Measure integration *)

let test_breakdown () =
  let mk name start stop =
    { Trace.Span.name; cat = "txn"; start; stop; args = [] }
  in
  let spans =
    [ mk "commit" 0 4_000; mk "commit" 4_000 6_000; mk "begin" 6_000 6_500;
      { Trace.Span.name = "other"; cat = "io"; start = 0; stop = 9_000; args = [] } ]
  in
  (match Trace.breakdown ~cat:"txn" spans with
  | [ c; b ] ->
      check_string "biggest first" "commit" c.Trace.phase;
      check_int "count" 2 c.Trace.count;
      check (Alcotest.float 1e-9) "total" 6. c.Trace.total_us;
      check (Alcotest.float 1e-9) "mean" 3. c.Trace.mean_us;
      check_string "then begin" "begin" b.Trace.phase
  | l -> Alcotest.failf "expected two phases, got %d" (List.length l));
  check_int "unrestricted sees both cats" 3 (List.length (Trace.breakdown spans))

let test_registry () =
  let r = Trace.Registry.create () in
  Trace.Counter.incr (Trace.Registry.counter r "txn.commit.count");
  Trace.Registry.add r "txn.commit.count" 2;
  Trace.Registry.observe r "txn.commit.us" 3.5;
  Trace.Registry.observe r "txn.commit.us" 40.;
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "counters"
    [ ("txn.commit.count", 3) ]
    (Trace.Registry.counters r);
  check_int "histogram fed" 2 (Stats.Histogram.count (Trace.Registry.histogram r "txn.commit.us"));
  let json = Trace.Registry.to_json r in
  check_bool "json names counter" true
    (contains json "txn.commit.count");
  (* Folding spans into a registry builds the same names. *)
  let r2 = Trace.Registry.create () in
  Trace.register_spans r2
    [ { Trace.Span.name = "commit"; cat = "txn"; start = 0; stop = 2_000; args = [] } ];
  check_int "register_spans counter" 1
    (Trace.Counter.value (Trace.Registry.counter r2 "txn.commit.count"))

let test_chrome_export () =
  let b, seg = with_db ~k:2 () in
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  run_workload b seg 5;
  let json = Trace.Export.chrome_json ~spans:(Trace.Sink.spans sink) ~events:(Trace.Sink.events sink) () in
  let has affix = contains json affix in
  check_bool "trace_event envelope" true (has "{\"traceEvents\":[");
  check_bool "complete spans" true (has "\"ph\":\"X\"");
  check_bool "instants" true (has "\"ph\":\"i\"");
  (* A span with arg mirror=1 lands on tid 3 (its own Perfetto track). *)
  check_bool "per-mirror track" true (has "\"tid\":3");
  check_bool "balanced" true (String.length json > 2 && json.[String.length json - 1] = '}')

let test_measure_phases () =
  let b, seg = with_db ~k:1 () in
  let sink = Trace.Sink.memory () in
  P.set_sink b.t sink;
  let tx _ = commit_fill b seg 'm' in
  let r = Harness.Measure.run ~clock:b.clock ~sink ~warmup:5 ~iters:20 tx in
  check_bool "phases populated" true (r.Harness.Measure.phases <> []);
  let total =
    List.fold_left (fun acc (p : Trace.phase_stat) -> acc +. p.total_us) 0.
      r.Harness.Measure.phases
  in
  let elapsed_us = Time.to_us r.Harness.Measure.elapsed in
  check_bool "phase sums equal measured window (<1% drift)" true
    (Float.abs (total -. elapsed_us) /. elapsed_us < 0.01);
  (* Warmup spans are excluded by cursor: commit count matches iters. *)
  (match
     List.find_opt (fun (p : Trace.phase_stat) -> p.phase = "commit") r.Harness.Measure.phases
   with
  | Some p -> check_int "only measured commits counted" 20 p.Trace.count
  | None -> Alcotest.fail "no commit phase");
  let b2, seg2 = with_db ~k:1 () in
  let r2 = Harness.Measure.run ~clock:b2.clock ~warmup:2 ~iters:5 (fun _ -> commit_fill b2 seg2 'n') in
  check_bool "no sink, no phases" true (r2.Harness.Measure.phases = [])

let suite =
  [
    ("sink basics", `Quick, test_sink_basics);
    ("tracing leaves the run byte-identical", `Quick, test_disabled_invariance);
    ("txn spans cover end-to-end latency", `Quick, test_taxonomy_covers_latency);
    ("abort path traced", `Quick, test_abort_span);
    ("one instant per SCI packet", `Quick, test_nic_packet_events);
    ("netram rpc instants", `Quick, test_netram_rpc_events);
    ("supervisor instants", `Quick, test_supervisor_instants);
    ("recovery phase spans", `Quick, test_recovery_spans);
    ("breakdown aggregation", `Quick, test_breakdown);
    ("metrics registry", `Quick, test_registry);
    ("chrome json export", `Quick, test_chrome_export);
    ("Measure.run per-phase breakdown", `Quick, test_measure_phases);
  ]
