(* N-way mirroring: the paper's "at least two different PCs".  Tests
   cover degraded mode, highest-epoch recovery, mirror attach/detach
   and crash atomicity with several mirrors. *)

open Sim
module P = Perseas
module Node = Cluster.Node

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list; (* one per mirror node *)
  t : P.t;
}

(* Primary on node 0; [k] mirrors on nodes 1..k; one spare at the end. *)
let bed ?config ~k () =
  let clock = Clock.create () in
  let dram = 4 * 1024 * 1024 in
  let specs =
    Cluster.spec ~dram_size:dram ~power_supply:0 "primary"
    :: (List.init k (fun i ->
            Cluster.spec ~dram_size:dram ~power_supply:(i + 1) (Printf.sprintf "mirror%d" i))
       @ [ Cluster.spec ~dram_size:dram ~power_supply:(k + 1) "spare" ])
  in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init k (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  { clock; cluster; servers; t = P.init_replicated ?config clients }

let with_db ?config ~k ?(size = 4096) () =
  let b = bed ?config ~k () in
  let seg = P.malloc b.t ~name:"db" ~size in
  P.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db b.t;
  (b, seg)

let spare_id b = Cluster.size b.cluster - 1

let commit_random b seg fill =
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:64 ~len:128;
  P.write b.t seg ~off:64 (Bytes.make 128 fill);
  P.commit txn

(* ------------------------------------------------------------------ *)

let test_init_validation () =
  (try
     ignore (P.init_replicated []);
     Alcotest.fail "empty mirror set"
   with Invalid_argument _ -> ());
  let b = bed ~k:2 () in
  (* Duplicate server nodes rejected. *)
  let dup = Netram.Client.create ~cluster:b.cluster ~local:0 ~server:(List.hd b.servers) in
  try
    ignore (P.init_replicated [ dup; dup ]);
    Alcotest.fail "duplicate mirrors"
  with Invalid_argument _ | Failure _ -> ()

let test_all_mirrors_in_sync () =
  let b, seg = with_db ~k:3 () in
  commit_random b seg 'x';
  let local = P.checksum b.t seg in
  let sums = P.mirror_checksums b.t seg in
  check_int "three mirrors" 3 (List.length sums);
  List.iter (fun (i, c) -> check_i64 (Printf.sprintf "mirror %d in sync" i) local c) sums

let test_degraded_mode_on_mirror_death () =
  let b, seg = with_db ~k:2 () in
  commit_random b seg 'a';
  (* Kill mirror 0 (node 1); the next transaction must succeed against
     the survivor, with the loss counted. *)
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  commit_random b seg 'b';
  check_int "one mirror left" 1 (P.mirror_count b.t);
  check_int "loss counted" 1 (P.stats b.t).mirrors_lost;
  check_i64 "survivor in sync" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  (* And recovery from the survivor works. *)
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 =
    P.recover_replicated ~cluster:b.cluster ~local:(spare_id b) ~servers:b.servers ()
  in
  let seg2 = Option.get (P.segment t2 "db") in
  check Alcotest.string "latest commit present" (String.make 8 'b')
    (Bytes.to_string (P.read t2 seg2 ~off:64 ~len:8))

let test_all_mirrors_lost_raises () =
  let b, seg = with_db ~k:2 () in
  let pre = P.checksum b.t seg in
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Hardware_error);
  (try
     commit_random b seg 'z';
     Alcotest.fail "expected All_mirrors_lost"
   with P.All_mirrors_lost -> ());
  (* The wounded transaction was rolled back and closed: the local
     image is the pre-state and the library is still usable. *)
  check_i64 "local state rolled back" pre (P.checksum b.t seg);
  let txn = P.begin_transaction b.t in
  P.abort txn

let test_mid_commit_total_loss_recovers () =
  (* Both mirrors die in the middle of commit's packet stream: the
     commit must raise All_mirrors_lost, roll the local image back, and
     leave the library able to re-mirror and commit again. *)
  let b, seg = with_db ~k:2 () in
  commit_random b seg 'm';
  let pre = P.checksum b.t seg in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:512;
  P.write b.t seg ~off:0 (Bytes.make 512 'n');
  let total = P.commit_packets txn in
  let sent = ref 0 in
  P.set_packet_hook b.t
    (Some
       (fun () ->
         if !sent = total / 2 then begin
           ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Power_outage);
           ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Power_outage)
         end;
         incr sent));
  (try
     P.commit txn;
     Alcotest.fail "expected All_mirrors_lost"
   with P.All_mirrors_lost -> ());
  P.set_packet_hook b.t None;
  check_i64 "rolled back to the last committed state" pre (P.checksum b.t seg);
  check_int "both losses counted" 2 (P.stats b.t).mirrors_lost;
  (* begin/abort work again immediately... *)
  let txn = P.begin_transaction b.t in
  P.abort txn;
  (* ...and a fresh mirror restores full service. *)
  P.attach_mirror b.t ~server:(Netram.Server.create (Cluster.node b.cluster (spare_id b)));
  commit_random b seg 'o';
  check_i64 "new mirror tracks commits" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "scrub clean" []
    (P.verify_mirrors b.t)

let test_attach_mirror_grows_set () =
  let b, seg = with_db ~k:1 () in
  commit_random b seg 'p';
  let server2 = Netram.Server.create (Cluster.node b.cluster (spare_id b)) in
  P.attach_mirror b.t ~server:server2;
  check_int "two mirrors" 2 (P.mirror_count b.t);
  (* The fresh mirror holds the full current state. *)
  let sums = P.mirror_checksums b.t seg in
  List.iter (fun (_, c) -> check_i64 "in sync" (P.checksum b.t seg) c) sums;
  (* Transactions propagate to both. *)
  commit_random b seg 'q';
  List.iter
    (fun (_, c) -> check_i64 "in sync after commit" (P.checksum b.t seg) c)
    (P.mirror_checksums b.t seg)

let test_attach_duplicate_rejected () =
  let b, _ = with_db ~k:1 () in
  try
    P.attach_mirror b.t ~server:(List.hd b.servers);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_detach_mirror () =
  let b, seg = with_db ~k:2 () in
  P.detach_mirror b.t ~node_id:1;
  check_int "one live" 1 (P.mirror_count b.t);
  commit_random b seg 'd';
  check_i64 "survivor tracks commits" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  try
    P.detach_mirror b.t ~node_id:1;
    Alcotest.fail "double detach"
  with Invalid_argument _ -> ()

let test_membership_guards_during_txn () =
  (* Membership changes no longer freeze for open transactions: the
     join copies the local image and then scrubs the open transactions'
     before-images over it, so the joiner replicates the committed
     state — never the uncommitted bytes. *)
  let b, seg = with_db ~k:2 () in
  let spare = Netram.Server.create (Cluster.node b.cluster (spare_id b)) in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:16;
  P.write b.t seg ~off:0 (Bytes.make 16 'u');
  P.attach_mirror b.t ~server:spare;
  check_int "attach during open transaction" 3 (P.mirror_count b.t);
  P.abort txn;
  (* After the abort, local == committed state; the joiner must match
     even though the copy happened while 'u' was in the image. *)
  List.iter
    (fun (_, c) -> check_i64 "joiner holds committed state" (P.checksum b.t seg) c)
    (P.mirror_checksums b.t seg);
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:64 ~len:16;
  P.write b.t seg ~off:64 (Bytes.make 16 'd');
  P.detach_mirror b.t ~node_id:1;
  check_int "detach during open transaction" 2 (P.mirror_count b.t);
  P.commit txn;
  commit_random b seg 'v';
  List.iter
    (fun (_, c) -> check_i64 "survivors in sync" (P.checksum b.t seg) c)
    (P.mirror_checksums b.t seg)

let test_detach_last_mirror_refused () =
  (* Detaching the only live mirror would leave nothing to recover
     from; the operation must refuse, and the survivor must keep
     replicating. *)
  let b, seg = with_db ~k:1 () in
  (try
     P.detach_mirror b.t ~node_id:1;
     Alcotest.fail "detached the last live mirror"
   with Failure _ -> ());
  check_int "mirror still live" 1 (P.mirror_count b.t);
  commit_random b seg 'w';
  check_i64 "still replicating" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  (* With a replacement attached the same detach becomes legal. *)
  P.attach_mirror b.t ~server:(Netram.Server.create (Cluster.node b.cluster (spare_id b)));
  P.detach_mirror b.t ~node_id:1;
  check_int "replacement carries on alone" 1 (P.mirror_count b.t);
  commit_random b seg 'x';
  check_i64 "replacement tracks commits" (P.checksum b.t seg) (P.mirror_checksum b.t seg)

let test_highest_epoch_wins () =
  (* Crash between the two epoch writes of a 2-mirror commit: mirror 0
     believes the transaction committed, mirror 1 does not.  Recovery
     must trust mirror 0 and preserve the transaction — and must do so
     even when the mirrors are probed in the other order. *)
  let scenario ~order =
    let b, seg = with_db ~k:2 () in
    let txn = P.begin_transaction b.t in
    P.set_range txn seg ~off:0 ~len:16;
    P.write b.t seg ~off:0 (Bytes.make 16 'E');
    let total = P.commit_packets txn in
    (* Packets: per-mirror undo already sent; commit sends (data +
       epoch) per mirror.  Cut after mirror 0's epoch write = total
       minus mirror 1's epoch packet. *)
    let cut = total - 1 in
    let sent = ref 0 in
    let exception Crash in
    P.set_packet_hook b.t (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    (match P.commit txn with () -> Alcotest.fail "expected crash" | exception Crash -> ());
    P.set_packet_hook b.t None;
    ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
    let servers = match order with `Forward -> b.servers | `Reverse -> List.rev b.servers in
    let t2 = P.recover_replicated ~cluster:b.cluster ~local:(spare_id b) ~servers () in
    let seg2 = Option.get (P.segment t2 "db") in
    check Alcotest.string "committed data preserved" (String.make 16 'E')
      (Bytes.to_string (P.read t2 seg2 ~off:0 ~len:16));
    (* After recovery, every surviving mirror is resynced. *)
    List.iter
      (fun (_, c) -> check_i64 "mirrors resynced" (P.checksum t2 seg2) c)
      (P.mirror_checksums t2 seg2)
  in
  scenario ~order:`Forward;
  scenario ~order:`Reverse

let test_recovery_reattaches_survivors () =
  let b, seg = with_db ~k:3 () in
  commit_random b seg 'r';
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Power_outage);
  let t2 =
    P.recover_replicated ~cluster:b.cluster ~local:(spare_id b) ~servers:b.servers ()
  in
  check_int "all three mirrors back" 3 (P.mirror_count t2);
  let seg2 = Option.get (P.segment t2 "db") in
  List.iter
    (fun (_, c) -> check_i64 "resynced" (P.checksum t2 seg2) c)
    (P.mirror_checksums t2 seg2)

let exhaustive_cut_atomicity ~k =
  (* Enumerate every packet cut of a 2-range transaction against [k]
     mirrors; recovery (probing all mirrors) must yield pre or post. *)
  let run cut =
    let b, seg = with_db ~k ~size:8192 () in
    let pre = P.checksum b.t seg in
    let txn = P.begin_transaction b.t in
    let sent = ref 0 in
    let exception Crash in
    let hook () = if !sent >= cut then raise Crash else incr sent in
    P.set_packet_hook b.t (Some hook);
    let crashed =
      try
        P.set_range txn seg ~off:100 ~len:40;
        P.set_packet_hook b.t None;
        P.write b.t seg ~off:100 (Bytes.make 40 'A');
        P.set_packet_hook b.t (Some hook);
        P.set_range txn seg ~off:5000 ~len:150;
        P.set_packet_hook b.t None;
        P.write b.t seg ~off:5000 (Bytes.make 150 'B');
        P.set_packet_hook b.t (Some hook);
        P.commit txn;
        false
      with Crash -> true
    in
    P.set_packet_hook b.t None;
    let post = P.checksum b.t seg in
    if crashed then begin
      ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
      let t2 =
        P.recover_replicated ~cluster:b.cluster ~local:(spare_id b) ~servers:b.servers ()
      in
      let seg2 = Option.get (P.segment t2 "db") in
      let got = P.checksum t2 seg2 in
      if got <> pre && got <> post then Alcotest.failf "atomicity violated at cut %d (k=%d)" cut k;
      List.iter
        (fun (_, c) -> check_i64 "mirrors agree" got c)
        (P.mirror_checksums t2 seg2);
      true
    end
    else false
  in
  let cut = ref 0 in
  while run !cut do
    incr cut
  done

let test_crash_atomicity_two_mirrors () = exhaustive_cut_atomicity ~k:2
let test_crash_atomicity_three_mirrors () = exhaustive_cut_atomicity ~k:3

let prop_replicated_crash_atomicity =
  QCheck.Test.make ~name:"random cut with 2 mirrors yields pre- or post-state" ~count:60
    QCheck.(pair (int_bound 50) (pair (int_bound 3000) (int_range 1 600)))
    (fun (cut, (off, len)) ->
      let b, seg = with_db ~k:2 ~size:4096 () in
      let off = min off (4096 - len) in
      let pre = P.checksum b.t seg in
      let txn = P.begin_transaction b.t in
      let sent = ref 0 in
      let exception Crash in
      let hook () = if !sent >= cut then raise Crash else incr sent in
      P.set_packet_hook b.t (Some hook);
      let crashed =
        try
          P.set_range txn seg ~off ~len;
          P.set_packet_hook b.t None;
          P.write b.t seg ~off (Bytes.make len 'R');
          P.set_packet_hook b.t (Some hook);
          P.commit txn;
          false
        with Crash -> true
      in
      P.set_packet_hook b.t None;
      let post = P.checksum b.t seg in
      if not crashed then true
      else begin
        ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
        let t2 =
          P.recover_replicated ~cluster:b.cluster ~local:(spare_id b) ~servers:b.servers ()
        in
        let seg2 = Option.get (P.segment t2 "db") in
        let got = P.checksum t2 seg2 in
        got = pre || got = post
      end)

let test_survives_k_minus_1_failures () =
  (* With three mirrors, lose the primary and two mirrors at once;
     the last mirror still recovers everything. *)
  let b, seg = with_db ~k:3 () in
  commit_random b seg 'k';
  let expect = P.checksum b.t seg in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Power_outage);
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Software_error);
  ignore (Cluster.crash_node b.cluster 2 Cluster.Failure.Hardware_error);
  let t2 =
    P.recover_replicated ~cluster:b.cluster ~local:(spare_id b) ~servers:b.servers ()
  in
  check_i64 "recovered from the last mirror" expect (P.checksum t2 (Option.get (P.segment t2 "db")));
  check_int "only one mirror in the new set" 1 (P.mirror_count t2)

let test_replication_cost_scales () =
  (* Each extra mirror adds remote traffic: k=2 commits are costlier
     than k=1, but far less than twice (local work is shared). *)
  let cost k =
    let b, seg = with_db ~k () in
    let t0 = Clock.now b.clock in
    commit_random b seg 'c';
    Clock.now b.clock - t0
  in
  let c1 = cost 1 and c2 = cost 2 in
  check_bool "k=2 dearer than k=1" true (c2 > c1);
  check_bool "but less than 2x" true (c2 < 2 * c1)

let suite =
  [
    ("replicated init validation", `Quick, test_init_validation);
    ("all mirrors stay in sync", `Quick, test_all_mirrors_in_sync);
    ("degraded mode on mirror death", `Quick, test_degraded_mode_on_mirror_death);
    ("all mirrors lost raises", `Quick, test_all_mirrors_lost_raises);
    ("mid-commit total mirror loss recovers", `Quick, test_mid_commit_total_loss_recovers);
    ("attach_mirror grows the set", `Quick, test_attach_mirror_grows_set);
    ("attach duplicate rejected", `Quick, test_attach_duplicate_rejected);
    ("detach_mirror", `Quick, test_detach_mirror);
    ("membership changes scrub open transactions", `Quick, test_membership_guards_during_txn);
    ("last live mirror cannot be detached", `Quick, test_detach_last_mirror_refused);
    ("highest epoch wins at recovery", `Quick, test_highest_epoch_wins);
    ("recovery reattaches surviving mirrors", `Quick, test_recovery_reattaches_survivors);
    ("crash atomicity, two mirrors, every cut", `Slow, test_crash_atomicity_two_mirrors);
    ("crash atomicity, three mirrors, every cut", `Slow, test_crash_atomicity_three_mirrors);
    QCheck_alcotest.to_alcotest prop_replicated_crash_atomicity;
    ("survives k-1 mirror failures", `Quick, test_survives_k_minus_1_failures);
    ("replication cost scaling", `Quick, test_replication_cost_scales);
  ]
