(* Harness.Costmodel: the paper's analytic packets/bytes-per-operation
   equations must match the NIC counters *exactly* on sequential
   disjoint debit-credit — across mirror counts, redundancy elision
   on/off and eager vs grouped commit — and a seeded mutation (a model
   parameterised differently from the engine, or a forged packet that
   the engine never sent) must surface as a typed drift alert. *)

open Sim
module P = Perseas
module Cm = Harness.Costmodel
module T = Harness.Testbed

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Zero drift on the eager/grouped disjoint matrix                     *)

let run_cell ~mirrors ~elision ~group ~txns =
  let config =
    { P.default_config with P.redundancy_elision = elision; group_commit = group }
  in
  let bed = T.replicated_bed ~config ~mirrors () in
  let t = bed.T.perseas in
  let module W = Workloads.Debit_credit.Make (P.Engine) in
  let rng = Rng.create 7 in
  let db = W.setup t ~params:Workloads.Debit_credit.small_params in
  let nic = Cluster.nic bed.T.cluster in
  (* Attach after setup and reset the counters at the same point: the
     model only sees the steady-state window, so its settled total must
     equal the NIC delta over that window. *)
  let model = Cm.create ~config:(P.config t) ~params:(Sci.Nic.params nic) () in
  P.set_sink t (Cm.sink model);
  Sci.Nic.reset_counters nic;
  for _ = 1 to txns do
    W.transaction db rng
  done;
  (* Drain anything still staged under group commit so every unit has
     fenced and the window's account can close. *)
  P.flush t;
  check_bool "workload stayed consistent" true (W.consistent db);
  (model, Sci.Nic.counters nic)

let test_zero_drift () =
  let cells =
    List.concat_map
      (fun mirrors ->
        List.concat_map
          (fun elision -> List.map (fun group -> (mirrors, elision, group)) [ 1; 8 ])
          [ true; false ])
      [ 1; 2; 3 ]
  in
  List.iter
    (fun (mirrors, elision, group) ->
      let label = Printf.sprintf "m%d elision=%b group=%d" mirrors elision group in
      let model, c = run_cell ~mirrors ~elision ~group ~txns:200 in
      check_int (label ^ ": zero drift") 0 (Cm.drift_count model);
      check_int (label ^ ": nothing pending") 0 (Cm.pending model);
      check_int (label ^ ": no unattributed packets") 0
        (Cm.cost_packets (Cm.unattributed model));
      check_bool (label ^ ": commit units settled") true (Cm.units_checked model > 0);
      let pred = Cm.predicted_total model in
      check_int (label ^ ": 64B packets exact") c.Sci.Nic.packets64 pred.Cm.pkts64;
      check_int (label ^ ": 16B packets exact") c.Sci.Nic.packets16 pred.Cm.pkts16;
      check_int (label ^ ": bytes exact") c.Sci.Nic.bytes_written pred.Cm.bytes)
    cells

(* ------------------------------------------------------------------ *)
(* Seeded mutation 1: model parameterised against the engine           *)

(* A model built with [optimized_memcpy] flipped relative to the engine
   re-derives a different packetisation for the same 224-byte undo
   record and 200-byte commit run (widened 64-byte lines vs a raw
   3x64+2x16 split), so the very first fence must raise drift. *)
let test_flipped_memcpy_drifts () =
  let bed = T.replicated_bed ~mirrors:1 () in
  let t = bed.T.perseas in
  let nic = Cluster.nic bed.T.cluster in
  let seg = P.malloc t ~name:"mut" ~size:4096 in
  P.init_remote_db t;
  let engine_cfg = P.config t in
  check_bool "engine default widens" true engine_cfg.P.optimized_memcpy;
  let model =
    Cm.create
      ~config:{ engine_cfg with P.optimized_memcpy = not engine_cfg.P.optimized_memcpy }
      ~params:(Sci.Nic.params nic) ()
  in
  P.set_sink t (Cm.sink model);
  let txn = P.begin_transaction t in
  P.set_range txn seg ~off:8 ~len:200;
  P.write t seg ~off:8 (Bytes.make 200 'x');
  P.commit txn;
  check_bool "parameter mutation caught as drift" true (Cm.drift_count model > 0);
  List.iter
    (fun (d : Cm.drift) ->
      check_bool "drift names the commit unit" true (d.Cm.d_unit <> "");
      check_bool "predicted <> measured" true (d.Cm.d_predicted <> d.Cm.d_measured))
    (Cm.alerts model)

(* ------------------------------------------------------------------ *)
(* Seeded mutation 2: forged packets the engine never sent             *)

(* Replay a hand-forged convoy straight into the model: one 64-byte
   data packet plus a fence for a convoy no transaction ever staged.
   The model's prediction for that unit is fence-only, so the forged
   data packet is a byte-level mismatch — a typed alert, not a crash
   and not silence. *)
let test_forged_packet_drifts () =
  let model = Cm.create ~config:P.default_config ~params:Sci.Params.default () in
  let pkt name args = { Trace.Event.name; cat = "sci"; at = Time.us 1.; args } in
  Cm.event model
    (pkt "pkt.full64"
       [ ("op", "flush_convoy"); ("tag", "data"); ("convoy", "c999"); ("node", "0");
         ("dir", "write"); ("len", "64") ]);
  check_int "no alert before the fence" 0 (Cm.drift_count model);
  check_int "forged unit is pending" 1 (Cm.pending model);
  Cm.event model
    (pkt "pkt.part16"
       [ ("op", "flush_convoy"); ("tag", "fence"); ("convoy", "c999"); ("node", "0");
         ("dir", "write"); ("len", "8") ]);
  check_int "fence settles the forged unit" 1 (Cm.units_checked model);
  check_int "forged packet caught as drift" 1 (Cm.drift_count model);
  (match Cm.alerts model with
  | [ d ] ->
      check (Alcotest.string) "drift names the forged convoy" "c999" d.Cm.d_unit;
      check_int "measured the forged bytes" (64 + 8) d.Cm.d_measured.Cm.bytes;
      check_bool "prediction was fence-only" true (d.Cm.d_predicted.Cm.bytes < d.Cm.d_measured.Cm.bytes)
  | _ -> Alcotest.fail "expected exactly one drift alert");
  check_int "ledger settled, nothing pending" 0 (Cm.pending model)

let suite =
  [
    Alcotest.test_case "zero drift: mirrors x elision x group matrix" `Quick test_zero_drift;
    Alcotest.test_case "mutation: flipped optimized_memcpy drifts" `Quick
      test_flipped_memcpy_drifts;
    Alcotest.test_case "mutation: forged convoy packet drifts" `Quick
      test_forged_packet_drifts;
  ]
