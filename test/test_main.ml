let () =
  Alcotest.run "perseas"
    [
      ("sim", Test_sim.suite);
      ("mem", Test_mem.suite);
      ("sci", Test_sci.suite);
      ("disk", Test_disk.suite);
      ("cluster", Test_cluster.suite);
      ("netram", Test_netram.suite);
      ("pager", Test_pager.suite);
      ("layout", Test_layout.suite);
      ("perseas", Test_perseas.suite);
      ("replication", Test_replication.suite);
      ("churn", Test_churn.suite);
      ("crashpoint", Test_crashpoint.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("iset", Test_iset.suite);
      ("concurrency", Test_concurrency.suite);
      ("elision", Test_elision.suite);
      ("baselines", Test_baselines.suite);
      ("remote-wal", Test_remote_wal.suite);
      ("workloads", Test_workloads.suite);
      ("file-meta", Test_file_meta.suite);
      ("kvstore", Test_kvstore.suite);
      ("btree", Test_btree.suite);
      ("pqueue", Test_pqueue.suite);
      ("engines-generic", Test_engines_generic.suite);
      ("trace", Test_trace.suite);
      ("tail", Test_tail.suite);
      ("costmodel", Test_costmodel.suite);
      ("forensics", Test_forensics.suite);
      ("telemetry", Test_telemetry.suite);
      ("harness", Test_harness.suite);
      ("availability", Test_availability.suite);
      ("sharding", Test_sharding.suite);
      ("integration", Test_integration.suite);
    ]
