(* Concurrency-era semantics: transaction identity, line-granular
   conflicts, group commit, and the invariants that silently assumed
   one transaction per engine before multiple clients existed. *)

open Sim
module P = Perseas
module Multi_client = Harness.Multi_client
module Crashpoint = Harness.Crashpoint

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64
let check_str = check Alcotest.string

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  server : Netram.Server.t;
  t : P.t;
}

let bed ?config ?(dram = 4 * 1024 * 1024) () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:dram ~power_supply:0 "primary";
        Cluster.spec ~dram_size:dram ~power_supply:1 "mirror";
        Cluster.spec ~dram_size:dram ~power_supply:2 "spare";
      ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  { clock; cluster; server; t = P.init ?config client }

let with_db ?config ?(size = 16384) () =
  let b = bed ?config () in
  let seg = P.malloc b.t ~name:"db" ~size in
  P.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db b.t;
  (b, seg)

let group_config ?(group = 4) () = { P.default_config with group_commit = group }

(* ------------------------------------------------------------------ *)
(* Transaction identity *)

let test_double_begin () =
  let b, _seg = with_db () in
  let a = P.begin_transaction ~client:"alice" b.t in
  (* Same client again: a typed error naming the offender. *)
  (try
     ignore (P.begin_transaction ~client:"alice" b.t);
     Alcotest.fail "expected Double_begin"
   with P.Double_begin who -> check_str "offending client named" "alice" who);
  (* A distinct client is legal, and ids are distinct. *)
  let c = P.begin_transaction ~client:"carol" b.t in
  check_int "two in flight" 2 (P.open_txn_count b.t);
  check_bool "distinct ids" true (P.txn_id a <> P.txn_id c);
  check_str "client recorded" "carol" (P.txn_client c);
  P.abort a;
  (* The name frees on close: alice may begin again. *)
  let a2 = P.begin_transaction ~client:"alice" b.t in
  P.abort a2;
  P.abort c;
  check_int "all closed" 0 (P.open_txn_count b.t)

(* ------------------------------------------------------------------ *)
(* Conflicts: the younger side always loses *)

let test_conflict_younger_requester_aborts () =
  let b, seg = with_db () in
  let before = P.checksum b.t seg in
  let older = P.begin_transaction ~client:"older" b.t in
  P.set_range older seg ~off:256 ~len:64;
  P.write b.t seg ~off:256 (Bytes.make 64 'o');
  let younger = P.begin_transaction ~client:"younger" b.t in
  P.set_range younger seg ~off:1024 ~len:32;
  P.write b.t seg ~off:1024 (Bytes.make 32 'y');
  (* The younger declarer hits the older holder's line: the requester
     is the younger party, so it aborts — rolled back and closed. *)
  (try
     P.set_range younger seg ~off:300 ~len:8;
     Alcotest.fail "expected Conflict"
   with P.Conflict { younger = y; older = o } ->
     check_int "younger id" (P.txn_id younger) y;
     check_int "older id" (P.txn_id older) o);
  check_int "loser closed" 1 (P.open_txn_count b.t);
  (* The loser's earlier write is already undone; the older holder's
     write survives and commits. *)
  check_str "loser's bytes rolled back"
    (Bytes.to_string (Bytes.init 32 (fun i -> Char.chr ((1024 + i) land 0xff))))
    (Bytes.to_string (P.read b.t seg ~off:1024 ~len:32));
  P.commit older;
  check_bool "winner committed" true (P.checksum b.t seg <> before);
  check_i64 "mirror agrees" (P.checksum b.t seg) (P.mirror_checksum b.t seg)

let test_conflict_younger_holder_doomed () =
  let b, seg = with_db () in
  let older = P.begin_transaction ~client:"older" b.t in
  let younger = P.begin_transaction ~client:"younger" b.t in
  P.set_range younger seg ~off:512 ~len:64;
  P.write b.t seg ~off:512 (Bytes.make 64 'y');
  (* The older transaction declares the younger holder's line: the
     holder is doomed on the spot (rolled back immediately) and the
     older declaration proceeds. *)
  P.set_range older seg ~off:520 ~len:8;
  check_str "doomed holder's bytes already rolled back"
    (Bytes.to_string (Bytes.init 64 (fun i -> Char.chr ((512 + i) land 0xff))))
    (Bytes.to_string (P.read b.t seg ~off:512 ~len:64));
  (* The victim only learns at its next step: validate surfaces the
     deferred Conflict, after which the transaction is closed. *)
  (try
     P.validate younger;
     Alcotest.fail "expected deferred Conflict"
   with P.Conflict { younger = y; older = o } ->
     check_int "victim id" (P.txn_id younger) y;
     check_int "winner id" (P.txn_id older) o);
  P.write b.t seg ~off:520 (Bytes.make 8 'O');
  P.commit older;
  check_i64 "winner's commit replicated" (P.checksum b.t seg) (P.mirror_checksum b.t seg)

let test_doomed_abort_is_silent () =
  let b, seg = with_db () in
  let older = P.begin_transaction ~client:"older" b.t in
  let younger = P.begin_transaction ~client:"younger" b.t in
  P.set_range younger seg ~off:512 ~len:8;
  P.set_range older seg ~off:512 ~len:8;
  (* A victim that goes straight to abort (never validating) must not
     blow up: the rollback already happened at doom time. *)
  P.abort younger;
  P.abort older;
  check_int "both closed" 0 (P.open_txn_count b.t)

(* ------------------------------------------------------------------ *)
(* Group commit *)

let test_group_flush_matches_serial_image () =
  let payload c = Bytes.make 48 c in
  let script t seg commit =
    List.iter
      (fun (client, off, c) ->
        let txn = P.begin_transaction ~client t in
        P.set_range txn seg ~off ~len:48;
        P.write t seg ~off (payload c);
        commit txn)
      [ ("a", 0, 'A'); ("b", 512, 'B'); ("c", 1024, 'C'); ("d", 1536, 'D') ]
  in
  (* Group engine: all four stage, one flush at the fourth commit. *)
  let bg, sg = with_db ~config:(group_config ()) () in
  let s0 = P.stats bg.t in
  let staged_seen = ref 0 in
  script bg.t sg (fun txn ->
      P.commit txn;
      staged_seen := max !staged_seen (P.staged_count bg.t));
  let s1 = P.stats bg.t in
  check_int "queue drained by the full-window flush" 0 (P.staged_count bg.t);
  check_bool "commits really were staged" true (!staged_seen >= 1);
  check_int "one group flush" 1 (s1.P.group_flushes - s0.P.group_flushes);
  check_int "four transactions in it" 4 (s1.P.group_commit_txns - s0.P.group_commit_txns);
  (* Eager engine: same writes, one commit each. *)
  let be, se = with_db () in
  script be.t se (fun txn -> P.commit txn);
  check_i64 "grouped image equals serialized image" (P.checksum be.t se) (P.checksum bg.t sg);
  check_i64 "grouped mirror equals local" (P.checksum bg.t sg) (P.mirror_checksum bg.t sg)

let test_commit_packets_sums_to_nic_delta () =
  (* Eager: the dry-run equals the commit's own packet cost. *)
  let b, seg = with_db () in
  let nic = Cluster.nic b.cluster in
  let packets () =
    let c = Sci.Nic.counters nic in
    c.Sci.Nic.packets64 + c.Sci.Nic.packets16
  in
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:0 ~len:100;
  P.write b.t seg ~off:0 (Bytes.make 100 'e');
  let predicted = P.commit_packets txn in
  let p0 = packets () in
  P.commit txn;
  check_int "eager dry-run equals measured" predicted (packets () - p0);
  (* Group: each member's dry-run is its marginal cost; the sum over
     the batch must equal the flush's measured packets exactly. *)
  let b, seg = with_db ~config:(group_config ~group:8 ()) () in
  let nic = Cluster.nic b.cluster in
  let packets () =
    let c = Sci.Nic.counters nic in
    c.Sci.Nic.packets64 + c.Sci.Nic.packets16
  in
  let total = ref 0 in
  List.iter
    (fun (client, off, len) ->
      let txn = P.begin_transaction ~client b.t in
      P.set_range txn seg ~off ~len;
      P.write b.t seg ~off (Bytes.make len 'g');
      total := !total + P.commit_packets txn;
      P.commit txn)
    [ ("a", 0, 100); ("b", 512, 8); ("c", 1024, 300); ("d", 2048, 64) ];
  let p0 = packets () in
  P.flush b.t;
  check_int "sum of marginal dry-runs equals the flush's NIC delta" !total (packets () - p0)

let test_overflow_mid_group_aborts_only_overflower () =
  let config = { (group_config ~group:8 ()) with undo_capacity = 4096 } in
  let b, seg = with_db ~config () in
  let commit_range client off c =
    let txn = P.begin_transaction ~client b.t in
    P.set_range txn seg ~off ~len:64;
    P.write b.t seg ~off (Bytes.make 64 c);
    P.commit txn
  in
  commit_range "a" 0 'A';
  commit_range "b" 512 'B';
  check_int "both staged" 2 (P.staged_count b.t);
  let expect_a = Bytes.to_string (P.read b.t seg ~off:0 ~len:64) in
  let expect_b = Bytes.to_string (P.read b.t seg ~off:512 ~len:64) in
  (* The third transaction blows the log: the staged pair is flushed
     (retired durably), then the overflow surfaces to the offender
     alone. *)
  let huge = P.begin_transaction ~client:"c" b.t in
  (try
     P.set_range huge seg ~off:4096 ~len:4090;
     Alcotest.fail "expected Undo_overflow"
   with P.Undo_overflow -> ());
  P.abort huge;
  check_int "queue was flushed by the overflow" 0 (P.staged_count b.t);
  (* Byte identity of the survivors, locally and on the mirror. *)
  check_str "a's bytes survive" expect_a (Bytes.to_string (P.read b.t seg ~off:0 ~len:64));
  check_str "b's bytes survive" expect_b (Bytes.to_string (P.read b.t seg ~off:512 ~len:64));
  check_i64 "mirror byte-identical" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  (* And the engine keeps working. *)
  commit_range "d" 1024 'D';
  P.flush b.t;
  check_i64 "later commit clean" (P.checksum b.t seg) (P.mirror_checksum b.t seg)

(* ------------------------------------------------------------------ *)
(* Membership under load: heal a mirror while four clients run *)

let test_heal_mirror_under_four_clients () =
  (* Primary on node 0, two mirrors, one spare for the heal. *)
  let clock = Clock.create () in
  let dram = 8 * 1024 * 1024 in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:dram ~power_supply:0 "primary";
        Cluster.spec ~dram_size:dram ~power_supply:1 "mirror0";
        Cluster.spec ~dram_size:dram ~power_supply:2 "mirror1";
        Cluster.spec ~dram_size:dram ~power_supply:3 "spare";
      ]
  in
  let servers = List.init 2 (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  let t = P.init_replicated ~config:{ P.default_config with group_commit = 4 } clients in
  let module W = Workloads.Debit_credit.Make (P.Engine) in
  let rng = Rng.create 11 in
  let db = W.setup t ~params:Workloads.Debit_credit.small_params in
  let spec =
    {
      Multi_client.prepare = (fun _ -> W.draw db rng);
      declare = (fun txn d -> W.declare db txn d);
      apply = (fun d -> W.apply db d);
    }
  in
  ignore (Multi_client.run t ~clients:4 ~total:100 spec);
  (* Kill a mirror and keep the four clients running degraded. *)
  ignore (Cluster.crash_node cluster 2 Cluster.Failure.Hardware_error);
  ignore (Multi_client.run t ~clients:4 ~total:50 spec);
  check_int "down a mirror" 1 (P.mirror_count t);
  (* Heal with four transactions genuinely in flight: begin + declare
     on every client (disjoint history lines, so they never conflict
     with each other — the point is concurrency with the attach, not
     with each other), attach the spare mid-stream, then finish them.
     The attach must drain the staged queue and scrub the open
     transactions' pre-images onto the joiner. *)
  let hist = db.W.history in
  let open_txns =
    List.init 4 (fun i ->
        let txn = P.begin_transaction ~client:(Multi_client.client_name i) t in
        P.set_range txn hist ~off:(i * 128) ~len:64;
        (txn, i))
  in
  P.attach_mirror t ~server:(Netram.Server.create (Cluster.node cluster 3));
  check_int "healed to two mirrors" 2 (P.mirror_count t);
  List.iter
    (fun (txn, i) ->
      P.write t hist ~off:(i * 128) (Bytes.make 64 (Char.chr (Char.code 'p' + i)));
      P.commit txn)
    open_txns;
  P.flush t;
  ignore (Multi_client.run t ~clients:4 ~total:100 spec);
  P.flush t;
  check_bool "workload invariant holds" true (W.consistent db);
  check_int "mirrors byte-identical after the heal" 0 (List.length (P.verify_mirrors t))

(* ------------------------------------------------------------------ *)
(* Crash sweep with transactions in flight *)

let test_crash_sweep_concurrent () =
  let r = Crashpoint.sweep (Crashpoint.concurrent_scenario ~mirrors:1 ()) in
  check_bool "enough packets to mean anything" true (r.Crashpoint.total_packets > 20);
  let crashes = List.length (List.filter (fun p -> p.Crashpoint.crashed) r.Crashpoint.points) in
  check_int "every boundary crashed" r.Crashpoint.total_packets crashes;
  check_bool "some points recovered to the pre image" true (r.Crashpoint.old_images > 0);
  check_bool "some points recovered to the post image" true (r.Crashpoint.new_images > 0);
  check_bool "some recoveries replayed undo" true (r.Crashpoint.repaired > 0);
  (* Mirror victim: the primary must finish degraded at every cut. *)
  let r2 =
    Crashpoint.sweep ~victim:(Crashpoint.Mirror 0) (Crashpoint.concurrent_scenario ~mirrors:2 ())
  in
  let crashes2 = List.length (List.filter (fun p -> p.Crashpoint.crashed) r2.Crashpoint.points) in
  check_int "every mirror-victim boundary crashed" r2.Crashpoint.total_packets crashes2

(* ------------------------------------------------------------------ *)
(* Differential oracle: concurrent disjoint schedules serialize *)

type txn_spec = { ranges : (int * int) list; fill : char }

let spec_gen ~stripe ~n =
  (* Each transaction owns a disjoint [stripe]-byte slice of the
     segment, so any interleaving is conflict-free by construction. *)
  let range_gen base =
    QCheck.Gen.(
      map2
        (fun jitter len -> (base + jitter, 1 + len))
        (int_bound (stripe - 130)) (int_bound 63))
  in
  QCheck.Gen.(
    map
      (fun specs -> specs)
      (flatten_l
         (List.init n (fun i ->
              map2
                (fun r1 extra ->
                  { ranges = (r1 :: extra); fill = Char.chr (Char.code 'a' + (i mod 26)) })
                (range_gen (i * stripe))
                (map (fun o -> Option.to_list o) (opt (range_gen (i * stripe))))))))

let overlapping (o1, l1) (o2, l2) =
  (* 64-byte line granularity, like the engine. *)
  let lo1 = o1 / 64 and hi1 = (o1 + l1 - 1) / 64 in
  let lo2 = o2 / 64 and hi2 = (o2 + l2 - 1) / 64 in
  not (hi1 < lo2 || hi2 < lo1)

let sanitize specs =
  (* Drop a transaction's second range if it line-collides with its
     first (cross-transaction collisions are impossible by striping;
     the engine would merge same-transaction overlaps anyway — the
     oracle wants pure disjoint write-sets). *)
  List.map
    (fun s ->
      match s.ranges with
      | [ r1; r2 ] when overlapping r1 r2 -> { s with ranges = [ r1 ] }
      | _ -> s)
    specs

let run_concurrent ~clients ~group specs bits =
  let b, seg = with_db ~config:(group_config ~group ()) ~size:(64 * 1024) () in
  let order = ref [] in
  let opened = Queue.create () in
  let commit_oldest () =
    let i, txn = Queue.pop opened in
    P.commit txn;
    order := i :: !order
  in
  List.iteri
    (fun i s ->
      if Queue.length opened >= clients then commit_oldest ();
      let txn = P.begin_transaction ~client:(Printf.sprintf "c%d" (i mod clients)) b.t in
      (* One client name per slot would double-begin; use the txn index
         modulo a rotating pool and commit the oldest first when the
         pool wraps onto a still-open name. *)
      List.iter (fun (off, len) -> P.set_range txn seg ~off ~len) s.ranges;
      List.iter (fun (off, len) -> P.write b.t seg ~off (Bytes.make len s.fill)) s.ranges;
      Queue.push (i, txn) opened;
      if (bits lsr (i land 30)) land 1 = 1 && Queue.length opened > 1 then commit_oldest ())
    specs;
  while not (Queue.is_empty opened) do
    commit_oldest ()
  done;
  P.flush b.t;
  let s = P.stats b.t in
  (P.checksum b.t seg, P.mirror_checksum b.t seg, s.P.conflicts, List.rev !order)

let run_serial specs order =
  let b, seg = with_db ~size:(64 * 1024) () in
  List.iter
    (fun i ->
      let s = List.nth specs i in
      let txn = P.begin_transaction b.t in
      List.iter (fun (off, len) -> P.set_range txn seg ~off ~len) s.ranges;
      List.iter (fun (off, len) -> P.write b.t seg ~off (Bytes.make len s.fill)) s.ranges;
      P.commit txn)
    order;
  (P.checksum b.t seg, P.mirror_checksum b.t seg)

let prop_concurrent_serializes =
  let stripe = 1024 in
  let gen =
    QCheck.Gen.(
      int_range 4 24 >>= fun n ->
      spec_gen ~stripe ~n >>= fun specs ->
      map2 (fun bits group -> (specs, bits, group)) (int_bound 0x3FFFFFFF) (int_range 2 8))
  in
  QCheck.Test.make ~name:"concurrent disjoint schedules serialize" ~count:60
    (QCheck.make gen) (fun (specs, bits, group) ->
      let specs = sanitize specs in
      let local, mirror, conflicts, order = run_concurrent ~clients:4 ~group specs bits in
      if conflicts <> 0 then QCheck.Test.fail_report "disjoint write-sets conflicted";
      if List.sort compare order <> List.init (List.length specs) (fun i -> i) then
        QCheck.Test.fail_report "driver lost a transaction";
      let slocal, smirror = run_serial specs order in
      if local <> slocal then QCheck.Test.fail_report "concurrent image diverged from serialized";
      if mirror <> local then QCheck.Test.fail_report "mirror diverged from local";
      if smirror <> slocal then QCheck.Test.fail_report "serial mirror diverged";
      true)

let suite =
  [
    Alcotest.test_case "double begin typed, distinct clients legal" `Quick test_double_begin;
    Alcotest.test_case "younger requester aborts on conflict" `Quick
      test_conflict_younger_requester_aborts;
    Alcotest.test_case "younger holder is doomed, surfaces at validate" `Quick
      test_conflict_younger_holder_doomed;
    Alcotest.test_case "doomed victim may abort silently" `Quick test_doomed_abort_is_silent;
    Alcotest.test_case "group flush equals serialized image" `Quick
      test_group_flush_matches_serial_image;
    Alcotest.test_case "commit_packets marginals sum to NIC delta" `Quick
      test_commit_packets_sums_to_nic_delta;
    Alcotest.test_case "overflow mid-group aborts only the overflower" `Quick
      test_overflow_mid_group_aborts_only_overflower;
    Alcotest.test_case "heal a mirror while four clients run" `Slow
      test_heal_mirror_under_four_clients;
    Alcotest.test_case "crash sweep with transactions in flight" `Slow
      test_crash_sweep_concurrent;
    QCheck_alcotest.to_alcotest prop_concurrent_serializes;
  ]
