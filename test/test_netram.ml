open Sim
module Node = Cluster.Node
module Server = Netram.Server
module Client = Netram.Client

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let bed () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:(1 lsl 20) ~power_supply:0 "local";
        Cluster.spec ~dram_size:(1 lsl 20) ~power_supply:1 "remote";
        Cluster.spec ~dram_size:(1 lsl 20) ~power_supply:2 "third";
      ]
  in
  let server = Server.create (Cluster.node cluster 1) in
  let client = Client.create ~cluster ~local:0 ~server in
  (clock, cluster, server, client)

(* ------------------------------------------------------------------ *)
(* Server *)

let test_export_aligned_and_named () =
  let _, _, server, _ = bed () in
  let h = Server.export server ~name:"seg-a" ~size:100 in
  check_int "64-byte aligned" 0 (Netram.Remote_segment.base h mod 64);
  check_int "size" 100 (Netram.Remote_segment.len h);
  check_bool "lookup finds it" true (Server.lookup server ~name:"seg-a" = Some h);
  check_int "exported bytes" 100 (Server.exported_bytes server)

let test_export_duplicate_name () =
  let _, _, server, _ = bed () in
  ignore (Server.export server ~name:"dup" ~size:10);
  try
    ignore (Server.export server ~name:"dup" ~size:10);
    Alcotest.fail "expected duplicate-name failure"
  with Failure _ -> ()

let test_release_frees_memory () =
  let _, _, server, _ = bed () in
  let h = Server.export server ~name:"gone" ~size:256 in
  Server.release server h;
  check_bool "lookup empty" true (Server.lookup server ~name:"gone" = None);
  check_int "bytes zero" 0 (Server.exported_bytes server);
  (* The space can be re-exported. *)
  ignore (Server.export server ~name:"gone" ~size:256)

let test_server_dies_with_node () =
  let _, cluster, server, _ = bed () in
  ignore (Cluster.crash_node cluster 1 Cluster.Failure.Software_error);
  check_bool "dead" false (Server.is_alive server);
  (try
     ignore (Server.export server ~name:"x" ~size:8);
     Alcotest.fail "expected failure on dead server"
   with Failure _ -> ());
  (* Even after the node restarts, the old server (and its directory)
     is gone for good. *)
  Cluster.restart_node cluster 1;
  check_bool "still dead after restart" false (Server.is_alive server)

let test_export_exhaustion () =
  let _, _, server, _ = bed () in
  try
    ignore (Server.export server ~name:"too-big" ~size:(2 lsl 20));
    Alcotest.fail "expected out-of-memory failure"
  with Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Client *)

let test_malloc_write_read_roundtrip () =
  let clock, _, _, client = bed () in
  let h = Client.malloc client ~name:"db" ~size:1024 in
  let local = Node.dram (Client.local_node client) in
  Mem.Image.write_bytes local ~off:0 (Bytes.of_string "mirror-me");
  let t0 = Clock.now clock in
  Client.write client h ~seg_off:100 ~src_off:0 ~len:9;
  check_bool "write charged" true (Clock.now clock > t0);
  (* Read it back into a different local offset. *)
  Client.read client h ~seg_off:100 ~dst_off:500 ~len:9;
  check Alcotest.string "roundtrip" "mirror-me" (Bytes.to_string (Mem.Image.read_bytes local ~off:500 ~len:9))

let test_rpc_charges_time () =
  let clock, _, _, client = bed () in
  let t0 = Clock.now clock in
  ignore (Client.malloc client ~name:"x" ~size:64);
  check_bool "rpc cost" true (Clock.now clock - t0 >= Client.rpc_time client)

let test_connect_after_client_crash () =
  let _, cluster, server, client = bed () in
  let h = Client.malloc client ~name:"persistent" ~size:128 in
  let local = Node.dram (Client.local_node client) in
  Mem.Image.write_bytes local ~off:0 (Bytes.of_string "survives");
  Client.write client h ~seg_off:0 ~src_off:0 ~len:8;
  (* Local node dies; a brand-new client on the third node reconnects
     by name and reads the mirrored bytes. *)
  ignore (Cluster.crash_node cluster 0 Cluster.Failure.Power_outage);
  let client2 = Client.create ~cluster ~local:2 ~server in
  let h2 =
    match Client.connect client2 ~name:"persistent" with
    | Some h2 -> h2
    | None -> Alcotest.fail "connect_segment found nothing"
  in
  check_int "same placement" (Netram.Remote_segment.base h) (Netram.Remote_segment.base h2);
  Client.read client2 h2 ~seg_off:0 ~dst_off:0 ~len:8;
  check Alcotest.string "mirrored data visible from third node" "survives"
    (Bytes.to_string (Mem.Image.read_bytes (Node.dram (Cluster.node cluster 2)) ~off:0 ~len:8))

let test_stale_handle_after_server_crash () =
  let _, cluster, _, client = bed () in
  let h = Client.malloc client ~name:"stale" ~size:64 in
  ignore (Cluster.crash_node cluster 1 Cluster.Failure.Software_error);
  Cluster.restart_node cluster 1;
  try
    Client.write client h ~seg_off:0 ~src_off:0 ~len:8;
    Alcotest.fail "expected stale-handle failure"
  with Client.Unreachable _ -> ()

let test_range_checks () =
  let _, _, _, client = bed () in
  let h = Client.malloc client ~name:"bounds" ~size:64 in
  try
    Client.write client h ~seg_off:60 ~src_off:0 ~len:8;
    Alcotest.fail "expected range failure"
  with Invalid_argument _ -> ()

let test_same_node_client_rejected () =
  let _, cluster, server, _ = bed () in
  try
    ignore (Client.create ~cluster ~local:1 ~server);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_write_u64_roundtrip () =
  let _, _, _, client = bed () in
  let h = Client.malloc client ~name:"word" ~size:64 in
  Client.write_u64 client h ~seg_off:8 0x0123456789abcdefL;
  check Alcotest.int64 "u64" 0x0123456789abcdefL (Client.read_u64 client h ~seg_off:8)

let test_mirror_survives_local_power_outage () =
  (* The paper's core scenario: primary and mirror on different power
     supplies; losing the primary's supply leaves the mirror intact. *)
  let _, cluster, server, client = bed () in
  let h = Client.malloc client ~name:"db" ~size:64 in
  let local = Node.dram (Client.local_node client) in
  Mem.Image.write_bytes local ~off:0 (Bytes.of_string "critical");
  Client.write client h ~seg_off:0 ~src_off:0 ~len:8;
  let downed = Cluster.crash_power_supply cluster 0 in
  check (Alcotest.list Alcotest.int) "only the primary died" [ 0 ] downed;
  check_bool "server alive" true (Server.is_alive server);
  let remote = Node.dram (Cluster.node cluster 1) in
  check Alcotest.string "mirror holds the bytes" "critical"
    (Bytes.to_string (Mem.Image.read_bytes remote ~off:(Netram.Remote_segment.base h) ~len:8))

let test_exports_listing () =
  let _, _, server, _ = bed () in
  let a = Server.export server ~name:"a" ~size:100 in
  let b = Server.export server ~name:"b" ~size:200 in
  let exports = Server.exports server in
  check_int "two exports" 2 (List.length exports);
  (* Ascending base order. *)
  check_bool "sorted by base" true
    (List.map Netram.Remote_segment.base exports
    = List.sort compare [ Netram.Remote_segment.base a; Netram.Remote_segment.base b ]);
  check_int "bytes" 300 (Server.exported_bytes server)

let test_multi_hop_costs_more () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      (List.init 5 (fun i -> Cluster.spec ~dram_size:(1 lsl 20) ~power_supply:i (string_of_int i)))
  in
  (* Server 4 is four hops from node 0 on the unidirectional ring. *)
  let far_server = Server.create (Cluster.node cluster 4) in
  let near_server = Server.create (Cluster.node cluster 1) in
  let far = Client.create ~cluster ~local:0 ~server:far_server in
  let near = Client.create ~cluster ~local:0 ~server:near_server in
  let h_far = Client.malloc far ~name:"far" ~size:64 in
  let h_near = Client.malloc near ~name:"near" ~size:64 in
  let cost client h =
    let t0 = Clock.now clock in
    Client.write client h ~seg_off:0 ~src_off:0 ~len:8;
    Clock.now clock - t0
  in
  check_bool "more hops, more latency" true (cost far h_far > cost near h_near)

let test_write_after_free_fails () =
  let _, _, _, client = bed () in
  let h = Client.malloc client ~name:"temp" ~size:64 in
  Client.free client h;
  try
    Client.write client h ~seg_off:0 ~src_off:0 ~len:8;
    Alcotest.fail "expected failure on freed segment"
  with Failure _ ->
    (* The memory is genuinely reusable. *)
    ignore (Client.malloc client ~name:"temp" ~size:64)

let suite =
  [
    ("server: export aligned and named", `Quick, test_export_aligned_and_named);
    ("server: duplicate names rejected", `Quick, test_export_duplicate_name);
    ("server: release frees memory", `Quick, test_release_frees_memory);
    ("server: dies with its node", `Quick, test_server_dies_with_node);
    ("server: exhaustion reported", `Quick, test_export_exhaustion);
    ("client: malloc/write/read roundtrip", `Quick, test_malloc_write_read_roundtrip);
    ("client: rpc charges time", `Quick, test_rpc_charges_time);
    ("client: connect_segment after client crash", `Quick, test_connect_after_client_crash);
    ("client: stale handle after server reboot", `Quick, test_stale_handle_after_server_crash);
    ("client: range checks", `Quick, test_range_checks);
    ("client: same-node client rejected", `Quick, test_same_node_client_rejected);
    ("client: u64 roundtrip", `Quick, test_write_u64_roundtrip);
    ("mirror survives primary power outage", `Quick, test_mirror_survives_local_power_outage);
    ("server: exports listing and accounting", `Quick, test_exports_listing);
    ("client: ring distance affects latency", `Quick, test_multi_hop_costs_more);
    ("client: write after free fails", `Quick, test_write_after_free_fails);
  ]
