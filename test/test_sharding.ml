(* The sharded multi-primary cluster: shard-map/phase units, routing
   and virtual-time parallelism, cross-shard transactions through the
   STAR-style single-master phases, the monitor's cross-shard rule,
   supervisor isolation across shards, shard failover, and the
   crash-point sweeps at shard-commit and phase-fence boundaries. *)

open Sim
module P = Perseas
module SM = Cluster.Shard_map
module Phase = Cluster.Phase
module S = Harness.Sharding
module CP = Harness.Crashpoint

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Shard map *)

let test_map_hash () =
  let m = SM.create ~shards:4 () in
  let hits = Array.make 4 0 in
  for key = 0 to 4_000 do
    let s = SM.owner m ~key in
    check_bool "in range" true (s >= 0 && s < 4);
    check_int "stable" s (SM.owner m ~key);
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri (fun i n -> check_bool (Printf.sprintf "shard %d loaded" i) true (n > 500)) hits

let test_map_range () =
  let m = SM.create ~strategy:(SM.Range { span = 1000 }) ~shards:4 () in
  check_int "first key" 0 (SM.owner m ~key:0);
  check_int "last key" 3 (SM.owner m ~key:999);
  (* local indices are dense per shard: 0.. within each owner *)
  for key = 0 to 999 do
    let li = SM.local_index m ~key in
    check_bool "local in capacity" true (li >= 0 && li < SM.capacity m ~span:1000)
  done;
  check_int "monotone split" 1 (SM.owner m ~key:250)

let test_phase () =
  let p = Phase.create ~interval:(Time.us 100.) () in
  check_bool "starts partitioned" true (Phase.kind p = Phase.Partitioned);
  check_bool "not due with empty backlog" false (Phase.due p ~now:(Time.us 500.));
  Phase.enqueue p;
  check_bool "not due before interval" false (Phase.due p ~now:(Time.us 50.));
  check_bool "due" true (Phase.due p ~now:(Time.us 150.));
  Phase.begin_single_master p ~at:(Time.us 150.);
  check_bool "single master" true (Phase.kind p = Phase.Single_master);
  Phase.end_single_master p ~drained:1 ~at:(Time.us 160.);
  check_int "backlog drained" 0 (Phase.backlog p);
  check_int "one switch" 1 (Phase.single_master_phases p);
  check_int "two switch records" 2 (List.length (Phase.switches p))

(* ------------------------------------------------------------------ *)
(* Routing and parallelism *)

let small = Workloads.Debit_credit.small_params

let test_routing () =
  let bed = S.make_bed ~shards:4 () in
  let l = S.load_debit_credit ~params:small bed in
  let seen = Array.make 4 0 in
  for key = 0 to 199 do
    let s =
      P.Shard.submit bed.S.router ~key (fun db txn ->
          let d = S.W.draw l.S.l_dbs.(P.Shard.owner bed.S.router ~key) l.S.l_rngs.(0) in
          ignore db;
          S.W.declare l.S.l_dbs.(P.Shard.owner bed.S.router ~key) txn d;
          S.W.apply l.S.l_dbs.(P.Shard.owner bed.S.router ~key) d)
    in
    check_int "routed to owner" (P.Shard.owner bed.S.router ~key) s;
    seen.(s) <- seen.(s) + 1
  done;
  check_int "all routed" 200 (Array.fold_left ( + ) 0 seen);
  check_bool "spread" true (Array.for_all (fun n -> n > 0) seen);
  check_bool "consistent" true (S.consistent l)

(* Virtual time: the same single-shard work on 4 shards must finish in
   well under the 1-shard time — shards commit on independent clocks. *)
let test_parallel_speedup () =
  let elapsed shards =
    let bed = S.make_bed ~shards () in
    let l = S.load_debit_credit ~params:small ~clients:2 bed in
    (* Setup (init_remote_db per shard) costs the same on every shard;
       measure the commit window only, from the quiesced frontier. *)
    let t0 = P.Shard.now bed.S.router in
    ignore (S.run l ~total:200 ());
    Time.to_us (P.Shard.now bed.S.router - t0)
  in
  let t1 = elapsed 1 and t4 = elapsed 4 in
  check_bool
    (Printf.sprintf "4 shards at least 3x faster (1 shard: %.0fus, 4 shards: %.0fus)" t1 t4)
    true
    (t4 < t1 /. 3.)

(* ------------------------------------------------------------------ *)
(* Cross-shard transactions *)

let test_cross_shard () =
  let bed = S.make_bed ~shards:2 ~interval:(Time.us 200.) () in
  let monitors =
    Array.init 2 (fun s ->
        let m = Trace.Monitor.create () in
        P.set_sink (P.Shard.db bed.S.router s) (Trace.Monitor.sink m);
        m)
  in
  let l = S.load_debit_credit ~params:small bed in
  let stats = S.run l ~total:300 ~cross_every:5 () in
  check_bool "cross transactions committed" true (stats.Harness.Multi_client.ss_cross_committed > 0);
  check_bool "phase switches happened" true (stats.Harness.Multi_client.ss_switches > 0);
  check_int "backlog drained" 0 (P.Shard.backlog bed.S.router);
  check_bool "back in partitioned phase" true
    (Phase.kind (P.Shard.phase bed.S.router) = Phase.Partitioned);
  check_bool "consistent" true (S.consistent l);
  Array.iteri
    (fun s m ->
      check_int (Printf.sprintf "monitor %d silent" s) 0 (Trace.Monitor.alert_count m))
    monitors;
  (* The router's own bookkeeping matches the driver's. *)
  let rs = P.Shard.stats bed.S.router in
  check_int "router cross count" stats.Harness.Multi_client.ss_cross_committed
    rs.P.Shard.cross_committed

(* The transfers are zero-sum across shards: the global account total
   is the sum of per-shard single-shard deltas only, and each shard's
   own TPC-B invariant already pins those — so the cross pieces must
   cancel exactly. *)
let test_cross_zero_sum () =
  let bed = S.make_bed ~shards:3 () in
  let l = S.load_debit_credit ~params:small bed in
  ignore (S.run l ~total:150 ~cross_every:3 ());
  check_bool "every shard consistent" true (S.consistent l)

(* Undeclared shard access from a cross body must be rejected. *)
let test_cross_undeclared () =
  let bed = S.make_bed ~shards:2 () in
  let l = S.load_debit_credit ~params:small bed in
  ignore l;
  (* submit_cross may tick straight into a drain, so the rejection can
     surface from either call. *)
  match
    ignore (P.Shard.submit_cross bed.S.router ~shards:[ 0 ] (fun get -> ignore (get 1)));
    ignore (P.Shard.drain bed.S.router)
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "undeclared shard access not rejected"

(* ------------------------------------------------------------------ *)
(* Monitor: the STAR rule *)

let instant ~name ~args = { Trace.Event.name; cat = "cluster"; at = Time.us 1.; args }

let test_monitor_cross_rule () =
  (* A cross commit with no phase declaration: default phase is
     partitioned, so it must alert. *)
  let m = Trace.Monitor.create () in
  Trace.Monitor.event m (instant ~name:"cross_commit" ~args:[ ("xid", "7"); ("shards", "0+1") ]);
  check_int "alert in default phase" 1 (Trace.Monitor.alert_count m);
  (* Declared single-master: silent; back to partitioned: alerts again. *)
  let m = Trace.Monitor.create () in
  Trace.Monitor.event m (instant ~name:"phase_switch" ~args:[ ("phase", "single_master") ]);
  Trace.Monitor.event m (instant ~name:"cross_commit" ~args:[ ("xid", "8") ]);
  check_int "silent in single-master" 0 (Trace.Monitor.alert_count m);
  Trace.Monitor.event m (instant ~name:"phase_switch" ~args:[ ("phase", "partitioned") ]);
  Trace.Monitor.event m (instant ~name:"cross_commit" ~args:[ ("xid", "9") ]);
  check_int "alert after switch back" 1 (Trace.Monitor.alert_count m);
  match (List.hd (Trace.Monitor.alerts m)).Trace.Monitor.violation with
  | Trace.Monitor.Cross_shard_in_partitioned { xid; _ } -> check Alcotest.string "xid" "9" xid
  | v -> Alcotest.failf "wrong violation: %s" (Trace.Monitor.describe v)

(* ------------------------------------------------------------------ *)
(* Satellite: healing one shard's mirror set must not block the rest *)

let test_heal_does_not_block_other_shards () =
  let bed = S.make_bed ~shards:3 () in
  let l = S.load_debit_credit ~params:small ~clients:2 bed in
  let healing = 2 in
  let hb = bed.S.shard_beds.(healing) in
  let t_h = P.Shard.db bed.S.router healing in
  (* Kill shard 2's only mirror and hand its supervisor the shard's
     spare. *)
  let victim_node = (List.hd (P.mirrors t_h)).P.node_id in
  ignore (Cluster.crash_node hb.S.sb_cluster victim_node Cluster.Failure.Hardware_error);
  let sup =
    P.Supervisor.create
      ~spares:[ Netram.Server.create (Cluster.node hb.S.sb_cluster hb.S.sb_spare) ]
      t_h
  in
  (* Shards 0 and 1 keep committing while shard 2 detects the loss and
     heals; supervisor ticks advance only shard 2's clock.  The loss is
     probe-discovered, so degraded goes true a few ticks in — run at
     least until the probe fired and the factor is back at target. *)
  let committed = ref 0 in
  let rng = Rng.create 5 in
  let clock0_cost = ref Time.zero in
  let base0 = Clock.now bed.S.shard_beds.(0).S.sb_clock in
  let rounds = ref 0 in
  let was_degraded = ref false in
  while (!rounds < 20 || P.Supervisor.degraded sup) && !rounds < 2_000 do
    incr rounds;
    List.iter
      (fun s ->
        let t0 = Clock.now bed.S.shard_beds.(s).S.sb_clock in
        S.W.transaction l.S.l_dbs.(s) rng;
        incr committed;
        if s = 0 then clock0_cost := !clock0_cost + (Clock.now bed.S.shard_beds.(s).S.sb_clock - t0))
      [ 0; 1 ];
    Clock.advance_to hb.S.sb_clock (Clock.now hb.S.sb_clock + Time.us 10.);
    P.Supervisor.tick sup;
    was_degraded := !was_degraded || P.Supervisor.degraded sup
  done;
  ignore !was_degraded;
  (* Detection and recruitment may land inside one tick, so the event
     log — not a sampled [degraded] — is the detection witness. *)
  let events = P.Supervisor.events sup in
  check_bool "loss was detected" true
    (List.exists (function P.Supervisor.Mirror_lost _ -> true | _ -> false) events);
  check_bool "spare was recruited" true
    (List.exists (function P.Supervisor.Recruited _ -> true | _ -> false) events);
  check_bool "shard 2 healed" false (P.Supervisor.degraded sup);
  check_bool "shards 0/1 committed throughout" true (!committed >= 40);
  check_int "shard 2 mirror set clean" 0 (List.length (P.verify_mirrors t_h));
  (* Isolation: shard 0 paid only for its own commits — its clock never
     advanced while shard 2 was resyncing. *)
  check_bool "shard 0 clock untouched by the heal" true
    (Clock.now bed.S.shard_beds.(0).S.sb_clock - base0 = !clock0_cost);
  check_bool "consistent" true (S.consistent l)

(* ------------------------------------------------------------------ *)
(* Failover oracle and crash-point sweeps *)

let test_failover () =
  let r = S.failover ~shards:2 ~victim:0 () in
  check_bool "committed data preserved" true r.S.f_data_preserved;
  check_bool "consistent before and after" true r.S.f_consistent;
  check_int "no monitor alerts" 0 r.S.f_alerts;
  check_bool "cross traffic flowed" true
    (r.S.f_before.Harness.Multi_client.ss_cross_committed > 0
    && r.S.f_after.Harness.Multi_client.ss_cross_committed > 0)

let run_sweep scenario =
  let r = CP.sweep scenario in
  check_bool "swept some packets" true (r.CP.total_packets > 0);
  check_int "every point classified" (r.CP.total_packets + 1) (List.length r.CP.points);
  check_bool "old images seen" true (r.CP.old_images > 0);
  check_bool "new images seen" true (r.CP.new_images > 0);
  r

let test_shard_commit_sweep () = ignore (run_sweep (CP.shard_commit_scenario ()))

let test_shard_fence_sweep () =
  let r = run_sweep (CP.shard_fence_scenario ()) in
  (* The fence scenario declares the post-convoy cut as a checkpoint
     image; some crash point must land there. *)
  check_bool "post-convoy image reachable" true
    (List.exists (fun p -> p.CP.image = CP.Checkpoint 0) r.CP.points)

let test_shard_mirror_sweep () =
  (* Mirror death during the victim shard's commit: the shard finishes
     degraded or recovers onto its spare; never a torn image. *)
  ignore (CP.sweep ~victim:(CP.Mirror 0) (CP.shard_commit_scenario ()))

(* ------------------------------------------------------------------ *)
(* The measured cell *)

let test_run_cell () =
  let cell = S.run_cell ~params:small ~warmup:100 ~total:400 ~shards:2 ~cross_per_100:5 () in
  check_bool "tps positive" true (cell.S.c_tps > 0.);
  check_bool "cross mix present" true (cell.S.c_cross > 0);
  check_bool "packets counted" true (cell.S.c_pkts_per_txn > 0.);
  check_int "asked-for singles" 400 cell.S.c_committed

let suite =
  [
    Alcotest.test_case "shard map: hash" `Quick test_map_hash;
    Alcotest.test_case "shard map: range" `Quick test_map_range;
    Alcotest.test_case "phase controller" `Quick test_phase;
    Alcotest.test_case "routing" `Quick test_routing;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "cross-shard drain" `Quick test_cross_shard;
    Alcotest.test_case "cross-shard zero sum" `Quick test_cross_zero_sum;
    Alcotest.test_case "cross body undeclared shard" `Quick test_cross_undeclared;
    Alcotest.test_case "monitor: STAR rule" `Quick test_monitor_cross_rule;
    Alcotest.test_case "heal does not block other shards" `Quick test_heal_does_not_block_other_shards;
    Alcotest.test_case "shard failover oracle" `Quick test_failover;
    Alcotest.test_case "crashpoint: shard commit" `Quick test_shard_commit_sweep;
    Alcotest.test_case "crashpoint: phase fence" `Quick test_shard_fence_sweep;
    Alcotest.test_case "crashpoint: shard mirror death" `Quick test_shard_mirror_sweep;
    Alcotest.test_case "measured cell" `Quick test_run_cell;
  ]
