open Sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1.);
  check_int "ms" 1_000_000 (Time.ms 1.);
  check_int "s" 1_000_000_000 (Time.s 1.);
  check_int "round" 2_700 (Time.us 2.7);
  check (Alcotest.float 1e-9) "to_us" 2.7 (Time.to_us (Time.us 2.7))

let test_time_bandwidth () =
  check_int "1MB at 1MB/s" 1_000_000_000 (Time.of_bandwidth ~bytes_per_s:1e6 1_000_000);
  check_int "zero bytes" 0 (Time.of_bandwidth ~bytes_per_s:1e6 0);
  Alcotest.check_raises "zero bandwidth" (Invalid_argument "Time.of_bandwidth: bandwidth <= 0")
    (fun () -> ignore (Time.of_bandwidth ~bytes_per_s:0. 1));
  Alcotest.check_raises "negative bytes" (Invalid_argument "Time.of_bandwidth: negative byte count")
    (fun () -> ignore (Time.of_bandwidth ~bytes_per_s:1e6 (-1)))

let test_time_pp () =
  check Alcotest.string "ns" "500ns" (Time.to_string (Time.ns 500));
  check Alcotest.string "us" "2.70us" (Time.to_string (Time.us 2.7));
  check Alcotest.string "ms" "12.00ms" (Time.to_string (Time.ms 12.));
  check Alcotest.string "s" "1.500s" (Time.to_string (Time.s 1.5))

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_advance () =
  let c = Clock.create () in
  check_int "starts at zero" 0 (Clock.now c);
  Clock.advance c (Time.us 3.);
  check_int "advance" 3_000 (Clock.now c);
  Clock.advance c Time.zero;
  check_int "zero advance" 3_000 (Clock.now c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative duration") (fun () ->
      Clock.advance c (-1))

let test_clock_advance_to () =
  let c = Clock.create ~at:100 () in
  Clock.advance_to c 50;
  check_int "never backwards" 100 (Clock.now c);
  Clock.advance_to c 200;
  check_int "forward" 200 (Clock.now c);
  check_int "elapsed" 150 (Clock.elapsed_since c 50)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done;
  let c = Rng.create 2 in
  check_bool "different seed differs" true (Rng.next64 a <> Rng.next64 c)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check_bool "in [0,7)" true (v >= 0 && v < 7);
    let w = Rng.int_in rng (-5) 5 in
    check_bool "in [-5,5]" true (w >= -5 && w <= 5);
    let f = Rng.float rng 2.5 in
    check_bool "float bound" true (f >= 0. && f < 2.5)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let parent = Rng.create 4 in
  let child = Rng.split parent in
  let child_seq = List.init 10 (fun _ -> Rng.next64 child) in
  (* Recreate: same parent seed, same split point gives the same child. *)
  let parent' = Rng.create 4 in
  let child' = Rng.split parent' in
  let child_seq' = List.init 10 (fun _ -> Rng.next64 child') in
  check (Alcotest.list Alcotest.int64) "split deterministic" child_seq child_seq'

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create 6 in
  for _ = 1 to 200 do
    check_bool "positive" true (Rng.exponential rng ~mean:5. > 0.)
  done

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  check_int "count" 4 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1. (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 4. (Stats.Summary.max s);
  check (Alcotest.float 1e-6) "stddev" 1.290994 (Stats.Summary.stddev s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.Summary.min: empty") (fun () ->
      ignore (Stats.Summary.min s))

let test_series_percentiles () =
  let s = Stats.Series.create () in
  for i = 1 to 100 do
    Stats.Series.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p0" 1. (Stats.Series.percentile s 0.);
  check (Alcotest.float 1e-9) "p100" 100. (Stats.Series.percentile s 100.);
  check (Alcotest.float 1e-9) "median" 50.5 (Stats.Series.median s);
  check (Alcotest.float 0.2) "p99" 99. (Stats.Series.percentile s 99.)

let test_series_grows () =
  let s = Stats.Series.create () in
  for i = 1 to 10_000 do
    Stats.Series.add s (float_of_int (i mod 97))
  done;
  check_int "count" 10_000 (Stats.Series.count s);
  check (Alcotest.float 1e-9) "max" 96. (Stats.Series.max s)

let test_histogram () =
  let h = Stats.Histogram.create ~sub_buckets:1 () in
  List.iter (Stats.Histogram.add h) [ 1.5; 2.; 15.; 150.; 1500. ];
  check_int "count" 5 (Stats.Histogram.count h);
  let buckets = Stats.Histogram.buckets h in
  (* One sub-bucket per octave: [1,2) [2,4) [8,16) [128,256) [1024,2048). *)
  check_int "5 octaves" 5 (List.length buckets);
  List.iter (fun (lo, hi, _) -> check_bool "ordered" true (lo < hi)) buckets

(* Zero and negative samples go to the sentinel underflow bucket with
   bounds (0, 0) rather than exploding in the log. *)
let test_histogram_nonpositive () =
  let h = Stats.Histogram.create ~sub_buckets:1 () in
  Stats.Histogram.add h 0.;
  Stats.Histogram.add h (-3.5);
  check_int "both counted" 2 (Stats.Histogram.count h);
  (match Stats.Histogram.buckets h with
  | [ (lo, hi, n) ] ->
      check (Alcotest.float 0.) "underflow lo" 0. lo;
      check (Alcotest.float 0.) "underflow hi" 0. hi;
      check_int "both in underflow" 2 n
  | l -> Alcotest.failf "expected one bucket, got %d" (List.length l));
  Stats.Histogram.add h 5.;
  check_int "mixed signs: two buckets" 2 (List.length (Stats.Histogram.buckets h))

let test_histogram_single_sample () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 42.;
  check_int "count" 1 (Stats.Histogram.count h);
  match Stats.Histogram.buckets h with
  | [ (lo, hi, n) ] ->
      check_int "one sample" 1 n;
      check_bool "sample inside bounds" true (lo <= 42. && 42. < hi)
  | l -> Alcotest.failf "expected one bucket, got %d" (List.length l)

(* Octave boundaries: with one sub-bucket per octave, 2.0 belongs to
   [2, 4), not [1, 2), sub-buckets stay below 1/sub relative width, and
   counts are conserved across buckets. *)
let test_histogram_boundaries () =
  let h = Stats.Histogram.create ~sub_buckets:1 () in
  List.iter (Stats.Histogram.add h) [ 1.; 1.999; 2.; 3.999; 4. ];
  let buckets = Stats.Histogram.buckets h in
  check_int "three octaves" 3 (List.length buckets);
  List.iter
    (fun (lo, hi, n) ->
      if lo >= 1.99 && lo <= 2.01 then begin
        check (Alcotest.float 1e-6) "octave upper bound" 4. hi;
        check_int "2.0 lands in [2,4)" 2 n
      end)
    buckets;
  check_int "counts conserved" (Stats.Histogram.count h)
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets);
  (* Sub-buckets: with 4 per octave the bucket around 100 is
     [96, 112) — relative width 1/6 <= 1/4. *)
  let h4 = Stats.Histogram.create ~sub_buckets:4 () in
  Stats.Histogram.add h4 100.;
  (match Stats.Histogram.buckets h4 with
  | [ (lo, hi, _) ] ->
      check (Alcotest.float 1e-6) "sub lo" 96. lo;
      check (Alcotest.float 1e-6) "sub hi" 112. hi
  | l -> Alcotest.failf "expected one bucket, got %d" (List.length l));
  check_bool "tolerance" true (Stats.Histogram.tolerance h4 = 0.125)

(* Histogram percentile vs the exact nearest-rank answer on a known
   arithmetic sequence: the bucket midpoint must be within the
   histogram's advertised relative tolerance. *)
let test_histogram_percentile () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  List.iter
    (fun p ->
      let exact = ceil (p /. 100. *. 999.) +. 1. in
      let got = Stats.Histogram.percentile h p in
      let tol = Stats.Histogram.tolerance h in
      check_bool
        (Printf.sprintf "p%.0f within tolerance (got %.2f, exact %.0f)" p got exact)
        true
        (abs_float (got -. exact) <= (tol *. exact) +. 1e-9))
    [ 0.; 50.; 90.; 99.; 100. ]

(* ------------------------------------------------------------------ *)
(* Events *)

let test_events_order () =
  let clock = Clock.create () in
  let q = Events.create clock in
  let log = ref [] in
  ignore (Events.schedule q ~at:30 (fun () -> log := 30 :: !log));
  ignore (Events.schedule q ~at:10 (fun () -> log := 10 :: !log));
  ignore (Events.schedule q ~at:20 (fun () -> log := 20 :: !log));
  check_int "pending" 3 (Events.pending q);
  Events.run_until q 25;
  check (Alcotest.list Alcotest.int) "fired in order" [ 20; 10 ] !log;
  check_int "clock at horizon" 25 (Clock.now clock);
  Events.run_until q 100;
  check (Alcotest.list Alcotest.int) "rest fired" [ 30; 20; 10 ] !log

let test_events_same_time_fifo () =
  let clock = Clock.create () in
  let q = Events.create clock in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Events.schedule q ~at:10 (fun () -> log := i :: !log))
  done;
  Events.run_until q 10;
  check (Alcotest.list Alcotest.int) "fifo at equal time" [ 5; 4; 3; 2; 1 ] !log

let test_events_cancel () =
  let clock = Clock.create () in
  let q = Events.create clock in
  let fired = ref false in
  let h = Events.schedule q ~at:10 (fun () -> fired := true) in
  Events.cancel q h;
  Events.cancel q h;
  check_int "pending zero" 0 (Events.pending q);
  Events.run_until q 20;
  check_bool "not fired" false !fired

let test_events_reschedule_from_handler () =
  let clock = Clock.create () in
  let q = Events.create clock in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then ignore (Events.schedule_after q ~delay:10 tick)
  in
  ignore (Events.schedule q ~at:10 tick);
  Events.run_until q 100;
  check_int "chain of 5" 5 !count;
  check_int "clock" 100 (Clock.now clock)

let test_events_past_rejected () =
  let clock = Clock.create ~at:50 () in
  let q = Events.create clock in
  Alcotest.check_raises "past" (Invalid_argument "Events.schedule: time in the past") (fun () ->
      ignore (Events.schedule q ~at:10 ignore))

(* Property: whatever the order of scheduling (and random
   cancellations), events fire in (time, scheduling-order) order, and
   exactly the non-cancelled ones fire. *)
let prop_events_fire_sorted =
  QCheck.Test.make ~name:"events fire in time order with cancellations" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_bound 1000) bool))
    (fun spec ->
      let clock = Clock.create () in
      let q = Events.create clock in
      let fired = ref [] in
      let expected =
        List.filteri (fun _ (_, keep) -> keep) spec
        |> List.map fst
        |> List.stable_sort compare
      in
      let handles =
        List.map (fun (at, _) -> Events.schedule q ~at (fun () -> fired := at :: !fired)) spec
      in
      List.iter2 (fun h (_, keep) -> if not keep then Events.cancel q h) handles spec;
      Events.run_until q 2000;
      List.rev !fired = expected)

let prop_series_percentile_brackets =
  QCheck.Test.make ~name:"series percentiles bracket the data" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_inclusive 1000.))
    (fun xs ->
      let s = Stats.Series.create () in
      List.iter (Stats.Series.add s) xs;
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      let p25 = Stats.Series.percentile s 25. and p75 = Stats.Series.percentile s 75. in
      Stats.Series.min s = lo && Stats.Series.max s = hi && p25 <= p75 && p25 >= lo && p75 <= hi)

let prop_summary_matches_series =
  QCheck.Test.make ~name:"online summary agrees with exact series" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 80) (float_bound_inclusive 100.))
    (fun xs ->
      let summary = Stats.Summary.create () and series = Stats.Series.create () in
      List.iter
        (fun x ->
          Stats.Summary.add summary x;
          Stats.Series.add series x)
        xs;
      Float.abs (Stats.Summary.mean summary -. Stats.Series.mean series) < 1e-6
      && Stats.Summary.min summary = Stats.Series.min series
      && Stats.Summary.max summary = Stats.Series.max series)

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("time bandwidth", `Quick, test_time_bandwidth);
    ("time pretty-printing", `Quick, test_time_pp);
    ("clock advance", `Quick, test_clock_advance);
    ("clock advance_to", `Quick, test_clock_advance_to);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("rng exponential positive", `Quick, test_rng_exponential_positive);
    ("summary statistics", `Quick, test_summary);
    ("summary empty", `Quick, test_summary_empty);
    ("series percentiles", `Quick, test_series_percentiles);
    ("series growth", `Quick, test_series_grows);
    ("histogram buckets", `Quick, test_histogram);
    ("histogram non-positive samples", `Quick, test_histogram_nonpositive);
    ("histogram single sample", `Quick, test_histogram_single_sample);
    ("histogram octave boundaries", `Quick, test_histogram_boundaries);
    ("histogram percentile tolerance", `Quick, test_histogram_percentile);
    ("events fire in time order", `Quick, test_events_order);
    ("events same-time fifo", `Quick, test_events_same_time_fifo);
    ("events cancel", `Quick, test_events_cancel);
    ("events reschedule from handler", `Quick, test_events_reschedule_from_handler);
    ("events reject past", `Quick, test_events_past_rejected);
    QCheck_alcotest.to_alcotest prop_events_fire_sorted;
    QCheck_alcotest.to_alcotest prop_series_percentile_brackets;
    QCheck_alcotest.to_alcotest prop_summary_matches_series;
  ]
