(* Telemetry: the gauge/timeseries layer must be a pure observer (an
   instrumented churn run produces the exact report of a bare one), the
   sampled series must be deterministic per seed and agree with the
   supervisor's event log, the ring-buffer sink must drop oldest with
   an honest count, and every JSON surface the harness emits must
   survive a real parser — odd metric names included. *)

open Sim
module P = Perseas
module Ts = Trace.Timeseries
module J = Harness.Json
module Tm = Harness.Telemetry

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Events.every: the sampling grid                                     *)

let test_every_grid () =
  let clock = Clock.create () in
  let q = Events.create clock in
  let fired = ref [] in
  Events.every q ~interval:10 ~until:100 (fun at -> fired := at :: !fired);
  (* Jump past several grid points: the catch-up must fire each missed
     point with its own grid time, not the pump time. *)
  Clock.advance_to clock 35;
  Events.run_due q;
  check (Alcotest.list Alcotest.int) "catch-up labels" [ 10; 20; 30 ] (List.rev !fired);
  Clock.advance_to clock 100;
  Events.run_due q;
  check (Alcotest.list Alcotest.int) "full grid"
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
    (List.rev !fired);
  (* Nothing stays scheduled past [until]. *)
  Clock.advance_to clock 500;
  Events.run_due q;
  check_int "stops at until" 10 (List.length !fired);
  Alcotest.check_raises "non-positive interval"
    (Invalid_argument "Events.every: interval must be positive") (fun () ->
      Events.every q ~interval:0 ~until:100 (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Gauges and sampling                                                 *)

let test_gauge_basics () =
  let ts = Ts.create () in
  check_bool "enabled" true (Ts.enabled ts);
  let g = Ts.gauge ts "occupancy" in
  Trace.Gauge.set g 5;
  Trace.Gauge.add g 3;
  check_int "value" 8 (Ts.value ts "occupancy");
  Trace.Gauge.set g 2;
  check_int "set down" 2 (Ts.value ts "occupancy");
  check_int "hwm survives" 8 (Ts.hwm ts "occupancy");
  (* Same name, same gauge. *)
  Trace.Gauge.add (Ts.gauge ts "occupancy") 1;
  check_int "find-or-create" 3 (Ts.value ts "occupancy");
  Ts.sample ts ~at:17;
  (match Ts.samples ts with
  | [ s ] ->
      check_int "sample time" 17 s.Ts.at;
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "sample values"
        [ ("occupancy", 3) ] s.Ts.values
  | l -> Alcotest.failf "expected one sample, got %d" (List.length l));
  (* Disabled: the shared dummy absorbs everything. *)
  check_bool "noop disabled" false (Ts.enabled Ts.noop);
  let d = Ts.gauge Ts.noop "x" in
  Trace.Gauge.set d 42;
  check_int "noop value" 0 (Ts.value Ts.noop "x");
  Ts.sample Ts.noop ~at:5;
  check_int "noop never samples" 0 (Ts.sample_count Ts.noop)

let test_rate_gauge () =
  let ts = Ts.create () in
  Ts.set ts "committed" 0;
  Ts.rate ts ~name:"tps" ~source:"committed";
  Ts.sample ts ~at:0;
  check_int "first sample: no history" 0 (Ts.value ts "tps");
  Ts.set ts "committed" 100;
  Ts.sample ts ~at:(Time.us 10.0);
  (* 100 transactions in 10 us of virtual time = 10M/s. *)
  check_int "per-second rate" 10_000_000 (Ts.value ts "tps");
  Ts.sample ts ~at:(Time.us 20.0);
  check_int "flat source, zero rate" 0 (Ts.value ts "tps")

(* ------------------------------------------------------------------ *)
(* Ring-buffer sink                                                    *)

let test_sink_ring () =
  let s = Trace.Sink.memory ~capacity:3 () in
  for i = 1 to 5 do
    Trace.Sink.span s ~cat:"t" ~name:(Printf.sprintf "s%d" i) ~start:i ~stop:(i + 1);
    Trace.Sink.instant s ~cat:"t" ~name:(Printf.sprintf "e%d" i) ~at:i
  done;
  check_int "span_count counts everything" 5 (Trace.Sink.span_count s);
  check_int "dropped oldest spans" 2 (Trace.Sink.dropped_spans s);
  check_int "dropped oldest events" 2 (Trace.Sink.dropped_events s);
  check (Alcotest.list Alcotest.string) "ring keeps newest" [ "s3"; "s4"; "s5" ]
    (List.map (fun (x : Trace.Span.t) -> x.name) (Trace.Sink.spans s));
  check (Alcotest.list Alcotest.string) "events too" [ "e3"; "e4"; "e5" ]
    (List.map (fun (x : Trace.Event.t) -> x.name) (Trace.Sink.events s));
  (* Cursors survive the wrap: evicted entries are simply absent. *)
  check (Alcotest.list Alcotest.string) "since-cursor after wrap" [ "s5" ]
    (List.map (fun (x : Trace.Span.t) -> x.name) (Trace.Sink.spans_since s 4));
  check (Alcotest.list Alcotest.string) "cursor older than ring" [ "s3"; "s4"; "s5" ]
    (List.map (fun (x : Trace.Span.t) -> x.name) (Trace.Sink.spans_since s 1));
  (* The unbounded default never drops. *)
  let u = Trace.Sink.memory () in
  for i = 1 to 100 do
    Trace.Sink.span u ~cat:"t" ~name:"s" ~start:i ~stop:i
  done;
  check_int "unbounded keeps all" 100 (List.length (Trace.Sink.spans u));
  check_int "unbounded drops none" 0 (Trace.Sink.dropped_spans u);
  Alcotest.check_raises "bad capacity" (Invalid_argument "Trace.Sink.memory: capacity 0 not positive")
    (fun () -> ignore (Trace.Sink.memory ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* JSON surfaces through a real parser                                 *)

let num_exn k j = J.to_float (J.member_exn k j)

(* Primary plus two mirror nodes, database initialised. *)
let mini_bed () =
  let clock = Clock.create () in
  let dram = 4 * 1024 * 1024 in
  let specs =
    [
      Cluster.spec ~dram_size:dram ~power_supply:0 "primary";
      Cluster.spec ~dram_size:dram ~power_supply:1 "mirror0";
      Cluster.spec ~dram_size:dram ~power_supply:2 "mirror1";
    ]
  in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init 2 (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  (clock, cluster, P.init_replicated clients)

let test_json_parser () =
  (* The grammar corners the emitters lean on. *)
  (match J.parse {|{"a":[1,-2.5e2,true,false,null],"b":{"c":"d"}}|} with
  | Ok j ->
      check_int "list len" 3
        (match J.member_exn "a" j with J.List l -> List.length l - 2 | _ -> -1);
      check (Alcotest.float 0.0) "sci notation"
        (-250.0)
        (match J.member_exn "a" j with J.List (_ :: n :: _) -> J.to_float n | _ -> nan);
      check_string "nested" "d" (J.to_string (J.member_exn "c" (J.member_exn "b" j)))
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Escapes, including a surrogate pair decoded to UTF-8. *)
  (match J.parse {|{"s":"q\"b\\n\nuAp😀"}|} with
  | Ok j ->
      check_string "escape decoding" "q\"b\\n\nuAp\xf0\x9f\x98\x80"
        (J.to_string (J.member_exn "s" j))
  | Error e -> Alcotest.failf "escape parse failed: %s" e);
  (* Garbage must be rejected, not glossed over. *)
  List.iter
    (fun bad ->
      match J.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; {|{"a":1} trailing|}; {|{"a":}|}; {|"unterminated|}; {|{"s":"\uD800"}|}; "nul"; "" ]

let test_emitted_json_parses () =
  (* Timeseries snapshot, with metric names that stress the escaper. *)
  let ts = Ts.create () in
  Ts.set ts "plain" 1;
  Ts.set ts {|quote"inside|} 2;
  Ts.set ts {|back\slash|} 3;
  Ts.set ts "new\nline" 4;
  Ts.set ts "tab\tcol" 5;
  let j =
    match J.parse (Ts.to_json ts) with
    | Ok j -> j
    | Error e -> Alcotest.failf "Timeseries.to_json unparseable: %s" e
  in
  let gauges = J.member_exn "gauges" j in
  List.iter
    (fun (name, v) ->
      let g = J.member_exn name gauges in
      check_int ("gauge " ^ String.escaped name) v (int_of_float (num_exn "value" g));
      check_int "hwm" v (int_of_float (num_exn "hwm" g)))
    [ ("plain", 1); ({|quote"inside|}, 2); ({|back\slash|}, 3); ("new\nline", 4); ("tab\tcol", 5) ];
  (* Registry snapshot: counters and a histogram, same treatment. *)
  let r = Trace.Registry.create () in
  Trace.Registry.add r {|ops"total|} 7;
  Trace.Registry.add r "plain_ops" 3;
  Trace.Registry.observe r "lat\\us" 1.5;
  let j =
    match J.parse (Trace.Registry.to_json r) with
    | Ok j -> j
    | Error e -> Alcotest.failf "Registry.to_json unparseable: %s" e
  in
  check_int "escaped counter" 7 (int_of_float (num_exn {|ops"total|} (J.member_exn "counters" j)));
  (* Engine stats: the new fields must be present and numeric. *)
  let _, _, t = mini_bed () in
  let j =
    match J.parse (P.stats_to_json (P.stats t)) with
    | Ok j -> j
    | Error e -> Alcotest.failf "stats_to_json unparseable: %s" e
  in
  List.iter
    (fun k -> ignore (num_exn k j))
    [ "committed"; "aborts"; "undo_hwm_bytes"; "degraded_us" ]

let test_chrome_counter_tracks () =
  let series =
    [
      { Ts.at = 0; values = [ ("g1", 1); ("g2", 10) ] };
      { Ts.at = Time.us 5.0; values = [ ("g1", 2); ("g2", 20) ] };
    ]
  in
  let json = Trace.Export.chrome_json ~series ~spans:[] ~events:[] () in
  let j =
    match J.parse json with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome_json unparseable: %s" e
  in
  let evs = J.to_list (J.member_exn "traceEvents" j) in
  let counters = List.filter (fun e -> J.member "ph" e = Some (J.Str "C")) evs in
  check_int "one counter event per gauge per sample" 4 (List.length counters);
  let g1_vals =
    List.filter_map
      (fun e ->
        if J.member "name" e = Some (J.Str "g1") then
          Some (int_of_float (num_exn "value" (J.member_exn "args" e)))
        else None)
      counters
  in
  check (Alcotest.list Alcotest.int) "counter values in order" [ 1; 2 ] g1_vals

(* ------------------------------------------------------------------ *)
(* Engine stats: aborts, undo HWM, degraded time                       *)

let test_engine_stats () =
  let clock, cluster, t = mini_bed () in
  let seg = P.malloc t ~name:"seg" ~size:4096 in
  P.init_remote_db t;
  let tx () =
    let txn = P.begin_transaction t in
    P.set_range txn seg ~off:0 ~len:256;
    P.commit txn
  in
  tx ();
  let txn = P.begin_transaction t in
  P.set_range txn seg ~off:0 ~len:64;
  P.abort txn;
  let s = P.stats t in
  check_int "aborts counted" 1 s.P.aborts;
  check_bool "undo hwm covers the 256-byte range" true (s.P.undo_hwm_bytes >= 256);
  check_int "not degraded yet" 0 s.P.degraded_us;
  (* Kill a mirror; the failed write opens a degraded window that
     counts up with the clock until replication is restored. *)
  ignore (Cluster.crash_node cluster 1 Cluster.Failure.Software_error);
  tx ();
  check_int "mirror retired" 1 (P.mirror_count t);
  let d0 = (P.stats t).P.degraded_us in
  Clock.advance clock (Time.us 500.0);
  let d1 = (P.stats t).P.degraded_us in
  check_bool "open window counts up" true (d1 >= d0 + 500);
  check_int "target unchanged" 2 (P.replication_target t)

(* ------------------------------------------------------------------ *)
(* Churn telemetry: determinism, invariance, agreement                 *)

let small_params = { Harness.Churn.default_params with duration = Time.ms 20.0 }

let instrumented = lazy (Tm.instrumented_churn ~params:small_params ())

let test_churn_csv_deterministic () =
  let _, tel1 = Lazy.force instrumented in
  let _, tel2 = Tm.instrumented_churn ~params:small_params () in
  let h1, rows1 = Tm.csv ~tel:tel1 in
  let h2, rows2 = Tm.csv ~tel:tel2 in
  check_bool "sampled something" true (List.length rows1 > 0);
  check (Alcotest.list Alcotest.string) "same header" h1 h2;
  check_bool "byte-identical rows" true (rows1 = rows2)

let test_telemetry_off_invariance () =
  (* The sampler lives on its own event queue, so instrumenting the run
     must not move a single scheduling decision: the full report —
     counts, windows, stats, event log, checksums — is structurally
     identical with telemetry on and off. *)
  let r_on, _ = Lazy.force instrumented in
  let r_off = Harness.Churn.run ~params:small_params () in
  check_int "committed identical" r_off.Harness.Churn.committed r_on.Harness.Churn.committed;
  check_bool "stats identical" true (r_off.Harness.Churn.stats = r_on.Harness.Churn.stats);
  check_bool "whole report identical" true (r_off = r_on)

let test_degraded_agreement () =
  let r, tel = Lazy.force instrumented in
  check_bool "churn produced degraded windows" true (r.Harness.Churn.windows <> []);
  let a =
    Tm.agreement ~target:small_params.Harness.Churn.mirrors ~samples:(Ts.samples tel)
      r.Harness.Churn.supervisor_events
  in
  Tm.check_agreement a;
  check_bool "sampler saw at least one window" true (a.Tm.windows_seen >= 1);
  check_bool "every signal matched" true (a.Tm.matched_signals = a.Tm.degraded_signals);
  (* The degraded time the gauges accumulated agrees with the report's
     own accounting (within one sampling interval of slack). *)
  let final_us =
    match List.rev (Ts.samples tel) with
    | last :: _ -> ( match List.assoc_opt "perseas.degraded_us" last.Ts.values with Some v -> v | None -> 0)
    | [] -> 0
  in
  check_bool "gauge degraded time is real" true (final_us > 0)

(* ------------------------------------------------------------------ *)
(* Bench summary: round-trip and the regression gate                   *)

let test_bench_gate () =
  let module B = Harness.Bench_summary in
  let e ?(engine = "PERSEAS") ?(workload = "debit-credit") ?(mirrors = 1) ?pkts ?(p99 = 46.25)
      ?(phases = []) tps =
    {
      B.engine;
      workload;
      mirrors;
      tps;
      mean_us = 43.5;
      p99_us = p99;
      pkts_per_txn = pkts;
      phase_p99 = phases;
    }
  in
  let current = [ e 1000.0; e ~workload:"order-entry" 500.0; e ~engine:"Vista" ~mirrors:0 2000.0 ] in
  (* Round-trip through the writer and the parser. *)
  let parsed = B.of_json (J.parse_exn (B.to_json current)) in
  check_bool "json round-trip" true (parsed = current);
  (* Identical baseline: clean pass. *)
  let _, failed = B.compare_to_baseline ~baseline:current current in
  check_bool "identical baseline passes" false failed;
  (* Within tolerance: 5% down on 10% tolerance still passes. *)
  let _, failed = B.compare_to_baseline ~baseline:[ e 1052.0 ] current in
  check_bool "small drift passes" false failed;
  (* The acceptance check: a doctored 2x baseline must fail the gate. *)
  let doctored = List.map (fun (x : B.entry) -> { x with B.tps = x.tps *. 2.0 }) current in
  let verdicts, failed = B.compare_to_baseline ~baseline:doctored current in
  check_bool "2x baseline fails" true failed;
  check_int "only debit-credit cells gate" 2
    (List.length (List.filter (fun v -> v.B.failed) verdicts));
  (* order-entry regressions are informational, not gating. *)
  let _, failed =
    B.compare_to_baseline ~baseline:[ e ~workload:"order-entry" 5000.0 ] current
  in
  check_bool "order-entry not gated" false failed;
  (* A debit-credit cell vanishing from the matrix fails too. *)
  let _, failed =
    B.compare_to_baseline ~baseline:(e ~mirrors:7 900.0 :: current) current
  in
  check_bool "missing gated cell fails" true failed;
  (* The packet column: round-trips, gates on growth, and a baseline
     without it never engages the packet gate. *)
  let with_pkts = [ e ~pkts:9.5 1000.0 ] in
  let parsed = B.of_json (J.parse_exn (B.to_json with_pkts)) in
  check_bool "pkts column round-trips" true (parsed = with_pkts);
  let _, failed = B.compare_to_baseline ~baseline:[ e ~pkts:9.5 1000.0 ] with_pkts in
  check_bool "same packets passes" false failed;
  let _, failed = B.compare_to_baseline ~baseline:[ e ~pkts:8.0 1000.0 ] with_pkts in
  check_bool "packet growth fails even with tps flat" true failed;
  let _, failed = B.compare_to_baseline ~baseline:[ e 1000.0 ] with_pkts in
  check_bool "old baseline without pkts does not gate packets" false failed;
  let _, failed =
    B.compare_to_baseline ~baseline:[ e ~workload:"order-entry" ~pkts:8.0 1000.0 ]
      [ e ~workload:"order-entry" ~pkts:16.0 1000.0 ]
  in
  check_bool "packet gate only on debit-credit" false failed;
  (* The p99 gate: a tps-flat run whose tail blew past the 20%
     tolerance fails; growth inside the tolerance passes; non
     debit-credit tails are informational. *)
  let _, failed = B.compare_to_baseline ~baseline:[ e ~p99:40.0 1000.0 ] [ e ~p99:50.0 1000.0 ] in
  check_bool "25% p99 growth fails with tps flat" true failed;
  let _, failed = B.compare_to_baseline ~baseline:[ e ~p99:40.0 1000.0 ] [ e ~p99:46.0 1000.0 ] in
  check_bool "15% p99 growth passes" false failed;
  let _, failed =
    B.compare_to_baseline ~p99_tolerance_pct:30.0 ~baseline:[ e ~p99:40.0 1000.0 ]
      [ e ~p99:50.0 1000.0 ]
  in
  check_bool "p99 tolerance is adjustable" false failed;
  let _, failed =
    B.compare_to_baseline ~baseline:[ e ~workload:"order-entry" ~p99:40.0 1000.0 ]
      [ e ~workload:"order-entry" ~p99:80.0 1000.0 ]
  in
  check_bool "p99 gate only on debit-credit" false failed;
  (* The per-phase tail column: round-trips through JSON, an old
     baseline without it still gates, and a failed verdict carries the
     baseline attribution when present. *)
  let phases = [ ("set_range", 5.5); ("commit_fence", 12.25) ] in
  let with_phases = [ e ~phases 1000.0 ] in
  let parsed = B.of_json (J.parse_exn (B.to_json with_phases)) in
  check_bool "phase_p99 column round-trips" true (parsed = with_phases);
  let _, failed = B.compare_to_baseline ~baseline:[ e 1000.0 ] with_phases in
  check_bool "old baseline without phase_p99 still gates" false failed;
  let verdicts, failed =
    B.compare_to_baseline ~baseline:[ e ~phases ~p99:30.0 1000.0 ] [ e ~phases ~p99:50.0 1000.0 ]
  in
  check_bool "blown p99 with phases fails" true failed;
  (match List.find_opt (fun v -> v.B.failed) verdicts with
  | Some v -> check_bool "verdict carries baseline attribution" true (v.B.baseline_phase_p99 = phases)
  | None -> Alcotest.fail "expected a failed verdict")

let suite =
  [
    Alcotest.test_case "Events.every grid and catch-up" `Quick test_every_grid;
    Alcotest.test_case "gauge set/add/hwm, noop dummy" `Quick test_gauge_basics;
    Alcotest.test_case "rate gauge derivative" `Quick test_rate_gauge;
    Alcotest.test_case "ring-buffer sink drops oldest, counts drops" `Quick test_sink_ring;
    Alcotest.test_case "JSON parser grammar and escapes" `Quick test_json_parser;
    Alcotest.test_case "emitted JSON parses (odd names included)" `Quick test_emitted_json_parses;
    Alcotest.test_case "chrome export grows counter tracks" `Quick test_chrome_counter_tracks;
    Alcotest.test_case "stats: aborts, undo hwm, degraded time" `Quick test_engine_stats;
    Alcotest.test_case "churn series deterministic per seed" `Quick test_churn_csv_deterministic;
    Alcotest.test_case "telemetry off = byte-identical run" `Quick test_telemetry_off_invariance;
    Alcotest.test_case "degraded windows agree with supervisor log" `Quick test_degraded_agreement;
    Alcotest.test_case "bench summary round-trip and gate" `Quick test_bench_gate;
  ]
