(* Self-healing replication: supervisor unit tests (probe-driven
   failure detection, spare-pool recruitment, backoff and give-up) and
   the churn experiment's zero-committed-data-loss oracle. *)

open Sim
module P = Perseas
module Sup = Perseas.Supervisor
module C = Harness.Churn

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list; (* one per mirror node, ids 1..k *)
  t : P.t;
}

(* Primary on node 0; [k] mirrors on nodes 1..k; one spare node at the
   end (no server yet). *)
let bed ~k () =
  let clock = Clock.create () in
  let dram = 4 * 1024 * 1024 in
  let specs =
    Cluster.spec ~dram_size:dram ~power_supply:0 "primary"
    :: (List.init k (fun i ->
            Cluster.spec ~dram_size:dram ~power_supply:(i + 1) (Printf.sprintf "mirror%d" i))
       @ [ Cluster.spec ~dram_size:dram ~power_supply:(k + 1) "spare" ])
  in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init k (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  { clock; cluster; servers; t = P.init_replicated clients }

let with_db ~k ?(size = 4096) () =
  let b = bed ~k () in
  let seg = P.malloc b.t ~name:"db" ~size in
  P.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db b.t;
  (b, seg)

let spare_id b = Cluster.size b.cluster - 1

let commit_fill b seg fill =
  let txn = P.begin_transaction b.t in
  P.set_range txn seg ~off:64 ~len:128;
  P.write b.t seg ~off:64 (Bytes.make 128 fill);
  P.commit txn

(* ------------------------------------------------------------------ *)
(* Supervisor units                                                    *)

let test_supervisor_detects_and_recruits () =
  let b, seg = with_db ~k:1 () in
  commit_fill b seg 'a';
  let spare = Netram.Server.create (Cluster.node b.cluster (spare_id b)) in
  let sup = Sup.create ~spares:[ spare ] b.t in
  check_int "target from live set" 1 (Sup.target sup);
  Sup.tick sup;
  check_bool "healthy: no events" true (Sup.events sup = []);
  (* Kill the only mirror; the next tick's probe must retire it and
     recruit the spare before any commit half-writes to a corpse. *)
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  Clock.advance b.clock Sup.default_policy.probe_interval;
  Sup.tick sup;
  check_int "factor restored" 1 (P.mirror_count b.t);
  check_bool "no longer degraded" false (Sup.degraded sup);
  (match Sup.events sup with
  | [ Sup.Mirror_lost { node_id = 1; _ }; Sup.Recruited { node_id; report; _ } ] ->
      check_int "recruited the spare node" (spare_id b) node_id;
      check_bool "cold spare needs a full copy" true (report.P.mode = P.Full)
  | _ -> Alcotest.fail "expected exactly [Mirror_lost; Recruited]");
  check_int "recruitment counted" 1 (P.stats b.t).mirrors_recruited;
  check_bool "spare pool drained" true (Sup.spares sup = []);
  (* Commits flow to the replacement. *)
  commit_fill b seg 'b';
  check_i64 "replacement tracks commits" (P.checksum b.t seg) (P.mirror_checksum b.t seg)

let test_supervisor_incremental_after_pause () =
  let b, seg = with_db ~k:2 ~size:65536 () in
  commit_fill b seg 'a';
  let sup = Sup.create b.t in
  (* Transient outage: the server is wedged but its DRAM survives. *)
  let victim = List.hd b.servers in
  Netram.Server.pause victim;
  Clock.advance b.clock Sup.default_policy.probe_interval;
  Sup.tick sup;
  check_int "degraded to one mirror" 1 (P.mirror_count b.t);
  (* The database keeps committing while degraded — these are the only
     bytes the returning mirror actually missed. *)
  commit_fill b seg 'b';
  commit_fill b seg 'c';
  Netram.Server.resume victim;
  Sup.add_spare sup victim;
  Sup.tick sup;
  check_int "factor restored" 2 (P.mirror_count b.t);
  let recruited =
    List.filter_map (function Sup.Recruited { report; _ } -> Some report | _ -> None)
      (Sup.events sup)
  in
  (match recruited with
  | [ report ] ->
      check_bool "resync was incremental" true (report.P.mode = P.Incremental);
      check_bool "copied less than a full copy" true (report.P.bytes_copied < report.P.full_bytes);
      check_int "resync bytes counted" report.P.bytes_copied (P.stats b.t).resync_bytes
  | _ -> Alcotest.fail "expected exactly one recruitment");
  check_i64 "returned mirror caught up" (P.checksum b.t seg) (P.mirror_checksum b.t seg);
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "scrub clean" []
    (P.verify_mirrors b.t)

let test_supervisor_backoff_and_give_up () =
  let b, _seg = with_db ~k:1 () in
  let policy =
    {
      Sup.probe_interval = Time.us 10.0;
      max_attempts = 3;
      backoff_initial = Time.us 20.0;
      backoff_factor = 2.0;
    }
  in
  (* A spare whose node is already dead: every recruit attempt fails. *)
  let dead = Netram.Server.create (Cluster.node b.cluster (spare_id b)) in
  ignore (Cluster.crash_node b.cluster (spare_id b) Cluster.Failure.Software_error);
  let sup = Sup.create ~policy ~target:2 ~spares:[ dead ] b.t in
  let failed () =
    List.length
      (List.filter (function Sup.Attempt_failed _ -> true | _ -> false) (Sup.events sup))
  in
  Sup.tick sup;
  check_int "first attempt failed" 1 (failed ());
  (* Backoff: a tick before the retry window opens must not burn an
     attempt. *)
  Sup.tick sup;
  check_int "throttled by backoff" 1 (failed ());
  check_bool "retry scheduled in the future" true (Sup.retry_at sup > Clock.now b.clock);
  Clock.advance_to b.clock (Sup.retry_at sup);
  Sup.tick sup;
  check_int "second attempt failed" 2 (failed ());
  Clock.advance_to b.clock (Sup.retry_at sup);
  Sup.tick sup;
  check_int "third attempt failed" 3 (failed ());
  check_bool "retry budget exhausted" true (Sup.gave_up sup);
  Clock.advance b.clock (Time.ms 1.0);
  Sup.tick sup;
  check_int "no attempts after giving up" 3 (failed ());
  (* A fresh spare resets the budget and heals the factor. *)
  Cluster.restart_node b.cluster (spare_id b);
  Sup.add_spare sup (Netram.Server.create (Cluster.node b.cluster (spare_id b)));
  check_bool "give-up cleared" false (Sup.gave_up sup);
  (* The dead spare is still at the head of the pool; it fails once
     more and rotates behind the good one. *)
  Sup.tick sup;
  Clock.advance_to b.clock (Sup.retry_at sup);
  Sup.tick sup;
  check_int "factor restored" 2 (P.mirror_count b.t);
  check_bool "one give-up event" true
    (List.length (List.filter (function Sup.Gave_up _ -> true | _ -> false) (Sup.events sup)) = 1)

(* ------------------------------------------------------------------ *)
(* The churn experiment's oracle                                       *)

let test_churn_zero_committed_data_loss () =
  let r = C.run () in
  C.check r;
  let pool = C.default_params.mirrors + C.default_params.spares in
  check_int "every pool node killed at least once" pool (List.length r.nodes_hit);
  check_bool "both failure kinds injected" true
    (List.exists (fun i -> i.C.kind = C.Pause) r.injections
    && List.exists (fun i -> i.C.kind = C.Crash) r.injections);
  check_bool "work committed under churn" true (r.committed > 0);
  check_bool "factor restored after each failure" true r.factor_restored;
  check_bool "mirrors scrub clean at quiesce" true r.verify_clean;
  check_bool "no committed transaction lost" true r.committed_data_preserved;
  check_bool "recovered database is consistent" true r.recovered_consistent;
  check_bool "at least one incremental resync" true (r.incremental_resyncs >= 1);
  check_bool "incremental moved fewer bytes than a full copy" true
    (r.incremental_resyncs >= 1
    && r.incremental_bytes < r.full_copy_bytes * r.incremental_resyncs);
  check_bool "at least one full resync (cold spare or reboot)" true (r.full_resyncs >= 1);
  (* Every degraded window eventually closed. *)
  List.iter
    (fun w -> check_bool "window closed after it opened" true (w.C.w_restored >= w.C.w_start))
    r.windows

let test_churn_deterministic () =
  let r1 = C.run () and r2 = C.run () in
  check_int "same commits" r1.C.committed r2.C.committed;
  check_int "same windows" (List.length r1.C.windows) (List.length r2.C.windows);
  check_int "same incremental bytes" r1.C.incremental_bytes r2.C.incremental_bytes;
  check (Alcotest.float 0.001) "same throughput" r1.C.tps r2.C.tps

let test_churn_survives_total_mirror_loss () =
  (* One mirror, a sluggish failure detector: losses surface as
     [All_mirrors_lost] inside a commit, the transaction rolls back and
     retries once the supervisor recruits a spare — still zero
     committed-data loss. *)
  let params =
    {
      C.default_params with
      mirrors = 1;
      spares = 2;
      duration = Time.ms 20.0;
      mtbf = Time.ms 1.0;
      outage = Time.us 300.0;
      policy = { Sup.default_policy with probe_interval = Time.ms 1.0 };
    }
  in
  let r = C.run ~params () in
  C.check r;
  check_bool "total mirror loss was exercised" true (r.outage_retries > 0);
  check_bool "work still committed" true (r.committed > 0)

let suite =
  [
    ("supervisor detects loss and recruits", `Quick, test_supervisor_detects_and_recruits);
    ("supervisor incremental resync after pause", `Quick, test_supervisor_incremental_after_pause);
    ("supervisor backoff and give-up", `Quick, test_supervisor_backoff_and_give_up);
    ("churn: zero committed-data loss", `Slow, test_churn_zero_committed_data_loss);
    ("churn: deterministic", `Slow, test_churn_deterministic);
    ("churn: survives total mirror loss", `Slow, test_churn_survives_total_mirror_loss);
  ]
