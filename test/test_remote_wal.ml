open Sim
module Rwal = Baselines.Remote_wal
module Device = Disk.Device
module Node = Cluster.Node

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  server : Netram.Server.t;
  device : Device.t;
  t : Rwal.t;
}

let bed ?config () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:(8 * 1024 * 1024) ~power_supply:0 "primary";
        Cluster.spec ~dram_size:(8 * 1024 * 1024) ~power_supply:1 "log-mirror";
        Cluster.spec ~dram_size:(8 * 1024 * 1024) ~power_supply:2 "spare";
      ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  let device =
    Device.create ~clock ~backend:(Device.Magnetic Device.default_geometry)
      ~capacity:(16 * 1024 * 1024)
  in
  { clock; cluster; server; device; t = Rwal.create ?config ~client ~device () }

let with_db ?config ?(size = 4096) () =
  let b = bed ?config () in
  let seg = Rwal.Engine.malloc b.t ~name:"db" ~size in
  Rwal.Engine.write b.t seg ~off:0 (Bytes.init size (fun i -> Char.chr (i land 0xff)));
  Rwal.Engine.init_done b.t;
  (b, seg)

let one_txn b seg ~off ~len fill =
  let txn = Rwal.Engine.begin_transaction b.t in
  Rwal.Engine.set_range txn seg ~off ~len;
  Rwal.Engine.write b.t seg ~off (Bytes.make len fill);
  Rwal.Engine.commit txn

(* ------------------------------------------------------------------ *)

let test_commit_at_network_speed_when_idle () =
  let b, seg = with_db () in
  let t0 = Clock.now b.clock in
  one_txn b seg ~off:0 ~len:8 'n';
  (* An idle system commits at remote-memory speed: tens of µs, no
     disk in the path. *)
  let dt = Clock.now b.clock - t0 in
  check_bool "well under a millisecond" true (dt < Time.us 100.);
  check_int "no stall yet" 0 (Rwal.stall_time b.t)

let test_sustained_load_stalls_at_disk_rate () =
  let b, seg = with_db () in
  (* Fill the async writer's buffer... *)
  for i = 0 to 7_999 do
    one_txn b seg ~off:(i * 64 mod 4000) ~len:48 'l'
  done;
  check_bool "stalled" true (Rwal.stall_time b.t > Time.zero);
  (* ...then measure the steady state: it converges to the drain rate
     divided by the bytes each commit adds (72-byte records). *)
  let t0 = Clock.now b.clock in
  for i = 0 to 1_999 do
    one_txn b seg ~off:(i * 64 mod 4000) ~len:48 'l'
  done;
  let tps = 2_000. /. Time.to_s (Clock.now b.clock - t0) in
  let cfg = Rwal.config b.t in
  let bound = cfg.drain_bytes_per_s /. 72. in
  check_bool
    (Printf.sprintf "disk-bound (%.0f tps vs %.0f)" tps bound)
    true (tps <= bound *. 1.1 && tps >= bound /. 2.)

let test_abort_restores () =
  let b, seg = with_db () in
  let before = Rwal.checksum b.t seg in
  let txn = Rwal.Engine.begin_transaction b.t in
  Rwal.Engine.set_range txn seg ~off:100 ~len:64;
  Rwal.Engine.write b.t seg ~off:100 (Bytes.make 64 'x');
  Rwal.Engine.abort txn;
  check_i64 "restored" before (Rwal.checksum b.t seg)

let recover_on b ~local =
  Rwal.recover ~cluster:b.cluster ~local ~server:b.server ~device:b.device ()

let test_recovery_replays_remote_log () =
  let b, seg = with_db () in
  one_txn b seg ~off:0 ~len:32 'R';
  one_txn b seg ~off:500 ~len:32 'S';
  let expect = Rwal.checksum b.t seg in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Power_outage);
  Cluster.restart_node b.cluster 0;
  let t2 = recover_on b ~local:0 in
  let seg2 = Option.get (Rwal.segment_by_name t2 "db") in
  check_i64 "state recovered from db file + remote log" expect (Rwal.checksum t2 seg2)

let test_recovery_on_third_node () =
  let b, seg = with_db () in
  one_txn b seg ~off:64 ~len:16 'T';
  let expect = Rwal.checksum b.t seg in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 = recover_on b ~local:2 in
  check_i64 "recovered elsewhere" expect
    (Rwal.checksum t2 (Option.get (Rwal.segment_by_name t2 "db")))

let test_uncommitted_txn_rolled_back () =
  let b, seg = with_db () in
  one_txn b seg ~off:0 ~len:16 'C';
  let expect = Rwal.checksum b.t seg in
  (* Updates without commit: local only, the remote tail was never
     bumped. *)
  let txn = Rwal.Engine.begin_transaction b.t in
  Rwal.Engine.set_range txn seg ~off:200 ~len:100;
  Rwal.Engine.write b.t seg ~off:200 (Bytes.make 100 'U');
  ignore txn;
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 = recover_on b ~local:2 in
  check_i64 "in-flight txn invisible" expect
    (Rwal.checksum t2 (Option.get (Rwal.segment_by_name t2 "db")))

let test_checkpoint_cycles_log () =
  let config = { Rwal.default_config with log_capacity = 8 * 1024 } in
  let b, seg = with_db ~config () in
  for i = 0 to 199 do
    one_txn b seg ~off:(i * 16 mod 4000) ~len:16 (Char.chr (65 + (i mod 26)))
  done;
  check_bool "checkpointed" true (Rwal.checkpoints b.t > 0);
  let expect = Rwal.checksum b.t seg in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 =
    Rwal.recover ~config ~cluster:b.cluster ~local:2 ~server:b.server ~device:b.device ()
  in
  check_i64 "recovers across checkpoints" expect
    (Rwal.checksum t2 (Option.get (Rwal.segment_by_name t2 "db")))

let test_log_mirror_death_fails_ops () =
  let b, seg = with_db () in
  ignore (Cluster.crash_node b.cluster 1 Cluster.Failure.Hardware_error);
  try
    one_txn b seg ~off:0 ~len:8 'd';
    Alcotest.fail "expected failure when the log mirror is gone"
  with Failure _ | Netram.Client.Unreachable _ -> ()

let prop_recovery_equals_live_state =
  QCheck.Test.make ~name:"remote-wal recovery equals the committed live state" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (int_bound 4000) (int_range 1 90)))
    (fun raw ->
      let b, seg = with_db () in
      List.iteri
        (fun i (off, len) ->
          let off = min off (4096 - len) in
          one_txn b seg ~off ~len (Char.chr (97 + (i mod 26))))
        raw;
      let expect = Rwal.checksum b.t seg in
      ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
      let t2 = recover_on b ~local:2 in
      Rwal.checksum t2 (Option.get (Rwal.segment_by_name t2 "db")) = expect)

let suite =
  [
    ("idle commits at network speed", `Quick, test_commit_at_network_speed_when_idle);
    ("sustained load stalls at disk rate", `Quick, test_sustained_load_stalls_at_disk_rate);
    ("abort restores", `Quick, test_abort_restores);
    ("recovery replays the remote log", `Quick, test_recovery_replays_remote_log);
    ("recovery on a third node", `Quick, test_recovery_on_third_node);
    ("uncommitted transaction rolled back", `Quick, test_uncommitted_txn_rolled_back);
    ("checkpoints cycle the log", `Quick, test_checkpoint_cycles_log);
    ("log-mirror death fails operations", `Quick, test_log_mirror_death_fails_ops);
    QCheck_alcotest.to_alcotest prop_recovery_equals_live_state;
  ]
