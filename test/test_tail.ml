(* Trace.Tail: the log2 sub-bucketed histograms must report percentiles
   within their advertised tolerance of the exact nearest-rank answer,
   the worst-K reservoir must retain exactly the slowest windows under
   threshold admission, the observer sink must feed per-phase (and
   per-mirror) histograms from a live stream, and worst-K exemplars
   must export as Perfetto flow events. *)

open Sim
module J = Harness.Json

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float = check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles vs sorted-array ground truth                  *)

(* Positive floats spanning ~6 orders of magnitude, without relying on
   any particular QCheck float generator. *)
let pos_floats =
  QCheck.make
    ~print:QCheck.Print.(pair (list float) float)
    QCheck.Gen.(
      pair
        (list_size (int_range 1 200)
           (map (fun i -> (float_of_int i +. 1.) *. 0.37) (int_range 0 1_000_000)))
        (oneofl [ 0.; 50.; 90.; 99.; 100. ]))

let prop_percentile_tolerance =
  QCheck.Test.make ~name:"histogram percentile within bucket tolerance" ~count:300 pos_floats
    (fun (samples, p) ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) samples;
      (* Ground truth is the upper nearest-rank order statistic — the
         same convention the histogram documents.  (Interpolated
         percentiles can sit between two arbitrarily distant order
         statistics, which no per-bucket bound can cover.) *)
      let sorted = List.sort compare samples in
      let n = List.length samples in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int (n - 1))) in
      let exact = List.nth sorted rank in
      let got = Stats.Histogram.percentile h p in
      let tol = Stats.Histogram.tolerance h in
      abs_float (got -. exact) <= (tol *. exact) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Reservoir: threshold admission keeps exactly the slowest K          *)

let span ?(cat = "txn") ?(args = []) ~name start stop =
  { Trace.Span.name; cat; start = Time.us start; stop = Time.us stop; args }

let test_reservoir () =
  let tail = Trace.Tail.create ~k:2 () in
  check_float "empty reservoir has no admission bar" 0. (Trace.Tail.threshold_us tail);
  List.iteri
    (fun i lat ->
      Trace.Tail.observe tail ~latency_us:lat
        ~spans:[ span ~name:"commit" ~args:[ ("txn", string_of_int i) ] 0. lat ]
        ~events:[])
    [ 10.; 50.; 20.; 40.; 30. ];
  check_int "every observation counted" 5 (Trace.Tail.count tail);
  check_int "latency histogram fed" 5 (Stats.Histogram.count (Trace.Tail.latency tail));
  (match Trace.Tail.phase_hist tail "commit" with
  | Some h -> check_int "phase histogram fed per observe" 5 (Stats.Histogram.count h)
  | None -> Alcotest.fail "commit phase histogram missing");
  let ex = Trace.Tail.exemplars tail in
  check_int "exactly K retained" 2 (List.length ex);
  (match ex with
  | [ a; b ] ->
      check_float "slowest first" 50. a.Trace.Tail.e_latency_us;
      check_float "then second slowest" 40. b.Trace.Tail.e_latency_us;
      check (Alcotest.option Alcotest.string) "window names its txn" (Some "1")
        (Trace.Tail.exemplar_txn a)
  | _ -> Alcotest.fail "expected 2 exemplars");
  check_float "admission bar = fastest retained" 40. (Trace.Tail.threshold_us tail);
  check_bool "phase p99 reported" true (Trace.Tail.phase_p99s tail <> [])

(* ------------------------------------------------------------------ *)
(* Observer sink: live per-phase and per-mirror feeding                *)

let test_sink_phases () =
  let tail = Trace.Tail.create () in
  let sink = Trace.Tail.sink tail in
  check_bool "observer sink is enabled" true (Trace.Sink.enabled sink);
  Trace.Sink.span sink ~cat:"txn" ~name:"set_range" ~start:(Time.us 0.) ~stop:(Time.us 2.);
  Trace.Sink.span
    ~args:[ ("mirror", "1") ]
    sink ~cat:"txn" ~name:"remote_undo" ~start:(Time.us 2.) ~stop:(Time.us 5.);
  Trace.Sink.span sink ~cat:"recovery" ~name:"probe" ~start:(Time.us 0.) ~stop:(Time.us 1.);
  check_int "only txn phases recorded" 2 (List.length (Trace.Tail.phases tail));
  check_bool "per-mirror split recorded" true
    (List.exists
       (fun ((n, m), _) -> n = "remote_undo" && m = 1)
       (Trace.Tail.mirror_phases tail));
  check_bool "non-txn categories ignored" true (Trace.Tail.phase_hist tail "probe" = None)

(* ------------------------------------------------------------------ *)
(* Flow export: exemplars become Perfetto flow events                  *)

let test_flow_export () =
  let tail = Trace.Tail.create ~k:1 () in
  let spans = [ span ~name:"commit" ~args:[ ("txn", "7") ] 0. 10. ] in
  let events =
    [
      {
        Trace.Event.name = "pkt.full64";
        cat = "sci";
        at = Time.us 3.;
        args =
          [ ("op", "commit_propagate"); ("txn", "7"); ("node", "1"); ("len", "64");
            ("dir", "write") ];
      };
    ]
  in
  Trace.Tail.observe tail ~latency_us:10. ~spans ~events;
  let e = List.hd (Trace.Tail.exemplars tail) in
  let flows = List.map (fun tl -> ("worst txn 7 (10.0us)", tl)) (Trace.Tail.timelines e) in
  check_bool "exemplar window stitches into a timeline" true (flows <> []);
  let json = Trace.Export.chrome_json ~flows ~spans ~events () in
  let j = J.parse_exn json in
  let evs = J.to_list (J.member_exn "traceEvents" j) in
  let of_ph ph =
    List.filter
      (fun e ->
        match J.member "ph" e with Some p -> J.to_string p = ph | None -> false)
      evs
  in
  check_bool "flow start event emitted" true (of_ph "s" <> []);
  check_bool "flow finish event emitted" true (of_ph "f" <> []);
  match of_ph "s" with
  | e :: _ ->
      check (Alcotest.option Alcotest.string) "flow is named" (Some "worst txn 7 (10.0us)")
        (Option.map J.to_string (J.member "name" e))
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* End to end: a measured run feeds the tail through Measure           *)

let test_measure_integration () =
  let bed = Harness.Testbed.replicated_bed ~mirrors:2 () in
  let t = bed.Harness.Testbed.perseas in
  let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
  let rng = Rng.create 7 in
  let db = W.setup t ~params:Workloads.Debit_credit.small_params in
  let sink = Trace.Sink.memory () in
  Perseas.set_sink t sink;
  let tail = Trace.Tail.create ~k:4 () in
  let r =
    Harness.Measure.run ~clock:bed.Harness.Testbed.clock ~sink ~tail ~warmup:20 ~iters:200
      (fun _ -> W.transaction db rng)
  in
  check_int "every measured txn observed" 200 (Trace.Tail.count tail);
  let ex = Trace.Tail.exemplars tail in
  check_bool "exemplars retained" true (ex <> []);
  let worst = List.hd ex in
  check_bool "worst exemplar is at least the p99" true
    (worst.Trace.Tail.e_latency_us >= r.Harness.Measure.p99_us -. 1e-9);
  check_bool "worst exemplar fully phase-covered" true
    (Harness.Experiments.exemplar_coverage worst >= 0.95);
  check_bool "exemplar timeline non-empty" true (Trace.Tail.timelines worst <> []);
  check_bool "exemplar names its txn" true (Trace.Tail.exemplar_txn worst <> None);
  (* The attribution contract behind `perseas_cli explain`: named
     phases explain (at least) 95% of the measured p99. *)
  let phase_sum =
    List.fold_left (fun acc (_, p) -> acc +. p) 0. (Trace.Tail.phase_p99s tail)
  in
  check_bool "phases attribute >= 95% of p99" true
    (phase_sum >= 0.95 *. r.Harness.Measure.p99_us);
  (* Per-mirror splits exist for the mirror-side phases at 2 mirrors. *)
  check_bool "per-mirror phase histograms populated" true
    (List.length (Trace.Tail.mirror_phases tail) >= 2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_percentile_tolerance;
    Alcotest.test_case "worst-K reservoir threshold admission" `Quick test_reservoir;
    Alcotest.test_case "observer sink feeds phase histograms" `Quick test_sink_phases;
    Alcotest.test_case "exemplars export as Perfetto flow events" `Quick test_flow_export;
    Alcotest.test_case "Measure feeds tail: attribution + exemplars" `Quick
      test_measure_integration;
  ]
