module I = Perseas.Iset

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let ivals = Alcotest.(list (pair int int))

let of_list = List.fold_left (fun s (off, len) -> I.add s ~off ~len) I.empty

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_empty () =
  check_bool "empty is empty" true (I.is_empty I.empty);
  check_int "empty cardinal" 0 (I.cardinal I.empty);
  check_int "empty total" 0 (I.total I.empty);
  check ivals "empty intervals" [] (I.intervals I.empty);
  check_bool "empty covers nothing" false (I.covers I.empty ~off:0 ~len:1);
  check_bool "zero-length always covered" true (I.covers I.empty ~off:5 ~len:0);
  check ivals "everything uncovered" [ (3, 7) ] (I.uncovered I.empty ~off:3 ~len:7)

let test_add_merges () =
  let s = of_list [ (0, 64); (128, 64) ] in
  check ivals "disjoint stay apart" [ (0, 64); (128, 64) ] (I.intervals s);
  check ivals "adjacent merge" [ (0, 192) ] (I.intervals (I.add s ~off:64 ~len:64));
  check ivals "overlap merges" [ (0, 100); (128, 64) ] (I.intervals (I.add s ~off:32 ~len:68));
  check ivals "bridging swallows both" [ (0, 192) ] (I.intervals (I.add s ~off:10 ~len:140));
  check ivals "superset swallows all" [ (0, 300) ] (I.intervals (I.add s ~off:0 ~len:300));
  check ivals "duplicate is no-op" (I.intervals s) (I.intervals (I.add s ~off:0 ~len:64));
  check ivals "zero len is no-op" (I.intervals s) (I.intervals (I.add s ~off:500 ~len:0));
  check_int "total counts merged bytes" 192 (I.total (I.add s ~off:64 ~len:64))

let test_covers_uncovered () =
  let s = of_list [ (10, 20); (40, 10) ] in
  check_bool "inside" true (I.covers s ~off:12 ~len:5);
  check_bool "exact" true (I.covers s ~off:10 ~len:20);
  check_bool "spans a gap" false (I.covers s ~off:10 ~len:40);
  check_bool "before" false (I.covers s ~off:0 ~len:5);
  check_bool "tail past end" false (I.covers s ~off:45 ~len:10);
  check ivals "hole in the middle" [ (30, 10) ] (I.uncovered s ~off:10 ~len:40);
  check ivals "flanks and hole" [ (5, 5); (30, 10); (50, 5) ] (I.uncovered s ~off:5 ~len:50);
  check ivals "fully covered" [] (I.uncovered s ~off:41 ~len:8);
  (* Merged adjacent declarations count as one covered run. *)
  let s = of_list [ (0, 10); (10, 10) ] in
  check_bool "spanning two merged adds" true (I.covers s ~off:5 ~len:10)

let test_snap () =
  let s = of_list [ (10, 20); (100, 8) ] in
  check ivals "snap widens to lines (and merges adjacency)" [ (0, 128) ]
    (I.intervals (I.snap s ~align:64 ~limit:192));
  check ivals "snap clamps to limit" [ (0, 100) ] (I.intervals (I.snap s ~align:64 ~limit:100));
  let s = of_list [ (10, 20); (200, 8) ] in
  check ivals "distant lines stay apart" [ (0, 64); (192, 64) ]
    (I.intervals (I.snap s ~align:64 ~limit:4096));
  let s = of_list [ (0, 4); (60, 4) ] in
  check ivals "snap merges runs sharing a line" [ (0, 64) ] (I.intervals (I.snap s ~align:64 ~limit:4096))

let test_glue () =
  (* Runs in disjoint 64-byte line spans keep their exact extents... *)
  let s = of_list [ (3, 10); (200, 8) ] in
  check ivals "isolated runs unchanged" [ (3, 10); (200, 8) ] (I.intervals (I.glue s ~align:64));
  (* ... runs whose line spans touch ship their exact hull. *)
  let s = of_list [ (0, 4); (60, 4) ] in
  check ivals "same line glues to hull" [ (0, 64) ] (I.intervals (I.glue s ~align:64));
  let s = of_list [ (10, 20); (40, 10) ] in
  check ivals "touching line spans glue to hull" [ (10, 40) ] (I.intervals (I.glue s ~align:64));
  let s = of_list [ (0, 64); (128, 64) ] in
  check ivals "gap of a whole line stays split" [ (0, 64); (128, 64) ]
    (I.intervals (I.glue s ~align:64));
  check ivals "glue of empty" [] (I.intervals (I.glue I.empty ~align:64))

let test_intersects_union () =
  let a = of_list [ (0, 64); (128, 64) ] and b = of_list [ (64, 64) ] in
  check_bool "adjacent runs do not intersect" false (I.intersects a b);
  check_bool "intersects is irreflexive on empty" false (I.intersects I.empty I.empty);
  check_bool "overlap detected" true (I.intersects a (of_list [ (60, 8) ]));
  check_bool "one-byte overlap detected" true (I.intersects a (of_list [ (191, 1) ]));
  check_bool "containment detected" true (I.intersects a (of_list [ (10, 4) ]));
  check ivals "union merges across both" [ (0, 192) ] (I.intervals (I.union a b));
  check ivals "union with empty" (I.intervals a) (I.intervals (I.union a I.empty));
  check ivals "union with empty (flipped)" (I.intervals a) (I.intervals (I.union I.empty a))

let test_invalid () =
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> ignore (I.add I.empty ~off:(-1) ~len:4));
  expect_invalid (fun () -> ignore (I.add I.empty ~off:0 ~len:(-4)));
  expect_invalid (fun () -> ignore (I.uncovered I.empty ~off:(-1) ~len:4));
  expect_invalid (fun () -> ignore (I.snap I.empty ~align:0 ~limit:64));
  expect_invalid (fun () -> ignore (I.glue I.empty ~align:(-64)))

(* ------------------------------------------------------------------ *)
(* Properties against a naive bit-array model *)

let universe = 512

let model_of ranges =
  let m = Array.make universe false in
  List.iter (fun (off, len) -> for i = off to off + len - 1 do m.(i) <- true done) ranges;
  m

let model_intervals m =
  let acc = ref [] and start = ref None in
  for i = 0 to universe do
    match (!start, i < universe && m.(i)) with
    | None, true -> start := Some i
    | Some s, false ->
        acc := (s, i - s) :: !acc;
        start := None
    | _ -> ()
  done;
  List.rev !acc

let gen_ranges =
  QCheck.(
    list_of_size (Gen.int_range 0 30)
      (pair (int_bound (universe - 1)) (int_range 1 64)))

let clamp (off, len) = (off, min len (universe - off))

let prop_matches_model =
  QCheck.Test.make ~name:"iset matches the bit-array model" ~count:500
    QCheck.(pair gen_ranges gen_ranges)
    (fun (adds, queries) ->
      let adds = List.map clamp adds in
      let s = of_list adds in
      let m = model_of adds in
      if I.intervals s <> model_intervals m then
        QCheck.Test.fail_reportf "intervals diverge: %a" I.pp s;
      if I.total s <> List.fold_left (fun acc (_, l) -> acc + l) 0 (model_intervals m) then
        QCheck.Test.fail_report "total diverges";
      List.iter
        (fun q ->
          let off, len = clamp q in
          let covered = ref true and frags = ref [] and run = ref None in
          for i = off to off + len - 1 do
            if not m.(i) then covered := false;
            match (!run, m.(i)) with
            | None, false -> run := Some i
            | Some s, true ->
                frags := (s, i - s) :: !frags;
                run := None
            | _ -> ()
          done;
          (match !run with Some s -> frags := (s, off + len - s) :: !frags | None -> ());
          if I.covers s ~off ~len <> !covered then
            QCheck.Test.fail_reportf "covers diverges at [%d,+%d)" off len;
          if I.uncovered s ~off ~len <> List.rev !frags then
            QCheck.Test.fail_reportf "uncovered diverges at [%d,+%d)" off len)
        queries;
      true)

(* glue output must cover the input, stay within its hull per line span,
   and never split or reorder. *)
let prop_glue_sound =
  QCheck.Test.make ~name:"glue covers its input and only bridges shared lines" ~count:500 gen_ranges
    (fun adds ->
      let adds = List.map clamp adds in
      let s = of_list adds in
      let g = I.glue s ~align:64 in
      (* Every input byte is still covered. *)
      List.iter
        (fun (off, len) ->
          if len > 0 && not (I.covers g ~off ~len) then
            QCheck.Test.fail_reportf "glue lost [%d,+%d)" off len)
        adds;
      (* Gluing adds no bytes outside the input's line span and never
         increases the run count. *)
      if I.cardinal g > I.cardinal s then QCheck.Test.fail_report "glue split a run";
      List.iter
        (fun (off, len) ->
          let lo = off / 64 * 64 and hi = (off + len + 63) / 64 * 64 in
          let touched =
            List.exists (fun (o, l) -> o < hi && lo < o + l) (I.intervals s)
          in
          if not touched then QCheck.Test.fail_reportf "glued run [%d,+%d) in untouched lines" off len)
        (I.intervals g);
      true)

(* intersects/union against the same bit-array model. *)
let prop_intersects_union =
  QCheck.Test.make ~name:"intersects and union match the bit-array model" ~count:500
    QCheck.(pair gen_ranges gen_ranges)
    (fun (ra, rb) ->
      let ra = List.map clamp ra and rb = List.map clamp rb in
      let a = of_list ra and b = of_list rb in
      let ma = model_of ra and mb = model_of rb in
      let model_hit = ref false in
      for i = 0 to universe - 1 do
        if ma.(i) && mb.(i) then model_hit := true
      done;
      if I.intersects a b <> !model_hit then
        QCheck.Test.fail_reportf "intersects diverges: %a vs %a" I.pp a I.pp b;
      if I.intersects a b <> I.intersects b a then QCheck.Test.fail_report "intersects asymmetric";
      let mu = Array.mapi (fun i x -> x || mb.(i)) ma in
      if I.intervals (I.union a b) <> model_intervals mu then
        QCheck.Test.fail_reportf "union diverges: %a vs %a" I.pp a I.pp b;
      true)

let suite =
  [
    ("empty set", `Quick, test_empty);
    ("add merges overlap and adjacency", `Quick, test_add_merges);
    ("covers and uncovered", `Quick, test_covers_uncovered);
    ("snap to packet lines", `Quick, test_snap);
    ("glue shared-line runs", `Quick, test_glue);
    ("intersects and union", `Quick, test_intersects_union);
    ("invalid arguments rejected", `Quick, test_invalid);
    QCheck_alcotest.to_alcotest prop_matches_model;
    QCheck_alcotest.to_alcotest prop_glue_sound;
    QCheck_alcotest.to_alcotest prop_intersects_union;
  ]
