(* Fuzzy checkpoints: unit tests for the take/truncate lifecycle, torn
   slots, target loss, the bounded retired-epoch table, post-truncation
   incremental recruiting — plus the QCheck differential oracle pitting
   recover-from-checkpoint against plain undo-replay recovery from the
   same crash, and the crash sweeps over an in-progress checkpoint. *)

open Sim
module P = Perseas
module Ckpt = Perseas.Checkpoint
module Crashpoint = Harness.Crashpoint
module Device = Disk.Device

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64

type bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list; (* mirrors, node ids 1..k *)
  ckpt_server : Netram.Server.t; (* node k+1 *)
  ckpt_node : int;
  spare : int; (* node k+2, no server *)
  t : P.t;
}

(* Primary on node 0, [k] mirrors on 1..k, the checkpoint target's node
   at k+1, a free spare last — independent power supplies throughout. *)
let bed ?(config = P.default_config) ?(k = 1) () =
  let clock = Clock.create () in
  let dram = 4 * 1024 * 1024 in
  let names =
    ("primary" :: List.init k (Printf.sprintf "mirror%d")) @ [ "ckpt"; "spare" ]
  in
  let specs = List.mapi (fun i n -> Cluster.spec ~dram_size:dram ~power_supply:i n) names in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init k (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  let t = P.init_replicated ~config clients in
  {
    clock;
    cluster;
    servers;
    ckpt_server = Netram.Server.create (Cluster.node cluster (k + 1));
    ckpt_node = k + 1;
    spare = k + 2;
    t;
  }

let seg_size = 4096

let with_db ?config ?k () =
  let b = bed ?config ?k () in
  List.iter
    (fun name ->
      let seg = P.malloc b.t ~name ~size:seg_size in
      let salt = String.length name * 97 in
      P.write b.t seg ~off:0 (Bytes.init seg_size (fun i -> Char.chr ((i * 13 + salt) land 0xff))))
    [ "x"; "y" ];
  P.init_remote_db b.t;
  b

let seg b name = Option.get (P.segment b.t name)

let commit_fill b name ~off fill =
  let s = seg b name in
  let txn = P.begin_transaction b.t in
  P.set_range txn s ~off ~len:128;
  P.write b.t s ~off (Bytes.make 128 fill);
  P.commit txn

let signature t =
  List.sort compare (List.map (fun s -> (P.segment_name s, P.checksum t s)) (P.segments t))

(* ------------------------------------------------------------------ *)
(* take / truncation / stats                                           *)

let test_take_truncates () =
  let b = with_db () in
  P.Checkpoint.set_ram_target b.t ~server:b.ckpt_server;
  commit_fill b "x" ~off:64 'a';
  commit_fill b "y" ~off:64 'b';
  let hwm_before = (P.stats b.t).P.undo_hwm_bytes in
  check_bool "commits grew the undo log" true (hwm_before > 0);
  let cut, truncated = Ckpt.take b.t in
  check_i64 "cut is the commit point" (P.epoch b.t) cut;
  check_bool "undo bytes were reclaimed" true (truncated > 0);
  let st = P.stats b.t in
  check_int "one checkpoint taken" 1 st.P.checkpoints_taken;
  check_int "truncation accounted" truncated st.P.log_truncated_bytes;
  check_int "high-water mark reset" 0 st.P.undo_hwm_bytes;
  check_bool "whole database shipped" true (st.P.checkpoint_bytes >= 2 * seg_size);
  check_i64 "generation published" 1L (Ckpt.generation b.t);
  (* The engine stays fully usable after truncation. *)
  commit_fill b "x" ~off:512 'c';
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors b.t)

let test_lifecycle_guards () =
  let b = with_db () in
  Alcotest.check_raises "take without a target"
    (Failure "Perseas.Checkpoint.start: no checkpoint target") (fun () -> ignore (Ckpt.take b.t));
  (* A target on the primary's own node protects nothing. *)
  let self = Netram.Server.create (Cluster.node b.cluster 0) in
  Alcotest.check_raises "refuses a local-node target"
    (Invalid_argument "Perseas.Checkpoint.set_ram_target: target must live on a remote node")
    (fun () -> Ckpt.set_ram_target b.t ~server:self);
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  Ckpt.start b.t;
  Alcotest.check_raises "no concurrent checkpoints"
    (Failure "Perseas.Checkpoint.start: checkpoint already in flight") (fun () -> Ckpt.start b.t);
  Alcotest.check_raises "step wants a positive budget"
    (Invalid_argument "Perseas.Checkpoint.step: budget must be positive") (fun () ->
      ignore (Ckpt.step b.t ~budget:0));
  Ckpt.abandon b.t;
  check_bool "abandon clears the in-flight state" false (Ckpt.in_flight b.t);
  check_i64 "abandon publishes nothing" 0L (Ckpt.generation b.t)

(* ------------------------------------------------------------------ *)
(* Fuzzy cut: commits landing mid-checkpoint are in the snapshot        *)

let test_fuzzy_cut_consistent () =
  let b = with_db () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  commit_fill b "x" ~off:64 'a';
  Ckpt.start b.t;
  commit_fill b "x" ~off:1024 'm' (* lands after the slot pass begins *);
  let done_ = Ckpt.step b.t ~budget:2048 in
  check_bool "2 KiB budget cannot finish 8 KiB" false done_;
  commit_fill b "y" ~off:1024 'n';
  ignore (Ckpt.finalize b.t);
  let committed = signature b.t in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 =
    P.recover_replicated ~config:(P.config b.t) ~checkpoint:(P.Ram_source b.ckpt_server)
      ~cluster:b.cluster ~local:b.ckpt_node ~servers:b.servers ()
  in
  check
    Alcotest.(list (pair string int64))
    "restored image equals the committed one" committed (signature t2);
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors t2)

let test_open_txn_scrubbed_out () =
  let b = with_db () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  commit_fill b "x" ~off:64 'a';
  (* An uncommitted transaction is dirty in the local image while the
     snapshot ships; its bytes must be scrubbed back to before-images. *)
  let s = seg b "x" in
  let txn = P.begin_transaction b.t in
  P.set_range txn s ~off:2048 ~len:128;
  P.write b.t s ~off:2048 (Bytes.make 128 '!');
  ignore (Ckpt.take b.t);
  P.abort txn;
  let committed = signature b.t in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 =
    P.recover_replicated ~config:(P.config b.t) ~checkpoint:(P.Ram_source b.ckpt_server)
      ~cluster:b.cluster ~local:b.ckpt_node ~servers:b.servers ()
  in
  check
    Alcotest.(list (pair string int64))
    "no uncommitted byte survived" committed (signature t2)

(* ------------------------------------------------------------------ *)
(* Torn slots fall back                                                *)

let test_torn_slot_falls_back () =
  let b = with_db () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  commit_fill b "x" ~off:64 'a';
  ignore (Ckpt.take b.t) (* generation 1: valid *);
  commit_fill b "y" ~off:64 'b';
  Ckpt.start b.t;
  ignore (Ckpt.step b.t ~budget:1024) (* generation 2: torn — never finalized *);
  let committed = signature b.t in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 =
    P.recover_replicated ~config:(P.config b.t) ~checkpoint:(P.Ram_source b.ckpt_server)
      ~cluster:b.cluster ~local:b.ckpt_node ~servers:b.servers ()
  in
  check
    Alcotest.(list (pair string int64))
    "torn slot never trusted" committed (signature t2);
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors t2)

(* ------------------------------------------------------------------ *)
(* Target loss: typed error, engine keeps committing                    *)

let test_target_lost () =
  let b = with_db () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  commit_fill b "x" ~off:64 'a';
  ignore (Cluster.crash_node b.cluster b.ckpt_node Cluster.Failure.Hardware_error);
  (match Ckpt.take b.t with
  | _ -> Alcotest.fail "expected Target_lost"
  | exception Ckpt.Target_lost _ -> ());
  check_bool "target dropped" false (Ckpt.target_set b.t);
  check_bool "nothing left in flight" false (Ckpt.in_flight b.t);
  (* Checkpointing is an optimisation: commits must keep flowing. *)
  commit_fill b "y" ~off:64 'b';
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors b.t);
  (* A replacement target starts over from generation 0. *)
  let fresh = Netram.Server.create (Cluster.node b.cluster b.spare) in
  Ckpt.set_ram_target b.t ~server:fresh;
  let _cut, _ = Ckpt.take b.t in
  check_i64 "fresh target, fresh generations" 1L (Ckpt.generation b.t)

(* ------------------------------------------------------------------ *)
(* Bounded retired-epoch table (the independent satellite fix)          *)

let test_retired_table_bounded () =
  let config = { P.default_config with P.retired_limit = 2 } in
  let b = with_db ~config ~k:5 () in
  commit_fill b "x" ~off:64 'a';
  (* Four distinct mirrors leave, one at a time: the old engine grew a
     retired entry per departure forever; the cap must hold it at 2,
     evicting the oldest epoch first. *)
  let paused = [ 0; 1; 2; 3 ] in
  List.iteri
    (fun i idx ->
      Netram.Server.pause (List.nth b.servers idx);
      commit_fill b "x" ~off:(128 * (i + 2)) (Char.chr (Char.code 'b' + i));
      check_bool
        (Printf.sprintf "cap holds after loss %d" (i + 1))
        true
        (P.retired_count b.t <= 2))
    paused;
  check_int "exactly the cap survives" 2 (P.retired_count b.t);
  (* The oldest retiree was evicted: its comeback is a full copy.  The
     newest is still remembered: its comeback is incremental. *)
  Netram.Server.resume (List.nth b.servers 0);
  let r_old = P.recruit_mirror b.t ~server:(List.nth b.servers 0) in
  check_bool "evicted retiree falls back to a full copy" true (r_old.P.mode = P.Full);
  Netram.Server.resume (List.nth b.servers 3);
  let r_new = P.recruit_mirror b.t ~server:(List.nth b.servers 3) in
  check_bool "remembered retiree resyncs incrementally" true (r_new.P.mode = P.Incremental);
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors b.t)

let test_retired_limit_validated () =
  Alcotest.check_raises "retired_limit must be positive"
    (Invalid_argument "Perseas.init: retired_limit must be >= 1") (fun () ->
      ignore (with_db ~config:{ P.default_config with P.retired_limit = 0 } ()))

(* ------------------------------------------------------------------ *)
(* Post-truncation incremental recruit (Supervisor path)                *)

let test_incremental_recruit_after_truncation () =
  let b = with_db ~k:2 () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  commit_fill b "x" ~off:64 'a';
  (* Mirror 1 leaves mid-life... *)
  Netram.Server.pause (List.nth b.servers 1);
  commit_fill b "x" ~off:512 'b';
  check_int "loss noticed" 1 (P.mirror_count b.t);
  (* ...a checkpoint truncates the dirty-range log it will need... *)
  ignore (Ckpt.take b.t);
  commit_fill b "y" ~off:512 'c';
  (* ...and its comeback must still be provably-safe incremental: the
     truncated entries live on in the checkpoint summary. *)
  Netram.Server.resume (List.nth b.servers 1);
  let r = P.recruit_mirror b.t ~server:(List.nth b.servers 1) in
  check_bool "incremental despite truncation" true (r.P.mode = P.Incremental);
  check_bool "and cheaper than a full copy" true (r.P.bytes_copied < r.P.full_bytes);
  check Alcotest.(list (pair string int)) "resynced mirror is clean" []
    (P.verify_mirrors b.t)

(* ------------------------------------------------------------------ *)
(* Disk target                                                          *)

let test_disk_checkpoint () =
  let b = with_db () in
  let device =
    Device.create ~clock:b.clock
      ~backend:(Device.Rio { Device.default_rio with Device.ups = true })
      ~capacity:(1024 * 1024)
  in
  Ckpt.set_disk_target b.t ~device;
  commit_fill b "x" ~off:64 'a';
  commit_fill b "y" ~off:64 'b';
  ignore (Ckpt.take b.t);
  commit_fill b "x" ~off:1024 'c' (* x is newer than the cut, y is not *);
  let committed = signature b.t in
  ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
  let t2 =
    P.recover_replicated ~config:(P.config b.t) ~checkpoint:(P.Disk_source device)
      ~cluster:b.cluster ~local:b.spare ~servers:b.servers ()
  in
  check
    Alcotest.(list (pair string int64))
    "disk slot + mirror tail agree" committed (signature t2);
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors t2)

let test_disk_too_small () =
  let b = with_db () in
  let device =
    Device.create ~clock:b.clock
      ~backend:(Device.Rio { Device.default_rio with Device.ups = true })
      ~capacity:512
  in
  check_bool "rejects an undersized device" true
    (match Ckpt.set_disk_target b.t ~device with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Background checkpointer                                              *)

let test_auto_checkpoints () =
  let b = with_db () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  let events = Events.create b.clock in
  Ckpt.auto b.t ~events ~interval:(Time.us 50.) ~until:(Time.ms 10.) ~budget:4096;
  for i = 0 to 39 do
    commit_fill b "x" ~off:(64 * ((i mod 8) + 1)) (Char.chr (Char.code 'a' + (i mod 26)));
    Clock.advance b.clock (Time.us 50.);
    Events.run_due events
  done;
  let st = P.stats b.t in
  check_bool "checkpoints published in the background" true (st.P.checkpoints_taken >= 1);
  check_bool "and the log was truncated" true (st.P.log_truncated_bytes > 0);
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors b.t)

(* ------------------------------------------------------------------ *)
(* Churn integration: the supervisor heals across log truncations       *)

let test_churn_with_checkpoints () =
  (* Full snapshots every 4 ms of virtual time: frequent enough for
     several truncations inside the 40 ms horizon, spaced enough that
     shipping the whole database does not crowd out the workload. *)
  let params =
    { Harness.Churn.default_params with checkpoint_interval = Some (Time.ms 4.) }
  in
  let r = Harness.Churn.run ~params () in
  Harness.Churn.check r (* zero committed-data loss, mirrors clean *);
  let st = r.Harness.Churn.stats in
  check_bool "checkpoints fired under churn" true (st.P.checkpoints_taken >= 1);
  check_bool "and truncated the log" true (st.P.log_truncated_bytes > 0)

(* ------------------------------------------------------------------ *)
(* Parallel recovery cost model                                         *)

let test_helpers_cut_recovery_time () =
  let recovery ~helpers =
    let b = with_db () in
    commit_fill b "x" ~off:64 'a';
    ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
    let t0 = Clock.now b.clock in
    let t2 =
      P.recover_replicated ~config:(P.config b.t) ~helpers ~cluster:b.cluster ~local:b.spare
        ~servers:b.servers ()
    in
    (signature t2, Time.to_us (Clock.now b.clock - t0))
  in
  let sig1, solo = recovery ~helpers:[] in
  let sig2, helped = recovery ~helpers:[ 1 ] in
  check Alcotest.(list (pair string int64)) "helpers change time, not bytes" sig1 sig2;
  check_bool "a helper stream shortens recovery" true (helped < solo)

(* ------------------------------------------------------------------ *)
(* QCheck differential oracle: checkpoint recovery vs plain replay      *)

(* Deterministic pseudo-random stream (QCheck shrinks the seed, the
   stream derives everything else). *)
let lcg seed =
  let s = ref ((abs seed * 2) + 1) in
  fun n ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod n

exception Crash

(* One universe: build, run [ncommits] random transactions interleaved
   with a checkpoint lifecycle, optionally crashing the primary just
   before packet [k].  Returns the bed (crashed or not). *)
let universe ~elision ~group ~seed ~crash_at () =
  let config =
    { P.default_config with P.redundancy_elision = elision; P.group_commit = group }
  in
  let b = with_db ~config () in
  Ckpt.set_ram_target b.t ~server:b.ckpt_server;
  let rand = lcg seed in
  let sent = ref 0 in
  let hook () =
    (match crash_at with Some k when !sent >= k -> raise Crash | _ -> ());
    incr sent
  in
  P.set_packet_hook b.t (Some hook);
  let ck f = try f () with Ckpt.Target_lost _ -> () in
  (try
     for i = 0 to 5 do
       let txn = P.begin_transaction b.t in
       for _ = 0 to rand 3 do
         let s = seg b (if rand 2 = 0 then "x" else "y") in
         let off = 64 * rand 40 in
         let len = 32 + rand 96 in
         P.set_range txn s ~off ~len;
         P.write b.t s ~off (Bytes.make len (Char.chr (33 + rand 90)))
       done;
       P.commit txn;
       match i with
       | 1 -> ck (fun () -> ignore (Ckpt.take b.t))
       | 3 -> ck (fun () -> Ckpt.start b.t)
       | 4 -> if Ckpt.in_flight b.t then ck (fun () -> ignore (Ckpt.step b.t ~budget:2048))
       | 5 -> if Ckpt.in_flight b.t then ck (fun () -> ignore (Ckpt.finalize b.t))
       | _ -> ()
     done
   with Crash -> ());
  P.set_packet_hook b.t None;
  (b, !sent)

let prop_ckpt_recovery_differential =
  QCheck.Test.make ~name:"checkpoint recovery == plain undo-replay recovery" ~count:12
    QCheck.(pair (pair bool (int_range 1 3)) (pair small_nat small_nat))
    (fun ((elision, group), (seed, kpick)) ->
      (* Dry run measures the packet schedule; the two crashing
         universes are byte-identical up to the same cut. *)
      let _, total = universe ~elision ~group ~seed ~crash_at:None () in
      let k = kpick mod (total + 1) in
      let crashed () =
        let b, _ = universe ~elision ~group ~seed ~crash_at:(Some k) () in
        ignore (Cluster.crash_node b.cluster 0 Cluster.Failure.Software_error);
        b
      in
      let a = crashed () in
      let ta =
        P.recover_replicated ~config:(P.config a.t) ~checkpoint:(P.Ram_source a.ckpt_server)
          ~cluster:a.cluster ~local:a.ckpt_node ~servers:a.servers ()
      in
      let bb = crashed () in
      let tb =
        P.recover_replicated ~config:(P.config bb.t) ~cluster:bb.cluster ~local:bb.spare
          ~servers:bb.servers ()
      in
      if signature ta <> signature tb then
        QCheck.Test.fail_reportf
          "images diverge at k=%d/%d (elision %b, group %d): checkpoint path != replay path" k
          total elision group;
      if P.epoch ta <> P.epoch tb then QCheck.Test.fail_report "epochs diverge";
      if P.verify_mirrors ta <> [] then QCheck.Test.fail_report "checkpoint path: dirty mirrors";
      if P.verify_mirrors tb <> [] then QCheck.Test.fail_report "replay path: dirty mirrors";
      true)

(* ------------------------------------------------------------------ *)
(* Crash sweeps: every packet of an in-progress checkpoint              *)

let sweep_ok victim =
  let r = Crashpoint.sweep ~victim (Crashpoint.checkpoint_scenario ()) in
  check_bool
    (Printf.sprintf "%s: sweep covers every packet" (Crashpoint.victim_label victim))
    true
    (r.Crashpoint.total_packets > 0
    && List.length r.Crashpoint.points = r.Crashpoint.total_packets + 1);
  check_bool
    (Printf.sprintf "%s: no mirror mismatches" (Crashpoint.victim_label victim))
    true
    (List.for_all (fun p -> p.Crashpoint.mismatches = 0) r.Crashpoint.points)

let test_sweep_primary () = sweep_ok Crashpoint.Primary
let test_sweep_mirror () = sweep_ok (Crashpoint.Mirror 0)
let test_sweep_ckpt_target () = sweep_ok Crashpoint.Ckpt_target

let suite =
  [
    ("take truncates undo, dirty and hwm", `Quick, test_take_truncates);
    ("lifecycle guards", `Quick, test_lifecycle_guards);
    ("fuzzy cut is consistent", `Quick, test_fuzzy_cut_consistent);
    ("open transaction scrubbed out of the snapshot", `Quick, test_open_txn_scrubbed_out);
    ("torn slot falls back to the previous generation", `Quick, test_torn_slot_falls_back);
    ("target loss is survivable and typed", `Quick, test_target_lost);
    ("retired-epoch table is bounded", `Quick, test_retired_table_bounded);
    ("retired_limit is validated", `Quick, test_retired_limit_validated);
    ("incremental recruit survives truncation", `Quick, test_incremental_recruit_after_truncation);
    ("disk checkpoint restores", `Quick, test_disk_checkpoint);
    ("undersized disk target rejected", `Quick, test_disk_too_small);
    ("background checkpointer", `Quick, test_auto_checkpoints);
    ("churn heals across truncations", `Slow, test_churn_with_checkpoints);
    ("helper nodes shorten recovery", `Quick, test_helpers_cut_recovery_time);
    ("crash sweep: primary victim", `Slow, test_sweep_primary);
    ("crash sweep: mirror victim", `Slow, test_sweep_mirror);
    ("crash sweep: checkpoint-target victim", `Slow, test_sweep_ckpt_target);
    QCheck_alcotest.to_alcotest prop_ckpt_recovery_differential;
  ]
