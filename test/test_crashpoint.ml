(* The crash-point sweep harness is itself the test: every packet
   boundary of a multi-range commit (1, 2 and 3 mirrors) and of an
   attach_mirror resync is crashed and recovery is held to the oracle
   (legal image, monotone epoch, clean mirrors).  Any violation raises
   Oracle_violation and fails the test; the assertions here pin down
   the sweep's shape so a silently-shrunk sweep cannot pass. *)

module C = Harness.Crashpoint

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let crashes (r : C.report) = List.length (List.filter (fun (p : C.point) -> p.crashed) r.points)

let check_shape (r : C.report) ~min_packets =
  check_bool
    (Printf.sprintf "%s: enough packet boundaries (%d >= %d)" r.label r.total_packets min_packets)
    true
    (r.total_packets >= min_packets);
  check_int (r.label ^ ": one point per boundary plus the control run")
    (r.total_packets + 1) (List.length r.points);
  List.iter
    (fun (p : C.point) ->
      check_int (Printf.sprintf "%s: point %d mirrors clean" r.label p.index) 0 p.mismatches)
    r.points

let commit_sweep_primary ~mirrors () =
  let r = C.sweep (C.commit_scenario ~mirrors ()) in
  check_shape r ~min_packets:20;
  check_int (r.label ^ ": every boundary crashed") r.total_packets (crashes r);
  (* Every point lands on exactly the old or the new image, and both
     sides of the commit point are represented. *)
  check_int (r.label ^ ": old + new covers all points")
    (List.length r.points)
    (r.old_images + r.new_images);
  check_bool (r.label ^ ": some rollbacks") true (r.old_images > 0);
  check_bool (r.label ^ ": some commits survive") true (r.new_images > 0);
  (* Cuts inside the commit propagation leave half-pushed data that
     recovery must undo: the sweep has to witness actual repairs. *)
  check_bool (r.label ^ ": undo replay exercised") true (r.repaired > 0)

let test_commit_one_mirror () = commit_sweep_primary ~mirrors:1 ()
let test_commit_two_mirrors () = commit_sweep_primary ~mirrors:2 ()
let test_commit_three_mirrors () = commit_sweep_primary ~mirrors:3 ()

let test_attach_resync () =
  (* Crash the primary at every packet of a new mirror's resync: the
     half-attached joiner (probed first) must never derail recovery,
     and no data ever changes. *)
  let r = C.sweep (C.attach_scenario ~mirrors:1 ()) in
  check_shape r ~min_packets:20;
  List.iter
    (fun (p : C.point) ->
      check (Alcotest.string) (Printf.sprintf "point %d: database unchanged" p.index) "new"
        (C.image_label p.image))
    r.points

let test_mirror_victim_degraded () =
  (* Two mirrors, one dies at each boundary: the primary must always
     finish the transaction against the survivor. *)
  let r = C.sweep ~victim:(C.Mirror 0) (C.commit_scenario ~mirrors:2 ()) in
  check_shape r ~min_packets:20;
  check_int (r.label ^ ": commit always completes degraded") (List.length r.points) r.new_images

let test_mirror_victim_total_loss () =
  (* A single mirror dies at each boundary: most cuts lose the mirror
     set mid-transaction, which must roll back locally and leave the
     library usable (the sweep re-attaches on the spare and verifies). *)
  let r = C.sweep ~victim:(C.Mirror 0) (C.commit_scenario ~mirrors:1 ()) in
  check_shape r ~min_packets:20;
  check_int (r.label ^ ": old + new covers all points")
    (List.length r.points)
    (r.old_images + r.new_images);
  check_bool (r.label ^ ": total loss rolls back") true (r.old_images > 0)

let suite =
  [
    ("commit sweep, one mirror", `Slow, test_commit_one_mirror);
    ("commit sweep, two mirrors", `Slow, test_commit_two_mirrors);
    ("commit sweep, three mirrors", `Slow, test_commit_three_mirrors);
    ("attach_mirror resync sweep", `Slow, test_attach_resync);
    ("mirror-victim sweep, degraded", `Slow, test_mirror_victim_degraded);
    ("mirror-victim sweep, total loss", `Slow, test_mirror_victim_total_loss);
  ]
