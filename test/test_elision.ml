(* Differential tests for redundancy elision: the elided engine must be
   observably identical to the naive one — same committed images, same
   mirror contents, same abort behaviour, same legal crash images —
   while logging and shipping strictly less under overlap. *)

open Sim
module P = Perseas
module Testbed = Harness.Testbed
module Crashpoint = Harness.Crashpoint
module Vista = Baselines.Vista
module Device = Disk.Device

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_i64 = check Alcotest.int64
let check_str = check Alcotest.string
let seg_size = 4096

(* ------------------------------------------------------------------ *)
(* One transaction through a fresh PERSEAS cluster *)

type outcome = {
  pre : string;  (** image before the transaction *)
  image : string;  (** image after commit/abort *)
  mirror : int64;
  undo : int;  (** undo bytes actually logged *)
  elided : int;  (** undo bytes skipped as already covered *)
  pkts : int;  (** [commit_packets] plan for the transaction *)
}

let run_trial ~elide ~commit_it ops =
  let config = { P.default_config with P.redundancy_elision = elide } in
  let bed = Testbed.perseas_bed ~config () in
  let t = bed.Testbed.perseas in
  let seg = P.malloc t ~name:"db" ~size:seg_size in
  P.write t seg ~off:0 (Bytes.init seg_size (fun i -> Char.chr (i land 0xff)));
  P.init_remote_db t;
  let pre = Bytes.to_string (P.read t seg ~off:0 ~len:seg_size) in
  let txn = P.begin_transaction t in
  List.iteri
    (fun k (off, len) ->
      P.set_range txn seg ~off ~len;
      P.write t seg ~off
        (Bytes.init len (fun i -> Char.chr ((off + i + k) land 0xff lxor 0xc3))))
    ops;
  let pkts = P.commit_packets txn in
  if commit_it then P.commit txn else P.abort txn;
  check Alcotest.(list (pair string int)) "mirrors clean" [] (P.verify_mirrors t);
  let st = P.stats t in
  {
    pre;
    image = Bytes.to_string (P.read t seg ~off:0 ~len:seg_size);
    mirror = P.mirror_checksum t seg;
    undo = st.P.undo_bytes_logged;
    elided = st.P.elided_undo_bytes;
    pkts;
  }

(* Overlapping, adjacent, duplicate, covered and disjoint declarations:
   1002 declared bytes whose union is 518. *)
let overlap_ops = [ (0, 256); (128, 256); (384, 64); (0, 256); (100, 100); (1027, 70) ]

let test_overlap_savings () =
  let e = run_trial ~elide:true ~commit_it:true overlap_ops in
  let n = run_trial ~elide:false ~commit_it:true overlap_ops in
  check_str "committed images agree" n.image e.image;
  check_i64 "mirror images agree" n.mirror e.mirror;
  check_int "naive logs every declared byte" 1002 n.undo;
  check_int "first-write-only logs the union" 518 e.undo;
  check_int "elided + logged = declared" n.undo (e.undo + e.elided);
  check_bool ">=30% fewer undo bytes" true (float_of_int e.undo <= 0.7 *. float_of_int n.undo);
  check_bool "strictly fewer commit packets" true (e.pkts < n.pkts)

let test_abort_restores_overlap () =
  List.iter
    (fun elide ->
      let o = run_trial ~elide ~commit_it:false overlap_ops in
      check_str
        (Printf.sprintf "abort restores image (elision %b)" elide)
        o.pre o.image)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Property: random overlap mixes agree between the two engines *)

let gen_txn =
  QCheck.(
    pair bool
      (pair
         (int_bound (seg_size - 512))
         (list_of_size (Gen.int_range 1 24) (pair (int_bound 447) (int_range 1 64)))))

let prop_differential =
  QCheck.Test.make ~name:"elided engine is observably identical to naive" ~count:40 gen_txn
    (fun (commit_it, (base, rel)) ->
      let ops = List.map (fun (o, l) -> (base + o, l)) rel in
      let e = run_trial ~elide:true ~commit_it ops in
      let n = run_trial ~elide:false ~commit_it ops in
      if e.image <> n.image then QCheck.Test.fail_report "local images diverge";
      if e.mirror <> n.mirror then QCheck.Test.fail_report "mirror images diverge";
      if (not commit_it) && e.image <> e.pre then
        QCheck.Test.fail_report "abort did not restore the pre-image";
      if e.undo + e.elided <> n.undo then
        QCheck.Test.fail_reportf "undo accounting: %d logged + %d elided <> %d declared"
          e.undo e.elided n.undo;
      if e.undo > n.undo then QCheck.Test.fail_report "elided logged more than naive";
      if e.pkts > n.pkts then QCheck.Test.fail_report "elided planned more packets than naive";
      true)

(* ------------------------------------------------------------------ *)
(* Crash at every packet, both settings *)

let test_crash_sweep_both () =
  let sweep elision = Crashpoint.sweep (Crashpoint.overlap_scenario ~elision ()) in
  let e = sweep true and n = sweep false in
  List.iter
    (fun (r : Crashpoint.report) ->
      check_int
        (Printf.sprintf "%s: every point swept" r.Crashpoint.label)
        (r.Crashpoint.total_packets + 1)
        (List.length r.Crashpoint.points);
      check_bool
        (Printf.sprintf "%s: no mirror mismatches" r.Crashpoint.label)
        true
        (List.for_all (fun p -> p.Crashpoint.mismatches = 0) r.Crashpoint.points))
    [ e; n ];
  check_bool "elision cuts the packet schedule" true
    (e.Crashpoint.total_packets < n.Crashpoint.total_packets)

let test_crash_sweep_mirror_victim () =
  let r =
    Crashpoint.sweep ~victim:(Crashpoint.Mirror 0) (Crashpoint.overlap_scenario ~elision:true ())
  in
  check_bool "mirror-victim sweep completes" true (r.Crashpoint.total_packets > 0)

(* ------------------------------------------------------------------ *)
(* Vista gets the same first-write-only treatment *)

let vista_db ~elide () =
  let clock = Clock.create () in
  let cluster = Cluster.create ~clock [ Cluster.spec ~dram_size:(8 * 1024 * 1024) "host" ] in
  let node = Cluster.node cluster 0 in
  let device =
    Device.create ~clock
      ~backend:(Device.Rio { Device.default_rio with Device.ups = true })
      ~capacity:(16 * 1024 * 1024)
  in
  let config = { Vista.default_config with Vista.redundancy_elision = elide } in
  let t = Vista.create ~config ~node ~device () in
  let seg = Vista.Engine.malloc t ~name:"db" ~size:seg_size in
  Vista.Engine.write t seg ~off:0 (Bytes.init seg_size (fun i -> Char.chr (i land 0xff)));
  Vista.Engine.init_done t;
  (t, seg)

let vista_overlap_txn t seg =
  let txn = Vista.Engine.begin_transaction t in
  List.iteri
    (fun k (off, len) ->
      Vista.Engine.set_range txn seg ~off ~len;
      Vista.Engine.write t seg ~off (Bytes.make len (Char.chr (Char.code 'a' + k))))
    overlap_ops;
  txn

let test_vista_differential () =
  let image elide =
    let t, seg = vista_db ~elide () in
    Vista.Engine.commit (vista_overlap_txn t seg);
    Vista.checksum t seg
  in
  check_i64 "vista images agree" (image false) (image true)

let test_vista_abort_overlap () =
  List.iter
    (fun elide ->
      let t, seg = vista_db ~elide () in
      let pre = Vista.checksum t seg in
      Vista.Engine.abort (vista_overlap_txn t seg);
      check_i64 (Printf.sprintf "vista abort restores (elision %b)" elide) pre
        (Vista.checksum t seg))
    [ true; false ]

let suite =
  [
    ("overlap mix: >=30% undo savings, fewer packets", `Quick, test_overlap_savings);
    ("abort restores overlapped image", `Quick, test_abort_restores_overlap);
    ("crash at every packet, both settings", `Slow, test_crash_sweep_both);
    ("crash sweep, mirror victim", `Slow, test_crash_sweep_mirror_victim);
    ("vista differential", `Quick, test_vista_differential);
    ("vista abort restores overlapped image", `Quick, test_vista_abort_overlap);
    QCheck_alcotest.to_alcotest prop_differential;
  ]
