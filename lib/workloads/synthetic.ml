(** The paper's [synthetic] benchmark: each transaction modifies a
    random location of the database; the modified size is the swept
    parameter (4 bytes … 1 MB, Figure 6). *)

module Make (E : Perseas.Txn_intf.S) = struct
  type db = { engine : E.t; seg : E.segment; db_size : int }

  let setup engine ~db_size =
    if db_size <= 0 then invalid_arg "Synthetic.setup: db_size must be positive";
    let seg = E.malloc engine ~name:"synthetic" ~size:db_size in
    (* A recognisable non-zero fill so mirror/recovery comparisons are
       meaningful. *)
    let chunk = 64 * 1024 in
    let pattern = Bytes.init (min chunk db_size) (fun i -> Char.chr (i land 0xff)) in
    let rec fill off =
      if off < db_size then begin
        let len = min (Bytes.length pattern) (db_size - off) in
        E.write engine seg ~off (if len = Bytes.length pattern then pattern else Bytes.sub pattern 0 len);
        fill (off + len)
      end
    in
    fill 0;
    E.init_done engine;
    { engine; seg; db_size }

  (** One transaction updating [tx_size] bytes at a random offset.
      [tx_size] must not exceed the database size. *)
  let transaction db rng ~tx_size =
    if tx_size <= 0 || tx_size > db.db_size then invalid_arg "Synthetic.transaction: bad tx_size";
    let off = Sim.Rng.int rng (db.db_size - tx_size + 1) in
    let txn = E.begin_transaction db.engine in
    E.set_range txn db.seg ~off ~len:tx_size;
    let fresh = Bytes.init tx_size (fun i -> Char.chr ((off + i) land 0xff lxor 0x5a)) in
    E.write db.engine db.seg ~off fresh;
    E.commit txn

  (** One overlap-heavy transaction: [pieces] set_range+write pairs of
      [piece_len] bytes each, all drawn from one [window]-byte region at
      a random offset — so declarations overlap, duplicate and adjoin
      freely.  The redundancy-elision stress mix: a first-write-only
      engine logs at most [window] undo bytes per transaction and ships
      a handful of coalesced runs, while the naive path logs and ships
      every declaration. *)
  let overlap_transaction db rng ~pieces ~piece_len ~window =
    if window <= 0 || window > db.db_size then
      invalid_arg "Synthetic.overlap_transaction: bad window";
    if piece_len <= 0 || piece_len > window then
      invalid_arg "Synthetic.overlap_transaction: bad piece_len";
    if pieces <= 0 then invalid_arg "Synthetic.overlap_transaction: bad pieces";
    let base = Sim.Rng.int rng (db.db_size - window + 1) in
    let txn = E.begin_transaction db.engine in
    for k = 1 to pieces do
      let off = base + Sim.Rng.int rng (window - piece_len + 1) in
      E.set_range txn db.seg ~off ~len:piece_len;
      let fresh = Bytes.init piece_len (fun i -> Char.chr ((off + i + k) land 0xff lxor 0xa5)) in
      E.write db.engine db.seg ~off fresh
    done;
    E.commit txn

  let checksum db = Util.fnv64 (E.read db.engine db.seg ~off:0 ~len:db.db_size)
end
