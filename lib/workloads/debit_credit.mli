(** The [debit-credit] benchmark: banking transactions "very similar to
    TPC-B" (paper §5).

    Schema per scale unit (a branch): 1 branch record, 10 tellers,
    100 000 accounts, each {!record_size} bytes with the balance in the
    first 8 bytes, plus a circular history of {!history_slot}-byte
    entries.  A transaction applies one random delta to an account, a
    teller and a branch balance and appends a history record — four
    small [set_range]d updates, the paper's write-dominated
    small-transaction profile. *)

val record_size : int
val history_slot : int
val accounts_per_branch : int
val tellers_per_branch : int

type skew =
  | Uniform
      (** Uniform, independent account/teller/branch picks, in the
          historical rng order — byte-identical to every pre-skew run,
          which the existing bench cells gate on. *)
  | Zipf of float
      (** Gray-style realistic mix: branches drawn Zipf([theta])-hot
          (rank 0 hottest), teller within the branch, account within
          the branch with probability {!home_account_fraction} (else
          uniform anywhere). *)

type params = { scale : int; accounts_per_branch : int; history_slots : int; skew : skew }

val default_params : params
(** TPC-B scale 1: 100 000 accounts (~10 MB), uniform selection. *)

val small_params : params
(** A reduced schema for unit tests and quick runs. *)

val home_account_fraction : float
(** Probability a Zipf-mix account lives in the drawn branch (0.85). *)

val scaled_params : ?skew:skew -> ?max_scale:int -> tps:int -> unit -> params
(** TPC's rule ties database size to rated throughput; compressed
    1000x here (one branch per 1 000 tps), floored at 10 branches =
    10⁶ accounts — the million-user mix — and capped at [max_scale]
    (default 64) to bound DRAM.  [skew] defaults to [Zipf 0.8]. *)

module Make (E : Perseas.Txn_intf.S) : sig
  type db = {
    engine : E.t;
    params : params;
    accounts : E.segment;
    tellers : E.segment;
    branches : E.segment;
    history : E.segment;
    n_accounts : int;
    n_tellers : int;
    n_branches : int;
    mutable hist_head : int;
    mutable tx_counter : int;
  }
  (** Transparent so recovery tests can rebind the segments of a
      recovered engine. *)

  val setup : E.t -> params:params -> db

  type draw = {
    account : int;
    teller : int;
    branch : int;
    delta : int64;
    slot : int;
    tx_id : int;
  }
  (** One transaction's random choices, fixed up front so a multi-client
      driver can interleave several transactions' phases (and retry a
      conflicted one) without perturbing the rng stream. *)

  val draw : db -> Sim.Rng.t -> draw
  (** Consume the rng (same draw order as {!transaction}) and claim a
      history slot / tx id. *)

  val declare : db -> E.txn -> draw -> unit
  (** The four [set_range] declarations. *)

  val apply : db -> draw -> unit
  (** The balance updates and the history entry. *)

  val transaction : db -> Sim.Rng.t -> unit
  (** [draw] + begin + [declare] + [apply] + commit, as one call. *)

  val consistent : db -> bool
  (** The TPC-B consistency condition: account, teller and branch
      balance totals are equal. *)

  val checksum : db -> int64
end
