(** Shared helpers for workload implementations. *)

let fnv64 data =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    data;
  !h

let get_i64 b off = Bytes.get_int64_le b off

let i64_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let u32_bytes v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b

(* Approximate Zipf(theta) rank in [0, n): inverse CDF of the
   continuous power law p(x) ∝ x^-theta on [1, n+1), one uniform draw
   per sample.  Rank 0 is the hottest; theta -> 0 degenerates to
   uniform, theta near 1 is the classic web/TPC skew.  Exact discrete
   Zipf needs a per-n harmonic table; the continuous inverse keeps the
   sampler allocation-free and deterministic, which is what the scaled
   workloads need. *)
let zipf rng ~n ~theta =
  if n <= 0 then invalid_arg "Util.zipf: n must be positive";
  if theta < 0.0 then invalid_arg "Util.zipf: negative theta";
  if n = 1 then 0
  else begin
    let theta = if abs_float (theta -. 1.0) < 1e-9 then 1.0 -. 1e-9 else theta in
    let e = 1.0 -. theta in
    let u = Sim.Rng.float rng 1.0 in
    let x = ((((float_of_int (n + 1) ** e) -. 1.0) *. u) +. 1.0) ** (1.0 /. e) in
    min (n - 1) (max 0 (int_of_float x - 1))
  end
