(** The [debit-credit] benchmark: banking transactions "very similar to
    TPC-B" (paper §5).

    Schema per scale unit (a branch): 1 branch record, 10 tellers,
    100 000 accounts, each 100 bytes with the balance in the first
    8 bytes, plus a circular history of 64-byte entries.  A transaction
    picks a random account/teller/branch, applies a random delta to the
    three balances and appends a history record — four small
    [set_range]d updates, the paper's write-dominated small-transaction
    profile.

    Invariant (the TPC-B consistency condition, used by the tests):
    the sums of account, teller and branch balances are always equal. *)

let record_size = 100
let history_slot = 64
let accounts_per_branch = 100_000
let tellers_per_branch = 10

(* Account selection.  [Uniform] draws the rng in the historical order
   (account, teller, branch, delta) and MUST stay byte-identical — it
   is the schedule every existing bench cell gates on.  [Zipf theta]
   is the Gray-style realistic mix ("Thousands of DebitCredit
   Transactions-Per-Second"): branches drawn Zipf-hot, the teller
   inside the branch, and the account inside the branch with
   probability [home_account_fraction] (else anywhere). *)
type skew = Uniform | Zipf of float

type params = { scale : int; accounts_per_branch : int; history_slots : int; skew : skew }

let default_params = { scale = 1; accounts_per_branch; history_slots = 8192; skew = Uniform }

(** A smaller schema for unit tests and quick runs. *)
let small_params = { scale = 1; accounts_per_branch = 1000; history_slots = 256; skew = Uniform }

let home_account_fraction = 0.85

(* TPC's scaling rule ties the database size to the rated throughput —
   a bank that really pushed this tps would have this many branches.
   The genuine TPC-B rule (one branch per tps) would demand billions
   of accounts at PERSEAS rates, so the rule is compressed 1000x: one
   branch per 1000 tps, floored at 10 branches = 10^6 accounts (the
   million-user mix ROADMAP asks for) and capped to bound DRAM. *)
let scaled_params ?(skew = Zipf 0.8) ?(max_scale = 64) ~tps () =
  let scale = min max_scale (max 10 (tps / 1_000)) in
  { scale; accounts_per_branch; history_slots = 8192; skew }

module Make (E : Perseas.Txn_intf.S) = struct
  type db = {
    engine : E.t;
    params : params;
    accounts : E.segment;
    tellers : E.segment;
    branches : E.segment;
    history : E.segment;
    n_accounts : int;
    n_tellers : int;
    n_branches : int;
    mutable hist_head : int;
    mutable tx_counter : int;
  }

  let setup engine ~params =
    let n_branches = params.scale in
    let n_tellers = tellers_per_branch * params.scale in
    let n_accounts = params.accounts_per_branch * params.scale in
    let accounts = E.malloc engine ~name:"accounts" ~size:(n_accounts * record_size) in
    let tellers = E.malloc engine ~name:"tellers" ~size:(n_tellers * record_size) in
    let branches = E.malloc engine ~name:"branches" ~size:(n_branches * record_size) in
    let history = E.malloc engine ~name:"history" ~size:(params.history_slots * history_slot) in
    (* All balances start at zero; zero-fill is the segments' initial
       state, so only the record ids need writing. *)
    let init_table seg n =
      for i = 0 to n - 1 do
        E.write engine seg ~off:((i * record_size) + 8) (Util.u32_bytes i)
      done
    in
    init_table accounts n_accounts;
    init_table tellers n_tellers;
    init_table branches n_branches;
    E.init_done engine;
    {
      engine;
      params;
      accounts;
      tellers;
      branches;
      history;
      n_accounts;
      n_tellers;
      n_branches;
      hist_head = 0;
      tx_counter = 0;
    }

  let add_balance db seg index delta =
    let off = index * record_size in
    let balance = Util.get_i64 (E.read db.engine seg ~off ~len:8) 0 in
    E.write db.engine seg ~off (Util.i64_bytes (Int64.add balance delta))

  type draw = {
    account : int;
    teller : int;
    branch : int;
    delta : int64;
    slot : int;
    tx_id : int;
  }

  let draw db rng =
    let account, teller, branch =
      match db.params.skew with
      | Uniform ->
          (* Historical draw order — byte-identical to every pre-skew
             run, which the bench gates rely on. *)
          let account = Sim.Rng.int rng db.n_accounts in
          let teller = Sim.Rng.int rng db.n_tellers in
          let branch = Sim.Rng.int rng db.n_branches in
          (account, teller, branch)
      | Zipf theta ->
          let branch = Util.zipf rng ~n:db.n_branches ~theta in
          let teller = (branch * tellers_per_branch) + Sim.Rng.int rng tellers_per_branch in
          let account =
            if Sim.Rng.float rng 1.0 < home_account_fraction then
              (branch * db.params.accounts_per_branch)
              + Sim.Rng.int rng db.params.accounts_per_branch
            else Sim.Rng.int rng db.n_accounts
          in
          (account, teller, branch)
    in
    let delta = Int64.of_int (Sim.Rng.int_in rng (-99_999) 99_999) in
    let slot = db.hist_head in
    db.hist_head <- (db.hist_head + 1) mod db.params.history_slots;
    db.tx_counter <- db.tx_counter + 1;
    { account; teller; branch; delta; slot; tx_id = db.tx_counter }

  let declare db txn d =
    E.set_range txn db.accounts ~off:(d.account * record_size) ~len:8;
    E.set_range txn db.tellers ~off:(d.teller * record_size) ~len:8;
    E.set_range txn db.branches ~off:(d.branch * record_size) ~len:8;
    E.set_range txn db.history ~off:(d.slot * history_slot) ~len:history_slot

  let apply db d =
    add_balance db db.accounts d.account d.delta;
    add_balance db db.tellers d.teller d.delta;
    add_balance db db.branches d.branch d.delta;
    let entry = Bytes.make history_slot '\000' in
    Bytes.set_int32_le entry 0 (Int32.of_int d.account);
    Bytes.set_int32_le entry 4 (Int32.of_int d.teller);
    Bytes.set_int32_le entry 8 (Int32.of_int d.branch);
    Bytes.set_int64_le entry 12 d.delta;
    Bytes.set_int64_le entry 20 (Int64.of_int d.tx_id);
    E.write db.engine db.history ~off:(d.slot * history_slot) entry

  let transaction db rng =
    let d = draw db rng in
    let txn = E.begin_transaction db.engine in
    declare db txn d;
    apply db d;
    E.commit txn

  let sum_balances db seg n =
    let total = ref 0L in
    for i = 0 to n - 1 do
      total := Int64.add !total (Util.get_i64 (E.read db.engine seg ~off:(i * record_size) ~len:8) 0)
    done;
    !total

  (** The TPC-B consistency condition. *)
  let consistent db =
    let a = sum_balances db db.accounts db.n_accounts in
    let t = sum_balances db db.tellers db.n_tellers in
    let b = sum_balances db db.branches db.n_branches in
    a = t && t = b

  let checksum db =
    List.fold_left
      (fun acc (seg, n) -> Int64.logxor acc (Util.fnv64 (E.read db.engine seg ~off:0 ~len:n)))
      0L
      [
        (db.accounts, db.n_accounts * record_size);
        (db.tellers, db.n_tellers * record_size);
        (db.branches, db.n_branches * record_size);
        (db.history, db.params.history_slots * history_slot);
      ]
end
