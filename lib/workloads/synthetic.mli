(** The paper's [synthetic] benchmark (§5, Figure 6): each transaction
    modifies one random location of the database; the modified size is
    the swept parameter (4 bytes … 1 MB). *)

module Make (E : Perseas.Txn_intf.S) : sig
  type db = { engine : E.t; seg : E.segment; db_size : int }

  val setup : E.t -> db_size:int -> db
  (** Allocate and fill a [db_size]-byte database with a recognisable
      pattern, then call the engine's [init_done]. *)

  val transaction : db -> Sim.Rng.t -> tx_size:int -> unit
  (** One transaction rewriting [tx_size] bytes at a random offset.
      Raises [Invalid_argument] when [tx_size] is outside
      [\[1, db_size\]]. *)

  val overlap_transaction : db -> Sim.Rng.t -> pieces:int -> piece_len:int -> window:int -> unit
  (** One overlap-heavy transaction: [pieces] random [piece_len]-byte
      set_range+write pairs inside one [window]-byte region at a random
      offset, so declarations overlap, duplicate and adjoin — the
      stress mix for {!Perseas.config.redundancy_elision}.  Raises
      [Invalid_argument] unless
      [0 < piece_len <= window <= db_size] and [pieces > 0]. *)

  val checksum : db -> int64
  (** Digest of the whole database (test oracle). *)
end
