(** Shared helpers for workload implementations. *)

val fnv64 : bytes -> int64
(** FNV-1a digest, the common checksum of the workload oracles. *)

val get_i64 : bytes -> int -> int64
val i64_bytes : int64 -> bytes
val u32_bytes : int -> bytes

val zipf : Sim.Rng.t -> n:int -> theta:float -> int
(** Approximate Zipf([theta]) rank in [\[0, n)], rank 0 hottest: the
    inverse CDF of the continuous power law [x^-theta], one uniform
    draw per sample.  [theta = 0] is uniform; values near 1 give the
    classic hot-spot skew.  Raises [Invalid_argument] on [n <= 0] or a
    negative [theta]. *)
