type event = { at : Time.t; seq : int; action : unit -> unit }

type handle = int

module Heap = struct
  (* Binary min-heap on (at, seq). *)
  type t = { mutable data : event array; mutable len : int }

  let dummy = { at = 0; seq = -1; action = ignore }
  let create () = { data = Array.make 32 dummy; len = 0 }
  let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less h.data.(!i) h.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    done

  let peek h = if h.len = 0 then None else Some h.data.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some top ->
        h.len <- h.len - 1;
        h.data.(0) <- h.data.(h.len);
        h.data.(h.len) <- dummy;
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
          if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = h.data.(!i) in
            h.data.(!i) <- h.data.(!smallest);
            h.data.(!smallest) <- tmp;
            i := !smallest
          end
        done;
        Some top
end

type t = {
  clock : Clock.t;
  heap : Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable next_seq : int;
  mutable live : int;
}

let create clock =
  { clock; heap = Heap.create (); cancelled = Hashtbl.create 16; next_seq = 0; live = 0 }

let schedule t ~at action =
  if at < Clock.now t.clock then invalid_arg "Events.schedule: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { at; seq; action };
  t.live <- t.live + 1;
  seq

let schedule_after t ~delay action = schedule t ~at:(Clock.now t.clock + delay) action

let cancel t h =
  if not (Hashtbl.mem t.cancelled h) then begin
    Hashtbl.add t.cancelled h ();
    t.live <- t.live - 1
  end

let pending t = t.live

let rec next_live t =
  match Heap.peek t.heap with
  | None -> None
  | Some e ->
      if Hashtbl.mem t.cancelled e.seq then begin
        ignore (Heap.pop t.heap);
        Hashtbl.remove t.cancelled e.seq;
        next_live t
      end
      else Some e

let next_at t = Option.map (fun e -> e.at) (next_live t)

let fire t e =
  ignore (Heap.pop t.heap);
  t.live <- t.live - 1;
  e.action ()

let run_due t =
  let rec loop () =
    match next_live t with
    | Some e when e.at <= Clock.now t.clock ->
        fire t e;
        loop ()
    | _ -> ()
  in
  loop ()

(* A repeating sampler: fire [f] at every grid point now + k*interval
   (k >= 1) up to and including [until].  The queue is often pumped at
   coarse granularity (e.g. once per transaction), so the clock may
   have jumped past several grid points by the time an event fires;
   those fire immediately, each receiving its own scheduled grid time,
   which keeps the cadence regular no matter how the clock moves. *)
let every t ~interval ~until f =
  if interval <= 0 then invalid_arg "Events.every: interval must be positive";
  let rec fire at () =
    f at;
    let next = at + interval in
    if next <= until then
      if next >= Clock.now t.clock then ignore (schedule t ~at:next (fire next))
      else fire next ()
  in
  let first = Clock.now t.clock + interval in
  if first <= until then ignore (schedule t ~at:first (fire first))

let run_until t horizon =
  let rec loop () =
    match next_live t with
    | Some e when e.at <= horizon ->
        Clock.advance_to t.clock e.at;
        fire t e;
        loop ()
    | _ -> ()
  in
  loop ();
  Clock.advance_to t.clock horizon
