(** Statistics for benchmark results.

    {!Summary} keeps O(1) online aggregates (Welford); {!Series} keeps
    every sample so exact percentiles can be reported, which is what the
    benchmark harness uses (sample counts are modest). *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Sample variance (n-1 denominator); 0 when fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** Raises [Invalid_argument] when empty. *)

  val max : t -> float
  (** Raises [Invalid_argument] when empty. *)
end

module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [\[0,100\]], by linear interpolation
      between closest ranks.  Raises [Invalid_argument] when empty or
      [p] out of range. *)

  val median : t -> float
  val to_array : t -> float array
  (** A sorted copy of the samples. *)
end

module Histogram : sig
  type t
  (** Log2-bucketed histogram with linear sub-buckets per octave, for
      latency distributions spanning several orders of magnitude.
      Every bucket's relative width is at most [1/sub_buckets], so
      percentiles can be extracted with a known relative tolerance
      without keeping samples.  Non-positive samples are counted in a
      sentinel underflow bucket with bounds [(0, 0)]. *)

  val create : ?sub_buckets:int -> unit -> t
  (** [sub_buckets] linear sub-buckets per power of two (default 16).
      Raises [Invalid_argument] when non-positive. *)

  val add : t -> float -> unit
  val count : t -> int

  val sub_buckets : t -> int

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0,100\]]: the upper nearest-rank
      sample's bucket midpoint — within {!tolerance} (relative) of the
      exact sorted-array nearest-rank answer.  Raises
      [Invalid_argument] when empty or [p] out of range. *)

  val tolerance : t -> float
  (** Maximum relative error of {!percentile}: [1 / (2 * sub_buckets)]. *)

  val buckets : t -> (float * float * int) list
  (** Non-empty buckets as [(lo, hi, count)], ascending. *)

  val pp : Format.formatter -> t -> unit
end
