module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.; m2 = 0.; min = nan; max = nan }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min <- x;
      t.max <- x
    end
    else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)

  let min t =
    if t.count = 0 then invalid_arg "Stats.Summary.min: empty";
    t.min

  let max t =
    if t.count = 0 then invalid_arg "Stats.Summary.max: empty";
    t.max
end

module Series = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : float array option;
  }

  let create () = { data = Array.make 64 0.; len = 0; sorted = None }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- None

  let count t = t.len

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.sub t.data 0 t.len in
        Array.sort compare a;
        t.sorted <- Some a;
        a

  let mean t =
    if t.len = 0 then invalid_arg "Stats.Series.mean: empty";
    let sum = ref 0. in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.len

  let min t =
    if t.len = 0 then invalid_arg "Stats.Series.min: empty";
    (sorted t).(0)

  let max t =
    if t.len = 0 then invalid_arg "Stats.Series.max: empty";
    (sorted t).(t.len - 1)

  let percentile t p =
    if t.len = 0 then invalid_arg "Stats.Series.percentile: empty";
    if p < 0. || p > 100. then invalid_arg "Stats.Series.percentile: p out of range";
    let a = sorted t in
    let rank = p /. 100. *. float_of_int (t.len - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

  let median t = percentile t 50.
  let to_array t = Array.copy (sorted t)
end

module Histogram = struct
  (* Log2 buckets with linear sub-buckets per octave: x = m * 2^e with
     m in [0.5, 1) lands in octave e, sub-bucket floor((m-0.5)*2*sub).
     Bucket bounds are 2^(e-1)*(1 + s/sub) .. 2^(e-1)*(1 + (s+1)/sub),
     so every bucket's relative width is at most 1/sub and a percentile
     read off the bucket midpoint is within 1/(2*sub) of the exact
     nearest-rank sample — 3.125% at the default 16 sub-buckets. *)
  type t = {
    sub : int;
    counts : (int, int ref) Hashtbl.t;
    mutable total : int;
  }

  let create ?(sub_buckets = 16) () =
    if sub_buckets <= 0 then invalid_arg "Histogram.create";
    { sub = sub_buckets; counts = Hashtbl.create 64; total = 0 }

  let sub_buckets t = t.sub

  let bucket_of t x =
    if x <= 0. then min_int
    else
      let m, e = Float.frexp x in
      let s = int_of_float ((m -. 0.5) *. 2. *. float_of_int t.sub) in
      let s = if s >= t.sub then t.sub - 1 else if s < 0 then 0 else s in
      (e * t.sub) + s

  let add t x =
    let b = bucket_of t x in
    (match Hashtbl.find_opt t.counts b with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts b (ref 1));
    t.total <- t.total + 1

  let count t = t.total

  let bounds t b =
    if b = min_int then (0., 0.)
    else
      (* Euclidean split b = e * sub + s with s in [0, sub). *)
      let e = if b >= 0 then b / t.sub else ((b + 1) / t.sub) - 1 in
      let s = b - (e * t.sub) in
      let base = Float.ldexp 1. (e - 1) in
      let edge i = base *. (1. +. (float_of_int i /. float_of_int t.sub)) in
      (edge s, edge (s + 1))

  let buckets t =
    Hashtbl.fold (fun b r acc -> (b, !r) :: acc) t.counts []
    |> List.sort compare
    |> List.map (fun (b, n) ->
           let lo, hi = bounds t b in
           (lo, hi, n))

  let tolerance t = 1. /. (2. *. float_of_int t.sub)

  let percentile t p =
    if t.total = 0 then invalid_arg "Stats.Histogram.percentile: empty";
    if p < 0. || p > 100. then invalid_arg "Stats.Histogram.percentile: p out of range";
    (* Upper nearest-rank: the ceil(p/100 * (n-1))-th smallest sample
       (0-based), reported as its bucket's midpoint. *)
    let target = int_of_float (ceil (p /. 100. *. float_of_int (t.total - 1))) in
    let rec walk cum = function
      | [] -> assert false
      | (lo, hi, n) :: rest -> if cum + n > target then (lo +. hi) /. 2. else walk (cum + n) rest
    in
    walk 0 (buckets t)

  let pp ppf t =
    List.iter
      (fun (lo, hi, n) -> Format.fprintf ppf "[%.3g, %.3g): %d@." lo hi n)
      (buckets t)
end
