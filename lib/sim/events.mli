(** Event queue for timed callbacks.

    Used by the failure injector and by long-horizon experiments (e.g.
    scheduled crashes during a workload).  Events with equal firing
    times run in scheduling order, which keeps runs deterministic. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : Clock.t -> t
(** An event queue driven by the given clock. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule q ~at f] arranges for [f] to run when the queue is pumped
    past absolute time [at].  Raises [Invalid_argument] if [at] is
    before the clock's current time. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> handle
(** Like {!schedule} with [at = now + delay]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val every : t -> interval:Time.t -> until:Time.t -> (Time.t -> unit) -> unit
(** [every q ~interval ~until f] fires [f at] at every grid point
    [at = now + k * interval] (k >= 1) with [at <= until].  When the
    queue is pumped after the clock has jumped past several grid
    points, the missed points fire back to back — each still receives
    its own scheduled grid time, so a telemetry sampler keeps a regular
    row cadence regardless of pump granularity.  Nothing stays
    scheduled past [until].  Raises [Invalid_argument] on a
    non-positive interval. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val run_due : t -> unit
(** Fire every event whose time is [<=] the clock's current time, in
    time order.  Events scheduled by handlers themselves fire too if
    they are already due. *)

val run_until : t -> Time.t -> unit
(** Advance the clock stepwise through every event up to and including
    time [t], firing each at its own timestamp, then leave the clock at
    [t]. *)

val next_at : t -> Time.t option
(** Firing time of the earliest pending event, if any. *)
