open Sim

(** Phase-level tracing against the virtual clock.

    PERSEAS's whole claim is {e where} the microseconds go — three
    memory copies, NIC packetisation, no disk — so the instrumented
    components record structured {!Span}s (a named interval of virtual
    time) and {!Event}s (a named instant) into a {!Sink}.  Tracing is
    an observer, never a participant: it reads the clock but never
    advances it, and it never sends or suppresses a packet, so a run
    with tracing enabled is byte-identical (packet counts, final
    clock) to a run without.  The no-op sink makes the disabled case a
    single branch.

    The span taxonomy instrumented across the stack (category in
    brackets):

    - [txn]: [begin], [set_range], [local_undo], [remote_undo] (one
      span per mirror, arg [mirror]), [in_place_write], [commit],
      [commit_propagate] (per mirror), [commit_fence] (per mirror —
      the single-packet epoch write), [abort].  These are disjoint
      intervals that together cover every clock charge of a
      transaction, so their per-phase sums equal the end-to-end
      virtual latency.
    - [recovery]: [probe], [repair], [fetch_db], [resync_mirrors].
    - [mirror]: [resync] — one span per {!Perseas.attach_mirror} /
      [recruit_mirror], arg [mode].
    - [sci]: instant events [pkt.full64] / [pkt.part16], one per SCI
      packet, args [tag] (rpc vs bulk), [len], [streamed].
    - [supervisor]: instant events [mirror_lost], [recruited],
      [attempt_failed], [gave_up]. *)

module Span : sig
  type t = {
    name : string;  (** Phase name, e.g. ["commit_fence"]. *)
    cat : string;  (** Category, e.g. ["txn"]. *)
    start : Time.t;
    stop : Time.t;
    args : (string * string) list;
  }

  val duration : t -> Time.t
  val duration_us : t -> float
  val pp : Format.formatter -> t -> unit
end

module Event : sig
  type t = { name : string; cat : string; at : Time.t; args : (string * string) list }

  val pp : Format.formatter -> t -> unit
end

(** {1 Sinks} *)

module Sink : sig
  type t

  val noop : t
  (** Drops everything; {!enabled} is [false], so instrumentation
      sites skip even the clock reads.  This is the default wired into
      every component. *)

  val memory : ?capacity:int -> ?span_capacity:int -> ?event_capacity:int -> unit -> t
  (** Records spans and events in order.  Without any capacity the sink
      is unbounded (the default, and what the tests rely on); with
      [capacity] it keeps the most recent [capacity] spans and the most
      recent [capacity] events in a ring, silently dropping the oldest
      — {!dropped_spans} / {!dropped_events} count the casualties {e
      separately per ring}, and {!span_count} / {!event_count} keep
      counting everything ever recorded so cursors survive the wrap.
      [span_capacity] / [event_capacity] override [capacity] per ring —
      packet events outnumber spans by an order of magnitude, so a
      flight recorder sizes the two independently.  Raises
      [Invalid_argument] on a non-positive capacity. *)

  val observer : on_span:(Span.t -> unit) -> on_event:(Event.t -> unit) -> t
  (** A sink that forwards everything to callbacks and stores nothing —
      how {!Monitor} taps the stream.  Read accessors below return
      empty/zero for it. *)

  val tee : t list -> t
  (** Fan one stream out to several sinks (a recording ring plus an
      online monitor, typically).  Read accessors delegate to the first
      {!memory} child, so the tee reads as the recording it carries;
      [noop] children are dropped, and an empty tee is [noop]. *)

  val enabled : t -> bool

  val span :
    ?args:(string * string) list -> t -> cat:string -> name:string -> start:Time.t -> stop:Time.t -> unit
  (** Record a completed span.  No-op on {!noop}. *)

  val instant : ?args:(string * string) list -> t -> cat:string -> name:string -> at:Time.t -> unit

  val spans : t -> Span.t list
  (** Everything recorded so far, oldest first ([[]] on {!noop}). *)

  val events : t -> Event.t list

  val span_count : t -> int
  val event_count : t -> int

  val dropped_spans : t -> int
  (** Spans evicted by a capped sink's ring; 0 when unbounded. *)

  val dropped_events : t -> int

  val spans_since : t -> int -> Span.t list
  (** [spans_since t n] is the spans recorded after the first [n] —
      pair with {!span_count} to scope a measurement window.  On a
      capped sink, entries already evicted from the ring are absent. *)

  val events_since : t -> int -> Event.t list
  val clear : t -> unit
end

(** {1 Online protocol-invariant monitor} *)

module Monitor : sig
  (** A pure observer over the event stream that continuously checks
      the ordering invariants PERSEAS's recoverability rests on.  Feed
      it by wiring {!sink} into a {!Sink.tee} next to the recording
      ring — it reads the same instants the ring records, keeps a tiny
      per-node state machine, and raises a typed {!alert} the moment a
      packet contradicts the protocol.

      The checked invariants, per destination node:

      - {b undo before data}: a transaction's undo records must reach a
        mirror before any of its commit data does ({!Undo_after_data});
      - {b fence strictly last}: no packet of a commit unit (an eager
        commit's propagate/segmeta/fence burst, or a group-commit
        convoy) may follow that unit's epoch-fence packet
        ({!Fence_not_last});
      - {b epoch monotonicity}: successive fence epochs on one node
        strictly increase ({!Epoch_regressed});
      - {b convoy integrity}: two commit units never interleave on one
        node ({!Convoy_interleaved});
      - {b checkpoint cut outside convoys}: a checkpoint cut instant
        must not land while any commit unit is open
        ({!Checkpoint_split_convoy});
      - {b cross-shard commits only in single-master phases}: a
        [cluster]/[cross_commit] instant is legal only while the most
        recent [cluster]/[phase_switch] instant declared the
        [single_master] phase — the STAR rule the sharded router lives
        by ({!Cross_shard_in_partitioned}).  Streams without phase
        instants sit in the default partitioned phase, where any
        cross-shard commit alerts.

      The monitor relies on the causal tags ([op], [node], [convoy],
      [txn]/[txns], [epoch], [tag]) that {!Perseas} threads through the
      NIC's packet instants; untagged traffic is ignored.  Like every
      trace-layer component it never advances the clock or touches the
      packet stream. *)

  type violation =
    | Undo_after_data of { txn : string; node : int; at : Time.t }
    | Fence_not_last of { node : int; convoy : string; at : Time.t }
    | Epoch_regressed of { node : int; prev : int64; next : int64; at : Time.t }
    | Convoy_interleaved of { node : int; convoy : string; intruder : string; at : Time.t }
    | Checkpoint_split_convoy of { node : int; convoy : string; at : Time.t }
    | Cross_shard_in_partitioned of { xid : string; at : Time.t }

  type alert = { violation : violation; event : Event.t }
  (** The violation plus the exact instant that triggered it. *)

  type t

  val create : ?on_alert:(alert -> unit) -> unit -> t
  (** [on_alert] fires synchronously on every violation — the flight
      recorder hooks its dump trigger here. *)

  val sink : t -> Sink.t
  (** An {!Sink.observer} feeding this monitor; combine with
      {!Sink.tee} to watch a stream that is also being recorded. *)

  val event : t -> Event.t -> unit
  (** Feed one instant by hand.  This is the seeding hook the mutation
      tests use to replay deliberately corrupted streams. *)

  val span : t -> Span.t -> unit
  (** Feed one span.  A [recovery]-category span resets per-transaction
      and per-unit state (a fresh engine restarts transaction ids);
      fence-epoch floors survive recovery on purpose. *)

  val alerts : t -> alert list
  (** Oldest first. *)

  val alert_count : t -> int
  val events_seen : t -> int

  val describe : violation -> string
  val pp_alert : Format.formatter -> alert -> unit
end

(** {1 Causal cross-node timelines} *)

module Causal : sig
  (** Stitches the per-node span/event streams back into one
      per-transaction story: primary-side phases, then each mirror's
      undo/data/fence arrivals, then checkpoint traffic — ordered by
      virtual time.  Transactions are identified by the [txn] arg (or
      membership in a convoy's [+]-separated [txns] arg); packets
      coalesce into one hop per (node, operation) run so a 64-packet
      data burst reads as one line. *)

  type hop = {
    h_start : Time.t;
    h_stop : Time.t;
    h_node : int option;  (** [None]: on the primary itself. *)
    h_what : string;  (** ["txn/commit"], ["pkt/flush_convoy"], ... *)
    h_detail : string;  (** Selected args, rendered [k=v]. *)
    h_pkts : int;  (** Packets coalesced into this hop; 0 for spans. *)
  }

  type timeline = { c_txn : string; c_hops : hop list (* oldest first *) }

  val build : spans:Span.t list -> events:Event.t list -> timeline list
  (** Timelines in first-appearance order. *)

  val find : timeline list -> txn:string -> timeline option
  val render : timeline -> string
  val render_all : timeline list -> string
end

(** {1 Metrics registry} *)

module Counter : sig
  type t

  val name : t -> string
  val value : t -> int
  val incr : ?by:int -> t -> unit
end

module Registry : sig
  type t
  (** Named monotonic counters plus one {!Stats.Histogram} per named
      distribution; both are find-or-create by name. *)

  val create : unit -> t

  val counter : t -> string -> Counter.t
  val add : t -> string -> int -> unit
  (** [add t name n] bumps counter [name] by [n] (creating it). *)

  val histogram : t -> string -> Stats.Histogram.t
  val observe : t -> string -> float -> unit
  (** [observe t name x] adds [x] to histogram [name] (creating it). *)

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  val histograms : t -> (string * Stats.Histogram.t) list
  val to_json : t -> string
  (** Snapshot as one JSON object: counter values and, per histogram,
      count plus non-empty buckets. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Gauges and time series}

    Counters only go up; gauges hold the {e current} level of something
    — buffer occupancy, live-mirror count, spare-pool depth — and a
    {!Timeseries} snapshots every gauge at virtual-clock instants
    chosen by a sampler ({!Sim.Events.every} in practice).  Like sinks,
    the layer is a pure observer: a disabled timeseries hands out a
    shared dummy gauge so every [set]/[add] is a single branch, and
    sampling reads the clock without ever advancing it. *)

module Gauge : sig
  type t

  val name : t -> string
  val value : t -> int

  val hwm : t -> int
  (** High-water mark: the largest value ever [set]/[add]-ed, which
      captures between-samples peaks the sampler never sees. *)

  val set : t -> int -> unit
  val add : t -> int -> unit
end

module Timeseries : sig
  type t

  type sample = { at : Time.t; values : (string * int) list }
  (** One snapshot: every gauge's value at virtual time [at], sorted by
      gauge name. *)

  val noop : t
  (** Disabled: gauges are dummies, probes are dropped, sampling is a
      no-op.  The default wired into every component. *)

  val create : unit -> t
  val enabled : t -> bool

  val gauge : t -> string -> Gauge.t
  (** Find-or-create by name; the shared inert dummy on {!noop}. *)

  val set : t -> string -> int -> unit
  val add : t -> string -> int -> unit
  val value : t -> string -> int
  val hwm : t -> string -> int

  val names : t -> string list
  (** Registered gauge names, sorted. *)

  val on_sample : t -> (Time.t -> unit) -> unit
  (** Register a probe run at the start of every {!sample}, receiving
      the sample's virtual time.  Probes run in registration order —
      components register value-refreshing probes first, {!rate}
      probes last. *)

  val rate : t -> name:string -> source:string -> unit
  (** Derivative gauge: at each sample, [name] holds the per-second
      rate of change of gauge [source] since the previous sample (0 on
      the first).  Registers an {!on_sample} probe, so call it after
      the probes that refresh [source]. *)

  val sample : t -> at:Time.t -> unit
  (** Run the probes, then record every gauge's value at [at]. *)

  val samples : t -> sample list
  (** Oldest first. *)

  val sample_count : t -> int

  val to_json : t -> string
  (** Snapshot as [{"gauges":{"name":{"value":v,"hwm":h},...}}],
      names escaped and sorted. *)
end

(** {1 Per-phase breakdown} *)

type phase_stat = { phase : string; count : int; total_us : float; mean_us : float }
(** [mean_us] is per span occurrence, not per transaction. *)

val breakdown : ?cat:string -> Span.t list -> phase_stat list
(** Aggregate spans by name, restricted to category [cat] when given;
    descending by [total_us]. *)

val register_spans : Registry.t -> Span.t list -> unit
(** Fold spans into a registry: counter ["<cat>.<name>.count"] and
    histogram ["<cat>.<name>.us"] per span. *)

(** {1 Tail attribution} *)

module Tail : sig
  (** Cheap always-on tail attribution: a log2 sub-bucketed
      {!Stats.Histogram} per [txn]-category phase (and per
      (phase, mirror) pair), one for end-to-end latency, and a worst-K
      exemplar reservoir with threshold admission that retains the full
      span/event window — hence the {!Causal} cross-node timeline — of
      the slowest transactions seen.  A pure observer: it never reads
      or advances the clock, and with the engine sink at [noop] it
      costs nothing at all. *)

  type exemplar = {
    e_seq : int;  (** Measured-iteration index (0-based). *)
    e_latency_us : float;
    e_spans : Span.t list;
    e_events : Event.t list;
  }

  type t

  val create : ?k:int -> ?sub_buckets:int -> unit -> t
  (** [k] exemplars retained (default 8); [sub_buckets] per octave for
      every histogram (default 16, i.e. percentile tolerance 3.125%). *)

  val sink : t -> Sink.t
  (** An {!Sink.observer} feeding the per-phase histograms from a live
      span stream — one sample per span, no exemplars: a stream has no
      transaction window to aggregate or retain.  Tee next to the
      recording ring; do not combine with {!observe} on the same stream
      or phases double-count. *)

  val observe : t -> latency_us:float -> spans:Span.t list -> events:Event.t list -> unit
  (** Feed one measured transaction: latency into the end-to-end
      histogram, [spans] — aggregated to the transaction's {e total}
      time per phase, so per-phase p99s stack up against the end-to-end
      p99 — into the per-phase histograms, and — when [latency_us]
      beats {!threshold_us} — the whole window into the reservoir,
      evicting the fastest exemplar. *)

  val count : t -> int
  (** Transactions fed through {!observe}. *)

  val latency : t -> Stats.Histogram.t
  val phases : t -> (string * Stats.Histogram.t) list
  (** First-seen order. *)

  val phase_hist : t -> string -> Stats.Histogram.t option
  val mirror_phases : t -> ((string * int) * Stats.Histogram.t) list
  (** Per (phase, mirror) histograms, sorted. *)

  val phase_p99s : t -> (string * float) list
  (** p99 per non-empty phase, first-seen order. *)

  val threshold_us : t -> float
  (** Current admission bar: the fastest retained exemplar's latency
      once the reservoir is full, 0 before. *)

  val exemplars : t -> exemplar list
  (** Slowest first; at most [k]. *)

  val timelines : exemplar -> Causal.timeline list
  (** The exemplar's window stitched into cross-node timelines. *)

  val exemplar_txn : exemplar -> string option
  (** The transaction id named by the window's spans, if any. *)
end

(** {1 Exporters} *)

module Export : sig
  val chrome_json :
    ?series:Timeseries.sample list ->
    ?flows:(string * Causal.timeline) list ->
    spans:Span.t list -> events:Event.t list -> unit -> string
  (** Chrome [trace_event] JSON (one [{"traceEvents": [...]}] object):
      spans as complete ([ph:"X"]) events, instants as [ph:"i"], with
      microsecond timestamps.  Loads directly in Perfetto
      ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and
      [chrome://tracing].  Spans carrying a [mirror] arg are placed on
      a per-mirror track (tid = mirror + 2) so the per-mirror undo and
      propagation phases line up visually.  [series] samples are
      emitted as [ph:"C"] counter events — Perfetto draws one counter
      track per gauge name.  [flows] are named {!Causal} timelines
      (worst-K exemplars, typically) emitted as flow events
      ([ph:"s"/"t"/"f"]) stepping through their hops, so each outlier
      reads as one arrow chain across the tracks. *)

  val chrome_json_to_file :
    ?series:Timeseries.sample list ->
    ?flows:(string * Causal.timeline) list ->
    path:string -> spans:Span.t list -> events:Event.t list -> unit -> unit
  (** Creates parent directories as needed. *)

  val phase_csv_header : string list
  (** [phase; count; total_us; mean_us; share] *)

  val phase_csv_rows : phase_stat list -> string list list
  (** [share] is each phase's fraction of the summed total. *)

  val timeseries_csv_header : string list -> string list
  (** ["t (us)"] followed by the given gauge names. *)

  val timeseries_csv_rows : names:string list -> Timeseries.sample list -> string list list
  (** One row per sample, columns in [names] order (0 when a gauge did
      not exist yet at that sample). *)
end
