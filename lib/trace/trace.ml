open Sim

module Span = struct
  type t = {
    name : string;
    cat : string;
    start : Time.t;
    stop : Time.t;
    args : (string * string) list;
  }

  let duration s = s.stop - s.start
  let duration_us s = Time.to_us (duration s)

  let pp ppf s =
    Format.fprintf ppf "%s/%s [%a, %a)" s.cat s.name Time.pp s.start Time.pp s.stop
end

module Event = struct
  type t = { name : string; cat : string; at : Time.t; args : (string * string) list }

  let pp ppf e = Format.fprintf ppf "%s/%s @ %a" e.cat e.name Time.pp e.at
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)

module Sink = struct
  (* A store is either unbounded (newest-first list) or a fixed-size
     circular buffer that forgets its oldest entries.  [total] counts
     everything ever recorded, so cursors handed out by [span_count]
     keep their meaning after the ring wraps. *)
  type 'a store = {
    cap : int; (* 0 = unbounded *)
    mutable items : 'a list; (* newest first; unbounded mode only *)
    ring : 'a option array; (* capped mode only; [||] otherwise *)
    mutable total : int;
  }

  let store cap =
    { cap; items = []; ring = (if cap > 0 then Array.make cap None else [||]); total = 0 }

  let store_add s x =
    if s.cap > 0 then s.ring.(s.total mod s.cap) <- Some x else s.items <- x :: s.items;
    s.total <- s.total + 1

  let store_dropped s = if s.cap > 0 then max 0 (s.total - s.cap) else 0

  (* Still-retained items recorded after the first [n], oldest first.
     The newest-first list makes that suffix a prefix: take (total - n)
     from the head, then restore order. *)
  let store_since s ~n =
    if s.cap = 0 then begin
      let rec take acc k = function
        | x :: rest when k > 0 -> take (x :: acc) (k - 1) rest
        | _ -> acc
      in
      take [] (s.total - n) s.items
    end
    else begin
      let start = max n (max 0 (s.total - s.cap)) in
      List.init (max 0 (s.total - start)) (fun i -> Option.get s.ring.((start + i) mod s.cap))
    end

  let store_list s = store_since s ~n:0

  let store_clear s =
    s.items <- [];
    if s.cap > 0 then Array.fill s.ring 0 s.cap None;
    s.total <- 0

  type mem = { sp : Span.t store; ev : Event.t store }
  type t = Noop | Memory of mem

  let noop = Noop

  let memory ?capacity () =
    let cap =
      match capacity with
      | None -> 0
      | Some c when c > 0 -> c
      | Some c -> invalid_arg (Printf.sprintf "Trace.Sink.memory: capacity %d not positive" c)
    in
    Memory { sp = store cap; ev = store cap }

  let enabled = function Noop -> false | Memory _ -> true

  let span ?(args = []) t ~cat ~name ~start ~stop =
    match t with
    | Noop -> ()
    | Memory m -> store_add m.sp { Span.name; cat; start; stop; args }

  let instant ?(args = []) t ~cat ~name ~at =
    match t with Noop -> () | Memory m -> store_add m.ev { Event.name; cat; at; args }

  let spans = function Noop -> [] | Memory m -> store_list m.sp
  let events = function Noop -> [] | Memory m -> store_list m.ev
  let span_count = function Noop -> 0 | Memory m -> m.sp.total
  let event_count = function Noop -> 0 | Memory m -> m.ev.total
  let dropped_spans = function Noop -> 0 | Memory m -> store_dropped m.sp
  let dropped_events = function Noop -> 0 | Memory m -> store_dropped m.ev
  let spans_since t n = match t with Noop -> [] | Memory m -> store_since m.sp ~n
  let events_since t n = match t with Noop -> [] | Memory m -> store_since m.ev ~n

  let clear = function
    | Noop -> ()
    | Memory m ->
        store_clear m.sp;
        store_clear m.ev
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let name c = c.name
  let value c = c.value
  let incr ?(by = 1) c = c.value <- c.value + by
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    histograms : (string, Stats.Histogram.t) Hashtbl.t;
  }

  let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

  let counter t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = { Counter.name; value = 0 } in
        Hashtbl.add t.counters name c;
        c

  let add t name n = Counter.incr ~by:n (counter t name)

  let histogram t name =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = Stats.Histogram.create () in
        Hashtbl.add t.histograms name h;
        h

  let observe t name x = Stats.Histogram.add (histogram t name) x

  let counters t =
    Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) t.counters []
    |> List.sort compare

  let histograms t =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms [] |> List.sort compare

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json t =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\"counters\":{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
      (counters t);
    Buffer.add_string b "},\"histograms\":{";
    List.iteri
      (fun i (name, h) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":{\"count\":%d,\"buckets\":[" (json_escape name)
             (Stats.Histogram.count h));
        List.iteri
          (fun j (lo, hi, n) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "[%g,%g,%d]" lo hi n))
          (Stats.Histogram.buckets h);
        Buffer.add_string b "]}")
      (histograms t);
    Buffer.add_string b "}}";
    Buffer.contents b

  let pp ppf t =
    List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters t);
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "%s (%d samples):@.%a" name (Stats.Histogram.count h)
          Stats.Histogram.pp h)
      (histograms t)
end

(* ------------------------------------------------------------------ *)
(* Gauges and time series                                               *)

module Gauge = struct
  type t = { name : string; live : bool; mutable v : int; mutable hwm : int }

  (* All gauge handles obtained from a disabled timeseries are this
     shared dummy, so instrumentation sites pay one branch when
     telemetry is off — the same contract as Sink.noop. *)
  let dummy = { name = ""; live = false; v = 0; hwm = 0 }
  let name g = g.name
  let value g = g.v
  let hwm g = g.hwm

  let set g x =
    if g.live then begin
      g.v <- x;
      if x > g.hwm then g.hwm <- x
    end

  let add g dx =
    if g.live then begin
      let x = g.v + dx in
      g.v <- x;
      if x > g.hwm then g.hwm <- x
    end
end

module Timeseries = struct
  type sample = { at : Time.t; values : (string * int) list }

  type live = {
    gauges : (string, Gauge.t) Hashtbl.t;
    mutable samples : sample list; (* newest first *)
    mutable nsamples : int;
    mutable probes : (Time.t -> unit) list; (* registration order, newest first *)
  }

  type t = Noop | Live of live

  let noop = Noop

  let create () =
    Live { gauges = Hashtbl.create 32; samples = []; nsamples = 0; probes = [] }

  let enabled = function Noop -> false | Live _ -> true

  let gauge t name =
    match t with
    | Noop -> Gauge.dummy
    | Live l -> (
        match Hashtbl.find_opt l.gauges name with
        | Some g -> g
        | None ->
            let g = { Gauge.name; live = true; v = 0; hwm = 0 } in
            Hashtbl.add l.gauges name g;
            g)

  let set t name x = Gauge.set (gauge t name) x
  let add t name dx = Gauge.add (gauge t name) dx
  let value t name = Gauge.value (gauge t name)
  let hwm t name = Gauge.hwm (gauge t name)

  let names t =
    match t with
    | Noop -> []
    | Live l -> Hashtbl.fold (fun n _ acc -> n :: acc) l.gauges [] |> List.sort compare

  let on_sample t f = match t with Noop -> () | Live l -> l.probes <- f :: l.probes

  (* A derivative gauge: at each sample, [name] becomes the per-second
     rate of change of [source] since the previous sample (0 on the
     first).  Register rates after the probes that refresh [source] so
     they see fresh values — probes run in registration order. *)
  let rate t ~name ~source =
    match t with
    | Noop -> ()
    | Live _ ->
        let out = gauge t name in
        let src = gauge t source in
        let prev = ref None in
        on_sample t (fun at ->
            (match !prev with
            | Some (at0, v0) when at > at0 ->
                let per_s = float_of_int (Gauge.value src - v0) /. Time.to_s (at - at0) in
                Gauge.set out (int_of_float (Float.round per_s))
            | _ -> Gauge.set out 0);
            prev := Some (at, Gauge.value src))

  let sample t ~at =
    match t with
    | Noop -> ()
    | Live l ->
        List.iter (fun f -> f at) (List.rev l.probes);
        let values =
          Hashtbl.fold (fun n g acc -> (n, g.Gauge.v) :: acc) l.gauges []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        l.samples <- { at; values } :: l.samples;
        l.nsamples <- l.nsamples + 1

  let samples t = match t with Noop -> [] | Live l -> List.rev l.samples
  let sample_count = function Noop -> 0 | Live l -> l.nsamples

  let to_json t =
    let b = Buffer.create 256 in
    Buffer.add_string b "{\"gauges\":{";
    (match t with
    | Noop -> ()
    | Live l ->
        let gs =
          Hashtbl.fold (fun n g acc -> (n, g) :: acc) l.gauges []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        List.iteri
          (fun i (n, (g : Gauge.t)) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":{\"value\":%d,\"hwm\":%d}" (Registry.json_escape n) g.v
                 g.hwm))
          gs);
    Buffer.add_string b "}}";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Per-phase breakdown                                                  *)

type phase_stat = { phase : string; count : int; total_us : float; mean_us : float }

let breakdown ?cat spans =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Span.t) ->
      if match cat with Some c -> s.cat = c | None -> true then begin
        let count, total =
          match Hashtbl.find_opt tbl s.name with Some ct -> ct | None -> (0, 0.)
        in
        if count = 0 then order := s.name :: !order;
        Hashtbl.replace tbl s.name (count + 1, total +. Span.duration_us s)
      end)
    spans;
  List.rev_map
    (fun phase ->
      let count, total_us = Hashtbl.find tbl phase in
      { phase; count; total_us; mean_us = total_us /. float_of_int count })
    !order
  |> List.sort (fun a b -> compare b.total_us a.total_us)

let register_spans reg spans =
  List.iter
    (fun (s : Span.t) ->
      let key = s.Span.cat ^ "." ^ s.Span.name in
      Registry.add reg (key ^ ".count") 1;
      Registry.observe reg (key ^ ".us") (Span.duration_us s))
    spans

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

module Export = struct
  let escape = Registry.json_escape

  let args_json args =
    if args = [] then ""
    else
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

  (* Spans that carry a [mirror] arg get their own track so per-mirror
     phases (remote_undo, commit_propagate, commit_fence) line up under
     the mirror they hit. *)
  let tid_of args =
    match List.assoc_opt "mirror" args with
    | Some m -> ( match int_of_string_opt m with Some i -> i + 2 | None -> 1)
    | None -> 1

  let chrome_json ?(series = []) ~spans ~events () =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_char b ',' in
    List.iter
      (fun (s : Span.t) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (escape s.name) (escape s.cat) (Time.to_us s.start) (Span.duration_us s)
             (tid_of s.args) (args_json s.args)))
      spans;
    List.iter
      (fun (e : Event.t) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (escape e.name) (escape e.cat) (Time.to_us e.at) (tid_of e.args)
             (args_json e.args)))
      events;
    (* Gauge samples become ph:"C" counter events; Perfetto renders one
       counter track per (pid, name). *)
    List.iter
      (fun (s : Timeseries.sample) ->
        List.iter
          (fun (name, v) ->
            sep ();
            Buffer.add_string b
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
                 (escape name) (Time.to_us s.at) v))
          s.values)
      series;
    Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
    Buffer.contents b

  let rec mkdir_p dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end

  let chrome_json_to_file ?series ~path ~spans ~events () =
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (chrome_json ?series ~spans ~events ()))

  let phase_csv_header = [ "phase"; "count"; "total (us)"; "mean (us)"; "share" ]

  let phase_csv_rows stats =
    let grand = List.fold_left (fun acc p -> acc +. p.total_us) 0. stats in
    List.map
      (fun p ->
        [
          p.phase;
          string_of_int p.count;
          Printf.sprintf "%.2f" p.total_us;
          Printf.sprintf "%.3f" p.mean_us;
          (if grand > 0. then Printf.sprintf "%.1f%%" (100. *. p.total_us /. grand) else "-");
        ])
      stats

  let timeseries_csv_header names = "t (us)" :: names

  let timeseries_csv_rows ~names samples =
    List.map
      (fun (s : Timeseries.sample) ->
        Printf.sprintf "%.3f" (Time.to_us s.at)
        :: List.map
             (fun n -> string_of_int (Option.value ~default:0 (List.assoc_opt n s.values)))
             names)
      samples
end
