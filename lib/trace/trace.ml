open Sim

module Span = struct
  type t = {
    name : string;
    cat : string;
    start : Time.t;
    stop : Time.t;
    args : (string * string) list;
  }

  let duration s = s.stop - s.start
  let duration_us s = Time.to_us (duration s)

  let pp ppf s =
    Format.fprintf ppf "%s/%s [%a, %a)" s.cat s.name Time.pp s.start Time.pp s.stop
end

module Event = struct
  type t = { name : string; cat : string; at : Time.t; args : (string * string) list }

  let pp ppf e = Format.fprintf ppf "%s/%s @ %a" e.cat e.name Time.pp e.at
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)

module Sink = struct
  (* A store is either unbounded (newest-first list) or a fixed-size
     circular buffer that forgets its oldest entries.  [total] counts
     everything ever recorded, so cursors handed out by [span_count]
     keep their meaning after the ring wraps. *)
  type 'a store = {
    cap : int; (* 0 = unbounded *)
    mutable items : 'a list; (* newest first; unbounded mode only *)
    ring : 'a option array; (* capped mode only; [||] otherwise *)
    mutable total : int;
  }

  let store cap =
    { cap; items = []; ring = (if cap > 0 then Array.make cap None else [||]); total = 0 }

  let store_add s x =
    if s.cap > 0 then s.ring.(s.total mod s.cap) <- Some x else s.items <- x :: s.items;
    s.total <- s.total + 1

  let store_dropped s = if s.cap > 0 then max 0 (s.total - s.cap) else 0

  (* Still-retained items recorded after the first [n], oldest first.
     The newest-first list makes that suffix a prefix: take (total - n)
     from the head, then restore order. *)
  let store_since s ~n =
    if s.cap = 0 then begin
      let rec take acc k = function
        | x :: rest when k > 0 -> take (x :: acc) (k - 1) rest
        | _ -> acc
      in
      take [] (s.total - n) s.items
    end
    else begin
      let start = max n (max 0 (s.total - s.cap)) in
      List.init (max 0 (s.total - start)) (fun i -> Option.get s.ring.((start + i) mod s.cap))
    end

  let store_list s = store_since s ~n:0

  let store_clear s =
    s.items <- [];
    if s.cap > 0 then Array.fill s.ring 0 s.cap None;
    s.total <- 0

  type mem = { sp : Span.t store; ev : Event.t store }
  type obs = { on_span : Span.t -> unit; on_event : Event.t -> unit }

  type t = Noop | Memory of mem | Observer of obs | Tee of t list

  let noop = Noop

  let positive what = function
    | None -> None
    | Some c when c > 0 -> Some c
    | Some c -> invalid_arg (Printf.sprintf "Trace.Sink.memory: %s %d not positive" what c)

  (* [capacity] caps both rings; [span_capacity] / [event_capacity]
     override it per ring, so a flight recorder can keep few spans but
     many packet events (events outnumber spans ~20:1 under load). *)
  let memory ?capacity ?span_capacity ?event_capacity () =
    let shared = positive "capacity" capacity in
    let pick what specific =
      match positive what specific with Some c -> c | None -> Option.value shared ~default:0
    in
    Memory
      { sp = store (pick "span_capacity" span_capacity); ev = store (pick "event_capacity" event_capacity) }

  let observer ~on_span ~on_event = Observer { on_span; on_event }

  let tee sinks =
    match List.filter (function Noop -> false | _ -> true) sinks with
    | [] -> Noop
    | [ s ] -> s
    | ss -> Tee ss

  let enabled = function Noop -> false | Memory _ | Observer _ | Tee _ -> true

  let rec span ?(args = []) t ~cat ~name ~start ~stop =
    match t with
    | Noop -> ()
    | Memory m -> store_add m.sp { Span.name; cat; start; stop; args }
    | Observer o -> o.on_span { Span.name; cat; start; stop; args }
    | Tee ss -> List.iter (fun s -> span ~args s ~cat ~name ~start ~stop) ss

  let rec instant ?(args = []) t ~cat ~name ~at =
    match t with
    | Noop -> ()
    | Memory m -> store_add m.ev { Event.name; cat; at; args }
    | Observer o -> o.on_event { Event.name; cat; at; args }
    | Tee ss -> List.iter (fun s -> instant ~args s ~cat ~name ~at) ss

  (* Read-side accessors on a tee delegate to its first memory child:
     the tee reads as the recording it carries, with any observers
     (monitors) transparent. *)
  let rec first_mem = function
    | Noop | Observer _ -> None
    | Memory m -> Some m
    | Tee ss -> List.find_map first_mem ss

  let spans t = match first_mem t with Some m -> store_list m.sp | None -> []
  let events t = match first_mem t with Some m -> store_list m.ev | None -> []
  let span_count t = match first_mem t with Some m -> m.sp.total | None -> 0
  let event_count t = match first_mem t with Some m -> m.ev.total | None -> 0
  let dropped_spans t = match first_mem t with Some m -> store_dropped m.sp | None -> 0
  let dropped_events t = match first_mem t with Some m -> store_dropped m.ev | None -> 0
  let spans_since t n = match first_mem t with Some m -> store_since m.sp ~n | None -> []
  let events_since t n = match first_mem t with Some m -> store_since m.ev ~n | None -> []

  let rec clear = function
    | Noop | Observer _ -> ()
    | Memory m ->
        store_clear m.sp;
        store_clear m.ev
    | Tee ss -> List.iter clear ss
end

(* ------------------------------------------------------------------ *)
(* Online protocol-invariant monitor                                    *)

module Monitor = struct
  type violation =
    | Undo_after_data of { txn : string; node : int; at : Time.t }
    | Fence_not_last of { node : int; convoy : string; at : Time.t }
    | Epoch_regressed of { node : int; prev : int64; next : int64; at : Time.t }
    | Convoy_interleaved of { node : int; convoy : string; intruder : string; at : Time.t }
    | Checkpoint_split_convoy of { node : int; convoy : string; at : Time.t }
    | Cross_shard_in_partitioned of { xid : string; at : Time.t }

  type alert = { violation : violation; event : Event.t }

  (* One commit unit in flight to one node: an eager commit's
     propagate/segmeta/fence burst or a group-commit convoy.  [u_rank]
     is the highest chunk class seen so far — undo(0) < data(1) <
     segmeta(2) < fence(3); the protocol promises the classes arrive in
     that order with the fence strictly last. *)
  type unit_state = { u_key : string; mutable u_rank : int }

  type node_state = {
    mutable open_unit : unit_state option;
    mutable closed : string list; (* recently fenced unit keys, newest first, capped *)
    mutable last_fence_epoch : int64 option;
    data_seen : (string, unit) Hashtbl.t; (* txns whose commit data reached this node *)
  }

  type t = {
    nodes : (int, node_state) Hashtbl.t;
    mutable alerts : alert list; (* newest first *)
    mutable nalerts : int;
    mutable nevents : int;
    mutable phase : string;
        (* the cluster phase as declared by [cluster]/[phase_switch]
           instants; cross-shard commits are only legal while it reads
           "single_master".  Streams without phase instants stay in the
           default partitioned phase, where any cross-shard commit is a
           violation — exactly the STAR rule. *)
    on_alert : alert -> unit;
  }

  let closed_keep = 16

  let create ?(on_alert = fun _ -> ()) () =
    {
      nodes = Hashtbl.create 8;
      alerts = [];
      nalerts = 0;
      nevents = 0;
      phase = "partitioned";
      on_alert;
    }

  let node_state t n =
    match Hashtbl.find_opt t.nodes n with
    | Some s -> s
    | None ->
        let s =
          { open_unit = None; closed = []; last_fence_epoch = None; data_seen = Hashtbl.create 64 }
        in
        Hashtbl.add t.nodes n s;
        s

  let raise_alert t violation (ev : Event.t) =
    let a = { violation; event = ev } in
    t.alerts <- a :: t.alerts;
    t.nalerts <- t.nalerts + 1;
    t.on_alert a

  let rank_of ~op ~tag =
    match op with
    | "commit_propagate" -> Some 1
    | "commit_segmeta" -> Some 2
    | "commit_fence" -> Some 3
    | "flush_convoy" -> (
        match tag with
        | Some "undo" -> Some 0
        | Some "data" -> Some 1
        | Some "segmeta" -> Some 2
        | Some "fence" -> Some 3
        | _ -> None)
    | _ -> None

  let txns_of args =
    match List.assoc_opt "txn" args with
    | Some id -> [ id ]
    | None -> (
        match List.assoc_opt "batch" args with
        | Some s -> String.split_on_char '+' s
        | None -> [])

  let close_unit ns key =
    ns.open_unit <- None;
    ns.closed <- key :: ns.closed;
    if List.length ns.closed > closed_keep then
      ns.closed <- List.filteri (fun i _ -> i < closed_keep) ns.closed

  (* A write packet attributed to a commit unit: enforce unit ordering,
     fence finality and epoch monotonicity on this node's stream. *)
  let unit_packet t ns ~node ~key ~rank (ev : Event.t) =
    (match ns.open_unit with
    | Some u when u.u_key <> key ->
        raise_alert t (Convoy_interleaved { node; convoy = u.u_key; intruder = key; at = ev.at }) ev;
        ns.open_unit <- Some { u_key = key; u_rank = rank }
    | Some _ -> ()
    | None ->
        if List.mem key ns.closed then
          raise_alert t (Fence_not_last { node; convoy = key; at = ev.at }) ev
        else ns.open_unit <- Some { u_key = key; u_rank = rank });
    (match ns.open_unit with
    | Some u when u.u_key = key ->
        if rank = 0 && u.u_rank >= 1 then begin
          let txn = String.concat "+" (txns_of ev.args) in
          raise_alert t (Undo_after_data { txn; node; at = ev.at }) ev
        end;
        if rank > u.u_rank then u.u_rank <- rank
    | _ -> ());
    if rank >= 1 && rank <= 2 then
      List.iter (fun id -> Hashtbl.replace ns.data_seen id ()) (txns_of ev.args);
    if rank = 3 then begin
      (match List.assoc_opt "epoch" ev.args with
      | Some e -> (
          match Int64.of_string_opt e with
          | Some next ->
              (match ns.last_fence_epoch with
              | Some prev when next <= prev ->
                  raise_alert t (Epoch_regressed { node; prev; next; at = ev.at }) ev
              | _ -> ());
              ns.last_fence_epoch <-
                Some (match ns.last_fence_epoch with Some p when p > next -> p | _ -> next)
          | None -> ())
      | None -> ());
      close_unit ns key
    end

  let packet t (ev : Event.t) =
    match List.assoc_opt "node" ev.args with
    | None -> () (* unattributed traffic: nothing to check against *)
    | Some node_s -> (
        match int_of_string_opt node_s with
        | None -> ()
        | Some node -> (
            let ns = node_state t node in
            let op = Option.value ~default:"" (List.assoc_opt "op" ev.args) in
            match rank_of ~op ~tag:(List.assoc_opt "tag" ev.args) with
            | Some rank ->
                let key =
                  Option.value ~default:("op:" ^ op) (List.assoc_opt "convoy" ev.args)
                in
                unit_packet t ns ~node ~key ~rank ev
            | None ->
                if op = "remote_undo" then
                  List.iter
                    (fun id ->
                      if Hashtbl.mem ns.data_seen id then
                        raise_alert t (Undo_after_data { txn = id; node; at = ev.at }) ev)
                    (txns_of ev.args);
                (* Free traffic (resync, metadata push, checkpoint
                   streaming) legally reaches a node only between
                   commit units — or after a crash truncated one, which
                   is exactly when the truncated unit must stop being
                   "open".  Either way the unit is over; forget it
                   without declaring it fenced. *)
                ns.open_unit <- None))

  let ckpt_cut t (ev : Event.t) =
    Hashtbl.iter
      (fun node ns ->
        match ns.open_unit with
        | Some u ->
            raise_alert t (Checkpoint_split_convoy { node; convoy = u.u_key; at = ev.at }) ev
        | None -> ())
      t.nodes

  let event t (ev : Event.t) =
    t.nevents <- t.nevents + 1;
    match (ev.cat, ev.name) with
    | "sci", _ -> packet t ev
    | "ckpt", "cut" -> ckpt_cut t ev
    | "cluster", "phase_switch" -> (
        match List.assoc_opt "phase" ev.args with
        | Some p -> t.phase <- p
        | None -> ())
    | "cluster", "cross_commit" ->
        if t.phase <> "single_master" then begin
          let xid = Option.value ~default:"?" (List.assoc_opt "xid" ev.args) in
          raise_alert t (Cross_shard_in_partitioned { xid; at = ev.at }) ev
        end
    | "supervisor", "mirror_lost" | "mirror", "dropped" -> (
        (* A transfer to this node may have been cut short by its loss:
           close the unit rather than flag the interruption. *)
        match Option.bind (List.assoc_opt "node" ev.args) int_of_string_opt with
        | Some node -> (node_state t node).open_unit <- None
        | None -> ())
    | _ -> ()

  (* A recovery span means a fresh engine took over: transaction ids
     restart and every in-flight unit died with the old primary, so the
     per-txn and per-unit state resets.  Fence epochs survive — the
     recovered epoch is strictly above every fenced one. *)
  let span t (s : Span.t) =
    if s.cat = "recovery" then
      Hashtbl.iter
        (fun _ ns ->
          ns.open_unit <- None;
          ns.closed <- [];
          Hashtbl.reset ns.data_seen)
        t.nodes

  let sink t = Sink.observer ~on_span:(span t) ~on_event:(event t)
  let alerts t = List.rev t.alerts
  let alert_count t = t.nalerts
  let events_seen t = t.nevents

  let describe = function
    | Undo_after_data { txn; node; at } ->
        Printf.sprintf "undo for txn %s reached node %d after its data (t=%.3fus)" txn node
          (Time.to_us at)
    | Fence_not_last { node; convoy; at } ->
        Printf.sprintf "packet for unit %s on node %d after its epoch fence (t=%.3fus)" convoy
          node (Time.to_us at)
    | Epoch_regressed { node; prev; next; at } ->
        Printf.sprintf "fence epoch regressed on node %d: %Ld after %Ld (t=%.3fus)" node next
          prev (Time.to_us at)
    | Convoy_interleaved { node; convoy; intruder; at } ->
        Printf.sprintf "unit %s interleaved into open unit %s on node %d (t=%.3fus)" intruder
          convoy node (Time.to_us at)
    | Checkpoint_split_convoy { node; convoy; at } ->
        Printf.sprintf "checkpoint cut landed inside open unit %s on node %d (t=%.3fus)" convoy
          node (Time.to_us at)
    | Cross_shard_in_partitioned { xid; at } ->
        Printf.sprintf "cross-shard transaction %s committed inside a partitioned phase (t=%.3fus)"
          xid (Time.to_us at)

  let pp_alert ppf a = Format.pp_print_string ppf (describe a.violation)
end

(* ------------------------------------------------------------------ *)
(* Causal cross-node timeline reconstruction                            *)

module Causal = struct
  (* One step of a transaction's cross-node story.  Packet instants are
     coalesced: a run of packets with the same (node, what, unit)
     becomes a single hop spanning [h_start, h_stop] with [h_pkts]
     counting the run. *)
  type hop = {
    h_start : Time.t;
    h_stop : Time.t;
    h_node : int option; (* None: on the primary itself *)
    h_what : string;
    h_detail : string;
    h_pkts : int; (* 0 for span hops *)
  }

  type timeline = { c_txn : string; c_hops : hop list (* oldest first *) }

  let txns_of args =
    match List.assoc_opt "txn" args with
    | Some id -> [ id ]
    | None -> (
        match List.assoc_opt "batch" args with
        | Some s -> String.split_on_char '+' s
        | None -> [])

  let node_of args = Option.bind (List.assoc_opt "node" args) int_of_string_opt

  let detail_of args =
    let keep = [ "mirror"; "epoch"; "convoy"; "reason"; "tag"; "mode" ] in
    List.filter_map
      (fun k -> Option.map (fun v -> k ^ "=" ^ v) (List.assoc_opt k args))
      keep
    |> String.concat " "

  let build ~spans ~events =
    let tbl : (string, hop list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let bucket txn =
      match Hashtbl.find_opt tbl txn with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add tbl txn r;
          order := txn :: !order;
          r
    in
    let add txn hop =
      let r = bucket txn in
      match !r with
      | prev :: rest
        when hop.h_pkts > 0 && prev.h_pkts > 0 && prev.h_node = hop.h_node
             && prev.h_what = hop.h_what && prev.h_detail = hop.h_detail ->
          r := { prev with h_stop = hop.h_stop; h_pkts = prev.h_pkts + hop.h_pkts } :: rest
      | _ -> r := hop :: !r
    in
    List.iter
      (fun (s : Span.t) ->
        match txns_of s.args with
        | [] -> ()
        | txns ->
            let hop =
              {
                h_start = s.start;
                h_stop = s.stop;
                h_node = node_of s.args;
                h_what = s.cat ^ "/" ^ s.name;
                h_detail = detail_of s.args;
                h_pkts = 0;
              }
            in
            List.iter (fun txn -> add txn hop) txns)
      spans;
    List.iter
      (fun (e : Event.t) ->
        match txns_of e.args with
        | [] -> ()
        | txns ->
            let what =
              match List.assoc_opt "op" e.args with
              | Some op -> "pkt/" ^ op
              | None -> e.cat ^ "/" ^ e.name
            in
            let hop =
              {
                h_start = e.at;
                h_stop = e.at;
                h_node = node_of e.args;
                h_what = what;
                h_detail = detail_of e.args;
                h_pkts = (if e.cat = "sci" then 1 else 0);
              }
            in
            List.iter (fun txn -> add txn hop) txns)
      events;
    List.rev_map
      (fun txn ->
        let hops =
          List.rev !(Hashtbl.find tbl txn)
          |> List.stable_sort (fun a b -> compare a.h_start b.h_start)
        in
        { c_txn = txn; c_hops = hops })
      !order

  let find timelines ~txn = List.find_opt (fun c -> c.c_txn = txn) timelines

  let render_hop h =
    let site = match h.h_node with Some n -> Printf.sprintf "node %d" n | None -> "primary" in
    let pkts = if h.h_pkts > 1 then Printf.sprintf " x%d pkts" h.h_pkts else "" in
    let detail = if h.h_detail = "" then "" else " [" ^ h.h_detail ^ "]" in
    Printf.sprintf "  %10.3f..%10.3f us  %-9s %s%s%s" (Time.to_us h.h_start)
      (Time.to_us h.h_stop) site h.h_what pkts detail

  let render c =
    String.concat "\n"
      (Printf.sprintf "txn %s: %d hops" c.c_txn (List.length c.c_hops)
      :: List.map render_hop c.c_hops)

  let render_all timelines = String.concat "\n" (List.map render timelines)
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let name c = c.name
  let value c = c.value
  let incr ?(by = 1) c = c.value <- c.value + by
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    histograms : (string, Stats.Histogram.t) Hashtbl.t;
  }

  let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

  let counter t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = { Counter.name; value = 0 } in
        Hashtbl.add t.counters name c;
        c

  let add t name n = Counter.incr ~by:n (counter t name)

  let histogram t name =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = Stats.Histogram.create () in
        Hashtbl.add t.histograms name h;
        h

  let observe t name x = Stats.Histogram.add (histogram t name) x

  let counters t =
    Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) t.counters []
    |> List.sort compare

  let histograms t =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms [] |> List.sort compare

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json t =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\"counters\":{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
      (counters t);
    Buffer.add_string b "},\"histograms\":{";
    List.iteri
      (fun i (name, h) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":{\"count\":%d,\"buckets\":[" (json_escape name)
             (Stats.Histogram.count h));
        List.iteri
          (fun j (lo, hi, n) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "[%g,%g,%d]" lo hi n))
          (Stats.Histogram.buckets h);
        Buffer.add_string b "]}")
      (histograms t);
    Buffer.add_string b "}}";
    Buffer.contents b

  let pp ppf t =
    List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters t);
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "%s (%d samples):@.%a" name (Stats.Histogram.count h)
          Stats.Histogram.pp h)
      (histograms t)
end

(* ------------------------------------------------------------------ *)
(* Gauges and time series                                               *)

module Gauge = struct
  type t = { name : string; live : bool; mutable v : int; mutable hwm : int }

  (* All gauge handles obtained from a disabled timeseries are this
     shared dummy, so instrumentation sites pay one branch when
     telemetry is off — the same contract as Sink.noop. *)
  let dummy = { name = ""; live = false; v = 0; hwm = 0 }
  let name g = g.name
  let value g = g.v
  let hwm g = g.hwm

  let set g x =
    if g.live then begin
      g.v <- x;
      if x > g.hwm then g.hwm <- x
    end

  let add g dx =
    if g.live then begin
      let x = g.v + dx in
      g.v <- x;
      if x > g.hwm then g.hwm <- x
    end
end

module Timeseries = struct
  type sample = { at : Time.t; values : (string * int) list }

  type live = {
    gauges : (string, Gauge.t) Hashtbl.t;
    mutable samples : sample list; (* newest first *)
    mutable nsamples : int;
    mutable probes : (Time.t -> unit) list; (* registration order, newest first *)
  }

  type t = Noop | Live of live

  let noop = Noop

  let create () =
    Live { gauges = Hashtbl.create 32; samples = []; nsamples = 0; probes = [] }

  let enabled = function Noop -> false | Live _ -> true

  let gauge t name =
    match t with
    | Noop -> Gauge.dummy
    | Live l -> (
        match Hashtbl.find_opt l.gauges name with
        | Some g -> g
        | None ->
            let g = { Gauge.name; live = true; v = 0; hwm = 0 } in
            Hashtbl.add l.gauges name g;
            g)

  let set t name x = Gauge.set (gauge t name) x
  let add t name dx = Gauge.add (gauge t name) dx
  let value t name = Gauge.value (gauge t name)
  let hwm t name = Gauge.hwm (gauge t name)

  let names t =
    match t with
    | Noop -> []
    | Live l -> Hashtbl.fold (fun n _ acc -> n :: acc) l.gauges [] |> List.sort compare

  let on_sample t f = match t with Noop -> () | Live l -> l.probes <- f :: l.probes

  (* A derivative gauge: at each sample, [name] becomes the per-second
     rate of change of [source] since the previous sample (0 on the
     first).  Register rates after the probes that refresh [source] so
     they see fresh values — probes run in registration order. *)
  let rate t ~name ~source =
    match t with
    | Noop -> ()
    | Live _ ->
        let out = gauge t name in
        let src = gauge t source in
        let prev = ref None in
        on_sample t (fun at ->
            (match !prev with
            | Some (at0, v0) when at > at0 ->
                let per_s = float_of_int (Gauge.value src - v0) /. Time.to_s (at - at0) in
                Gauge.set out (int_of_float (Float.round per_s))
            | _ -> Gauge.set out 0);
            prev := Some (at, Gauge.value src))

  let sample t ~at =
    match t with
    | Noop -> ()
    | Live l ->
        List.iter (fun f -> f at) (List.rev l.probes);
        let values =
          Hashtbl.fold (fun n g acc -> (n, g.Gauge.v) :: acc) l.gauges []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        l.samples <- { at; values } :: l.samples;
        l.nsamples <- l.nsamples + 1

  let samples t = match t with Noop -> [] | Live l -> List.rev l.samples
  let sample_count = function Noop -> 0 | Live l -> l.nsamples

  let to_json t =
    let b = Buffer.create 256 in
    Buffer.add_string b "{\"gauges\":{";
    (match t with
    | Noop -> ()
    | Live l ->
        let gs =
          Hashtbl.fold (fun n g acc -> (n, g) :: acc) l.gauges []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        List.iteri
          (fun i (n, (g : Gauge.t)) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":{\"value\":%d,\"hwm\":%d}" (Registry.json_escape n) g.v
                 g.hwm))
          gs);
    Buffer.add_string b "}}";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Per-phase breakdown                                                  *)

type phase_stat = { phase : string; count : int; total_us : float; mean_us : float }

let breakdown ?cat spans =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Span.t) ->
      if match cat with Some c -> s.cat = c | None -> true then begin
        let count, total =
          match Hashtbl.find_opt tbl s.name with Some ct -> ct | None -> (0, 0.)
        in
        if count = 0 then order := s.name :: !order;
        Hashtbl.replace tbl s.name (count + 1, total +. Span.duration_us s)
      end)
    spans;
  List.rev_map
    (fun phase ->
      let count, total_us = Hashtbl.find tbl phase in
      { phase; count; total_us; mean_us = total_us /. float_of_int count })
    !order
  |> List.sort (fun a b -> compare b.total_us a.total_us)

let register_spans reg spans =
  List.iter
    (fun (s : Span.t) ->
      let key = s.Span.cat ^ "." ^ s.Span.name in
      Registry.add reg (key ^ ".count") 1;
      Registry.observe reg (key ^ ".us") (Span.duration_us s))
    spans

(* ------------------------------------------------------------------ *)
(* Tail attribution                                                     *)

module Tail = struct
  (* Cheap always-on tail attribution: one log2 histogram per [txn]
     phase (and per (phase, mirror) pair), one for end-to-end latency,
     plus a worst-K exemplar reservoir with threshold admission — a
     transaction is retained, with its full span/event window, only
     when it is slower than the fastest exemplar already held.  Like
     every trace-layer component this is a pure observer: it reads
     completed spans and never touches the clock, and when the engine's
     sink is [noop] nothing reaches it at all. *)

  type exemplar = {
    e_seq : int;  (* measured-iteration index, 0-based *)
    e_latency_us : float;
    e_spans : Span.t list;
    e_events : Event.t list;
  }

  type t = {
    k : int;
    latency : Stats.Histogram.t;
    by_phase : (string, Stats.Histogram.t) Hashtbl.t;
    by_phase_mirror : (string * int, Stats.Histogram.t) Hashtbl.t;
    mutable phase_order : string list; (* first-seen, reversed *)
    mutable worst : exemplar list; (* ascending latency, length <= k *)
    mutable seq : int;
    sub : int;
  }

  let create ?(k = 8) ?(sub_buckets = 16) () =
    if k <= 0 then invalid_arg "Tail.create";
    {
      k;
      latency = Stats.Histogram.create ~sub_buckets ();
      by_phase = Hashtbl.create 16;
      by_phase_mirror = Hashtbl.create 16;
      phase_order = [];
      worst = [];
      seq = 0;
      sub = sub_buckets;
    }

  let hist_of t name =
    match Hashtbl.find_opt t.by_phase name with
    | Some h -> h
    | None ->
        let h = Stats.Histogram.create ~sub_buckets:t.sub () in
        Hashtbl.add t.by_phase name h;
        t.phase_order <- name :: t.phase_order;
        h

  let mirror_hist_of t key =
    match Hashtbl.find_opt t.by_phase_mirror key with
    | Some h -> h
    | None ->
        let h = Stats.Histogram.create ~sub_buckets:t.sub () in
        Hashtbl.add t.by_phase_mirror key h;
        h

  let note_span t (s : Span.t) =
    if s.Span.cat = "txn" then begin
      let d = Span.duration_us s in
      Stats.Histogram.add (hist_of t s.name) d;
      match Option.bind (List.assoc_opt "mirror" s.args) int_of_string_opt with
      | None -> ()
      | Some m -> Stats.Histogram.add (mirror_hist_of t (s.name, m)) d
    end

  let sink t = Sink.observer ~on_span:(note_span t) ~on_event:(fun _ -> ())

  let threshold_us t =
    if List.length t.worst < t.k then 0.
    else match t.worst with [] -> 0. | e :: _ -> e.e_latency_us

  let rec insert_asc e = function
    | [] -> [ e ]
    | x :: rest when x.e_latency_us < e.e_latency_us -> x :: insert_asc e rest
    | l -> e :: l

  (* Feed one measured transaction: its end-to-end latency always, its
     span window into the per-phase histograms, and — when it beats the
     admission threshold — the full window into the reservoir.  The
     window is aggregated per phase before it reaches the histograms: a
     transaction that enters a phase several times (one [remote_undo]
     per declared range per mirror, one [commit_propagate] per mirror)
     contributes its *total* time in that phase as one sample, so the
     per-phase p99s stack up against the end-to-end p99 — that is what
     lets `explain` attribute the tail to named phases.  Use either
     this (measurement loops, where the caller scopes the
     per-transaction window by sink cursors) or {!sink} (live streams,
     per-span samples), not both, or phases double-count. *)
  let observe t ~latency_us ~spans ~events =
    let seq = t.seq in
    t.seq <- seq + 1;
    Stats.Histogram.add t.latency latency_us;
    let totals = Hashtbl.create 8 in
    let mirror_totals = Hashtbl.create 8 in
    let bump tbl key d =
      Hashtbl.replace tbl key (d +. try Hashtbl.find tbl key with Not_found -> 0.)
    in
    List.iter
      (fun (s : Span.t) ->
        if s.Span.cat = "txn" then begin
          let d = Span.duration_us s in
          bump totals s.name d;
          match Option.bind (List.assoc_opt "mirror" s.args) int_of_string_opt with
          | None -> ()
          | Some m -> bump mirror_totals (s.name, m) d
        end)
      spans;
    (* Walk the window again so phases register in first-seen stream
       order (hash-table order would shuffle the report). *)
    List.iter
      (fun (s : Span.t) ->
        match Hashtbl.find_opt totals s.Span.name with
        | None -> ()
        | Some d ->
            Hashtbl.remove totals s.Span.name;
            Stats.Histogram.add (hist_of t s.Span.name) d)
      spans;
    Hashtbl.iter
      (fun key d -> Stats.Histogram.add (mirror_hist_of t key) d)
      mirror_totals;
    if List.length t.worst < t.k then
      t.worst <- insert_asc { e_seq = seq; e_latency_us = latency_us; e_spans = spans; e_events = events } t.worst
    else
      match t.worst with
      | fastest :: rest when latency_us > fastest.e_latency_us ->
          t.worst <-
            insert_asc
              { e_seq = seq; e_latency_us = latency_us; e_spans = spans; e_events = events }
              rest
      | _ -> ()

  let count t = t.seq
  let latency t = t.latency

  let phases t =
    List.rev t.phase_order |> List.map (fun n -> (n, Hashtbl.find t.by_phase n))

  let phase_hist t name = Hashtbl.find_opt t.by_phase name

  let mirror_phases t =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.by_phase_mirror []
    |> List.sort (fun ((a, i), _) ((b, j), _) -> compare (a, i) (b, j))

  let phase_p99s t =
    phases t
    |> List.filter_map (fun (n, h) ->
           if Stats.Histogram.count h = 0 then None
           else Some (n, Stats.Histogram.percentile h 99.))

  let exemplars t = List.rev t.worst (* slowest first *)

  let timelines (e : exemplar) = Causal.build ~spans:e.e_spans ~events:e.e_events

  (* The transaction id an exemplar's window belongs to, from the first
     span that names one — for labelling flows and reports. *)
  let exemplar_txn (e : exemplar) =
    List.find_map (fun (s : Span.t) -> List.assoc_opt "txn" s.Span.args) e.e_spans
end

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

module Export = struct
  let escape = Registry.json_escape

  let args_json args =
    if args = [] then ""
    else
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

  (* Spans that carry a [mirror] arg get their own track so per-mirror
     phases (remote_undo, commit_propagate, commit_fence) line up under
     the mirror they hit. *)
  let tid_of args =
    match List.assoc_opt "mirror" args with
    | Some m -> ( match int_of_string_opt m with Some i -> i + 2 | None -> 1)
    | None -> 1

  let chrome_json ?(series = []) ?(flows = []) ~spans ~events () =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_char b ',' in
    List.iter
      (fun (s : Span.t) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (escape s.name) (escape s.cat) (Time.to_us s.start) (Span.duration_us s)
             (tid_of s.args) (args_json s.args)))
      spans;
    List.iter
      (fun (e : Event.t) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (escape e.name) (escape e.cat) (Time.to_us e.at) (tid_of e.args)
             (args_json e.args)))
      events;
    (* Gauge samples become ph:"C" counter events; Perfetto renders one
       counter track per (pid, name). *)
    List.iter
      (fun (s : Timeseries.sample) ->
        List.iter
          (fun (name, v) ->
            sep ();
            Buffer.add_string b
              (Printf.sprintf
                 "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
                 (escape name) (Time.to_us s.at) v))
          s.values)
      series;
    (* Named flow events: one flow per exemplar timeline, stepping
       through its hops so the worst-K outliers read as arrows across
       the primary and mirror tracks.  Packet hops on node n land on
       the mirror track tid n+1 (mirror m lives on node m+1, and
       mirror spans use tid m+2). *)
    List.iteri
      (fun i (name, (tl : Causal.timeline)) ->
        let emit ph extra at tid =
          sep ();
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%s\"%s,\"id\":%d,\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
               (escape name) ph extra (i + 1) (Time.to_us at) tid)
        in
        let tid_of_hop (h : Causal.hop) =
          match h.Causal.h_node with Some n -> n + 1 | None -> 1
        in
        match tl.Causal.c_hops with
        | [] -> ()
        | [ h ] ->
            emit "s" "" h.Causal.h_start (tid_of_hop h);
            emit "f" ",\"bp\":\"e\"" h.Causal.h_stop (tid_of_hop h)
        | hops ->
            let last = List.length hops - 1 in
            List.iteri
              (fun j (h : Causal.hop) ->
                let ph, extra =
                  if j = 0 then ("s", "")
                  else if j = last then ("f", ",\"bp\":\"e\"")
                  else ("t", "")
                in
                emit ph extra h.Causal.h_start (tid_of_hop h))
              hops)
      flows;
    Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
    Buffer.contents b

  let rec mkdir_p dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end

  let chrome_json_to_file ?series ?flows ~path ~spans ~events () =
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (chrome_json ?series ?flows ~spans ~events ()))

  let phase_csv_header = [ "phase"; "count"; "total (us)"; "mean (us)"; "share" ]

  let phase_csv_rows stats =
    let grand = List.fold_left (fun acc p -> acc +. p.total_us) 0. stats in
    List.map
      (fun p ->
        [
          p.phase;
          string_of_int p.count;
          Printf.sprintf "%.2f" p.total_us;
          Printf.sprintf "%.3f" p.mean_us;
          (if grand > 0. then Printf.sprintf "%.1f%%" (100. *. p.total_us /. grand) else "-");
        ])
      stats

  let timeseries_csv_header names = "t (us)" :: names

  let timeseries_csv_rows ~names samples =
    List.map
      (fun (s : Timeseries.sample) ->
        Printf.sprintf "%.3f" (Time.to_us s.at)
        :: List.map
             (fun n -> string_of_int (Option.value ~default:0 (List.assoc_opt n s.values)))
             names)
      samples
end
