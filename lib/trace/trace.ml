open Sim

module Span = struct
  type t = {
    name : string;
    cat : string;
    start : Time.t;
    stop : Time.t;
    args : (string * string) list;
  }

  let duration s = s.stop - s.start
  let duration_us s = Time.to_us (duration s)

  let pp ppf s =
    Format.fprintf ppf "%s/%s [%a, %a)" s.cat s.name Time.pp s.start Time.pp s.stop
end

module Event = struct
  type t = { name : string; cat : string; at : Time.t; args : (string * string) list }

  let pp ppf e = Format.fprintf ppf "%s/%s @ %a" e.cat e.name Time.pp e.at
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)

module Sink = struct
  type mem = {
    mutable spans : Span.t list; (* newest first *)
    mutable events : Event.t list; (* newest first *)
    mutable nspans : int;
    mutable nevents : int;
  }

  type t = Noop | Memory of mem

  let noop = Noop
  let memory () = Memory { spans = []; events = []; nspans = 0; nevents = 0 }
  let enabled = function Noop -> false | Memory _ -> true

  let span ?(args = []) t ~cat ~name ~start ~stop =
    match t with
    | Noop -> ()
    | Memory m ->
        m.spans <- { Span.name; cat; start; stop; args } :: m.spans;
        m.nspans <- m.nspans + 1

  let instant ?(args = []) t ~cat ~name ~at =
    match t with
    | Noop -> ()
    | Memory m ->
        m.events <- { Event.name; cat; at; args } :: m.events;
        m.nevents <- m.nevents + 1

  let spans = function Noop -> [] | Memory m -> List.rev m.spans
  let events = function Noop -> [] | Memory m -> List.rev m.events
  let span_count = function Noop -> 0 | Memory m -> m.nspans
  let event_count = function Noop -> 0 | Memory m -> m.nevents

  (* The newest-first list makes "everything after the first n" a
     prefix: take (count - n) from the head, then restore order. *)
  let take_since newest_first ~total ~n =
    let rec take acc k = function
      | x :: rest when k > 0 -> take (x :: acc) (k - 1) rest
      | _ -> acc
    in
    take [] (total - n) newest_first

  let spans_since t n =
    match t with Noop -> [] | Memory m -> take_since m.spans ~total:m.nspans ~n

  let events_since t n =
    match t with Noop -> [] | Memory m -> take_since m.events ~total:m.nevents ~n

  let clear = function
    | Noop -> ()
    | Memory m ->
        m.spans <- [];
        m.events <- [];
        m.nspans <- 0;
        m.nevents <- 0
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let name c = c.name
  let value c = c.value
  let incr ?(by = 1) c = c.value <- c.value + by
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    histograms : (string, Stats.Histogram.t) Hashtbl.t;
  }

  let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

  let counter t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = { Counter.name; value = 0 } in
        Hashtbl.add t.counters name c;
        c

  let add t name n = Counter.incr ~by:n (counter t name)

  let histogram t name =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = Stats.Histogram.create () in
        Hashtbl.add t.histograms name h;
        h

  let observe t name x = Stats.Histogram.add (histogram t name) x

  let counters t =
    Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) t.counters []
    |> List.sort compare

  let histograms t =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms [] |> List.sort compare

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json t =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\"counters\":{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
      (counters t);
    Buffer.add_string b "},\"histograms\":{";
    List.iteri
      (fun i (name, h) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":{\"count\":%d,\"buckets\":[" (json_escape name)
             (Stats.Histogram.count h));
        List.iteri
          (fun j (lo, hi, n) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "[%g,%g,%d]" lo hi n))
          (Stats.Histogram.buckets h);
        Buffer.add_string b "]}")
      (histograms t);
    Buffer.add_string b "}}";
    Buffer.contents b

  let pp ppf t =
    List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters t);
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "%s (%d samples):@.%a" name (Stats.Histogram.count h)
          Stats.Histogram.pp h)
      (histograms t)
end

(* ------------------------------------------------------------------ *)
(* Per-phase breakdown                                                  *)

type phase_stat = { phase : string; count : int; total_us : float; mean_us : float }

let breakdown ?cat spans =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Span.t) ->
      if match cat with Some c -> s.cat = c | None -> true then begin
        let count, total =
          match Hashtbl.find_opt tbl s.name with Some ct -> ct | None -> (0, 0.)
        in
        if count = 0 then order := s.name :: !order;
        Hashtbl.replace tbl s.name (count + 1, total +. Span.duration_us s)
      end)
    spans;
  List.rev_map
    (fun phase ->
      let count, total_us = Hashtbl.find tbl phase in
      { phase; count; total_us; mean_us = total_us /. float_of_int count })
    !order
  |> List.sort (fun a b -> compare b.total_us a.total_us)

let register_spans reg spans =
  List.iter
    (fun (s : Span.t) ->
      let key = s.Span.cat ^ "." ^ s.Span.name in
      Registry.add reg (key ^ ".count") 1;
      Registry.observe reg (key ^ ".us") (Span.duration_us s))
    spans

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

module Export = struct
  let escape = Registry.json_escape

  let args_json args =
    if args = [] then ""
    else
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

  (* Spans that carry a [mirror] arg get their own track so per-mirror
     phases (remote_undo, commit_propagate, commit_fence) line up under
     the mirror they hit. *)
  let tid_of args =
    match List.assoc_opt "mirror" args with
    | Some m -> ( match int_of_string_opt m with Some i -> i + 2 | None -> 1)
    | None -> 1

  let chrome_json ~spans ~events =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_char b ',' in
    List.iter
      (fun (s : Span.t) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (escape s.name) (escape s.cat) (Time.to_us s.start) (Span.duration_us s)
             (tid_of s.args) (args_json s.args)))
      spans;
    List.iter
      (fun (e : Event.t) ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
             (escape e.name) (escape e.cat) (Time.to_us e.at) (tid_of e.args)
             (args_json e.args)))
      events;
    Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
    Buffer.contents b

  let rec mkdir_p dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end

  let chrome_json_to_file ~path ~spans ~events =
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (chrome_json ~spans ~events))

  let phase_csv_header = [ "phase"; "count"; "total (us)"; "mean (us)"; "share" ]

  let phase_csv_rows stats =
    let grand = List.fold_left (fun acc p -> acc +. p.total_us) 0. stats in
    List.map
      (fun p ->
        [
          p.phase;
          string_of_int p.count;
          Printf.sprintf "%.2f" p.total_us;
          Printf.sprintf "%.3f" p.mean_us;
          (if grand > 0. then Printf.sprintf "%.1f%%" (100. *. p.total_us /. grand) else "-");
        ])
      stats
end
