(** Ordered, mergeable byte-interval sets.

    The per-transaction write-set index behind redundancy elision:
    {!Perseas.set_range} records each declared range here, consults
    {!uncovered} to log before-images for first writes only, and
    {!Perseas.commit} ships {!intervals} — the maximal contiguous runs —
    instead of the raw declaration list.  Intervals are kept disjoint
    and non-adjacent (adding a touching or overlapping range merges it
    into its neighbours), so membership is one ordered-map predecessor
    lookup rather than a scan of every declared range.

    Offsets are byte offsets within one segment; a transaction keeps
    one [t] per segment it touched.  All operations are purely
    functional. *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of coalesced intervals (not bytes). *)

val total : t -> int
(** Total bytes covered. *)

val add : t -> off:int -> len:int -> t
(** [add t ~off ~len] inserts [\[off, off+len)], merging any
    overlapping or adjacent intervals into one contiguous run.
    [len = 0] is a no-op; negative [off]/[len] raise
    [Invalid_argument]. *)

val covers : t -> off:int -> len:int -> bool
(** Whether [\[off, off+len)] is entirely inside the set.  Because
    intervals are coalesced this is a single predecessor lookup —
    O(log n) in the number of intervals. *)

val uncovered : t -> off:int -> len:int -> (int * int) list
(** The sub-ranges of [\[off, off+len)] NOT in the set, as ascending
    disjoint [(off, len)] pairs.  Empty when {!covers} holds; the
    whole query range when the set misses it entirely.  These are the
    fragments {!Perseas.set_range} still has to undo-log. *)

val intervals : t -> (int * int) list
(** All intervals as ascending [(off, len)] pairs — already coalesced
    into maximal contiguous runs. *)

val snap : t -> align:int -> limit:int -> t
(** [snap t ~align ~limit] widens every interval outward to [align]-byte
    boundaries, clamped to [\[0, limit)], and re-merges — runs that the
    widening makes touch collapse into one. *)

val glue : t -> align:int -> t
(** [glue t ~align] merges intervals whose [align]-byte line spans
    touch or overlap, shipping their exact hull as one run; intervals
    in disjoint line spans keep their exact extents (no boundary
    widening).  This is how {!Perseas.commit} builds its propagation
    list under [optimized_memcpy] with [align = 64], the SCI
    full-packet line: runs that would share packets anyway stream as
    one fuller burst, while isolated small runs ship no extra bytes.
    Safe for mirrored segments because the hull's gap bytes are
    identical on both sides (see DESIGN.md). *)

val intersects : t -> t -> bool
(** Whether the two sets share at least one byte.  Walks the smaller
    set probing the larger, so disjointness checks between a
    transaction's declaration and its peers' write-sets cost
    O(min intervals · log max intervals).  This is the conflict test
    {!Perseas.set_range} runs against every other open transaction. *)

val union : t -> t -> t
(** All bytes covered by either set, coalesced.  Group commit unions
    the batch's per-segment write-sets to build one shared propagation
    list. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** [{[0,64); [128,256)}] — for test failure messages. *)
