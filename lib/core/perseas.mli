open Sim

(** PERSEAS: a transaction library for main-memory databases on a
    reliable network RAM (the paper's contribution).

    Every database segment lives twice: in the local node's DRAM and,
    mirrored, in the memory exported by a remote node's server.  A
    transaction makes three kinds of memory copies and no disk access
    (paper, Figure 3):

    + [set_range] copies the before-image into the local undo log and
      pushes it to the remote undo log with a remote write;
    + the application updates the declared ranges in the local database;
    + [commit] copies each updated range to the remote mirror and then
      atomically bumps the remotely-mirrored {e epoch} — a single
      8-byte remote store, which is the commit point.

    If the local node crashes at any instant, {!recover} rebuilds the
    database on any workstation that can reach the mirror: undo records
    tagged with the current epoch are applied back over the remote
    database (discarding a half-propagated commit), the epoch is bumped
    to invalidate them, and the segments are fetched with
    remote-to-local copies. *)

module Txn_intf = Txn_intf
module Layout = Layout
module Iset = Iset

type t
type segment
type txn

type config = {
  undo_capacity : int;  (** Bytes reserved for the undo log (both copies). *)
  max_segments : int;
  strict_updates : bool;
      (** After {!init_remote_db}, reject writes outside a declared
          [set_range] of the open transaction (catches protocol bugs). *)
  optimized_memcpy : bool;
      (** Use the §4 [sci_memcpy] 64-byte-alignment optimisation for
          remote copies (default).  Disable for the ablation bench.
          With [redundancy_elision] it additionally snaps commit
          propagation runs to 64-byte packet lines. *)
  redundancy_elision : bool;
      (** Drive undo logging and commit propagation off the
          transaction's write-set interval index (default): a
          [set_range] sub-range already declared this transaction is
          not re-logged — Vista-style first-write-only logging, the
          original before-image is the one recovery must restore — and
          [commit] ships the coalesced maximal runs instead of the raw
          declaration list.  Disable to get the naive one-record-per-
          call path, kept as a differential-testing oracle; recovery
          semantics are identical either way. *)
  namespace : string;
      (** Prefix of this database's exported-segment names, so several
          independent databases can share one memory server.  Recovery
          must use the same namespace. *)
  dirty_log_limit : int;
      (** Maximum entries of the dirty-range log behind incremental
          resync ({!recruit_mirror}).  When the log overflows, the
          oldest entries are dropped and mirrors that have been gone
          longer than the remaining window get a full copy instead. *)
  group_commit : int;
      (** Commits per shared flush.  [1] (default) is eager per-commit
          propagation — the original single-transaction behaviour,
          packet for packet.  [> 1] enables group commit: [commit]
          stages the transaction and every [group_commit]-th commit (or
          an explicit {!flush}, or a membership operation) drains the
          queue with one undo convoy, one merged data convoy and one
          single-packet fence per mirror — the burst startup and the
          commit point amortise across the batch. *)
  retired_limit : int;
      (** Maximum entries of the retired-epoch table that remembers at
          which epoch each ex-mirror was dropped (what makes
          {!recruit_mirror}'s incremental path provably safe).  Beyond
          the cap the entry with the {e oldest} epoch is evicted — that
          node simply falls back to a full copy if it ever returns.
          Before this cap the table grew without bound under mirror
          churn.  Must be at least 1 ([Invalid_argument] from
          {!init}). *)
}

val default_config : config
(** 1 MiB + slack of undo space, 64 segments, strict updates,
    redundancy elision on, 4096 dirty-log entries, eager commit
    ([group_commit = 1]), 64 retired-epoch entries. *)

exception Undo_overflow
(** A transaction declared more before-image bytes than the undo log
    holds; abort it and retry with a larger [undo_capacity].  Under
    group commit the library first drains the staged queue (freeing the
    flushed records' log space) and only raises if the declaration
    still does not fit — and then only at the caller: staged and open
    peers are unaffected. *)

exception Conflict of { younger : int; older : int }
(** Two in-flight transactions declared overlapping 64-byte lines —
    line granularity because packet widening and commit glue may ship
    margin bytes of a declared range's boundary lines.  Policy: the
    {e younger} transaction (higher {!txn_id}) aborts; it has done less
    work and is the cheaper retry.  Raised by the loser's next library
    call — immediately by [set_range] when the declarer is the younger
    party, or deferred (the declarer dooms the younger holder, which
    learns of it at its own next call).  The losing transaction is
    already rolled back and closed when [Conflict] surfaces; the
    harness {!module:Harness} retry helper catches it and re-runs the
    transaction body. *)

exception Double_begin of string
(** [begin_transaction] while the same client name already has an open
    transaction — the old single-transaction aliasing bug surfaced as a
    typed error.  The payload is the client name.  Concurrent begins
    from {e distinct} clients are legal, as is beginning while the
    client's previous transaction is merely staged for flush. *)

exception All_mirrors_lost
(** Every mirror node has failed: the library refuses to continue,
    since committing without a mirror would silently forfeit
    recoverability.  When raised mid-[set_range]/[commit], the open
    transaction is first rolled back from the local undo log and
    closed, so the library stays usable: [begin_transaction] works
    again once a fresh mirror is attached ({!attach_mirror}) — the
    local copy is still intact. *)

(** {1 Initialisation} *)

val init : ?config:config -> Netram.Client.t -> t
(** [PERSEAS_init]: binds the library to a local node and a remote
    memory server, and allocates the undo and metadata mirrors.
    Equivalent to {!init_replicated} with a single mirror. *)

val init_replicated : ?config:config -> Netram.Client.t list -> t
(** Mirror the database on several remote nodes at once (the paper's
    "at least two different PCs").  All clients must run on the same
    local node of the same cluster and target distinct servers.
    Data can then be lost only if the primary and {e every} mirror
    fail in the same window. *)

val client : t -> Netram.Client.t
(** The first mirror's client (convenience for single-mirror setups). *)

val cluster : t -> Cluster.t
val config : t -> config

val malloc : t -> name:string -> size:int -> segment
(** [PERSEAS_malloc]: allocate a local database segment (64-byte
    aligned) and prepare its remote mirror.  Only legal before
    {!init_remote_db}.  Raises [Failure] on duplicate names, exhausted
    memory or too many segments. *)

val init_remote_db : t -> unit
(** [PERSEAS_init_remote_db]: copy every segment's initial contents to
    its mirror and publish the metadata (magic, epoch, segment table)
    remotely.  From this point the database is recoverable. *)

val remote_ready : t -> bool
val epoch : t -> int64

(** {1 Mirror management}

    A mirror that fails mid-operation is dropped from the set and the
    library continues degraded (a warning is logged and
    [stats.mirrors_lost] is bumped); when the last mirror goes,
    operations raise {!All_mirrors_lost}. *)

type mirror_info = { node_id : int; alive : bool }

val mirrors : t -> mirror_info list
val live_mirrors : t -> int list
(** Node ids of the mirrors still in the set. *)

val mirror_count : t -> int

val set_replication_target : t -> int -> unit
(** Declare how many live mirrors the database {e should} have; while
    {!mirror_count} is below it, virtual time accrues into
    [stats.degraded_us].  Defaults to the initial client count
    ({!recover_replicated} resets it to whatever factor recovery
    achieved); {!Supervisor.create} aligns it with the supervisor's
    target.  Raises [Invalid_argument] when not positive. *)

val replication_target : t -> int

val attach_mirror : t -> server:Netram.Server.t -> unit
(** Bring a new mirror into the set: export (or reconnect and resync)
    every segment plus metadata on [server] and copy the current
    database there (always a {e full} copy — see {!recruit_mirror} for
    the incremental path).  The epoch is bumped so stale undo records
    can never replay against the fresh copy.  Any staged group-commit
    batch is drained ({!flush}) first so the joiner starts from a
    committed image; transactions that are merely {e open} do not block
    the join — the joiner additionally receives their before-images
    over its database copy, keeping it a replica of the {e committed}
    state that their undo records restore.  Raises [Invalid_argument]
    if the node already mirrors this database, [Failure] when called
    from inside a flush in flight (a packet hook re-entering the
    library mid-propagation), and {!Netram.Client.Unreachable} if
    [server] dies mid-resync — in which case the mirror set is left
    exactly as it was, and the joiner's metadata header was zeroed
    {e before} any copying so recovery can never mistake the torn copy
    for a sound one. *)

type resync_mode = Full | Incremental

type resync_report = {
  mode : resync_mode;
  bytes_copied : int;  (** Database bytes actually pushed to the joiner. *)
  full_bytes : int;  (** What a full copy would have moved. *)
}

val recruit_mirror : t -> server:Netram.Server.t -> resync_report
(** {!attach_mirror}, but when [server] is an ex-mirror of this
    database that came back from a transient outage (its exports are
    intact and its replica is no newer than the epoch at which it was
    dropped), only the ranges committed since it left are copied — the
    dirty-range log bounded by [config.dirty_log_limit] remembers them.
    Falls back to a full copy whenever the incremental path cannot be
    proven safe: the node was never a mirror, it has been gone longer
    than the dirty log reaches back, its exports were lost (a reboot
    wipes them) or resized, or its metadata header is invalid or ahead
    of the retirement epoch.  Same exceptions as {!attach_mirror}. *)

val retired_count : t -> int
(** Entries currently in the retired-epoch table (bounded by
    [config.retired_limit]). *)

val probe_mirrors : t -> int list
(** Liveness probe of every live mirror — one control round trip each
    (charged).  Unresponsive mirrors are dropped exactly as if a data
    operation had hit them ([stats.mirrors_lost] is bumped) and their
    node ids returned.  Unlike the data path this never raises
    {!All_mirrors_lost}: it is a detector, not an operation that needs
    a mirror — callers decide what an empty set means for them. *)

val detach_mirror : t -> node_id:int -> unit
(** Remove a mirror from the set (e.g. planned maintenance).  Drains
    any staged group-commit batch first; raises [Failure] mid-flush,
    and refuses — also [Failure] —
    to detach the {e last} live mirror, which would silently forfeit
    recoverability; attach a replacement first ({!attach_mirror}), or
    use {!remirror} to swap the whole set.  Raises [Invalid_argument]
    if the node is not a live mirror. *)

val remirror : t -> server:Netram.Server.t -> unit
(** Drop every current mirror and re-mirror on a single fresh server —
    the "mirror died" recovery path for two-node setups.  Gated like
    {!attach_mirror}: staged commits are flushed first, open
    transactions are scrubbed onto the joiner. *)

val segment : t -> string -> segment option
val segments : t -> segment list
val segment_name : segment -> string
val segment_size : segment -> int

(** {1 Transactions} *)

val begin_transaction : ?client:string -> t -> txn
(** Open a transaction on behalf of [client] (default ["default"]).
    Transactions from {e distinct} clients may be open concurrently —
    the engine keeps one write-set per transaction and detects overlap
    at {!set_range} ({!Conflict}).  Raises {!Double_begin} when the
    same client already has an open transaction (a staged-but-unflushed
    one does not count: a client may pipeline begins against its own
    group-committed tail), and [Failure] before {!init_remote_db} or
    mid-flush. *)

val txn_id : txn -> int
(** Monotone per-database id; lower id = older transaction ({!Conflict}
    aborts the younger). *)

val txn_client : txn -> string

val validate : txn -> unit
(** Surface a deferred {!Conflict} now: raises it (closing the
    transaction — it was rolled back when the older peer doomed it) if
    an older peer's declaration doomed this transaction; no-op
    otherwise.  Call it between phases of a long transaction so the
    loss is discovered before, not during, the apply work. *)

val open_txn_count : t -> int
val staged_count : t -> int
(** Transactions committed but not yet propagated (group commit). *)

val flush : t -> unit
(** Drain the staged group-commit queue now: one undo convoy, one
    merged data convoy and one single-packet epoch fence per mirror
    commit the whole batch atomically-per-mirror.  No-op when nothing
    is staged.  Membership operations and {!Undo_overflow} pressure
    call this implicitly. *)

val set_range : txn -> segment -> off:int -> len:int -> unit
(** [PERSEAS_set_range]: log the before-image of
    [\[off, off+len)] locally and remotely.  Must precede the updates
    it covers.  With [config.redundancy_elision] (default), sub-ranges
    already declared this transaction are skipped — only the uncovered
    fragments are logged, the first before-image being the one that
    matters — so re-declaring a hot range costs no copies and no
    packets.

    Declaring a 64-byte line another in-flight transaction holds is a
    conflict: the younger party aborts ({!Conflict}) — immediately when
    that is the caller, else the holder is doomed and learns at its
    next call.  Overlap with a merely {e staged} transaction forces a
    {!flush} instead (the staged one already committed; it just had not
    been propagated).  Raises {!Undo_overflow} (after attempting a
    flush to free log space) or [Invalid_argument]. *)

val commit : txn -> unit
(** [PERSEAS_commit_transaction].  With [config.redundancy_elision] the
    propagation ships the transaction's {e coalesced} write-set —
    adjacent/overlapping declarations merged into maximal contiguous
    runs and, when [optimized_memcpy] is also set, runs sharing a
    64-byte packet line glued into one hull ({!Iset.glue}) — instead of
    one plan per [set_range] call.

    With [config.group_commit > 1] the transaction is {e staged}
    instead of propagated: its durability is deferred until the batch
    flushes (queue full, explicit {!flush}, a membership operation, or
    a staged-range conflict).  The flush commits the batch in commit
    order with shared convoys and one fence — see {!type-config}. *)

val abort : txn -> unit
(** [PERSEAS_abort_transaction]: restores declared ranges from the
    local undo log (local memory copies only).  Aborting a transaction
    an older peer already doomed is a silent no-op (it was rolled back
    at doom time); aborting a staged or closed one raises [Failure]. *)

(** {1 Database access}

    Reads and writes go to the local copy.  Writes charge the CPU copy
    cost; with [strict_updates] they must fall inside a declared range
    of the open transaction once the store is live. *)

val write : t -> segment -> off:int -> bytes -> unit
val read : t -> segment -> off:int -> len:int -> bytes
val write_u32 : t -> segment -> off:int -> int -> unit
val read_u32 : t -> segment -> off:int -> int
val write_u64 : t -> segment -> off:int -> int64 -> unit
val read_u64 : t -> segment -> off:int -> int64
val checksum : t -> segment -> int64

val mirror_checksum : t -> segment -> int64
(** Checksum of the first live mirror's copy (test oracle; charges
    nothing).  Raises {!All_mirrors_lost} when no mirror survives. *)

val mirror_checksums : t -> segment -> (int * int64) list
(** Checksums of every live mirror's copy, by mirror index. *)

val verify_mirrors : t -> (string * int) list
(** Operational scrub: [(segment, mirror index)] pairs whose mirror
    copy diverges from the local database.  Empty outside a commit.
    Charges no virtual time (an offline oracle). *)

(** {1 Fuzzy checkpoints}

    A checkpoint is a consistent database image on a {e third} failure
    domain — a spare node's RAM or a disk — taken in the background
    while transactions keep committing (fuzzy: the snapshot is shipped
    in budgeted steps, then brought to a consistent {e cut} at finalize
    time by re-shipping what committed meanwhile and scrubbing
    in-flight transactions' bytes back to their before-images).  A
    published checkpoint lets the engine {e truncate} its recovery
    state — undo log, dirty-range log, retired-epoch table — and lets
    {!recover_replicated} restore all segments unmodified since the cut
    straight from the snapshot (on the target node itself: by adopting
    the bytes in place, O(1) per segment) instead of copying the whole
    database from a mirror: recovery time stops growing with database
    size.

    Two slots alternate on the target, and a slot's magic word is
    zeroed before its first snapshot byte and re-written strictly last
    (then the directory's generation word), so a crash at {e any}
    packet of a checkpoint — the sweeps in {!Harness.Crashpoint} cut
    every one — leaves either the previous valid generation or the new
    one, never a torn snapshot recovery would trust. *)

type checkpoint_source =
  | Ram_source of Netram.Server.t
  | Disk_source of Disk.Device.t
      (** Where {!recover_replicated} should look for checkpoint slots:
          a spare's memory server ({!Checkpoint.set_ram_target}) or a
          disk device ({!Checkpoint.set_disk_target}). *)

module Checkpoint : sig
  exception Target_lost of string
  (** The checkpoint target became unreachable.  The engine drops the
      target (commits keep flowing — checkpointing is an optimisation,
      not a durability requirement), stops maintaining the per-segment
      modification epochs, and clears the live word on its mirrors so
      recovery will not trust columns nobody maintains. *)

  val set_ram_target : t -> server:Netram.Server.t -> unit
  (** Attach a spare node's memory server as the checkpoint target:
      export the directory block and both slots there, and start
      maintaining per-segment modification epochs in the mirrored
      metadata (pushed with every commit).  The server must live on a
      node other than the primary's ([Invalid_argument]) — a checkpoint
      in the primary's own failure domain protects nothing.  Raises
      [Failure] before {!init_remote_db} or with a checkpoint in
      flight, {!Target_lost} if the server is unreachable. *)

  val set_disk_target : t -> device:Disk.Device.t -> unit
  (** Same, but checkpoint to stable storage: directory block at device
      offset 0, the two slots behind it.  Raises [Invalid_argument] if
      the device cannot hold both slots. *)

  val clear_target : t -> unit
  (** Detach the target and stop maintaining modification epochs
      (mirrors get a metadata push clearing the live word). *)

  val target_set : t -> bool

  val start : t -> unit
  (** Begin a fuzzy checkpoint into the next slot: drain any staged
      group-commit batch (the cut never splits a convoy), zero the
      slot's magic word, and record the start epoch.  Raises [Failure]
      with no target, a checkpoint already in flight, or mid-flush;
      {!Target_lost} on an unreachable target. *)

  val step : t -> budget:int -> bool
  (** Ship up to [budget] more bytes of the segment images to the slot;
      [true] once the full pass is shipped (commits between steps are
      caught at {!finalize}).  Raises like {!start}, and
      [Invalid_argument] on a non-positive budget. *)

  val finalize : t -> int64 * int
  (** Complete and publish the checkpoint, then truncate: ship whatever
      the budget steps have not, re-ship every range committed since
      {!start}, scrub open transactions back to their before-images,
      write the slot header (cut epoch = the current commit point) with
      the magic word second-to-last and the directory generation word
      strictly last — and only then compact the undo log, reset
      [stats.undo_hwm_bytes], fold the now-covered dirty-log entries
      into the bounded resync summary, and prune unreachable
      retired-epoch entries.  Returns (cut epoch, undo bytes
      truncated). *)

  val take : t -> int64 * int
  (** {!start} + {!finalize} in one call: a non-fuzzy (stop-the-world
      within one virtual instant) checkpoint. *)

  val abandon : t -> unit
  (** Drop the in-flight checkpoint, if any.  The slot under
      construction was already fenced off (magic zeroed), the published
      generation is untouched. *)

  val auto :
    t -> events:Events.t -> interval:Time.t -> until:Time.t -> budget:int -> unit
  (** Background checkpointer riding the event queue (like the
      telemetry sampler): each tick starts a checkpoint, ships one
      [budget] of bytes, or finalizes — so checkpoints spread over many
      ticks with commits interleaving.  A lost target ends the work
      silently, and ticks are skipped while every mirror is out (the
      cut would have to quiesce a convoy nobody can receive). *)

  val in_flight : t -> bool

  val generation : t -> int64
  (** Newest published checkpoint generation (0 = none yet). *)
end

(** {1 Recovery} *)

val recover :
  ?config:config ->
  ?sink:Trace.Sink.t ->
  ?on_repair:(name:string -> len:int -> unit) ->
  ?checkpoint:checkpoint_source ->
  ?helpers:int list ->
  cluster:Cluster.t ->
  local:int ->
  server:Netram.Server.t ->
  unit ->
  t
(** Rebuild the database on node [local] from the mirror held by
    [server]: reconnect the metadata and undo segments by name, repair
    a half-committed transaction from the remote undo log, invalidate
    it by bumping the epoch, and fetch every segment with
    remote-to-local copies.  Works on the original primary after
    reboot, or on any other workstation — the paper's availability
    property.  Raises [Failure] when the server holds no database.
    [on_repair] is called once per undo record replayed over the
    remote database (segment name and payload bytes) — the observable
    trace of a discarded half-commit. *)

val recover_replicated :
  ?config:config ->
  ?sink:Trace.Sink.t ->
  ?on_repair:(name:string -> len:int -> unit) ->
  ?checkpoint:checkpoint_source ->
  ?helpers:int list ->
  cluster:Cluster.t ->
  local:int ->
  servers:Netram.Server.t list ->
  unit ->
  t
(** Multi-mirror recovery: probe every candidate server, trust the one
    whose metadata reached the {e highest} epoch (only it can have seen
    the latest commit point), repair it from its undo log, rebuild the
    local database from it, and resync the other surviving mirrors with
    a full copy.  A best-epoch candidate whose metadata cannot be
    parsed (e.g. it died mid-[attach_mirror] resync) is skipped in
    favour of the next-best intact copy.  Raises [Failure] when no
    candidate holds a recoverable database.

    [checkpoint] offers a place to look for checkpoint slots (see
    {!module:Checkpoint}).  If the chosen mirror's metadata carries the
    checkpoint-live word and a slot passes validation — magic fence
    intact, cut no newer than the mirror's epoch, segment table
    matching — every segment whose last modification epoch is at or
    before the cut restores from the snapshot (adopted {e in place},
    zero-copy, when the slot lives in this node's own DRAM — recover on
    the checkpoint target for flat recovery time); segments modified
    after the cut, or everything when no valid slot exists, fall back
    to the repaired mirror as before.  A torn slot falls back to the
    previous generation, then to plain mirror fetch — never trusted.

    [helpers] are other cluster nodes recruited to pull segment fetches
    in parallel: fetch costs spread round-robin across [1 + N] streams
    and virtual time advances by the slowest stream plus one
    coordination round trip per helper.

    [sink] traces recovery as four contiguous [recovery]-category spans
    — [probe], [repair], [fetch_db], [resync_mirrors] — partitioning
    its whole virtual extent, and becomes the rebuilt instance's trace
    sink (see {!set_sink}). *)

(** {1 Archive}

    The one planned case where the whole cluster goes dark (paper §1:
    "unless scheduled by the system administrators, in which case the
    database can gracefully shut down"): write everything to stable
    storage, and cold-start from it later on any cluster. *)

val archive : t -> Disk.Device.t -> unit
(** Write the metadata and every segment to the device (synchronous,
    charged).  Drains any staged batch first.  Raises [Failure] with an
    open transaction (the local image holds its uncommitted bytes),
    mid-flush, before {!init_remote_db}, or if the device is too
    small. *)

val restore_from_archive :
  ?config:config -> clients:Netram.Client.t list -> Disk.Device.t -> t
(** Cold start: rebuild the database from an archive and mirror it on
    the given servers ({!init_remote_db} included — the instance is
    live on return). *)

(** {1 Fault injection}

    The hook runs before {e every} remote packet PERSEAS sends (undo
    writes, commit propagation, the epoch write).  Raising from it
    models the primary dying at that instant with the packet unsent;
    tests crash the node and exercise {!recover} at every possible cut
    point. *)

val set_packet_hook : t -> (unit -> unit) option -> unit

val commit_packets : txn -> int
(** Number of remote packets committing this transaction would add to
    the wire now (dry run).  Eager mode: data-propagation packets plus
    one epoch packet per mirror, exactly what {!commit} sends.  Group
    mode: the transaction's {e marginal} packets — the flush cost of
    the staged queue with it minus without it, so shared convoy
    startup and the per-mirror fence are counted once per flush, not
    once per transaction; summing it over a batch committed
    back-to-back equals the flush's measured NIC packet delta. *)

(** {1 Statistics} *)

type stats = {
  begun : int;
  committed : int;
  aborts : int;
  set_ranges : int;
  undo_bytes_logged : int;
      (** Before-image payload bytes actually logged (after elision). *)
  elided_undo_bytes : int;
      (** Declared bytes whose undo logging was skipped because the
          write-set index already covered them ([redundancy_elision]). *)
  undo_hwm_bytes : int;
      (** High-water mark of the undo log within one transaction
          (headers included) — how close any transaction came to
          {!type-config.undo_capacity}. *)
  coalesced_ranges : int;
      (** Declared ranges merged away by commit propagation: the sum
          over commits of (set_range calls − contiguous runs shipped). *)
  commit_bytes_saved : int;
      (** Payload bytes commit propagation did {e not} re-ship thanks to
          coalescing: the sum over commits of (declared bytes, duplicates
          included − coalesced write-set bytes). *)
  local_copy_bytes : int;  (** Bytes moved by local memcpys. *)
  mirrors_lost : int;  (** Mirrors dropped after failing mid-operation. *)
  mirrors_recruited : int;  (** Mirrors (re-)joined after {!init_remote_db}. *)
  resync_bytes : int;  (** Database bytes pushed to joining mirrors. *)
  degraded_us : int;
      (** Total virtual microseconds spent below the replication target
          (see {!set_replication_target}; an open degraded window counts
          up to the current clock). *)
  conflicts : int;
      (** Transactions aborted because a concurrent peer declared an
          overlapping 64-byte line (both the immediate and the doomed
          flavour of {!Conflict}). *)
  group_flushes : int;  (** Group-commit queue drains ({!flush}). *)
  group_commit_txns : int;
      (** Transactions committed through those flushes; divided by
          [group_flushes] this is the achieved batch size. *)
  checkpoints_taken : int;  (** Checkpoints published ({!Checkpoint.finalize}). *)
  checkpoint_bytes : int;
      (** Segment-image bytes shipped to the checkpoint target,
          including finalize-time re-ships and scrubs. *)
  log_truncated_bytes : int;
      (** Undo-log bytes reclaimed by checkpoint truncation; each
          truncation also resets [undo_hwm_bytes] to the surviving
          tail, so the telemetry dashboard shows the log footprint
          actually shrinking. *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One [name value] line per counter. *)

val stats_to_json : stats -> string
(** The counters as one flat JSON object (key order fixed, matching
    {!pp_stats}). *)

(** {1 Tracing}

    Phase-level spans against virtual time, for the latency-breakdown
    experiments and Perfetto visualisation.  The sink is a pure
    observer: it reads the clock but never advances it, so runs with
    tracing on and off are byte-identical in packet counts, statistics
    and final virtual time.

    Span taxonomy (category [txn], one leaf span per clock charge, so
    per-phase sums equal end-to-end transaction latency): [begin],
    [set_range], [local_undo], [remote_undo] (one per mirror, arg
    [mirror]), [in_place_write], [commit], [commit_propagate] and
    [commit_fence] (one per mirror each), [abort].  Mirror resyncs emit
    a [mirror]/[resync] span; {!Supervisor} events mirror as
    [supervisor]-category instants; {!recover_replicated} emits
    [recovery]-category phase spans. *)

val set_sink : t -> Trace.Sink.t -> unit
(** Attach a trace sink to this instance {e and} to the cluster's NIC
    (so per-packet [sci] events and [netram] rpc events land in the
    same sink).  Pass {!Trace.Sink.noop} to disable. *)

val sink : t -> Trace.Sink.t

val set_telemetry : t -> Trace.Timeseries.t -> unit
(** Attach a gauge timeseries to this instance {e and} to the cluster's
    NIC ({!Sci.Nic.set_telemetry}), so one call instruments the whole
    stack.  The engine maintains, under the same pure-observer contract
    as the sink:

    - [perseas.undo_tail] — shared undo-log tail across the in-flight
      transactions, updated per [set_range] and reset when the engine
      quiesces; its gauge high-water mark is the worst case between
      samples;
    - [perseas.group_commit_size] — transactions committed by the most
      recent group flush;
    - a sample-time probe exporting [perseas.epoch],
      [perseas.live_mirrors], [perseas.dirty_log] (dirty-range log
      length), [perseas.undo_hwm_bytes], [perseas.elided_undo_bytes],
      [perseas.coalesced_ranges], [perseas.commit_bytes_saved],
      [perseas.committed], [perseas.aborts], [perseas.mirrors_lost],
      [perseas.resync_bytes], [perseas.degraded_us],
      [perseas.open_txns], [perseas.staged_txns], [perseas.conflicts],
      [perseas.group_flushes], [perseas.checkpoints_taken],
      [perseas.checkpoint_bytes], [perseas.log_truncated_bytes] and
      [perseas.retired_entries].

    Defaults to {!Trace.Timeseries.noop}. *)

val telemetry : t -> Trace.Timeseries.t

(** {1 Self-healing supervision}

    The paper keeps the replication factor up by hand: an operator
    notices a dead PC and re-mirrors.  {!Supervisor} automates exactly
    that loop — probe at transaction boundaries, drop corpses, recruit
    replacements from a spare pool — without adding any background
    concurrency: it only runs when the application calls {!Supervisor.tick},
    so the simulation stays deterministic. *)

type db = t
(** Alias so {!Supervisor}'s own [t] can still name the database. *)

module Supervisor : sig
  type policy = {
    probe_interval : Time.t;
        (** Minimum virtual time between liveness sweeps; ticks inside
            the window skip the probe (losses discovered in-line by the
            data path are still noticed). *)
    max_attempts : int;
        (** Consecutive failed recruitments before giving up; a fresh
            {!add_spare} re-arms the budget. *)
    backoff_initial : Time.t;  (** Delay after the first failed attempt. *)
    backoff_factor : float;  (** Multiplier for each further failure. *)
  }

  val default_policy : policy
  (** 50 µs probe interval, 6 attempts, 100 µs initial backoff,
      doubling. *)

  type event =
    | Mirror_lost of { at : Time.t; node_id : int }
    | Recruited of { at : Time.t; node_id : int; report : resync_report }
    | Attempt_failed of { at : Time.t; node_id : int; attempt : int; reason : string }
    | Gave_up of { at : Time.t; node_id : int; attempts : int }

  type t

  val create : ?policy:policy -> ?target:int -> ?spares:Netram.Server.t list -> db -> t
  (** Supervise [db], keeping its replication factor at [target]
      (default: the factor at creation time) using the given spare
      servers (first come, first recruited). *)

  val add_spare : t -> Netram.Server.t -> unit
  (** Append a server to the spare pool.  Also resets the failure
      budget and backoff — the pool changed, so the run of failures
      that exhausted it no longer describes it. *)

  val tick : t -> unit
  (** One supervision step; call it between transactions.  Probes the
      mirrors (throttled by [probe_interval]), records losses, and
      recruits spares — with exponential backoff between failed
      attempts, flaky spares rotated to the back of the pool — until
      the factor is back at target, the pool is empty, or the budget
      is exhausted.  Never raises: a database that is merely degraded
      must keep committing. *)

  val events : t -> event list
  (** Everything noticed so far, oldest first. *)

  val spares : t -> int list
  (** Node ids waiting in the pool, in recruitment order. *)

  val target : t -> int

  val degraded : t -> bool
  (** Live mirrors below target? *)

  val gave_up : t -> bool
  (** The failure budget is spent; {!add_spare} re-arms it. *)

  val retry_at : t -> Time.t
  (** Earliest virtual instant of the next recruitment attempt. *)

  val set_telemetry : t -> Trace.Timeseries.t -> unit
  (** Register a sample-time probe exporting the supervisor's health:
      [sup.spares] (pool depth), [sup.degraded] (0/1 — below target?),
      [sup.deficit] (mirrors missing from target) and [sup.gave_up]
      (0/1).  Pure observer; no-op on a disabled timeseries. *)
end

(** {1 Engine view} *)

module Engine :
  Txn_intf.S with type t = t and type segment = segment and type txn = txn

(** {1 Sharded multi-primary cluster}

    The paper's engine replicates for availability, not for scale:
    every transaction funnels through one primary.  {!Shard} partitions
    the key space across a set of independent primaries — each with its
    own cluster, clock and mirror set on distinct power supplies — and
    routes single-shard transactions to their owner, so disjoint shards
    commit in full parallelism (each on its own virtual clock; cluster
    time is the frontier across shards).

    Cross-shard transactions do not run 2PC over network RAM.  Instead
    the router adopts STAR-style epoch alternation
    ({!Cluster.Phase}): during the {e partitioned} phase only
    single-shard transactions execute and cross-shard submissions
    queue; periodically the router fences every shard into quiescence
    (reusing the group-commit convoy {!flush} and the epoch machinery —
    fence strictly last per mirror), runs the backlog serially as a
    designated {e single master} on the synchronized clocks, fences the
    convoys out, and switches back.  Both switches emit
    [cluster]/[phase_switch] instants and every cross-shard commit a
    [cluster]/[cross_commit] instant on the involved shards' sinks, so
    {!Trace.Monitor} can check that no cross-shard commit lands inside
    a partitioned phase.

    Crash semantics: single-shard transactions keep the engine's
    per-shard atomicity (the single-packet epoch fence), and a lost
    shard primary recovers from its own mirror set exactly as an
    unsharded engine does ({!recover_replicated} + {!Shard.replace}).
    Cross-shard transactions are atomic under the fence discipline in
    failure-free phases; a crash {e during} a single-master phase can
    commit one shard's half without the other — the documented STAR
    trade against 2PC's blocking and per-transaction round trips. *)

module Shard : sig
  type t

  type shard_stats = {
    per_shard : int array;  (** Single-shard commits routed per shard. *)
    cross_committed : int;
    cross_conflicts : int;
        (** Drain attempts bounced off a still-open single-shard
            transaction's declaration; the cross transaction stays
            queued for the next drain. *)
    backlog : int;  (** Cross-shard transactions still queued. *)
    switches : int;  (** Single-master phases entered. *)
    phase_epoch : int;
  }

  val create : ?strategy:Cluster.Shard_map.strategy -> ?interval:Sim.Time.t -> ?master:int -> db array -> t
  (** One engine per shard, each expected to run on its own cluster
      (own clock, own mirror set).  [strategy] defaults to hash
      routing, [interval] to {!Cluster.Phase.create}'s default, and
      [master] (the shard that runs single-master phases) to 0. *)

  val shards : t -> int
  val db : t -> int -> db

  val replace : t -> shard:int -> db -> unit
  (** Swap a recovered engine in after shard failover. *)

  val owner : t -> key:int -> int
  val map : t -> Cluster.Shard_map.t
  val phase : t -> Cluster.Phase.t
  val master : t -> int
  val backlog : t -> int
  val epochs : t -> int64 array
  (** Per-shard owner epochs (each shard's commit-fence epoch). *)

  val now : t -> Sim.Time.t
  (** Cluster time: the frontier (max) across shard clocks. *)

  val fence : t -> unit
  (** Flush every shard's group-commit convoy and synchronize every
      shard clock to the frontier. *)

  val submit : t -> key:int -> (db -> txn -> unit) -> int
  (** Route a single-shard transaction to [key]'s owner and commit it
      there: begin, run the body (which declares with {!set_range} and
      writes), commit.  Returns the owner shard.  Also ticks the phase
      controller first, so a due single-master drain runs before the
      transaction. *)

  val submit_cross : t -> shards:int list -> ((int -> db * txn) -> unit) -> int
  (** Queue a cross-shard transaction for the next single-master phase
      and return its xid.  At drain time the body runs with an accessor
      that opens (on first use) and returns the sub-transaction on each
      involved shard; the router then commits the sub-transactions in
      shard order.  Raises [Invalid_argument] on an empty or
      out-of-range shard list, and the body's accessor raises if asked
      for an undeclared shard. *)

  val drain : t -> int
  (** Force a single-master phase now (no-op on an empty backlog):
      fence, run the backlog serially, fence, switch back.  Returns the
      number of cross-shard transactions committed; conflicted ones
      remain queued. *)

  val tick : t -> unit
  (** Run {!drain} iff the phase controller says one is due
      ({!Cluster.Phase.due}). *)

  val stats : t -> shard_stats

  val set_telemetry : t -> Trace.Timeseries.t -> unit
  (** Sample-time gauges: [cluster.backlog], [cluster.phase] (0 =
      partitioned, 1 = single-master), [cluster.cross_committed],
      [cluster.switches], and per shard [shardN.committed],
      [shardN.epoch], [shardN.live_mirrors]. *)
end
