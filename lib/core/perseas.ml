open Sim
module Txn_intf = Txn_intf
module Layout = Layout
module Iset = Iset
module Node = Cluster.Node
module Client = Netram.Client
module Remote_segment = Netram.Remote_segment
module Imap = Map.Make (Int)

let src = Logs.Src.create "perseas" ~doc:"PERSEAS transaction library"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  undo_capacity : int;
  max_segments : int;
  strict_updates : bool;
  optimized_memcpy : bool;
  redundancy_elision : bool;
  namespace : string;
  dirty_log_limit : int;
  group_commit : int;
      (* commits per shared flush; 1 = eager per-commit propagation
         (the single-txn-era behaviour, byte-identical to it) *)
  retired_limit : int;
      (* max retired-epoch entries kept; beyond it the oldest retiree
         is evicted (it falls back to a full resync on return) *)
}

let default_config =
  {
    undo_capacity = (1024 * 1024) + (64 * 1024);
    max_segments = 64;
    strict_updates = true;
    optimized_memcpy = true;
    redundancy_elision = true;
    namespace = Layout.default_namespace;
    dirty_log_limit = 4096;
    group_commit = 1;
    retired_limit = 64;
  }

exception Undo_overflow
exception All_mirrors_lost
exception Conflict of { younger : int; older : int }
exception Double_begin of string

type mirror = {
  m_client : Client.t;
  mutable m_meta : Remote_segment.t;
  mutable m_undo : Remote_segment.t;
  mutable m_alive : bool;
}

type segment = {
  seg_name : string;
  index : int;
  size : int;
  mutable local : Mem.Segment.t;
  mutable remotes : Remote_segment.t array; (* parallel to t.mirrors *)
  mutable last_mod : int64;
      (* epoch of the last commit that touched this segment; written
         into the remote metadata table only while a checkpoint target
         is attached (so checkpoints-off metas stay byte-identical) *)
}

type stats = {
  begun : int;
  committed : int;
  aborts : int;
  set_ranges : int;
  undo_bytes_logged : int;
  elided_undo_bytes : int;
  undo_hwm_bytes : int;
  coalesced_ranges : int;
  commit_bytes_saved : int;
  local_copy_bytes : int;
  mirrors_lost : int;
  mirrors_recruited : int;
  resync_bytes : int;
  degraded_us : int;
  conflicts : int;
  group_flushes : int;
  group_commit_txns : int;
  checkpoints_taken : int;
  checkpoint_bytes : int;
  log_truncated_bytes : int;
}

type resync_mode = Full | Incremental
type resync_report = { mode : resync_mode; bytes_copied : int; full_bytes : int }

(* One committed (or conservatively, rolled-back) range: the epoch tag
   is the epoch value from which a mirror must have confirmed to NOT
   need this range re-copied.  Entries are kept newest-first and their
   tags never decrease along the list. *)
type dirty_range = { d_epoch : int64; d_seg : int; d_off : int; d_len : int }

(* Where fuzzy checkpoints go: a remote server's RAM (two alternating
   slot exports plus a directory word) or a disk device (same layout,
   slots at fixed offsets past the directory block). *)
type checkpoint_source = Ram_source of Netram.Server.t | Disk_source of Disk.Device.t

type ckpt_target =
  | Ram_target of {
      c_client : Client.t;
      c_dir : Remote_segment.t;
      c_slots : Remote_segment.t array; (* the two alternating slots *)
      c_scratch : Mem.Segment.t; (* local staging for slot headers and fence words *)
    }
  | Disk_target of Disk.Device.t

(* An in-progress fuzzy checkpoint: segment images stream to the slot
   between commits; [p_started_epoch] bounds the dirty ranges that must
   be re-shipped at finalize time. *)
type ckpt_progress = {
  p_gen : int64;
  p_slot : int;
  p_started_epoch : int64;
  mutable p_shipped : int; (* bytes of the segment concatenation shipped so far *)
  p_total : int;
}

type t = {
  config : config;
  cluster : Cluster.t;
  local_id : int;
  mutable mirrors : mirror array;
  mutable segs : segment list; (* creation order, reversed *)
  mutable meta_local : Mem.Segment.t;
  mutable undo_local : Mem.Segment.t;
  mutable epoch : int64;
  mutable ready : bool;
  mutable open_txns : txn list; (* newest first *)
  mutable staged : txn list; (* group-commit queue, commit order *)
  mutable next_txn_id : int;
  mutable undo_tail : int; (* shared undo log tail, all transactions *)
  mutable flushing : bool; (* a group flush is propagating right now *)
  mutable convoy_seq : int;
      (* Serial number for group-commit convoys, carried as a causal
         tag on their packets.  Trace metadata only: never read by the
         protocol, so on/off runs stay byte-identical. *)
  mutable hook : (unit -> unit) option;
  mutable sink : Trace.Sink.t;
      (* Pure observer: span emission reads the clock but never
         advances it, so sink on/off runs are byte-identical. *)
  mutable tel : Trace.Timeseries.t;
      (* Gauge layer, same observer contract as the sink. *)
  mutable g_undo_tail : Trace.Gauge.t;
  mutable g_group_size : Trace.Gauge.t;
  mutable repl_target : int;
      (* Mirror count below which the database counts as degraded; the
         supervisor aligns this with its own target. *)
  mutable degraded_since : Time.t option;
  mutable st_degraded : Time.t; (* closed degraded windows, summed *)
  retired : (int, int64) Hashtbl.t;
      (* node id -> last epoch confirmed on that ex-mirror, the basis
         for incremental resync when the node's server comes back *)
  mutable dirty : dirty_range list; (* newest first, tags nondecreasing *)
  mutable dirty_count : int;
  mutable dirty_floor : int64;
      (* the log is complete for resyncs "since e" iff e >= dirty_floor *)
  mutable ckpt_target : ckpt_target option;
  mutable ckpt_inflight : ckpt_progress option;
  mutable ckpt_gen : int64; (* newest published generation; 0 = none *)
  mutable ckpt_summary : Iset.t Imap.t;
      (* per-segment union of the dirty entries truncated at the last
         cut: [ranges_since] unions it in whenever the requested base
         predates the truncation, keeping the dirty log complete for
         incremental resync even after checkpoints empty it *)
  mutable ckpt_summary_upto : int64; (* entries tagged <= this live in the summary *)
  mutable st_ckpts : int;
  mutable st_ckpt_bytes : int;
  mutable st_log_truncated : int;
  mutable st_begun : int;
  mutable st_committed : int;
  mutable st_aborted : int;
  mutable st_set_ranges : int;
  mutable st_undo_bytes : int;
  mutable st_elided_bytes : int;
  mutable st_undo_hwm : int;
  mutable st_coalesced_ranges : int;
  mutable st_commit_saved : int;
  mutable st_local_copy_bytes : int;
  mutable st_mirrors_lost : int;
  mutable st_mirrors_recruited : int;
  mutable st_resync_bytes : int;
  mutable st_conflicts : int;
  mutable st_group_flushes : int;
  mutable st_group_txns : int;
}

and range = {
  r_seg : segment;
  r_off : int;
  r_len : int;
  mutable staging_off : int; (* payload offset in undo staging; compaction moves it *)
  mutable r_tag : int64; (* epoch currently written in the record header *)
}

and txn_state =
  | Open
  | Staged (* committed, waiting in the group-commit queue *)
  | Doomed (* lost a conflict to a younger declarer; rolled back, Conflict pending *)
  | Closed

and txn = {
  owner : t;
  t_id : int; (* begin order: smaller = older, the conflict-policy age *)
  t_client : string;
  mutable ranges : range list; (* logged undo fragments, newest first *)
  mutable wset : Iset.t Imap.t; (* write-set index: coalesced declared ranges per segment *)
  mutable declared : int; (* set_range calls this transaction, pre-coalescing *)
  mutable declared_bytes : int;
  mutable state : txn_state;
  mutable doomed_by : int; (* id of the older txn whose declaration doomed this one *)
}

type mirror_info = { node_id : int; alive : bool }

(* Small fixed bookkeeping costs of the user-level library calls. *)
let t_begin = Time.us 0.1
let t_set_range = Time.us 0.05
let t_commit = Time.us 0.2

let clock t = Cluster.clock t.cluster
let local_node t = Cluster.node t.cluster t.local_id
let local_dram t = Node.dram (local_node t)
let params t = Sci.Nic.params (Cluster.nic t.cluster)

let charge_local_copy t len =
  Clock.advance (clock t) (Sci.Model.local_copy (params t) len);
  t.st_local_copy_bytes <- t.st_local_copy_bytes + len

(* Wiring one sink here also attaches it to the cluster's NIC, so a
   single call traces the whole stack: transaction phases from this
   module, per-packet events from {!Sci.Nic}, rpc events from
   {!Netram.Client}. *)
let set_sink t sink =
  t.sink <- sink;
  Sci.Nic.set_sink (Cluster.nic t.cluster) sink

let sink t = t.sink

(* Record [f]'s virtual-time extent as one span.  The span is emitted
   even when [f] raises (mirror loss mid-phase) so per-phase sums still
   equal end-to-end latency on failure paths. *)
let traced t ?(cat = "txn") ?args ~name f =
  if not (Trace.Sink.enabled t.sink) then f ()
  else begin
    let start = Clock.now (clock t) in
    match f () with
    | r ->
        Trace.Sink.span ?args t.sink ~cat ~name ~start ~stop:(Clock.now (clock t));
        r
    | exception e ->
        Trace.Sink.span ?args t.sink ~cat ~name ~start ~stop:(Clock.now (clock t));
        raise e
  end

(* Bracket [f] with causal-context tags on the cluster NIC: every
   packet instant emitted inside [f] then carries the operation /
   transaction / convoy / destination-node identity, which is what
   {!Trace.Causal} stitches cross-node timelines from and what
   {!Trace.Monitor} checks protocol ordering against.  The tag list is
   built lazily and only while the sink is live, so with tracing off
   this is the usual single branch; the tags are trace metadata the
   transfer machinery never reads, preserving byte-identity. *)
let with_ctx t args f =
  if not (Trace.Sink.enabled t.sink) then f ()
  else begin
    let nic = Cluster.nic t.cluster in
    let saved = Sci.Nic.ctx nic in
    Sci.Nic.set_ctx nic (args ());
    Fun.protect ~finally:(fun () -> Sci.Nic.set_ctx nic saved) f
  end

let alloc_local t ?(align = 64) size what =
  match Mem.Allocator.alloc (Node.allocator (local_node t)) ~align size with
  | Some seg -> seg
  | None -> failwith (Printf.sprintf "Perseas: out of local memory for %s (%d bytes)" what size)

let meta_size t = Layout.meta_size ~max_segments:t.config.max_segments

(* ------------------------------------------------------------------ *)
(* Mirror-set plumbing                                                  *)

let live_mirror_list t =
  Array.to_list t.mirrors |> List.filter (fun m -> m.m_alive)

let live_mirrors t =
  List.map (fun m -> Node.id (Client.server m.m_client |> Netram.Server.node)) (live_mirror_list t)

let mirrors t =
  Array.to_list t.mirrors
  |> List.map (fun m ->
         { node_id = Node.id (Netram.Server.node (Client.server m.m_client)); alive = m.m_alive })

let mirror_count t = List.length (live_mirror_list t)

let mirror_node_id m = Node.id (Netram.Server.node (Client.server m.m_client))

(* Degraded-time accounting: a window opens when the live-mirror count
   falls below [repl_target] and closes when it recovers.  Pure
   bookkeeping on clock reads — never advances the clock. *)
let note_replication t =
  let now = Clock.now (clock t) in
  if mirror_count t < t.repl_target then begin
    if t.degraded_since = None then t.degraded_since <- Some now
  end
  else
    match t.degraded_since with
    | Some since ->
        t.st_degraded <- t.st_degraded + (now - since);
        t.degraded_since <- None
    | None -> ()

let degraded_total t =
  t.st_degraded
  + (match t.degraded_since with Some since -> Clock.now (clock t) - since | None -> Time.zero)

let set_replication_target t n =
  if n <= 0 then invalid_arg "Perseas.set_replication_target: target must be positive";
  t.repl_target <- n;
  note_replication t

let replication_target t = t.repl_target

(* Like set_sink, one call wires the whole stack: the cluster NIC's
   packet/burst gauges plus this module's sample-time probe.  Gauges
   observe; they never advance the clock or touch the packet stream. *)
let set_telemetry t tel =
  t.tel <- tel;
  Sci.Nic.set_telemetry (Cluster.nic t.cluster) tel;
  t.g_undo_tail <- Trace.Timeseries.gauge tel "perseas.undo_tail";
  t.g_group_size <- Trace.Timeseries.gauge tel "perseas.group_commit_size";
  Trace.Timeseries.on_sample tel (fun _at ->
      Trace.Timeseries.set tel "perseas.epoch" (Int64.to_int t.epoch);
      Trace.Timeseries.set tel "perseas.live_mirrors" (mirror_count t);
      Trace.Timeseries.set tel "perseas.open_txns" (List.length t.open_txns);
      Trace.Timeseries.set tel "perseas.staged_txns" (List.length t.staged);
      Trace.Timeseries.set tel "perseas.conflicts" t.st_conflicts;
      Trace.Timeseries.set tel "perseas.group_flushes" t.st_group_flushes;
      Trace.Timeseries.set tel "perseas.dirty_log" t.dirty_count;
      Trace.Timeseries.set tel "perseas.undo_hwm_bytes" t.st_undo_hwm;
      Trace.Timeseries.set tel "perseas.checkpoints_taken" t.st_ckpts;
      Trace.Timeseries.set tel "perseas.checkpoint_bytes" t.st_ckpt_bytes;
      Trace.Timeseries.set tel "perseas.log_truncated_bytes" t.st_log_truncated;
      Trace.Timeseries.set tel "perseas.retired_entries" (Hashtbl.length t.retired);
      Trace.Timeseries.set tel "perseas.elided_undo_bytes" t.st_elided_bytes;
      Trace.Timeseries.set tel "perseas.coalesced_ranges" t.st_coalesced_ranges;
      Trace.Timeseries.set tel "perseas.commit_bytes_saved" t.st_commit_saved;
      Trace.Timeseries.set tel "perseas.committed" t.st_committed;
      Trace.Timeseries.set tel "perseas.aborts" t.st_aborted;
      Trace.Timeseries.set tel "perseas.mirrors_lost" t.st_mirrors_lost;
      Trace.Timeseries.set tel "perseas.resync_bytes" t.st_resync_bytes;
      Trace.Timeseries.set tel "perseas.degraded_us" (Time.to_ns (degraded_total t) / 1000))

let telemetry t = t.tel

(* Retire a mirror from the live set, remembering the last epoch it is
   known to have fully confirmed (t.epoch: the epoch counter only
   advances after every mirror acknowledged the commit point, so at the
   instant of a drop it is exactly the victim's last sound state).  A
   later [recruit_mirror] of the same server uses this as the
   incremental-resync base. *)
let retire_mirror t m =
  m.m_alive <- false;
  Hashtbl.replace t.retired (mirror_node_id m) t.epoch;
  (* The table is bounded: churn used to grow it one entry per lost
     mirror forever.  Past the limit the entry with the lowest epoch is
     evicted — its owner was gone longest, so it loses the least if it
     has to take a full resync on return. *)
  while Hashtbl.length t.retired > t.config.retired_limit do
    let victim =
      Hashtbl.fold
        (fun id e acc ->
          match acc with Some (_, be) when be <= e -> acc | _ -> Some (id, e))
        t.retired None
    in
    match victim with Some (id, _) -> Hashtbl.remove t.retired id | None -> ()
  done;
  note_replication t

let retired_count t = Hashtbl.length t.retired

(* A mirror that fails during a remote operation is dropped from the
   set (degraded mode); when the last one goes, the library refuses to
   continue — committing without any mirror would silently forfeit
   recoverability.  Only liveness errors ({!Client.Unreachable}: node
   down or rebooted) are degraded-mode events; anything else — bounds
   violations, stale protocol state — is a bug and propagates. *)
let drop_mirror t m msg =
  retire_mirror t m;
  t.st_mirrors_lost <- t.st_mirrors_lost + 1;
  (* Tell the stream a transfer to this node may have been cut short:
     the protocol monitor uses this to close the node's open commit
     unit instead of flagging the interruption as a violation. *)
  if Trace.Sink.enabled t.sink then
    Trace.Sink.instant t.sink ~cat:"mirror" ~name:"dropped" ~at:(Clock.now (clock t))
      ~args:[ ("node", string_of_int (mirror_node_id m)) ];
  Log.warn (fun k ->
      k "mirror on node %d lost (%s); continuing degraded with %d mirror(s)" (mirror_node_id m)
        msg (mirror_count t))

let with_mirror t m f =
  if not m.m_alive then None
  else
    try Some (f ())
    with Client.Unreachable msg ->
      drop_mirror t m msg;
      None

let each_live_mirror t f =
  Array.iteri (fun i m -> if m.m_alive then ignore (with_mirror t m (fun () -> f i m))) t.mirrors;
  if mirror_count t = 0 then raise All_mirrors_lost

(* ------------------------------------------------------------------ *)
(* Initialisation                                                       *)

let fresh_mirror client ~config =
  let meta_bytes = Layout.meta_size ~max_segments:config.max_segments in
  {
    m_client = client;
    m_meta = Client.malloc client ~name:(Layout.meta_name ~ns:config.namespace) ~size:meta_bytes;
    m_undo = Client.malloc client ~name:(Layout.undo_name ~ns:config.namespace) ~size:config.undo_capacity;
    m_alive = true;
  }

let init_replicated ?(config = default_config) clients =
  if clients = [] then invalid_arg "Perseas.init_replicated: at least one mirror required";
  if config.undo_capacity < 4096 then invalid_arg "Perseas.init: undo_capacity too small";
  if config.max_segments <= 0 then invalid_arg "Perseas.init: max_segments must be positive";
  if config.group_commit < 1 then invalid_arg "Perseas.init: group_commit must be >= 1";
  if config.retired_limit < 1 then invalid_arg "Perseas.init: retired_limit must be >= 1";
  if not (Layout.valid_namespace config.namespace) then invalid_arg "Perseas.init: invalid namespace";
  let first = List.hd clients in
  let cluster = Client.cluster first in
  let local_id = Node.id (Client.local_node first) in
  List.iter
    (fun c ->
      if Client.cluster c != cluster then invalid_arg "Perseas.init: clients span different clusters";
      if Node.id (Client.local_node c) <> local_id then
        invalid_arg "Perseas.init: clients must share the local node")
    clients;
  let server_ids = List.map (fun c -> Node.id (Netram.Server.node (Client.server c))) clients in
  if List.length (List.sort_uniq compare server_ids) <> List.length server_ids then
    invalid_arg "Perseas.init: duplicate mirror nodes";
  let mirrors = Array.of_list (List.map (fun c -> fresh_mirror c ~config) clients) in
  let t =
    {
      config;
      cluster;
      local_id;
      mirrors;
      segs = [];
      meta_local = Mem.Segment.v ~base:0 ~len:1 (* placeholder, set below *);
      undo_local = Mem.Segment.v ~base:0 ~len:1;
      epoch = 0L;
      ready = false;
      open_txns = [];
      staged = [];
      next_txn_id = 1;
      undo_tail = 0;
      flushing = false;
      convoy_seq = 0;
      hook = None;
      sink = Trace.Sink.noop;
      tel = Trace.Timeseries.noop;
      g_undo_tail = Trace.Timeseries.gauge Trace.Timeseries.noop "";
      g_group_size = Trace.Timeseries.gauge Trace.Timeseries.noop "";
      repl_target = List.length clients;
      degraded_since = None;
      st_degraded = Time.zero;
      retired = Hashtbl.create 8;
      dirty = [];
      dirty_count = 0;
      dirty_floor = 1L;
      ckpt_target = None;
      ckpt_inflight = None;
      ckpt_gen = 0L;
      ckpt_summary = Imap.empty;
      ckpt_summary_upto = 0L;
      st_ckpts = 0;
      st_ckpt_bytes = 0;
      st_log_truncated = 0;
      st_begun = 0;
      st_committed = 0;
      st_aborted = 0;
      st_set_ranges = 0;
      st_undo_bytes = 0;
      st_elided_bytes = 0;
      st_undo_hwm = 0;
      st_coalesced_ranges = 0;
      st_commit_saved = 0;
      st_local_copy_bytes = 0;
      st_mirrors_lost = 0;
      st_mirrors_recruited = 0;
      st_resync_bytes = 0;
      st_conflicts = 0;
      st_group_flushes = 0;
      st_group_txns = 0;
    }
  in
  t.meta_local <- alloc_local t (meta_size t) "metadata staging";
  t.undo_local <- alloc_local t config.undo_capacity "undo log";
  t

let init ?config client = init_replicated ?config [ client ]

let client t = (Array.get t.mirrors 0).m_client
let config t = t.config
let cluster t = t.cluster
let remote_ready t = t.ready
let epoch t = t.epoch
let segments t = List.rev t.segs
let segment t name = List.find_opt (fun s -> s.seg_name = name) t.segs
let segment_name s = s.seg_name
let segment_size s = s.size

let malloc t ~name ~size =
  if t.ready then failwith "Perseas.malloc: database already initialised";
  if size <= 0 then invalid_arg "Perseas.malloc: size must be positive";
  if List.length t.segs >= t.config.max_segments then failwith "Perseas.malloc: too many segments";
  if segment t name <> None then failwith (Printf.sprintf "Perseas.malloc: segment %S exists" name);
  let export_name = Layout.db_export_name ~ns:t.config.namespace name in
  let local = alloc_local t size (Printf.sprintf "segment %S" name) in
  let remotes =
    Array.map (fun m -> Client.malloc m.m_client ~name:export_name ~size) t.mirrors
  in
  let seg = { seg_name = name; index = List.length t.segs; size; local; remotes; last_mod = 0L } in
  t.segs <- seg :: t.segs;
  seg

(* Run a transfer plan packet by packet, giving the fault-injection
   hook a chance to "crash the node" before each packet goes out. *)
let run_plan t plan =
  List.iter
    (fun step ->
      (match t.hook with Some f -> f () | None -> ());
      Sci.Nic.apply_step (Cluster.nic t.cluster) step)
    (Sci.Nic.plan_steps plan)

(* Per-segment modification epochs are maintained locally for free but
   written into the remote metadata only while a checkpoint target is
   attached: with tracking off the table's epoch column and the
   [ckpt_live] word stay zero, keeping every meta byte identical to the
   pre-checkpoint engine. *)
let tracking t = t.ckpt_target <> None

let write_meta_staging t =
  let image = local_dram t in
  let b = Bytes.make (meta_size t) '\000' in
  Layout.write_meta_magic b;
  Layout.write_epoch b t.epoch;
  Layout.write_nsegs b (List.length t.segs);
  if tracking t then Layout.write_ckpt_live b true;
  List.iter
    (fun s ->
      let last_mod = if tracking t then s.last_mod else 0L in
      Layout.write_table_entry ~last_mod b ~index:s.index ~name:s.seg_name ~size:s.size)
    t.segs;
  Mem.Image.write_bytes image ~off:(Mem.Segment.base t.meta_local) b

let push_meta_to t m =
  run_plan t
    (Client.plan_write m.m_client ~widen:t.config.optimized_memcpy m.m_meta ~seg_off:0
       ~src_off:(Mem.Segment.base t.meta_local) ~len:(meta_size t))

let push_meta t =
  write_meta_staging t;
  each_live_mirror t (fun _ m ->
      with_ctx t
        (fun () -> [ ("op", "push_meta"); ("node", string_of_int (mirror_node_id m)) ])
        (fun () -> push_meta_to t m))

let push_segment_to t m seg handle =
  run_plan t
    (Client.plan_write m.m_client ~widen:t.config.optimized_memcpy handle ~seg_off:0
       ~src_off:(Mem.Segment.base seg.local) ~len:seg.size)

let push_segment t seg =
  each_live_mirror t (fun i m -> push_segment_to t m seg seg.remotes.(i))

let init_remote_db t =
  if t.ready then failwith "Perseas.init_remote_db: already initialised";
  List.iter (push_segment t) t.segs;
  t.epoch <- 1L;
  push_meta t;
  t.ready <- true

(* The commit point: remotely overwrite the 8-byte epoch word on every
   mirror.  Each store is one SCI packet (atomic); mirrors whose epoch
   write was cut short by a crash are reconciled by recovery, which
   trusts the highest epoch among the survivors. *)
let stage_epoch t new_epoch =
  Mem.Image.write_u64 (local_dram t) (Mem.Segment.base t.meta_local + Layout.epoch_offset) new_epoch

let plan_epoch_write t m =
  Client.plan_write m.m_client m.m_meta ~seg_off:Layout.epoch_offset
    ~src_off:(Mem.Segment.base t.meta_local + Layout.epoch_offset)
    ~len:8

(* Segment-epoch column maintenance (tracking mode only).  Each touched
   segment's last-modification epoch is staged locally and pushed to
   every mirror's metadata as one 8-byte store per segment, BEFORE the
   commit fence: a crash between the column update and the fence leaves
   the column ahead of the committed epoch, which recovery reads as
   "modified after any cut" — a conservative mirror refetch, never a
   stale checkpoint adoption. *)
let seg_epoch_src t ~index = Mem.Segment.base t.meta_local + Layout.table_epoch_off ~index

let stage_seg_epochs t e segs =
  let image = local_dram t in
  List.iter
    (fun seg ->
      seg.last_mod <- e;
      Mem.Image.write_u64 image (seg_epoch_src t ~index:seg.index) e)
    segs

let plan_seg_epoch_write t m seg =
  Client.plan_write m.m_client m.m_meta
    ~seg_off:(Layout.table_epoch_off ~index:seg.index)
    ~src_off:(seg_epoch_src t ~index:seg.index) ~len:8

let touched_segs t wset =
  List.rev (Imap.fold (fun index _ acc -> List.find (fun s -> s.index = index) t.segs :: acc) wset [])

let batch_touched t batch =
  let merged =
    List.fold_left
      (fun acc txn -> Imap.union (fun _ a b -> Some (Iset.union a b)) acc txn.wset)
      Imap.empty batch
  in
  touched_segs t merged

let begin_transaction ?(client = "default") t =
  if not t.ready then failwith "Perseas.begin_transaction: call init_remote_db first";
  if t.flushing then failwith "Perseas.begin_transaction: commit propagation in flight";
  (* Double-begin from one client is a typed error; concurrent begins
     from distinct clients are legal.  A client whose previous
     transaction is merely Staged (committed, queued for the next
     flush) may begin its next one — that pipelining is the point. *)
  (match List.find_opt (fun x -> x.t_client = client) t.open_txns with
  | Some _ -> raise (Double_begin client)
  | None -> ());
  traced t ~name:"begin" ~args:[ ("client", client) ] (fun () -> Clock.advance (clock t) t_begin);
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  let txn =
    {
      owner = t;
      t_id = id;
      t_client = client;
      ranges = [];
      wset = Imap.empty;
      declared = 0;
      declared_bytes = 0;
      state = Open;
      doomed_by = id;
    }
  in
  t.open_txns <- txn :: t.open_txns;
  t.st_begun <- t.st_begun + 1;
  txn

(* [Doomed] surfaces as the typed [Conflict] the loser would have seen
   had it been the declarer: the rollback already happened at doom
   time, so surfacing only closes the handle. *)
let check_open txn op =
  match txn.state with
  | Open -> ()
  | Doomed ->
      txn.state <- Closed;
      raise (Conflict { younger = txn.t_id; older = txn.doomed_by })
  | Staged -> failwith (Printf.sprintf "Perseas.%s: transaction already committed (staged)" op)
  | Closed -> failwith (Printf.sprintf "Perseas.%s: transaction is closed" op)

let check_seg_range seg ~off ~len op =
  if off < 0 || len < 0 || off + len > seg.size then
    invalid_arg
      (Printf.sprintf "Perseas.%s: [%d,+%d) outside segment %S of %d bytes" op off len seg.seg_name
         seg.size)

(* Closing the last in-flight transaction quiesces the shared undo log:
   the tail rewinds to 0 exactly when nothing live references it, which
   in sequential use is after every transaction — the single-txn-era
   behaviour, byte for byte. *)
let close txn =
  let t = txn.owner in
  txn.state <- Closed;
  t.open_txns <- List.filter (fun x -> x != txn) t.open_txns;
  t.staged <- List.filter (fun x -> x != txn) t.staged;
  if t.open_txns = [] && t.staged = [] then begin
    t.undo_tail <- 0;
    Trace.Gauge.set t.g_undo_tail 0
  end

(* The transaction's write-set index: one interval set per touched
   segment, keyed by segment index.  Maintained for every transaction
   regardless of [redundancy_elision] — [covered] and the dirty-log
   compaction read it — while elision additionally consults it to skip
   redundant undo logging and to coalesce commit propagation. *)
let txn_iset txn seg =
  match Imap.find_opt seg.index txn.wset with Some s -> s | None -> Iset.empty

(* The write-set as coalesced [(seg_index, off, len)] runs — what the
   dirty log records for this transaction.  Exact bytes (no packet
   snapping): the dirty log feeds incremental resync, which widens at
   the NIC layer anyway. *)
let dirty_runs txn =
  List.rev
    (Imap.fold
       (fun index iset acc ->
         List.fold_left (fun acc (off, len) -> (index, off, len) :: acc) acc (Iset.intervals iset))
       txn.wset [])

(* Record coalesced [(seg_index, off, len)] runs in the dirty log so an
   ex-mirror can later be resynced incrementally.  [tag] is the lowest
   epoch whose confirmation implies a mirror already holds these bytes;
   entries are kept newest-first and tags never decrease toward the
   head.  The log is bounded: on overflow the oldest entries are
   dropped and [dirty_floor] rises to the largest dropped tag,
   shrinking the window in which incremental resync is possible (older
   returners get a full copy instead). *)
let note_dirty t ~tag runs =
  List.iter
    (fun (seg_index, off, len) ->
      t.dirty <- { d_epoch = tag; d_seg = seg_index; d_off = off; d_len = len } :: t.dirty;
      t.dirty_count <- t.dirty_count + 1)
    runs;
  let limit = t.config.dirty_log_limit in
  if t.dirty_count > limit then begin
    let rec take n = function
      | d :: rest when n > 0 ->
          let kept, floor = take (n - 1) rest in
          (d :: kept, floor)
      | d :: _ -> ([], d.d_epoch)
      | [] -> ([], t.dirty_floor)
    in
    let kept, floor = take limit t.dirty in
    t.dirty <- kept;
    t.dirty_count <- limit;
    if floor > t.dirty_floor then t.dirty_floor <- floor
  end

(* Restore every declared range from the local undo log, newest first
   (local memory copies only). *)
let rollback_local txn =
  let t = txn.owner in
  let image = local_dram t in
  List.iter
    (fun r ->
      Mem.Image.blit ~src:image ~src_off:(Mem.Segment.base t.undo_local + r.staging_off)
        ~dst:image ~dst_off:(Mem.Segment.base r.r_seg.local + r.r_off) ~len:r.r_len;
      charge_local_copy t r.r_len)
    txn.ranges;
  (* A mirror dropped mid-operation may hold partial writes from this
     transaction even though it rolled back locally: conservatively
     mark the ranges dirty at the epoch the next commit will stamp so
     an incremental resync of that mirror re-copies them. *)
  note_dirty t ~tag:(Int64.add t.epoch 1L) (dirty_runs txn)

(* Losing the last mirror mid-operation must not wedge the library:
   roll the local image back to the pre-transaction state, close the
   transaction, and only then let All_mirrors_lost reach the caller —
   begin_transaction / attach_mirror work again immediately. *)
let guard_mirror_loss txn f =
  try f ()
  with All_mirrors_lost ->
    let t = txn.owner in
    traced t ~name:"abort" ~args:[ ("reason", "all_mirrors_lost") ] (fun () -> rollback_local txn);
    t.st_aborted <- t.st_aborted + 1;
    close txn;
    Log.warn (fun k ->
        k "all mirrors lost mid-%s: transaction rolled back locally; attach a fresh mirror"
          (if txn.ranges = [] then "operation" else "transaction"));
    raise All_mirrors_lost

(* Undo-slot stride for this engine.  Eager mode keeps the seed's
   64-byte-aligned slots: each record travels to the remote logs on its
   own, so starting every push on an SCI line is what keeps large
   records streaming as Full64 packets.  Group mode packs slots on the
   32-byte stride instead: the batch travels as one coalesced chain per
   flush, re-packed from remote offset 0, where only total chain bytes
   matter and the eager stride's padding would be pure wire cost.  The
   local log, the shipped chain and the recovery walker must all agree
   on the stride; they do because it is a pure function of
   [config.group_commit] and recovery receives the engine's config. *)
let undo_slot_of t =
  if t.config.group_commit <= 1 then Layout.undo_slot else Layout.undo_slot_packed

(* Append one undo record — the before-image of [seg[off, off+len)] —
   to the local log and push it to every remote log (Figure 3, steps 1
   and 2).  The caller has already reserved the log space. *)
let log_undo_record txn seg ~off ~len =
  let t = txn.owner in
  let record_len = Layout.undo_header_size + len in
  let image = local_dram t in
  let slot = t.undo_tail in
  traced t ~name:"local_undo" (fun () ->
      let payload = Mem.Image.read_bytes image ~off:(Mem.Segment.base seg.local + off) ~len in
      let record =
        Layout.encode_undo { Layout.epoch = t.epoch; seg_index = seg.index; off; len } ~payload
      in
      Mem.Image.write_bytes image ~off:(Mem.Segment.base t.undo_local + slot) record;
      charge_local_copy t record_len);
  (* Eager mode pipelines each record to the remote logs as it is cut
     (Figure 3, step 2).  Group mode defers: the whole live log ships
     as one convoy per mirror at flush time, so full packets and the
     burst startup amortise across the batch. *)
  if t.config.group_commit <= 1 then
    guard_mirror_loss txn (fun () ->
        each_live_mirror t (fun i m ->
            traced t ~name:"remote_undo" ~args:[ ("mirror", string_of_int i) ] (fun () ->
                with_ctx t
                  (fun () ->
                    [
                      ("op", "remote_undo");
                      ("txn", string_of_int txn.t_id);
                      ("mirror", string_of_int i);
                      ("node", string_of_int (mirror_node_id m));
                    ])
                  (fun () ->
                    run_plan t
                      (Client.plan_write m.m_client ~widen:t.config.optimized_memcpy m.m_undo
                         ~seg_off:slot ~src_off:(Mem.Segment.base t.undo_local + slot)
                         ~len:record_len)))));
  txn.ranges <-
    { r_seg = seg; r_off = off; r_len = len; staging_off = slot + Layout.undo_header_size; r_tag = t.epoch }
    :: txn.ranges;
  t.undo_tail <- undo_slot_of t ~off:slot ~payload_len:len;
  if t.undo_tail > t.st_undo_hwm then t.st_undo_hwm <- t.undo_tail;
  t.st_undo_bytes <- t.st_undo_bytes + len

(* The propagation list for one commit: with elision, the write-set's
   maximal contiguous runs — adjacent and overlapping declarations
   merged — and, under [optimized_memcpy], runs whose 64-byte SCI line
   spans touch glued into one exact hull so they stream as a single
   fuller burst.  Shipping a hull's gap bytes is safe for the same
   reason the NIC-level widening is: bytes outside the written ranges
   are identical on both sides, and recovery's undo replay restores any
   early-propagated declared byte.  Without elision, the raw declared
   ranges, oldest first — the differential-testing oracle.  Built once
   per commit and shared by every mirror and by [commit_packets]'s dry
   run. *)
let commit_runs txn =
  let t = txn.owner in
  if not t.config.redundancy_elision then
    List.rev_map (fun r -> (r.r_seg, r.r_off, r.r_len)) txn.ranges
  else
    List.rev
      (Imap.fold
         (fun index iset acc ->
           let seg = List.find (fun s -> s.index = index) t.segs in
           let iset = if t.config.optimized_memcpy then Iset.glue iset ~align:64 else iset in
           List.fold_left (fun acc (off, len) -> (seg, off, len) :: acc) acc (Iset.intervals iset))
         txn.wset [])

let plans_for t runs i m =
  List.map
    (fun (seg, off, len) ->
      Client.plan_write m.m_client ~widen:t.config.optimized_memcpy seg.remotes.(i) ~seg_off:off
        ~src_off:(Mem.Segment.base seg.local + off) ~len)
    runs

(* Run [f] with [e] staged as the epoch word, restoring the previous
   staging afterwards (even on a crash or mirror loss mid-[f]).  Both
   [commit]'s fence and [commit_packets]'s dry run go through here, so
   the two cannot drift. *)
let with_staged_epoch t e f =
  let image = local_dram t in
  let addr = Mem.Segment.base t.meta_local + Layout.epoch_offset in
  let saved = Mem.Image.read_u64 image addr in
  stage_epoch t e;
  Fun.protect ~finally:(fun () -> Mem.Image.write_u64 image addr saved) f

(* ------------------------------------------------------------------ *)
(* Group commit                                                         *)

(* Rewrite a transaction's record headers so their epoch tag is
   [t.epoch] — the value recovery will read from the remote metadata
   before this flush's fence lands.  A local header rewrite only;
   records still to be pushed (group mode) ship the fresh tag with the
   convoy, already-pushed ones (eager mode after a concurrent epoch
   bump) are re-pushed by the caller. *)
let retag_records t txn =
  let image = local_dram t in
  List.iter
    (fun r ->
      if r.r_tag <> t.epoch then begin
        let slot = r.staging_off - Layout.undo_header_size in
        let payload =
          Mem.Image.read_bytes image ~off:(Mem.Segment.base t.undo_local + r.staging_off) ~len:r.r_len
        in
        let header =
          Layout.encode_undo_header
            { Layout.epoch = t.epoch; seg_index = r.r_seg.index; off = r.r_off; len = r.r_len }
            ~payload
        in
        Mem.Image.write_bytes image ~off:(Mem.Segment.base t.undo_local + slot) header;
        charge_local_copy t Layout.undo_header_size;
        r.r_tag <- t.epoch
      end)
    txn.ranges

(* The batch's records, shipped from their scattered local slots to a
   PACKED remote chain starting at offset 0 — where the recovery scan
   starts.  Convoy chunks carry independent source and destination
   offsets, so no local compaction (and no charged local copy) is
   needed: records adjacent in the local log coalesce into one chunk —
   a transaction's declarations are logged back-to-back, so chunks are
   few — and the remote chain is walked with the same packed slot
   arithmetic as the local one (all slot boundaries share the 32-byte
   stride, so a record's span is the same at both ends).  Open
   transactions' records stay local until their own flush: their data
   never travels before commit, so a crash needs no remote pre-image
   for them, and shipping them would make every flush pay for its
   bystanders, growing with offered concurrency. *)
let flush_undo_chunks batch =
  let recs =
    List.concat_map (fun txn -> txn.ranges) batch
    |> List.sort (fun a b -> compare a.staging_off b.staging_off)
  in
  let chunks = ref [] and cur = ref None and dst = ref 0 in
  List.iter
    (fun r ->
      let src_slot = r.staging_off - Layout.undo_header_size in
      let span = Layout.undo_slot_packed ~off:!dst ~payload_len:r.r_len - !dst in
      (match !cur with
      | Some (d0, s0, len) when s0 + len = src_slot -> cur := Some (d0, s0, len + span)
      | Some c ->
          chunks := c :: !chunks;
          cur := Some (!dst, src_slot, span)
      | None -> cur := Some (!dst, src_slot, span));
      dst := !dst + span)
    recs;
  (match !cur with Some c -> chunks := c :: !chunks | None -> ());
  List.rev !chunks

(* One merged convoy per mirror: the packed undo chain, then the
   batch's merged data runs, then the epoch fence as the convoy's last
   packet.  Packet order within a convoy is chunk order, so the
   protocol's ordering (pre-images durable before any data byte lands,
   fence strictly last) is preserved while the burst set-up and the
   Full64 stream warm-up are paid once per mirror instead of three
   times.  The fence chunk ships the staged epoch word, so the caller
   must run the plan under [with_staged_epoch]. *)
let flush_convoy_chunks t ~undo_chunks ~runs ~metasegs i m =
  List.map
    (fun (dst, src, len) ->
      ("undo", t.config.optimized_memcpy, m.m_undo, dst, Mem.Segment.base t.undo_local + src, len))
    undo_chunks
  @ List.map
      (fun (seg, off, len) ->
        ( "data",
          t.config.optimized_memcpy,
          seg.remotes.(i),
          off,
          Mem.Segment.base seg.local + off,
          len ))
      runs
  (* Tracking mode rides the batch's segment-epoch column updates in
     the same convoy, after the data and before the fence — the
     convoy stays one burst and the fence stays strictly last. *)
  @ List.map
      (fun seg ->
        ( "segmeta",
          false,
          m.m_meta,
          Layout.table_epoch_off ~index:seg.index,
          seg_epoch_src t ~index:seg.index,
          8 ))
      metasegs
  @ [
      ( "fence",
        false,
        m.m_meta,
        Layout.epoch_offset,
        Mem.Segment.base t.meta_local + Layout.epoch_offset,
        8 );
    ]

(* The batch's data propagation list: the per-segment union of every
   staged write-set, glued like a single commit's runs.  Batch members
   are line-disjoint by the conflict rules, so a cross-transaction hull
   never ships a byte an open transaction has dirtied. *)
let batch_data_runs t batch =
  let merged =
    List.fold_left
      (fun acc txn -> Imap.union (fun _ a b -> Some (Iset.union a b)) acc txn.wset)
      Imap.empty batch
  in
  List.rev
    (Imap.fold
       (fun index iset acc ->
         let seg = List.find (fun s -> s.index = index) t.segs in
         let iset = if t.config.optimized_memcpy then Iset.glue iset ~align:64 else iset in
         List.fold_left (fun acc (off, len) -> (seg, off, len) :: acc) acc (Iset.intervals iset))
       merged [])

(* Overflow relief: flushed transactions leave dead records interleaved
   with the open transactions' live ones, and the tail only resets when
   the engine quiesces.  Under sustained concurrency the log eventually
   fills with dead slots; sliding the survivors to the front (a local
   move — group mode has not pushed them yet) reclaims it.  Called from
   the [set_range] overflow path, not per flush: at ~one compaction per
   log's worth of commits the copies amortise to noise, where per-flush
   compaction would pay them on every batch. *)
let compact_log t =
  let image = local_dram t in
  let base = Mem.Segment.base t.undo_local in
  let live =
    List.concat_map (fun txn -> txn.ranges) t.open_txns
    |> List.sort (fun a b -> compare a.staging_off b.staging_off)
  in
  let tail = ref 0 in
  List.iter
    (fun r ->
      let src_slot = r.staging_off - Layout.undo_header_size in
      let record_len = Layout.undo_header_size + r.r_len in
      if src_slot <> !tail then begin
        Mem.Image.blit ~src:image ~src_off:(base + src_slot) ~dst:image ~dst_off:(base + !tail)
          ~len:record_len;
        charge_local_copy t record_len;
        r.staging_off <- !tail + Layout.undo_header_size
      end;
      tail := undo_slot_of t ~off:!tail ~payload_len:r.r_len)
    live;
  t.undo_tail <- !tail;
  Trace.Gauge.set t.g_undo_tail t.undo_tail

(* Drain the group-commit queue: retag the batch's records to the
   current epoch, then ship one convoy per mirror — packed undo chain,
   merged data runs, epoch fence last — one shared commit point for
   the whole batch.  Batch atomicity implies per-transaction
   atomicity: a crash before the fence replays every record of the
   current epoch, after it the whole batch is durable.  If the last
   mirror dies mid-flush, every staged transaction rolls back locally
   (open ones stay open — they roll back through their own abort
   paths). *)
let flush t =
  if t.staged <> [] then begin
    if t.flushing then failwith "Perseas.flush: reentrant flush";
    t.flushing <- true;
    Fun.protect ~finally:(fun () -> t.flushing <- false) @@ fun () ->
    let batch = t.staged in
    let n = List.length batch in
    List.iter (fun txn -> retag_records t txn) batch;
    let undo_chunks = flush_undo_chunks batch in
    let runs = batch_data_runs t batch in
    let metasegs = if tracking t then batch_touched t batch else [] in
    if metasegs <> [] then stage_seg_epochs t (Int64.add t.epoch 1L) metasegs;
    t.convoy_seq <- t.convoy_seq + 1;
    let convoy_key = "c" ^ string_of_int t.convoy_seq in
    let batch_ids = String.concat "+" (List.map (fun x -> string_of_int x.t_id) batch) in
    let args = [ ("txns", string_of_int n); ("batch", batch_ids) ] in
    (try
       with_staged_epoch t (Int64.add t.epoch 1L) (fun () ->
           each_live_mirror t (fun i m ->
               traced t ~name:"flush_convoy" ~args:(("mirror", string_of_int i) :: args)
                 (fun () ->
                   with_ctx t
                     (fun () ->
                       [
                         ("op", "flush_convoy");
                         ("batch", batch_ids);
                         ("convoy", convoy_key);
                         ("mirror", string_of_int i);
                         ("node", string_of_int (mirror_node_id m));
                         ("epoch", Int64.to_string (Int64.add t.epoch 1L));
                       ])
                     (fun () ->
                       run_plan t
                         (Client.plan_convoy m.m_client
                            (flush_convoy_chunks t ~undo_chunks ~runs ~metasegs i m))))))
     with All_mirrors_lost ->
       (* No fence landed anywhere: the batch is not durable.  Roll
          every staged transaction back locally; byte overlap between
          batch members is impossible, so per-transaction rollback
          order does not matter. *)
       List.iter
         (fun txn ->
           traced t ~name:"abort" ~args:[ ("reason", "all_mirrors_lost") ] (fun () ->
               rollback_local txn))
         (List.rev batch);
       t.st_aborted <- t.st_aborted + n;
       t.staged <- [];
       List.iter close batch;
       Log.warn (fun k -> k "all mirrors lost mid-flush: %d staged transaction(s) rolled back" n);
       raise All_mirrors_lost);
    t.epoch <- Int64.add t.epoch 1L;
    List.iter (fun txn -> note_dirty t ~tag:t.epoch (dirty_runs txn)) batch;
    t.st_committed <- t.st_committed + n;
    t.st_group_flushes <- t.st_group_flushes + 1;
    t.st_group_txns <- t.st_group_txns + n;
    Trace.Gauge.set t.g_group_size n;
    t.staged <- [];
    List.iter close batch
  end

let set_range txn seg ~off ~len =
  check_open txn "set_range";
  check_seg_range seg ~off ~len "set_range";
  if len = 0 then invalid_arg "Perseas.set_range: empty range";
  let t = txn.owner in
  (* The declaration's coordinates ride on the span so trace observers
     (the cost model, notably) can replay the write-set arithmetic
     without participating in the run. *)
  traced t ~name:"set_range"
    ~args:
      [
        ("txn", string_of_int txn.t_id);
        ("seg", seg.seg_name);
        ("idx", string_of_int seg.index);
        ("off", string_of_int off);
        ("len", string_of_int len);
        ("size", string_of_int seg.size);
      ]
    (fun () -> Clock.advance (clock t) t_set_range);
  (* Conflict detection at 64-byte-line granularity — the unit the NIC
     widening and commit glue may ship margin bytes at, so line-level
     disjointness is what makes cross-transaction batching safe.  The
     declared lines are checked against every other in-flight
     write-set:
     - against a STAGED transaction the declarer wins by waiting: the
       queue is flushed early and the declaration proceeds against
       committed state;
     - against an OPEN transaction the younger aborts — an older
       transaction has done more work and is closer to committing, so
       the cheaper loser retries (see DESIGN.md). *)
  let line_limit = (seg.size + 63) / 64 * 64 in
  let decl_lines =
    let lo = off / 64 * 64 in
    Iset.add Iset.empty ~off:lo ~len:(min line_limit ((off + len + 63) / 64 * 64) - lo)
  in
  let peer_lines peer =
    match Imap.find_opt seg.index peer.wset with
    | None -> Iset.empty
    | Some is -> Iset.snap is ~align:64 ~limit:line_limit
  in
  if List.exists (fun p -> Iset.intersects decl_lines (peer_lines p)) t.staged then flush t;
  let clashing =
    List.filter (fun p -> p != txn && Iset.intersects decl_lines (peer_lines p)) t.open_txns
  in
  (match List.find_opt (fun p -> p.t_id < txn.t_id) clashing with
  | Some older ->
      (* The declarer is the younger party: roll it back and surface
         the typed conflict to its client for a retry. *)
      t.st_conflicts <- t.st_conflicts + 1;
      t.st_aborted <- t.st_aborted + 1;
      traced t ~name:"abort"
        ~args:[ ("reason", "conflict"); ("txn", string_of_int txn.t_id) ]
        (fun () -> rollback_local txn);
      close txn;
      raise (Conflict { younger = txn.t_id; older = older.t_id })
  | None ->
      (* Every clashing holder is younger: doom each one — roll it back
         now, before this declaration's before-image is cut, and let
         the loser learn of it at its next library call. *)
      List.iter
        (fun victim ->
          t.st_conflicts <- t.st_conflicts + 1;
          t.st_aborted <- t.st_aborted + 1;
          traced t ~name:"abort"
            ~args:[ ("reason", "conflict"); ("txn", string_of_int victim.t_id) ]
            (fun () -> rollback_local victim);
          victim.ranges <- [];
          victim.wset <- Imap.empty;
          victim.state <- Doomed;
          victim.doomed_by <- txn.t_id;
          t.open_txns <- List.filter (fun x -> x != victim) t.open_txns)
        clashing);
  let prior = txn_iset txn seg in
  (* First-write-only logging: a sub-range already declared this
     transaction keeps its original before-image — the one recovery and
     rollback must restore — so only the still-uncovered fragments need
     undo records at all. *)
  let fragments =
    if t.config.redundancy_elision then Iset.uncovered prior ~off ~len else [ (off, len) ]
  in
  (* Reserve log space for the whole call up front so an overflow
     leaves no half-logged fragment behind. *)
  let rec fits tail = function
    | [] -> true
    | (_, flen) :: rest ->
        tail + Layout.undo_header_size + flen <= t.config.undo_capacity
        && fits (undo_slot_of t ~off:tail ~payload_len:flen) rest
  in
  (* A full log first tries draining the group-commit queue (retiring
     the batch's records), then compacting the survivors to the front.
     Only if the log is still too small does the overflow surface — and
     then only to the caller; staged transactions are already retired
     and open peers untouched. *)
  if (not (fits t.undo_tail fragments)) && t.staged <> [] then flush t;
  if not (fits t.undo_tail fragments) then compact_log t;
  if not (fits t.undo_tail fragments) then raise Undo_overflow;
  List.iter (fun (off, len) -> log_undo_record txn seg ~off ~len) fragments;
  Trace.Gauge.set t.g_undo_tail t.undo_tail;
  txn.wset <- Imap.add seg.index (Iset.add prior ~off ~len) txn.wset;
  txn.declared <- txn.declared + 1;
  txn.declared_bytes <- txn.declared_bytes + len;
  t.st_set_ranges <- t.st_set_ranges + 1;
  t.st_elided_bytes <-
    t.st_elided_bytes + (len - List.fold_left (fun acc (_, flen) -> acc + flen) 0 fragments)

(* Eager-mode retag: records already pushed to the remote logs may
   carry a stale epoch tag when concurrent peers bumped the epoch since
   they were cut.  Rewrite them locally and re-push the full records —
   a joiner recruited mid-transaction has no payload for them yet, so
   a header-only push would leave its log torn.  Sequentially the tags
   are always current and this is a no-op, packet for packet. *)
let repush_stale txn =
  let t = txn.owner in
  let stale = List.filter (fun r -> r.r_tag <> t.epoch) txn.ranges in
  if stale <> [] then begin
    retag_records t txn;
    guard_mirror_loss txn (fun () ->
        each_live_mirror t (fun i m ->
            traced t ~name:"remote_undo" ~args:[ ("mirror", string_of_int i) ] (fun () ->
                with_ctx t
                  (fun () ->
                    [
                      ("op", "remote_undo");
                      ("txn", string_of_int txn.t_id);
                      ("mirror", string_of_int i);
                      ("node", string_of_int (mirror_node_id m));
                    ])
                  (fun () ->
                    List.iter
                      (fun r ->
                        let slot = r.staging_off - Layout.undo_header_size in
                        run_plan t
                          (Client.plan_write m.m_client ~widen:t.config.optimized_memcpy m.m_undo
                             ~seg_off:slot ~src_off:(Mem.Segment.base t.undo_local + slot)
                             ~len:(Layout.undo_header_size + r.r_len)))
                      stale))))
  end

let commit txn =
  check_open txn "commit";
  let t = txn.owner in
  traced t ~name:"commit" ~args:[ ("txn", string_of_int txn.t_id) ] (fun () ->
      Clock.advance (clock t) t_commit);
  if t.config.redundancy_elision then begin
    let wset_total = Imap.fold (fun _ iset acc -> acc + Iset.total iset) txn.wset 0 in
    let runs_now = List.length (commit_runs txn) in
    t.st_coalesced_ranges <- t.st_coalesced_ranges + max 0 (txn.declared - runs_now);
    t.st_commit_saved <- t.st_commit_saved + max 0 (txn.declared_bytes - wset_total)
  end;
  if t.config.group_commit <= 1 then begin
    (* Figure 3, step 3: propagate updated ranges to every mirror, then
       bump the epoch everywhere — the per-mirror single-packet commit
       point. *)
    let runs = commit_runs txn in
    (* Causal tags for the commit unit: the eager propagate / segmeta /
       fence burst to one node is one "convoy" (key [t<id>]) as far as
       the ordering invariants go. *)
    let unit_ctx op ?epoch i m () =
      [
        ("op", op);
        ("txn", string_of_int txn.t_id);
        ("convoy", "t" ^ string_of_int txn.t_id);
        ("mirror", string_of_int i);
        ("node", string_of_int (mirror_node_id m));
      ]
      @ match epoch with Some e -> [ ("epoch", Int64.to_string e) ] | None -> []
    in
    repush_stale txn;
    guard_mirror_loss txn (fun () ->
        each_live_mirror t (fun i m ->
            traced t ~name:"commit_propagate" ~args:[ ("mirror", string_of_int i) ] (fun () ->
                with_ctx t (unit_ctx "commit_propagate" i m) (fun () ->
                    List.iter (run_plan t) (plans_for t runs i m))));
        (if tracking t then begin
           let segs = touched_segs t txn.wset in
           stage_seg_epochs t (Int64.add t.epoch 1L) segs;
           each_live_mirror t (fun i m ->
               traced t ~name:"commit_segmeta" ~args:[ ("mirror", string_of_int i) ] (fun () ->
                   with_ctx t (unit_ctx "commit_segmeta" i m) (fun () ->
                       List.iter (fun seg -> run_plan t (plan_seg_epoch_write t m seg)) segs)))
         end);
        with_staged_epoch t (Int64.add t.epoch 1L) (fun () ->
            each_live_mirror t (fun i m ->
                traced t ~name:"commit_fence" ~args:[ ("mirror", string_of_int i) ] (fun () ->
                    with_ctx t
                      (unit_ctx "commit_fence" ~epoch:(Int64.add t.epoch 1L) i m)
                      (fun () -> run_plan t (plan_epoch_write t m))))));
    t.epoch <- Int64.add t.epoch 1L;
    note_dirty t ~tag:t.epoch (dirty_runs txn);
    t.st_committed <- t.st_committed + 1;
    close txn
  end
  else begin
    (* Group commit: stage the transaction and let the shared flush
       carry it.  Durability — and the [committed] count — arrive with
       the flush's fence, not here. *)
    txn.state <- Staged;
    t.open_txns <- List.filter (fun x -> x != txn) t.open_txns;
    t.staged <- t.staged @ [ txn ];
    if List.length t.staged >= t.config.group_commit then flush t
  end

(* How many flush packets the queue [batch] would cost right now: one
   merged convoy per mirror (packed undo chain, merged data runs,
   fence).  An empty batch flushes nothing and costs nothing.  The
   chunk list is a pure function of the batch's records — a dry run
   moves nothing — and matches what the real flush will ship. *)
let flush_step_count t batch =
  match batch with
  | [] -> 0
  | _ :: _ ->
      let runs = batch_data_runs t batch in
      let undo_chunks = flush_undo_chunks batch in
      let metasegs = if tracking t then batch_touched t batch else [] in
      let count = ref 0 in
      Array.iteri
        (fun i m ->
          if m.m_alive then
            count :=
              !count
              + List.length
                  (Sci.Nic.plan_steps
                     (Client.plan_convoy m.m_client
                        (flush_convoy_chunks t ~undo_chunks ~runs ~metasegs i m))))
        t.mirrors;
      !count

let commit_packets txn =
  check_open txn "commit_packets";
  let t = txn.owner in
  if t.config.group_commit <= 1 then begin
    let runs = commit_runs txn in
    let stale = List.filter (fun r -> r.r_tag <> t.epoch) txn.ranges in
    with_staged_epoch t (Int64.add t.epoch 1L) (fun () ->
        let count = ref 0 in
        Array.iteri
          (fun i m ->
            if m.m_alive then begin
              List.iter
                (fun r ->
                  let slot = r.staging_off - Layout.undo_header_size in
                  count :=
                    !count
                    + List.length
                        (Sci.Nic.plan_steps
                           (Client.plan_write m.m_client ~widen:t.config.optimized_memcpy m.m_undo
                              ~seg_off:slot ~src_off:(Mem.Segment.base t.undo_local + slot)
                              ~len:(Layout.undo_header_size + r.r_len))))
                stale;
              List.iter
                (fun plan -> count := !count + List.length (Sci.Nic.plan_steps plan))
                (plans_for t runs i m);
              if tracking t then
                List.iter
                  (fun seg ->
                    count := !count + List.length (Sci.Nic.plan_steps (plan_seg_epoch_write t m seg)))
                  (touched_segs t txn.wset);
              count := !count + List.length (Sci.Nic.plan_steps (plan_epoch_write t m))
            end)
          t.mirrors;
        !count)
  end
  else
    (* The transaction's MARGINAL packets: what the flush costs with it
       staged, minus what the already-staged queue costs alone — the
       shared undo convoy and fence are charged to the first committer
       of a batch and amortise to zero for the rest.  Summed over a
       batch (with no interleaved declarations) the marginals telescope
       to exactly the flush's packet count. *)
    flush_step_count t (t.staged @ [ txn ]) - flush_step_count t t.staged

let abort txn =
  match txn.state with
  | Doomed ->
      (* Already rolled back at doom time; aborting is what the loser
         was going to do anyway, so closing silently is enough. *)
      txn.state <- Closed
  | Staged -> failwith "Perseas.abort: transaction already committed (staged)"
  | Closed -> failwith "Perseas.abort: transaction is closed"
  | Open ->
      let t = txn.owner in
      traced t ~name:"abort" ~args:[ ("txn", string_of_int txn.t_id) ] (fun () ->
          rollback_local txn);
      t.st_aborted <- t.st_aborted + 1;
      close txn

(* O(log n) on the coalesced index — and deliberately a touch more
   permissive than scanning the declared ranges: a write spanning two
   adjacent declarations is covered, which is exactly the promise
   set_range made. *)
let covered txn seg ~off ~len = Iset.covers (txn_iset txn seg) ~off ~len

let write t seg ~off data =
  let len = Bytes.length data in
  check_seg_range seg ~off ~len "write";
  if t.ready && t.config.strict_updates then begin
    (* Open write-sets are pairwise line-disjoint, so at most one
       transaction can cover the range — find it. *)
    match List.find_opt (fun txn -> covered txn seg ~off ~len) t.open_txns with
    | Some _ -> ()
    | None ->
        if t.open_txns = [] then failwith "Perseas.write: no open transaction"
        else
          failwith
            (Printf.sprintf "Perseas.write: [%d,+%d) of %S not covered by any open set_range" off
               len seg.seg_name)
  end;
  Mem.Image.write_bytes (local_dram t) ~off:(Mem.Segment.base seg.local + off) data;
  traced t ~name:"in_place_write" (fun () -> charge_local_copy t len)

let read t seg ~off ~len =
  check_seg_range seg ~off ~len "read";
  Mem.Image.read_bytes (local_dram t) ~off:(Mem.Segment.base seg.local + off) ~len

let write_u32 t seg ~off v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  write t seg ~off b

let read_u32 t seg ~off =
  check_seg_range seg ~off ~len:4 "read_u32";
  Mem.Image.read_u32 (local_dram t) (Mem.Segment.base seg.local + off)

let write_u64 t seg ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t seg ~off b

let read_u64 t seg ~off =
  check_seg_range seg ~off ~len:8 "read_u64";
  Mem.Image.read_u64 (local_dram t) (Mem.Segment.base seg.local + off)

let checksum t seg =
  Mem.Image.checksum (local_dram t) ~off:(Mem.Segment.base seg.local) ~len:seg.size

let mirror_checksums t seg =
  Array.to_list t.mirrors
  |> List.mapi (fun i m -> (i, m))
  |> List.filter_map (fun (i, m) ->
         if not m.m_alive then None
         else
           let image = Node.dram (Netram.Server.node (Client.server m.m_client)) in
           Some (i, Mem.Image.checksum image ~off:(Remote_segment.base seg.remotes.(i)) ~len:seg.size))

let mirror_checksum t seg =
  match mirror_checksums t seg with
  | (_, c) :: _ -> c
  | [] -> raise All_mirrors_lost

(* Operational scrub: compare every segment against every live mirror
   (no virtual time charged — a test/ops oracle, not a protocol step). *)
let verify_mirrors t =
  List.concat_map
    (fun seg ->
      let local = checksum t seg in
      List.filter_map
        (fun (i, c) -> if c <> local then Some (seg.seg_name, i) else None)
        (mirror_checksums t seg))
    t.segs

let set_packet_hook t hook = t.hook <- hook
let txn_id txn = txn.t_id
let txn_client txn = txn.t_client
let validate txn = match txn.state with Doomed -> check_open txn "validate" | _ -> ()
let open_txn_count t = List.length t.open_txns
let staged_count t = List.length t.staged

let stats t =
  {
    begun = t.st_begun;
    committed = t.st_committed;
    aborts = t.st_aborted;
    set_ranges = t.st_set_ranges;
    undo_bytes_logged = t.st_undo_bytes;
    elided_undo_bytes = t.st_elided_bytes;
    undo_hwm_bytes = t.st_undo_hwm;
    coalesced_ranges = t.st_coalesced_ranges;
    commit_bytes_saved = t.st_commit_saved;
    local_copy_bytes = t.st_local_copy_bytes;
    mirrors_lost = t.st_mirrors_lost;
    mirrors_recruited = t.st_mirrors_recruited;
    resync_bytes = t.st_resync_bytes;
    degraded_us = Time.to_ns (degraded_total t) / 1000;
    conflicts = t.st_conflicts;
    group_flushes = t.st_group_flushes;
    group_commit_txns = t.st_group_txns;
    checkpoints_taken = t.st_ckpts;
    checkpoint_bytes = t.st_ckpt_bytes;
    log_truncated_bytes = t.st_log_truncated;
  }

let stats_fields (s : stats) =
  [
    ("begun", s.begun);
    ("committed", s.committed);
    ("aborts", s.aborts);
    ("set_ranges", s.set_ranges);
    ("undo_bytes_logged", s.undo_bytes_logged);
    ("elided_undo_bytes", s.elided_undo_bytes);
    ("undo_hwm_bytes", s.undo_hwm_bytes);
    ("coalesced_ranges", s.coalesced_ranges);
    ("commit_bytes_saved", s.commit_bytes_saved);
    ("local_copy_bytes", s.local_copy_bytes);
    ("mirrors_lost", s.mirrors_lost);
    ("mirrors_recruited", s.mirrors_recruited);
    ("resync_bytes", s.resync_bytes);
    ("degraded_us", s.degraded_us);
    ("conflicts", s.conflicts);
    ("group_flushes", s.group_flushes);
    ("group_commit_txns", s.group_commit_txns);
    ("checkpoints_taken", s.checkpoints_taken);
    ("checkpoint_bytes", s.checkpoint_bytes);
    ("log_truncated_bytes", s.log_truncated_bytes);
  ]

let pp_stats ppf s =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Fmt.cut ppf ();
      Fmt.pf ppf "%-18s %d" k v)
    (stats_fields s);
  Fmt.pf ppf "@]"

let stats_to_json s =
  "{ "
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) (stats_fields s))
  ^ " }"

(* ------------------------------------------------------------------ *)
(* Mirror management                                                    *)

(* Export-or-reconnect every PERSEAS object on [server] and bring it in
   sync with the local database.  Handles both a brand-new server and a
   stale ex-mirror whose directory still holds old segments. *)
let connect_or_export client ~name ~size =
  match Client.connect client ~name with
  | Some h when Remote_segment.len h = size -> h
  | Some h ->
      Client.free client h;
      Client.malloc client ~name ~size
  | None -> Client.malloc client ~name ~size

(* Cheap failure detection: one control round trip per live mirror
   (each charged {!Client.rpc_time}).  Dead mirrors are dropped exactly
   as if a data operation had hit them — but outside any transaction,
   so a supervisor probing at transaction boundaries retires corpses
   before a commit can half-write to them.  Returns the node ids
   dropped; never raises {!All_mirrors_lost} (detecting an empty pool
   is the caller's job — there may be nothing in flight to protect). *)
let probe_mirrors t =
  Array.to_list t.mirrors
  |> List.filter_map (fun m ->
         if not m.m_alive then None
         else if Client.ping m.m_client then None
         else begin
           drop_mirror t m "failed liveness probe";
           Some (mirror_node_id m)
         end)

let full_bytes t = List.fold_left (fun acc s -> acc + s.size) 0 t.segs

(* Write 8 zero bytes over a joiner's remote magic word before any
   resync copying: if the copy is cut short (crash, flaky spare), the
   half-written replica has no valid metadata header, so recovery's
   candidate probe skips it instead of trusting stale-but-valid
   contents.  The final [push_meta] restores magic and the new epoch,
   completing the copy atomically from recovery's point of view. *)
let fence_joiner t m =
  let image = local_dram t in
  let base = Mem.Segment.base t.meta_local in
  let saved = Mem.Image.read_u64 image base in
  Mem.Image.write_u64 image base 0L;
  Fun.protect
    ~finally:(fun () -> Mem.Image.write_u64 image base saved)
    (fun () -> run_plan t (Client.plan_write m.m_client m.m_meta ~seg_off:0 ~src_off:base ~len:8))

exception Not_incremental of string

(* Can [client]'s server — an ex-mirror retired at epoch [since] — be
   brought back by copying only the ranges committed after it left?
   Yes iff its exported PERSEAS objects survived the outage intact:
   right names and sizes, metadata header valid, and the replica no
   further along than the epoch we retired it at (a newer epoch means
   somebody else wrote to it — trust nothing).  The header reads are
   real remote reads and charge virtual time. *)
let incremental_handles t client ~since =
  let connect_exact name size what =
    match Client.connect client ~name with
    | Some h when Remote_segment.len h = size -> h
    | Some _ -> raise (Not_incremental (what ^ " changed size"))
    | None -> raise (Not_incremental (what ^ " no longer exported"))
  in
  let meta = connect_exact (Layout.meta_name ~ns:t.config.namespace) (meta_size t) "metadata segment" in
  if Client.read_u64 client meta ~seg_off:0 <> Layout.meta_magic then
    raise (Not_incremental "metadata header invalid");
  if Client.read_u64 client meta ~seg_off:Layout.epoch_offset > since then
    raise (Not_incremental "replica ahead of its retirement epoch");
  let undo =
    connect_exact (Layout.undo_name ~ns:t.config.namespace) t.config.undo_capacity "undo segment"
  in
  let handles =
    List.map
      (fun seg ->
        ( seg,
          connect_exact
            (Layout.db_export_name ~ns:t.config.namespace seg.seg_name)
            seg.size
            (Printf.sprintf "segment %S" seg.seg_name) ))
      (segments t)
  in
  (meta, undo, handles)

(* The ranges a mirror retired at epoch [since] is missing: every dirty
   entry tagged later than [since], coalesced per segment (overlaps and
   adjacent runs merged) so each byte is copied at most once. *)
let ranges_since t ~since =
  if Imap.is_empty t.ckpt_summary || since >= t.ckpt_summary_upto then
    (* No truncated prefix overlaps the request — the plain walk, kept
       byte-identical to the pre-checkpoint engine. *)
    let rec take acc = function
      | d :: rest when d.d_epoch > since -> take (d :: acc) rest
      | _ -> acc
    in
    let needed = take [] t.dirty in
    let by_seg = Hashtbl.create 8 in
    List.iter
      (fun d ->
        let prev = Option.value (Hashtbl.find_opt by_seg d.d_seg) ~default:[] in
        Hashtbl.replace by_seg d.d_seg ((d.d_off, d.d_len) :: prev))
      needed;
    Hashtbl.fold
      (fun seg_index ranges acc ->
        let merged =
          List.fold_left
            (fun acc (off, len) ->
              match acc with
              | (o, l) :: rest when off <= o + l -> (o, max l (off + len - o)) :: rest
              | _ -> (off, len) :: acc)
            []
            (List.sort compare ranges)
        in
        (seg_index, List.rev merged) :: acc)
      by_seg []
  else
    (* A checkpoint truncated entries the caller may be missing.  The
       summary is the union of everything truncated, so summary plus
       the surviving entries newer than [since] is a superset of what
       the full log would have returned — conservative over-copy, never
       a missed byte. *)
    let add acc d =
      let prev = Option.value (Imap.find_opt d.d_seg acc) ~default:Iset.empty in
      Imap.add d.d_seg (Iset.add prev ~off:d.d_off ~len:d.d_len) acc
    in
    let rec take acc = function
      | d :: rest when d.d_epoch > since -> take (add acc d) rest
      | _ -> acc
    in
    let merged = take t.ckpt_summary t.dirty in
    List.rev (Imap.fold (fun seg_index iset acc -> (seg_index, Iset.intervals iset) :: acc) merged [])

let do_attach ~op ~allow_incremental t ~server =
  (* Membership changes no longer wait for "no open transaction" —
     under concurrency that moment may never come.  They quiesce the
     group-commit queue instead: drain the staged commits, refuse only
     while a flush is actually propagating. *)
  if t.flushing then failwith (Printf.sprintf "Perseas.%s: commit propagation in flight" op);
  flush t;
  let node_id = Node.id (Netram.Server.node server) in
  let existing = Array.to_list t.mirrors |> List.exists (fun m -> m.m_alive && mirror_node_id m = node_id) in
  if existing then invalid_arg (Printf.sprintf "Perseas.%s: node already mirrors this database" op);
  let client = Client.create ~cluster:t.cluster ~local:t.local_id ~server in
  let since =
    if allow_incremental && t.ready then
      match Hashtbl.find_opt t.retired node_id with
      | Some s when s >= t.dirty_floor -> Some s
      | Some _ | None -> None
    else None
  in
  let incremental =
    match since with
    | None -> None
    | Some s -> (
        try Some (s, incremental_handles t client ~since:s)
        with Not_incremental reason ->
          Log.info (fun k -> k "%s: node %d falls back to a full resync (%s)" op node_id reason);
          None)
  in
  let n_before = Array.length t.mirrors in
  let restore_membership () =
    if Array.length t.mirrors > n_before then t.mirrors <- Array.sub t.mirrors 0 n_before;
    List.iter
      (fun seg ->
        if Array.length seg.remotes > n_before then seg.remotes <- Array.sub seg.remotes 0 n_before)
      t.segs
  in
  try
    traced t ~cat:"mirror" ~name:"resync" ~args:[ ("node", string_of_int node_id) ] @@ fun () ->
    with_ctx t (fun () -> [ ("op", "resync"); ("node", string_of_int node_id) ]) @@ fun () ->
    let report =
      match incremental with
      | Some (s, (meta, undo, handles)) ->
          let m = { m_client = client; m_meta = meta; m_undo = undo; m_alive = true } in
          t.mirrors <- Array.append t.mirrors [| m |];
          List.iter (fun (seg, h) -> seg.remotes <- Array.append seg.remotes [| h |]) handles;
          fence_joiner t m;
          let copied = ref 0 in
          List.iter
            (fun (seg_index, ranges) ->
              let seg = List.find (fun seg -> seg.index = seg_index) t.segs in
              List.iter
                (fun (off, len) ->
                  run_plan t
                    (Client.plan_write client ~widen:t.config.optimized_memcpy
                       seg.remotes.(n_before) ~seg_off:off
                       ~src_off:(Mem.Segment.base seg.local + off) ~len);
                  copied := !copied + len)
                ranges)
            (ranges_since t ~since:s);
          { mode = Incremental; bytes_copied = !copied; full_bytes = full_bytes t }
      | None ->
          let m =
            {
              m_client = client;
              m_meta =
                connect_or_export client ~name:(Layout.meta_name ~ns:t.config.namespace)
                  ~size:(meta_size t);
              m_undo =
                connect_or_export client
                  ~name:(Layout.undo_name ~ns:t.config.namespace)
                  ~size:t.config.undo_capacity;
              m_alive = true;
            }
          in
          (* Grow the mirror arrays. *)
          t.mirrors <- Array.append t.mirrors [| m |];
          if t.ready then fence_joiner t m;
          List.iter
            (fun seg ->
              let handle =
                connect_or_export client
                  ~name:(Layout.db_export_name ~ns:t.config.namespace seg.seg_name)
                  ~size:seg.size
              in
              seg.remotes <- Array.append seg.remotes [| handle |];
              if t.ready then push_segment_to t m seg handle)
            (segments t);
          let bytes = if t.ready then full_bytes t else 0 in
          { mode = Full; bytes_copied = bytes; full_bytes = full_bytes t }
    in
    (* Scrub the joiner: the local image holds open transactions'
       uncommitted bytes and the copy above shipped them verbatim.
       Overwrite those ranges with the before-images from the local
       undo staging, so the joiner starts from committed state only —
       a range an open transaction has not written yet is rewritten
       with identical bytes (a no-op). *)
    List.iter
      (fun txn ->
        List.iter
          (fun r ->
            run_plan t
              (Client.plan_write client ~widen:false r.r_seg.remotes.(n_before) ~seg_off:r.r_off
                 ~src_off:(Mem.Segment.base t.undo_local + r.staging_off) ~len:r.r_len))
          txn.ranges)
      t.open_txns;
    Hashtbl.remove t.retired node_id;
    if t.ready then begin
      (* Bump the epoch so stale undo records (here and on every other
         mirror) can never be replayed against the fresh copy. *)
      t.epoch <- Int64.add t.epoch 1L;
      push_meta t;
      t.st_mirrors_recruited <- t.st_mirrors_recruited + 1;
      t.st_resync_bytes <- t.st_resync_bytes + report.bytes_copied
    end;
    note_replication t;
    report
  with Client.Unreachable msg ->
    (* The joiner died mid-resync.  Undo the membership change so the
       live set is exactly what it was; the fence already guarantees a
       half-copied replica can never be mistaken for a sound one. *)
    restore_membership ();
    Log.warn (fun k -> k "%s: node %d unreachable mid-resync (%s)" op node_id msg);
    raise (Client.Unreachable msg)

let attach_mirror t ~server =
  ignore (do_attach ~op:"attach_mirror" ~allow_incremental:false t ~server)

let recruit_mirror t ~server = do_attach ~op:"recruit_mirror" ~allow_incremental:true t ~server

let detach_mirror t ~node_id =
  if t.flushing then failwith "Perseas.detach_mirror: commit propagation in flight";
  flush t;
  match Array.to_list t.mirrors |> List.find_opt (fun m -> m.m_alive && mirror_node_id m = node_id) with
  | None ->
      invalid_arg (Printf.sprintf "Perseas.detach_mirror: node %d is not a live mirror" node_id)
  | Some m ->
      if mirror_count t = 1 then
        failwith
          "Perseas.detach_mirror: refusing to detach the last live mirror (the database would \
           become unrecoverable); attach a replacement first";
      retire_mirror t m

let remirror t ~server =
  if t.flushing then failwith "Perseas.remirror: commit propagation in flight";
  flush t;
  Array.iter (fun m -> if m.m_alive then retire_mirror t m) t.mirrors;
  t.mirrors <- [||];
  List.iter (fun seg -> seg.remotes <- [||]) t.segs;
  attach_mirror t ~server

(* ------------------------------------------------------------------ *)
(* Fuzzy checkpoints                                                    *)

(* A checkpoint slot is laid out like an archive: a metadata-format
   header (magic, cut epoch, segment table), then the segment images at
   64-byte-aligned offsets.  [ckpt_offsets] is the one place that
   arithmetic lives — the checkpointer and recovery both call it, so
   writer and reader can never disagree on where a segment sits. *)
let ckpt_offsets ~meta_size sizes =
  let off = ref (Layout.align64 meta_size) in
  let offs =
    List.map
      (fun size ->
        let o = !off in
        off := Layout.align64 (o + size);
        o)
      sizes
  in
  (offs, !off)

module Checkpoint = struct
  exception Target_lost of string

  let seg_offsets t =
    let segs = segments t in
    let offs, total = ckpt_offsets ~meta_size:(meta_size t) (List.map (fun s -> s.size) segs) in
    (List.combine segs offs, total)

  let in_flight t = t.ckpt_inflight <> None
  let generation t = t.ckpt_gen
  let target_set t = t.ckpt_target <> None

  (* Loss of the checkpoint target is a degraded-mode event like a
     mirror loss, not a bug: drop the target, stop maintaining the
     metadata epoch columns (the mirrors must stop claiming they are
     live), and surface the typed error.  Published generations stay
     intact on the target if its node survives, but this engine forgets
     them — a fresh [set_ram_target] starts from generation 0. *)
  let target_lost t msg =
    t.ckpt_inflight <- None;
    t.ckpt_target <- None;
    t.ckpt_gen <- 0L;
    (try push_meta t with All_mirrors_lost -> ());
    raise (Target_lost msg)

  let with_target t f = try f () with Client.Unreachable msg -> target_lost t msg

  let require_target t op =
    match t.ckpt_target with
    | Some tg -> tg
    | None -> failwith (Printf.sprintf "Perseas.Checkpoint.%s: no checkpoint target" op)

  let require_inflight t op =
    match t.ckpt_inflight with
    | Some p -> p
    | None -> failwith (Printf.sprintf "Perseas.Checkpoint.%s: no checkpoint in flight" op)

  (* The disk layout mirrors the RAM one: the directory block
     (generation word at 0, slot size at 8), then the two slots back to
     back.  Every device write passes the packet hook first, so crash
     sweeps can cut a disk checkpoint at the same boundaries as a RAM
     one. *)
  let disk_write t device ~off b =
    (match t.hook with Some f -> f () | None -> ());
    Disk.Device.write device ~off b

  let disk_slot_base ~slot_size slot = Layout.ckpt_dir_size + (slot * slot_size)

  (* Ship [len] bytes of local DRAM at [src_off] into slot [slot] at
     [off].  RAM targets stream SCI packets through the fault-injection
     hook; disk targets write 64 KiB chunks, hooked per chunk. *)
  let ram_target_node client = Node.id (Netram.Server.node (Client.server client))

  let slot_write t tg ~slot ~off ~src_off ~len =
    match tg with
    | Ram_target r ->
        with_ctx t
          (fun () -> [ ("op", "ckpt_ship"); ("node", string_of_int (ram_target_node r.c_client)) ])
          (fun () ->
            run_plan t
              (Client.plan_write r.c_client ~widen:t.config.optimized_memcpy r.c_slots.(slot)
                 ~seg_off:off ~src_off ~len))
    | Disk_target device ->
        let _, slot_size = seg_offsets t in
        let image = local_dram t in
        let base = disk_slot_base ~slot_size slot in
        let chunk = 64 * 1024 in
        let pos = ref 0 in
        while !pos < len do
          let n = min chunk (len - !pos) in
          disk_write t device ~off:(base + off + !pos)
            (Mem.Image.read_bytes image ~off:(src_off + !pos) ~len:n);
          pos := !pos + n
        done

  (* Zero the under-construction slot's magic word before any snapshot
     byte lands (the fence_joiner idiom): a crash mid-checkpoint leaves
     a slot recovery's probe refuses, never a torn snapshot it trusts. *)
  let zero_slot_magic t tg slot =
    match tg with
    | Ram_target r ->
        let image = local_dram t in
        let base = Mem.Segment.base r.c_scratch in
        Mem.Image.write_u64 image base 0L;
        with_ctx t
          (fun () -> [ ("op", "ckpt_ship"); ("node", string_of_int (ram_target_node r.c_client)) ])
          (fun () ->
            run_plan t
              (Client.plan_write r.c_client ~widen:false r.c_slots.(slot) ~seg_off:0 ~src_off:base
                 ~len:8))
    | Disk_target device ->
        let _, slot_size = seg_offsets t in
        disk_write t device ~off:(disk_slot_base ~slot_size slot) (Bytes.make 8 '\000')

  (* Publish: header body first, the magic word second, the directory's
     generation word (one atomic 8-byte store) strictly last.  A crash
     at any packet of this sequence leaves either the previous
     generation published or the new one — never a torn mix. *)
  let publish t tg p ~cut =
    let msize = meta_size t in
    let b = Bytes.make msize '\000' in
    Layout.write_meta_magic b;
    Layout.write_epoch b cut;
    Layout.write_nsegs b (List.length t.segs);
    List.iter
      (fun s -> Layout.write_table_entry b ~index:s.index ~name:s.seg_name ~size:s.size)
      t.segs;
    match tg with
    | Ram_target r ->
        let image = local_dram t in
        let base = Mem.Segment.base r.c_scratch in
        Mem.Image.write_bytes image ~off:base b;
        charge_local_copy t msize;
        with_ctx t
          (fun () -> [ ("op", "ckpt_publish"); ("node", string_of_int (ram_target_node r.c_client)) ])
        @@ fun () ->
        run_plan t
          (Client.plan_write r.c_client ~widen:t.config.optimized_memcpy r.c_slots.(p.p_slot)
             ~seg_off:8 ~src_off:(base + 8) ~len:(msize - 8));
        run_plan t
          (Client.plan_write r.c_client ~widen:false r.c_slots.(p.p_slot) ~seg_off:0 ~src_off:base
             ~len:8);
        Mem.Image.write_u64 image base p.p_gen;
        run_plan t (Client.plan_write r.c_client ~widen:false r.c_dir ~seg_off:0 ~src_off:base ~len:8)
    | Disk_target device ->
        let _, slot_size = seg_offsets t in
        let base = disk_slot_base ~slot_size p.p_slot in
        disk_write t device ~off:(base + 8) (Bytes.sub b 8 (msize - 8));
        disk_write t device ~off:base (Bytes.sub b 0 8);
        let dir = Bytes.create 8 in
        Bytes.set_int64_le dir 0 p.p_gen;
        disk_write t device ~off:0 dir

  let set_ram_target t ~server =
    if not t.ready then failwith "Perseas.Checkpoint.set_ram_target: call init_remote_db first";
    if t.ckpt_inflight <> None then
      failwith "Perseas.Checkpoint.set_ram_target: checkpoint in flight";
    let node_id = Node.id (Netram.Server.node server) in
    (* A target sharing the primary's node would checkpoint RAM into the
       very failure domain it protects — and, after a recovery that
       adopted a slot in place, would overwrite the live database. *)
    if node_id = t.local_id then
      invalid_arg "Perseas.Checkpoint.set_ram_target: target must live on a remote node";
    let client = Client.create ~cluster:t.cluster ~local:t.local_id ~server in
    (try
       let _, slot_size = seg_offsets t in
       let dir =
         connect_or_export client
           ~name:(Layout.ckpt_dir_name ~ns:t.config.namespace)
           ~size:Layout.ckpt_dir_size
       in
       let slots =
         Array.init 2 (fun slot ->
             connect_or_export client
               ~name:(Layout.ckpt_slot_name ~ns:t.config.namespace ~slot)
               ~size:slot_size)
       in
       (* This engine starts from generation 0: invalidate any stale
          directory a previous incarnation left behind. *)
       Client.write_u64 client dir ~seg_off:0 0L;
       let scratch = alloc_local t (meta_size t) "checkpoint staging" in
       t.ckpt_target <-
         Some (Ram_target { c_client = client; c_dir = dir; c_slots = slots; c_scratch = scratch });
       t.ckpt_gen <- 0L
     with Client.Unreachable msg ->
       t.ckpt_target <- None;
       raise (Target_lost msg));
    (* From here commit propagation maintains the metadata epoch
       columns: seed them and flip the live word on every mirror. *)
    List.iter (fun seg -> seg.last_mod <- t.epoch) t.segs;
    push_meta t

  let set_disk_target t ~device =
    if not t.ready then failwith "Perseas.Checkpoint.set_disk_target: call init_remote_db first";
    if t.ckpt_inflight <> None then
      failwith "Perseas.Checkpoint.set_disk_target: checkpoint in flight";
    let _, slot_size = seg_offsets t in
    let need = Layout.ckpt_dir_size + (2 * slot_size) in
    if Disk.Device.capacity device < need then
      invalid_arg
        (Printf.sprintf "Perseas.Checkpoint.set_disk_target: device too small (%d < %d bytes)"
           (Disk.Device.capacity device) need);
    let dir = Bytes.make Layout.ckpt_dir_size '\000' in
    Bytes.set_int64_le dir 8 (Int64.of_int slot_size);
    Disk.Device.write device ~off:0 dir;
    t.ckpt_target <- Some (Disk_target device);
    t.ckpt_gen <- 0L;
    List.iter (fun seg -> seg.last_mod <- t.epoch) t.segs;
    push_meta t

  let clear_target t =
    if t.ckpt_inflight <> None then failwith "Perseas.Checkpoint.clear_target: checkpoint in flight";
    if t.ckpt_target <> None then begin
      t.ckpt_target <- None;
      t.ckpt_gen <- 0L;
      List.iter (fun seg -> seg.last_mod <- 0L) t.segs;
      (* live word off, epoch columns zeroed: recovery must not trust
         columns nobody maintains *)
      push_meta t
    end

  let start t =
    let tg = require_target t "start" in
    if t.ckpt_inflight <> None then failwith "Perseas.Checkpoint.start: checkpoint already in flight";
    if t.flushing then failwith "Perseas.Checkpoint.start: commit propagation in flight";
    (* The cut boundary never splits a commit convoy: quiesce the
       group-commit queue so every staged transaction is either fully
       before this checkpoint or arrives as ordinary post-start dirt. *)
    flush t;
    if Trace.Sink.enabled t.sink then
      Trace.Sink.instant t.sink ~cat:"ckpt" ~name:"cut" ~at:(Clock.now (clock t))
        ~args:[ ("phase", "start") ];
    with_target t @@ fun () ->
    let gen = Int64.add t.ckpt_gen 1L in
    let slot = Int64.to_int (Int64.rem gen 2L) in
    zero_slot_magic t tg slot;
    t.ckpt_inflight <-
      Some { p_gen = gen; p_slot = slot; p_started_epoch = t.epoch; p_shipped = 0; p_total = full_bytes t }

  (* Ship up to [budget] bytes of the segment concatenation, resuming
     where the last step stopped.  Commits keep landing between steps —
     that is the fuzzy part; whatever they dirty is re-shipped at
     finalize time. *)
  let ship t tg p ~budget =
    let offs, _ = seg_offsets t in
    let budget = ref budget in
    let cum = ref 0 in
    List.iter
      (fun (seg, slot_off) ->
        let seg_start = !cum in
        cum := !cum + seg.size;
        if !budget > 0 && p.p_shipped < !cum then begin
          let pos = p.p_shipped - seg_start in
          let len = min (seg.size - pos) !budget in
          slot_write t tg ~slot:p.p_slot ~off:(slot_off + pos)
            ~src_off:(Mem.Segment.base seg.local + pos) ~len;
          p.p_shipped <- p.p_shipped + len;
          t.st_ckpt_bytes <- t.st_ckpt_bytes + len;
          budget := !budget - len
        end)
      offs;
    p.p_shipped >= p.p_total

  let step t ~budget =
    if budget <= 0 then invalid_arg "Perseas.Checkpoint.step: budget must be positive";
    let tg = require_target t "step" in
    let p = require_inflight t "step" in
    with_target t (fun () -> ship t tg p ~budget)

  let abandon t = t.ckpt_inflight <- None

  let finalize t =
    let tg = require_target t "finalize" in
    let p = require_inflight t "finalize" in
    if t.flushing then failwith "Perseas.Checkpoint.finalize: commit propagation in flight";
    flush t;
    if Trace.Sink.enabled t.sink then
      Trace.Sink.instant t.sink ~cat:"ckpt" ~name:"cut" ~at:(Clock.now (clock t))
        ~args:[ ("phase", "finalize") ];
    let cut, truncated =
      with_target t @@ fun () ->
      ignore (ship t tg p ~budget:max_int);
      let offs, _ = seg_offsets t in
      let slot_off_of =
        let tbl = Hashtbl.create 8 in
        List.iter (fun (seg, o) -> Hashtbl.replace tbl seg.index (seg, o)) offs;
        fun index -> Hashtbl.find tbl index
      in
      let reship = ref 0 in
      (* Bring the snapshot to the cut: re-ship every range committed
         (or conservatively dirtied by an abort) since the snapshot
         began.  If the dirty log's floor rose past the start epoch
         (overflow), what changed is unknowable — re-ship the images
         whole. *)
      if p.p_started_epoch >= t.dirty_floor then
        List.iter
          (fun (seg_index, ranges) ->
            let seg, slot_off = slot_off_of seg_index in
            List.iter
              (fun (off, len) ->
                slot_write t tg ~slot:p.p_slot ~off:(slot_off + off)
                  ~src_off:(Mem.Segment.base seg.local + off) ~len;
                reship := !reship + len)
              ranges)
          (ranges_since t ~since:p.p_started_epoch)
      else
        List.iter
          (fun (seg, slot_off) ->
            slot_write t tg ~slot:p.p_slot ~off:slot_off ~src_off:(Mem.Segment.base seg.local)
              ~len:seg.size;
            reship := !reship + seg.size)
          offs;
      (* Scrub in-flight transactions out of the snapshot: overwrite
         their declared ranges with the before-images from the undo
         staging, so the slot holds committed state only (the in-flight
         txn fence of the cut). *)
      List.iter
        (fun txn ->
          List.iter
            (fun r ->
              let _, slot_off = slot_off_of r.r_seg.index in
              slot_write t tg ~slot:p.p_slot ~off:(slot_off + r.r_off)
                ~src_off:(Mem.Segment.base t.undo_local + r.staging_off) ~len:r.r_len;
              reship := !reship + r.r_len)
            txn.ranges)
        t.open_txns;
      t.st_ckpt_bytes <- t.st_ckpt_bytes + !reship;
      let cut = t.epoch in
      publish t tg p ~cut;
      (* Publication done — truncate local recovery state up to the
         cut, in that order: a crash between publish and truncation
         only costs replaying state the checkpoint already covers. *)
      let hwm_before = t.st_undo_hwm in
      compact_log t;
      let truncated = max 0 (hwm_before - t.undo_tail) in
      t.st_log_truncated <- t.st_log_truncated + truncated;
      t.st_undo_hwm <- t.undo_tail;
      (cut, truncated)
    in
    (* Dirty log: fold entries at or before the cut into the summary
       that keeps [ranges_since] complete for incremental resync. *)
    let rec split kept = function
      | d :: rest when d.d_epoch > cut -> split (d :: kept) rest
      | old -> (List.rev kept, old)
    in
    let kept, old = split [] t.dirty in
    if old <> [] then begin
      t.dirty <- kept;
      t.dirty_count <- List.length kept;
      let add acc d =
        let prev = Option.value (Imap.find_opt d.d_seg acc) ~default:Iset.empty in
        Imap.add d.d_seg (Iset.add prev ~off:d.d_off ~len:d.d_len) acc
      in
      (* Bound the summary: glue to SCI lines and, past 64 intervals
         per segment, collapse to the hull — over-copying on resync is
         safe, an unbounded interval list is the bug being fixed. *)
      let cap is =
        let is = Iset.glue is ~align:64 in
        if Iset.cardinal is <= 64 then is
        else
          match Iset.intervals is with
          | [] -> is
          | (o0, l0) :: rest ->
              let last = List.fold_left (fun _ (o, l) -> o + l) (o0 + l0) rest in
              Iset.add Iset.empty ~off:o0 ~len:(last - o0)
      in
      t.ckpt_summary <- Imap.map cap (List.fold_left add t.ckpt_summary old);
      t.ckpt_summary_upto <- max t.ckpt_summary_upto cut
    end;
    (* Retired-epoch table: entries below the dirty floor can never be
       resynced incrementally anyway — drop them. *)
    let dead =
      Hashtbl.fold (fun id e acc -> if e < t.dirty_floor then id :: acc else acc) t.retired []
    in
    List.iter (Hashtbl.remove t.retired) dead;
    t.ckpt_gen <- p.p_gen;
    t.ckpt_inflight <- None;
    t.st_ckpts <- t.st_ckpts + 1;
    Trace.Gauge.set t.g_undo_tail t.undo_tail;
    (cut, truncated)

  let take t =
    start t;
    finalize t

  (* Background checkpointer, riding the event queue like the telemetry
     sampler: each tick starts a checkpoint, ships one budget's worth
     of bytes, or finalizes — so a full checkpoint spreads over many
     ticks with commits interleaving (genuinely fuzzy).  A lost target
     ends the loop's work silently (the typed error already cleared the
     target); the ticks keep firing but find nothing to do. *)
  let auto t ~events ~interval ~until ~budget =
    if budget <= 0 then invalid_arg "Perseas.Checkpoint.auto: budget must be positive";
    Events.every events ~interval ~until (fun _now ->
        (* Skip ticks while every mirror is out: start/finalize quiesce
           the group-commit queue, and flushing a staged convoy with no
           mirror raises All_mirrors_lost — the checkpoint can wait for
           the tick after the cluster heals. *)
        if (not t.flushing) && t.ckpt_target <> None && live_mirror_list t <> [] then
          try
            match t.ckpt_inflight with
            | None -> start t
            | Some _ -> if step t ~budget then ignore (finalize t)
          with Target_lost _ -> ())
end

(* ------------------------------------------------------------------ *)
(* Recovery                                                             *)

let required what = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "Perseas.recover: %s not found on the memory server" what)

(* Probe one candidate mirror server: its epoch if it holds a readable
   PERSEAS metadata segment. *)
let probe_server ~cluster ~local ~ns server =
  if not (Netram.Server.is_alive server) then None
  else
    let client = Client.create ~cluster ~local ~server in
    match Client.connect client ~name:(Layout.meta_name ~ns) with
    | None -> None
    | Some meta ->
        let image = Node.dram (Netram.Server.node server) in
        let header =
          Mem.Image.read_bytes image ~off:(Remote_segment.base meta) ~len:Layout.meta_header_size
        in
        if Layout.read_meta_magic header <> Layout.meta_magic then None
        else Some (client, meta, Layout.read_epoch header)

let recover_replicated ?(config = default_config) ?(sink = Trace.Sink.noop) ?on_repair ?checkpoint
    ?(helpers = []) ~cluster ~local ~servers () =
  if servers = [] then invalid_arg "Perseas.recover: no candidate servers";
  (* Recovery phases are traced as contiguous [recovery] spans: each
     [mark] closes the phase that began where the previous one ended,
     so the four spans partition recovery's whole virtual extent. *)
  let phase_start = ref (Clock.now (Cluster.clock cluster)) in
  let mark name =
    if Trace.Sink.enabled sink then begin
      let stop = Clock.now (Cluster.clock cluster) in
      Trace.Sink.span sink ~cat:"recovery" ~name ~start:!phase_start ~stop;
      phase_start := stop
    end
  in
  let candidates =
    List.filter_map (probe_server ~cluster ~local ~ns:config.namespace) servers
  in
  mark "probe";
  (* Trust the mirror that reached the highest epoch: it is the only
     one that may have seen the latest commit point.  A candidate whose
     metadata turns out to be unusable (e.g. a fresh mirror that was
     halfway through attach_mirror's resync when the crash hit: magic
     and epoch landed, segment table did not) is skipped and the
     next-best epoch is tried — a torn copy must not veto recovery from
     an intact one.  The sort is stable so equal epochs keep the
     caller's server order. *)
  let ranked = List.stable_sort (fun (_, _, a) (_, _, b) -> compare b a) candidates in
  let nic = Cluster.nic cluster in
  let p = Sci.Nic.params nic in
  let clk = Cluster.clock cluster in
  let validate (client, meta_remote, current_epoch) =
    let server = Client.server client in
    let node_id = Node.id (Netram.Server.node server) in
    try
      let hops = max 1 (Cluster.hops cluster ~src:local ~dst:node_id) in
      let undo_remote =
        required "undo segment"
          (Client.connect client ~name:(Layout.undo_name ~ns:config.namespace))
      in
      let remote_image = Node.dram (Netram.Server.node server) in
      let meta_bytes =
        Mem.Image.read_bytes remote_image ~off:(Remote_segment.base meta_remote)
          ~len:(Remote_segment.len meta_remote)
      in
      (* Charge the remote read that fetches the metadata segment. *)
      Clock.advance clk
        (Sci.Model.read_range p ~hops ~off:(Remote_segment.base meta_remote)
           ~len:(Remote_segment.len meta_remote) ());
      let nsegs = Layout.read_nsegs meta_bytes in
      if nsegs < 0 || nsegs > config.max_segments then
        failwith "Perseas.recover: corrupt segment count";
      let table = List.init nsegs (fun index -> Layout.read_table_entry meta_bytes ~index) in
      let remotes =
        List.map
          (fun (name, size) ->
            let h =
              required
                (Printf.sprintf "segment %S" name)
                (Client.connect client ~name:(Layout.db_export_name ~ns:config.namespace name))
            in
            if Remote_segment.len h <> size then
              failwith (Printf.sprintf "Perseas.recover: size mismatch for %S" name);
            (name, size, h))
          table
      in
      Some (client, server, hops, meta_remote, undo_remote, remote_image, current_epoch, meta_bytes, remotes)
    with Failure msg | Client.Unreachable msg ->
      Log.warn (fun k ->
          k "recovery: skipping candidate on node %d at epoch %Ld (%s)" node_id current_epoch msg);
      None
  in
  let rec first_usable = function
    | [] -> failwith "Perseas.recover: no server holds a recoverable database"
    | c :: rest -> ( match validate c with Some v -> v | None -> first_usable rest)
  in
  let client, server, hops, meta_remote, undo_remote, remote_image, current_epoch, meta_bytes, remotes =
    first_usable ranked
  in
  (* Repair a half-propagated commit: copy current-epoch before-images
     from the remote undo log back over the remote database, newest
     first.  These are local memory copies on the remote node.  The
     undo area is fetched lazily in 4 KiB chunks and the SCI read cost
     charged per chunk actually pulled: current-epoch records sit at
     the front of the log, so recovery reads (and pays for) only the
     prefix the scan walks, not the whole reserved region. *)
  let undo_len = Remote_segment.len undo_remote in
  let undo_base = Remote_segment.base undo_remote in
  let undo_bytes = Bytes.create undo_len in
  let fetch_chunk = 4096 in
  let fetched = ref 0 in
  let ensure_fetched upto =
    let upto = min ((upto + fetch_chunk - 1) / fetch_chunk * fetch_chunk) undo_len in
    if upto > !fetched then begin
      let len = upto - !fetched in
      let b = Mem.Image.read_bytes remote_image ~off:(undo_base + !fetched) ~len in
      Bytes.blit b 0 undo_bytes !fetched len;
      Clock.advance clk (Sci.Model.read_range p ~hops ~off:(undo_base + !fetched) ~len ());
      fetched := upto
    end
  in
  (* Undo records of the current epoch, oldest-first with their
     headers.  The scan walks PAST intact records with a stale epoch
     tag — under concurrency, open transactions' records (tagged with
     the epoch they were cut in) sit interleaved with the batch being
     flushed — and stops only at a torn or undecodable record: the
     checksum covers the payload, so a crash mid-push can never leave a
     verifiable record with garbage behind it.  A stale record can
     never alias the current epoch because epochs only ever advance
     past their fence. *)
  (* The chain's slot stride is the one the crashed engine's config
     chose (eager: 64-byte slots pushed in place; group: the packed
     chain a flush ships) — recovery is handed that config, so the walk
     and the writer can never disagree. *)
  let slot_after =
    if config.group_commit <= 1 then Layout.undo_slot else Layout.undo_slot_packed
  in
  let records =
    let rec walk acc off =
      if off + Layout.undo_header_size > undo_len then List.rev acc
      else begin
        ensure_fetched (off + Layout.undo_header_size);
        match Layout.decode_undo_header undo_bytes ~off with
        | Some h ->
            ensure_fetched (off + Layout.undo_header_size + h.Layout.len);
            if Layout.verify_undo undo_bytes ~off h then
              let acc = if h.Layout.epoch = current_epoch then (off, h) :: acc else acc in
              walk acc (slot_after ~off ~payload_len:h.Layout.len)
            else List.rev acc
        | None -> List.rev acc
      end
    in
    walk [] 0
  in
  let nremotes = List.length remotes in
  List.iter
    (fun (off, (h : Layout.undo_header)) ->
      if h.seg_index < 0 || h.seg_index >= nremotes then
        failwith
          (Printf.sprintf "Perseas.recover: undo record names unknown segment %d (database has %d)"
             h.seg_index nremotes);
      let name, _, handle = List.nth remotes h.seg_index in
      if h.off + h.len <= Remote_segment.len handle then begin
        let payload_off = undo_base + off + Layout.undo_header_size in
        Mem.Image.blit ~src:remote_image ~src_off:payload_off ~dst:remote_image
          ~dst_off:(Remote_segment.base handle + h.off) ~len:h.len;
        Clock.advance clk (Sci.Model.local_copy p h.len);
        match on_repair with Some f -> f ~name ~len:h.len | None -> ()
      end)
    (List.rev records);
  (* Invalidate the applied records by bumping the epoch remotely. *)
  let new_epoch = Int64.add current_epoch 1L in
  Mem.Image.write_u64 remote_image (Remote_segment.base meta_remote + Layout.epoch_offset) new_epoch;
  Clock.advance (Cluster.clock cluster) (Sci.Model.local_copy p 8);
  mark "repair";
  (* Build the new library instance and fetch every segment with one
     remote-to-local copy (paper, end of section 3). *)
  let t =
    {
      config;
      cluster;
      local_id = local;
      mirrors = [| { m_client = client; m_meta = meta_remote; m_undo = undo_remote; m_alive = true } |];
      segs = [];
      meta_local = Mem.Segment.v ~base:0 ~len:1;
      undo_local = Mem.Segment.v ~base:0 ~len:1;
      epoch = new_epoch;
      ready = true;
      open_txns = [];
      staged = [];
      next_txn_id = 1;
      undo_tail = 0;
      flushing = false;
      convoy_seq = 0;
      hook = None;
      sink;
      tel = Trace.Timeseries.noop;
      g_undo_tail = Trace.Timeseries.gauge Trace.Timeseries.noop "";
      g_group_size = Trace.Timeseries.gauge Trace.Timeseries.noop "";
      repl_target = 1;
      degraded_since = None;
      st_degraded = Time.zero;
      retired = Hashtbl.create 8;
      dirty = [];
      dirty_count = 0;
      dirty_floor = new_epoch;
      ckpt_target = None;
      ckpt_inflight = None;
      ckpt_gen = 0L;
      ckpt_summary = Imap.empty;
      ckpt_summary_upto = 0L;
      st_ckpts = 0;
      st_ckpt_bytes = 0;
      st_log_truncated = 0;
      st_begun = 0;
      st_committed = 0;
      st_aborted = 0;
      st_set_ranges = 0;
      st_undo_bytes = 0;
      st_elided_bytes = 0;
      st_undo_hwm = 0;
      st_coalesced_ranges = 0;
      st_commit_saved = 0;
      st_local_copy_bytes = 0;
      st_mirrors_lost = 0;
      st_mirrors_recruited = 0;
      st_resync_bytes = 0;
      st_conflicts = 0;
      st_group_flushes = 0;
      st_group_txns = 0;
    }
  in
  t.meta_local <- alloc_local t (meta_size t) "metadata staging";
  t.undo_local <- alloc_local t config.undo_capacity "undo log";
  write_meta_staging t;
  let use_new = checkpoint <> None || helpers <> [] in
  (if not use_new then
     t.segs <-
       List.rev
         (List.mapi
            (fun index (name, size, handle) ->
              let local = alloc_local t size (Printf.sprintf "segment %S" name) in
              Client.read client handle ~seg_off:0 ~dst_off:(Mem.Segment.base local) ~len:size;
              { seg_name = name; index; size; local; remotes = [| handle |]; last_mod = 0L })
            remotes)
   else begin
     let msize = Layout.meta_size ~max_segments:config.max_segments in
     let seg_offs, slot_size =
       ckpt_offsets ~meta_size:msize (List.map (fun (_, size, _) -> size) remotes)
     in
     let table_matches header =
       List.for_all
         (fun (index, name, size) ->
           match Layout.read_table_entry header ~index with
           | n, s -> n = name && s = size
           | exception Failure _ -> false)
         (List.mapi (fun i (n, s, _) -> (i, n, s)) remotes)
     in
     let nsegs_expected = List.length remotes in
     (* Probe for the newest valid checkpoint slot: directory
        generation, magic fence, a cut no newer than the chosen
        mirror's epoch, and a segment table matching the mirror's
        exactly.  A torn or stale slot (the magic word is zeroed before
        the first snapshot byte and re-written strictly last) falls
        back to the previous generation, and failing that to plain
        mirror fetch. *)
     let probe_ram cserver =
       if not (Netram.Server.is_alive cserver) then None
       else
         let cnode = Node.id (Netram.Server.node cserver) in
         let cimage = Node.dram (Netram.Server.node cserver) in
         let chops =
           if cnode = local then 0 else max 1 (Cluster.hops cluster ~src:local ~dst:cnode)
         in
         let charge ~off ~len =
           if cnode = local then Clock.advance clk (Sci.Model.local_copy p len)
           else Clock.advance clk (Sci.Model.read_range p ~hops:chops ~off ~len ())
         in
         match Netram.Server.lookup cserver ~name:(Layout.ckpt_dir_name ~ns:config.namespace) with
         | None -> None
         | Some dir ->
             let dgen = Mem.Image.read_u64 cimage (Remote_segment.base dir) in
             charge ~off:(Remote_segment.base dir) ~len:8;
             let try_gen gen =
               if gen <= 0L then None
               else
                 match
                   Netram.Server.lookup cserver
                     ~name:
                       (Layout.ckpt_slot_name ~ns:config.namespace
                          ~slot:(Int64.to_int (Int64.rem gen 2L)))
                 with
                 | Some h when Remote_segment.len h = slot_size ->
                     let sbase = Remote_segment.base h in
                     let header = Mem.Image.read_bytes cimage ~off:sbase ~len:msize in
                     charge ~off:sbase ~len:msize;
                     let cut = Layout.read_epoch header in
                     if
                       Layout.read_meta_magic header <> Layout.meta_magic
                       || cut > current_epoch
                       || Layout.read_nsegs header <> nsegs_expected
                       || not (table_matches header)
                     then None
                     else Some (cut, `Ram (cnode, cimage, sbase, chops, dir))
                 | _ -> None
             in
             (match try_gen dgen with Some r -> Some r | None -> try_gen (Int64.pred dgen))
     in
     let probe_disk device =
       let dirb = Disk.Device.read device ~off:0 ~len:Layout.ckpt_dir_size in
       let dgen = Bytes.get_int64_le dirb 0 in
       if Int64.to_int (Bytes.get_int64_le dirb 8) <> slot_size then None
       else
         let try_gen gen =
           if gen <= 0L then None
           else
             let sbase = Layout.ckpt_dir_size + (Int64.to_int (Int64.rem gen 2L) * slot_size) in
             if sbase + slot_size > Disk.Device.capacity device then None
             else
               let header = Disk.Device.read device ~off:sbase ~len:msize in
               let cut = Layout.read_epoch header in
               if
                 Layout.read_meta_magic header <> Layout.meta_magic
                 || cut > current_epoch
                 || Layout.read_nsegs header <> nsegs_expected
                 || not (table_matches header)
               then None
               else Some (cut, `Disk (device, sbase))
         in
         (match try_gen dgen with Some r -> Some r | None -> try_gen (Int64.pred dgen))
     in
     (* The mirror's metadata says whether the per-segment modification
        epochs were being maintained when the primary died; without the
        live word no checkpoint can be proven current for any segment,
        and recovery falls back to mirror fetch. *)
     let ckpt =
       if not (Layout.read_ckpt_live meta_bytes) then None
       else
         match checkpoint with
         | Some (Ram_source s) -> probe_ram s
         | Some (Disk_source d) -> probe_disk d
         | None -> None
     in
     let last_mod index = Layout.read_table_entry_epoch meta_bytes ~index in
     (* Parallel fetch: helper nodes each pull a share of the remote
        reads, so segment fetch costs round-robin across 1 + N streams
        and virtual time advances by the slowest stream plus one
        coordination round trip per helper.  Stream costs are charged
        at this node's hop count — a deliberate simplification: the
        helpers sit on the same SCI ring. *)
     let nstreams = 1 + List.length helpers in
     let streams = Array.make nstreams Time.zero in
     let cursor = ref 0 in
     let assign cost =
       streams.(!cursor) <- streams.(!cursor) + cost;
       cursor := (!cursor + 1) mod nstreams
     in
     let local_image = local_dram t in
     t.segs <-
       List.rev
         (List.mapi
            (fun index ((name, size, handle), slot_off) ->
              let use_ckpt =
                (* The segment is current in the checkpoint iff nothing
                   committed into it after the cut.  The epoch column is
                   pushed before the commit fence, so a crash between
                   the two leaves the column ahead — erring toward the
                   mirror, never toward a stale snapshot. *)
                match ckpt with Some (cut, _) -> last_mod index <= cut | None -> false
              in
              let local =
                match (use_ckpt, ckpt) with
                | true, Some (_, `Ram (cnode, _, sbase, _, _)) when cnode = local ->
                    (* Zero-copy adoption: the slot lives in this node's
                       DRAM, so the recovered database takes ownership
                       of the bytes in place — O(1) per segment, which
                       is what makes recovery time flat in the database
                       size. *)
                    Mem.Segment.v ~base:(sbase + slot_off) ~len:size
                | true, Some (_, `Ram (_, cimage, sbase, chops, _)) ->
                    let seg_local = alloc_local t size (Printf.sprintf "segment %S" name) in
                    Mem.Image.blit ~src:cimage ~src_off:(sbase + slot_off) ~dst:local_image
                      ~dst_off:(Mem.Segment.base seg_local) ~len:size;
                    assign (Sci.Model.read_range p ~hops:chops ~off:(sbase + slot_off) ~len:size ());
                    seg_local
                | true, Some (_, `Disk (device, sbase)) ->
                    let seg_local = alloc_local t size (Printf.sprintf "segment %S" name) in
                    Mem.Image.write_bytes local_image ~off:(Mem.Segment.base seg_local)
                      (Disk.Device.read device ~off:(sbase + slot_off) ~len:size);
                    seg_local
                | _ ->
                    let seg_local = alloc_local t size (Printf.sprintf "segment %S" name) in
                    Mem.Image.blit ~src:remote_image ~src_off:(Remote_segment.base handle)
                      ~dst:local_image ~dst_off:(Mem.Segment.base seg_local) ~len:size;
                    assign
                      (Sci.Model.read_range p ~hops ~off:(Remote_segment.base handle) ~len:size ());
                    seg_local
              in
              { seg_name = name; index; size; local; remotes = [| handle |]; last_mod = 0L })
            (List.combine remotes seg_offs));
     Clock.advance clk (Array.fold_left max Time.zero streams);
     List.iter (fun _ -> Clock.advance clk (Client.rpc_time client)) helpers;
     (* After in-place adoption the slot region IS the live database:
        invalidate the local directory so no later recovery can mistake
        it for a checkpoint again. *)
     match ckpt with
     | Some (_, `Ram (cnode, cimage, _, _, dir)) when cnode = local ->
         Mem.Image.write_u64 cimage (Remote_segment.base dir) 0L
     | _ -> ()
   end);
  mark "fetch_db";
  (* Re-establish the remaining mirrors: the survivors may be behind
     (their epoch writes were cut by the crash), so they get a full
     resync — which attach_mirror performs. *)
  List.iter
    (fun s ->
      if Netram.Server.is_alive s && Node.id (Netram.Server.node s) <> Node.id (Netram.Server.node server)
      then
        try attach_mirror t ~server:s
        with Failure msg | Client.Unreachable msg ->
          Log.warn (fun k ->
              k "could not re-attach mirror on node %d during recovery: %s"
                (Node.id (Netram.Server.node s)) msg))
    servers;
  mark "resync_mirrors";
  (* Whatever factor recovery achieved is the new baseline; degraded
     accounting starts from here (a supervisor may raise it again). *)
  t.repl_target <- max 1 (mirror_count t);
  t

let recover ?config ?sink ?on_repair ?checkpoint ?helpers ~cluster ~local ~server () =
  recover_replicated ?config ?sink ?on_repair ?checkpoint ?helpers ~cluster ~local
    ~servers:[ server ] ()

(* ------------------------------------------------------------------ *)
(* Archive: graceful shutdown to stable storage (paper, section 1:
   scheduled shutdowns are the one case where the whole cluster may go
   down, so the database writes itself out first). *)

let archive t device =
  if t.flushing then failwith "Perseas.archive: commit propagation in flight";
  flush t;
  (* Open transactions' uncommitted bytes live in the local image the
     archive would copy out, so — unlike mirror membership changes —
     archiving still insists on full quiescence. *)
  if t.open_txns <> [] then failwith "Perseas.archive: close the open transactions first";
  if not t.ready then failwith "Perseas.archive: nothing to archive before init_remote_db";
  let image = local_dram t in
  let b = Bytes.make (meta_size t) '\000' in
  Layout.write_meta_magic b;
  Layout.write_epoch b t.epoch;
  Layout.write_nsegs b (List.length t.segs);
  List.iter (fun s -> Layout.write_table_entry b ~index:s.index ~name:s.seg_name ~size:s.size) t.segs;
  Disk.Device.write device ~off:0 b;
  let off = ref (meta_size t) in
  List.iter
    (fun seg ->
      if !off + seg.size > Disk.Device.capacity device then failwith "Perseas.archive: device too small";
      Disk.Device.write device ~off:!off
        (Mem.Image.read_bytes image ~off:(Mem.Segment.base seg.local) ~len:seg.size);
      off := !off + seg.size)
    (segments t)

let restore_from_archive ?(config = default_config) ~clients device =
  let meta = Disk.Device.read device ~off:0 ~len:(Layout.meta_size ~max_segments:config.max_segments) in
  if Layout.read_meta_magic meta <> Layout.meta_magic then
    failwith "Perseas.restore_from_archive: no archive on this device";
  let nsegs = Layout.read_nsegs meta in
  if nsegs < 0 || nsegs > config.max_segments then
    failwith "Perseas.restore_from_archive: corrupt segment count";
  let t = init_replicated ~config clients in
  let off = ref (meta_size t) in
  for index = 0 to nsegs - 1 do
    let name, size = Layout.read_table_entry meta ~index in
    let seg = malloc t ~name ~size in
    let data = Disk.Device.read device ~off:!off ~len:size in
    write t seg ~off:0 data;
    off := !off + size
  done;
  init_remote_db t;
  t

module Engine = struct
  type nonrec t = t
  type nonrec segment = segment
  type nonrec txn = txn

  let name = "PERSEAS"
  let malloc = malloc
  let find_segment = segment
  let init_done = init_remote_db
  let begin_transaction t = begin_transaction t
  let set_range txn seg ~off ~len = set_range txn seg ~off ~len
  let commit = commit
  let abort = abort
  let write = write
  let read = read
end

type db = t

(* ------------------------------------------------------------------ *)
(* Self-healing supervisor: failure detection + spare-pool recruitment *)

module Supervisor = struct
  type policy = {
    probe_interval : Time.t;
    max_attempts : int;
    backoff_initial : Time.t;
    backoff_factor : float;
  }

  let default_policy =
    { probe_interval = Time.us 50.0; max_attempts = 6; backoff_initial = Time.us 100.0; backoff_factor = 2.0 }

  type event =
    | Mirror_lost of { at : Time.t; node_id : int }
    | Recruited of { at : Time.t; node_id : int; report : resync_report }
    | Attempt_failed of { at : Time.t; node_id : int; attempt : int; reason : string }
    | Gave_up of { at : Time.t; node_id : int; attempts : int }

  type t = {
    db : db;
    policy : policy;
    target : int;
    mutable spares : Netram.Server.t list; (* FIFO: head is tried next *)
    mutable known_live : int list;
    mutable last_probe : Time.t option;
    mutable attempts : int; (* consecutive failed recruit attempts *)
    mutable retry_at : Time.t; (* no recruit attempts before this instant *)
    mutable gave_up : bool;
    mutable events : event list; (* newest first *)
  }

  let now sup = Clock.now (clock sup.db)

  let push sup e =
    sup.events <- e :: sup.events;
    let sink = sup.db.sink in
    if Trace.Sink.enabled sink then begin
      match e with
      | Mirror_lost { at; node_id } ->
          Trace.Sink.instant sink ~cat:"supervisor" ~name:"mirror_lost" ~at
            ~args:[ ("node", string_of_int node_id) ]
      | Recruited { at; node_id; report } ->
          Trace.Sink.instant sink ~cat:"supervisor" ~name:"recruited" ~at
            ~args:
              [
                ("node", string_of_int node_id);
                ("mode", (match report.mode with Full -> "full" | Incremental -> "incremental"));
                ("bytes", string_of_int report.bytes_copied);
              ]
      | Attempt_failed { at; node_id; attempt; reason } ->
          Trace.Sink.instant sink ~cat:"supervisor" ~name:"attempt_failed" ~at
            ~args:[ ("node", string_of_int node_id); ("attempt", string_of_int attempt); ("reason", reason) ]
      | Gave_up { at; node_id; attempts } ->
          Trace.Sink.instant sink ~cat:"supervisor" ~name:"gave_up" ~at
            ~args:[ ("node", string_of_int node_id); ("attempts", string_of_int attempts) ]
    end

  let create ?(policy = default_policy) ?target ?(spares = []) db =
    if policy.max_attempts <= 0 then invalid_arg "Supervisor.create: max_attempts must be positive";
    if policy.backoff_factor < 1.0 then invalid_arg "Supervisor.create: backoff_factor must be >= 1";
    let target = match target with Some n -> n | None -> mirror_count db in
    if target <= 0 then invalid_arg "Supervisor.create: target must be positive";
    (* The supervisor's target is THE replication target: align the
       engine's degraded-time accounting with it. *)
    set_replication_target db target;
    {
      db;
      policy;
      target;
      spares;
      known_live = live_mirrors db;
      last_probe = None;
      attempts = 0;
      retry_at = Time.zero;
      gave_up = false;
      events = [];
    }

  (* A fresh spare resets the retry budget: the pool changed, so the
     run of failures that exhausted it is no longer representative. *)
  let add_spare sup server =
    sup.spares <- sup.spares @ [ server ];
    sup.attempts <- 0;
    sup.retry_at <- now sup;
    sup.gave_up <- false

  let backoff_after sup =
    let d =
      float_of_int sup.policy.backoff_initial
      *. (sup.policy.backoff_factor ** float_of_int (sup.attempts - 1))
    in
    sup.retry_at <- now sup + int_of_float d

  (* One supervision step, meant to run at transaction boundaries.
     Cheap when nothing changed: probes at most once per
     [probe_interval], and only attempts recruitment when the
     replication factor is below target, a spare is available, and the
     backoff window has passed.  Never raises: a database that is
     merely degraded must keep committing. *)
  let tick sup =
    let db = sup.db in
    (* 1. Throttled liveness probe, so corpses are retired before the
       next commit half-writes to them. *)
    (match sup.last_probe with
    | Some at when now sup - at < sup.policy.probe_interval -> ()
    | _ ->
        sup.last_probe <- Some (now sup);
        ignore (probe_mirrors db));
    (* 2. Note losses — from our probe or from in-line drops since the
       last tick. *)
    let live = live_mirrors db in
    List.iter
      (fun id -> if not (List.mem id live) then push sup (Mirror_lost { at = now sup; node_id = id }))
      sup.known_live;
    sup.known_live <- live;
    (* 3. Repair: recruit spares until back at target, rotating flaky
       spares to the back of the pool with exponential backoff. *)
    let rec repair () =
      if (not sup.gave_up) && mirror_count db < sup.target && now sup >= sup.retry_at then
        match sup.spares with
        | [] -> ()
        | server :: rest ->
            let node_id = Node.id (Netram.Server.node server) in
            let outcome =
              try `Recruited (recruit_mirror db ~server) with
              | Invalid_argument _ ->
                  (* Already in the live set — e.g. a pause shorter
                     than a probe interval: a stale spare, not a
                     failure. *)
                  `Discard
              | Client.Unreachable msg | Failure msg -> `Failed msg
              | All_mirrors_lost -> `Failed "all mirrors lost during resync"
            in
            (match outcome with
            | `Recruited report ->
                sup.spares <- rest;
                sup.attempts <- 0;
                sup.known_live <- live_mirrors db;
                push sup (Recruited { at = now sup; node_id; report })
            | `Discard -> sup.spares <- rest
            | `Failed reason ->
                sup.attempts <- sup.attempts + 1;
                sup.spares <- rest @ [ server ];
                push sup (Attempt_failed { at = now sup; node_id; attempt = sup.attempts; reason });
                if sup.attempts >= sup.policy.max_attempts then begin
                  sup.gave_up <- true;
                  push sup (Gave_up { at = now sup; node_id; attempts = sup.attempts })
                end
                else backoff_after sup);
            repair ()
    in
    repair ()

  let events sup = List.rev sup.events
  let spares sup = List.map (fun s -> Node.id (Netram.Server.node s)) sup.spares
  let target sup = sup.target
  let gave_up sup = sup.gave_up
  let retry_at sup = sup.retry_at
  let degraded sup = mirror_count sup.db < sup.target

  (* Health gauges, refreshed at sample time only (pure observer). *)
  let set_telemetry sup tel =
    Trace.Timeseries.on_sample tel (fun _at ->
        Trace.Timeseries.set tel "sup.spares" (List.length sup.spares);
        Trace.Timeseries.set tel "sup.degraded" (if degraded sup then 1 else 0);
        Trace.Timeseries.set tel "sup.deficit" (max 0 (sup.target - mirror_count sup.db));
        Trace.Timeseries.set tel "sup.gave_up" (if sup.gave_up then 1 else 0))
end

(* ------------------------------------------------------------------ *)
(* Sharded multi-primary router with STAR-style phase switching *)

module Shard = struct
  module Map = Cluster.Shard_map
  module Phase = Cluster.Phase

  type member = {
    sh_id : int;
    mutable sh_db : db;
    mutable sh_committed : int; (* single-shard transactions routed here *)
  }

  type cross = {
    x_id : int;
    x_shards : int list; (* sorted, distinct *)
    x_run : (int -> db * txn) -> unit;
  }

  type router = {
    members : member array;
    map : Map.t;
    phase : Phase.t;
    mutable queue : cross list; (* FIFO: head drains first *)
    mutable next_xid : int;
    mutable st_cross : int; (* cross-shard transactions committed *)
    mutable st_cross_conflicts : int; (* drain attempts bounced by a conflict *)
  }

  type nonrec t = router

  type shard_stats = {
    per_shard : int array;
    cross_committed : int;
    cross_conflicts : int;
    backlog : int;
    switches : int; (* single-master phases entered *)
    phase_epoch : int;
  }

  let create ?strategy ?interval ?(master = 0) dbs =
    let n = Array.length dbs in
    if n < 1 then invalid_arg "Shard.create: at least one shard";
    if master < 0 || master >= n then invalid_arg "Shard.create: master out of range";
    {
      members = Array.mapi (fun i d -> { sh_id = i; sh_db = d; sh_committed = 0 }) dbs;
      map = Map.create ?strategy ~shards:n ();
      phase = Phase.create ?interval ~master ();
      queue = [];
      next_xid = 0;
      st_cross = 0;
      st_cross_conflicts = 0;
    }

  let shards sh = Array.length sh.members
  let db sh i = sh.members.(i).sh_db
  let replace sh ~shard d = sh.members.(shard).sh_db <- d
  let owner sh ~key = Map.owner sh.map ~key
  let map sh = sh.map
  let phase sh = sh.phase
  let master sh = Phase.master sh.phase
  let backlog sh = List.length sh.queue
  let epochs sh = Array.map (fun m -> m.sh_db.epoch) sh.members

  (* Each shard's primary runs on its own cluster and therefore its own
     virtual clock: between fences the clocks advance independently,
     which is exactly the model of [shards] workstations committing in
     parallel.  Cluster time is the frontier — the farthest any shard
     has gotten. *)
  let now sh =
    Array.fold_left (fun acc m -> max acc (Clock.now (clock m.sh_db))) Time.zero sh.members

  let sync_clocks sh =
    let frontier = now sh in
    Array.iter (fun m -> Clock.advance_to (clock m.sh_db) frontier) sh.members

  (* The phase fence: drain every shard's group-commit convoy (the
     existing [flush] path — epoch fence strictly last per mirror),
     then line the clocks up on the frontier.  After a fence every
     committed transaction on every shard is durable and no shard is
     mid-convoy, which is the quiescence the single-master phase
     needs. *)
  let fence sh =
    Array.iter (fun m -> flush m.sh_db) sh.members;
    sync_clocks sh

  let each_sink sh f =
    Array.iter (fun m -> if Trace.Sink.enabled m.sh_db.sink then f m.sh_db) sh.members

  let phase_instant sh kind =
    each_sink sh (fun d ->
        Trace.Sink.instant d.sink ~cat:"cluster" ~name:"phase_switch"
          ~at:(Clock.now (clock d))
          ~args:
            [
              ("phase", Phase.kind_label kind);
              ("pepoch", string_of_int (Phase.epoch sh.phase));
              ("master", string_of_int (Phase.master sh.phase));
            ])

  let cross_instant sh x =
    let shards_arg = String.concat "+" (List.map string_of_int x.x_shards) in
    List.iter
      (fun sid ->
        let d = sh.members.(sid).sh_db in
        if Trace.Sink.enabled d.sink then
          Trace.Sink.instant d.sink ~cat:"cluster" ~name:"cross_commit"
            ~at:(Clock.now (clock d))
            ~args:[ ("xid", string_of_int x.x_id); ("shards", shards_arg) ])
      x.x_shards

  (* Run one queued cross-shard transaction: open a sub-transaction on
     each involved shard on demand, run the body, then commit the
     sub-transactions in shard order.  A conflict with a still-open
     single-shard transaction aborts the opened subs and reports
     [`Conflicted] — the cross transaction stays queued for the next
     drain, by which point the older holder has committed. *)
  let run_cross sh x =
    let opened = ref [] in
    let get sid =
      if not (List.mem sid x.x_shards) then
        invalid_arg "Shard.submit_cross: body touched an undeclared shard";
      match List.assoc_opt sid !opened with
      | Some txn -> (sh.members.(sid).sh_db, txn)
      | None ->
          let txn =
            begin_transaction ~client:(Printf.sprintf "cross-%d" x.x_id) sh.members.(sid).sh_db
          in
          opened := (sid, txn) :: !opened;
          (sh.members.(sid).sh_db, txn)
    in
    match
      x.x_run get;
      List.iter
        (fun sid -> match List.assoc_opt sid !opened with Some txn -> commit txn | None -> ())
        x.x_shards
    with
    | () ->
        cross_instant sh x;
        `Committed
    | exception Conflict _ ->
        List.iter
          (fun (_, txn) -> match txn.state with Open -> abort txn | _ -> ())
          !opened;
        `Conflicted

  (* The single-master phase: fence into quiescence, declare the switch
     on every shard's trace stream, run the backlog serially on the
     synchronized clocks (the designated master executes; the involved
     shards' engines apply), fence the resulting convoys out, and
     switch back.  Commits of cross-shard transactions therefore land
     strictly inside the single-master window — the invariant
     {!Trace.Monitor} checks from the instants. *)
  let drain sh =
    if sh.queue = [] then 0
    else begin
      fence sh;
      Phase.begin_single_master sh.phase ~at:(now sh);
      phase_instant sh Phase.Single_master;
      let q = sh.queue in
      sh.queue <- [];
      let committed = ref 0 and requeued = ref [] in
      List.iter
        (fun x ->
          sync_clocks sh;
          match run_cross sh x with
          | `Committed -> incr committed
          | `Conflicted ->
              sh.st_cross_conflicts <- sh.st_cross_conflicts + 1;
              requeued := x :: !requeued)
        q;
      sh.st_cross <- sh.st_cross + !committed;
      sh.queue <- List.rev !requeued;
      fence sh;
      Phase.end_single_master sh.phase ~drained:!committed ~at:(now sh);
      phase_instant sh Phase.Partitioned;
      !committed
    end

  let tick sh = if Phase.due sh.phase ~now:(now sh) then ignore (drain sh)

  (* Single-shard fast path: route to the owner, commit on its primary.
     No other shard's clock moves — full parallelism in virtual time. *)
  let submit sh ~key body =
    tick sh;
    let s = owner sh ~key in
    let m = sh.members.(s) in
    let txn = begin_transaction m.sh_db in
    body m.sh_db txn;
    commit txn;
    m.sh_committed <- m.sh_committed + 1;
    s

  (* Cross-shard transactions queue for the next single-master phase
     rather than coordinating 2PC over network RAM. *)
  let submit_cross sh ~shards:involved body =
    let involved = List.sort_uniq compare involved in
    if involved = [] then invalid_arg "Shard.submit_cross: no shards";
    List.iter
      (fun s ->
        if s < 0 || s >= Array.length sh.members then
          invalid_arg "Shard.submit_cross: shard out of range")
      involved;
    let x = { x_id = sh.next_xid; x_shards = involved; x_run = body } in
    sh.next_xid <- sh.next_xid + 1;
    sh.queue <- sh.queue @ [ x ];
    Phase.enqueue sh.phase;
    tick sh;
    x.x_id

  let stats sh =
    {
      per_shard = Array.map (fun m -> m.sh_committed) sh.members;
      cross_committed = sh.st_cross;
      cross_conflicts = sh.st_cross_conflicts;
      backlog = List.length sh.queue;
      switches = Phase.single_master_phases sh.phase;
      phase_epoch = Phase.epoch sh.phase;
    }

  (* Per-shard and cluster-level gauges, refreshed at sample time only
     (pure observer, same contract as the engine's own telemetry). *)
  let set_telemetry sh tel =
    Trace.Timeseries.on_sample tel (fun _at ->
        Trace.Timeseries.set tel "cluster.backlog" (List.length sh.queue);
        Trace.Timeseries.set tel "cluster.phase"
          (match Phase.kind sh.phase with Phase.Partitioned -> 0 | Phase.Single_master -> 1);
        Trace.Timeseries.set tel "cluster.cross_committed" sh.st_cross;
        Trace.Timeseries.set tel "cluster.switches" (Phase.single_master_phases sh.phase);
        Array.iter
          (fun m ->
            let pfx = Printf.sprintf "shard%d." m.sh_id in
            Trace.Timeseries.set tel (pfx ^ "committed") m.sh_committed;
            Trace.Timeseries.set tel (pfx ^ "epoch") (Int64.to_int m.sh_db.epoch);
            Trace.Timeseries.set tel (pfx ^ "live_mirrors") (mirror_count m.sh_db))
          sh.members)
end
