(* An ordered set of disjoint byte intervals, the per-transaction
   write-set index behind redundancy elision (DESIGN.md).

   Representation: a map from interval start offset to its exclusive
   end.  The invariant is strict: intervals are non-empty, disjoint
   AND non-adjacent — [add] merges touching neighbours eagerly — so
   [intervals] is already the coalesced run list and [covers] is a
   single predecessor lookup. *)

module M = Map.Make (Int)

type t = int M.t  (* start offset -> exclusive end *)

let empty = M.empty
let is_empty = M.is_empty
let cardinal = M.cardinal

let check_range name ~off ~len =
  if off < 0 || len < 0 then
    invalid_arg (Printf.sprintf "Iset.%s: negative range (off=%d len=%d)" name off len)

let add t ~off ~len =
  check_range "add" ~off ~len;
  if len = 0 then t
  else begin
    let lo = ref off and hi = ref (off + len) in
    let t = ref t in
    (* Absorb the predecessor if it reaches (or touches) [lo]... *)
    (match M.find_last_opt (fun k -> k <= !lo) !t with
    | Some (k, e) when e >= !lo ->
        lo := k;
        hi := max !hi e;
        t := M.remove k !t
    | _ -> ());
    (* ... then every successor starting at or before (touching) [hi]. *)
    let rec absorb () =
      match M.find_first_opt (fun k -> k > !lo) !t with
      | Some (k, e) when k <= !hi ->
          hi := max !hi e;
          t := M.remove k !t;
          absorb ()
      | _ -> ()
    in
    absorb ();
    M.add !lo !hi !t
  end

let covers t ~off ~len =
  check_range "covers" ~off ~len;
  len = 0
  ||
  match M.find_last_opt (fun k -> k <= off) t with
  | Some (_, e) -> off + len <= e
  | None -> false

let uncovered t ~off ~len =
  check_range "uncovered" ~off ~len;
  let hi = off + len in
  let rec go pos acc =
    if pos >= hi then List.rev acc
    else
      match M.find_last_opt (fun k -> k <= pos) t with
      | Some (_, e) when e > pos -> go (min e hi) acc
      | _ ->
          (* [pos] is uncovered; the gap runs to the next interval. *)
          let gap_end =
            match M.find_first_opt (fun k -> k > pos) t with
            | Some (k, _) -> min k hi
            | None -> hi
          in
          go gap_end ((pos, gap_end - pos) :: acc)
  in
  go off []

let intervals t = M.fold (fun lo hi acc -> (lo, hi - lo) :: acc) t [] |> List.rev
let total t = M.fold (fun lo hi acc -> acc + (hi - lo)) t 0

let snap t ~align ~limit =
  if align <= 0 then invalid_arg "Iset.snap: align must be positive";
  if limit < 0 then invalid_arg "Iset.snap: negative limit";
  M.fold
    (fun lo hi acc ->
      let lo = lo / align * align in
      let hi = min limit ((hi + align - 1) / align * align) in
      add acc ~off:lo ~len:(hi - lo))
    t M.empty

let glue t ~align =
  if align <= 0 then invalid_arg "Iset.glue: align must be positive";
  match intervals t with
  | [] -> empty
  | (off0, len0) :: rest ->
      let flush acc lo hi = add acc ~off:lo ~len:(hi - lo) in
      (* Two runs whose [align]-byte line spans touch would share
         packets anyway: ship their exact hull as one run.  Runs in
         disjoint line spans keep their exact extents. *)
      let rec go acc lo hi = function
        | [] -> flush acc lo hi
        | (o, l) :: rest ->
            if (hi + align - 1) / align * align >= o / align * align then go acc lo (o + l) rest
            else go (flush acc lo hi) o (o + l) rest
      in
      go empty off0 (off0 + len0) rest

let intersects a b =
  (* Walk the smaller set, probing the larger with predecessor/successor
     lookups — O(min cardinal · log max cardinal). *)
  let small, large = if M.cardinal a <= M.cardinal b then (a, b) else (b, a) in
  M.exists
    (fun lo hi ->
      (match M.find_last_opt (fun k -> k <= lo) large with
      | Some (_, e) -> e > lo
      | None -> false)
      ||
      match M.find_first_opt (fun k -> k > lo) large with
      | Some (k, _) -> k < hi
      | None -> false)
    small

let union a b =
  let small, large = if M.cardinal a <= M.cardinal b then (a, b) else (b, a) in
  M.fold (fun lo hi acc -> add acc ~off:lo ~len:(hi - lo)) small large

let equal = M.equal Int.equal

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map (fun (off, len) -> Printf.sprintf "[%d,%d)" off (off + len)) (intervals t)))
