(** On-memory layouts of PERSEAS' recoverable metadata.

    Everything a recovering workstation needs lives in remote memory in
    these formats: the metadata segment (epoch + segment table) and the
    undo-log records.  Serialisation is to/from concrete bytes so that a
    node that has never seen the database can parse them after
    connecting with [sci_connect_segment]. *)

val meta_segment_name : string
(** Default-namespace metadata name, [meta_name ~ns:default_namespace]. *)

val undo_segment_name : string

val default_namespace : string

val valid_namespace : string -> bool
(** Non-empty, at most {!max_name_length} bytes, no ['!']. *)

val meta_name : ns:string -> string
val undo_name : ns:string -> string

val db_export_name : ?ns:string -> string -> string
(** Directory name of a database segment's mirror, within a namespace
    (several databases can then share one memory server).  Raises
    [Invalid_argument] on the empty string, names over
    {!max_name_length}, names containing ['!'] (reserved), or an
    invalid namespace. *)

val max_name_length : int

val ckpt_dir_name : ns:string -> string
(** Export name of the checkpoint directory block on a checkpoint
    target: {!ckpt_dir_size} bytes whose u64 word at offset 0 holds the
    generation of the newest published checkpoint (0 = none). *)

val ckpt_slot_name : ns:string -> slot:int -> string
(** Export name of checkpoint slot 0 or 1.  Generations alternate
    between the two slots so publishing a new checkpoint never corrupts
    the previous valid one. *)

val ckpt_dir_size : int

(** {1 Metadata segment} *)

val meta_magic : int64
val meta_header_size : int
(** magic, epoch, segment count. *)

val meta_table_entry_size : int
val meta_size : max_segments:int -> int

val write_meta_magic : bytes -> unit
val read_meta_magic : bytes -> int64
val epoch_offset : int
(** Byte offset of the epoch word inside the metadata segment — the
    8-byte field whose remote update is the commit point. *)

val write_epoch : bytes -> int64 -> unit
val read_epoch : bytes -> int64
val write_nsegs : bytes -> int -> unit
val read_nsegs : bytes -> int

val ckpt_live_offset : int
(** Byte offset of the checkpoint-tracking flag word: non-zero while
    the primary keeps the table's per-segment modification epochs
    current (a checkpoint target is attached).  Recovery only trusts
    those epochs for roll-forward when this word is set in the mirror's
    meta — a meta written by a primary with no target carries stale
    zeros there. *)

val write_ckpt_live : bytes -> bool -> unit
val read_ckpt_live : bytes -> bool

val table_epoch_off : index:int -> int
(** Byte offset of a table entry's last-modification epoch — the
    8-byte column commit propagation updates in place. *)

val write_table_entry : ?last_mod:int64 -> bytes -> index:int -> name:string -> size:int -> unit
val read_table_entry : bytes -> index:int -> string * int
(** Raises [Failure] on a corrupt entry. *)

val read_table_entry_epoch : bytes -> index:int -> int64
(** The entry's last-modification epoch column ([last_mod] as written;
    0 when the primary was not tracking). *)

(** {1 Undo records}

    A record is a 24-byte header followed by the before-image:
    epoch (8), segment index (4), offset (4), length (4), checksum (4,
    over header fields and payload).  Records start on aligned
    boundaries — {!undo_slot} (64-byte: the baselines, and PERSEAS in
    eager mode) or {!undo_slot_packed} (32-byte: PERSEAS under group
    commit) — so a log convoy streams as dense whole SCI buffers. *)

type undo_header = { epoch : int64; seg_index : int; off : int; len : int }

val align64 : int -> int
(** Round up to the next 64-byte (SCI line) boundary — also the
    alignment of segment images inside a checkpoint slot. *)

val undo_header_size : int
val undo_slot : off:int -> payload_len:int -> int
(** Offset of the next record given one at [off] with that payload. *)

val undo_slot_packed : off:int -> payload_len:int -> int
(** Like {!undo_slot} but on 32-byte boundaries: a small record (8-byte
    payload) takes half a 64-byte SCI line instead of a whole one, so a
    group-commit convoy streams the log twice as densely.  The engine
    that writes a log must walk it with the same slot arithmetic it
    appended with; PERSEAS picks the stride from [config.group_commit]
    (eager engines keep the 64-byte stride, whose line-aligned starts
    are what per-record pushes want), the baselines keep the
    original. *)

val encode_undo : undo_header -> payload:bytes -> bytes
(** Header and payload as one buffer, checksummed. *)

val encode_undo_header : undo_header -> payload:bytes -> bytes
(** The 24-byte header alone, checksummed over [payload] (which is not
    included in the result).  Group commit uses this to retag a staged
    record's epoch in place — the payload bytes are already in the log,
    only the header changes. *)

val decode_undo_header : bytes -> off:int -> undo_header option
(** [None] if the bytes at [off] cannot be a record header (bad sizes).
    The checksum still has to be verified against the payload with
    {!verify_undo}. *)

val verify_undo : bytes -> off:int -> undo_header -> bool
(** Checks the stored checksum against header + payload read from the
    same buffer. *)
