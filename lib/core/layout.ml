let max_name_length = 32
let default_namespace = "perseas"

let valid_namespace ns =
  ns <> "" && String.length ns <= max_name_length && not (String.contains ns '!')

let check_namespace ns =
  if not (valid_namespace ns) then invalid_arg (Printf.sprintf "Layout: invalid namespace %S" ns)

let meta_name ~ns =
  check_namespace ns;
  ns ^ "!meta"

let undo_name ~ns =
  check_namespace ns;
  ns ^ "!undo"

let meta_segment_name = meta_name ~ns:default_namespace
let undo_segment_name = undo_name ~ns:default_namespace

let db_export_name ?(ns = default_namespace) name =
  check_namespace ns;
  let n = String.length name in
  if n = 0 then invalid_arg "Layout.db_export_name: empty name";
  if n > max_name_length then invalid_arg "Layout.db_export_name: name too long";
  if String.contains name '!' then invalid_arg "Layout.db_export_name: '!' is reserved";
  ns ^ "!db!" ^ name

let ckpt_dir_name ~ns =
  check_namespace ns;
  ns ^ "!ckpt!dir"

let ckpt_slot_name ~ns ~slot =
  check_namespace ns;
  if slot < 0 || slot > 1 then invalid_arg "Layout.ckpt_slot_name: slot must be 0 or 1";
  ns ^ "!ckpt!" ^ string_of_int slot

let ckpt_dir_size = 64

let meta_magic = 0x5045525345415331L (* "PERSEAS1" *)
let meta_header_size = 24
let meta_table_entry_size = max_name_length + 16
let meta_size ~max_segments = 64 + (max_segments * meta_table_entry_size)

let write_meta_magic b = Bytes.set_int64_le b 0 meta_magic
let read_meta_magic b = Bytes.get_int64_le b 0
let epoch_offset = 8
let write_epoch b e = Bytes.set_int64_le b epoch_offset e
let read_epoch b = Bytes.get_int64_le b epoch_offset
let write_nsegs b n = Bytes.set_int64_le b 16 (Int64.of_int n)
let read_nsegs b = Int64.to_int (Bytes.get_int64_le b 16)

(* One word of the 24..63 reserved header region: non-zero while the
   primary maintains per-segment modification epochs (checkpoint target
   set), so recovery knows whether the table's epoch column can be
   trusted for roll-forward decisions. *)
let ckpt_live_offset = 24
let write_ckpt_live b v = Bytes.set_int64_le b ckpt_live_offset (if v then 1L else 0L)
let read_ckpt_live b = Bytes.get_int64_le b ckpt_live_offset <> 0L

let table_off index = 64 + (index * meta_table_entry_size)
let table_epoch_off ~index = table_off index + max_name_length + 8

let write_table_entry ?(last_mod = 0L) b ~index ~name ~size =
  let off = table_off index in
  Bytes.fill b off max_name_length '\000';
  Bytes.blit_string name 0 b off (String.length name);
  Bytes.set_int64_le b (off + max_name_length) (Int64.of_int size);
  Bytes.set_int64_le b (off + max_name_length + 8) last_mod

let read_table_entry_epoch b ~index = Bytes.get_int64_le b (table_epoch_off ~index)

let read_table_entry b ~index =
  let off = table_off index in
  let raw = Bytes.sub_string b off max_name_length in
  let name = match String.index_opt raw '\000' with Some i -> String.sub raw 0 i | None -> raw in
  let size = Int64.to_int (Bytes.get_int64_le b (off + max_name_length)) in
  if name = "" || size <= 0 then failwith "Layout.read_table_entry: corrupt entry";
  (name, size)

type undo_header = { epoch : int64; seg_index : int; off : int; len : int }

let undo_header_size = 24

let align64 x = (x + 63) land lnot 63
let undo_slot ~off ~payload_len = align64 (off + undo_header_size + payload_len)

let align32 x = (x + 31) land lnot 31
let undo_slot_packed ~off ~payload_len = align32 (off + undo_header_size + payload_len)

let fnv32 seed data off len =
  let h = ref seed in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get data i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let header_checksum_seed (h : undo_header) =
  let mix = Int64.to_int (Int64.logand h.epoch 0x3FFFFFFFL) in
  (0x811c9dc5 lxor mix lxor (h.seg_index * 131) lxor (h.off * 31) lxor (h.len * 7))
  land 0xFFFFFFFF

let encode_undo_header h ~payload =
  if Bytes.length payload <> h.len then
    invalid_arg "Layout.encode_undo_header: payload length mismatch";
  let b = Bytes.create undo_header_size in
  Bytes.set_int64_le b 0 h.epoch;
  Bytes.set_int32_le b 8 (Int32.of_int h.seg_index);
  Bytes.set_int32_le b 12 (Int32.of_int h.off);
  Bytes.set_int32_le b 16 (Int32.of_int h.len);
  let crc = fnv32 (header_checksum_seed h) payload 0 h.len in
  Bytes.set_int32_le b 20 (Int32.of_int crc);
  b

let encode_undo h ~payload =
  if Bytes.length payload <> h.len then invalid_arg "Layout.encode_undo: payload length mismatch";
  let b = Bytes.create (undo_header_size + h.len) in
  Bytes.blit (encode_undo_header h ~payload) 0 b 0 undo_header_size;
  Bytes.blit payload 0 b undo_header_size h.len;
  b

let decode_undo_header b ~off =
  if off < 0 || off + undo_header_size > Bytes.length b then None
  else
    let epoch = Bytes.get_int64_le b off in
    let seg_index = Int32.to_int (Bytes.get_int32_le b (off + 8)) in
    let off' = Int32.to_int (Bytes.get_int32_le b (off + 12)) in
    let len = Int32.to_int (Bytes.get_int32_le b (off + 16)) in
    if seg_index < 0 || off' < 0 || len <= 0 || off + undo_header_size + len > Bytes.length b then None
    else Some { epoch; seg_index; off = off'; len }

let verify_undo b ~off (h : undo_header) =
  let stored = Int32.to_int (Bytes.get_int32_le b (off + 20)) land 0xFFFFFFFF in
  let crc = fnv32 (header_checksum_seed h) b (off + undo_header_size) h.len in
  stored = crc
