open Sim

(** Client side of the reliable network RAM (the [sci_*] functions of
    §4: [sci_get_new_segment], [sci_free_segment], [sci_memcpy],
    [sci_connect_segment]).

    A client runs on a local node and talks to a {!Server} on a remote
    node over the cluster's SCI ring.  Requests (malloc/free/connect)
    are round-trip messages; data movement ([memcpy]) is raw remote
    memory access through the mapped segment, packet by packet. *)

type t

exception Unreachable of string
(** The memory server cannot be reached: its node is down, or it
    rebooted since the segment was mapped (so the mapping — and the
    bytes behind it — no longer exist).  Every data-movement and
    control call raises this instead of a generic [Failure] so that
    callers implementing degraded modes (e.g. PERSEAS dropping a dead
    mirror) can match on liveness errors without masking genuine bugs. *)

val create : cluster:Cluster.t -> local:int -> server:Server.t -> t
(** [local] is the id of the node the client runs on.  Raises
    [Invalid_argument] if client and server share a node. *)

val cluster : t -> Cluster.t
val local_node : t -> Cluster.Node.t
val server : t -> Server.t
val hops : t -> int

val malloc : t -> name:string -> size:int -> Remote_segment.t
(** [sci_get_new_segment]: round trip to the server, which exports a
    fresh 64-byte-aligned segment and maps it for us. *)

val free : t -> Remote_segment.t -> unit
(** [sci_free_segment]. *)

val connect : t -> name:string -> Remote_segment.t option
(** [sci_connect_segment]: re-map an already-exported segment after a
    client crash (or from a different workstation during recovery). *)

val ping : t -> bool
(** Liveness probe: one control round trip (charged {!rpc_time} whether
    it succeeds or times out).  [false] when the server is unreachable —
    node down, rebooted, or transiently partitioned — instead of
    raising, so failure detectors can poll without exception plumbing. *)

(** {1 Data movement}

    All offsets are relative to the segment base.  Every call checks
    the handle is fresh and the range in bounds, moves real bytes, and
    charges the SCI model's virtual time.  Calls through a dead or
    rebooted server raise {!Unreachable}. *)

val write : t -> Remote_segment.t -> seg_off:int -> src_off:int -> len:int -> unit
(** [sci_memcpy] local→remote: copies from the local node's DRAM at
    [src_off] into the remote segment, with the §4 64-byte-alignment
    optimisation (the widening window is the segment itself). *)

val write_raw : t -> Remote_segment.t -> seg_off:int -> src_off:int -> len:int -> unit
(** Same, but without the alignment widening — the naive memcpy used by
    the A2 ablation. *)

val plan_write : t -> ?widen:bool -> Remote_segment.t -> seg_off:int -> src_off:int -> len:int -> Sci.Nic.plan
(** The packet-level plan of {!write}, for fault injection. *)

val plan_convoy :
  t -> (string * bool * Remote_segment.t * int * int * int) list -> Sci.Nic.plan
(** Several writes to this client's server fused into one burst
    ({!Sci.Nic.plan_convoy}): each element is
    [(tag, widen, handle, seg_off, src_off, len)], checked like
    {!write}.  Group commit ships a whole batch's undo records and
    data runs to a mirror as two such convoys. *)

val read : t -> Remote_segment.t -> seg_off:int -> dst_off:int -> len:int -> unit
(** Remote→local copy (recovery path). *)

val read_to_image : t -> Remote_segment.t -> seg_off:int -> dst:Mem.Image.t -> dst_off:int -> len:int -> unit
(** Remote→arbitrary-image copy; recovery onto a {e different} node
    reads into that node's DRAM. *)

val write_u64 : t -> Remote_segment.t -> seg_off:int -> int64 -> unit
(** One small remote store (a single 16-byte SCI packet — atomic). *)

val read_u64 : t -> Remote_segment.t -> seg_off:int -> int64

val rpc_time : t -> Time.t
(** Virtual cost of one control round trip (charged by malloc/free/
    connect). *)
