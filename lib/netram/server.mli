(** The memory server process (paper §4).

    Runs on the remote workstation; accepts [remote malloc] and
    [remote free] requests and manipulates its node's physical memory,
    keeping a directory of exported segments by name so that a client
    that crashed — or a brand-new workstation taking over recovery —
    can reconnect to existing segments with [connect_segment].

    The directory lives with the server process: if the {e server's}
    node crashes, exports are gone (and so are the mirrored bytes); the
    client-side library is what survives that case, by re-mirroring. *)

type t

val create : Cluster.Node.t -> t
(** Start a server on a node.  Raises [Failure] if the node is down. *)

val node : t -> Cluster.Node.t

val is_alive : t -> bool
(** False once the hosting node has crashed (even after restart: a
    restarted node needs a fresh server and has lost all exports), and
    while the server is {!pause}d. *)

val pause : t -> unit
(** Model a transient outage — a network partition, an overloaded or
    wedged server process: clients see {!Client.Unreachable} exactly as
    for a crash, but the node stays up, so the exported segments (and
    the bytes behind them) survive.  {!resume} ends the outage with the
    directory intact — the case PERSEAS' incremental resync exploits. *)

val resume : t -> unit
(** End a {!pause}.  A server whose node crashed stays dead. *)

val is_paused : t -> bool

val set_telemetry : t -> Trace.Timeseries.t -> label:string -> unit
(** Register a sample-time probe exporting [netram.<label>.alive] and
    [netram.<label>.paused] (0/1) gauges — the server's liveness as a
    time series.  Pure observer; no-op on a disabled timeseries. *)

val export : t -> name:string -> size:int -> Remote_segment.t
(** Allocate [size] bytes of the node's memory (64-byte aligned, so
    mirrored copies packetise as whole SCI buffers) and register them
    under [name].  Raises [Failure] if the server is dead, the name is
    taken, or memory is exhausted. *)

val release : t -> Remote_segment.t -> unit
(** Free an exported segment.  Raises [Failure] on a stale handle or
    unknown export. *)

val lookup : t -> name:string -> Remote_segment.t option
(** The [connect_segment] directory query. *)

val is_exported : t -> Remote_segment.t -> bool
(** Whether the handle still maps an exported segment (false after
    {!release} — the mapping is revoked). *)

val exports : t -> Remote_segment.t list
val exported_bytes : t -> int
