open Sim
module Node = Cluster.Node

type t = { cluster : Cluster.t; local : int; server : Server.t }

exception Unreachable of string

let unreachable t op reason =
  raise
    (Unreachable
       (Printf.sprintf "Client.%s: memory server on node %d %s" op
          (Node.id (Server.node t.server)) reason))

let ensure_reachable t op =
  if not (Server.is_alive t.server) then unreachable t op "is unreachable (node down or rebooted)"

let create ~cluster ~local ~server =
  let server_id = Node.id (Server.node server) in
  if server_id = local then invalid_arg "Client.create: client and server share a node";
  ignore (Cluster.node cluster local);
  { cluster; local; server }

let cluster t = t.cluster
let local_node t = Cluster.node t.cluster t.local
let server t = t.server
let hops t = Cluster.hops t.cluster ~src:t.local ~dst:(Node.id (Server.node t.server))

let rpc_time t =
  let p = Sci.Nic.params (Cluster.nic t.cluster) in
  let hop_extra = (hops t - 1 + (Cluster.size t.cluster - hops t - 1)) * p.t_hop in
  (* Request out, reply back around the ring, plus server handling. *)
  (2 * (p.t_base + p.t_pkt16)) + hop_extra + Time.us 2.0

(* Control round trips don't go through the packet-level NIC plans, so
   they are traced here: one instant event per rpc, tagged with the
   operation, distinguishing control traffic from the bulk data
   movement the plans tag themselves. *)
let charge_rpc t op =
  let clock = Cluster.clock t.cluster in
  Clock.advance clock (rpc_time t);
  Sci.Nic.note_rpc (Cluster.nic t.cluster);
  let nic = Cluster.nic t.cluster in
  let sink = Sci.Nic.sink nic in
  if Trace.Sink.enabled sink then
    Trace.Sink.instant sink ~cat:"netram" ~name:"rpc" ~at:(Clock.now clock)
      ~args:
        ([ ("tag", "rpc"); ("op", op); ("server", string_of_int (Node.id (Server.node t.server))) ]
        @ List.filter (fun (k, _) -> k <> "tag" && k <> "op") (Sci.Nic.ctx nic))

(* One control round trip that answers "is the server there?" instead
   of raising: the cost is charged whether the reply comes back or the
   probe times out, so a failure detector pays for its vigilance. *)
let ping t =
  charge_rpc t "ping";
  Server.is_alive t.server

let malloc t ~name ~size =
  ensure_reachable t "malloc";
  charge_rpc t "malloc";
  Server.export t.server ~name ~size

let free t handle =
  ensure_reachable t "free";
  charge_rpc t "free";
  Server.release t.server handle

let connect t ~name =
  ensure_reachable t "connect";
  charge_rpc t "connect";
  Server.lookup t.server ~name

let check_handle t (h : Remote_segment.t) op =
  ensure_reachable t op;
  if h.owner <> Node.id (Server.node t.server) then
    failwith (Printf.sprintf "Client.%s: handle %s belongs to another server" op h.name);
  if h.owner_generation <> Node.crashes_since_start (Server.node t.server) then
    unreachable t op (Printf.sprintf "rebooted; handle %s is stale" h.name);
  if not (Server.is_exported t.server h) then
    failwith (Printf.sprintf "Client.%s: handle %s is no longer exported" op h.name)

let check_range (h : Remote_segment.t) ~seg_off ~len op =
  if seg_off < 0 || len < 0 || seg_off + len > Remote_segment.len h then
    invalid_arg
      (Printf.sprintf "Client.%s: range [%d,+%d) outside segment %s of %d bytes" op seg_off len
         h.name (Remote_segment.len h))

let remote_dram t = Node.dram (Server.node t.server)

let do_plan_write ?window t (h : Remote_segment.t) ~seg_off ~src_off ~len =
  check_handle t h "write";
  check_range h ~seg_off ~len "write";
  Sci.Nic.plan_write (Cluster.nic t.cluster) ~hops:(max 1 (hops t)) ~tag:"bulk" ?window
    ~src:(Node.dram (local_node t)) ~src_off ~dst:(remote_dram t)
    ~dst_off:(Remote_segment.base h + seg_off) ~len ()

let plan_write t ?(widen = true) h ~seg_off ~src_off ~len =
  if widen then do_plan_write ~window:h.Remote_segment.seg t h ~seg_off ~src_off ~len
  else do_plan_write t h ~seg_off ~src_off ~len

let plan_convoy t chunks =
  let mk (tag, widen, (h : Remote_segment.t), seg_off, src_off, len) =
    check_handle t h "write";
    check_range h ~seg_off ~len "write";
    {
      Sci.Nic.ck_tag = tag;
      ck_window = (if widen then Some h.Remote_segment.seg else None);
      ck_src = Node.dram (local_node t);
      ck_src_off = src_off;
      ck_dst = remote_dram t;
      ck_dst_off = Remote_segment.base h + seg_off;
      ck_len = len;
    }
  in
  Sci.Nic.plan_convoy (Cluster.nic t.cluster) ~hops:(max 1 (hops t)) (List.map mk chunks)

let write t h ~seg_off ~src_off ~len =
  Sci.Nic.run (Cluster.nic t.cluster) (plan_write t h ~seg_off ~src_off ~len)

let write_raw t h ~seg_off ~src_off ~len =
  Sci.Nic.run (Cluster.nic t.cluster) (do_plan_write t h ~seg_off ~src_off ~len)

let read_to_image t (h : Remote_segment.t) ~seg_off ~dst ~dst_off ~len =
  check_handle t h "read";
  check_range h ~seg_off ~len "read";
  Sci.Nic.read (Cluster.nic t.cluster) ~hops:(max 1 (hops t)) ~tag:"bulk" ~src:(remote_dram t)
    ~src_off:(Remote_segment.base h + seg_off) ~dst ~dst_off ~len ()

let read t h ~seg_off ~dst_off ~len =
  read_to_image t h ~seg_off ~dst:(Node.dram (local_node t)) ~dst_off ~len

let write_u64 t (h : Remote_segment.t) ~seg_off v =
  check_handle t h "write_u64";
  check_range h ~seg_off ~len:8 "write_u64";
  Sci.Nic.write_u64 (Cluster.nic t.cluster) ~hops:(max 1 (hops t)) ~tag:"bulk"
    ~dst:(remote_dram t) ~dst_off:(Remote_segment.base h + seg_off) v

let read_u64 t (h : Remote_segment.t) ~seg_off =
  check_handle t h "read_u64";
  check_range h ~seg_off ~len:8 "read_u64";
  Sci.Nic.read_u64 (Cluster.nic t.cluster) ~hops:(max 1 (hops t)) ~tag:"bulk"
    ~src:(remote_dram t) ~src_off:(Remote_segment.base h + seg_off) ()
