module Node = Cluster.Node

type t = {
  node : Node.t;
  generation : int;
  directory : (string, Remote_segment.t) Hashtbl.t;
  mutable paused : bool;
}

let create node =
  if not (Node.is_up node) then failwith "Server.create: node is down";
  { node; generation = Node.crashes_since_start node; directory = Hashtbl.create 16; paused = false }

let node t = t.node

let is_alive t =
  (not t.paused) && Node.is_up t.node && Node.crashes_since_start t.node = t.generation

let pause t = t.paused <- true
let resume t = t.paused <- false
let is_paused t = t.paused

(* Liveness as seen by a failure detector, refreshed at sample time
   only — probing is free, so this perturbs nothing. *)
let set_telemetry t tel ~label =
  Trace.Timeseries.on_sample tel (fun _at ->
      Trace.Timeseries.set tel (Printf.sprintf "netram.%s.alive" label) (if is_alive t then 1 else 0);
      Trace.Timeseries.set tel (Printf.sprintf "netram.%s.paused" label) (if t.paused then 1 else 0))

let check_alive t op =
  if not (is_alive t) then failwith (Printf.sprintf "Server.%s: server on %s is gone" op (Node.name t.node))

let export t ~name ~size =
  check_alive t "export";
  if Hashtbl.mem t.directory name then failwith (Printf.sprintf "Server.export: name %S already exported" name);
  (* 64-byte alignment so mirrored copies packetise as whole SCI buffers. *)
  let seg =
    match Mem.Allocator.alloc (Node.allocator t.node) ~align:64 size with
    | Some seg -> seg
    | None -> failwith (Printf.sprintf "Server.export: out of remote memory (%d bytes)" size)
  in
  let handle =
    {
      Remote_segment.owner = Node.id t.node;
      owner_generation = t.generation;
      name;
      seg;
    }
  in
  Hashtbl.add t.directory name handle;
  handle

let check_handle t (h : Remote_segment.t) op =
  if h.owner <> Node.id t.node || h.owner_generation <> t.generation then
    failwith (Printf.sprintf "Server.%s: stale or foreign handle %s" op h.name)

let release t (h : Remote_segment.t) =
  check_alive t "release";
  check_handle t h "release";
  (match Hashtbl.find_opt t.directory h.name with
  | Some h' when h' == h || h'.seg = h.seg -> Hashtbl.remove t.directory h.name
  | _ -> failwith (Printf.sprintf "Server.release: %S is not exported" h.name));
  Mem.Allocator.free (Node.allocator t.node) h.seg

let lookup t ~name =
  check_alive t "lookup";
  Hashtbl.find_opt t.directory name

let is_exported t (h : Remote_segment.t) =
  is_alive t
  && h.owner = Node.id t.node
  && h.owner_generation = t.generation
  && match Hashtbl.find_opt t.directory h.name with Some h' -> h'.seg = h.seg | None -> false

let exports t =
  check_alive t "exports";
  Hashtbl.fold (fun _ h acc -> h :: acc) t.directory []
  |> List.sort (fun a b -> compare (Remote_segment.base a) (Remote_segment.base b))

let exported_bytes t =
  check_alive t "exported_bytes";
  Hashtbl.fold (fun _ h acc -> acc + Remote_segment.len h) t.directory 0
