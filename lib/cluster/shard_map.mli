(** Key -> shard-owner map for the partitioned cluster.

    Pure arithmetic — the map never talks to nodes — so the
    [Perseas.Shard] router and the harness drivers share one instance
    and agree on ownership by construction.  Two strategies:

    - {!Hash}: splitmix64-mixed modulo, spreading any key distribution
      (including a Zipf-skewed hot branch) evenly across shards;
    - {!Range}: contiguous runs of a bounded key space, the layout a
      range-scan workload would want.

    The mapping is part of the durable layout (recovery must route a
    key to the same owner), so both functions are fixed and
    seed-free. *)

type strategy =
  | Hash
  | Range of { span : int }
      (** Keys in [\[0, span)] split into [shards] contiguous runs. *)

type t

val create : ?strategy:strategy -> shards:int -> unit -> t
(** Default strategy: {!Hash}.  Raises [Invalid_argument] on a
    non-positive shard count or a range span below the shard count. *)

val shards : t -> int
val strategy : t -> strategy

val owner : t -> key:int -> int
(** Owning shard of [key], in [\[0, shards)].  Raises
    [Invalid_argument] on a negative key or (range mode) a key outside
    the span. *)

val local_index : t -> key:int -> int
(** Dense 0-based slot of [key] within its owner's tables: the
    quotient for hash mode (dense when callers stride the key space),
    offset from the shard's first key for range mode. *)

val capacity : t -> span:int -> int
(** Upper bound on keys per shard for a [span]-key space. *)

val strategy_label : t -> string
(** ["hash"] or ["range/<span>"], for tables and CSV. *)
