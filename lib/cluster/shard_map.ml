(* Key -> shard-owner map for the partitioned cluster.  Pure
   arithmetic: the map never talks to nodes, so the router in
   [Perseas.Shard] and the harness drivers can share one instance and
   agree on ownership by construction. *)

type strategy =
  | Hash
  | Range of { span : int }  (* keys in [0, span) split into contiguous runs *)

type t = { shards : int; strategy : strategy }

let create ?(strategy = Hash) ~shards () =
  if shards < 1 then invalid_arg "Shard_map.create: at least one shard";
  (match strategy with
  | Range { span } when span < shards ->
      invalid_arg "Shard_map.create: range span smaller than shard count"
  | _ -> ());
  { shards; strategy }

let shards t = t.shards
let strategy t = t.strategy

(* splitmix64 finalizer: cheap, well-mixed, and stable across runs —
   the shard map is part of the durable layout, so the function must
   never change silently. *)
let mix64 k =
  let open Int64 in
  let z = add (of_int k) 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let owner t ~key =
  if key < 0 then invalid_arg "Shard_map.owner: negative key";
  match t.strategy with
  | Hash -> Int64.to_int (Int64.rem (Int64.logand (mix64 key) Int64.max_int) (Int64.of_int t.shards))
  | Range { span } ->
      if key >= span then invalid_arg "Shard_map.owner: key outside range span";
      min (t.shards - 1) (key * t.shards / span)

(* Local slot of [key] on its owner: a dense 0-based index within the
   shard, so per-shard tables can be sized [capacity] without holes.
   Hash mode uses the quotient (dense when callers stride the key
   space); range mode subtracts the shard's first key. *)
let local_index t ~key =
  match t.strategy with
  | Hash -> key / t.shards
  | Range { span } ->
      let s = owner t ~key in
      let first = ((s * span) + t.shards - 1) / t.shards in
      key - first

let capacity t ~span =
  (span + t.shards - 1) / t.shards

let strategy_label t =
  match t.strategy with Hash -> "hash" | Range { span } -> Printf.sprintf "range/%d" span
