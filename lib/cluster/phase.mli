(** STAR-style phase controller for the sharded cluster.

    Epochs alternate between a {e partitioned} phase — single-shard
    transactions only, every primary committing in parallel on its own
    mirror set — and a periodic {e single-master} phase in which one
    designated master drains the queued cross-shard backlog while the
    other shards are quiesced (PAPERS.md: "STAR: Scaling Transactions
    through Asymmetric Replication").  This module is the pure state
    machine over virtual time: phase kind, phase epoch, backlog and
    switch history.  Fencing the shards and executing the backlog is
    the router's job ([Perseas.Shard]). *)

open Sim

type kind = Partitioned | Single_master

type switch = {
  sw_at : Time.t;
  sw_to : kind;
  sw_epoch : int;  (** Phase epoch after the switch. *)
  sw_backlog : int;  (** Cross-shard backlog at switch time. *)
}

type t

val create : ?interval:Time.t -> ?master:int -> unit -> t
(** Defaults: 200 µs partitioned interval, master shard 0.  Raises
    [Invalid_argument] on a non-positive interval. *)

val kind : t -> kind
val kind_label : kind -> string
(** ["partitioned"] / ["single_master"] — the wire spelling of the
    [phase] arg on trace instants, which {!Trace.Monitor} matches. *)

val epoch : t -> int
(** Phase epoch: increments on every switch, either direction. *)

val master : t -> int
val interval : t -> Time.t
val backlog : t -> int
val drained : t -> int
(** Cross-shard transactions committed across all drains. *)

val since : t -> Time.t
(** Start instant of the current phase. *)

val enqueue : t -> unit
(** Note one queued cross-shard transaction. *)

val due : t -> now:Time.t -> bool
(** True when a single-master drain should run: the controller is in
    the partitioned phase, cross-shard work is waiting, and the phase
    has run at least [interval] — so cross-shard latency is bounded by
    the interval while single-shard throughput pays one fence per
    interval at most. *)

val begin_single_master : t -> at:Time.t -> unit
(** Raises [Invalid_argument] when already single-master. *)

val end_single_master : t -> drained:int -> at:Time.t -> unit
(** Return to the partitioned phase, retiring [drained] transactions
    from the backlog (conflicted ones may remain queued for the next
    drain).  Raises [Invalid_argument] when not in single-master phase
    or on an out-of-range drained count. *)

val switches : t -> switch list
(** Oldest first. *)

val single_master_phases : t -> int
(** Number of single-master phases entered. *)
