open Sim
module Failure = Failure
module Node = Node
module Shard_map = Shard_map
module Phase = Phase

type t = { clock : Clock.t; nic : Sci.Nic.t; nodes : Node.t array }

type node_spec = {
  name : string;
  dram_size : int;
  power_supply : int;
  ups : bool;
}

let spec ?(ups = false) ?(dram_size = 64 * 1024 * 1024) ?(power_supply = 0) name =
  { name; dram_size; power_supply; ups }

let create ?params ~clock specs =
  if specs = [] then invalid_arg "Cluster.create: at least one node required";
  let nodes =
    List.mapi
      (fun id s ->
        Node.create ~ups:s.ups ~id ~name:s.name ~dram_size:s.dram_size
          ~power_supply:s.power_supply clock)
      specs
    |> Array.of_list
  in
  { clock; nic = Sci.Nic.create ?params clock; nodes }

let clock t = t.clock
let nic t = t.nic
let size t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg (Printf.sprintf "Cluster.node: no node %d" i);
  t.nodes.(i)

let nodes t = Array.to_list t.nodes

let hops t ~src ~dst =
  let n = Array.length t.nodes in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Cluster.hops: unknown node";
  (dst - src + n) mod n

let crash_node t i kind = Node.crash (node t i) kind

let crash_power_supply t supply =
  Array.to_list t.nodes
  |> List.filter_map (fun n ->
         if Node.power_supply n = supply && Node.is_up n then
           match Node.crash n Failure.Power_outage with
           | `Crashed -> Some (Node.id n)
           | `Survived -> None
         else None)

let restart_node t i = Node.restart (node t i)

let up_nodes t =
  Array.to_list t.nodes |> List.filter Node.is_up |> List.map Node.id
