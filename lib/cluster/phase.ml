(* STAR-style epoch alternation for the sharded cluster (PAPERS.md:
   "STAR: Scaling Transactions through Asymmetric Replication").  The
   controller is a pure state machine over virtual time: it decides
   WHEN the cluster moves between the partitioned phase (single-shard
   transactions only, every primary active) and the single-master
   phase (one designated master drains the queued cross-shard
   backlog); actually fencing the shards and running the backlog is
   the router's job ([Perseas.Shard]). *)

open Sim

type kind = Partitioned | Single_master

type switch = {
  sw_at : Time.t;
  sw_to : kind;
  sw_epoch : int;  (* phase epoch after the switch *)
  sw_backlog : int;  (* cross-shard backlog at switch time *)
}

type t = {
  interval : Time.t;  (* minimum partitioned-phase length between drains *)
  master : int;  (* shard designated to run single-master phases *)
  mutable kind : kind;
  mutable epoch : int;  (* increments on every switch, either direction *)
  mutable since : Time.t;  (* start of the current phase *)
  mutable backlog : int;  (* queued cross-shard transactions *)
  mutable drained : int;  (* cross-shard transactions committed, total *)
  mutable switches : switch list;  (* newest first *)
}

let create ?(interval = Time.us 200.0) ?(master = 0) () =
  if interval <= 0 then invalid_arg "Phase.create: interval must be positive";
  if master < 0 then invalid_arg "Phase.create: negative master shard";
  {
    interval;
    master;
    kind = Partitioned;
    epoch = 0;
    since = Time.zero;
    backlog = 0;
    drained = 0;
    switches = [];
  }

let kind t = t.kind
let kind_label = function Partitioned -> "partitioned" | Single_master -> "single_master"
let epoch t = t.epoch
let master t = t.master
let interval t = t.interval
let backlog t = t.backlog
let drained t = t.drained
let since t = t.since
let switches t = List.rev t.switches

let enqueue t = t.backlog <- t.backlog + 1

(* A drain is due when cross-shard work is waiting and the partitioned
   phase has run its interval — the STAR trade: cross-shard latency is
   bounded by [interval], single-shard throughput pays only one fence
   per interval. *)
let due t ~now =
  t.kind = Partitioned && t.backlog > 0 && now - t.since >= t.interval

let switch t ~at ~to_ =
  t.kind <- to_;
  t.epoch <- t.epoch + 1;
  t.since <- at;
  t.switches <- { sw_at = at; sw_to = to_; sw_epoch = t.epoch; sw_backlog = t.backlog } :: t.switches

let begin_single_master t ~at =
  if t.kind = Single_master then invalid_arg "Phase.begin_single_master: already single-master";
  switch t ~at ~to_:Single_master

let end_single_master t ~drained ~at =
  if t.kind = Partitioned then invalid_arg "Phase.end_single_master: not in single-master phase";
  if drained < 0 || drained > t.backlog then
    invalid_arg "Phase.end_single_master: drained count out of range";
  t.backlog <- t.backlog - drained;
  t.drained <- t.drained + drained;
  switch t ~at ~to_:Partitioned

let single_master_phases t = List.length (List.filter (fun s -> s.sw_to = Single_master) t.switches)
