open Sim

(** A network of workstations on an SCI ring.

    All nodes share one virtual clock and one NIC cost model.  The
    cluster knows which node sits on which power supply, so a power
    outage takes down every node wired to the failed supply at once —
    the correlated-failure case the paper's mirroring policy (different
    supplies for primary and mirror) is designed to dodge. *)

module Failure = Failure
module Node = Node

module Shard_map = Shard_map
(** Key -> shard-owner routing for the partitioned cluster. *)

module Phase = Phase
(** STAR-style partitioned / single-master phase controller. *)

type t

type node_spec = {
  name : string;
  dram_size : int;
  power_supply : int;
  ups : bool;
}

val spec : ?ups:bool -> ?dram_size:int -> ?power_supply:int -> string -> node_spec
(** Convenience constructor; defaults: 64 MB DRAM, supply 0, no UPS. *)

val create : ?params:Sci.Params.t -> clock:Clock.t -> node_spec list -> t
(** At least one node is required. *)

val clock : t -> Clock.t
val nic : t -> Sci.Nic.t
val size : t -> int
val node : t -> int -> Node.t
(** Raises [Invalid_argument] on an unknown node id. *)

val nodes : t -> Node.t list

val hops : t -> src:int -> dst:int -> int
(** SCI ring distance from [src] to [dst] (unidirectional ring);
    0 when [src = dst]. *)

val crash_node : t -> int -> Failure.kind -> [ `Crashed | `Survived ]

val crash_power_supply : t -> int -> int list
(** Power outage on a supply: crashes every non-UPS node wired to it;
    returns the ids of the nodes that went down. *)

val restart_node : t -> int -> unit
val up_nodes : t -> int list
