open Sim

(** Vista: the undo-log-only recoverable memory over the Rio file cache
    (Lowell & Chen), the fastest prior system the paper compares with.

    The database itself lives in Rio-protected memory, so every update
    is durable the moment it is written — no redo log and no data copy
    at commit.  [set_range] writes the before-image into a Rio-protected
    undo region; [commit] is a single 8-byte epoch store that
    invalidates the undo records (the same commit-point trick PERSEAS
    uses, but against local protected memory instead of a remote
    mirror).  Recovery applies current-epoch undo records.

    Vista's weakness, which PERSEAS targets, is operational: it only
    exists on top of Rio (a modified OS), and a long-lasting crash of
    the machine keeps the data hostage even though it is safe — there
    is no second copy elsewhere. *)

type config = {
  undo_capacity : int;
  max_segments : int;
  strict_updates : bool;
  redundancy_elision : bool;
      (** First-write-only undo logging (default): re-declared
          sub-ranges are not logged again — the original before-image
          is the one recovery restores.  Matches
          {!Perseas.config.redundancy_elision} so the cross-engine
          comparison stays honest; disable for the naive
          one-record-per-call oracle. *)
  software_overhead_commit : Time.t;  (** Vista's path is a few stores. *)
}

val default_config : config

type t
type segment
type txn

val create : ?config:config -> node:Cluster.Node.t -> device:Disk.Device.t -> unit -> t
(** [device] must be a Rio-backed device (Vista requires Rio); raises
    [Invalid_argument] on a magnetic backend. *)

val device : t -> Disk.Device.t
val epoch : t -> int64
val segment_by_name : t -> string -> segment option
val checksum : t -> segment -> int64

val recover : ?config:config -> node:Cluster.Node.t -> device:Disk.Device.t -> unit -> t
(** Rebuild from the Rio-protected contents after a crash the cache
    survived; rolls back the in-flight transaction from the undo
    region.  Raises [Failure] if the cache was lost (power outage
    without UPS, hardware error). *)

module Engine :
  Perseas.Txn_intf.S with type t = t and type segment = segment and type txn = txn
