open Sim
module Node = Cluster.Node
module Device = Disk.Device
module Layout = Perseas.Layout
module Iset = Perseas.Iset
module Imap = Map.Make (Int)

type config = {
  undo_capacity : int;
  max_segments : int;
  strict_updates : bool;
  redundancy_elision : bool;
  software_overhead_commit : Time.t;
}

let default_config =
  {
    undo_capacity = (1024 * 1024) + (64 * 1024);
    max_segments = 64;
    strict_updates = true;
    redundancy_elision = true;
    software_overhead_commit = Time.us 0.3;
  }

let meta_region_size = 4096
let undo_off = meta_region_size

type segment = { seg_name : string; index : int; size : int; file_off : int }

type range = { r_seg : segment; r_off : int; r_len : int; slot : int }

type txn = {
  owner : t;
  mutable ranges : range list; (* logged undo fragments, newest first *)
  mutable wset : Iset.t Imap.t; (* coalesced declared ranges per segment *)
  mutable tail : int;
  mutable open_ : bool;
}

and t = {
  config : config;
  node : Node.t;
  device : Device.t;
  mutable segs : segment list; (* newest first *)
  mutable db_tail : int;
  mutable epoch : int64;
  mutable ready : bool;
  mutable active : txn option;
}

let db_base config = undo_off + config.undo_capacity

let create ?(config = default_config) ~node ~device () =
  (match Device.backend device with
  | Device.Rio _ -> ()
  | Device.Magnetic _ -> invalid_arg "Vista.create: Vista requires the Rio file cache");
  if db_base config >= Device.capacity device then invalid_arg "Vista.create: device too small";
  { config; node; device; segs = []; db_tail = db_base config; epoch = 0L; ready = false; active = None }

let device t = t.device
let epoch t = t.epoch
let segment_by_name t name = List.find_opt (fun s -> s.seg_name = name) t.segs
let clock t = Node.clock t.node

let checksum t seg =
  let data = Device.peek t.device ~off:seg.file_off ~len:seg.size in
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    data;
  !h

let check_seg_range seg ~off ~len op =
  if off < 0 || len < 0 || off + len > seg.size then
    invalid_arg (Printf.sprintf "Vista.%s: [%d,+%d) outside %S" op off len seg.seg_name)

let malloc t ~name ~size =
  if t.ready then failwith "Vista.malloc: database already initialised";
  if size <= 0 then invalid_arg "Vista.malloc: size must be positive";
  if List.length t.segs >= t.config.max_segments then failwith "Vista.malloc: too many segments";
  if segment_by_name t name <> None then failwith (Printf.sprintf "Vista.malloc: segment %S exists" name);
  ignore (Layout.db_export_name name);
  if t.db_tail + size > Device.capacity t.device then failwith "Vista.malloc: device full";
  let seg = { seg_name = name; index = List.length t.segs; size; file_off = t.db_tail } in
  t.db_tail <- t.db_tail + size;
  t.segs <- seg :: t.segs;
  seg

let write_meta t =
  let b = Bytes.make meta_region_size '\000' in
  Layout.write_meta_magic b;
  Layout.write_epoch b t.epoch;
  Layout.write_nsegs b (List.length t.segs);
  List.iter (fun s -> Layout.write_table_entry b ~index:s.index ~name:s.seg_name ~size:s.size) t.segs;
  Device.write t.device ~off:0 b

let init_done t =
  if t.ready then failwith "Vista.init_done: already initialised";
  t.epoch <- 1L;
  write_meta t;
  t.ready <- true

let begin_transaction t =
  if not t.ready then failwith "Vista.begin_transaction: call init_done first";
  (match t.active with Some _ -> failwith "Vista.begin_transaction: transaction already open" | None -> ());
  let txn = { owner = t; ranges = []; wset = Imap.empty; tail = 0; open_ = true } in
  t.active <- Some txn;
  txn

let check_open txn op = if not txn.open_ then failwith (Printf.sprintf "Vista.%s: transaction closed" op)

let txn_iset txn seg =
  match Imap.find_opt seg.index txn.wset with Some s -> s | None -> Iset.empty

(* First-write-only logging (the design Vista pioneered and PERSEAS
   mirrors under [redundancy_elision]): a sub-range already declared
   this transaction keeps its original before-image, so only the
   uncovered fragments get undo records. *)
let set_range txn seg ~off ~len =
  check_open txn "set_range";
  check_seg_range seg ~off ~len "set_range";
  if len = 0 then invalid_arg "Vista.set_range: empty range";
  let t = txn.owner in
  let prior = txn_iset txn seg in
  let fragments =
    if t.config.redundancy_elision then Iset.uncovered prior ~off ~len else [ (off, len) ]
  in
  let rec fits tail = function
    | [] -> true
    | (_, flen) :: rest ->
        tail + Layout.undo_header_size + flen <= t.config.undo_capacity
        && fits (Layout.undo_slot ~off:tail ~payload_len:flen) rest
  in
  if not (fits txn.tail fragments) then failwith "Vista.set_range: undo log full";
  List.iter
    (fun (off, len) ->
      let payload = Device.peek t.device ~off:(seg.file_off + off) ~len in
      let record =
        Layout.encode_undo { Layout.epoch = t.epoch; seg_index = seg.index; off; len } ~payload
      in
      let slot = txn.tail in
      Device.write t.device ~off:(undo_off + slot) record;
      txn.ranges <- { r_seg = seg; r_off = off; r_len = len; slot } :: txn.ranges;
      txn.tail <- Layout.undo_slot ~off:slot ~payload_len:len)
    fragments;
  txn.wset <- Imap.add seg.index (Iset.add prior ~off ~len) txn.wset

let epoch_bytes e =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 e;
  b

(* Vista's commit is one protected store: bump the epoch, which
   invalidates every undo record of the transaction. *)
let commit txn =
  check_open txn "commit";
  let t = txn.owner in
  Clock.advance (clock t) t.config.software_overhead_commit;
  t.epoch <- Int64.add t.epoch 1L;
  Device.write t.device ~off:Layout.epoch_offset (epoch_bytes t.epoch);
  txn.open_ <- false;
  t.active <- None

let abort txn =
  check_open txn "abort";
  let t = txn.owner in
  List.iter
    (fun r ->
      let payload =
        Device.peek t.device ~off:(undo_off + r.slot + Layout.undo_header_size) ~len:r.r_len
      in
      Device.write t.device ~off:(r.r_seg.file_off + r.r_off) payload)
    txn.ranges;
  (* The undo records stay valid for the current epoch, which is safe:
     they now equal the database contents.  Bump the epoch anyway so
     recovery does no needless copying. *)
  t.epoch <- Int64.add t.epoch 1L;
  Device.write t.device ~off:Layout.epoch_offset (epoch_bytes t.epoch);
  txn.open_ <- false;
  t.active <- None

let covered txn seg ~off ~len = Iset.covers (txn_iset txn seg) ~off ~len

let write t seg ~off data =
  let len = Bytes.length data in
  check_seg_range seg ~off ~len "write";
  if t.ready && t.config.strict_updates then begin
    match t.active with
    | Some txn when covered txn seg ~off ~len -> ()
    | Some _ -> failwith (Printf.sprintf "Vista.write: [%d,+%d) of %S not covered by set_range" off len seg.seg_name)
    | None -> failwith "Vista.write: no open transaction"
  end;
  Device.write t.device ~off:(seg.file_off + off) data

let read t seg ~off ~len =
  check_seg_range seg ~off ~len "read";
  Device.peek t.device ~off:(seg.file_off + off) ~len

let recover ?(config = default_config) ~node ~device () =
  let meta = Device.peek device ~off:0 ~len:meta_region_size in
  if Layout.read_meta_magic meta <> Layout.meta_magic then
    failwith "Vista.recover: Rio cache did not survive the crash";
  let current_epoch = Layout.read_epoch meta in
  let nsegs = Layout.read_nsegs meta in
  if nsegs < 0 || nsegs > config.max_segments then failwith "Vista.recover: corrupt segment count";
  let t =
    { config; node; device; segs = []; db_tail = db_base config; epoch = current_epoch; ready = false; active = None }
  in
  for index = 0 to nsegs - 1 do
    let name, size = Layout.read_table_entry meta ~index in
    ignore (malloc t ~name ~size)
  done;
  (* Roll back the in-flight transaction from the undo region. *)
  let undo_bytes = Device.peek device ~off:undo_off ~len:config.undo_capacity in
  let by_index = Array.of_list (List.rev t.segs) in
  let rec walk acc off =
    match Layout.decode_undo_header undo_bytes ~off with
    | Some h when h.Layout.epoch = current_epoch && Layout.verify_undo undo_bytes ~off h ->
        walk ((off, h) :: acc) (Layout.undo_slot ~off ~payload_len:h.Layout.len)
    | _ -> acc (* newest first *)
  in
  List.iter
    (fun (off, (h : Layout.undo_header)) ->
      if h.seg_index < Array.length by_index then begin
        let seg = by_index.(h.seg_index) in
        if h.off + h.len <= seg.size then
          Device.write device
            ~off:(seg.file_off + h.off)
            (Bytes.sub undo_bytes (off + Layout.undo_header_size) h.len)
      end)
    (walk [] 0);
  t.epoch <- Int64.add current_epoch 1L;
  Device.write device ~off:Layout.epoch_offset (epoch_bytes t.epoch);
  t.ready <- true;
  t

module Engine = struct
  type nonrec t = t
  type nonrec segment = segment
  type nonrec txn = txn

  let name = "Vista"
  let malloc = malloc
  let find_segment = segment_by_name
  let init_done = init_done
  let begin_transaction = begin_transaction
  let set_range txn seg ~off ~len = set_range txn seg ~off ~len
  let commit = commit
  let abort = abort
  let write = write
  let read = read
end
