open Sim

(** A PCI-SCI adapter instance: performs remote transfers between
    memory images, charging virtual time to a clock and keeping traffic
    counters.

    Transfers are exposed as {e plans} made of packet-level {e steps} so
    that callers (PERSEAS commit, the fault injector, the tests) can
    observe or interrupt a copy between any two packets — the paper's
    recovery logic exists precisely because a crash can strike after
    some but not all packets of a remote copy have landed. *)

type t

type counters = {
  bursts : int;
  packets64 : int;
  packets16 : int;
  bytes_written : int;
  bytes_read : int;
}

val create : ?params:Params.t -> Clock.t -> t
val params : t -> Params.t
val clock : t -> Clock.t
val counters : t -> counters
val reset_counters : t -> unit

val set_sink : t -> Trace.Sink.t -> unit
(** Attach a trace sink: {!apply_step} then emits one instant event
    per packet ([pkt.full64] / [pkt.part16], category [sci]) with its
    traffic [tag], payload [len], and whether the 64-byte packet was
    [streamed] (overlapped behind the first of its burst, §4).  The
    sink is a pure observer — it never advances the clock or changes
    the packet stream — so runs with and without it are byte-identical
    in counters and final virtual time.  Defaults to
    {!Trace.Sink.noop}. *)

val sink : t -> Trace.Sink.t

val set_ctx : t -> (string * string) list -> unit
(** Set the causal-context tags appended to every packet instant until
    the next [set_ctx] (clear with [[]]).  PERSEAS brackets each plan
    run with the operation / transaction / convoy / destination-node
    identity so the per-packet stream carries enough to reconstruct
    cross-node timelines ({!Trace.Causal}) and to check protocol
    ordering online ({!Trace.Monitor}).  Trace metadata only: the
    transfer machinery never reads it, so runs with and without context
    stay byte-identical. *)

val ctx : t -> (string * string) list

val set_telemetry : t -> Trace.Timeseries.t -> unit
(** Attach a gauge timeseries.  The NIC then maintains, with the same
    pure-observer contract as the sink:

    - [nic.burst_bytes] / [nic.burst_pkts] — shape of the most recent
      write-gathered burst (gauge high-water marks capture the largest
      burst between samples);
    - [nic.bytes.<tag>] — cumulative payload bytes per traffic class
      ([bulk], [data], ...), updated per packet;
    - [netram.rpc_ops] — control round trips, bumped via {!note_rpc};
    - a sample-time probe mirroring the cumulative counters into
      gauges: [nic.bursts], [nic.pkts], [nic.pkts64], [nic.pkts16],
      [nic.streamed_pkts], [nic.bytes_written], [nic.bytes_read],
      [nic.bytes].

    Defaults to {!Trace.Timeseries.noop}, under which every gauge
    update is a single branch. *)

val telemetry : t -> Trace.Timeseries.t

val note_rpc : t -> unit
(** Record one control round trip ({!Netram.Client} calls this from
    its rpc charge).  No-op when telemetry is disabled. *)

val note_burst : t -> bytes:int -> pkts:int -> unit
(** Record the shape of a burst applied step by step outside {!run}
    (PERSEAS' interruptible commit path).  No-op when telemetry is
    disabled. *)

(** {1 Transfer plans} *)

type step
(** One packet: applying it copies that packet's bytes and charges its
    share of the burst latency. *)

type plan

val plan_write :
  t ->
  ?hops:int ->
  ?tag:string ->
  ?window:Mem.Segment.t ->
  src:Mem.Image.t ->
  src_off:int ->
  dst:Mem.Image.t ->
  dst_off:int ->
  len:int ->
  unit ->
  plan
(** The optimised [sci_memcpy] of §4: copies larger than the 32-byte
    threshold are widened to the enclosing 64-byte-aligned region so the
    card emits whole 64-byte packets; the widening never leaves
    [window] (a segment in destination coordinates — pass the mirrored
    segment so neighbouring bytes of the same segment may be re-copied,
    which is safe because source and destination are mirrors).  Without
    [window], no widening happens (raw store).  [src_off] and [dst_off]
    must be congruent modulo 64 for widening to apply (mirrored
    segments are 64-byte aligned, so they always are). *)

type chunk = {
  ck_tag : string;
  ck_window : Mem.Segment.t option;
      (** Pass the destination segment to enable the {!plan_write}
          widening for this chunk; [None] = raw store. *)
  ck_src : Mem.Image.t;
  ck_src_off : int;
  ck_dst : Mem.Image.t;
  ck_dst_off : int;
  ck_len : int;
}
(** One copy of a write convoy.  Packetised in destination address
    space starting at [ck_dst_off], like {!plan_write}. *)

val plan_convoy : t -> ?hops:int -> chunk list -> plan
(** Several disjoint copies to ONE remote node fused into a single
    burst: per-chunk packetisation, global costing.  Only the convoy's
    first packet pays the base (+ hop) latency, Full64 streaming
    carries across chunk boundaries — back-to-back posted writes keep
    the card's FIFO busy — and the last-word bonus applies only to the
    final chunk.  This is how group commit amortises the per-burst
    startup cost across the batch's transactions.  Zero-length chunks
    are dropped; an all-empty list yields the empty plan. *)

val plan_read :
  t ->
  ?hops:int ->
  ?tag:string ->
  src:Mem.Image.t ->
  src_off:int ->
  dst:Mem.Image.t ->
  dst_off:int ->
  len:int ->
  unit ->
  plan
(** A remote-to-local copy (recovery path).  Never widened.

    [tag] (both directions, default ["data"]) names the traffic class
    the caller is moving — {!Netram.Client} uses ["bulk"] for data
    movement vs its ["rpc"] control events — and is carried on every
    packet event the plan emits. *)

val plan_steps : plan -> step list
val plan_latency : plan -> Time.t
(** Total virtual time the plan charges when fully applied. *)

val plan_bytes : plan -> int
(** Bytes the plan moves (may exceed the requested [len] when the copy
    was widened to 64-byte alignment). *)

val apply_step : t -> step -> unit
(** Copy the step's bytes and advance the clock by the step's cost. *)

val run : t -> plan -> unit
(** Apply every step in order. *)

(** {1 Convenience wrappers} *)

val write :
  t ->
  ?hops:int ->
  ?tag:string ->
  ?window:Mem.Segment.t ->
  src:Mem.Image.t ->
  src_off:int ->
  dst:Mem.Image.t ->
  dst_off:int ->
  len:int ->
  unit ->
  unit
(** [run] of [plan_write]. *)

val read :
  t ->
  ?hops:int ->
  ?tag:string ->
  src:Mem.Image.t ->
  src_off:int ->
  dst:Mem.Image.t ->
  dst_off:int ->
  len:int ->
  unit ->
  unit

val write_u64 : t -> ?hops:int -> ?tag:string -> dst:Mem.Image.t -> dst_off:int -> int64 -> unit
(** An 8-byte remote store (one 16-byte packet — atomic on the wire);
    PERSEAS uses it for the commit-point epoch write. *)

val read_u64 : t -> ?hops:int -> ?tag:string -> src:Mem.Image.t -> src_off:int -> unit -> int64
