open Sim

type t = {
  params : Params.t;
  clock : Clock.t;
  mutable bursts : int;
  mutable packets64 : int;
  mutable packets16 : int;
  mutable packets_streamed : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
  mutable sink : Trace.Sink.t;
      (* Pure observer: event emission never touches the clock or the
         packet stream, so sink on/off runs are byte-identical. *)
  mutable ctx : (string * string) list;
      (* Causal tags appended to every packet instant while set —
         PERSEAS wraps each plan run with the transaction / convoy /
         destination-node identity so per-node streams can be stitched
         back into cross-node timelines.  Trace metadata only: never
         read by the transfer machinery. *)
  mutable tel : Trace.Timeseries.t;
      (* Same contract as the sink: gauges observe the transfer
         machinery, never steer it. *)
  mutable g_burst_bytes : Trace.Gauge.t;
  mutable g_burst_pkts : Trace.Gauge.t;
  mutable g_rpc_ops : Trace.Gauge.t;
  tag_gauges : (string, Trace.Gauge.t) Hashtbl.t;
}

type counters = {
  bursts : int;
  packets64 : int;
  packets16 : int;
  bytes_written : int;
  bytes_read : int;
}

let create ?(params = Params.default) clock =
  (match Params.validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Nic.create: invalid params: " ^ msg));
  let inert = Trace.Timeseries.gauge Trace.Timeseries.noop "" in
  {
    params;
    clock;
    bursts = 0;
    packets64 = 0;
    packets16 = 0;
    packets_streamed = 0;
    bytes_written = 0;
    bytes_read = 0;
    sink = Trace.Sink.noop;
    ctx = [];
    tel = Trace.Timeseries.noop;
    g_burst_bytes = inert;
    g_burst_pkts = inert;
    g_rpc_ops = inert;
    tag_gauges = Hashtbl.create 8;
  }

let params (t : t) = t.params
let clock (t : t) = t.clock
let set_sink (t : t) sink = t.sink <- sink
let sink (t : t) = t.sink
let set_ctx (t : t) ctx = t.ctx <- ctx
let ctx (t : t) = t.ctx

let set_telemetry (t : t) tel =
  t.tel <- tel;
  t.g_burst_bytes <- Trace.Timeseries.gauge tel "nic.burst_bytes";
  t.g_burst_pkts <- Trace.Timeseries.gauge tel "nic.burst_pkts";
  t.g_rpc_ops <- Trace.Timeseries.gauge tel "netram.rpc_ops";
  Hashtbl.reset t.tag_gauges;
  (* Cumulative counters are mirrored into gauges lazily, at sample
     time, so the hot path pays nothing for them. *)
  Trace.Timeseries.on_sample tel (fun _at ->
      Trace.Timeseries.set tel "nic.bursts" t.bursts;
      Trace.Timeseries.set tel "nic.pkts" (t.packets64 + t.packets16);
      Trace.Timeseries.set tel "nic.pkts64" t.packets64;
      Trace.Timeseries.set tel "nic.pkts16" t.packets16;
      Trace.Timeseries.set tel "nic.streamed_pkts" t.packets_streamed;
      Trace.Timeseries.set tel "nic.bytes_written" t.bytes_written;
      Trace.Timeseries.set tel "nic.bytes_read" t.bytes_read;
      Trace.Timeseries.set tel "nic.bytes" (t.bytes_written + t.bytes_read))

let telemetry (t : t) = t.tel

let tag_gauge (t : t) tag =
  match Hashtbl.find_opt t.tag_gauges tag with
  | Some g -> g
  | None ->
      let g = Trace.Timeseries.gauge t.tel ("nic.bytes." ^ tag) in
      Hashtbl.add t.tag_gauges tag g;
      g

let note_rpc (t : t) = Trace.Gauge.add t.g_rpc_ops 1

let note_burst (t : t) ~bytes ~pkts =
  Trace.Gauge.set t.g_burst_bytes bytes;
  Trace.Gauge.set t.g_burst_pkts pkts

let counters (t : t) : counters =
  {
    bursts = t.bursts;
    packets64 = t.packets64;
    packets16 = t.packets16;
    bytes_written = t.bytes_written;
    bytes_read = t.bytes_read;
  }

let reset_counters (t : t) =
  t.bursts <- 0;
  t.packets64 <- 0;
  t.packets16 <- 0;
  t.bytes_written <- 0;
  t.bytes_read <- 0

type direction = Write | Read

type step = {
  src : Mem.Image.t;
  src_off : int;
  dst : Mem.Image.t;
  dst_off : int;
  len : int;
  cost : Time.t;
  kind : Packet.kind;
  direction : direction;
  streamed : bool; (* a Full64 after the first of its burst *)
  tag : string; (* traffic class the caller declared, e.g. rpc vs bulk *)
}

type plan = { steps : step list; latency : Time.t; bytes : int }

let align_down x a = x / a * a
let align_up x a = (x + a - 1) / a * a

(* Widen [dst_off, dst_off+len) to the enclosing 64-byte aligned region,
   clamped to the window; gives the sci_memcpy behaviour of section 4. *)
let widen (p : Params.t) ~window ~dst_off ~len =
  let lo = max (Mem.Segment.base window) (align_down dst_off p.buffer_bytes) in
  let hi = min (Mem.Segment.base window + Mem.Segment.len window) (align_up (dst_off + len) p.buffer_bytes) in
  if lo <= dst_off && hi >= dst_off + len then (lo, hi - lo) else (dst_off, len)

let step_costs (p : Params.t) ~hops ~direction ~ends_on_last_word pkts =
  (* Distribute the burst latency over the packets so that partial
     application (a crash mid-burst) accounts time sensibly and full
     application matches Model.write_burst / read costs exactly. *)
  let base, first64, stream64, pkt16 =
    match direction with
    | Write -> (p.t_base, p.t_pkt64_first, p.t_pkt64_stream, p.t_pkt16)
    | Read -> (p.t_read_base, p.t_read_pkt64_first, p.t_read_pkt64_stream, 2 * p.t_pkt16)
  in
  let hop_extra = (hops - 1) * p.t_hop in
  let n = List.length pkts in
  let seen_full64 = ref false in
  List.mapi
    (fun i (pkt : Packet.t) ->
      let packet_cost =
        match pkt.kind with
        | Packet.Part16 -> pkt16
        | Packet.Full64 ->
            let first = not !seen_full64 in
            seen_full64 := true;
            if first then first64 else stream64
      in
      let extra = if i = 0 then base + hop_extra else Time.zero in
      let bonus = if i = n - 1 && ends_on_last_word then p.t_lastword_bonus else Time.zero in
      max Time.zero (packet_cost + extra - bonus))
    pkts

let make_plan t ~hops ~direction ~tag ~src ~src_off ~dst ~dst_off ~off ~len =
  if len < 0 then invalid_arg "Nic: negative length";
  if len = 0 then { steps = []; latency = Time.zero; bytes = 0 }
  else begin
    let p = t.params in
    let pkts = Packet.of_range p ~off ~len in
    let ends = direction = Write && Packet.ends_on_last_word p ~off ~len in
    let costs = step_costs p ~hops ~direction ~ends_on_last_word:ends pkts in
    let seen_full64 = ref false in
    let steps =
      List.map2
        (fun (pkt : Packet.t) cost ->
          let delta = pkt.addr - off in
          let streamed =
            match pkt.kind with
            | Packet.Part16 -> false
            | Packet.Full64 ->
                let first = not !seen_full64 in
                seen_full64 := true;
                not first
          in
          {
            src;
            src_off = src_off + delta;
            dst;
            dst_off = dst_off + delta;
            len = pkt.len;
            cost;
            kind = pkt.kind;
            direction;
            streamed;
            tag;
          })
        pkts costs
    in
    let latency = List.fold_left (fun acc s -> acc + s.cost) Time.zero steps in
    { steps; latency; bytes = len }
  end

let plan_write t ?(hops = 1) ?(tag = "data") ?window ~src ~src_off ~dst ~dst_off ~len () =
  let p = t.params in
  let dst_off', len' =
    match window with
    | Some window
      when len > Params.memcpy_threshold p
           && src_off mod p.buffer_bytes = dst_off mod p.buffer_bytes ->
        widen p ~window ~dst_off ~len
    | _ -> (dst_off, len)
  in
  let src_off' = src_off + (dst_off' - dst_off) in
  (* Packetisation happens in destination (remote physical) address
     space: [off] below is the remote address of the first byte. *)
  make_plan t ~hops ~direction:Write ~tag ~src ~src_off:src_off' ~dst ~dst_off:dst_off'
    ~off:dst_off' ~len:len'

type chunk = {
  ck_tag : string;
  ck_window : Mem.Segment.t option;
  ck_src : Mem.Image.t;
  ck_src_off : int;
  ck_dst : Mem.Image.t;
  ck_dst_off : int;
  ck_len : int;
}

let plan_convoy t ?(hops = 1) chunks =
  let p = t.params in
  (* Per-chunk widening, exactly as [plan_write]. *)
  let chunks =
    List.filter_map
      (fun c ->
        if c.ck_len < 0 then invalid_arg "Nic.plan_convoy: negative length";
        if c.ck_len = 0 then None
        else
          let dst_off', len' =
            match c.ck_window with
            | Some window
              when c.ck_len > Params.memcpy_threshold p
                   && c.ck_src_off mod p.buffer_bytes = c.ck_dst_off mod p.buffer_bytes ->
                widen p ~window ~dst_off:c.ck_dst_off ~len:c.ck_len
            | _ -> (c.ck_dst_off, c.ck_len)
          in
          Some
            {
              c with
              ck_src_off = c.ck_src_off + (dst_off' - c.ck_dst_off);
              ck_dst_off = dst_off';
              ck_len = len';
            })
      chunks
  in
  match chunks with
  | [] -> { steps = []; latency = Time.zero; bytes = 0 }
  | _ :: _ ->
      (* One burst: packetisation is per chunk (each in its own remote
         address range) but costing is global — only the convoy's first
         packet pays the base + hop latency, Full64 streaming carries
         across chunk boundaries (the card's FIFO never drains between
         back-to-back posted writes), and the last-word bonus applies
         only to the final chunk. *)
      let pkts =
        List.concat_map
          (fun c ->
            List.map (fun pkt -> (c, pkt)) (Packet.of_range p ~off:c.ck_dst_off ~len:c.ck_len))
          chunks
      in
      let last = List.nth chunks (List.length chunks - 1) in
      let ends = Packet.ends_on_last_word p ~off:last.ck_dst_off ~len:last.ck_len in
      let n = List.length pkts in
      let hop_extra = (hops - 1) * p.t_hop in
      let seen_full64 = ref false in
      let steps =
        List.mapi
          (fun i (c, (pkt : Packet.t)) ->
            let streamed, packet_cost =
              match pkt.kind with
              | Packet.Part16 -> (false, p.t_pkt16)
              | Packet.Full64 ->
                  let first = not !seen_full64 in
                  seen_full64 := true;
                  (not first, if first then p.t_pkt64_first else p.t_pkt64_stream)
            in
            let extra = if i = 0 then p.t_base + hop_extra else Time.zero in
            let bonus = if i = n - 1 && ends then p.t_lastword_bonus else Time.zero in
            let delta = pkt.addr - c.ck_dst_off in
            {
              src = c.ck_src;
              src_off = c.ck_src_off + delta;
              dst = c.ck_dst;
              dst_off = c.ck_dst_off + delta;
              len = pkt.len;
              cost = max Time.zero (packet_cost + extra - bonus);
              kind = pkt.kind;
              direction = Write;
              streamed;
              tag = c.ck_tag;
            })
          pkts
      in
      let latency = List.fold_left (fun acc s -> acc + s.cost) Time.zero steps in
      let bytes = List.fold_left (fun acc c -> acc + c.ck_len) 0 chunks in
      { steps; latency; bytes }

let plan_read t ?(hops = 1) ?(tag = "data") ~src ~src_off ~dst ~dst_off ~len () =
  make_plan t ~hops ~direction:Read ~tag ~src ~src_off ~dst ~dst_off ~off:src_off ~len

let plan_steps plan = plan.steps
let plan_latency plan = plan.latency
let plan_bytes plan = plan.bytes

let apply_step (t : t) step =
  Mem.Image.blit ~src:step.src ~src_off:step.src_off ~dst:step.dst ~dst_off:step.dst_off
    ~len:step.len;
  Clock.advance t.clock step.cost;
  (match step.kind with
  | Packet.Full64 -> t.packets64 <- t.packets64 + 1
  | Packet.Part16 -> t.packets16 <- t.packets16 + 1);
  if step.streamed then t.packets_streamed <- t.packets_streamed + 1;
  (match step.direction with
  | Write -> t.bytes_written <- t.bytes_written + step.len
  | Read -> t.bytes_read <- t.bytes_read + step.len);
  if Trace.Timeseries.enabled t.tel then Trace.Gauge.add (tag_gauge t step.tag) step.len;
  if Trace.Sink.enabled t.sink then
    Trace.Sink.instant t.sink ~cat:"sci"
      ~name:(match step.kind with Packet.Full64 -> "pkt.full64" | Packet.Part16 -> "pkt.part16")
      ~at:(Clock.now t.clock)
      ~args:
        ([
           ("tag", step.tag);
           ("len", string_of_int step.len);
           ("streamed", if step.streamed then "true" else "false");
           ("dir", (match step.direction with Write -> "write" | Read -> "read"));
         ]
        @ t.ctx)

let run (t : t) plan =
  if plan.steps <> [] then begin
    t.bursts <- t.bursts + 1;
    if Trace.Timeseries.enabled t.tel then
      note_burst t ~bytes:plan.bytes ~pkts:(List.length plan.steps)
  end;
  List.iter (apply_step t) plan.steps

let write t ?hops ?tag ?window ~src ~src_off ~dst ~dst_off ~len () =
  run t (plan_write t ?hops ?tag ?window ~src ~src_off ~dst ~dst_off ~len ())

let read t ?hops ?tag ~src ~src_off ~dst ~dst_off ~len () =
  run t (plan_read t ?hops ?tag ~src ~src_off ~dst ~dst_off ~len ())

let scratch = Mem.Image.create ~size:8

let write_u64 t ?hops ?tag ~dst ~dst_off v =
  Mem.Image.write_u64 scratch 0 v;
  write t ?hops ?tag ~src:scratch ~src_off:0 ~dst ~dst_off ~len:8 ()

let read_u64 t ?hops ?tag ~src ~src_off () =
  read t ?hops ?tag ~src ~src_off ~dst:scratch ~dst_off:0 ~len:8 ();
  Mem.Image.read_u64 scratch 0
