(** Systematic crash-point sweep: enumerate every remote packet a
    workload script sends and re-run it once per boundary, crashing a
    node exactly there and holding recovery to an oracle.

    This is the correctness tool behind the paper's §3 claim that the
    single-packet epoch write makes transactions atomic under a crash
    at {e any} instant: a dry run with a counting hook measures the
    packet count [N], then for every k ∈ \[0, N\] a fresh, identical
    environment runs the script, the victim dies just before packet k,
    and the oracle checks that

    + the recovered database equals a legal image — the pre-state, the
      post-state, or a checkpoint the script declared (atomicity);
    + the epoch is strictly monotone across the crash;
    + {!Perseas.verify_mirrors} is clean once the survivors resync.

    Any failure raises {!Oracle_violation}. *)

open Sim

type env = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list;
      (** Recovery candidates, in probe order (may include nodes that
          are not yet mirrors, e.g. {!attach_scenario}'s joiner). *)
  primary : int;  (** Node id the library runs on. *)
  spare : int;  (** Free node: recovery target, or replacement mirror. *)
  ckpt : Netram.Server.t option;
      (** Checkpoint-target server, when the scenario maintains one:
          the primary sweep hands it to recovery as a restore source,
          and the {!Ckpt_target} sweep kills its node. *)
  t : Perseas.t;
}

type victim =
  | Primary  (** Kill the library's node; recover on the spare. *)
  | Mirror of int
      (** Kill the mirror with this index (into {!Perseas.mirrors});
          the primary lives and must finish degraded or roll back. *)
  | Ckpt_target
      (** Kill the checkpoint-target node; the primary lives, every
          commit must land (the post-image is the only legal outcome of
          a kill) and checkpoint operations degrade to typed no-ops
          ({!Perseas.Checkpoint.Target_lost}). *)

type image = Pre | Post | Checkpoint of int

type point = {
  index : int;  (** Packets sent before the crash. *)
  crashed : bool;  (** False only for the final, uncut control run. *)
  image : image;  (** Which legal image the database recovered to. *)
  replayed_records : int;  (** Undo records applied during recovery. *)
  replayed_bytes : int;
  recovery_us : float;
      (** Virtual time of [recover_replicated] (primary victim) or of
          re-attaching a replacement mirror (mirror victim, total
          loss); 0 when nothing had to be rebuilt. *)
  epoch_before : int64;
  epoch_after : int64;
  mismatches : int;  (** [verify_mirrors] entries — 0 or the sweep fails. *)
}

type report = {
  label : string;
  victim : victim;
  total_packets : int;
  points : point list;  (** One per k ∈ \[0, total_packets\]. *)
  old_images : int;
  new_images : int;
  repaired : int;  (** Points whose recovery replayed undo records. *)
}

type scenario = {
  label : string;
  make : unit -> env;
      (** Build a fresh, fully deterministic environment (the sweep
          calls this once per point). *)
  script : env -> checkpoint:(unit -> unit) -> unit;
      (** The workload under test.  Call [checkpoint] at any committed
          intermediate state to add it to the set of legal images. *)
}

exception Oracle_violation of string

val sweep : ?victim:victim -> ?postmortem:string -> scenario -> report
(** Run the full sweep.  [victim] defaults to {!Primary}.  Raises
    {!Oracle_violation} on the first point that breaks the oracle.

    With [postmortem] (a directory), every point flies a
    {!Forensics.t} flight recorder: the engine under test (and, for
    primary sweeps, the recovery) streams into a bounded ring and the
    online {!Trace.Monitor}.  A monitor alert is itself an oracle
    violation, and any violation dumps a post-mortem bundle under
    [postmortem/<scenario>-<victim>-p<K>/] before re-raising.  The
    recorder is a pure observer: sweeps with and without it visit
    byte-identical points. *)

val commit_scenario :
  ?mirrors:int -> ?ranges:int -> ?range_len:int -> ?seg_size:int -> unit -> scenario
(** A debit-credit-style transaction updating [ranges] slices (default
    3, [range_len] bytes each) across three tables — accounts,
    branches, history — under one commit, mirrored [mirrors] times.
    The sweep cuts both the per-range undo pushes and the commit
    propagation at every packet. *)

val overlap_scenario : ?mirrors:int -> ?elision:bool -> ?seg_size:int -> unit -> scenario
(** One committed warm-up range (declared as a checkpoint image), then
    a transaction full of overlapping, adjacent, duplicate and
    fully-covered [set_range] declarations under one commit — the
    {!Perseas.config.redundancy_elision} stress case.  [elision]
    selects the engine config (default [true]); sweeping both settings
    must classify every crash point into the {e same} legal image set,
    since elision changes the packet schedule, never the legal
    images. *)

val attach_scenario : ?mirrors:int -> ?seg_size:int -> unit -> scenario
(** A live database (with one committed transaction behind it) brings
    a new mirror in with {!Perseas.attach_mirror}; the sweep cuts the
    resync at every packet.  The joiner leads the recovery candidate
    list, so a torn copy of the metadata on it (valid magic, tied
    epoch, unparseable segment table) must be skipped by recovery, not
    trusted or fatal. *)

val concurrent_scenario : ?mirrors:int -> ?clients:int -> ?seg_size:int -> unit -> scenario
(** [clients] (default 3) disjoint transactions from distinct clients
    commit into one group flush while a late client's transaction stays
    open across it, then the late one commits and the script drains —
    two group flushes, ≥2 transactions in flight at every cut packet.
    Legal images are exactly pre, the post-batch checkpoint and post:
    a crash at any packet boundary must recover to one of them, which
    is per-transaction atomicity under concurrency (no torn batch, no
    bystander bytes). *)

val checkpoint_scenario : ?mirrors:int -> ?seg_size:int -> unit -> scenario
(** Five single-range commits rotating across the three tables,
    interleaved with every phase of fuzzy checkpointing to a RAM target
    on its own node: a full {!Perseas.Checkpoint.take}, then a second
    checkpoint held open across three commits ([start], one budgeted
    [step], [finalize] — slot zeroing, image shipping, finalize re-ship
    and scrub, and the header/magic/directory publication all get their
    packets cut).  [checkpoint] images are declared after every commit,
    so any crash point must recover to a committed state.  Sweep it
    with every victim: {!Primary} (recovery gets the surviving target
    as a restore source and must reject torn slots), a {!Mirror}, and
    {!Ckpt_target} (all commits must still land). *)

val shard_commit_scenario : ?mirrors:int -> ?seg_size:int -> unit -> scenario
(** The single-shard commit sweep on a 2-shard {!Sharding.make_bed}
    cluster: the bystander shard commits first (its packets never hit
    the victim's hook — distinct clusters, distinct NICs), then a
    multi-range commit on the victim shard is cut at every packet.
    The env is the victim shard's world; recovery rebuilds it on that
    shard's spare from its own mirrors.  Legal images: pre, the
    post-bystander checkpoint (identical to pre on the victim) and
    post. *)

val shard_fence_scenario : ?mirrors:int -> ?seg_size:int -> unit -> scenario
(** The phase-switch fence sweep: two commits staged on the victim
    shard (group commit 4) ride a convoy out through
    {!Perseas.Shard.fence}, then a queued cross-shard transaction
    drains through a single-master phase — fence, sub-commits on both
    shards, fence.  Every victim-side packet of the convoy, the fences
    and the cross transaction's victim half is cut; recovery must land
    on pre, the post-convoy checkpoint or post (convoys and the
    drained victim half are atomic at every boundary). *)

(** {1 CSV} *)

val csv_header : string list
val report_rows : report -> string list list

val image_label : image -> string
(** ["old"], ["new"] or ["checkpointN"]. *)

val victim_label : victim -> string
val outcome : point -> string
(** {!image_label}, with ["+repair"] appended when recovery replayed
    undo records. *)
