open Sim

(** Consumers of the {!Trace.Timeseries} gauge series: the instrumented
    churn run, a cross-check of the sampled series against the
    supervisor's event log, CSV emission, and a [top]-style textual
    dashboard of cluster health at the end of a run. *)

val default_interval : Time.t
(** 100 us of virtual time between samples. *)

val instrumented_churn :
  ?params:Churn.params ->
  ?interval:Time.t ->
  ?tail:Trace.Tail.t ->
  unit ->
  Churn.report * Trace.Timeseries.t
(** {!Churn.run} with a live timeseries attached; deterministic per
    seed, and byte-identical in behaviour to an uninstrumented run.
    [tail]'s observer sink is tee'd onto the engine span stream, so
    its per-phase histograms cover the whole churn run live. *)

type agreement = {
  windows_total : int;  (** degraded windows in the supervisor log *)
  windows_seen : int;  (** of those, windows the sampler caught *)
  degraded_signals : int;
      (** degraded evidence in the series: samples with [sup.degraded]
          set, plus consecutive pairs across which the cumulative
          [perseas.degraded_us] gauge grew — the latter catches windows
          that open and close entirely between two pumps *)
  matched_signals : int;  (** of those, overlapping some window *)
}

val degraded_spans :
  target:int -> Perseas.Supervisor.event list -> (Time.t * Time.t option) list
(** [[start, restored)] spans where the replication factor sat below
    [target], replayed from [Mirror_lost]/[Recruited] events; an
    unhealed window has no restoration time. *)

val agreement :
  ?slack:Time.t ->
  target:int ->
  samples:Trace.Timeseries.sample list ->
  Perseas.Supervisor.event list ->
  agreement
(** Cross-check: every degraded signal in the series must overlap some
    supervisor-logged window, within [slack] (default 5 ms — the
    sampler labels with grid time but reads state at pump time, so a
    signal can sit a whole resync copy before the state it describes;
    slack only needs to be small against the time between failures). *)

val check_agreement : agreement -> unit
(** Raises [Failure] when the series and the log disagree: a degraded
    signal outside every window, or logged windows with no degraded
    evidence in the series at all. *)

val csv : tel:Trace.Timeseries.t -> string list * string list list
(** [(header, rows)] of the full series — one row per sample, one
    column per gauge, missing gauges as 0. *)

val sparkline : ?width:int -> Trace.Timeseries.t -> string -> string
(** Eight-level block sparkline of one gauge over the run; each column
    is the max over its bucket so narrow spikes survive. *)

val top : ?tail:Trace.Tail.t -> Churn.report -> Trace.Timeseries.t -> string
(** The dashboard: replication health, workload and healing totals,
    network counters, per-server liveness and sparklines, rendered
    from a finished instrumented run. *)
