(** Flight recorder + online protocol monitor, bundled for the fault
    harnesses.

    One [t] owns a bounded in-memory ring of recent spans/events and a
    {!Trace.Monitor}, teed into a single sink that {!attach} hands to a
    {!Perseas} engine.  Recording is a pure observation: an attached
    run stays byte-identical (packet counts, final clock, images) to an
    unattached one.  When an oracle fails, {!dump} writes a post-mortem
    bundle from whatever the ring still holds. *)

type t

val create :
  ?span_capacity:int ->
  ?event_capacity:int ->
  ?on_alert:(Trace.Monitor.alert -> unit) ->
  unit ->
  t
(** Fresh recorder.  Defaults: 4096 spans, 65536 events — events are
    per packet, so they get the deeper ring.  [on_alert] fires
    synchronously on each monitor violation. *)

val sink : t -> Trace.Sink.t
(** The tee (ring + monitor); pass to {!Perseas.set_sink} or
    {!Perseas.recover_replicated}'s [?sink]. *)

val monitor : t -> Trace.Monitor.t
val alerts : t -> Trace.Monitor.alert list
val alert_count : t -> int

val attach : t -> Perseas.t -> unit
(** [Perseas.set_sink engine (sink t)]. *)

val timelines : t -> Trace.Causal.timeline list
(** Causal cross-node timelines reconstructed from the ring's current
    contents. *)

val dump : t -> dir:string -> cause:string -> ?stats:Perseas.stats -> unit -> string
(** Write the post-mortem bundle into [dir] (created as needed) and
    return it: [header.json] (cause, ring occupancy, separate
    span/event drop counts, rendered alerts), [trace.json] (Perfetto),
    [causal.txt] (per-transaction cross-node timelines), and — when
    [stats] is given — [stats.json] (engine counters). *)
