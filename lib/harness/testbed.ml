open Sim

module type INSTANCE = sig
  module E : Perseas.Txn_intf.S

  val engine : E.t
  val clock : Clock.t
  val label : string
  val finish : unit -> unit
end

type instance = (module INSTANCE)

let label (module I : INSTANCE) = I.label
let clock_of (module I : INSTANCE) = I.clock

type perseas_bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  server : Netram.Server.t;
  perseas : Perseas.t;
}

let mb n = n * 1024 * 1024

let perseas_bed ?config ?params ?(dram_mb = 64) () =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ?params ~clock
      [
        Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:0 "primary";
        Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:1 "mirror";
        Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:2 "spare";
      ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  { clock; cluster; server; perseas = Perseas.init ?config client }

type replicated_bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list;
  perseas : Perseas.t;
}

let replicated_bed ?config ?params ?(dram_mb = 64) ~mirrors () =
  if mirrors < 1 then invalid_arg "Testbed.replicated_bed: at least one mirror";
  let clock = Clock.create () in
  let specs =
    Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:0 "primary"
    :: List.init mirrors (fun i ->
           Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:(i + 1)
             (Printf.sprintf "mirror%d" i))
  in
  let cluster = Cluster.create ?params ~clock specs in
  let servers = List.init mirrors (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  { clock; cluster; servers; perseas = Perseas.init_replicated ?config clients }

let replicated_instance ?config ?dram_mb ~mirrors () : instance =
  let bed = replicated_bed ?config ?dram_mb ~mirrors () in
  (module struct
    module E = Perseas.Engine

    let engine = bed.perseas
    let clock = bed.clock
    let label = Printf.sprintf "PERSEAS-%dm" mirrors
    let finish () = ()
  end)

let perseas_instance ?config ?dram_mb () : instance =
  let bed = perseas_bed ?config ?dram_mb () in
  (module struct
    module E = Perseas.Engine

    let engine = bed.perseas
    let clock = bed.clock
    let label = "PERSEAS"
    let finish () = ()
  end)

let single_node ~clock ~dram_mb name =
  let cluster = Cluster.create ~clock [ Cluster.spec ~dram_size:(mb dram_mb) name ] in
  Cluster.node cluster 0

let rvm_instance ?config ?(rio = false) ?(dram_mb = 64) ?(device_mb = 64) () : instance =
  let clock = Clock.create () in
  let node = single_node ~clock ~dram_mb "rvm-host" in
  let backend =
    if rio then Disk.Device.Rio { Disk.Device.default_rio with ups = true }
    else Disk.Device.Magnetic Disk.Device.default_geometry
  in
  let device = Disk.Device.create ~clock ~backend ~capacity:(mb device_mb) in
  let engine = Baselines.Rvm.create ?config ~node ~device () in
  (module struct
    module E = Baselines.Rvm.Engine

    let engine = engine
    let clock = clock
    let label = Baselines.Rvm.name_for device
    let finish () = Baselines.Rvm.flush engine
  end)

let vista_instance ?config ?(dram_mb = 64) ?(device_mb = 64) () : instance =
  let clock = Clock.create () in
  let node = single_node ~clock ~dram_mb "vista-host" in
  let device =
    Disk.Device.create ~clock
      ~backend:(Disk.Device.Rio { Disk.Device.default_rio with ups = true })
      ~capacity:(mb device_mb)
  in
  let engine = Baselines.Vista.create ?config ~node ~device () in
  (module struct
    module E = Baselines.Vista.Engine

    let engine = engine
    let clock = clock
    let label = "Vista"
    let finish () = ()
  end)

let remote_wal_instance ?config ?(dram_mb = 64) ?(device_mb = 64) () : instance =
  let clock = Clock.create () in
  let cluster =
    Cluster.create ~clock
      [
        Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:0 "primary";
        Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:1 "log-mirror";
      ]
  in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  let device =
    Disk.Device.create ~clock ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
      ~capacity:(mb device_mb)
  in
  let engine = Baselines.Remote_wal.create ?config ~client ~device () in
  (module struct
    module E = Baselines.Remote_wal.Engine

    let engine = engine
    let clock = clock
    let label = "RemoteWAL"
    let finish () = ()
  end)

let all_instances ?dram_mb ?device_mb () =
  [
    perseas_instance ?dram_mb ();
    rvm_instance ?dram_mb ?device_mb ();
    rvm_instance ~rio:true ?dram_mb ?device_mb ();
    vista_instance ?dram_mb ?device_mb ();
    remote_wal_instance ?dram_mb ?device_mb ();
  ]
