(** A minimal JSON reader for the harness.

    The simulator emits JSON by hand ({!Perseas.stats_to_json},
    [Trace.Export.chrome_json], the bench summaries); this module is the
    matching parser, so the regression gate can load a committed
    baseline and the tests can check emitted documents actually parse —
    escapes, nesting and all — without any external dependency.

    Supports the full JSON grammar, including [\u] escapes (with
    surrogate pairs, decoded to UTF-8).  Numbers are held as [float],
    which is exact for the integer magnitudes the harness emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in document order *)

val parse : string -> (t, string) result
(** Parse a complete document; trailing non-whitespace is an error. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure] with the message on error. *)

val member : string -> t -> t option
(** [member key j] is the named field of an object, [None] for a
    missing field or a non-object. *)

val member_exn : string -> t -> t
(** Like {!member}; raises [Failure] when absent. *)

val to_float : t -> float
(** The value of a [Num]; raises [Failure] otherwise — same for the
    other [to_] accessors below. *)

val to_int : t -> int
val to_string : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list
