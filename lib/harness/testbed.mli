open Sim

(** Standard experimental setups: each engine on the hardware the paper
    (or its comparison sources) ran it on, all in virtual time.

    PERSEAS runs on a three-node cluster (primary, mirror on a separate
    power supply, and a spare workstation for availability
    experiments); RVM runs on one node with a 1997-class magnetic disk;
    RVM-Rio and Vista on one node with a UPS-backed Rio file cache. *)

(** A packed engine instance, uniform across engines so workloads and
    benches are engine-generic. *)
module type INSTANCE = sig
  module E : Perseas.Txn_intf.S

  val engine : E.t
  val clock : Clock.t
  val label : string

  val finish : unit -> unit
  (** End-of-run barrier (flushes RVM's pending group commit). *)
end

type instance = (module INSTANCE)

val label : instance -> string
val clock_of : instance -> Clock.t

(** {1 PERSEAS testbed} *)

type perseas_bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  server : Netram.Server.t;  (** Memory server on the mirror node. *)
  perseas : Perseas.t;
}

val perseas_bed :
  ?config:Perseas.config -> ?params:Sci.Params.t -> ?dram_mb:int -> unit -> perseas_bed
(** Primary (node 0), mirror (node 1, separate power supply), spare
    (node 2, third supply). *)

val perseas_instance : ?config:Perseas.config -> ?dram_mb:int -> unit -> instance

type replicated_bed = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list;  (** One memory server per mirror node. *)
  perseas : Perseas.t;
}

val replicated_bed :
  ?config:Perseas.config -> ?params:Sci.Params.t -> ?dram_mb:int -> mirrors:int -> unit -> replicated_bed
(** Primary on node 0, [mirrors] mirror nodes after it, each on its own
    power supply; the database is mirrored on all of them. *)

val replicated_instance :
  ?config:Perseas.config -> ?dram_mb:int -> mirrors:int -> unit -> instance
(** Engine view of {!replicated_bed} (label ["PERSEAS-<k>m"]). *)

(** {1 Baseline testbeds} *)

val rvm_instance :
  ?config:Baselines.Rvm.config -> ?rio:bool -> ?dram_mb:int -> ?device_mb:int -> unit -> instance
(** [rio:true] gives the RVM-Rio baseline (UPS-backed Rio cache). *)

val vista_instance :
  ?config:Baselines.Vista.config -> ?dram_mb:int -> ?device_mb:int -> unit -> instance

val remote_wal_instance :
  ?config:Baselines.Remote_wal.config -> ?dram_mb:int -> ?device_mb:int -> unit -> instance
(** The Ioanidis-style remote-memory WAL (§2): log mirrored in a remote
    node's memory, database file on a magnetic disk written
    asynchronously. *)

val all_instances : ?dram_mb:int -> ?device_mb:int -> unit -> instance list
(** Fresh [PERSEAS; RVM; RVM-Rio; Vista; RemoteWAL] instances. *)
