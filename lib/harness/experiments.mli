(** One function per paper artefact (see DESIGN.md's experiment index).

    Every experiment prints an aligned table to stdout and saves the
    same rows as CSV under [results/].  All numbers are virtual-time
    and deterministic. *)

val fig5 : unit -> unit
(** Figure 5: SCI remote-write latency vs. data size (4–200 B). *)

val fig6 : unit -> unit
(** Figure 6: PERSEAS transaction overhead vs. transaction size
    (4 B – 1 MB). *)

val table1 : unit -> unit
(** Table 1: PERSEAS throughput for debit-credit and order-entry. *)

val compare_synthetic : unit -> unit
(** §5.1 comparison: small synthetic transactions across PERSEAS, RVM,
    RVM-Rio and Vista (the orders-of-magnitude claims). *)

val compare_bench : unit -> unit
(** §5.1 comparison: debit-credit and order-entry across all engines. *)

val db_size_sweep : unit -> unit
(** §5.1 claim: PERSEAS throughput is flat while the database fits in
    main memory. *)

val recovery : unit -> unit
(** §3/§6: crash the primary mid-commit and recover on the spare node
    and on the rebooted primary; reports recovery time vs DB size. *)

val crash_sweep : unit -> unit
(** §3 verified exhaustively: crash at {e every} packet boundary of a
    multi-range commit (primary and mirror victims), of an
    [attach_mirror] resync, and of a concurrent group-commit flush with
    a bystander transaction open across it, and hold recovery to the
    {!Crashpoint} oracle.  Summary table on stdout; per-point rows in
    [results/crash_sweep.csv]. *)

val churn : unit -> unit
(** Self-healing replication under churn: a seeded failure/repair
    process pauses and crashes mirror nodes under a live debit-credit
    load while a {!Perseas.Supervisor} recruits replacements from a
    spare pool.  Enforces the {!Churn} oracle (zero committed-data
    loss) and writes per-window rows to [results/churn.csv]. *)

val copy_counts : unit -> unit
(** Figure 2 vs Figure 3: per-transaction copy and I/O counts for each
    engine (PERSEAS: three memory copies, no disk). *)

val ablation_memcpy : unit -> unit
(** §4 ablation: the 64-byte-aligned [sci_memcpy] optimisation on and
    off. *)

val elision : unit -> unit
(** R8: {!Perseas.config.redundancy_elision} on and off for an
    overlap-heavy synthetic mix and order-entry — packets, undo bytes
    and latency per transaction.  Asserts the acceptance bar: on the
    overlap mix the elided engine logs at least 30% fewer undo bytes
    and plans strictly fewer commit packets.  Writes
    [results/elision.csv]. *)

val group_commit : unit -> unit
(** §6: RVM with group commit (batch sizes 1–64) vs PERSEAS. *)

val remote_wal_load : unit -> unit
(** §2 critique of the remote-memory WAL (Ioanidis et al.): commit
    bursts run at network speed but sustained throughput is bound by
    the background disk writer; PERSEAS stays flat. *)

val replication_degree : unit -> unit
(** §1 "at least two PCs": cost of extra mirrors. *)

val availability : unit -> unit
(** §1 reliability argument quantified: Monte-Carlo availability and
    data-loss probability of the paper's deployments. *)

val trend : unit -> unit
(** §6: project interconnect and disk trends forward; the PERSEAS/RVM
    speedup widens every year. *)

val paging : unit -> unit
(** The project context (remote paging): random access over a larger-
    than-memory space, remote-memory backing vs a swap disk. *)

val datastores : unit -> unit
(** Application-layer cost: transactional hash-map and B+-tree
    operation rates on PERSEAS vs Vista. *)

type latency_mix = Debit_credit_mix | Large_update_mix

val latency_mixes : latency_mix list
val mix_label : latency_mix -> string

val traced_run :
  ?tail:Trace.Tail.t ->
  mix:latency_mix ->
  mirrors:int ->
  warmup:int ->
  iters:int ->
  unit ->
  Measure.result * Trace.Sink.t
(** Run one workload mix on a fresh [mirrors]-way testbed with a memory
    trace sink attached; [result.phases] holds the per-phase breakdown
    of the measured window, and the returned sink holds every span and
    event of the run (warmup included) for export.  Pass [tail] to feed
    each measured transaction's latency, spans and events into a
    {!Trace.Tail} (per-phase percentiles, worst-K exemplars). *)

type explained = {
  ex_label : string;
  ex_mirrors : int;
  ex_result : Measure.result;
  ex_tail : Trace.Tail.t;
  ex_model : Costmodel.t;
  ex_pkts64 : int;  (** NIC 64-byte packet delta over the whole traced window. *)
  ex_pkts16 : int;
  ex_bytes : int;  (** NIC bytes written over the window. *)
}

val explain_run :
  ?config:Perseas.config ->
  mix:latency_mix ->
  mirrors:int ->
  warmup:int ->
  iters:int ->
  unit ->
  explained
(** One fully-instrumented cell: a fresh [mirrors]-way testbed with a
    recording ring, a {!Trace.Tail}, and a {!Costmodel} tee'd on the
    engine's span stream, NIC counters reset at attach time so the
    model's settled totals are comparable to the hardware deltas. *)

val exemplar_coverage : Trace.Tail.exemplar -> float
(** Fraction of the exemplar's end-to-end latency covered by named
    [txn] phase spans (1.0 = fully attributed). *)

val explain : unit -> unit
(** R12: tail attribution + the analytic cost model on eager
    debit-credit at 1–3 mirrors.  Prints the per-phase p99 share table
    and the model-vs-NIC packet accounting, writes
    [results/tail_attribution.csv], and fails on any cost-model drift,
    unattributed packet, missing exemplar, or phase attribution below
    95% of the measured p99. *)

val latency_breakdown : unit -> unit
(** R6: where the microseconds of a transaction go — per-phase virtual
    latency (from [txn] spans) for debit-credit and large-update mixes
    at 1–3 mirrors; the phase sums equal end-to-end latency.  Writes
    [results/latency_breakdown.csv]. *)

val telemetry : unit -> unit
(** R7: the churn run instrumented with the {!Trace.Timeseries}
    sampler; renders the {!Telemetry.top} dashboard, writes the full
    series to [results/telemetry_churn.csv] and cross-checks the
    sampled degraded windows against the supervisor's event log. *)

val concurrency : unit -> unit
(** R9: debit-credit under 1–32 interleaved clients at 1 and 3 mirrors
    — one client runs the seed's eager protocol, concurrent runs batch
    two client rounds per group-commit flush.  Reports tps, packets per
    transaction, conflicts and flush counts to
    [results/concurrency.csv], and asserts the acceptance bar: at one
    mirror, 8 clients at least double the sequential throughput on
    strictly fewer packets per transaction. *)

val checkpoint : unit -> unit
(** R10: fuzzy checkpoints and parallel recovery — recovery time vs
    database size with checkpointing off, off with a helper node
    fetching mirror segments in parallel, and on (recovering on the
    checkpoint target's node, adopting the slot in place).  Asserts the
    acceptance bar:
    smallest to largest database, checkpointed recovery grows ≤ 1.5x
    while plain mirror recovery at least doubles.  Writes
    [results/checkpoint.csv]. *)

val timeline : latency_mix -> unit
(** One instrumented workload run: gauge samples on a 50 us virtual-
    time grid to [results/timeline_<mix>.csv], plus a Chrome trace
    (spans, instants and counter tracks) to
    [results/timeline_<mix>.json] for Perfetto. *)

val names : (string * string * (unit -> unit)) list
(** [(cli-name, description, run)] for every experiment. *)

val all : unit -> unit
(** Run every experiment in DESIGN.md order. *)
