(* Flight recorder: a bounded ring of recent spans and events plus the
   online protocol monitor, teed into the one sink an engine under test
   carries.  The ring makes observation affordable on long runs (old
   history falls off the back; the drop counters say how much), and the
   monitor turns the same stream into typed protocol alerts.  When an
   oracle trips, [dump] freezes what the ring still holds into a
   post-mortem bundle — Perfetto trace, per-transaction causal
   timelines, the alert list, an engine stats snapshot — so a failed
   crash-sweep point or churn run leaves enough evidence to diagnose
   offline. *)

module P = Perseas

type t = {
  ring : Trace.Sink.t;  (* always a [Trace.Sink.memory] *)
  monitor : Trace.Monitor.t;
  sink : Trace.Sink.t;  (* the tee handed to the engine *)
}

(* Events dominate: one per packet, vs one span per txn phase.  64k
   events is a few thousand commits of lookback at the canned scenario
   sizes — plenty to cover the window between fault injection and
   oracle detection. *)
let default_span_capacity = 4096
let default_event_capacity = 65536

let create ?(span_capacity = default_span_capacity) ?(event_capacity = default_event_capacity)
    ?on_alert () =
  let ring = Trace.Sink.memory ~span_capacity ~event_capacity () in
  let monitor = Trace.Monitor.create ?on_alert () in
  { ring; monitor; sink = Trace.Sink.tee [ ring; Trace.Monitor.sink monitor ] }

let sink t = t.sink
let monitor t = t.monitor
let alerts t = Trace.Monitor.alerts t.monitor
let alert_count t = Trace.Monitor.alert_count t.monitor
let attach t engine = P.set_sink engine t.sink

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump t ~dir ~cause ?stats () =
  mkdirs dir;
  let spans = Trace.Sink.spans t.ring in
  let events = Trace.Sink.events t.ring in
  let write name s =
    let oc = open_out (Filename.concat dir name) in
    output_string oc s;
    close_out oc
  in
  let alert_json a =
    Printf.sprintf "%S" (json_escape (Format.asprintf "%a" Trace.Monitor.pp_alert a))
  in
  (* Separate span/event drop counts: a full event ring with an empty
     span ring (or vice versa) says which half of the story the bundle
     is missing. *)
  write "header.json"
    (Printf.sprintf
       "{\"cause\": \"%s\",\n\
       \ \"spans\": %d, \"events\": %d,\n\
       \ \"dropped_spans\": %d, \"dropped_events\": %d,\n\
       \ \"alerts\": [%s]}\n"
       (json_escape cause)
       (List.length spans) (List.length events)
       (Trace.Sink.dropped_spans t.ring)
       (Trace.Sink.dropped_events t.ring)
       (String.concat ", " (List.map alert_json (alerts t))));
  (* Worst-K outliers as named flow events: rank each stitched timeline
     by wall extent and arrow the slowest through the Perfetto tracks,
     so the bundle shows where the bad transactions went, not just
     everything that happened. *)
  let timelines = Trace.Causal.build ~spans ~events in
  let extent (tl : Trace.Causal.timeline) =
    match tl.Trace.Causal.c_hops with
    | [] -> Sim.Time.zero
    | first :: _ ->
        let stop =
          List.fold_left (fun acc h -> max acc h.Trace.Causal.h_stop) first.Trace.Causal.h_stop
            tl.Trace.Causal.c_hops
        in
        stop - first.Trace.Causal.h_start
  in
  let flows =
    List.filteri
      (fun i _ -> i < 8)
      (List.sort
         (fun a b -> compare (extent b) (extent a))
         (List.filter (fun tl -> tl.Trace.Causal.c_hops <> []) timelines))
    |> List.map (fun tl ->
           ( Printf.sprintf "worst txn %s (%.1fus)" tl.Trace.Causal.c_txn
               (Sim.Time.to_us (extent tl)),
             tl ))
  in
  Trace.Export.chrome_json_to_file ~flows
    ~path:(Filename.concat dir "trace.json")
    ~spans ~events ();
  write "causal.txt" (Trace.Causal.render_all timelines);
  (match stats with Some s -> write "stats.json" (P.stats_to_json s ^ "\n") | None -> ());
  dir

let timelines t =
  Trace.Causal.build ~spans:(Trace.Sink.spans t.ring) ~events:(Trace.Sink.events t.ring)
